package nmplace

import (
	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/pgrail"
	"repro/internal/route"
)

// CongestionMap routes the design's current placement and returns the Eq. 3
// congestion map (row-major, nx×ny) together with the grid dimensions. The
// map is what the paper's Fig. 1 visualizes and what all three techniques
// consume.
func CongestionMap(d *Design, gridHint int) (cong []float64, nx, ny int) {
	if gridHint == 0 {
		gridHint = core.DefaultGridHint(len(d.Cells))
	}
	g := route.NewGrid(d, gridHint)
	res := route.NewRouter(d, g).Route()
	return res.Congestion, g.NX, g.NY
}

// CongestionClass labels one G-cell of a congestion decomposition.
type CongestionClass uint8

// Congestion classes of DecomposeCongestion.
const (
	// NotCongested marks G-cells without overflow.
	NotCongested CongestionClass = iota
	// LocalCongestion marks overflowed G-cells dominated by cell area —
	// relocating cells (cell inflation) relieves them (paper Fig. 1a left).
	LocalCongestion
	// GlobalCongestion marks overflowed G-cells dominated by through-nets —
	// only net moving relieves them (paper Fig. 1a right).
	GlobalCongestion
)

// DecomposeCongestion routes the design and classifies every G-cell as
// uncongested, locally congested (cell-driven) or globally congested
// (net-driven), reproducing the paper's Fig. 1 distinction. Returns the
// class map (row-major, nx×ny) and the grid dimensions.
func DecomposeCongestion(d *Design, gridHint int) (classes []CongestionClass, nx, ny int) {
	if gridHint == 0 {
		gridHint = core.DefaultGridHint(len(d.Cells))
	}
	g := route.NewGrid(d, gridHint)
	res := route.NewRouter(d, g).Route()
	dec := eval.Decompose(d, res)
	out := make([]CongestionClass, len(dec.Class))
	for i, c := range dec.Class {
		out[i] = CongestionClass(c)
	}
	return out, g.NX, g.NY
}

// SelectPGRails performs the paper's Sec. III-C rail pre-selection: rails
// are cut by 10%-expanded macro bounding boxes and only pieces at least 0.2×
// the die extent survive (Fig. 4). The returned rails are the ones whose
// surrounding density the DPA technique adjusts.
func SelectPGRails(d *Design) []PGRail { return pgrail.SelectRails(d) }

// DefaultGridHint returns the bin/G-cell resolution the placer would choose
// for a design of the given cell count.
func DefaultGridHint(numCells int) int { return core.DefaultGridHint(numCells) }
