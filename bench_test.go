package nmplace

// The benchmark harness regenerates every table and figure of the paper's
// evaluation section (see DESIGN.md §3 for the experiment index):
//
//	BenchmarkTable1*        — Table I  (Xplace / Xplace-Route / Ours)
//	BenchmarkTable2Ablation — Table II (MCI / DC / DPA ladder)
//	BenchmarkFig1Congestion — Fig. 1   (local vs global decomposition)
//	BenchmarkFig3NetMoving  — Fig. 3   (virtual-cell gradient assembly)
//	BenchmarkFig4PGRails    — Fig. 4   (PG-rail selection)
//	BenchmarkAblation*      — the extra design-choice ablations A1–A3
//
// Each benchmark prints the paper-relevant series through b.ReportMetric, so
// `go test -bench=. -benchmem` reproduces the rows; absolute numbers are
// oracle-specific but the cross-mode ratios are the reproduction target.
// Table benches run on a representative subset for time; `go run ./cmd/table1`
// runs the full 20-design suite.

import (
	"fmt"
	"math"
	"os"
	"testing"

	"repro/internal/congestion"
	"repro/internal/core"
	"repro/internal/density"
	"repro/internal/poisson"
	"repro/internal/route"
	"repro/internal/synth"
	"repro/internal/telemetry"
	"repro/internal/wirelength"
)

// benchDesigns is the representative Table I subset used by the benchmarks:
// one design per family spanning hot and calm routability regimes.
var benchDesigns = []string{"fft_b", "des_perf_1", "pci_bridge32_a", "matrix_mult_b"}

// largeBench is the multilevel large-design leg of the bench suite:
// superblue1_big (100k cells) through the Levels=3 clustered flow with a
// bounded iteration budget — enough to exercise coarsening, interpolation
// and the full finest level end-to-end while keeping the gate tractable.
var largeBench = struct {
	design                  string
	levels, wlIters, rIters int
}{"superblue1_big", 3, 120, 3}

// runBenchSuite places every benchDesigns entry in ModeOurs into obs, then
// the largeBench multilevel leg, recording the per-design headline metrics
// as gauges alongside the shared pipeline counters. Shared by the baseline
// writer and the regression gate so both measure exactly the same run.
func runBenchSuite(t *testing.T, obs *telemetry.Observer) {
	t.Helper()
	record := func(name string, opt core.Options) {
		d, err := synth.Generate(name)
		if err != nil {
			t.Fatal(err)
		}
		opt.Mode = core.ModeOurs
		opt.Tech = core.AllTechniques()
		opt.Observer = obs
		res, err := core.Place(d, opt)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		obs.Gauge(fmt.Sprintf("bench.%s.drwl", name)).Set(res.Metrics.DRWL)
		obs.Gauge(fmt.Sprintf("bench.%s.drvias", name)).Set(float64(res.Metrics.DRVias))
		obs.Gauge(fmt.Sprintf("bench.%s.drvs", name)).Set(float64(res.Metrics.DRVs))
		obs.Gauge(fmt.Sprintf("bench.%s.hpwl", name)).Set(res.HPWLFinal)
		obs.Gauge(fmt.Sprintf("bench.%s.route_iters", name)).Set(float64(res.RouteIters))
	}
	for _, name := range benchDesigns {
		record(name, core.Options{})
	}
	record(largeBench.design, core.Options{
		Levels:        largeBench.levels,
		MaxWLIters:    largeBench.wlIters,
		MaxRouteIters: largeBench.rIters,
	})
}

// TestWriteBenchBaseline regenerates BENCH_baseline.json: the telemetry
// registry of one ModeOurs run over every benchDesigns entry, with the
// per-design headline metrics added as gauges. The file is the committed
// machine-readable reference; TestBenchRegression diffs a fresh run against
// it to spot quality or work-count regressions. Skipped unless
// WRITE_BENCH_BASELINE=1 (it places four real designs, far slower than the
// unit suite).
//
//	WRITE_BENCH_BASELINE=1 go test -run TestWriteBenchBaseline .
//
// Regenerate the file whenever an intentional algorithm change shifts the
// headline numbers; the volatile (wall-clock) metrics it contains are
// ignored by the comparison.
func TestWriteBenchBaseline(t *testing.T) {
	if os.Getenv("WRITE_BENCH_BASELINE") != "1" {
		t.Skip("set WRITE_BENCH_BASELINE=1 to regenerate BENCH_baseline.json")
	}
	obs := telemetry.NewObserver(nil) // registry only; no event stream
	runBenchSuite(t, obs)
	f, err := os.Create("BENCH_baseline.json")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	label := fmt.Sprintf("mode=ours designs=%v large=%s(levels=%d,wl=%d,r=%d)",
		benchDesigns, largeBench.design, largeBench.levels, largeBench.wlIters, largeBench.rIters)
	if err := telemetry.WriteBaseline(f, label, obs.Metrics); err != nil {
		t.Fatal(err)
	}
}

// benchRegressionTol is the relative drift allowed per metric before the
// regression gate fails. The placer is deterministic, so on identical code
// a fresh run reproduces the baseline exactly; the tolerance only absorbs
// cross-platform libm differences (math.Exp/Pow are not bit-specified
// across architectures or Go releases).
const benchRegressionTol = 0.02

// TestBenchRegression re-runs the benchmark suite and fails if any
// non-volatile baseline metric drifts beyond benchRegressionTol. Run by the
// CI bench job; skipped unless BENCH_REGRESSION=1 (same cost as the
// baseline writer). After an intentional quality/work change, refresh the
// reference with WRITE_BENCH_BASELINE=1 (see TestWriteBenchBaseline).
//
//	BENCH_REGRESSION=1 go test -run TestBenchRegression .
func TestBenchRegression(t *testing.T) {
	if os.Getenv("BENCH_REGRESSION") != "1" {
		t.Skip("set BENCH_REGRESSION=1 to compare against BENCH_baseline.json")
	}
	f, err := os.Open("BENCH_baseline.json")
	if err != nil {
		t.Fatalf("no baseline (regenerate with WRITE_BENCH_BASELINE=1): %v", err)
	}
	base, err := telemetry.ReadBaseline(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	obs := telemetry.NewObserver(nil)
	runBenchSuite(t, obs)
	got := map[string]telemetry.Metric{}
	for _, m := range obs.Metrics.Snapshot() {
		got[m.Name] = m
	}
	for _, want := range base.Metrics {
		if want.Volatile {
			continue // wall-clock/environment content: speedups, worker counts
		}
		g, ok := got[want.Name]
		if !ok {
			t.Errorf("metric %s in baseline but missing from fresh run", want.Name)
			continue
		}
		diff := math.Abs(g.Value - want.Value)
		limit := benchRegressionTol * math.Abs(want.Value)
		if diff > limit {
			t.Errorf("metric %s drifted: baseline %g, got %g (|Δ| %g > %g)",
				want.Name, want.Value, g.Value, diff, limit)
		}
	}
}

func placeOnce(b *testing.B, design string, mode core.Mode, tech core.Techniques) *core.Result {
	b.Helper()
	d, err := synth.Generate(design)
	if err != nil {
		b.Fatal(err)
	}
	res, err := core.Place(d, core.Options{Mode: mode, Tech: tech})
	if err != nil {
		b.Fatal(err)
	}
	return res
}

func benchMode(b *testing.B, mode core.Mode) {
	for i := 0; i < b.N; i++ {
		var drvs, drwl float64
		for _, name := range benchDesigns {
			res := placeOnce(b, name, mode, core.AllTechniques())
			drvs += float64(res.Metrics.DRVs)
			drwl += res.Metrics.DRWL
		}
		b.ReportMetric(drvs/float64(len(benchDesigns)), "DRVs/design")
		b.ReportMetric(drwl/float64(len(benchDesigns)), "DRWL/design")
	}
}

// BenchmarkTable1Xplace is the Table I "Xplace" column (wirelength only).
func BenchmarkTable1Xplace(b *testing.B) { benchMode(b, core.ModeWirelength) }

// BenchmarkTable1XplaceRoute is the Table I "Xplace-Route" column.
func BenchmarkTable1XplaceRoute(b *testing.B) { benchMode(b, core.ModeBaselineRoute) }

// BenchmarkTable1Ours is the Table I "Ours" column (full framework).
func BenchmarkTable1Ours(b *testing.B) { benchMode(b, core.ModeOurs) }

// BenchmarkTable2Ablation runs the four Table II rows on one congested
// design and reports the DRV count per configuration.
func BenchmarkTable2Ablation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := core.RunTable2([]string{"fft_b"}, 0, nil)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			switch r.Mode {
			case "baseline (Xplace-Route)":
				b.ReportMetric(float64(r.DRVs), "DRVs-baseline")
			case "MCI":
				b.ReportMetric(float64(r.DRVs), "DRVs-MCI")
			case "MCI+DC":
				b.ReportMetric(float64(r.DRVs), "DRVs-MCI+DC")
			case "MCI+DC+DPA":
				b.ReportMetric(float64(r.DRVs), "DRVs-full")
			}
		}
	}
}

// BenchmarkFig1Congestion measures the congestion decomposition of Fig. 1 on
// a placed design and reports the local/global split.
func BenchmarkFig1Congestion(b *testing.B) {
	d, err := GenerateBenchmark("fft_b")
	if err != nil {
		b.Fatal(err)
	}
	if _, err := Place(d, Options{Mode: ModeXplace}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var local, global int
	for i := 0; i < b.N; i++ {
		classes, _, _ := DecomposeCongestion(d, 0)
		local, global = 0, 0
		for _, c := range classes {
			switch c {
			case LocalCongestion:
				local++
			case GlobalCongestion:
				global++
			}
		}
	}
	b.ReportMetric(float64(local), "local-gcells")
	b.ReportMetric(float64(global), "global-gcells")
}

// BenchmarkFig3NetMoving measures one full congestion-gradient assembly
// (virtual cells + projected forces, Algorithms 1–2) on a routed design.
func BenchmarkFig3NetMoving(b *testing.B) {
	d, err := GenerateBenchmark("fft_b")
	if err != nil {
		b.Fatal(err)
	}
	if _, err := Place(d, Options{Mode: ModeXplace, SkipLegalize: true}); err != nil {
		b.Fatal(err)
	}
	grid := route.NewGrid(d, 64)
	res := route.NewRouter(d, grid).Route()
	m := congestion.New(d, grid)
	m.Update(res)
	grad := make([]float64, 2*len(d.Cells))
	b.ResetTimer()
	var virt int
	for i := 0; i < b.N; i++ {
		for j := range grad {
			grad[j] = 0
		}
		st := m.Gradients(grad)
		virt = st.VirtualCells
	}
	b.ReportMetric(float64(virt), "virtual-cells")
}

// BenchmarkFig4PGRails measures PG-rail selection (Fig. 4) on matrix_mult_a
// and reports the kept-rail count.
func BenchmarkFig4PGRails(b *testing.B) {
	d, err := GenerateBenchmark("matrix_mult_a")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var kept int
	for i := 0; i < b.N; i++ {
		kept = len(SelectPGRails(d))
	}
	b.ReportMetric(float64(kept), "rails-kept")
	b.ReportMetric(float64(len(d.Rails)), "rails-total")
}

// BenchmarkAblationMomentum sweeps Eq. 11's α (ablation A1 of DESIGN.md) and
// reports the DRV count at each setting.
func BenchmarkAblationMomentum(b *testing.B) {
	alphas := []struct {
		name string
		a    float64
	}{{"a0.2", 0.2}, {"a0.4", 0.4}, {"a0.6", 0.6}, {"a0.8", 0.8}}
	for _, alpha := range alphas {
		b.Run(alpha.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				tech := core.AllTechniques()
				tech.MomentumAlpha = alpha.a
				res := placeOnce(b, "fft_b", core.ModeOurs, tech)
				b.ReportMetric(float64(res.Metrics.DRVs), "DRVs")
			}
		})
	}
}

// BenchmarkAblationLambda2 compares Eq. 10's adaptive λ₂ against fixed
// values (ablation A2).
func BenchmarkAblationLambda2(b *testing.B) {
	cases := []struct {
		name  string
		fixed float64
	}{{"adaptive", 0}, {"fixed0.5", 0.5}, {"fixed2", 2}}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				tech := core.AllTechniques()
				tech.FixedLambda2 = c.fixed
				res := placeOnce(b, "fft_b", core.ModeOurs, tech)
				b.ReportMetric(float64(res.Metrics.DRVs), "DRVs")
			}
		})
	}
}

// BenchmarkAblationInflationScheme compares the paper's momentum inflation
// against the two prior-art schemes it criticizes in Sec. I: the monotone
// history scheme (NTUplace4dr/Xplace-Route style) and the memoryless
// present-congestion scheme (DREAMPlace/RePlAce style).
func BenchmarkAblationInflationScheme(b *testing.B) {
	for _, scheme := range []string{"momentum", "monotonic", "present"} {
		b.Run(scheme, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				tech := core.AllTechniques()
				tech.InflationScheme = scheme
				res := placeOnce(b, "fft_b", core.ModeOurs, tech)
				b.ReportMetric(float64(res.Metrics.DRVs), "DRVs")
			}
		})
	}
}

// benchWorkerCounts are the per-kernel scaling points of the parallel
// benchmarks. On a single-core machine every count measures the same work
// plus goroutine overhead; compare w1 vs w4 ns/op on a multi-core runner
// (the CI bench job) for the real speedup.
var benchWorkerCounts = []int{1, 2, 4, 8}

// BenchmarkParallelWirelength measures the net-parallel WA gradient on a
// superblue-family design at several worker counts (serial baseline = w1).
func BenchmarkParallelWirelength(b *testing.B) {
	d, err := synth.Generate("superblue11_a")
	if err != nil {
		b.Fatal(err)
	}
	for _, w := range benchWorkerCounts {
		b.Run(fmt.Sprintf("w%d", w), func(b *testing.B) {
			m := wirelength.New(d, 10)
			m.Workers = w
			grad := make([]float64, 2*len(d.Cells))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for j := range grad {
					grad[j] = 0
				}
				m.EvaluateWithGrad(grad)
			}
		})
	}
}

// BenchmarkParallelDensity measures the bin-parallel rasterization + Poisson
// solve (density.Compute) at several worker counts.
func BenchmarkParallelDensity(b *testing.B) {
	d, err := synth.Generate("superblue11_a")
	if err != nil {
		b.Fatal(err)
	}
	for _, w := range benchWorkerCounts {
		b.Run(fmt.Sprintf("w%d", w), func(b *testing.B) {
			m := density.New(d, core.DefaultGridHint(len(d.Cells)))
			m.Workers = w
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.Compute()
			}
		})
	}
}

// BenchmarkParallelPoisson measures the row/column-parallel spectral solver
// alone on a 256×256 grid at several worker counts.
func BenchmarkParallelPoisson(b *testing.B) {
	const n = 256
	rho := make([]float64, n*n)
	for i := range rho {
		rho[i] = math.Sin(float64(3*i)) + 0.25*math.Cos(float64(7*i))
	}
	for _, w := range benchWorkerCounts {
		b.Run(fmt.Sprintf("w%d", w), func(b *testing.B) {
			s, err := poisson.NewSolver(n, n)
			if err != nil {
				b.Fatal(err)
			}
			s.Workers = w
			g := s.NewGrid()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Solve(rho, g)
			}
		})
	}
}

// BenchmarkParallelRoute measures the batched pattern router (parallel
// candidate choice, serial commit) at several worker counts.
func BenchmarkParallelRoute(b *testing.B) {
	d, err := synth.Generate("superblue11_a")
	if err != nil {
		b.Fatal(err)
	}
	g := route.NewGrid(d, core.DefaultGridHint(len(d.Cells)))
	for _, w := range benchWorkerCounts {
		b.Run(fmt.Sprintf("w%d", w), func(b *testing.B) {
			r := route.NewRouter(d, g)
			r.Workers = w
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r.Route()
			}
		})
	}
}

// BenchmarkAblationVirtualCell compares Eq. 8's max-congestion virtual-cell
// rule against the midpoint variant (ablation A3).
func BenchmarkAblationVirtualCell(b *testing.B) {
	cases := []struct {
		name     string
		midpoint bool
	}{{"maxcong", false}, {"midpoint", true}}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				tech := core.AllTechniques()
				tech.VirtualAtMidpoint = c.midpoint
				res := placeOnce(b, "fft_b", core.ModeOurs, tech)
				b.ReportMetric(float64(res.Metrics.DRVs), "DRVs")
			}
		})
	}
}
