package nmplace

import (
	"io"
	"os"

	"repro/internal/designio"
)

// WriteDesign serializes a design to w in the library's plain-text format
// (see internal/designio for the grammar). The output is deterministic and
// ReadDesign-compatible, so placements can be checkpointed and diffed.
func WriteDesign(w io.Writer, d *Design) error { return designio.Write(w, d) }

// ReadDesign parses a design written by WriteDesign (or hand-authored in the
// same format) and validates its referential integrity.
func ReadDesign(r io.Reader) (*Design, error) { return designio.Read(r) }

// SaveDesign writes a design to the named file.
func SaveDesign(path string, d *Design) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := designio.Write(f, d); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadDesign reads a design from the named file.
func LoadDesign(path string) (*Design, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return designio.Read(f)
}
