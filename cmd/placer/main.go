// Command placer runs one placement mode on one named synthetic design and
// prints the resulting metrics.
//
// Observability flags:
//
//	-trace out.jsonl   write the full telemetry event stream (spans,
//	                   snapshots, logs, metrics) as JSONL; summarize it
//	                   with `go run ./cmd/tracereport out.jsonl`. With
//	                   `-trace -` the stream goes to stdout and the
//	                   summary moves to stderr, so the output pipes
//	                   cleanly into `tracereport -`
//	-metrics           print the per-stage timing table and the metrics
//	                   registry after the run
//	-pprof addr        serve net/http/pprof at addr (e.g. localhost:6060)
//	                   for live CPU/heap profiling of long runs; pipeline
//	                   stages are labeled (pprof -tagfocus=stage=...)
//	-serve addr        serve the live HTML dashboard at addr (e.g.
//	                   localhost:8080): convergence charts, congestion
//	                   heatmap, stage timings and metrics, streamed over
//	                   SSE while the run progresses. Composes with -trace;
//	                   the written trace is byte-identical with or without
//	                   -serve. After the run completes the server keeps
//	                   serving until interrupted
//
// Checkpoint/resume flags:
//
//	-checkpoint f      write the run state to f: at the -checkpoint-after
//	                   point, or at the last consistent pipeline position
//	                   when the run is cancelled (-timeout, Ctrl-C → the
//	                   context path)
//	-checkpoint-after p  stop once pipeline point p completes ("setup",
//	                   "wirelength", "routability", "legalize", "detailed"
//	                   or "route_iter:K"; with -levels ≥ 2, coarse-level
//	                   points carry an "L<k>/" prefix, e.g. "L1/wirelength");
//	                   exits 0 with the state saved
//	-resume            continue the run saved in -checkpoint instead of
//	                   starting fresh (same -design; the checkpoint is
//	                   authoritative for the run-defining options)
//	-timeout d         cancel the run after duration d (e.g. 30s)
//	-out f             write the final placement to f in the designio
//	                   text format (only on a completed run)
//
// Scaling flags:
//
//	-levels n          multilevel clustered placement (DESIGN.md §12): the
//	                   design is coarsened n−1 times, placed coarsest-first
//	                   and interpolated down. 0/1 = flat. Results stay
//	                   byte-identical for any -workers value
//	-cluster-max-size  cap on base cells per cluster (0 = auto, <0 = none)
//	-wliters n         cap phase-1 wirelength iterations (0 = default 400);
//	                   with -riters, bounds the per-level work on the
//	                   *_big designs (see README "Scaling to 1M cells")
//
// Robustness flags:
//
//	-guard p           numeric guardrail policy: off (default), warn,
//	                   recover or fail — see DESIGN.md §9
//	-guard-retries n   divergence-recovery retry budget for -guard recover
//
// Performance flags:
//
//	-predict           gate router calls with the learned congestion
//	                   predictor (DESIGN.md §13): fresh routability
//	                   iterations whose predicted utilization drift since
//	                   the last real router call is below the threshold
//	                   skip the call and seed inflation from the predicted
//	                   map instead. Off by default; -predict runs stay
//	                   byte-identical across -workers values and
//	                   checkpoint/resume
//	-predict-threshold t  skip threshold on the predicted mean |Δutil|
//	                   (0 = default 0.05, negative = never skip)
//	-ml-warm-start     with -levels ≥ 2, start each finer level's phase 1
//	                   from the coarse level's converged state (λ₁ growth
//	                   and density overflow) instead of from scratch
//
// Exit codes: 0 success (or scheduled checkpoint stop), 1 generic error,
// 2 usage error, 3 cancelled/timed out, 4 corrupted checkpoint,
// 5 degenerate design, 6 numeric guard failure (violation under -guard
// fail, or recovery budget exhausted under -guard recover). Internal
// errors never surface as raw panics; they print one line and exit 1.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/core"
	"repro/internal/dashboard"
	"repro/internal/designio"
	"repro/internal/guard"
	"repro/internal/synth"
	"repro/internal/telemetry"
)

func main() {
	os.Exit(run())
}

func run() (code int) {
	// A panic anywhere below becomes a one-line diagnostic: the CLI's
	// contract is distinct exit codes and readable errors, never a raw
	// stack trace.
	defer func() {
		if r := recover(); r != nil {
			fmt.Fprintf(os.Stderr, "placer: internal error: %v\n", r)
			code = 1
		}
	}()
	design := flag.String("design", "fft_1", "design name from the synthetic catalog")
	mode := flag.String("mode", "ours", "placer mode: xplace | xplace-route | ours")
	verbose := flag.Bool("v", false, "log progress")
	grid := flag.Int("grid", 0, "grid hint (0 = auto)")
	mci := flag.Bool("mci", true, "momentum cell inflation (ours mode)")
	dc := flag.Bool("dc", true, "differentiable congestion / net moving (ours mode)")
	dpa := flag.Bool("dpa", true, "dynamic pin accessibility (ours mode)")
	riters := flag.Int("riters", 0, "max routability iterations (0 = default)")
	wliters := flag.Int("wliters", 0, "max phase-1 wirelength iterations (0 = default)")
	levels := flag.Int("levels", 0, "multilevel clustered placement levels (0/1 = flat; ≥2 coarsens the design and places coarsest-first)")
	clusterMax := flag.Int("cluster-max-size", 0, "max base cells per cluster across the hierarchy (0 = auto 4^(levels-1), negative = no cap)")
	workers := flag.Int("workers", 0, "worker goroutines for the parallel kernels (0 = all CPUs, 1 = serial; results are identical for any value)")
	tracePath := flag.String("trace", "", "write a JSONL telemetry trace to this file (- for stdout)")
	metrics := flag.Bool("metrics", false, "print stage timings and the metrics registry")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof at this address")
	ckptPath := flag.String("checkpoint", "", "checkpoint file path (enables checkpoint on cancellation)")
	ckptAfter := flag.String("checkpoint-after", "", "stop after this pipeline point and write the checkpoint")
	resume := flag.Bool("resume", false, "resume the run saved in -checkpoint")
	timeout := flag.Duration("timeout", 0, "cancel the run after this duration (0 = no limit)")
	outPath := flag.String("out", "", "write the final placement to this file (designio format)")
	guardFlag := flag.String("guard", "", "numeric guardrail policy: off | warn | recover | fail")
	guardRetries := flag.Int("guard-retries", 0, "divergence-recovery retry budget for -guard recover (0 = default)")
	predictFlag := flag.Bool("predict", false, "gate router calls with the learned congestion predictor (DESIGN.md §13)")
	predictThreshold := flag.Float64("predict-threshold", 0, "predicted mean |Δutil| below which a router call is skipped (0 = default 0.05, negative = never skip)")
	mlWarm := flag.Bool("ml-warm-start", false, "warm-start λ₁/γ at finer multilevel levels from the coarse level's converged state (requires -levels ≥ 2)")
	serveAddr := flag.String("serve", "", "serve the live HTML dashboard at this address (e.g. localhost:8080)")
	flag.Parse()

	if *pprofAddr != "" {
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintf(os.Stderr, "pprof server: %v\n", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "pprof listening on http://%s/debug/pprof/\n", *pprofAddr)
	}
	if *resume && *ckptPath == "" {
		fmt.Fprintln(os.Stderr, "-resume requires -checkpoint")
		return 2
	}
	guardPolicy, err := guard.ParsePolicy(*guardFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "placer: %v\n", err)
		return 2
	}

	d, err := synth.Generate(*design)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	opt := core.Options{GridHint: *grid, MaxRouteIters: *riters, MaxWLIters: *wliters, Workers: *workers,
		Levels: *levels, ClusterMaxSize: *clusterMax,
		Tech:           core.Techniques{MCI: *mci, DC: *dc, DPA: *dpa},
		CheckpointPath: *ckptPath, CheckpointAfter: *ckptAfter,
		Predict: *predictFlag, PredictThreshold: *predictThreshold, MLWarmStart: *mlWarm,
		Guard: guard.Config{Policy: guardPolicy, MaxRetries: *guardRetries}}
	switch *mode {
	case "xplace":
		opt.Mode = core.ModeWirelength
	case "xplace-route":
		opt.Mode = core.ModeBaselineRoute
	case "ours":
		opt.Mode = core.ModeOurs
	default:
		fmt.Fprintf(os.Stderr, "unknown mode %q\n", *mode)
		return 2
	}
	if *verbose {
		opt.Log = os.Stderr
	}

	var traceFile *os.File
	var sink io.Writer // canonical JSONL destination; stays nil without -trace
	out := os.Stdout   // human-readable summary sink
	switch {
	case *tracePath == "-":
		// Trace owns stdout; keep the JSONL stream clean by moving the
		// summary to stderr so `placer -trace - | tracereport -` works.
		sink = os.Stdout
		out = os.Stderr
	case *tracePath != "":
		traceFile, err = os.Create(*tracePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		sink = traceFile
	}

	// The dashboard hub wraps the canonical sink: every event line passes
	// through byte-for-byte before being broadcast, so the written trace is
	// identical with or without -serve.
	var hub *telemetry.Hub
	if *serveAddr != "" {
		hub = telemetry.NewHub(sink)
		sink = hub
		ln, lerr := net.Listen("tcp", *serveAddr)
		if lerr != nil {
			fmt.Fprintf(os.Stderr, "dashboard: %v\n", lerr)
			return 1
		}
		srv := dashboard.NewServer(hub, fmt.Sprintf("%s — mode %s", *design, *mode))
		go func() {
			if serr := http.Serve(ln, srv.Handler()); serr != nil && !errors.Is(serr, net.ErrClosed) {
				fmt.Fprintf(os.Stderr, "dashboard server: %v\n", serr)
			}
		}()
		fmt.Fprintf(os.Stderr, "dashboard listening on http://%s/\n", ln.Addr())
	}

	var obs *telemetry.Observer
	if sink != nil || *metrics {
		obs = telemetry.NewObserver(sink) // nil sink: aggregate in memory only
	}
	opt.Observer = obs

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	var res *core.Result
	if *resume {
		res, err = core.ResumeFromFile(ctx, d, *ckptPath, opt)
	} else {
		res, err = core.PlaceContext(ctx, d, opt)
	}
	closeTrace := func() {
		if traceFile != nil {
			if cerr := traceFile.Close(); cerr != nil {
				fmt.Fprintf(os.Stderr, "trace: %v\n", cerr)
			}
		}
		if hub != nil {
			hub.Close() // live SSE subscribers receive eof
		}
	}
	switch {
	case errors.Is(err, core.ErrCheckpointed):
		// Scheduled stop: the trace stream stays un-flushed (no metric dump)
		// so the resumed run's events concatenate into one continuous trace.
		closeTrace()
		fmt.Fprintf(os.Stderr, "checkpointed at %q: state written to %s\n",
			*ckptAfter, *ckptPath)
		return 0
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		closeTrace()
		fmt.Fprintf(os.Stderr, "run cancelled (%v) after %.2fs", err, res.PlaceTime.Seconds())
		if *ckptPath != "" {
			fmt.Fprintf(os.Stderr, "; state written to %s — rerun with -resume to continue", *ckptPath)
		}
		fmt.Fprintln(os.Stderr)
		return 3
	case errors.Is(err, core.ErrCheckpointCorrupt):
		closeTrace()
		fmt.Fprintf(os.Stderr, "placer: corrupted checkpoint: %v\n", err)
		return 4
	case errors.Is(err, core.ErrDegenerateDesign):
		closeTrace()
		fmt.Fprintf(os.Stderr, "placer: %v\n", err)
		return 5
	case errors.Is(err, guard.ErrBudgetExhausted), errors.Is(err, guard.ErrViolation):
		closeTrace()
		fmt.Fprintf(os.Stderr, "placer: numeric guard failure: %v\n", err)
		return 6
	case err != nil:
		closeTrace()
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	if obs != nil {
		if hub != nil {
			// Streaming loss accounting. Volatile: the count depends on
			// subscriber timing, so it never enters the canonical trace.
			obs.VolatileGauge("telemetry.dropped_events").Set(float64(hub.Dropped()))
		}
		if err := obs.Flush(); err != nil {
			fmt.Fprintf(os.Stderr, "trace: %v\n", err)
		}
	}
	closeTrace()

	if *outPath != "" {
		f, ferr := os.Create(*outPath)
		if ferr == nil {
			ferr = designio.Write(f, d)
			if cerr := f.Close(); ferr == nil {
				ferr = cerr
			}
		}
		if ferr != nil {
			fmt.Fprintf(os.Stderr, "out: %v\n", ferr)
			return 1
		}
	}

	st := d.ComputeStats()
	fmt.Fprintf(out, "design=%s cells=%d nets=%d util=%.2f\n", d.Name, st.NumMovable, st.NumNets, st.Utilization)
	fmt.Fprintf(out, "mode=%s DRWL=%.0f vias=%d DRVs=%d HPWL=%.0f PT=%.2fs RT=%.2fs wlIters=%d routeIters=%d\n",
		res.Mode, res.Metrics.DRWL, res.Metrics.DRVias, res.Metrics.DRVs, res.HPWLFinal,
		res.PlaceTime.Seconds(), res.RouteTime.Seconds(), res.WLIters, res.RouteIters)
	fmt.Fprintf(out, "components: overflow=%.0f pinDens=%.0f pinAccess=%.0f maxUtil=%.2f\n",
		res.Metrics.OverflowViol, res.Metrics.PinDensViol, res.Metrics.PinAccessViol, res.Metrics.MaxUtil)

	if *metrics && obs != nil {
		fmt.Fprintf(out, "\nStage timings\n")
		for _, s := range res.StageTimings {
			for i := 0; i < s.Depth; i++ {
				fmt.Fprint(out, "  ")
			}
			fmt.Fprintf(out, "%-30s count=%-5d total=%v\n", s.Name, s.Count, s.Total)
		}
		fmt.Fprintf(out, "\nMetrics\n")
		for _, m := range obs.Metrics.Snapshot() {
			kind := m.Kind
			if m.Volatile {
				kind += "*"
			}
			switch m.Kind {
			case "histogram":
				fmt.Fprintf(out, "%-34s %-9s n=%d mean=%g min=%g max=%g\n",
					m.Name, kind, m.Count, m.Value, m.Min, m.Max)
			default:
				fmt.Fprintf(out, "%-34s %-9s %g\n", m.Name, kind, m.Value)
			}
		}
		fmt.Fprintf(out, "(* volatile: wall-clock/environment metric, excluded from canonical traces)\n")
	}

	if *serveAddr != "" {
		fmt.Fprintf(os.Stderr, "run complete; dashboard still serving — interrupt to exit\n")
		ch := make(chan os.Signal, 1)
		signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
		<-ch
	}
	return 0
}
