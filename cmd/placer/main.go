// Command placer runs one placement mode on one named synthetic design and
// prints the resulting metrics.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/synth"
)

func main() {
	design := flag.String("design", "fft_1", "design name from the synthetic catalog")
	mode := flag.String("mode", "ours", "placer mode: xplace | xplace-route | ours")
	verbose := flag.Bool("v", false, "log progress")
	grid := flag.Int("grid", 0, "grid hint (0 = auto)")
	mci := flag.Bool("mci", true, "momentum cell inflation (ours mode)")
	dc := flag.Bool("dc", true, "differentiable congestion / net moving (ours mode)")
	dpa := flag.Bool("dpa", true, "dynamic pin accessibility (ours mode)")
	riters := flag.Int("riters", 0, "max routability iterations (0 = default)")
	flag.Parse()

	d, err := synth.Generate(*design)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	opt := core.Options{GridHint: *grid, MaxRouteIters: *riters,
		Tech: core.Techniques{MCI: *mci, DC: *dc, DPA: *dpa}}
	switch *mode {
	case "xplace":
		opt.Mode = core.ModeWirelength
	case "xplace-route":
		opt.Mode = core.ModeBaselineRoute
	case "ours":
		opt.Mode = core.ModeOurs
	default:
		fmt.Fprintf(os.Stderr, "unknown mode %q\n", *mode)
		os.Exit(1)
	}
	if *verbose {
		opt.Log = os.Stderr
	}
	res, err := core.Place(d, opt)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	st := d.ComputeStats()
	fmt.Printf("design=%s cells=%d nets=%d util=%.2f\n", d.Name, st.NumMovable, st.NumNets, st.Utilization)
	fmt.Printf("mode=%s DRWL=%.0f vias=%d DRVs=%d HPWL=%.0f PT=%.2fs RT=%.2fs wlIters=%d routeIters=%d\n",
		res.Mode, res.Metrics.DRWL, res.Metrics.DRVias, res.Metrics.DRVs, res.HPWLFinal,
		res.PlaceTime.Seconds(), res.RouteTime.Seconds(), res.WLIters, res.RouteIters)
	fmt.Printf("components: overflow=%.0f pinDens=%.0f pinAccess=%.0f maxUtil=%.2f\n",
		res.Metrics.OverflowViol, res.Metrics.PinDensViol, res.Metrics.PinAccessViol, res.Metrics.MaxUtil)
}
