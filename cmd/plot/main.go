// Command plot renders a design as SVG: optionally placed first, with a
// congestion heat underlay (Fig. 1 style) and the selected PG rails
// (Fig. 4 style).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	nmplace "repro"
	"repro/internal/core"
	"repro/internal/plot"
	"repro/internal/route"
	"repro/internal/synth"
)

func main() {
	design := flag.String("design", "fft_b", "design name")
	mode := flag.String("mode", "xplace", "placer to run first: none | xplace | xplace-route | ours")
	out := flag.String("o", "placement.svg", "output SVG path")
	cells := flag.Bool("cells", true, "draw cells")
	rails := flag.Bool("rails", false, "draw selected PG rails")
	heat := flag.Bool("heat", true, "draw congestion heat underlay")
	heatPNG := flag.String("heatpng", "", "also write the congestion grid as a standalone PNG heatmap (same renderer as the dashboard)")
	flag.Parse()

	d, err := synth.Generate(*design)
	if err != nil {
		log.Fatal(err)
	}
	switch *mode {
	case "none":
	case "xplace":
		_, err = core.Place(d, core.Options{Mode: core.ModeWirelength})
	case "xplace-route":
		_, err = core.Place(d, core.Options{Mode: core.ModeBaselineRoute})
	case "ours":
		_, err = core.Place(d, core.Options{Mode: core.ModeOurs, Tech: core.AllTechniques()})
	default:
		log.Fatalf("unknown mode %q", *mode)
	}
	if err != nil {
		log.Fatal(err)
	}

	opt := plot.Options{DrawCells: *cells, DrawRails: *rails}
	if *rails {
		opt.Selected = nmplace.SelectPGRails(d)
	}
	if *heat || *heatPNG != "" {
		g := route.NewGrid(d, core.DefaultGridHint(len(d.Cells)))
		res := route.NewRouter(d, g).Route()
		if *heat {
			opt.Congestion = res.Congestion
			opt.NX, opt.NY = g.NX, g.NY
		}
		if *heatPNG != "" {
			pf, err := os.Create(*heatPNG)
			if err != nil {
				log.Fatal(err)
			}
			if err := plot.WriteHeatmapPNG(pf, res.Congestion, g.NX, g.NY, 8); err != nil {
				log.Fatal(err)
			}
			if err := pf.Close(); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("wrote %s\n", *heatPNG)
		}
	}
	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	if err := plot.SVG(f, d, opt); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s\n", *out)
}
