// Command placed runs the placement job server: an HTTP/JSON API (see
// internal/jobs.Server for the endpoints) over a multi-tenant scheduler
// that multiplexes concurrent placements across a bounded worker pool with
// per-job worker budgets, priorities and fair-share preemption at stage
// boundaries.
//
// Every job checkpoints its state under -state at each stage boundary, so a
// killed server process can be restarted over the same directory and its
// jobs migrate: they resume from their last checkpoint and still produce a
// final placement and canonical trace byte-identical to an uninterrupted
// CLI run (the repo's byte-identity contract; verified by CI's
// placed-smoke).
//
//	placed -addr localhost:9090 -state /var/lib/placed [-capacity N]
//	       [-quantum K] [-persist-every K] [-v]
//
// On SIGINT/SIGTERM the server stops accepting work, checkpoints every
// running job at its next stage boundary and exits; a second signal exits
// immediately (jobs then migrate from their last persisted checkpoint, as
// after a crash). Exit codes: 0 clean shutdown, 1 generic error, 2 usage
// error.
package main

import (
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"

	"repro/internal/jobs"
)

func main() {
	os.Exit(run())
}

func run() (code int) {
	defer func() {
		if r := recover(); r != nil {
			fmt.Fprintf(os.Stderr, "placed: internal error: %v\n", r)
			code = 1
		}
	}()
	addr := flag.String("addr", "localhost:9090", "listen address")
	state := flag.String("state", "", "state directory (required); jobs persist and migrate here")
	capacity := flag.Int("capacity", runtime.GOMAXPROCS(0), "worker-slot pool shared by running jobs")
	quantum := flag.Int("quantum", 4, "stage boundaries per scheduling lease (fair-share preemption)")
	persistEvery := flag.Int("persist-every", 1, "persist a migration checkpoint every K stage boundaries")
	verbose := flag.Bool("v", false, "log job lifecycle events")
	flag.Parse()
	if *state == "" {
		fmt.Fprintln(os.Stderr, "placed: -state is required")
		return 2
	}

	cfg := jobs.Config{
		Dir:          *state,
		Capacity:     *capacity,
		Quantum:      *quantum,
		PersistEvery: *persistEvery,
	}
	if *verbose {
		cfg.Log = os.Stderr
	}
	m, err := jobs.Open(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "placed: %v\n", err)
		return 1
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "placed: %v\n", err)
		return 1
	}
	srv := &http.Server{Handler: jobs.NewServer(m).Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	fmt.Fprintf(os.Stderr, "placed listening on http://%s/ (state %s, capacity %d)\n",
		ln.Addr(), *state, cfg.Capacity)

	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-serveErr:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintf(os.Stderr, "placed: %v\n", err)
			return 1
		}
		return 0
	case s := <-sig:
		fmt.Fprintf(os.Stderr, "placed: %v: draining (checkpointing running jobs; signal again to force)\n", s)
	}

	// Stop accepting requests, then let every running job reach a stage
	// boundary and checkpoint. A second signal abandons the wait — the jobs
	// migrate from their last persisted checkpoint on the next start.
	go srv.Close()
	done := make(chan struct{})
	go func() {
		m.Close()
		close(done)
	}()
	select {
	case <-done:
		fmt.Fprintln(os.Stderr, "placed: drained; state saved")
		return 0
	case s := <-sig:
		fmt.Fprintf(os.Stderr, "placed: %v: forced exit\n", s)
		return 1
	}
}
