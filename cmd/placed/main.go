// Command placed runs the placement job server: an HTTP/JSON API (see
// internal/jobs.Server for the endpoints) over a multi-tenant scheduler
// that multiplexes concurrent placements across a bounded worker pool with
// per-job worker budgets, priorities and fair-share preemption at stage
// boundaries.
//
// Every placement runs in a supervised child worker process (this same
// binary, re-executed in a hidden -worker mode), so a panic, runaway
// allocation or stalled kernel takes down one job's process — never the
// daemon or its other tenants. The supervisor watches heartbeats and exit
// codes: a crashed or stalled worker is restarted from the job's last
// CRC-verified checkpoint with bounded exponential backoff (-retries,
// -backoff), and a job that keeps killing its workers is quarantined as
// failed(poisoned). Overload is shed, not queued: beyond -max-queued jobs,
// under -min-free-mb of state-dir disk, or past the per-client rate limit
// (-rate/-burst), submissions get 503 + Retry-After, and /readyz (unlike
// the liveness-only /healthz) reports not-ready.
//
// Every job checkpoints its state under -state at each stage boundary, so a
// killed server process can be restarted over the same directory and its
// jobs migrate: they resume from their last checkpoint and still produce a
// final placement and canonical trace byte-identical to an uninterrupted
// CLI run (the repo's byte-identity contract; verified by CI's placed-smoke
// and chaos-server jobs).
//
//	placed -addr localhost:9090 -state /var/lib/placed [-capacity N]
//	       [-quantum K] [-persist-every K] [-retries N] [-backoff D]
//	       [-stall-timeout D] [-max-queued N] [-min-free-mb N]
//	       [-rate R] [-burst N] [-v]
//
// On SIGINT/SIGTERM the server stops accepting work, checkpoints every
// running job at its next stage boundary and exits; a second signal exits
// immediately (jobs then migrate from their last persisted checkpoint, as
// after a crash). Exit codes: 0 clean shutdown, 1 generic error, 2 usage
// error.
package main

import (
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"repro/internal/jobs"
)

func main() {
	// The hidden worker mode must dispatch before flag parsing: its flags
	// are the supervisor's private protocol, not part of the CLI surface.
	if len(os.Args) > 1 && os.Args[1] == "-worker" {
		os.Exit(jobs.RunWorker(os.Args[2:]))
	}
	os.Exit(run())
}

func run() (code int) {
	defer func() {
		if r := recover(); r != nil {
			fmt.Fprintf(os.Stderr, "placed: internal error: %v\n", r)
			code = 1
		}
	}()
	addr := flag.String("addr", "localhost:9090", "listen address")
	state := flag.String("state", "", "state directory (required); jobs persist and migrate here")
	capacity := flag.Int("capacity", runtime.GOMAXPROCS(0), "worker-slot pool shared by running jobs")
	quantum := flag.Int("quantum", 4, "stage boundaries per scheduling lease (fair-share preemption)")
	persistEvery := flag.Int("persist-every", 1, "persist a migration checkpoint every K stage boundaries")
	retries := flag.Int("retries", 3, "worker crash/stall restarts per job before failed(poisoned) (negative: none)")
	backoff := flag.Duration("backoff", 250*time.Millisecond, "base restart backoff (doubles per restart, capped at 10s)")
	stallTimeout := flag.Duration("stall-timeout", 60*time.Second, "kill a worker silent for this long (negative: disable)")
	maxQueued := flag.Int("max-queued", 64, "queued-job cap; submissions beyond it shed with 503 (negative: unbounded)")
	minFreeMB := flag.Int64("min-free-mb", 64, "shed submissions when the state dir has less than this many MiB free (negative: disable)")
	rate := flag.Float64("rate", 5, "per-client submissions per second (negative: unlimited)")
	burst := flag.Int("burst", 10, "per-client submission burst")
	inject := flag.String("inject", "", "comma-separated worker fault specs, e.g. worker_crash:3 (chaos testing)")
	injectSeed := flag.Int64("inject-seed", 1, "fault injection seed")
	verbose := flag.Bool("v", false, "log job lifecycle events")
	flag.Parse()
	if *state == "" {
		fmt.Fprintln(os.Stderr, "placed: -state is required")
		return 2
	}

	self, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "placed: cannot locate own binary for workers: %v\n", err)
		return 1
	}
	cfg := jobs.Config{
		Dir:           *state,
		Capacity:      *capacity,
		Quantum:       *quantum,
		PersistEvery:  *persistEvery,
		WorkerCommand: []string{self, "-worker"},
		RetryBudget:   *retries,
		BackoffBase:   *backoff,
		StallTimeout:  *stallTimeout,
		MaxQueued:     *maxQueued,
		MinFreeBytes:  *minFreeMB << 20,
		FaultSeed:     *injectSeed,
	}
	if *inject != "" {
		for _, spec := range strings.Split(*inject, ",") {
			if spec = strings.TrimSpace(spec); spec != "" {
				cfg.FaultSpecs = append(cfg.FaultSpecs, spec)
			}
		}
	}
	if *verbose {
		cfg.Log = os.Stderr
	}
	m, err := jobs.Open(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "placed: %v\n", err)
		return 1
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "placed: %v\n", err)
		return 1
	}
	srv := &http.Server{
		Handler: jobs.NewServerWith(m, jobs.ServerConfig{RatePerSec: *rate, Burst: *burst}).Handler(),
		// Bounded I/O: a client that trickles headers or never reads its
		// response cannot pin a connection forever. Streaming handlers (SSE,
		// dashboards) extend their own write deadlines per event.
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       5 * time.Minute,
		WriteTimeout:      2 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	fmt.Fprintf(os.Stderr, "placed listening on http://%s/ (state %s, capacity %d)\n",
		ln.Addr(), *state, cfg.Capacity)

	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-serveErr:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintf(os.Stderr, "placed: %v\n", err)
			return 1
		}
		return 0
	case s := <-sig:
		fmt.Fprintf(os.Stderr, "placed: %v: draining (checkpointing running jobs; signal again to force)\n", s)
	}

	// Stop accepting requests, then let every running job reach a stage
	// boundary and checkpoint. A second signal abandons the wait — the jobs
	// migrate from their last persisted checkpoint on the next start.
	go srv.Close()
	done := make(chan struct{})
	go func() {
		m.Close()
		close(done)
	}()
	select {
	case <-done:
		fmt.Fprintln(os.Stderr, "placed: drained; state saved")
		return 0
	case s := <-sig:
		fmt.Fprintf(os.Stderr, "placed: %v: forced exit\n", s)
		return 1
	}
}
