// Command calib reports post-placement routing utilization percentiles per
// design; it is the tool used to calibrate the synthetic designs' routing
// capacities so that placed utilizations land in a realistic band.
package main

import (
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/route"
	"repro/internal/stats"
	"repro/internal/synth"
)

// targetP50 maps each design to the intended median placed utilization,
// derived from the relative DRV severity the paper reports per design.
var targetP50 = map[string]float64{
	"des_perf_1": 0.55, "des_perf_a": 0.62, "des_perf_b": 0.42,
	"edit_dist_a": 0.72,
	"fft_1":       0.52, "fft_2": 0.42, "fft_a": 0.42, "fft_b": 0.62,
	"matrix_mult_1": 0.58, "matrix_mult_2": 0.58, "matrix_mult_a": 0.52,
	"matrix_mult_b": 0.62, "matrix_mult_c": 0.52,
	"pci_bridge32_a": 0.52, "pci_bridge32_b": 0.35,
	"superblue11_a": 0.42, "superblue12": 0.62, "superblue14": 0.38,
	"superblue16_a": 0.50, "superblue19": 0.52,
	"tiny_hot": 0.50, "tiny_open": 0.35,
}

func main() {
	names := synth.Table1Designs()
	if len(os.Args) > 1 {
		names = os.Args[1:]
	}
	for _, n := range names {
		d := synth.MustGenerate(n)
		opt := core.Options{Mode: core.ModeWirelength, SkipDetailed: true}
		if _, err := core.Place(d, opt); err != nil {
			fmt.Println(n, "ERR", err)
			continue
		}
		hint := core.DefaultGridHint(len(d.Cells))
		g := route.NewGrid(d, hint)
		res := route.NewRouter(d, g).Route()
		sum := stats.Summarize(res.Util)
		p50, p90, p99 := sum.P50, sum.P90, sum.P99
		cur := synth.Catalog()[n].CapacityScale
		suggest := cur
		if tgt, ok := targetP50[n]; ok && p50 > 0 {
			suggest = cur * p50 / tgt
		}
		fmt.Printf("%-16s grid=%-3d p50=%.2f p90=%.2f p99=%.2f max=%.2f ovfCells=%d/%d cap=%.2f suggest=%.2f\n",
			n, g.NX, p50, p90, p99, res.MaxUtil, res.OverflowCells, g.NX*g.NY, cur, suggest)
	}
}
