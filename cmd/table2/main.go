// Command table2 regenerates the paper's Table II ablation: the Xplace-Route
// baseline against the framework with MCI, MCI+DC and MCI+DC+DPA enabled,
// reporting average ratios normalized to the full configuration.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/synth"
)

func main() {
	designs := flag.String("designs", "", "comma-separated design subset (default: all 20)")
	grid := flag.Int("grid", 0, "grid hint (0 = auto per design)")
	quiet := flag.Bool("q", false, "suppress progress")
	flag.Parse()

	names := synth.Table1Designs()
	if *designs != "" {
		names = strings.Split(*designs, ",")
	}
	var log *os.File
	if !*quiet {
		log = os.Stderr
	}
	rows, err := core.RunTable2(names, *grid, log)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	var order []string
	for _, cfg := range core.Table2Configs() {
		order = append(order, cfg.Label)
	}
	core.WriteTable(os.Stdout, rows, order, "MCI+DC+DPA")
}
