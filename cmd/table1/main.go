// Command table1 regenerates the paper's Table I: Xplace vs Xplace-Route vs
// Ours on the 20 synthetic ISPD 2015 designs, reporting DRWL, #DRVias,
// #DRVs, placement time and routing time with average ratios normalized to
// Ours.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/synth"
)

func main() {
	designs := flag.String("designs", "", "comma-separated design subset (default: all 20)")
	grid := flag.Int("grid", 0, "grid hint (0 = auto per design)")
	quiet := flag.Bool("q", false, "suppress progress")
	flag.Parse()

	names := synth.Table1Designs()
	if *designs != "" {
		names = strings.Split(*designs, ",")
	}
	var log *os.File
	if !*quiet {
		log = os.Stderr
	}
	rows, err := core.RunTable1(names, *grid, log)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	core.WriteTable(os.Stdout, rows, []string{"xplace", "xplace-route", "ours"}, "ours")
}
