// Command tracereport summarizes a JSONL telemetry trace produced by
// `placer -trace out.jsonl` (or any telemetry.Observer sink): a per-stage
// timing table from the span tree, ASCII convergence sparklines for every
// snapshot series (density overflow, overflow score, λ₁, λ₂, γ, inflation
// ratios, …) and the final metrics dump.
//
// With -canon the trace is instead canonicalized (telemetry.StripTimings:
// durations, timing events and volatile metrics removed) and written to
// stdout verbatim — two runs of the same deterministic placement produce
// byte-identical -canon output, which the CI interrupt-resume job diffs.
//
// Usage:
//
//	go run ./cmd/tracereport out.jsonl
//	go run ./cmd/tracereport -canon out.jsonl
//	go run ./cmd/placer -design fft_1 -trace - | go run ./cmd/tracereport -
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/telemetry"
)

func main() {
	canon := flag.Bool("canon", false, "emit the canonical (timing-stripped) trace instead of a report")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: tracereport [-canon] <trace.jsonl | ->")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	var in io.Reader = os.Stdin
	if flag.Arg(0) != "-" {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
	}
	if *canon {
		raw, err := io.ReadAll(in)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		out, err := telemetry.StripTimings(raw)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		os.Stdout.Write(out)
		return
	}
	tr, err := telemetry.ReadTrace(in)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	tr.WriteReport(os.Stdout)
}
