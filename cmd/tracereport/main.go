// Command tracereport summarizes a JSONL telemetry trace produced by
// `placer -trace out.jsonl` (or any telemetry.Observer sink): a per-stage
// timing table from the span tree, ASCII convergence sparklines for every
// snapshot series (density overflow, overflow score, λ₁, λ₂, γ, inflation
// ratios, …) and the final metrics dump.
//
// Usage:
//
//	go run ./cmd/tracereport out.jsonl
//	go run ./cmd/placer -design fft_1 -trace - | go run ./cmd/tracereport -
package main

import (
	"fmt"
	"io"
	"os"

	"repro/internal/telemetry"
)

func main() {
	if len(os.Args) != 2 || os.Args[1] == "-h" || os.Args[1] == "--help" {
		fmt.Fprintln(os.Stderr, "usage: tracereport <trace.jsonl | ->")
		os.Exit(2)
	}
	var in io.Reader = os.Stdin
	if os.Args[1] != "-" {
		f, err := os.Open(os.Args[1])
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
	}
	tr, err := telemetry.ReadTrace(in)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	tr.WriteReport(os.Stdout)
}
