// Command tracereport summarizes a JSONL telemetry trace produced by
// `placer -trace out.jsonl` (or any telemetry.Observer sink): a per-stage
// timing table from the span tree, ASCII convergence sparklines for every
// snapshot series (density overflow, overflow score, λ₁, λ₂, γ, inflation
// ratios, …) and the final metrics dump (histograms with p50/p95/p99).
// Traces from multilevel runs (placer -levels N) carry "L<k>/"-prefixed
// stage names; the timing table is then split into one sub-table per
// hierarchy level, coarsest first, in the order the levels executed.
// Malformed trace lines are reported to stderr with file:line context and
// skipped — one truncated write never hides the rest of the report.
//
// With -canon the trace is instead canonicalized (telemetry.StripTimings:
// durations, timing events and volatile metrics removed) and written to
// stdout verbatim — two runs of the same deterministic placement produce
// byte-identical -canon output, which the CI interrupt-resume and
// dashboard-smoke jobs diff.
//
// With -diff two traces are compared (report.Compare): per-stage timing
// deltas, per-metric final-value deltas and iteration-count drift. The
// exit status is 1 exactly when DETERMINISTIC drift exists (non-volatile
// metrics, iteration counts, stage counts) — two identical-seed runs diff
// clean regardless of wall-clock differences.
//
// Usage:
//
//	go run ./cmd/tracereport out.jsonl
//	go run ./cmd/tracereport -canon out.jsonl
//	go run ./cmd/tracereport -diff a.jsonl b.jsonl
//	go run ./cmd/placer -design fft_1 -trace - | go run ./cmd/tracereport -
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/telemetry"
	"repro/internal/telemetry/report"
)

func main() {
	canon := flag.Bool("canon", false, "emit the canonical (timing-stripped) trace instead of a report")
	diff := flag.Bool("diff", false, "compare two traces; exit 1 on deterministic drift")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: tracereport [-canon] <trace.jsonl | ->")
		fmt.Fprintln(os.Stderr, "       tracereport -diff <a.jsonl> <b.jsonl>")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *diff {
		if flag.NArg() != 2 {
			flag.Usage()
			os.Exit(2)
		}
		a := readTraceArg(flag.Arg(0))
		b := readTraceArg(flag.Arg(1))
		d := report.Compare(a, b)
		d.WriteReport(os.Stdout)
		if len(d.DeterministicDrift()) > 0 {
			os.Exit(1)
		}
		return
	}

	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	name := flag.Arg(0)
	in, closeIn := openArg(name)
	defer closeIn()
	if *canon {
		raw, err := io.ReadAll(in)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		out, err := telemetry.StripTimings(raw)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		os.Stdout.Write(out)
		return
	}
	tr, err := report.ReadTrace(in)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	warnMalformed(name, tr)
	tr.WriteReport(os.Stdout)
}

// openArg opens a trace argument ("-" = stdin).
func openArg(name string) (io.Reader, func()) {
	if name == "-" {
		return os.Stdin, func() {}
	}
	f, err := os.Open(name)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	return f, func() { f.Close() }
}

// readTraceArg fully parses one trace argument, reporting malformed lines.
func readTraceArg(name string) *report.Trace {
	in, closeIn := openArg(name)
	defer closeIn()
	tr, err := report.ReadTrace(in)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	warnMalformed(name, tr)
	return tr
}

// warnMalformed prints each skipped line as name:line to stderr.
func warnMalformed(name string, tr *report.Trace) {
	if name == "-" {
		name = "<stdin>"
	}
	for _, m := range tr.Malformed {
		fmt.Fprintf(os.Stderr, "%s:%d: skipping malformed trace line: %v\n", name, m.Line, m.Err)
	}
}
