// Command congmap reproduces the paper's Fig. 1: it places a design, routes
// it, and renders an ASCII congestion map in which every overflowed G-cell
// is classified as LOCAL congestion (cell-driven — 'L') or GLOBAL congestion
// (through-net-driven — 'G'), the distinction that motivates treating the
// two with different techniques (cell inflation vs net moving).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	nmplace "repro"
)

func main() {
	design := flag.String("design", "fft_b", "design name")
	place := flag.Bool("place", true, "run the wirelength placer first (false = raw generated positions)")
	flag.Parse()

	d, err := nmplace.GenerateBenchmark(*design)
	if err != nil {
		log.Fatal(err)
	}
	if *place {
		if _, err := nmplace.Place(d, nmplace.Options{Mode: nmplace.ModeXplace}); err != nil {
			log.Fatal(err)
		}
	}

	classes, nx, ny := nmplace.DecomposeCongestion(d, 0)
	var local, global int
	for _, c := range classes {
		switch c {
		case nmplace.LocalCongestion:
			local++
		case nmplace.GlobalCongestion:
			global++
		}
	}
	fmt.Printf("design %s: %d G-cells, %d locally congested (L), %d globally congested (G)\n\n",
		*design, nx*ny, local, global)

	// Downsample to at most 96 columns for the terminal.
	step := 1
	for nx/step > 96 {
		step *= 2
	}
	for y := ny - step; y >= 0; y -= step {
		row := make([]byte, 0, nx/step)
		for x := 0; x+step <= nx; x += step {
			// A block is 'L'/'G' if any member cell is; 'L' wins ties.
			ch := byte('.')
			for dy := 0; dy < step; dy++ {
				for dx := 0; dx < step; dx++ {
					switch classes[(y+dy)*nx+x+dx] {
					case nmplace.LocalCongestion:
						ch = 'L'
					case nmplace.GlobalCongestion:
						if ch == '.' {
							ch = 'G'
						}
					}
				}
			}
			row = append(row, ch)
		}
		fmt.Fprintln(os.Stdout, string(row))
	}
	fmt.Println("\nL = local congestion (cell clustering; relieved by cell inflation)")
	fmt.Println("G = global congestion (through nets; relieved by net moving)")
}
