// Command citool bundles the tiny file checks CI used to shell out to
// python3 for, so the workflow needs nothing beyond the repo's own Go
// toolchain:
//
//	citool flip-byte <file>   flip one bit of the file's middle byte in
//	                          place (corrupts a checkpoint for the
//	                          resume-smoke fallback leg)
//	citool png-magic <file>   verify the file starts with the 8-byte PNG
//	                          signature (dashboard-smoke heatmap check)
//	citool kill9 <pid>        SIGKILL the process — the chaos-server smoke
//	                          murders job workers mid-stage with it, with no
//	                          chance for the victim to flush or clean up
//
// Exit codes: 0 success / check passed, 1 check failed or I/O error,
// 2 usage error.
package main

import (
	"bytes"
	"fmt"
	"os"
	"strconv"
	"syscall"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	if len(args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: citool flip-byte|png-magic <file> | kill9 <pid>")
		return 2
	}
	cmd, path := args[0], args[1]
	switch cmd {
	case "kill9":
		pid, err := strconv.Atoi(path)
		if err != nil || pid <= 0 {
			fmt.Fprintf(os.Stderr, "citool: kill9 wants a positive pid, got %q\n", path)
			return 2
		}
		if err := syscall.Kill(pid, syscall.SIGKILL); err != nil {
			fmt.Fprintf(os.Stderr, "citool: kill9 %d: %v\n", pid, err)
			return 1
		}
		fmt.Printf("killed pid %d\n", pid)
		return 0
	case "flip-byte":
		data, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "citool: %v\n", err)
			return 1
		}
		if len(data) == 0 {
			fmt.Fprintf(os.Stderr, "citool: %s is empty\n", path)
			return 1
		}
		data[len(data)/2] ^= 0x01
		if err := os.WriteFile(path, data, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "citool: %v\n", err)
			return 1
		}
		fmt.Printf("flipped byte %d of %s\n", len(data)/2, path)
		return 0
	case "png-magic":
		magic := []byte{0x89, 'P', 'N', 'G', '\r', '\n', 0x1a, '\n'}
		data, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "citool: %v\n", err)
			return 1
		}
		if len(data) < len(magic) || !bytes.Equal(data[:len(magic)], magic) {
			fmt.Fprintf(os.Stderr, "citool: %s is not a PNG\n", path)
			return 1
		}
		fmt.Printf("%s: PNG signature ok (%d bytes)\n", path, len(data))
		return 0
	default:
		fmt.Fprintf(os.Stderr, "citool: unknown command %q\n", cmd)
		return 2
	}
}
