// Command dashboard replays a saved JSONL telemetry trace in the live
// observability UI: the same HTML page `placer -serve` streams during a
// run, fed from the trace file instead. With a second trace the page adds
// an A/B panel holding the trace diff (report.Compare) — per-stage timing
// deltas, per-metric final-value deltas and iteration-count drift.
//
// Usage:
//
//	go run ./cmd/dashboard [-addr localhost:8080] trace.jsonl
//	go run ./cmd/dashboard a.jsonl b.jsonl        # A/B: page shows diff vs b
package main

import (
	"bufio"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"strings"

	"repro/internal/dashboard"
	"repro/internal/telemetry"
	"repro/internal/telemetry/report"
)

func main() {
	os.Exit(run())
}

func run() int {
	addr := flag.String("addr", "localhost:8080", "listen address")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: dashboard [-addr host:port] <trace.jsonl> [b.jsonl]")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() < 1 || flag.NArg() > 2 {
		flag.Usage()
		return 2
	}

	// Feed the whole trace into a hub, then close it: subscribers (the SSE
	// handler) see the complete stream as backlog followed by eof, exactly
	// like a live run that has finished.
	hub := telemetry.NewHub(nil)
	if err := feedFile(hub, flag.Arg(0)); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	hub.Close()

	title := "replay: " + flag.Arg(0)
	srv := dashboard.NewServer(hub, title)
	if flag.NArg() == 2 {
		a, err := parseFile(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		b, err := parseFile(flag.Arg(1))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		var sb strings.Builder
		fmt.Fprintf(&sb, "A = %s\nB = %s\n\n", flag.Arg(0), flag.Arg(1))
		report.Compare(a, b).WriteReport(&sb)
		srv.SetDiff(sb.String())
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	fmt.Fprintf(os.Stderr, "dashboard listening on http://%s/\n", ln.Addr())
	if err := http.Serve(ln, srv.Handler()); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	return 0
}

// feedFile writes each line of the trace file into the hub.
func feedFile(hub *telemetry.Hub, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for sc.Scan() {
		tok := sc.Bytes()
		if len(tok) == 0 {
			continue
		}
		line := make([]byte, len(tok)+1)
		copy(line, tok)
		line[len(tok)] = '\n'
		if _, err := hub.Write(line); err != nil {
			return err
		}
	}
	return sc.Err()
}

// parseFile reads a trace file through the report parser, reporting
// malformed lines to stderr.
func parseFile(path string) (*report.Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	tr, err := report.ReadTrace(f)
	if err != nil {
		return nil, err
	}
	for _, m := range tr.Malformed {
		fmt.Fprintf(os.Stderr, "%s:%d: skipping malformed trace line: %v\n", path, m.Line, m.Err)
	}
	return tr, nil
}
