// Netmoving demonstrates the paper's Fig. 3 mechanism end to end: a two-pin
// "victim" net whose chord crosses a routing hotspot is moved sideways by
// the differentiable congestion term (virtual cell + projected gradient),
// while a run without the DC technique leaves it pinned in the congestion.
//
// The example builds the scenario with the public Builder API, places it
// twice (DC off / DC on), and reports the congestion crossed by the victim
// net's chord in each result.
package main

import (
	"fmt"
	"log"

	nmplace "repro"
)

// buildScenario creates a die with a traffic hotspot in the center band and
// one long two-pin victim net crossing it. The victim cells are returned by
// index.
func buildScenario() (*nmplace.Design, int, int) {
	b := nmplace.NewBuilder("fig3", 0, 0, 256, 256, 8, 1)
	// Hotspot: a block of heavily interconnected cells mid-die.
	const n = 64
	for i := 0; i < n; i++ {
		b.AddCell("h", nmplace.StdCell, 112+float64(i%8)*4, 112+float64(i/8)*4, 3, 8)
	}
	for _, stride := range []int{1, 2, 3, 8, 16, 24} {
		for i := 0; i+stride < n; i++ {
			net := b.AddNet("hn", 1)
			b.Connect(i, net, 0, 0)
			b.Connect(i+stride, net, 0, 0)
		}
	}
	// Victim: two cells left and right of the hotspot, same y.
	va := b.AddCell("victimA", nmplace.StdCell, 24, 128, 3, 8)
	vb := b.AddCell("victimB", nmplace.StdCell, 232, 128, 3, 8)
	vn := b.AddNet("victim", 1)
	b.Connect(va, vn, 0, 0)
	b.Connect(vb, vn, 0, 0)
	// Anchor the victim cells with IO pads at mid-height on the left and
	// right die edges: wirelength pulls the victims toward y=128 (straight
	// through the hotspot, which the placer clusters at the die center);
	// only the congestion force can move the net off that band.
	pa := b.AddCell("padA", nmplace.IOPad, 0, 128, 1, 1)
	pb := b.AddCell("padB", nmplace.IOPad, 256, 128, 1, 1)
	na := b.AddNet("anchorA", 4)
	b.Connect(va, na, 0, 0)
	b.Connect(pa, na, 0, 0)
	nb := b.AddNet("anchorB", 4)
	b.Connect(vb, nb, 0, 0)
	b.Connect(pb, nb, 0, 0)
	b.SetRouteCapScale(0.30)
	d := b.MustBuild()
	return d, va, vb
}

// chordCongestion samples the congestion map along the victim chord.
func chordCongestion(d *nmplace.Design, va, vb int) float64 {
	cong, nx, ny := nmplace.CongestionMap(d, 32)
	a, c := &d.Cells[va], &d.Cells[vb]
	var sum float64
	const samples = 64
	for i := 0; i <= samples; i++ {
		t := float64(i) / samples
		x := a.X + t*(c.X-a.X)
		y := a.Y + t*(c.Y-a.Y)
		bx := int(x / d.Die.W() * float64(nx))
		by := int(y / d.Die.H() * float64(ny))
		if bx >= nx {
			bx = nx - 1
		}
		if by >= ny {
			by = ny - 1
		}
		sum += cong[by*nx+bx]
	}
	return sum / (samples + 1)
}

func run(dc bool) {
	d, va, vb := buildScenario()
	tech := nmplace.Techniques{MCI: true, DPA: false, DC: dc}
	_, err := nmplace.Place(d, nmplace.Options{Mode: nmplace.ModeOurs, Tech: tech})
	if err != nil {
		log.Fatal(err)
	}
	label := "DC off"
	if dc {
		label = "DC on "
	}
	fmt.Printf("%s: victim cells at y=(%.0f, %.0f), mean congestion along chord %.4f\n",
		label, d.Cells[va].Y, d.Cells[vb].Y, chordCongestion(d, va, vb))
}

func main() {
	fmt.Println("Fig. 3 walk-through: two-pin net moving out of a congestion hotspot")
	run(false)
	run(true)
	fmt.Println("(with DC on, the virtual-cell gradient pushes the whole victim net")
	fmt.Println(" perpendicular to its chord, off the hotspot band)")
}
