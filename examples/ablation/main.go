// Ablation runs the paper's Table II study in miniature on one design: the
// Xplace-Route baseline against the framework with MCI, MCI+DC, and
// MCI+DC+DPA, printing the DRV trend as techniques accumulate.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	nmplace "repro"
)

func main() {
	design := flag.String("design", "des_perf_1", "design name")
	flag.Parse()

	rows, err := nmplace.RunTable2([]string{*design}, 0, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Table II ablation on %s (paper Avg.Ratio trend: 1.40 → 1.27 → 1.12 → 1.00)\n\n", *design)
	nmplace.WriteTable(os.Stdout, rows,
		[]string{"baseline (Xplace-Route)", "MCI", "MCI+DC", "MCI+DC+DPA"}, "MCI+DC+DPA")
}
