// Quickstart: generate a benchmark, place it with the paper's framework and
// with the two baselines, and compare the post-route scorecards.
package main

import (
	"fmt"
	"log"

	nmplace "repro"
)

func main() {
	for _, mode := range []struct {
		name string
		mode nmplace.Mode
	}{
		{"Xplace (wirelength only)", nmplace.ModeXplace},
		{"Xplace-Route (baseline) ", nmplace.ModeXplaceRoute},
		{"Ours (paper framework)  ", nmplace.ModeOurs},
	} {
		// Each run gets a fresh copy of the design: Place moves cells.
		d, err := nmplace.GenerateBenchmark("fft_1")
		if err != nil {
			log.Fatal(err)
		}
		res, err := nmplace.Place(d, nmplace.Options{
			Mode: mode.mode,
			Tech: nmplace.AllTechniques(),
		})
		if err != nil {
			log.Fatal(err)
		}
		m := res.Metrics
		fmt.Printf("%s  DRWL=%9.0f  #DRVias=%6d  #DRVs=%6d  HPWL=%9.0f  PT=%5.2fs\n",
			mode.name, m.DRWL, m.DRVias, m.DRVs, res.HPWLFinal, res.PlaceTime.Seconds())
	}
}
