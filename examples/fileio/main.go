// Fileio demonstrates the design checkpoint workflow: build a custom design
// with the Builder API, place it, save the placed result to the library's
// text format, reload it, and verify the reloaded placement scores
// identically — the round trip suitable for handing placements between
// tools or storing regression baselines.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	nmplace "repro"
)

func main() {
	// A small custom design: two communicating blocks and one macro.
	b := nmplace.NewBuilder("custom_demo", 0, 0, 160, 160, 8, 1)
	b.AddCell("blk", nmplace.Macro, 120, 120, 48, 48)
	const n = 120
	for i := 0; i < n; i++ {
		b.AddCell(fmt.Sprintf("c%d", i), nmplace.StdCell, 80, 80, 2+float64(i%3), 8)
	}
	for i := 0; i+1 < n; i++ {
		net := b.AddNet(fmt.Sprintf("n%d", i), 1)
		b.Connect(1+i, net, 0, 0)
		b.Connect(1+(i+1)%n, net, 0, 0)
		if i%5 == 0 {
			b.Connect(0, net, -20, -20) // macro pin
		}
	}
	d, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}

	res, err := nmplace.Place(d, nmplace.Options{Mode: nmplace.ModeOurs, Tech: nmplace.AllTechniques()})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("placed %s: HPWL %.0f, DRVs %d\n", d.Name, res.HPWLFinal, res.Metrics.DRVs)

	path := filepath.Join(os.TempDir(), "custom_demo.nmp")
	if err := nmplace.SaveDesign(path, d); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("saved to %s\n", path)

	back, err := nmplace.LoadDesign(path)
	if err != nil {
		log.Fatal(err)
	}
	m := nmplace.Evaluate(back, 32)
	fmt.Printf("reloaded: HPWL %.0f, DRVs %d\n", back.HPWL(), m.DRVs)
	if back.HPWL() == d.HPWL() && m.DRVs == res.Metrics.DRVs {
		fmt.Println("round trip exact ✓")
	} else {
		fmt.Println("round trip MISMATCH ✗")
	}
	os.Remove(path)
}
