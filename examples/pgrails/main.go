// Pgrails reproduces the paper's Fig. 4 on the synthetic matrix_mult_a: PG
// rails are cut by the 10%-expanded macro bounding boxes and only pieces at
// least 0.2× the die width survive for density adjustment. The example
// prints the before/after rail statistics and an ASCII map of macros and
// selected rails.
package main

import (
	"fmt"
	"log"
	"strings"

	nmplace "repro"
)

func main() {
	d, err := nmplace.GenerateBenchmark("matrix_mult_a")
	if err != nil {
		log.Fatal(err)
	}
	selected := nmplace.SelectPGRails(d)

	var totalLen, selLen float64
	for _, r := range d.Rails {
		totalLen += r.Seg.Len()
	}
	for _, r := range selected {
		selLen += r.Seg.Len()
	}
	st := d.ComputeStats()
	fmt.Printf("design %s: %d macros, %d PG rails (total length %.0f)\n",
		d.Name, st.NumMacros, len(d.Rails), totalLen)
	fmt.Printf("after selection: %d rail pieces kept, length %.0f (%.0f%%)\n",
		len(selected), selLen, 100*selLen/totalLen)

	// ASCII rendering: '#' macro, '=' selected rail, '.' empty.
	const W, H = 72, 36
	gridAt := func(x, y float64) (int, int) {
		cx := int(x / d.Die.W() * W)
		cy := int(y / d.Die.H() * H)
		if cx >= W {
			cx = W - 1
		}
		if cy >= H {
			cy = H - 1
		}
		return cx, cy
	}
	canvas := make([][]byte, H)
	for i := range canvas {
		canvas[i] = []byte(strings.Repeat(".", W))
	}
	for _, m := range d.MacroRects() {
		x0, y0 := gridAt(m.Lo.X, m.Lo.Y)
		x1, y1 := gridAt(m.Hi.X, m.Hi.Y)
		for y := y0; y <= y1; y++ {
			for x := x0; x <= x1; x++ {
				canvas[y][x] = '#'
			}
		}
	}
	for _, r := range selected {
		x0, y0 := gridAt(r.Seg.A.X, r.Seg.A.Y)
		x1, _ := gridAt(r.Seg.B.X, r.Seg.B.Y)
		if x1 < x0 {
			x0, x1 = x1, x0
		}
		for x := x0; x <= x1; x++ {
			if canvas[y0][x] == '.' {
				canvas[y0][x] = '='
			}
		}
	}
	fmt.Println("\nselected rails (=) and macros (#), die top at bottom:")
	for y := H - 1; y >= 0; y-- {
		fmt.Println(string(canvas[y]))
	}
}
