#!/bin/sh
# check.sh — the full local gate: formatting, vet, build, race-enabled tests.
# Run before every commit; CI runs exactly this.
set -eu

cd "$(dirname "$0")"

echo "== gofmt =="
# Explicit path roots (not `.`): gofmt -l . descends into whatever non-Go
# trees accumulate next to the module (editor state, build output) and so
# behaves differently between environments. -d prints the diff so the CI
# log shows exactly what to fix.
unformatted=$(gofmt -l ./cmd ./internal ./examples ./*.go)
if [ -n "$unformatted" ]; then
	echo "gofmt needed on:"
	echo "$unformatted"
	gofmt -d ./cmd ./internal ./examples ./*.go
	exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test -race =="
go test -race ./...

echo "OK"
