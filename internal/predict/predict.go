// Package predict implements a cheap, deterministic, per-G-cell congestion
// predictor: a ridge regression over RUDY, pin-density and macro-proximity
// feature planes (internal/route.FeatureMaps), fitted online against the
// pattern router's own utilization maps. The routability stage uses it two
// ways — to SKIP router calls whose predicted congestion delta since the
// last real call is below threshold, and to SEED inflation with predicted
// utilization between real calls (see DESIGN.md §13).
//
// Everything is serial fixed-order float arithmetic over deterministic
// inputs (the feature planes are shard-merged, bitwise-identical at every
// worker count), so predictions, gate decisions and therefore the whole
// placement trajectory are byte-identical across -workers settings. The
// accumulated normal equations, weights and reference prediction serialize
// through the checkpoint so resume replays the identical gate sequence.
package predict

import (
	"fmt"
	"math"

	"repro/internal/route"
)

// K is the feature dimension: bias, capacity-normalized RUDY, its 3×3 blur,
// pin density, its blur, and the static capacity ratio (macro proximity).
const K = 6

// DefaultRidge is the ridge coefficient λ; the effective regularizer is
// λ·rows so the prior keeps a constant weight relative to the data as
// observations accumulate.
const DefaultRidge = 1e-2

// Oracle is the online ridge-regression congestion predictor. The zero
// value is not usable; construct with New.
type Oracle struct {
	Ridge float64

	rows    int  // total observations (G-cells) accumulated
	fits    int  // completed Observe calls (refits)
	trained bool // at least one successful fit

	ata []float64 // K×K normal matrix AᵀA, row-major
	atb []float64 // K-vector Aᵀb
	w   []float64 // fitted weights

	// refPred is the per-G-cell predicted utilization at the features of
	// the last REAL router call (set by Rebase); Gate measures drift
	// against it.
	refPred []float64
	pred    []float64 // scratch for the latest prediction

	capTot  []float64 // static CapTotal per G-cell (feature normalizer)
	avgPins float64   // static pins-per-G-cell normalizer
}

// New builds an oracle for grid g. The normalizers are static per design:
// per-G-cell total capacity and the average pin count per G-cell.
func New(g *route.Grid, totalPins int) *Oracle {
	n := g.NX * g.NY
	o := &Oracle{
		Ridge:   DefaultRidge,
		ata:     make([]float64, K*K),
		atb:     make([]float64, K),
		w:       make([]float64, K),
		refPred: make([]float64, n),
		pred:    make([]float64, n),
		capTot:  make([]float64, n),
	}
	for i := 0; i < n; i++ {
		o.capTot[i] = g.CapTotal(i)
	}
	o.avgPins = float64(totalPins) / float64(n)
	if o.avgPins <= 0 {
		o.avgPins = 1
	}
	return o
}

// Trained reports whether at least one fit has completed — the gate never
// skips before the first real router call has been observed.
func (o *Oracle) Trained() bool { return o.trained }

// Fits returns the number of completed Observe calls.
func (o *Oracle) Fits() int { return o.fits }

// featureRow writes the K features of G-cell i into x.
func (o *Oracle) featureRow(f *route.FeatureMaps, i int, x *[K]float64) {
	c := o.capTot[i]
	if c < 1 {
		c = 1
	}
	x[0] = 1
	x[1] = f.RUDY[i] / c
	x[2] = f.RUDYBlur[i] / c
	x[3] = f.PinCount[i] / o.avgPins
	x[4] = f.PinBlur[i] / o.avgPins
	x[5] = f.CapRatio[i]
}

// Observe accumulates one (features, utilization) pair per G-cell into the
// normal equations and refits the weights. util is the router's un-clamped
// Util map; the accumulation walks G-cells in index order, serially, so the
// sums are a pure function of the inputs.
func (o *Oracle) Observe(f *route.FeatureMaps, util []float64) {
	var x [K]float64
	for i := range util {
		o.featureRow(f, i, &x)
		y := util[i]
		for a := 0; a < K; a++ {
			for b := a; b < K; b++ {
				o.ata[a*K+b] += x[a] * x[b]
			}
			o.atb[a] += x[a] * y
		}
	}
	o.rows += len(util)
	o.fits++
	o.refit()
}

// refit solves (AᵀA + λ·rows·I) w = Aᵀb by Cholesky decomposition. On a
// non-positive pivot (degenerate data despite the ridge) the previous
// weights are kept and the oracle stays/becomes untrained.
func (o *Oracle) refit() {
	var m [K * K]float64
	for a := 0; a < K; a++ {
		for b := a; b < K; b++ {
			v := o.ata[a*K+b]
			m[a*K+b] = v
			m[b*K+a] = v
		}
	}
	lambda := o.Ridge * float64(o.rows)
	for a := 0; a < K; a++ {
		m[a*K+a] += lambda
	}
	var l [K * K]float64
	for a := 0; a < K; a++ {
		for b := 0; b <= a; b++ {
			s := m[a*K+b]
			for c := 0; c < b; c++ {
				s -= l[a*K+c] * l[b*K+c]
			}
			if a == b {
				if s <= 0 {
					return // keep previous weights
				}
				l[a*K+a] = math.Sqrt(s)
			} else {
				l[a*K+b] = s / l[b*K+b]
			}
		}
	}
	// Forward then back substitution: L z = Aᵀb, Lᵀ w = z.
	var z [K]float64
	for a := 0; a < K; a++ {
		s := o.atb[a]
		for c := 0; c < a; c++ {
			s -= l[a*K+c] * z[c]
		}
		z[a] = s / l[a*K+a]
	}
	for a := K - 1; a >= 0; a-- {
		s := z[a]
		for c := a + 1; c < K; c++ {
			s -= l[c*K+a] * o.w[c]
		}
		o.w[a] = s / l[a*K+a]
	}
	o.trained = true
}

// PredictInto evaluates the fitted model at the current features and
// returns the predicted per-G-cell utilization. The returned slice is owned
// by the oracle and reused across calls.
func (o *Oracle) PredictInto(f *route.FeatureMaps) []float64 {
	var x [K]float64
	for i := range o.pred {
		o.featureRow(f, i, &x)
		var s float64
		for a := 0; a < K; a++ {
			s += o.w[a] * x[a]
		}
		o.pred[i] = s
	}
	return o.pred
}

// Pred returns the most recent prediction computed by PredictInto (and thus
// by Gate). The slice is owned by the oracle and reused across calls.
func (o *Oracle) Pred() []float64 { return o.pred }

// Gate predicts utilization at the current features and returns the mean
// absolute delta against the reference prediction (the prediction at the
// last real router call) plus the skip decision: skip is true exactly when
// the oracle is trained and the drift is below threshold. The delta is what
// the predict.gate_delta gauge reports.
func (o *Oracle) Gate(f *route.FeatureMaps, threshold float64) (delta float64, skip bool) {
	if !o.trained {
		return 0, false
	}
	pred := o.PredictInto(f)
	var s float64
	for i := range pred {
		s += math.Abs(pred[i] - o.refPred[i])
	}
	delta = s / float64(len(pred))
	return delta, delta < threshold
}

// Rebase snapshots the prediction at the current features (and current
// weights) as the new reference. Call it immediately after Observe on every
// real router call.
func (o *Oracle) Rebase(f *route.FeatureMaps) {
	copy(o.refPred, o.PredictInto(f))
}

// State is the serializable predictor state; all of it rides through the
// canonical checkpoint so a resumed run replays identical gate decisions.
type State struct {
	Rows    int
	Fits    int
	Trained bool
	ATA     []float64
	ATB     []float64
	W       []float64
	RefPred []float64
}

// State captures the oracle's mutable state (the static normalizers are
// reconstructed from the design on restore).
func (o *Oracle) State() State {
	return State{
		Rows:    o.rows,
		Fits:    o.fits,
		Trained: o.trained,
		ATA:     append([]float64(nil), o.ata...),
		ATB:     append([]float64(nil), o.atb...),
		W:       append([]float64(nil), o.w...),
		RefPred: append([]float64(nil), o.refPred...),
	}
}

// Restore overwrites the oracle's mutable state with a checkpoint capture.
func (o *Oracle) Restore(s State) error {
	if len(s.ATA) != K*K || len(s.ATB) != K || len(s.W) != K {
		return fmt.Errorf("predict: state dimension mismatch (ata=%d atb=%d w=%d, want %d/%d/%d)",
			len(s.ATA), len(s.ATB), len(s.W), K*K, K, K)
	}
	if len(s.RefPred) != len(o.refPred) {
		return fmt.Errorf("predict: refpred length %d, want %d G-cells", len(s.RefPred), len(o.refPred))
	}
	o.rows = s.Rows
	o.fits = s.Fits
	o.trained = s.Trained
	copy(o.ata, s.ATA)
	copy(o.atb, s.ATB)
	copy(o.w, s.W)
	copy(o.refPred, s.RefPred)
	return nil
}
