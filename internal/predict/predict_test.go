package predict

import (
	"math"
	"testing"

	"repro/internal/geom"
	"repro/internal/route"
)

// testGrid builds a literal 4×4 grid with uniform capacity 10 per G-cell.
func testGrid() *route.Grid {
	g := &route.Grid{
		NX:       4,
		NY:       4,
		Layers:   2,
		CellW:    10,
		CellH:    10,
		Die:      geom.Rect{Lo: geom.Point{X: 0, Y: 0}, Hi: geom.Point{X: 40, Y: 40}},
		LayerDir: []route.Dir{route.Horizontal, route.Vertical},
	}
	g.Cap = make([][]float64, 2)
	for l := range g.Cap {
		g.Cap[l] = make([]float64, 16)
		for i := range g.Cap[l] {
			g.Cap[l][i] = 5
		}
	}
	return g
}

// fillFeatures writes deterministic, linearly independent feature planes:
// the seed varies the planes between Observe calls so the normal matrix
// becomes well-conditioned.
func fillFeatures(f *route.FeatureMaps, seed float64) {
	for i := range f.RUDY {
		fi := float64(i)
		f.RUDY[i] = 3 + 0.5*fi + seed
		f.RUDYBlur[i] = 2 + 0.25*fi*fi/10 - seed
		f.PinCount[i] = float64(i % 5)
		f.PinBlur[i] = 1 + 0.1*fi + 0.3*seed
		f.CapRatio[i] = 1 - 0.02*fi
	}
}

// linearTarget evaluates a known linear model over the oracle's own feature
// rows, so the regression has an exactly recoverable optimum.
func linearTarget(o *Oracle, f *route.FeatureMaps, wTrue [K]float64) []float64 {
	util := make([]float64, len(f.RUDY))
	var x [K]float64
	for i := range util {
		o.featureRow(f, i, &x)
		var s float64
		for a := 0; a < K; a++ {
			s += wTrue[a] * x[a]
		}
		util[i] = s
	}
	return util
}

// TestOracleRecoversLinearModel: fitted predictions on noiseless linear data
// must land within the ridge bias of the targets.
func TestOracleRecoversLinearModel(t *testing.T) {
	g := testGrid()
	o := New(g, 48)
	f := route.NewFeatureMaps(g)
	wTrue := [K]float64{0.2, 0.8, 0.1, 0.3, 0.05, -0.4}
	for call := 0; call < 4; call++ {
		fillFeatures(f, float64(call))
		o.Observe(f, linearTarget(o, f, wTrue))
	}
	if !o.Trained() {
		t.Fatal("oracle not trained after 4 observations")
	}
	if o.Fits() != 4 {
		t.Fatalf("fits = %d, want 4", o.Fits())
	}
	fillFeatures(f, 1.5) // unseen features
	want := linearTarget(o, f, wTrue)
	got := o.PredictInto(f)
	for i := range want {
		if d := math.Abs(got[i] - want[i]); d > 0.05 {
			t.Fatalf("pred[%d] = %v, want %v (|Δ|=%v)", i, got[i], want[i], d)
		}
	}
}

// TestGate: untrained oracles never skip; after Rebase the gate skips at
// unchanged features and opens once features drift past the threshold.
func TestGate(t *testing.T) {
	g := testGrid()
	o := New(g, 48)
	f := route.NewFeatureMaps(g)
	fillFeatures(f, 0)
	if delta, skip := o.Gate(f, 1e9); skip || delta != 0 {
		t.Fatalf("untrained gate returned (delta=%v, skip=%v), want (0, false)", delta, skip)
	}
	wTrue := [K]float64{0.2, 0.8, 0.1, 0.3, 0.05, -0.4}
	for call := 0; call < 3; call++ {
		fillFeatures(f, float64(call))
		o.Observe(f, linearTarget(o, f, wTrue))
	}
	fillFeatures(f, 2)
	o.Rebase(f)
	if delta, skip := o.Gate(f, 1e-12); !skip || delta != 0 {
		t.Fatalf("gate at rebase features returned (delta=%v, skip=%v), want (0, true)", delta, skip)
	}
	fillFeatures(f, 7)
	delta, skip := o.Gate(f, 1e-12)
	if skip {
		t.Fatalf("gate skipped after a large feature drift (delta=%v)", delta)
	}
	if delta <= 0 {
		t.Fatalf("drifted features produced delta=%v, want > 0", delta)
	}
}

// TestStateRoundTrip: a restored oracle must be bitwise-indistinguishable
// from the original — identical predictions, gate deltas and further fits.
func TestStateRoundTrip(t *testing.T) {
	g := testGrid()
	o := New(g, 48)
	f := route.NewFeatureMaps(g)
	wTrue := [K]float64{0.1, 0.6, 0.2, 0.1, 0.1, -0.2}
	for call := 0; call < 3; call++ {
		fillFeatures(f, float64(call))
		o.Observe(f, linearTarget(o, f, wTrue))
	}
	fillFeatures(f, 1)
	o.Rebase(f)
	st := o.State()

	o2 := New(g, 48)
	if err := o2.Restore(st); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	fillFeatures(f, 4)
	p1 := append([]float64(nil), o.PredictInto(f)...)
	p2 := o2.PredictInto(f)
	for i := range p1 {
		if math.Float64bits(p1[i]) != math.Float64bits(p2[i]) {
			t.Fatalf("pred[%d] differs bitwise after restore", i)
		}
	}
	d1, s1 := o.Gate(f, 0.05)
	d2, s2 := o2.Gate(f, 0.05)
	if math.Float64bits(d1) != math.Float64bits(d2) || s1 != s2 {
		t.Fatalf("gate differs after restore: (%v,%v) vs (%v,%v)", d1, s1, d2, s2)
	}
	// Continue training both; they must stay locked together.
	fillFeatures(f, 5)
	util := linearTarget(o, f, wTrue)
	o.Observe(f, util)
	o2.Observe(f, util)
	w1 := o.State().W
	w2 := o2.State().W
	for a := range w1 {
		if math.Float64bits(w1[a]) != math.Float64bits(w2[a]) {
			t.Fatalf("w[%d] diverges after post-restore fit", a)
		}
	}

	// Dimension mismatches are rejected.
	bad := st
	bad.ATB = bad.ATB[:K-1]
	if err := o2.Restore(bad); err == nil {
		t.Fatal("short ATB accepted")
	}
	bad = st
	bad.RefPred = bad.RefPred[:3]
	if err := o2.Restore(bad); err == nil {
		t.Fatal("short RefPred accepted")
	}
}
