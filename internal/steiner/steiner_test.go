package steiner

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func treeLength(nodes []Point, edges []Edge) int {
	total := 0
	for _, e := range edges {
		total += dist(nodes[e.A], nodes[e.B])
	}
	return total
}

// connected verifies the edges span all terminals.
func connected(numNodes, numTerminals int, edges []Edge) bool {
	parent := make([]int, numNodes)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(v int) int {
		if parent[v] != v {
			parent[v] = find(parent[v])
		}
		return parent[v]
	}
	for _, e := range edges {
		parent[find(e.A)] = find(e.B)
	}
	root := find(0)
	for v := 1; v < numTerminals; v++ {
		if find(v) != root {
			return false
		}
	}
	return true
}

func TestMSTBasics(t *testing.T) {
	if edges, total := MST(nil); edges != nil || total != 0 {
		t.Errorf("empty MST wrong")
	}
	if edges, total := MST([]Point{{0, 0}}); edges != nil || total != 0 {
		t.Errorf("single-point MST wrong")
	}
	edges, total := MST([]Point{{0, 0}, {3, 4}})
	if len(edges) != 1 || total != 7 {
		t.Errorf("two-point MST: %v, %d", edges, total)
	}
	// Chain: MST of collinear points is the chain.
	edges, total = MST([]Point{{0, 0}, {10, 0}, {5, 0}, {2, 0}})
	if len(edges) != 3 || total != 10 {
		t.Errorf("collinear MST: %d edges, length %d (want 3, 10)", len(edges), total)
	}
}

func TestTreeTwoAndThreePoints(t *testing.T) {
	_, edges, total := Tree([]Point{{0, 0}, {5, 5}})
	if len(edges) != 1 || total != 10 {
		t.Errorf("two-point tree: %v, %d", edges, total)
	}
	// Three corner points: RSMT uses the corner Steiner point; length is the
	// half-perimeter of the bbox = 10+10 = 20, while the MST needs 30.
	pts := []Point{{0, 0}, {10, 0}, {0, 10}}
	_, mstLen := MST(pts)
	if mstLen != 20 {
		t.Fatalf("unexpected MST length %d", mstLen)
	}
	_, _, steinLen := Tree(pts)
	if steinLen > mstLen {
		t.Errorf("Steiner tree longer than MST: %d > %d", steinLen, mstLen)
	}
}

func TestTreeCrossSavesWirelength(t *testing.T) {
	// Four arms of a cross: the RSMT joins them at the center (length 40);
	// the MST must chain around (length > 40... actually 3 edges of 20 = 60).
	pts := []Point{{0, 10}, {20, 10}, {10, 0}, {10, 20}}
	_, mstLen := MST(pts)
	nodes, edges, steinLen := Tree(pts)
	if steinLen >= mstLen {
		t.Errorf("cross: Steiner %d not below MST %d", steinLen, mstLen)
	}
	if steinLen != 40 {
		t.Errorf("cross RSMT length %d, want 40", steinLen)
	}
	if !connected(len(nodes), 4, edges) {
		t.Errorf("tree does not span terminals")
	}
	// The center Steiner point must have been inserted.
	found := false
	for _, p := range nodes[4:] {
		if p == (Point{10, 10}) {
			found = true
		}
	}
	if !found {
		t.Errorf("center Steiner point not inserted: %v", nodes[4:])
	}
}

func TestTreeNeverWorseThanMST(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(7)
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = Point{rng.Intn(50), rng.Intn(50)}
		}
		_, mstLen := MST(pts)
		nodes, edges, steinLen := Tree(pts)
		if steinLen > mstLen {
			return false
		}
		if treeLength(nodes, edges) != steinLen {
			return false
		}
		return connected(len(nodes), n, edges)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestTreeDeterministic(t *testing.T) {
	pts := []Point{{3, 7}, {12, 1}, {5, 18}, {0, 4}, {9, 9}}
	n1, e1, l1 := Tree(pts)
	n2, e2, l2 := Tree(pts)
	if l1 != l2 || len(n1) != len(n2) || len(e1) != len(e2) {
		t.Fatalf("nondeterministic tree")
	}
	for i := range e1 {
		if e1[i] != e2[i] {
			t.Fatalf("edge %d differs", i)
		}
	}
}

func TestTreeLargeNetFallsBackToMST(t *testing.T) {
	// > maxHananPoints candidates: must fall back (no Steiner points).
	rng := rand.New(rand.NewSource(42))
	pts := make([]Point, 20)
	for i := range pts {
		pts[i] = Point{rng.Intn(1000), rng.Intn(1000)}
	}
	nodes, edges, total := Tree(pts)
	if len(nodes) != len(pts) {
		t.Errorf("fallback inserted Steiner points")
	}
	_, mstLen := MST(pts)
	if total != mstLen {
		t.Errorf("fallback length %d != MST %d", total, mstLen)
	}
	if !connected(len(nodes), len(pts), edges) {
		t.Errorf("fallback tree not spanning")
	}
}

func TestDuplicateCoordinatesHandled(t *testing.T) {
	// Duplicated x/y coordinates (shared rows/columns) are the common case.
	pts := []Point{{0, 0}, {0, 10}, {10, 0}, {10, 10}}
	nodes, edges, total := Tree(pts)
	if total != 30 {
		t.Errorf("square RSMT length %d, want 30", total)
	}
	if !connected(len(nodes), 4, edges) {
		t.Errorf("not spanning")
	}
}

func BenchmarkTree8Pins(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	pts := make([]Point, 8)
	for i := range pts {
		pts[i] = Point{rng.Intn(64), rng.Intn(64)}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Tree(pts)
	}
}
