// Package steiner constructs rectilinear Steiner minimal tree (RSMT)
// approximations for net decomposition in the global router. Two algorithms
// are provided:
//
//   - MST: Prim's minimum spanning tree under Manhattan distance — the
//     fallback for large nets;
//   - Tree: the iterated 1-Steiner heuristic of Kahng and Robins, which
//     repeatedly inserts the Hanan-grid point that shrinks the MST most.
//     For the small nets that dominate placement netlists it recovers most
//     of the RSMT wirelength advantage over a plain MST (up to ~12%).
//
// Points are in G-cell (or any Manhattan) coordinates. The returned edges
// reference the input points by index; Steiner points get indices ≥ len(pts).
package steiner

import "sort"

// Point is an integer grid location.
type Point struct {
	X, Y int
}

// Edge connects two point indices in the tree.
type Edge struct {
	A, B int
}

// maxHananPoints bounds the 1-Steiner candidate set; nets whose Hanan grid
// is larger fall back to the plain MST.
const maxHananPoints = 144

// dist is the Manhattan distance.
func dist(a, b Point) int {
	return abs(a.X-b.X) + abs(a.Y-b.Y)
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// MST returns Prim's minimum spanning tree edges over pts and the total
// Manhattan length. Fewer than two points yield no edges.
func MST(pts []Point) ([]Edge, int) {
	n := len(pts)
	if n < 2 {
		return nil, 0
	}
	const inf = int(^uint(0) >> 1)
	inTree := make([]bool, n)
	best := make([]int, n)
	parent := make([]int, n)
	for i := range best {
		best[i] = inf
		parent[i] = -1
	}
	best[0] = 0
	edges := make([]Edge, 0, n-1)
	total := 0
	for iter := 0; iter < n; iter++ {
		u, bd := -1, inf
		for i := 0; i < n; i++ {
			if !inTree[i] && best[i] < bd {
				u, bd = i, best[i]
			}
		}
		inTree[u] = true
		if parent[u] >= 0 {
			edges = append(edges, Edge{parent[u], u})
			total += bd
		}
		for i := 0; i < n; i++ {
			if inTree[i] {
				continue
			}
			if d := dist(pts[u], pts[i]); d < best[i] {
				best[i] = d
				parent[i] = u
			}
		}
	}
	return edges, total
}

// mstCost returns only the MST total length (no edge list), used in the
// candidate evaluation inner loop.
func mstCost(pts []Point) int {
	n := len(pts)
	if n < 2 {
		return 0
	}
	const inf = int(^uint(0) >> 1)
	inTree := make([]bool, n)
	best := make([]int, n)
	for i := range best {
		best[i] = inf
	}
	best[0] = 0
	total := 0
	for iter := 0; iter < n; iter++ {
		u, bd := -1, inf
		for i := 0; i < n; i++ {
			if !inTree[i] && best[i] < bd {
				u, bd = i, best[i]
			}
		}
		inTree[u] = true
		if iter > 0 {
			total += bd
		}
		for i := 0; i < n; i++ {
			if inTree[i] {
				continue
			}
			if d := dist(pts[u], pts[i]); d < best[i] {
				best[i] = d
			}
		}
	}
	return total
}

// Tree returns an RSMT approximation over pts: tree edges (indices into the
// returned point slice, whose first len(pts) entries are the inputs and the
// rest are inserted Steiner points) and the total length.
func Tree(pts []Point) ([]Point, []Edge, int) {
	n := len(pts)
	if n < 2 {
		return pts, nil, 0
	}
	if n == 2 {
		return pts, []Edge{{0, 1}}, dist(pts[0], pts[1])
	}

	// Hanan grid candidates: cross products of distinct x and y coordinates
	// that are not already terminals.
	xs := uniqueCoords(pts, func(p Point) int { return p.X })
	ys := uniqueCoords(pts, func(p Point) int { return p.Y })
	if len(xs)*len(ys) > maxHananPoints {
		edges, total := MST(pts)
		return pts, edges, total
	}
	occupied := make(map[Point]bool, n)
	for _, p := range pts {
		occupied[p] = true
	}
	var candidates []Point
	for _, x := range xs {
		for _, y := range ys {
			q := Point{x, y}
			if !occupied[q] {
				candidates = append(candidates, q)
			}
		}
	}

	// Iterated 1-Steiner: greedily insert the candidate with the largest
	// MST-cost reduction; drop Steiner points of degree ≤ 2 implicitly by
	// only keeping insertions that strictly help.
	nodes := append([]Point(nil), pts...)
	cost := mstCost(nodes)
	for len(candidates) > 0 {
		bestGain, bestIdx := 0, -1
		for ci, cand := range candidates {
			trial := append(nodes, cand)
			if g := cost - mstCost(trial); g > bestGain {
				bestGain, bestIdx = g, ci
			}
		}
		if bestIdx < 0 {
			break
		}
		nodes = append(nodes, candidates[bestIdx])
		cost -= bestGain
		candidates = append(candidates[:bestIdx], candidates[bestIdx+1:]...)
	}
	edges, total := MST(nodes)
	// Prune Steiner leaves: a Steiner point of degree 1 contributes nothing.
	nodes, edges, total = pruneSteinerLeaves(nodes, edges, len(pts), total)
	return nodes, edges, total
}

// pruneSteinerLeaves removes degree-1 Steiner points (and their edges)
// repeatedly; terminals are never removed.
func pruneSteinerLeaves(nodes []Point, edges []Edge, numTerminals, total int) ([]Point, []Edge, int) {
	for {
		deg := make([]int, len(nodes))
		for _, e := range edges {
			deg[e.A]++
			deg[e.B]++
		}
		removed := false
		for v := numTerminals; v < len(nodes); v++ {
			if deg[v] != 1 {
				continue
			}
			// Remove the single incident edge.
			for i, e := range edges {
				if e.A == v || e.B == v {
					total -= dist(nodes[e.A], nodes[e.B])
					edges = append(edges[:i], edges[i+1:]...)
					removed = true
					break
				}
			}
		}
		if !removed {
			return nodes, edges, total
		}
	}
}

func uniqueCoords(pts []Point, f func(Point) int) []int {
	seen := map[int]bool{}
	var out []int
	for _, p := range pts {
		if !seen[f(p)] {
			seen[f(p)] = true
			out = append(out, f(p))
		}
	}
	sort.Ints(out)
	return out
}
