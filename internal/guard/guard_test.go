package guard

import (
	"math"
	"testing"
)

func TestParsePolicy(t *testing.T) {
	cases := map[string]Policy{
		"off": Off, "": Off, "warn": Warn, "recover": Recover,
		"fail": Fail, "Recover": Recover, " FAIL ": Fail,
	}
	for s, want := range cases {
		got, err := ParsePolicy(s)
		if err != nil || got != want {
			t.Errorf("ParsePolicy(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := ParsePolicy("retry"); err == nil {
		t.Error("ParsePolicy accepted an unknown policy")
	}
	for _, p := range []Policy{Off, Warn, Recover, Fail} {
		rt, err := ParsePolicy(p.String())
		if err != nil || rt != p {
			t.Errorf("policy %v does not round-trip through String/Parse", p)
		}
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{Policy: Recover}
	c.SetDefaults()
	if c.MaxRetries != 3 || c.Backoff != 0.5 || c.CheckEvery != 1 {
		t.Errorf("defaults = %+v, want MaxRetries 3, Backoff 0.5, CheckEvery 1", c)
	}
	// Negative sentinel: literal zero retries.
	c = Config{Policy: Recover, MaxRetries: -1}
	c.SetDefaults()
	if c.MaxRetries != 0 {
		t.Errorf("MaxRetries -1 resolved to %d, want 0", c.MaxRetries)
	}
	if (Config{}).Enabled() {
		t.Error("zero Config must be disabled")
	}
	if err := (Config{Policy: Recover, Backoff: 1.5}).Validate(); err == nil {
		t.Error("Validate accepted backoff 1.5")
	}
	if err := (Config{Policy: Off, Backoff: 1.5}).Validate(); err != nil {
		t.Error("Validate must ignore a disabled config")
	}
}

func TestFirstNonFinite(t *testing.T) {
	nan, inf := math.NaN(), math.Inf(1)
	cases := []struct {
		v    []float64
		want int
	}{
		{nil, -1},
		{[]float64{0, 1, -2.5}, -1},
		{[]float64{0, nan, nan}, 1},
		{[]float64{inf}, 0},
		{[]float64{1, 2, -inf}, 2},
		{[]float64{math.MaxFloat64, -math.MaxFloat64}, -1},
	}
	for _, c := range cases {
		if got := FirstNonFinite(c.v); got != c.want {
			t.Errorf("FirstNonFinite(%v) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestCheckers(t *testing.T) {
	if v := CheckFinite("positions", "wl:3", []float64{1, math.NaN()}); v == nil || v.Index != 1 {
		t.Errorf("CheckFinite missed the NaN: %v", v)
	}
	if v := CheckFinite("positions", "wl:3", []float64{1, 2}); v != nil {
		t.Errorf("CheckFinite false positive: %v", v)
	}
	if v := CheckScalar("wirelength", "wl:0", math.Inf(-1)); v == nil {
		t.Error("CheckScalar missed -Inf")
	}
	if v := CheckScalar("wirelength", "wl:0", 42); v != nil {
		t.Errorf("CheckScalar false positive: %v", v)
	}
	if v := CheckRange("overflow", "wl:0", -0.5, 0, 100); v == nil {
		t.Error("CheckRange missed a below-range value")
	}
	if v := CheckRange("overflow", "wl:0", math.NaN(), 0, 100); v == nil {
		t.Error("CheckRange missed NaN")
	}
	if v := CheckRange("overflow", "wl:0", 0.3, 0, 100); v != nil {
		t.Errorf("CheckRange false positive: %v", v)
	}
	viol := &Violation{Sentinel: "positions", Where: "routability:2.1", Index: 7, Value: math.NaN()}
	if s := viol.String(); s == "" {
		t.Error("empty violation string")
	}
}
