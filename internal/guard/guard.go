// Package guard is the numeric-integrity and fault-recovery layer of the
// placement pipeline. ePlace-family optimizers are fragile: one NaN in a
// wirelength gradient or one poisoned Poisson bin propagates through the
// spectral solve and the Nesterov update into every coordinate within a
// single step. The guard layer runs cheap deterministic sentinel scans at
// pipeline hook points and — depending on the configured policy — warns,
// rolls the run back to a last-good snapshot with a shrunken step, or fails
// with a typed error.
//
// The package itself is policy and detection only; the rollback machinery
// (what a snapshot contains, where the hooks sit) lives in internal/core,
// and the deterministic fault injections that exercise it live in
// internal/guard/inject.
package guard

import (
	"errors"
	"fmt"
	"math"
	"strings"
)

// Policy selects how the pipeline reacts to a sentinel violation. The zero
// value is Off, so a zero guard configuration changes nothing — canonical
// traces and benchmark baselines of unguarded runs stay byte-identical.
type Policy int

const (
	// Off disables all sentinel scans (and their telemetry counters).
	Off Policy = iota
	// Warn scans and logs violations but lets the run continue. Useful for
	// diagnosis; a real NaN will still corrupt the run downstream.
	Warn
	// Recover scans, and on a violation rolls the optimizer back to the
	// rolling last-good snapshot, shrinks the step estimate by the backoff
	// factor and retries — up to MaxRetries times, then the run fails with
	// ErrBudgetExhausted.
	Recover
	// Fail scans and stops the run with ErrViolation on the first hit.
	Fail
)

func (p Policy) String() string {
	switch p {
	case Off:
		return "off"
	case Warn:
		return "warn"
	case Recover:
		return "recover"
	case Fail:
		return "fail"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// ParsePolicy converts a flag string ("off", "warn", "recover", "fail")
// into a Policy.
func ParsePolicy(s string) (Policy, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "off":
		return Off, nil
	case "warn":
		return Warn, nil
	case "recover":
		return Recover, nil
	case "fail":
		return Fail, nil
	default:
		return Off, fmt.Errorf("guard: unknown policy %q (want off|warn|recover|fail)", s)
	}
}

// Config configures the guard layer of one placement run. It follows the
// core.Options sentinel convention: 0 selects the documented default,
// negative selects the literal zero where zero is meaningful.
type Config struct {
	// Policy is the reaction to a sentinel violation; the zero value Off
	// disables guarding entirely.
	Policy Policy
	// MaxRetries bounds the number of rollback recoveries per run under
	// Policy Recover (default 3; negative means zero retries — the first
	// violation exhausts the budget).
	MaxRetries int
	// Backoff is the deterministic factor the step estimate is multiplied
	// by on every recovery (default 0.5; must end up in (0,1)).
	Backoff float64
	// CheckEvery runs the sentinel scan every Nth optimizer step
	// (default 1: every step). Violations between scans are caught at the
	// next scheduled scan; the rolling snapshot is captured at the same
	// cadence.
	CheckEvery int
}

// Enabled reports whether any guarding is active.
func (c Config) Enabled() bool { return c.Policy != Off }

// SetDefaults resolves the sentinel values in place.
func (c *Config) SetDefaults() {
	if c.MaxRetries == 0 {
		c.MaxRetries = 3
	} else if c.MaxRetries < 0 {
		c.MaxRetries = 0
	}
	if c.Backoff == 0 {
		c.Backoff = 0.5
	}
	if c.CheckEvery <= 0 {
		c.CheckEvery = 1
	}
}

// Validate rejects configurations that cannot work (a backoff outside (0,1)
// would not shrink the step).
func (c Config) Validate() error {
	if !c.Enabled() {
		return nil
	}
	if c.Backoff <= 0 || c.Backoff >= 1 {
		return fmt.Errorf("guard: backoff %g outside (0,1)", c.Backoff)
	}
	return nil
}

// ErrViolation is the typed failure a Fail-policy run (or an unrecoverable
// Recover-policy violation) returns; the wrapped message carries the
// Violation detail.
var ErrViolation = errors.New("guard: numeric invariant violated")

// ErrBudgetExhausted is returned when Recover has used all MaxRetries
// rollbacks and a sentinel fires again.
var ErrBudgetExhausted = errors.New("guard: divergence retry budget exhausted")

// Violation describes one failed sentinel scan.
type Violation struct {
	// Sentinel names the failed invariant: "positions", "gradient_state",
	// "wirelength", "overflow", "density_field", "cells_outside_die",
	// "inflation", "congestion_score".
	Sentinel string
	// Where is the pipeline hook point, e.g. "wirelength:12" or
	// "routability:3.2" (iteration.step).
	Where string
	// Index is the offending vector element, or -1 when not applicable.
	Index int
	// Value is the offending value.
	Value float64
}

func (v *Violation) String() string {
	if v.Index >= 0 {
		return fmt.Sprintf("%s sentinel at %s: value %v at index %d", v.Sentinel, v.Where, v.Value, v.Index)
	}
	return fmt.Sprintf("%s sentinel at %s: value %v", v.Sentinel, v.Where, v.Value)
}

// FirstNonFinite returns the index of the first NaN or ±Inf in v, or -1
// when every element is finite.
func FirstNonFinite(v []float64) int {
	for i, x := range v {
		// x-x is 0 for finite x and NaN for NaN/±Inf: one branch per
		// element instead of two math.IsNaN/IsInf calls.
		if x-x != 0 {
			return i
		}
	}
	return -1
}

// CheckFinite scans a vector and returns a Violation for the first
// non-finite element, or nil.
func CheckFinite(sentinel, where string, v []float64) *Violation {
	if i := FirstNonFinite(v); i >= 0 {
		return &Violation{Sentinel: sentinel, Where: where, Index: i, Value: v[i]}
	}
	return nil
}

// CheckScalar returns a Violation when x is NaN or ±Inf.
func CheckScalar(sentinel, where string, x float64) *Violation {
	if x-x != 0 {
		return &Violation{Sentinel: sentinel, Where: where, Index: -1, Value: x}
	}
	return nil
}

// CheckRange returns a Violation when x is non-finite or outside [lo, hi].
func CheckRange(sentinel, where string, x, lo, hi float64) *Violation {
	if !(x >= lo && x <= hi) { // NaN fails both comparisons
		return &Violation{Sentinel: sentinel, Where: where, Index: -1, Value: x}
	}
	return nil
}

// IsFinite reports whether x is neither NaN nor ±Inf.
func IsFinite(x float64) bool { return !math.IsNaN(x) && !math.IsInf(x, 0) }
