// Package inject is the deterministic fault-injection registry behind the
// guard layer's chaos tests. A Registry arms named injection points at
// specific iteration indices; the pipeline consults ShouldFire at each
// point and applies the corresponding fault exactly once per armed (point,
// iteration) pair. A nil *Registry is the production configuration: every
// method is a no-op on the nil receiver, so the hooks cost one pointer
// comparison in unfaulted runs.
//
// Determinism contract: every fault is a pure function of the seed and the
// armed schedule. The same seed and schedule produce the same poisoned
// index, the same corrupted byte, the same cancellation step — at any
// worker count — which is what lets the chaos suite assert byte-identical
// recovery.
package inject

import (
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"
	"sync"
)

// Named injection points the pipeline consults.
const (
	// WAGradNaN writes a NaN into one WA wirelength gradient component at
	// objective evaluation k (the seed picks which component).
	WAGradNaN = "wa_grad_nan"
	// PoissonBin poisons one charge-density bin with +Inf immediately
	// before the k-th Poisson solve of the density model.
	PoissonBin = "poisson_bin"
	// CkptCorrupt flips one seed-chosen byte of the checkpoint file right
	// after the k-th checkpoint write (0-based).
	CkptCorrupt = "ckpt_corrupt"
	// CkptTruncate cuts the checkpoint file to a seed-chosen length after
	// the k-th checkpoint write.
	CkptTruncate = "ckpt_truncate"
	// Cancel makes the pipeline act as if its context were cancelled at
	// optimizer step k — deterministically, unlike a real timer.
	Cancel = "cancel"
	// WorkerCrash makes a job-server worker process exit abruptly (no
	// flush, no cleanup — the in-process stand-in for kill -9) at the k-th
	// stage boundary it crosses. The boundary index is global across a
	// job's worker restarts (the supervisor passes the count of boundaries
	// already observed), so an armed crash fires exactly once per index
	// even though every restarted worker re-arms the same schedule.
	WorkerCrash = "worker_crash"
	// WorkerStall wedges a worker process at the k-th stage boundary: it
	// stops heartbeating and blocks forever, so the supervisor's stall
	// detector — not the exit path — must reap it.
	WorkerStall = "worker_stall"
)

var knownPoints = map[string]bool{
	WAGradNaN: true, PoissonBin: true, CkptCorrupt: true,
	CkptTruncate: true, Cancel: true, WorkerCrash: true, WorkerStall: true,
}

// Registry is a seed-driven schedule of armed faults. The zero value is
// unusable; construct with New. Methods are safe for concurrent use, though
// the pipeline only consults them from its serial sections.
type Registry struct {
	mu    sync.Mutex
	seed  uint64
	armed map[string]map[int]bool // point → iteration → already fired?
	fired map[string]int          // point → times fired
}

// New creates an empty registry deriving all its pseudo-random choices
// (poisoned bin index, corrupted byte offset, …) from seed.
func New(seed int64) *Registry {
	return &Registry{
		seed:  uint64(seed),
		armed: make(map[string]map[int]bool),
		fired: make(map[string]int),
	}
}

// Arm schedules the named point to fire at iteration iter (what "iteration"
// counts is point-specific — see the point constants). Returns the registry
// for chaining. Arming an unknown point panics: the schedule is authored by
// tests, and a typo must not silently never fire.
func (r *Registry) Arm(point string, iter int) *Registry {
	if !knownPoints[point] {
		panic(fmt.Sprintf("inject: unknown injection point %q", point))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	m := r.armed[point]
	if m == nil {
		m = make(map[int]bool)
		r.armed[point] = m
	}
	m[iter] = false
	return r
}

// ArmSpec arms from a "point:iter" string (e.g. "wa_grad_nan:30").
func (r *Registry) ArmSpec(spec string) error {
	point, it, ok := strings.Cut(spec, ":")
	if !ok {
		return fmt.Errorf("inject: bad spec %q (want point:iter)", spec)
	}
	n, err := strconv.Atoi(it)
	if err != nil || n < 0 {
		return fmt.Errorf("inject: bad iteration in spec %q", spec)
	}
	if !knownPoints[point] {
		return fmt.Errorf("inject: unknown injection point %q", point)
	}
	r.Arm(point, n)
	return nil
}

// ShouldFire reports whether the named point is armed for iteration iter
// and has not fired yet; a true return marks it fired. Nil-safe: the
// production nil registry always returns false.
func (r *Registry) ShouldFire(point string, iter int) bool {
	if r == nil {
		return false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	m := r.armed[point]
	if m == nil {
		return false
	}
	fired, armed := m[iter]
	if !armed || fired {
		return false
	}
	m[iter] = true
	r.fired[point]++
	return true
}

// Fired returns how many times the named point has fired. Nil-safe.
func (r *Registry) Fired(point string) int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.fired[point]
}

// Index derives a deterministic pseudo-random index in [0, n) from the seed
// and the fire count so far — stable across runs with the same seed and
// schedule, varying between distinct faults of one run.
func (r *Registry) Index(point string, n int) int {
	if r == nil || n <= 0 {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := splitmix64(r.seed ^ hashString(point) ^ uint64(r.fired[point]))
	return int(h % uint64(n))
}

// NaN returns the poison value for gradient faults.
func (r *Registry) NaN() float64 { return math.NaN() }

// CorruptFile flips one seed-chosen byte of the file in place (the
// CkptCorrupt fault). The offset avoids the first line so the header stays
// parseable and the corruption must be caught by the CRC, not by a missing
// magic string.
func (r *Registry) CorruptFile(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if len(data) < 2 {
		return fmt.Errorf("inject: %s too short to corrupt", path)
	}
	lo := 1 + strings.IndexByte(string(data), '\n') // first byte after line 1
	if lo <= 0 || lo >= len(data) {
		lo = len(data) / 2
	}
	off := lo + int(splitmix64(r.seed^0x1)%uint64(len(data)-lo))
	data[off] ^= 0x20 // flips letter case / digit↔symbol; never a no-op
	return os.WriteFile(path, data, 0o644)
}

// TruncateFile cuts the file to a seed-chosen fraction of its length
// (between 10% and 90%, so neither empty nor complete).
func (r *Registry) TruncateFile(path string) error {
	fi, err := os.Stat(path)
	if err != nil {
		return err
	}
	n := fi.Size()
	if n < 10 {
		return fmt.Errorf("inject: %s too short to truncate", path)
	}
	frac := 0.1 + 0.8*float64(splitmix64(r.seed^0x2)%1000)/1000.0
	return os.Truncate(path, int64(float64(n)*frac))
}

// splitmix64 is the standard 64-bit mixing function — deterministic,
// dependency-free pseudo-randomness for fault choices.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func hashString(s string) uint64 {
	var h uint64 = 14695981039346656037 // FNV-1a
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
