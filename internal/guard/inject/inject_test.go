package inject

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"testing"
)

func TestNilRegistryIsNoOp(t *testing.T) {
	var r *Registry
	if r.ShouldFire(WAGradNaN, 0) {
		t.Error("nil registry fired")
	}
	if r.Fired(WAGradNaN) != 0 {
		t.Error("nil registry reports fires")
	}
	if r.Index(PoissonBin, 100) != 0 {
		t.Error("nil registry index not 0")
	}
}

func TestFireOnce(t *testing.T) {
	r := New(1).Arm(WAGradNaN, 5).Arm(WAGradNaN, 9)
	var fires []int
	for it := 0; it < 20; it++ {
		if r.ShouldFire(WAGradNaN, it) {
			fires = append(fires, it)
		}
		// A second query of the same iteration must not fire again.
		if r.ShouldFire(WAGradNaN, it) {
			t.Fatalf("iteration %d fired twice", it)
		}
	}
	if len(fires) != 2 || fires[0] != 5 || fires[1] != 9 {
		t.Fatalf("fired at %v, want [5 9]", fires)
	}
	if r.Fired(WAGradNaN) != 2 {
		t.Fatalf("Fired = %d, want 2", r.Fired(WAGradNaN))
	}
	if r.ShouldFire(PoissonBin, 5) {
		t.Error("unarmed point fired")
	}
}

func TestArmSpec(t *testing.T) {
	r := New(0)
	if err := r.ArmSpec("cancel:12"); err != nil {
		t.Fatal(err)
	}
	if !r.ShouldFire(Cancel, 12) {
		t.Error("spec-armed point did not fire")
	}
	for _, bad := range []string{"cancel", "cancel:-1", "cancel:x", "bogus:1"} {
		if err := r.ArmSpec(bad); err == nil {
			t.Errorf("ArmSpec(%q) accepted", bad)
		}
	}
}

func TestWorkerFaultPointsArm(t *testing.T) {
	// The supervision fault kinds follow the same arm/fire-once contract as
	// the pipeline kinds, including spec-string arming (the job server's
	// Config.FaultSpecs path).
	r := New(7)
	if err := r.ArmSpec("worker_crash:3"); err != nil {
		t.Fatal(err)
	}
	if err := r.ArmSpec("worker_stall:6"); err != nil {
		t.Fatal(err)
	}
	var crashes, stalls []int
	for it := 0; it < 10; it++ {
		if r.ShouldFire(WorkerCrash, it) {
			crashes = append(crashes, it)
		}
		if r.ShouldFire(WorkerStall, it) {
			stalls = append(stalls, it)
		}
	}
	if len(crashes) != 1 || crashes[0] != 3 {
		t.Errorf("worker_crash fired at %v, want [3]", crashes)
	}
	if len(stalls) != 1 || stalls[0] != 6 {
		t.Errorf("worker_stall fired at %v, want [6]", stalls)
	}
	// A restarted worker re-arms the same schedule but consults a global
	// boundary index past the armed ones: nothing re-fires.
	r2 := New(7).Arm(WorkerCrash, 3).Arm(WorkerStall, 6)
	for it := 7; it < 15; it++ {
		if r2.ShouldFire(WorkerCrash, it) || r2.ShouldFire(WorkerStall, it) {
			t.Fatalf("restart with boundary base past the schedule re-fired at %d", it)
		}
	}
}

func TestArmUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Arm of an unknown point did not panic")
		}
	}()
	New(0).Arm("typo_point", 1)
}

func TestIndexDeterministic(t *testing.T) {
	a, b := New(42), New(42)
	if a.Index(PoissonBin, 1024) != b.Index(PoissonBin, 1024) {
		t.Error("same seed, different index")
	}
	if New(42).Index(PoissonBin, 1024) == New(43).Index(PoissonBin, 1024) &&
		New(42).Index(PoissonBin, 7) == New(43).Index(PoissonBin, 7) {
		t.Error("different seeds produce identical indices (suspicious)")
	}
	i := a.Index(PoissonBin, 16)
	if i < 0 || i >= 16 {
		t.Errorf("index %d out of range", i)
	}
	if !math.IsNaN(a.NaN()) {
		t.Error("NaN() is not NaN")
	}
}

func TestCorruptFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "f.ckpt")
	orig := []byte("# header line\nbody body body body body\nend\n")
	if err := os.WriteFile(path, orig, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := New(7).CorruptFile(path); err != nil {
		t.Fatal(err)
	}
	got, _ := os.ReadFile(path)
	if bytes.Equal(got, orig) {
		t.Fatal("CorruptFile changed nothing")
	}
	if len(got) != len(orig) {
		t.Fatalf("CorruptFile changed length %d → %d", len(orig), len(got))
	}
	diff := 0
	for i := range got {
		if got[i] != orig[i] {
			diff++
			if i <= bytes.IndexByte(orig, '\n') {
				t.Errorf("corruption at %d inside the header line", i)
			}
		}
	}
	if diff != 1 {
		t.Fatalf("%d bytes differ, want exactly 1", diff)
	}
	// Determinism: same seed corrupts the same byte.
	path2 := filepath.Join(t.TempDir(), "g.ckpt")
	os.WriteFile(path2, orig, 0o644)
	New(7).CorruptFile(path2)
	got2, _ := os.ReadFile(path2)
	if !bytes.Equal(got, got2) {
		t.Error("same seed produced different corruption")
	}
}

func TestTruncateFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "f.ckpt")
	orig := bytes.Repeat([]byte("0123456789\n"), 20)
	if err := os.WriteFile(path, orig, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := New(7).TruncateFile(path); err != nil {
		t.Fatal(err)
	}
	fi, _ := os.Stat(path)
	if fi.Size() <= 0 || fi.Size() >= int64(len(orig)) {
		t.Fatalf("truncated size %d, want strictly between 0 and %d", fi.Size(), len(orig))
	}
}
