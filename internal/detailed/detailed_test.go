package detailed

import (
	"testing"

	"repro/internal/geom"
	"repro/internal/legalize"
	"repro/internal/netlist"
	"repro/internal/synth"
)

// legalDesign produces a legalized tiny design.
func legalDesign(t testing.TB, name string) *netlist.Design {
	t.Helper()
	d := synth.MustGenerate(name)
	if _, _, err := legalize.New(d).Run(); err != nil {
		t.Fatalf("legalize: %v", err)
	}
	if err := legalize.CheckLegal(d); err != nil {
		t.Fatalf("precondition: %v", err)
	}
	return d
}

func TestRefineImprovesHPWLAndStaysLegal(t *testing.T) {
	d := legalDesign(t, "tiny_hot")
	res := Refine(d, Options{Passes: 2})
	if res.HPWLAfter > res.HPWLBefore {
		t.Errorf("HPWL got worse: %v → %v", res.HPWLBefore, res.HPWLAfter)
	}
	if res.Shifts+res.Swaps == 0 {
		t.Errorf("refinement made no moves at all")
	}
	if err := legalize.CheckLegal(d); err != nil {
		t.Fatalf("refinement broke legality: %v", err)
	}
}

func TestRefineOnOpenDesign(t *testing.T) {
	d := legalDesign(t, "tiny_open")
	res := Refine(d, Options{})
	if res.HPWLAfter > res.HPWLBefore {
		t.Errorf("HPWL got worse: %v → %v", res.HPWLBefore, res.HPWLAfter)
	}
	if err := legalize.CheckLegal(d); err != nil {
		t.Fatalf("refinement broke legality: %v", err)
	}
}

func TestRefineDeterministic(t *testing.T) {
	d1 := legalDesign(t, "tiny_hot")
	d2 := legalDesign(t, "tiny_hot")
	Refine(d1, Options{Passes: 2})
	Refine(d2, Options{Passes: 2})
	for i := range d1.Cells {
		if d1.Cells[i].X != d2.Cells[i].X || d1.Cells[i].Y != d2.Cells[i].Y {
			t.Fatalf("cell %d differs between runs", i)
		}
	}
}

func TestShiftMovesTowardConnectedCells(t *testing.T) {
	// A free-standing cell with one net to a far-right cell must shift right.
	b := netlist.NewBuilder("s", geom.NewRect(0, 0, 128, 64), 8, 1)
	a := b.AddCell("a", netlist.StdCell, 10, 4, 2, 8) // row 0
	c := b.AddCell("c", netlist.StdCell, 101, 12, 2, 8)
	n := b.AddNet("n", 1)
	b.Connect(a, n, 0, 0)
	b.Connect(c, n, 0, 0)
	d := b.MustBuild()
	if err := legalize.CheckLegal(d); err != nil {
		t.Fatalf("setup illegal: %v", err)
	}
	Refine(d, Options{Passes: 1})
	if d.Cells[a].X <= 10 {
		t.Errorf("cell a did not move toward its net: x=%v", d.Cells[a].X)
	}
	if err := legalize.CheckLegal(d); err != nil {
		t.Fatalf("shift broke legality: %v", err)
	}
}

func TestSwapUncrossesNets(t *testing.T) {
	// Two adjacent cells whose nets cross: swapping them reduces HPWL.
	b := netlist.NewBuilder("x", geom.NewRect(0, 0, 128, 64), 8, 1)
	a := b.AddCell("a", netlist.StdCell, 61, 4, 2, 8)  // x0=60
	c := b.AddCell("c", netlist.StdCell, 63, 4, 2, 8)  // x0=62, adjacent
	rp := b.AddCell("rp", netlist.IOPad, 120, 4, 1, 1) // right anchor
	lp := b.AddCell("lp", netlist.IOPad, 4, 4, 1, 1)   // left anchor
	n1 := b.AddNet("n1", 1)
	b.Connect(a, n1, 0, 0)
	b.Connect(rp, n1, 0, 0) // a pulled right
	n2 := b.AddNet("n2", 1)
	b.Connect(c, n2, 0, 0)
	b.Connect(lp, n2, 0, 0) // c pulled left
	d := b.MustBuild()
	before := d.HPWL()
	res := Refine(d, Options{Passes: 1})
	if res.Swaps < 1 {
		t.Errorf("crossing pair was not swapped")
	}
	if d.HPWL() >= before {
		t.Errorf("swap did not reduce HPWL: %v → %v", before, d.HPWL())
	}
	if err := legalize.CheckLegal(d); err != nil {
		t.Fatalf("swap broke legality: %v", err)
	}
}

func TestRefineDoesNotMoveMacrosOrPads(t *testing.T) {
	d := legalDesign(t, "tiny_hot")
	var fixed []int
	for i := range d.Cells {
		if !d.Cells[i].Movable() {
			fixed = append(fixed, i)
		}
	}
	snap := d.SnapshotPositions()
	Refine(d, Options{Passes: 2})
	for _, i := range fixed {
		if d.Cells[i].X != snap[2*i] || d.Cells[i].Y != snap[2*i+1] {
			t.Fatalf("fixed cell %d moved", i)
		}
	}
}

func BenchmarkRefineTinyHot(b *testing.B) {
	base := synth.MustGenerate("tiny_hot")
	if _, _, err := legalize.New(base).Run(); err != nil {
		b.Fatal(err)
	}
	snap := base.SnapshotPositions()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		base.RestorePositions(snap)
		Refine(base, Options{Passes: 2})
	}
}
