// Package detailed implements the detailed-placement refinement that follows
// legalization in the flow (paper Fig. 2): legality-preserving local moves
// that reduce wirelength without disturbing the routability achieved by the
// global placement. Two passes are provided:
//
//   - optimal row shifting: each cell slides inside the free interval
//     between its row neighbours to the median-x of its connected pins;
//   - adjacent swapping: neighbouring same-row cell pairs are swapped when
//     that reduces HPWL and both still fit.
//
// Both passes are deterministic and verified against legalize.CheckLegal in
// the tests.
package detailed

import (
	"context"
	"math"
	"sort"

	"repro/internal/geom"
	"repro/internal/netlist"
	"repro/internal/telemetry"
)

// Options configures Refine.
type Options struct {
	// Passes is the number of shift+swap sweeps (default 2).
	Passes int
	// Trace, when non-nil, receives one span per refinement pass.
	Trace *telemetry.Tracer
}

// Result reports what Refine did.
type Result struct {
	HPWLBefore float64
	HPWLAfter  float64
	Shifts     int
	Swaps      int
}

// rowOf groups movable cells by row index.
func rowOf(d *netlist.Design) map[int][]int {
	rows := map[int][]int{}
	for ci := range d.Cells {
		c := &d.Cells[ci]
		if !c.Movable() {
			continue
		}
		r := int(math.Round((c.Y - c.H/2 - d.Die.Lo.Y) / d.RowHeight))
		rows[r] = append(rows[r], ci)
	}
	for r := range rows {
		ids := rows[r]
		sort.Slice(ids, func(i, j int) bool { return d.Cells[ids[i]].X < d.Cells[ids[j]].X })
	}
	return rows
}

// Refine runs the detailed-placement passes in place. The design must be
// legal on entry; it stays legal on exit.
func Refine(d *netlist.Design, opt Options) Result {
	res, _ := RefineContext(context.Background(), d, opt)
	return res
}

// RefineContext is Refine with cooperative cancellation, checked between
// passes and between rows. On cancellation it returns ctx.Err() with the
// refinement incomplete — the design is still LEGAL (every individual move
// preserves legality) but callers wanting the pre-refinement placement
// back must back up positions themselves.
func RefineContext(ctx context.Context, d *netlist.Design, opt Options) (Result, error) {
	passes := opt.Passes
	if passes <= 0 {
		passes = 2
	}
	res := Result{HPWLBefore: d.HPWL()}
	// Macro footprints never move during refinement; collect them once.
	// (Calling d.MacroRects per candidate move scans every cell — at 500k
	// cells that turns the sweeps quadratic.)
	macros := d.MacroRects()
	for p := 0; p < passes; p++ {
		sp := opt.Trace.Start("detailed.pass")
		rows := rowOf(d)
		keys := make([]int, 0, len(rows))
		for r := range rows {
			keys = append(keys, r)
		}
		sort.Ints(keys)
		for _, r := range keys {
			if err := ctx.Err(); err != nil {
				sp.End()
				res.HPWLAfter = d.HPWL()
				return res, err
			}
			res.Shifts += shiftRow(d, rows[r], macros)
			res.Swaps += swapRow(d, rows[r], macros)
		}
		sp.End()
	}
	res.HPWLAfter = d.HPWL()
	return res, nil
}

// medianTargetX returns the HPWL-optimal x center for cell ci: the median of
// the other-pin bounding intervals of its nets (the standard optimal-region
// argument restricted to one dimension).
func medianTargetX(d *netlist.Design, ci int) (float64, bool) {
	var lows, highs []float64
	c := &d.Cells[ci]
	for _, pi := range c.Pins {
		pin := &d.Pins[pi]
		net := &d.Nets[pin.Net]
		if net.Degree() < 2 {
			continue
		}
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, qi := range net.Pins {
			if qi == pi {
				continue
			}
			x := d.PinPos(qi).X
			if x < lo {
				lo = x
			}
			if x > hi {
				hi = x
			}
		}
		if lo <= hi {
			// Optimal interval for this net's pin, translated to the cell
			// center by the pin offset.
			lows = append(lows, lo-pin.OffX)
			highs = append(highs, hi-pin.OffX)
		}
	}
	if len(lows) == 0 {
		return 0, false
	}
	all := append(lows, highs...)
	sort.Float64s(all)
	n := len(all)
	return (all[n/2-1+n%2] + all[n/2]) / 2, true
}

// shiftRow slides each cell toward its median target within the free gap
// between its neighbours (macro boundaries are respected because neighbours
// were legal and gaps never extend past them — the cell only moves within
// [prevRight, nextLeft]).
func shiftRow(d *netlist.Design, ids []int, macros []geom.Rect) int {
	shifts := 0
	for k, ci := range ids {
		c := &d.Cells[ci]
		target, ok := medianTargetX(d, ci)
		if !ok {
			continue
		}
		lo := d.Die.Lo.X
		hi := d.Die.Hi.X
		if k > 0 {
			p := &d.Cells[ids[k-1]]
			lo = p.X + p.W/2
		}
		if k+1 < len(ids) {
			n := &d.Cells[ids[k+1]]
			hi = n.X - n.W/2
		}
		// Constrain by macros: keep the cell within its current free span by
		// never crossing its previous footprint's blockage state — cells sit
		// in macro-free segments already, and the neighbour bound keeps them
		// there unless the row has macro gaps between neighbours. Guard by
		// scanning macros on this row.
		lo, hi = clipByMacros(macros, c, lo, hi)
		if hi-lo < c.W {
			continue
		}
		x := geom.Clamp(target, lo+c.W/2, hi-c.W/2)
		x = snapCenter(d, c, x)
		if x != c.X && x >= lo+c.W/2-1e-9 && x <= hi-c.W/2+1e-9 {
			c.X = x
			shifts++
		}
	}
	return shifts
}

// clipByMacros narrows [lo, hi] so the span of cell c cannot cross a macro
// footprint on its row.
func clipByMacros(macros []geom.Rect, c *netlist.Cell, lo, hi float64) (float64, float64) {
	y0, y1 := c.Y-c.H/2, c.Y+c.H/2
	for _, m := range macros {
		if m.Hi.Y <= y0 || m.Lo.Y >= y1 {
			continue
		}
		// Macro intersects the row band.
		if m.Hi.X <= c.X-c.W/2 {
			lo = math.Max(lo, m.Hi.X)
		}
		if m.Lo.X >= c.X+c.W/2 {
			hi = math.Min(hi, m.Lo.X)
		}
	}
	return lo, hi
}

// snapCenter snaps the cell center so the left edge lands on the site grid.
func snapCenter(d *netlist.Design, c *netlist.Cell, x float64) float64 {
	left := math.Round((x-c.W/2)/d.SiteWidth) * d.SiteWidth
	return left + c.W/2
}

// swapRow tries swapping each adjacent same-row pair when that lowers the
// HPWL of the nets touching them and both cells still fit in each other's
// spot (always true for equal widths; for unequal widths the pair is
// re-packed left-to-right in the union span).
func swapRow(d *netlist.Design, ids []int, macros []geom.Rect) int {
	swaps := 0
	for k := 0; k+1 < len(ids); k++ {
		a := ids[k]
		b := ids[k+1]
		ca, cb := &d.Cells[a], &d.Cells[b]
		before := localHPWL(d, a, b)
		ax, bx := ca.X, cb.X
		// Re-pack the union span with the order reversed.
		left := ax - ca.W/2
		cb.X = left + cb.W/2
		ca.X = left + cb.W + ca.W/2
		// The original pair may have had a macro in the gap between them;
		// the repacked footprints must stay clear of every macro.
		if overlapsMacro(macros, ca) || overlapsMacro(macros, cb) {
			ca.X, cb.X = ax, bx
			continue
		}
		after := localHPWL(d, a, b)
		if after+1e-12 < before {
			swaps++
			ids[k], ids[k+1] = ids[k+1], ids[k]
		} else {
			ca.X, cb.X = ax, bx
		}
	}
	return swaps
}

// overlapsMacro reports whether cell c's footprint intersects any macro.
func overlapsMacro(macros []geom.Rect, c *netlist.Cell) bool {
	r := c.Rect()
	for _, m := range macros {
		if m.Intersects(r) {
			return true
		}
	}
	return false
}

// localHPWL sums the HPWL of the nets incident to cells a or b.
func localHPWL(d *netlist.Design, a, b int) float64 {
	seen := map[int]bool{}
	var sum float64
	for _, ci := range []int{a, b} {
		for _, pi := range d.Cells[ci].Pins {
			e := d.Pins[pi].Net
			if seen[e] || d.Nets[e].Degree() < 2 {
				continue
			}
			seen[e] = true
			bb := d.NetBBox(e)
			w := d.Nets[e].Weight
			if w == 0 {
				w = 1
			}
			sum += w * (bb.W() + bb.H())
		}
	}
	return sum
}
