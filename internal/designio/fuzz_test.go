package designio

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// FuzzRead feeds arbitrary bytes to the parser. The contract under fuzzing:
// Read never panics, and any design it accepts is internally consistent —
// Validate passed (Read runs it), every float is finite, and the design
// round-trips through Write/Read.
func FuzzRead(f *testing.F) {
	// Seed corpus: a valid design, each directive in isolation, and the
	// malformed shapes the table test checks (so the fuzzer starts near the
	// interesting boundaries rather than in random-byte space).
	seeds := []string{
		"design d\ndie 0 0 10 10\nrow 8 1\nroute 4 1\ndensity 0.9\n" +
			"cell a stdcell 5 5 1 8\ncell b stdcell 7 5 1 8\n" +
			"net n 1\npin 0 0 0 0\npin 1 0 0 0\nrail 0 0 10 0 0.5\n",
		"die 0 0 10 10\nrow 8 1\n",
		"# comment only\n",
		"die 0 0 NaN 10\n",
		"cell a stdcell 1 1 1 1\n",
		"pin 0 0 0 0\n",
		"die 0 0 10 10\nrow 8 1\nnet n nan\n",
		"die 0 0 10 10\nrow 8 1\ncell a stdcell 1e308 1e308 1e308 1e308\n",
		"design _\ndie -1e9 -1e9 1e9 1e9\nrow 8 1\n",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := Read(bytes.NewReader(data))
		if err != nil {
			return // rejection is always acceptable; panicking is not
		}
		for i := range d.Cells {
			c := &d.Cells[i]
			for _, v := range []float64{c.X, c.Y, c.W, c.H} {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					t.Fatalf("accepted design has non-finite cell %d: %+v", i, c)
				}
			}
		}
		var buf bytes.Buffer
		if err := Write(&buf, d); err != nil {
			t.Fatalf("Write of accepted design failed: %v", err)
		}
		if _, err := Read(&buf); err != nil {
			t.Fatalf("accepted design does not round-trip: %v", err)
		}
	})
}

// FuzzReadLine fuzzes single directives appended to a minimal valid prefix,
// concentrating coverage on per-directive field parsing.
func FuzzReadLine(f *testing.F) {
	for _, s := range []string{
		"cell a stdcell 1 1 1 1", "net n 1", "pin 0 0 0 0",
		"rail 0 0 1 0 1", "density 0.5", "route 4 1", "design x",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, line string) {
		src := "die 0 0 10 10\nrow 8 1\n" + strings.ReplaceAll(line, "\x00", "") + "\n"
		_, _ = Read(strings.NewReader(src)) // must not panic
	})
}
