// Package designio reads and writes placement designs in a plain-text format
// in the spirit of the Bookshelf files the ISPD contests distribute (the real
// contest data is LEF/DEF; this single-file format carries exactly the
// information the placer consumes: die, rows, cells, hypergraph, PG rails
// and routing parameters).
//
// The format is line-oriented; '#' starts a comment. All cross-references
// are by index in declaration order:
//
//	design <name>
//	die <x0> <y0> <x1> <y1>
//	row <height> <sitewidth>
//	route <layers> <capscale>
//	density <target>
//	cell <name> <stdcell|macro|iopad> <cx> <cy> <w> <h>
//	net <name> <weight>
//	pin <cell-index> <net-index> <offx> <offy>
//	rail <x0> <y0> <x1> <y1> <width>
package designio

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"repro/internal/geom"
	"repro/internal/netlist"
)

// Write serializes d to w. The output is deterministic and Read-compatible.
func Write(w io.Writer, d *netlist.Design) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# nmplace design file\n")
	fmt.Fprintf(bw, "design %s\n", escape(d.Name))
	fmt.Fprintf(bw, "die %g %g %g %g\n", d.Die.Lo.X, d.Die.Lo.Y, d.Die.Hi.X, d.Die.Hi.Y)
	fmt.Fprintf(bw, "row %g %g\n", d.RowHeight, d.SiteWidth)
	fmt.Fprintf(bw, "route %d %g\n", d.RouteLayers, d.RouteCapScale)
	fmt.Fprintf(bw, "density %g\n", d.TargetDensity)
	for i := range d.Cells {
		c := &d.Cells[i]
		fmt.Fprintf(bw, "cell %s %s %g %g %g %g\n",
			escape(c.Name), kindName(c.Kind), c.X, c.Y, c.W, c.H)
	}
	for i := range d.Nets {
		n := &d.Nets[i]
		fmt.Fprintf(bw, "net %s %g\n", escape(n.Name), n.Weight)
	}
	for i := range d.Pins {
		p := &d.Pins[i]
		fmt.Fprintf(bw, "pin %d %d %g %g\n", p.Cell, p.Net, p.OffX, p.OffY)
	}
	for _, r := range d.Rails {
		fmt.Fprintf(bw, "rail %g %g %g %g %g\n",
			r.Seg.A.X, r.Seg.A.Y, r.Seg.B.X, r.Seg.B.Y, r.Width)
	}
	return bw.Flush()
}

// Read parses a design previously produced by Write (or hand-authored in the
// same format) and validates it.
func Read(r io.Reader) (*netlist.Design, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	d := &netlist.Design{RouteLayers: 4, RouteCapScale: 1, TargetDensity: 0.9}
	lineNo := 0
	sawDie := false
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		f := strings.Fields(line)
		var err error
		switch f[0] {
		case "design":
			if len(f) != 2 {
				err = fmt.Errorf("design wants 1 field")
			} else {
				d.Name = unescape(f[1])
			}
		case "die":
			var v [4]float64
			if v, err = floats4(f[1:]); err == nil {
				d.Die = geom.NewRect(v[0], v[1], v[2], v[3])
				sawDie = true
			}
		case "row":
			if len(f) != 3 {
				err = fmt.Errorf("row wants 2 fields")
				break
			}
			if d.RowHeight, err = parseFinite(f[1]); err == nil {
				d.SiteWidth, err = parseFinite(f[2])
			}
		case "route":
			if len(f) != 3 {
				err = fmt.Errorf("route wants 2 fields")
				break
			}
			if d.RouteLayers, err = strconv.Atoi(f[1]); err == nil {
				d.RouteCapScale, err = parseFinite(f[2])
			}
		case "density":
			if len(f) != 2 {
				err = fmt.Errorf("density wants 1 field")
				break
			}
			d.TargetDensity, err = parseFinite(f[1])
		case "cell":
			if len(f) != 7 {
				err = fmt.Errorf("cell wants 6 fields")
				break
			}
			var kind netlist.CellKind
			if kind, err = parseKind(f[2]); err != nil {
				break
			}
			var v [4]float64
			if v, err = floats4(f[3:]); err != nil {
				break
			}
			d.Cells = append(d.Cells, netlist.Cell{
				Name: unescape(f[1]), Kind: kind, X: v[0], Y: v[1], W: v[2], H: v[3],
			})
		case "net":
			if len(f) != 3 {
				err = fmt.Errorf("net wants 2 fields")
				break
			}
			var wgt float64
			if wgt, err = parseFinite(f[2]); err != nil {
				break
			}
			d.Nets = append(d.Nets, netlist.Net{Name: unescape(f[1]), Weight: wgt})
		case "pin":
			if len(f) != 5 {
				err = fmt.Errorf("pin wants 4 fields")
				break
			}
			var ci, ni int
			if ci, err = strconv.Atoi(f[1]); err != nil {
				break
			}
			if ni, err = strconv.Atoi(f[2]); err != nil {
				break
			}
			var ox, oy float64
			if ox, err = parseFinite(f[3]); err != nil {
				break
			}
			if oy, err = parseFinite(f[4]); err != nil {
				break
			}
			if ci < 0 || ci >= len(d.Cells) {
				err = fmt.Errorf("pin references cell %d of %d", ci, len(d.Cells))
				break
			}
			if ni < 0 || ni >= len(d.Nets) {
				err = fmt.Errorf("pin references net %d of %d", ni, len(d.Nets))
				break
			}
			pi := len(d.Pins)
			d.Pins = append(d.Pins, netlist.Pin{Cell: ci, Net: ni, OffX: ox, OffY: oy})
			d.Cells[ci].Pins = append(d.Cells[ci].Pins, pi)
			d.Nets[ni].Pins = append(d.Nets[ni].Pins, pi)
		case "rail":
			if len(f) != 6 {
				err = fmt.Errorf("rail wants 5 fields")
				break
			}
			var v [4]float64
			if v, err = floats4(f[1:5]); err != nil {
				break
			}
			var width float64
			if width, err = parseFinite(f[5]); err != nil {
				break
			}
			d.Rails = append(d.Rails, netlist.PGRail{
				Seg:   geom.Segment{A: geom.Point{X: v[0], Y: v[1]}, B: geom.Point{X: v[2], Y: v[3]}},
				Width: width,
			})
		default:
			err = fmt.Errorf("unknown directive %q", f[0])
		}
		if err != nil {
			return nil, fmt.Errorf("designio: line %d: %w", lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("designio: %w", err)
	}
	if !sawDie {
		return nil, fmt.Errorf("designio: missing die directive")
	}
	for i := range d.Cells {
		d.Cells[i].NumPins = len(d.Cells[i].Pins)
	}
	if err := d.Validate(); err != nil {
		return nil, fmt.Errorf("designio: %w", err)
	}
	return d, nil
}

func floats4(f []string) ([4]float64, error) {
	var out [4]float64
	if len(f) < 4 {
		return out, fmt.Errorf("want 4 numbers, got %d", len(f))
	}
	for i := 0; i < 4; i++ {
		v, err := parseFinite(f[i])
		if err != nil {
			return out, err
		}
		out[i] = v
	}
	return out, nil
}

// parseFinite parses a float and rejects NaN/±Inf: every geometric or
// weight quantity in the format must be finite, and strconv.ParseFloat
// happily accepts "NaN". One poisoned coordinate would otherwise slip past
// Validate (NaN compares false to every bound) straight into the optimizer.
func parseFinite(s string) (float64, error) {
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, err
	}
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0, fmt.Errorf("non-finite value %q", s)
	}
	return v, nil
}

func kindName(k netlist.CellKind) string { return k.String() }

func parseKind(s string) (netlist.CellKind, error) {
	switch s {
	case "stdcell":
		return netlist.StdCell, nil
	case "macro":
		return netlist.Macro, nil
	case "iopad":
		return netlist.IOPad, nil
	default:
		return 0, fmt.Errorf("unknown cell kind %q", s)
	}
}

// escape protects whitespace in names (names are tokens in the format).
func escape(s string) string {
	if s == "" {
		return "_"
	}
	return strings.Map(func(r rune) rune {
		if r == ' ' || r == '\t' || r == '\n' {
			return '_'
		}
		return r
	}, s)
}

func unescape(s string) string { return s }
