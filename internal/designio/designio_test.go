package designio

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/synth"
)

func TestRoundTrip(t *testing.T) {
	orig := synth.MustGenerate("tiny_hot")
	var buf bytes.Buffer
	if err := Write(&buf, orig); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if got.Name != orig.Name {
		t.Errorf("name %q != %q", got.Name, orig.Name)
	}
	if got.Die != orig.Die || got.RowHeight != orig.RowHeight || got.SiteWidth != orig.SiteWidth {
		t.Errorf("geometry differs")
	}
	if got.RouteLayers != orig.RouteLayers || got.RouteCapScale != orig.RouteCapScale ||
		got.TargetDensity != orig.TargetDensity {
		t.Errorf("routing/density params differ")
	}
	if len(got.Cells) != len(orig.Cells) || len(got.Nets) != len(orig.Nets) ||
		len(got.Pins) != len(orig.Pins) || len(got.Rails) != len(orig.Rails) {
		t.Fatalf("counts differ: %d/%d cells, %d/%d nets, %d/%d pins, %d/%d rails",
			len(got.Cells), len(orig.Cells), len(got.Nets), len(orig.Nets),
			len(got.Pins), len(orig.Pins), len(got.Rails), len(orig.Rails))
	}
	for i := range orig.Cells {
		a, b := &orig.Cells[i], &got.Cells[i]
		if a.Name != b.Name || a.Kind != b.Kind || a.X != b.X || a.Y != b.Y ||
			a.W != b.W || a.H != b.H || a.NumPins != b.NumPins {
			t.Fatalf("cell %d differs: %+v vs %+v", i, a, b)
		}
	}
	for i := range orig.Pins {
		if orig.Pins[i] != got.Pins[i] {
			t.Fatalf("pin %d differs", i)
		}
	}
	if orig.HPWL() != got.HPWL() {
		t.Errorf("HPWL differs after round trip")
	}
}

func TestWriteDeterministic(t *testing.T) {
	d := synth.MustGenerate("tiny_open")
	var a, b bytes.Buffer
	if err := Write(&a, d); err != nil {
		t.Fatal(err)
	}
	if err := Write(&b, d); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Errorf("serialization not deterministic")
	}
}

func TestReadHandwritten(t *testing.T) {
	src := `
# a tiny hand-written design
design demo
die 0 0 100 100
row 8 1
route 4 0.9
density 0.8
cell a stdcell 10 10 2 8
cell b stdcell 50 50 4 8
cell blk macro 80 80 20 20
net n1 1
pin 0 0 0 0
pin 1 0 -1 2
rail 0 20 100 20 1.5
`
	d, err := Read(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if d.Name != "demo" || len(d.Cells) != 3 || len(d.Nets) != 1 || len(d.Pins) != 2 || len(d.Rails) != 1 {
		t.Fatalf("parsed wrong structure: %+v", d)
	}
	if d.Cells[2].Kind.String() != "macro" {
		t.Errorf("macro kind lost")
	}
	if d.Nets[0].Degree() != 2 {
		t.Errorf("net wiring lost")
	}
	if d.RouteCapScale != 0.9 || d.TargetDensity != 0.8 {
		t.Errorf("params lost")
	}
}

func TestReadErrors(t *testing.T) {
	cases := map[string]string{
		"unknown directive": "die 0 0 10 10\nfrobnicate 1\n",
		"bad die":           "die 0 0 ten 10\n",
		"bad cell kind":     "die 0 0 10 10\nrow 8 1\ncell a widget 1 1 1 1\n",
		"pin bad cell":      "die 0 0 10 10\nrow 8 1\nnet n 1\npin 5 0 0 0\n",
		"pin bad net":       "die 0 0 10 10\nrow 8 1\ncell a stdcell 1 1 1 1\npin 0 7 0 0\n",
		"missing die":       "row 8 1\n",
		"short cell":        "die 0 0 10 10\nrow 8 1\ncell a stdcell 1 1\n",
		"bad net weight":    "die 0 0 10 10\nrow 8 1\nnet n one\n",
		"invalid design":    "design d\ndie 0 0 10 10\nrow 0 1\n", // zero row height fails Validate
		// strconv.ParseFloat accepts "NaN"/"Inf"; the reader must not.
		"NaN die corner":  "die 0 0 NaN 10\nrow 8 1\n",
		"NaN cell coord":  "die 0 0 10 10\nrow 8 1\ncell a stdcell NaN 1 1 1\n",
		"Inf cell width":  "die 0 0 10 10\nrow 8 1\ncell a stdcell 1 1 +Inf 1\n",
		"NaN net weight":  "die 0 0 10 10\nrow 8 1\nnet n nan\n",
		"Inf pin offset":  "die 0 0 10 10\nrow 8 1\ncell a stdcell 1 1 1 1\nnet n 1\npin 0 0 Inf 0\n",
		"NaN row height":  "die 0 0 10 10\nrow NaN 1\n",
		"Inf density":     "die 0 0 10 10\nrow 8 1\ndensity Inf\n",
		"NaN rail width":  "die 0 0 10 10\nrow 8 1\nrail 0 0 10 0 NaN\n",
		"truncated cell":  "die 0 0 10 10\nrow 8 1\ncell a std",
		"truncated float": "die 0 0 10 10\nrow 8 1\ncell a stdcell 1 1 1 1e",
	}
	for name, src := range cases {
		if _, err := Read(strings.NewReader(src)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestEscapeNames(t *testing.T) {
	d := synth.MustGenerate("tiny_open")
	d.Cells[0].Name = "has space"
	var buf bytes.Buffer
	if err := Write(&buf, d); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read after escaping: %v", err)
	}
	if strings.Contains(got.Cells[0].Name, " ") {
		t.Errorf("space survived escaping: %q", got.Cells[0].Name)
	}
}

func TestCommentsAndBlankLines(t *testing.T) {
	src := "\n# comment\n\ndesign x\ndie 0 0 10 10\nrow 8 1\n\n# more\ncell a stdcell 5 5 1 8\nnet n 1\npin 0 0 0 0\n"
	if _, err := Read(strings.NewReader(src)); err != nil {
		t.Fatalf("comments/blank lines rejected: %v", err)
	}
}
