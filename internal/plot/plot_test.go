package plot

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/route"
	"repro/internal/synth"
)

func TestSVGBasic(t *testing.T) {
	d := synth.MustGenerate("tiny_hot")
	var buf bytes.Buffer
	if err := SVG(&buf, d, Options{DrawCells: true, DrawRails: true}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"<svg", "</svg>", "<rect", "<line"} {
		if !strings.Contains(out, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	// Macros drawn (tiny_hot has 2).
	if strings.Count(out, "#6d7b8d") != 2 {
		t.Errorf("expected 2 macro rects, got %d", strings.Count(out, "#6d7b8d"))
	}
}

func TestSVGWithCongestion(t *testing.T) {
	d := synth.MustGenerate("tiny_hot")
	g := route.NewGrid(d, 32)
	res := route.NewRouter(d, g).Route()
	var buf bytes.Buffer
	err := SVG(&buf, d, Options{Congestion: res.Congestion, NX: g.NX, NY: g.NY})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "fill-opacity") {
		t.Errorf("no heat cells drawn")
	}
}

func TestSVGRejectsBadCongestionLength(t *testing.T) {
	d := synth.MustGenerate("tiny_open")
	var buf bytes.Buffer
	err := SVG(&buf, d, Options{Congestion: make([]float64, 3), NX: 4, NY: 4})
	if err == nil {
		t.Errorf("bad congestion length accepted")
	}
}

func TestSVGSelectedRailsOnly(t *testing.T) {
	d := synth.MustGenerate("tiny_hot")
	var all, sel bytes.Buffer
	if err := SVG(&all, d, Options{DrawRails: true}); err != nil {
		t.Fatal(err)
	}
	if err := SVG(&sel, d, Options{DrawRails: true, Selected: d.Rails[:1]}); err != nil {
		t.Fatal(err)
	}
	if strings.Count(sel.String(), "<line") >= strings.Count(all.String(), "<line") {
		t.Errorf("selection did not reduce rail count")
	}
}

func TestHeatRamp(t *testing.T) {
	r0, g0, _ := HeatColor(0)
	r1, g1, _ := HeatColor(1)
	if r0 != 255 || r1 != 255 {
		t.Errorf("red channel should stay saturated")
	}
	if g0 <= g1 {
		t.Errorf("green channel should fall with heat: %d → %d", g0, g1)
	}
	// Clamping.
	if ra, ga, ba := HeatColor(-5); ra != 255 || ga != 220 || ba != 40 {
		t.Errorf("HeatColor(-5) not clamped: %d %d %d", ra, ga, ba)
	}
	if _, gb, _ := HeatColor(7); gb != 0 {
		t.Errorf("HeatColor(7) not clamped")
	}
}
