package plot

import (
	"bytes"
	"image/png"
	"testing"
)

func TestHeatmapImage(t *testing.T) {
	// 2×2 grid: hottest cell bottom-left (row 0, col 0).
	vals := []float64{1.0, 0.0, 0.25, 0.5}
	img, err := HeatmapImage(vals, 2, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got := img.Bounds(); got.Dx() != 8 || got.Dy() != 8 {
		t.Fatalf("image bounds %v, want 8×8", got)
	}
	// Grid row 0 renders at the image BOTTOM: the hottest cell (t=1,
	// green=0) must be bottom-left, and the zero cell (t=0, green=220)
	// bottom-right.
	_, gHot, _, _ := img.At(0, 7).RGBA()
	_, gZero, _, _ := img.At(7, 7).RGBA()
	if gHot>>8 != 0 {
		t.Errorf("hottest cell green = %d, want 0", gHot>>8)
	}
	if gZero>>8 != 220 {
		t.Errorf("cold cell green = %d, want 220", gZero>>8)
	}
	// Bad dimensions are rejected.
	if _, err := HeatmapImage(vals, 3, 3, 4); err == nil {
		t.Error("bad grid dimensions accepted")
	}
}

func TestHeatmapImageAllZero(t *testing.T) {
	img, err := HeatmapImage([]float64{0, 0, 0, 0}, 2, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	_, g, _, _ := img.At(0, 0).RGBA()
	if g>>8 != 220 {
		t.Errorf("all-zero grid not rendered cold: green = %d", g>>8)
	}
}

func TestWriteHeatmapPNG(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteHeatmapPNG(&buf, []float64{0.1, 0.9, 0.4, 0.2}, 2, 2, 0); err != nil {
		t.Fatal(err)
	}
	img, err := png.Decode(&buf)
	if err != nil {
		t.Fatalf("output is not a valid PNG: %v", err)
	}
	// Default cell size is 8 px.
	if b := img.Bounds(); b.Dx() != 16 || b.Dy() != 16 {
		t.Errorf("PNG bounds %v, want 16×16", b)
	}
}
