// Package plot renders placements and congestion maps as SVG images using
// only the standard library. It exists for inspection and debugging — the
// pictures correspond to the paper's Fig. 1 (congestion heat map with local/
// global classification) and Fig. 4 (macros, PG rails and selection).
package plot

import (
	"bufio"
	"fmt"
	"io"
	"math"

	"repro/internal/netlist"
)

// Options controls rendering.
type Options struct {
	// WidthPx is the output image width in pixels (height follows the die
	// aspect ratio). Default 800.
	WidthPx int
	// Congestion, when non-nil, is drawn as a heat underlay; it must have
	// NX·NY row-major entries.
	Congestion []float64
	NX, NY     int
	// DrawRails draws PG rails; Selected, when non-nil, restricts to the
	// given rails (e.g. the pgrail selection).
	DrawRails bool
	Selected  []netlist.PGRail
	// DrawCells draws movable cells (can be slow for huge designs).
	DrawCells bool
}

// SVG writes an SVG rendering of the design to w.
func SVG(w io.Writer, d *netlist.Design, opt Options) error {
	if opt.WidthPx <= 0 {
		opt.WidthPx = 800
	}
	bw := bufio.NewWriter(w)
	scale := float64(opt.WidthPx) / d.Die.W()
	hPx := int(math.Ceil(d.Die.H() * scale))
	// SVG y grows downward; flip so die-y grows upward.
	X := func(x float64) float64 { return (x - d.Die.Lo.X) * scale }
	Y := func(y float64) float64 { return float64(hPx) - (y-d.Die.Lo.Y)*scale }

	fmt.Fprintf(bw, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		opt.WidthPx, hPx, opt.WidthPx, hPx)
	fmt.Fprintf(bw, `<rect width="%d" height="%d" fill="#ffffff"/>`+"\n", opt.WidthPx, hPx)

	// Congestion underlay.
	if opt.Congestion != nil && opt.NX > 0 && opt.NY > 0 {
		if len(opt.Congestion) != opt.NX*opt.NY {
			return fmt.Errorf("plot: congestion map length %d != %d×%d", len(opt.Congestion), opt.NX, opt.NY)
		}
		maxC := 0.0
		for _, c := range opt.Congestion {
			if c > maxC {
				maxC = c
			}
		}
		if maxC > 0 {
			cw := d.Die.W() / float64(opt.NX)
			ch := d.Die.H() / float64(opt.NY)
			for iy := 0; iy < opt.NY; iy++ {
				for ix := 0; ix < opt.NX; ix++ {
					c := opt.Congestion[iy*opt.NX+ix]
					if c <= 0 {
						continue
					}
					t := c / maxC
					r, g, b := HeatColor(t)
					x0 := d.Die.Lo.X + float64(ix)*cw
					y0 := d.Die.Lo.Y + float64(iy)*ch
					fmt.Fprintf(bw, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="rgb(%d,%d,%d)" fill-opacity="0.85"/>`+"\n",
						X(x0), Y(y0+ch), cw*scale, ch*scale, r, g, b)
				}
			}
		}
	}

	// Macros.
	for _, m := range d.MacroRects() {
		fmt.Fprintf(bw, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="#6d7b8d" stroke="#2f3640" stroke-width="1"/>`+"\n",
			X(m.Lo.X), Y(m.Hi.Y), m.W()*scale, m.H()*scale)
	}

	// Cells.
	if opt.DrawCells {
		for i := range d.Cells {
			c := &d.Cells[i]
			if !c.Movable() {
				continue
			}
			r := c.Rect()
			fmt.Fprintf(bw, `<rect x="%.2f" y="%.2f" width="%.2f" height="%.2f" fill="#3b6ea5" fill-opacity="0.6"/>`+"\n",
				X(r.Lo.X), Y(r.Hi.Y), r.W()*scale, r.H()*scale)
		}
	}

	// Rails.
	if opt.DrawRails {
		rails := d.Rails
		if opt.Selected != nil {
			rails = opt.Selected
		}
		for _, rl := range rails {
			fmt.Fprintf(bw, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#8e44ad" stroke-width="%.1f"/>`+"\n",
				X(rl.Seg.A.X), Y(rl.Seg.A.Y), X(rl.Seg.B.X), Y(rl.Seg.B.Y),
				math.Max(1, rl.Width*scale))
		}
	}

	fmt.Fprintln(bw, `</svg>`)
	return bw.Flush()
}

// HeatColor maps t ∈ [0,1] to the yellow→red congestion ramp shared by the
// SVG underlay, cmd/plot and the dashboard heatmap.
func HeatColor(t float64) (r, g, b int) {
	if t < 0 {
		t = 0
	}
	if t > 1 {
		t = 1
	}
	return 255, int(220 * (1 - t)), 40
}
