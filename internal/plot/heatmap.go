package plot

import (
	"fmt"
	"image"
	"image/color"
	"image/png"
	"io"
)

// HeatmapImage rasterizes an nx×ny row-major congestion grid into an RGBA
// image at cellPx pixels per G-cell (≤ 0 selects 8), max-normalized through
// HeatColor. Row 0 of the grid is the BOTTOM of the image (die-y grows
// upward), matching the SVG underlay orientation. This is the one
// congestion-grid→image renderer shared by cmd/plot and the dashboard.
func HeatmapImage(vals []float64, nx, ny, cellPx int) (*image.RGBA, error) {
	if nx <= 0 || ny <= 0 || len(vals) != nx*ny {
		return nil, fmt.Errorf("plot: congestion map length %d != %d×%d", len(vals), nx, ny)
	}
	if cellPx <= 0 {
		cellPx = 8
	}
	max := 0.0
	for _, v := range vals {
		if v > max {
			max = v
		}
	}
	img := image.NewRGBA(image.Rect(0, 0, nx*cellPx, ny*cellPx))
	for iy := 0; iy < ny; iy++ {
		for ix := 0; ix < nx; ix++ {
			t := 0.0
			if max > 0 {
				t = vals[iy*nx+ix] / max
			}
			r, g, b := HeatColor(t)
			c := color.RGBA{R: uint8(r), G: uint8(g), B: uint8(b), A: 255}
			// Flip y: grid row 0 renders at the image bottom.
			py0 := (ny - 1 - iy) * cellPx
			px0 := ix * cellPx
			for py := py0; py < py0+cellPx; py++ {
				for px := px0; px < px0+cellPx; px++ {
					img.SetRGBA(px, py, c)
				}
			}
		}
	}
	return img, nil
}

// WriteHeatmapPNG renders the grid via HeatmapImage and PNG-encodes it to w.
func WriteHeatmapPNG(w io.Writer, vals []float64, nx, ny, cellPx int) error {
	img, err := HeatmapImage(vals, nx, ny, cellPx)
	if err != nil {
		return err
	}
	return png.Encode(w, img)
}
