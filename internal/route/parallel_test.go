package route

import (
	"math"
	"testing"

	"repro/internal/parallel"
	"repro/internal/synth"
)

// TestRouteBitwiseIdenticalAcrossWorkers: batch boundaries depend only on
// the segment count and commits are serial in segment order, so demand maps,
// congestion and totals must be bit-for-bit identical for every worker count.
func TestRouteBitwiseIdenticalAcrossWorkers(t *testing.T) {
	d := synth.MustGenerate("tiny_hot")
	g := NewGrid(d, 32)
	run := func(workers int) *Result {
		r := NewRouter(d, g)
		r.Workers = workers
		return r.Route()
	}
	ref := run(1)
	for _, w := range []int{2, 3, parallel.NumShards, 0} {
		got := run(w)
		if math.Float64bits(got.WirelengthDBU) != math.Float64bits(ref.WirelengthDBU) {
			t.Errorf("workers=%d: WL %v != serial %v", w, got.WirelengthDBU, ref.WirelengthDBU)
		}
		if got.Vias != ref.Vias || got.OverflowCells != ref.OverflowCells {
			t.Errorf("workers=%d: vias/overflow differ from serial", w)
		}
		for i := range ref.Congestion {
			if math.Float64bits(got.Congestion[i]) != math.Float64bits(ref.Congestion[i]) {
				t.Fatalf("workers=%d: congestion[%d] differs bitwise from serial", w, i)
			}
		}
		for l := range ref.Dmd {
			for i := range ref.Dmd[l] {
				if math.Float64bits(got.Dmd[l][i]) != math.Float64bits(ref.Dmd[l][i]) {
					t.Fatalf("workers=%d: demand[%d][%d] differs bitwise from serial", w, l, i)
				}
			}
		}
	}
}

// TestRouteWithMazeIdenticalAcrossWorkers: the maze fallback runs after the
// batched pattern rounds and is serial, so it must not break cross-worker
// identity.
func TestRouteWithMazeIdenticalAcrossWorkers(t *testing.T) {
	d := synth.MustGenerate("tiny_hot")
	g := NewGrid(d, 32)
	run := func(workers int) *Result {
		r := NewRouter(d, g)
		r.Workers = workers
		return r.RouteWithMaze(0)
	}
	ref := run(1)
	got := run(parallel.NumShards)
	if math.Float64bits(got.WirelengthDBU) != math.Float64bits(ref.WirelengthDBU) ||
		got.Vias != ref.Vias {
		t.Errorf("maze totals differ: %v/%d vs serial %v/%d",
			got.WirelengthDBU, got.Vias, ref.WirelengthDBU, ref.Vias)
	}
	for i := range ref.Congestion {
		if math.Float64bits(got.Congestion[i]) != math.Float64bits(ref.Congestion[i]) {
			t.Fatalf("congestion[%d] differs bitwise from serial", i)
		}
	}
}

// TestRouteStatsAccumulate: the choice phases record their cost for the
// telemetry speedup gauges.
func TestRouteStatsAccumulate(t *testing.T) {
	d := synth.MustGenerate("tiny_hot")
	g := NewGrid(d, 32)
	r := NewRouter(d, g)
	r.Route()
	if r.Stats().Wall <= 0 || r.Stats().Busy <= 0 {
		t.Errorf("stats not accumulated: %+v", r.Stats())
	}
}
