package route

import (
	"context"
	"math"

	"repro/internal/netlist"
	"repro/internal/parallel"
	"repro/internal/telemetry"
)

// chooseBatch is the number of segments whose candidate selection runs
// against one frozen demand snapshot. It is a constant — never derived from
// the worker count — so the batch boundaries, and therefore every routing
// decision, are identical for any Workers setting.
const chooseBatch = 256

// Router performs congestion-aware pattern global routing of a design on a
// Grid. It decomposes each net into two-pin segments with a Prim MST,
// enumerates L- and Z-shape candidates per segment, picks the cheapest under
// a congestion + history cost, and repeats for a few rip-up-and-reroute
// rounds. It is deterministic for a fixed design and placement.
//
// Segments are routed in fixed-size batches: the candidate choice of every
// segment in a batch reads a frozen demand snapshot (and so parallelizes
// over the internal/parallel shard layer with disjoint writes), then the
// chosen patterns are committed serially in segment order. Batch boundaries
// depend only on the segment count, so results are byte-identical for every
// worker count.
//
// The router is built to be called repeatedly on the same design (the
// routability loop routes once per iteration): net decomposition is cached
// incrementally (cache.go), run costs come from per-batch prefix-sum fields
// (costfield.go), and the steady state allocates nothing — all scratch,
// including the returned Result, is router-owned and reused.
type Router struct {
	// Workers caps the goroutines used in the candidate-choice phase; 0
	// selects runtime.NumCPU(), 1 runs fully serial. Any setting produces
	// byte-identical routes.
	Workers int

	d *netlist.Design
	g *Grid

	// ZSamples is the number of intermediate positions tried per Z family.
	ZSamples int
	// Rounds is the number of full routing rounds (1 initial + Rounds−1
	// rip-up-and-reroute rounds with history).
	Rounds int
	// UseSteiner decomposes multi-pin nets with the iterated 1-Steiner RSMT
	// heuristic instead of a plain MST, trading decomposition time for
	// shorter trees (an ablation knob; the pattern router of [18] is
	// MST-based).
	UseSteiner bool
	// ViaDemand is the demand charged to a G-cell per bend.
	ViaDemand float64
	// PinVias is the via count charged per pin for layer access.
	PinVias int
	// Trace, when non-nil, receives spans for the net decomposition and
	// each rip-up-and-reroute round.
	Trace *telemetry.Tracer

	// CacheHits and DirtyNets count, per decomposition pass, the nets served
	// from the incremental cache and the nets re-decomposed. Nil-safe: a
	// router without telemetry leaves them nil. The counts are deterministic
	// (independent of workers and of the SetMovedCells hint), so they live
	// in the canonical trace.
	CacheHits *telemetry.Counter
	DirtyNets *telemetry.Counter

	hist   []float64 // accumulated overflow history per G-cell
	dmdH   []float64 // current horizontal wire demand (2-D)
	dmdV   []float64 // current vertical wire demand (2-D)
	dmdVia []float64 // current via demand (2-D)
	capTot []float64 // cached total capacity per G-cell
	hl, vl []int     // cached DirLayers results (assembleResult is hot)

	choices []int32         // per-batch chosen candidate index
	stats   parallel.Timing // accumulated cost of the choice phases
	cfStats parallel.Timing // accumulated cost of the cost-field builds

	cf    costField
	dc    decompCache
	moved []bool  // position-delta hint for the next route call (consumed)
	batch []sseg  // current choice batch (field, so chooseFn needs no closure churn)
	res   *Result // reused result; see Route for the ownership contract

	// Hot-loop worker functions, bound once at construction so the per-batch
	// parallel.For calls allocate no closures.
	chooseFn func(shard, lo, hi int)
	cfRows   func(shard, lo, hi int)
	cfCols   func(shard, lo, hi int)
}

// NewRouter creates a router with the default knobs.
func NewRouter(d *netlist.Design, g *Grid) *Router {
	n := g.NX * g.NY
	r := &Router{
		d:         d,
		g:         g,
		ZSamples:  3,
		Rounds:    2,
		ViaDemand: 0.5,
		PinVias:   2,
		hist:      make([]float64, n),
		dmdH:      make([]float64, n),
		dmdV:      make([]float64, n),
		dmdVia:    make([]float64, n),
		capTot:    make([]float64, n),
		choices:   make([]int32, chooseBatch),
	}
	for i := 0; i < n; i++ {
		r.capTot[i] = g.CapTotal(i)
	}
	r.hl = g.DirLayers(Horizontal)
	r.vl = g.DirLayers(Vertical)
	r.cf.init(g.NX, g.NY)
	r.chooseFn = func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			r.choices[i] = int32(r.chooseSegment(r.batch[i].segment))
		}
	}
	r.cfRows = func(_, lo, hi int) {
		nx := r.cf.nx
		for y := lo; y < hi; y++ {
			row := y * nx
			base := y * (nx + 1)
			s := 0.0
			r.cf.rowPS[base] = 0
			for x := 0; x < nx; x++ {
				c := r.cellCost(row + x)
				r.cf.cost[row+x] = c
				s += c
				r.cf.rowPS[base+x+1] = s
			}
		}
	}
	r.cfCols = func(_, lo, hi int) {
		nx, ny := r.cf.nx, r.cf.ny
		for x := lo; x < hi; x++ {
			base := x * (ny + 1)
			s := 0.0
			r.cf.colPS[base] = 0
			for y := 0; y < ny; y++ {
				s += r.cf.cost[y*nx+x]
				r.cf.colPS[base+y+1] = s
			}
		}
	}
	return r
}

// Stats returns the accumulated wall/busy time of the parallel
// candidate-choice phases (telemetry: the parallel.route speedup gauge).
func (r *Router) Stats() parallel.Timing { return r.stats }

// CostFieldStats returns the accumulated wall/busy time of the prefix-sum
// cost-field builds (telemetry: the parallel.route.costfield gauge).
func (r *Router) CostFieldStats() parallel.Timing { return r.cfStats }

// SetMovedCells hands the router a conservative position-delta hint for the
// NEXT route call: a cell not flagged true must not have changed position
// since the previous route call on this router, so none of its pins can
// have crossed a G-cell boundary and nets touching only unflagged cells
// skip the signature check. nil (and any router that is never given a
// hint) means "unknown — check every net". The hint is consumed by one
// route call and is performance-only: routes and the CacheHits/DirtyNets
// counters are identical with or without it.
func (r *Router) SetMovedCells(moved []bool) { r.moved = moved }

// Reset clears the per-call routing state — the rip-up-and-reroute overflow
// history and the demand maps — returning the router to its
// freshly-constructed condition without reallocating any buffer. Route
// calls it on entry, so one Router can be reused across the route
// iterations of a placement run (the routability loop constructs a single
// Router and routes it once per iteration) with results byte-identical to
// constructing a new Router each time. The accumulated Stats timing is
// deliberately kept (cumulative, wall-clock-only telemetry), and so is the
// decomposition cache — it depends only on pin positions, which Reset does
// not touch.
func (r *Router) Reset() {
	for i := range r.hist {
		r.hist[i] = 0
		r.dmdH[i] = 0
		r.dmdV[i] = 0
		r.dmdVia[i] = 0
	}
}

// segment is one two-pin connection in G-cell coordinates.
type segment struct {
	x1, y1, x2, y2 int
	lenEst         int // Manhattan estimate for ordering
}

// Route routes every net from the current cell positions and returns the
// demand and congestion maps.
//
// Ownership: the returned Result is router-owned and reused — it stays
// valid until the next Route/RouteContext/RouteWithMaze call on the same
// Router, which overwrites it in place. Callers that need a longer-lived
// snapshot must copy the fields they keep (the placement pipeline consumes
// each result within its route iteration).
func (r *Router) Route() *Result {
	res, _ := r.RouteContext(context.Background())
	return res
}

// RouteContext is Route with cooperative cancellation: the context is
// checked between rip-up rounds and between segment batches, and inside
// the parallel candidate-choice phase. On cancellation it returns
// (nil, ctx.Err()) — the router's internal demand state is left partial,
// but Route/RouteContext reset it on entry, so an aborted call has no
// effect on any later call. Routing never mutates the design, so a caller
// observing an error can simply drop the call. The Result ownership
// contract of Route applies.
func (r *Router) RouteContext(ctx context.Context) (*Result, error) {
	sp := r.Trace.Start("route.decompose")
	// Incremental: only nets whose pins crossed a G-cell boundary since the
	// previous call are re-decomposed; the sorted order (short segments
	// first — they have the fewest detour options) is restored by a stable
	// merge instead of a full re-sort.
	r.updateDecomposition()
	segs := r.dc.sorted
	sp.End()

	n := r.g.NX * r.g.NY
	r.Reset()
	var wl float64
	var vias int
	for round := 0; round < r.Rounds; round++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		rsp := r.Trace.Start("route.round")
		for i := 0; i < n; i++ {
			r.dmdH[i], r.dmdV[i], r.dmdVia[i] = 0, 0, 0
		}
		wl, vias = 0, 0
		for lo := 0; lo < len(segs); lo += chooseBatch {
			if err := ctx.Err(); err != nil {
				rsp.End()
				return nil, err
			}
			hi := lo + chooseBatch
			if hi > len(segs) {
				hi = len(segs)
			}
			r.batch = segs[lo:hi]
			// The batch's frozen demand snapshot, as O(1) prefix sums.
			r.buildCostField()
			// Choice phase: every segment in the batch reads the same
			// frozen cost field; writes (one choice slot per segment)
			// are disjoint, so any worker count picks the same patterns.
			t, err := parallel.ForCtx(ctx, r.Workers, len(r.batch), r.chooseFn)
			r.stats.Add(t)
			if err != nil {
				rsp.End()
				return nil, err
			}
			// Commit phase: serial, in segment order.
			for i := range r.batch {
				dw, dv := r.commitSegment(r.batch[i].segment, int(r.choices[i]))
				wl += dw
				vias += dv
			}
		}
		if round < r.Rounds-1 {
			// Accumulate overflow history for the next round. A
			// zero-capacity G-cell counts as hard-overflowed (utilization 2,
			// Result.finalize's convention) instead of dividing by zero.
			for i := 0; i < n; i++ {
				dmd := r.dmdH[i] + r.dmdV[i] + r.dmdVia[i]
				var u float64
				if cap := r.capTot[i]; cap > 0 {
					u = dmd / cap
				} else if dmd > 0 {
					u = 2
				}
				if u > 1 {
					r.hist[i] += 2 * (u - 1)
				}
			}
		}
		rsp.End()
	}

	// Pin-access vias.
	vias += r.PinVias * len(r.d.Pins)

	res := r.assembleResult(wl, vias)
	res.Segments = len(segs)
	res.RoundsRun = r.Rounds
	return res, nil
}

func newSegment(x1, y1, x2, y2 int) segment {
	return segment{x1, y1, x2, y2, abs(x1-x2) + abs(y1-y2)}
}

func abs(a int) int {
	if a < 0 {
		return -a
	}
	return a
}

// cellCost is the congestion-aware cost of pushing one more track through
// G-cell i: base distance 1 plus a soft overflow penalty plus RRR history.
// A zero-capacity G-cell (fully blocked by a macro) is priced as
// hard-overflowed (utilization 2) rather than dividing by zero, keeping
// every cost finite and the cell maximally unattractive.
func (r *Router) cellCost(i int) float64 {
	u := 2.0
	if cap := r.capTot[i]; cap > 0 {
		u = (r.dmdH[i] + r.dmdV[i] + r.dmdVia[i]) / cap
	}
	c := 1.0 + r.hist[i]
	if u > 0.8 {
		p := u - 0.8
		c += 10*p + 25*p*p
	}
	return c
}

// runCost sums cellCost over an inclusive horizontal or vertical run — the
// naive O(length) reference for the prefix-sum cost field. The maze fallback
// still prices with it (its demand state is live, not batch-frozen), and the
// cross-check test holds the field to it.
func (r *Router) runCost(x1, y1, x2, y2 int) float64 {
	var c float64
	if y1 == y2 {
		if x2 < x1 {
			x1, x2 = x2, x1
		}
		for x := x1; x <= x2; x++ {
			c += r.cellCost(y1*r.g.NX + x)
		}
	} else {
		if y2 < y1 {
			y1, y2 = y2, y1
		}
		for y := y1; y <= y2; y++ {
			c += r.cellCost(y*r.g.NX + x1)
		}
	}
	return c
}

// addRun commits wire demand along an inclusive run.
func (r *Router) addRun(x1, y1, x2, y2 int) {
	if y1 == y2 {
		if x2 < x1 {
			x1, x2 = x2, x1
		}
		for x := x1; x <= x2; x++ {
			r.dmdH[y1*r.g.NX+x]++
		}
	} else {
		if y2 < y1 {
			y1, y2 = y2, y1
		}
		for y := y1; y <= y2; y++ {
			r.dmdV[y*r.g.NX+x1]++
		}
	}
}

// candidate describes one pattern: up to three runs and its bend G-cells.
type candidate struct {
	runs  [3][4]int // x1,y1,x2,y2; unused runs have negative x1
	nRuns int
	bends [2]int // bend cell indices; -1 when absent
	nBend int
}

func (r *Router) addCandidateRun(c *candidate, x1, y1, x2, y2 int) {
	c.runs[c.nRuns] = [4]int{x1, y1, x2, y2}
	c.nRuns++
}

func (r *Router) addBend(c *candidate, x, y int) {
	c.bends[c.nBend] = y*r.g.NX + x
	c.nBend++
}

// enumerate generates the candidate patterns for a segment: straight runs
// for aligned endpoints, both L-shapes, and ZSamples Z-shapes per family.
func (r *Router) enumerate(s segment, out []candidate) []candidate {
	out = out[:0]
	if s.y1 == s.y2 || s.x1 == s.x2 {
		var c candidate
		r.addCandidateRun(&c, s.x1, s.y1, s.x2, s.y2)
		return append(out, c)
	}
	// L-shapes.
	{
		var c candidate
		r.addCandidateRun(&c, s.x1, s.y1, s.x2, s.y1) // horizontal first
		r.addCandidateRun(&c, s.x2, s.y1, s.x2, s.y2)
		r.addBend(&c, s.x2, s.y1)
		out = append(out, c)
	}
	{
		var c candidate
		r.addCandidateRun(&c, s.x1, s.y1, s.x1, s.y2) // vertical first
		r.addCandidateRun(&c, s.x1, s.y2, s.x2, s.y2)
		r.addBend(&c, s.x1, s.y2)
		out = append(out, c)
	}
	// Z-shapes: horizontal-vertical-horizontal with intermediate column xm,
	// and vertical-horizontal-vertical with intermediate row ym.
	dx := s.x2 - s.x1
	dy := s.y2 - s.y1
	for k := 1; k <= r.ZSamples; k++ {
		frac := float64(k) / float64(r.ZSamples+1)
		xm := s.x1 + int(math.Round(frac*float64(dx)))
		if xm != s.x1 && xm != s.x2 {
			var c candidate
			r.addCandidateRun(&c, s.x1, s.y1, xm, s.y1)
			r.addCandidateRun(&c, xm, s.y1, xm, s.y2)
			r.addCandidateRun(&c, xm, s.y2, s.x2, s.y2)
			r.addBend(&c, xm, s.y1)
			r.addBend(&c, xm, s.y2)
			out = append(out, c)
		}
		ym := s.y1 + int(math.Round(frac*float64(dy)))
		if ym != s.y1 && ym != s.y2 {
			var c candidate
			r.addCandidateRun(&c, s.x1, s.y1, s.x1, ym)
			r.addCandidateRun(&c, s.x1, ym, s.x2, ym)
			r.addCandidateRun(&c, s.x2, ym, s.x2, s.y2)
			r.addBend(&c, s.x1, ym)
			r.addBend(&c, s.x2, ym)
			out = append(out, c)
		}
	}
	return out
}

// chooseSegment picks the cheapest candidate for s against the batch's
// frozen cost field without modifying anything — safe to call concurrently
// for segments of one batch. It returns the candidate index for
// commitSegment. The caller must have built the cost field against the
// current demand state (RouteContext does, at the top of every batch).
func (r *Router) chooseSegment(s segment) int {
	var buf [2 + 2*8]candidate
	cands := r.enumerate(s, buf[:0])
	bestIdx, bestCost := 0, math.Inf(1)
	for i := range cands {
		c := &cands[i]
		cost := 0.0
		for k := 0; k < c.nRuns; k++ {
			run := c.runs[k]
			cost += r.cf.runCost(run[0], run[1], run[2], run[3])
		}
		// Bend cells are visited by two runs; subtract the double count and
		// charge the via instead. The snapshot cost keeps bends and runs on
		// the identical frozen values.
		for k := 0; k < c.nBend; k++ {
			cost -= r.cf.cost[c.bends[k]]
			cost += 2 * r.ViaDemand
		}
		if cost < bestCost {
			bestCost = cost
			bestIdx = i
		}
	}
	return bestIdx
}

// chooseSegmentRef is chooseSegment priced with the naive runCost reference
// against the LIVE demand state. The maze fallback uses it (its demand has
// drifted from whatever cost field was last built); the batched hot path
// never does.
func (r *Router) chooseSegmentRef(s segment) int {
	var buf [2 + 2*8]candidate
	cands := r.enumerate(s, buf[:0])
	bestIdx, bestCost := 0, math.Inf(1)
	for i := range cands {
		c := &cands[i]
		cost := 0.0
		for k := 0; k < c.nRuns; k++ {
			run := c.runs[k]
			cost += r.runCost(run[0], run[1], run[2], run[3])
		}
		for k := 0; k < c.nBend; k++ {
			cost -= r.cellCost(c.bends[k])
			cost += 2 * r.ViaDemand
		}
		if cost < bestCost {
			bestCost = cost
			bestIdx = i
		}
	}
	return bestIdx
}

// commitSegment re-enumerates s, commits the demand of the chosen candidate,
// and returns the routed wirelength in DBU and the via count added. The
// demand increments are exact in float64, so the committed maps carry no
// rounding dependence on the commit grouping.
func (r *Router) commitSegment(s segment, choice int) (float64, int) {
	var buf [2 + 2*8]candidate
	cands := r.enumerate(s, buf[:0])
	best := &cands[choice]
	var wl float64
	for k := 0; k < best.nRuns; k++ {
		run := best.runs[k]
		r.addRun(run[0], run[1], run[2], run[3])
		wl += float64(abs(run[2]-run[0]))*r.g.CellW + float64(abs(run[3]-run[1]))*r.g.CellH
	}
	for k := 0; k < best.nBend; k++ {
		r.dmdVia[best.bends[k]] += r.ViaDemand
	}
	return wl, best.nBend
}
