package route

import (
	"context"
	"math"
	"sort"

	"repro/internal/netlist"
	"repro/internal/parallel"
	"repro/internal/steiner"
	"repro/internal/telemetry"
)

// chooseBatch is the number of segments whose candidate selection runs
// against one frozen demand snapshot. It is a constant — never derived from
// the worker count — so the batch boundaries, and therefore every routing
// decision, are identical for any Workers setting.
const chooseBatch = 256

// Router performs congestion-aware pattern global routing of a design on a
// Grid. It decomposes each net into two-pin segments with a Prim MST,
// enumerates L- and Z-shape candidates per segment, picks the cheapest under
// a congestion + history cost, and repeats for a few rip-up-and-reroute
// rounds. It is deterministic for a fixed design and placement.
//
// Segments are routed in fixed-size batches: the candidate choice of every
// segment in a batch reads a frozen demand snapshot (and so parallelizes
// over the internal/parallel shard layer with disjoint writes), then the
// chosen patterns are committed serially in segment order. Batch boundaries
// depend only on the segment count, so results are byte-identical for every
// worker count.
type Router struct {
	// Workers caps the goroutines used in the candidate-choice phase; 0
	// selects runtime.NumCPU(), 1 runs fully serial. Any setting produces
	// byte-identical routes.
	Workers int

	d *netlist.Design
	g *Grid

	// ZSamples is the number of intermediate positions tried per Z family.
	ZSamples int
	// Rounds is the number of full routing rounds (1 initial + Rounds−1
	// rip-up-and-reroute rounds with history).
	Rounds int
	// UseSteiner decomposes multi-pin nets with the iterated 1-Steiner RSMT
	// heuristic instead of a plain MST, trading decomposition time for
	// shorter trees (an ablation knob; the pattern router of [18] is
	// MST-based).
	UseSteiner bool
	// ViaDemand is the demand charged to a G-cell per bend.
	ViaDemand float64
	// PinVias is the via count charged per pin for layer access.
	PinVias int
	// Trace, when non-nil, receives spans for the net decomposition and
	// each rip-up-and-reroute round.
	Trace *telemetry.Tracer

	hist   []float64 // accumulated overflow history per G-cell
	dmdH   []float64 // current horizontal wire demand (2-D)
	dmdV   []float64 // current vertical wire demand (2-D)
	dmdVia []float64 // current via demand (2-D)
	capTot []float64 // cached total capacity per G-cell

	choices []int32         // per-batch chosen candidate index
	stats   parallel.Timing // accumulated cost of the choice phases
}

// NewRouter creates a router with the default knobs.
func NewRouter(d *netlist.Design, g *Grid) *Router {
	n := g.NX * g.NY
	r := &Router{
		d:         d,
		g:         g,
		ZSamples:  3,
		Rounds:    2,
		ViaDemand: 0.5,
		PinVias:   2,
		hist:      make([]float64, n),
		dmdH:      make([]float64, n),
		dmdV:      make([]float64, n),
		dmdVia:    make([]float64, n),
		capTot:    make([]float64, n),
		choices:   make([]int32, chooseBatch),
	}
	for i := 0; i < n; i++ {
		r.capTot[i] = g.CapTotal(i)
	}
	return r
}

// Stats returns the accumulated wall/busy time of the parallel
// candidate-choice phases (telemetry: the parallel.route speedup gauge).
func (r *Router) Stats() parallel.Timing { return r.stats }

// Reset clears the per-call routing state — the rip-up-and-reroute overflow
// history and the demand maps — returning the router to its
// freshly-constructed condition without reallocating any buffer. Route
// calls it on entry, so one Router can be reused across the route
// iterations of a placement run (the routability loop constructs a single
// Router and routes it once per iteration) with results byte-identical to
// constructing a new Router each time. The accumulated Stats timing is
// deliberately kept: it is cumulative, wall-clock-only telemetry.
func (r *Router) Reset() {
	for i := range r.hist {
		r.hist[i] = 0
		r.dmdH[i] = 0
		r.dmdV[i] = 0
		r.dmdVia[i] = 0
	}
}

// segment is one two-pin connection in G-cell coordinates.
type segment struct {
	x1, y1, x2, y2 int
	lenEst         int // Manhattan estimate for ordering
}

// Route routes every net from the current cell positions and returns the
// demand and congestion maps.
func (r *Router) Route() *Result {
	res, _ := r.RouteContext(context.Background())
	return res
}

// RouteContext is Route with cooperative cancellation: the context is
// checked between rip-up rounds and between segment batches, and inside
// the parallel candidate-choice phase. On cancellation it returns
// (nil, ctx.Err()) — the router's internal demand state is left partial,
// but Route/RouteContext reset it on entry, so an aborted call has no
// effect on any later call. Routing never mutates the design, so a caller
// observing an error can simply drop the call.
func (r *Router) RouteContext(ctx context.Context) (*Result, error) {
	sp := r.Trace.Start("route.decompose")
	segs := r.decompose()
	// Short segments first: they have the fewest detour options.
	sort.SliceStable(segs, func(i, j int) bool { return segs[i].lenEst < segs[j].lenEst })
	sp.End()

	n := r.g.NX * r.g.NY
	r.Reset()
	var wl float64
	var vias int
	for round := 0; round < r.Rounds; round++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		rsp := r.Trace.Start("route.round")
		for i := 0; i < n; i++ {
			r.dmdH[i], r.dmdV[i], r.dmdVia[i] = 0, 0, 0
		}
		wl, vias = 0, 0
		for lo := 0; lo < len(segs); lo += chooseBatch {
			if err := ctx.Err(); err != nil {
				rsp.End()
				return nil, err
			}
			hi := lo + chooseBatch
			if hi > len(segs) {
				hi = len(segs)
			}
			batch := segs[lo:hi]
			// Choice phase: every segment in the batch reads the same
			// frozen demand state; writes (one choice slot per segment)
			// are disjoint, so any worker count picks the same patterns.
			t, err := parallel.ForCtx(ctx, r.Workers, len(batch), func(_, blo, bhi int) {
				for i := blo; i < bhi; i++ {
					r.choices[i] = int32(r.chooseSegment(batch[i]))
				}
			})
			r.stats.Add(t)
			if err != nil {
				rsp.End()
				return nil, err
			}
			// Commit phase: serial, in segment order.
			for i, s := range batch {
				dw, dv := r.commitSegment(s, int(r.choices[i]))
				wl += dw
				vias += dv
			}
		}
		if round < r.Rounds-1 {
			// Accumulate overflow history for the next round.
			for i := 0; i < n; i++ {
				u := (r.dmdH[i] + r.dmdV[i] + r.dmdVia[i]) / r.capTot[i]
				if u > 1 {
					r.hist[i] += 2 * (u - 1)
				}
			}
		}
		rsp.End()
	}

	// Pin-access vias.
	vias += r.PinVias * len(r.d.Pins)

	res := r.assembleResult(wl, vias)
	res.Segments = len(segs)
	res.RoundsRun = r.Rounds
	return res, nil
}

// decompose converts every net into MST two-pin segments in G-cell space.
func (r *Router) decompose() []segment {
	var segs []segment
	for e := range r.d.Nets {
		net := &r.d.Nets[e]
		deg := net.Degree()
		if deg < 2 {
			continue
		}
		// Collect pin G-cells, deduplicated.
		type gp struct{ x, y int }
		pts := make([]gp, 0, deg)
		seen := make(map[gp]bool, deg)
		for _, pi := range net.Pins {
			p := r.d.PinPos(pi)
			cx, cy := r.g.CellAt(p.X, p.Y)
			q := gp{cx, cy}
			if !seen[q] {
				seen[q] = true
				pts = append(pts, q)
			}
		}
		if len(pts) < 2 {
			continue
		}
		if len(pts) == 2 {
			segs = append(segs, newSegment(pts[0].x, pts[0].y, pts[1].x, pts[1].y))
			continue
		}
		if r.UseSteiner {
			spts := make([]steiner.Point, len(pts))
			for i, p := range pts {
				spts[i] = steiner.Point{X: p.x, Y: p.y}
			}
			nodes, edges, _ := steiner.Tree(spts)
			for _, e := range edges {
				a, b := nodes[e.A], nodes[e.B]
				segs = append(segs, newSegment(a.X, a.Y, b.X, b.Y))
			}
			continue
		}
		// Prim MST on Manhattan distance.
		inTree := make([]bool, len(pts))
		dist := make([]int, len(pts))
		parent := make([]int, len(pts))
		for i := range dist {
			dist[i] = math.MaxInt32
			parent[i] = -1
		}
		dist[0] = 0
		for iter := 0; iter < len(pts); iter++ {
			best, bd := -1, math.MaxInt32
			for i := range pts {
				if !inTree[i] && dist[i] < bd {
					best, bd = i, dist[i]
				}
			}
			inTree[best] = true
			if parent[best] >= 0 {
				a, b := pts[parent[best]], pts[best]
				segs = append(segs, newSegment(a.x, a.y, b.x, b.y))
			}
			for i := range pts {
				if inTree[i] {
					continue
				}
				d := abs(pts[i].x-pts[best].x) + abs(pts[i].y-pts[best].y)
				if d < dist[i] {
					dist[i] = d
					parent[i] = best
				}
			}
		}
	}
	return segs
}

func newSegment(x1, y1, x2, y2 int) segment {
	return segment{x1, y1, x2, y2, abs(x1-x2) + abs(y1-y2)}
}

func abs(a int) int {
	if a < 0 {
		return -a
	}
	return a
}

// cellCost is the congestion-aware cost of pushing one more track through
// G-cell i: base distance 1 plus a soft overflow penalty plus RRR history.
func (r *Router) cellCost(i int) float64 {
	u := (r.dmdH[i] + r.dmdV[i] + r.dmdVia[i]) / r.capTot[i]
	c := 1.0 + r.hist[i]
	if u > 0.8 {
		p := u - 0.8
		c += 10*p + 25*p*p
	}
	return c
}

// runCost sums cellCost over an inclusive horizontal or vertical run.
func (r *Router) runCost(x1, y1, x2, y2 int) float64 {
	var c float64
	if y1 == y2 {
		if x2 < x1 {
			x1, x2 = x2, x1
		}
		for x := x1; x <= x2; x++ {
			c += r.cellCost(y1*r.g.NX + x)
		}
	} else {
		if y2 < y1 {
			y1, y2 = y2, y1
		}
		for y := y1; y <= y2; y++ {
			c += r.cellCost(y*r.g.NX + x1)
		}
	}
	return c
}

// addRun commits wire demand along an inclusive run.
func (r *Router) addRun(x1, y1, x2, y2 int) {
	if y1 == y2 {
		if x2 < x1 {
			x1, x2 = x2, x1
		}
		for x := x1; x <= x2; x++ {
			r.dmdH[y1*r.g.NX+x]++
		}
	} else {
		if y2 < y1 {
			y1, y2 = y2, y1
		}
		for y := y1; y <= y2; y++ {
			r.dmdV[y*r.g.NX+x1]++
		}
	}
}

// candidate describes one pattern: up to three runs and its bend G-cells.
type candidate struct {
	runs  [3][4]int // x1,y1,x2,y2; unused runs have negative x1
	nRuns int
	bends [2]int // bend cell indices; -1 when absent
	nBend int
}

func (r *Router) addCandidateRun(c *candidate, x1, y1, x2, y2 int) {
	c.runs[c.nRuns] = [4]int{x1, y1, x2, y2}
	c.nRuns++
}

func (r *Router) addBend(c *candidate, x, y int) {
	c.bends[c.nBend] = y*r.g.NX + x
	c.nBend++
}

// enumerate generates the candidate patterns for a segment: straight runs
// for aligned endpoints, both L-shapes, and ZSamples Z-shapes per family.
func (r *Router) enumerate(s segment, out []candidate) []candidate {
	out = out[:0]
	if s.y1 == s.y2 || s.x1 == s.x2 {
		var c candidate
		r.addCandidateRun(&c, s.x1, s.y1, s.x2, s.y2)
		return append(out, c)
	}
	// L-shapes.
	{
		var c candidate
		r.addCandidateRun(&c, s.x1, s.y1, s.x2, s.y1) // horizontal first
		r.addCandidateRun(&c, s.x2, s.y1, s.x2, s.y2)
		r.addBend(&c, s.x2, s.y1)
		out = append(out, c)
	}
	{
		var c candidate
		r.addCandidateRun(&c, s.x1, s.y1, s.x1, s.y2) // vertical first
		r.addCandidateRun(&c, s.x1, s.y2, s.x2, s.y2)
		r.addBend(&c, s.x1, s.y2)
		out = append(out, c)
	}
	// Z-shapes: horizontal-vertical-horizontal with intermediate column xm,
	// and vertical-horizontal-vertical with intermediate row ym.
	dx := s.x2 - s.x1
	dy := s.y2 - s.y1
	for k := 1; k <= r.ZSamples; k++ {
		frac := float64(k) / float64(r.ZSamples+1)
		xm := s.x1 + int(math.Round(frac*float64(dx)))
		if xm != s.x1 && xm != s.x2 {
			var c candidate
			r.addCandidateRun(&c, s.x1, s.y1, xm, s.y1)
			r.addCandidateRun(&c, xm, s.y1, xm, s.y2)
			r.addCandidateRun(&c, xm, s.y2, s.x2, s.y2)
			r.addBend(&c, xm, s.y1)
			r.addBend(&c, xm, s.y2)
			out = append(out, c)
		}
		ym := s.y1 + int(math.Round(frac*float64(dy)))
		if ym != s.y1 && ym != s.y2 {
			var c candidate
			r.addCandidateRun(&c, s.x1, s.y1, s.x1, ym)
			r.addCandidateRun(&c, s.x1, ym, s.x2, ym)
			r.addCandidateRun(&c, s.x2, ym, s.x2, s.y2)
			r.addBend(&c, s.x1, ym)
			r.addBend(&c, s.x2, ym)
			out = append(out, c)
		}
	}
	return out
}

// chooseSegment picks the cheapest candidate for s against the current
// demand state without modifying anything — safe to call concurrently for
// segments of one batch. It returns the candidate index for commitSegment.
func (r *Router) chooseSegment(s segment) int {
	var buf [2 + 2*8]candidate
	cands := r.enumerate(s, buf[:0])
	bestIdx, bestCost := 0, math.Inf(1)
	for i := range cands {
		c := &cands[i]
		cost := 0.0
		for k := 0; k < c.nRuns; k++ {
			run := c.runs[k]
			cost += r.runCost(run[0], run[1], run[2], run[3])
		}
		// Bend cells are visited by two runs; subtract the double count and
		// charge the via instead.
		for k := 0; k < c.nBend; k++ {
			cost -= r.cellCost(c.bends[k])
			cost += 2 * r.ViaDemand
		}
		if cost < bestCost {
			bestCost = cost
			bestIdx = i
		}
	}
	return bestIdx
}

// commitSegment re-enumerates s, commits the demand of the chosen candidate,
// and returns the routed wirelength in DBU and the via count added. The
// demand increments are exact in float64, so the committed maps carry no
// rounding dependence on the commit grouping.
func (r *Router) commitSegment(s segment, choice int) (float64, int) {
	var buf [2 + 2*8]candidate
	cands := r.enumerate(s, buf[:0])
	best := &cands[choice]
	var wl float64
	for k := 0; k < best.nRuns; k++ {
		run := best.runs[k]
		r.addRun(run[0], run[1], run[2], run[3])
		wl += float64(abs(run[2]-run[0]))*r.g.CellW + float64(abs(run[3]-run[1]))*r.g.CellH
	}
	for k := 0; k < best.nBend; k++ {
		r.dmdVia[best.bends[k]] += r.ViaDemand
	}
	return wl, best.nBend
}
