package route

import (
	"math"
	"testing"

	"repro/internal/geom"
	"repro/internal/netlist"
	"repro/internal/synth"
)

// twoCellDesign builds two cells connected by one net at given positions.
func twoCellDesign(t testing.TB, x1, y1, x2, y2 float64) *netlist.Design {
	t.Helper()
	b := netlist.NewBuilder("two", geom.NewRect(0, 0, 256, 256), 8, 1)
	b.AddCell("a", netlist.StdCell, x1, y1, 2, 8)
	b.AddCell("b", netlist.StdCell, x2, y2, 2, 8)
	n := b.AddNet("n", 1)
	b.Connect(0, n, 0, 0)
	b.Connect(1, n, 0, 0)
	return b.MustBuild()
}

func TestGridDimensionsAndCapacity(t *testing.T) {
	d := synth.MustGenerate("tiny_open")
	g := NewGrid(d, 30)
	if g.NX != 32 || g.NY != 32 {
		t.Errorf("grid dims %dx%d, want 32x32 (power of two)", g.NX, g.NY)
	}
	if g.Layers != d.RouteLayers {
		t.Errorf("layers %d, want %d", g.Layers, d.RouteLayers)
	}
	for i := 0; i < g.NX*g.NY; i++ {
		if g.CapTotal(i) <= 0 {
			t.Fatalf("G-cell %d has no capacity", i)
		}
	}
	if len(g.DirLayers(Horizontal))+len(g.DirLayers(Vertical)) != g.Layers {
		t.Errorf("layer directions do not partition layers")
	}
}

func TestMacroReducesCapacity(t *testing.T) {
	b := netlist.NewBuilder("m", geom.NewRect(0, 0, 256, 256), 8, 1)
	b.AddCell("macro", netlist.Macro, 128, 128, 64, 64)
	b.AddCell("c", netlist.StdCell, 20, 20, 2, 8)
	n := b.AddNet("n", 1)
	b.Connect(0, n, 0, 0)
	b.Connect(1, n, 0, 0)
	d := b.MustBuild()
	g := NewGrid(d, 32)
	cx, cy := g.CellAt(128, 128)
	over := g.CapTotal(cy*g.NX + cx)
	fx, fy := g.CellAt(20, 220)
	free := g.CapTotal(fy*g.NX + fx)
	if over >= free {
		t.Errorf("capacity over macro (%v) not below free area (%v)", over, free)
	}
}

func TestCellAtClamps(t *testing.T) {
	d := synth.MustGenerate("tiny_open")
	g := NewGrid(d, 32)
	x, y := g.CellAt(-1e9, 1e9)
	if x != 0 || y != g.NY-1 {
		t.Errorf("CellAt did not clamp: (%d,%d)", x, y)
	}
}

func TestStraightNetDemand(t *testing.T) {
	// A purely horizontal two-pin net must create only horizontal demand
	// along its row, with no bends.
	d := twoCellDesign(t, 20, 128, 200, 128)
	g := NewGrid(d, 32)
	r := NewRouter(d, g)
	res := r.Route()
	if res.Vias != r.PinVias*len(d.Pins) {
		t.Errorf("straight net created bend vias: %d", res.Vias)
	}
	// Demand must exist in the row of y=128 between the cells.
	cx1, cy := g.CellAt(20, 128)
	cx2, _ := g.CellAt(200, 128)
	for cx := cx1; cx <= cx2; cx++ {
		if res.DemandTotal(cy*g.NX+cx) <= 0 {
			t.Errorf("no demand at G-cell (%d,%d)", cx, cy)
		}
	}
	// Wirelength ≈ Manhattan distance in grid units.
	wantWL := float64(cx2-cx1) * g.CellW
	if math.Abs(res.WirelengthDBU-wantWL) > 1e-9 {
		t.Errorf("WL %v, want %v", res.WirelengthDBU, wantWL)
	}
}

func TestLShapeCreatesViaAndBothDirections(t *testing.T) {
	d := twoCellDesign(t, 20, 20, 200, 200)
	g := NewGrid(d, 32)
	r := NewRouter(d, g)
	res := r.Route()
	bendVias := res.Vias - r.PinVias*len(d.Pins)
	if bendVias < 1 {
		t.Errorf("diagonal net created no bend vias")
	}
	// WL is at least Manhattan distance.
	cx1, cy1 := g.CellAt(20, 20)
	cx2, cy2 := g.CellAt(200, 200)
	manhattan := float64(abs(cx2-cx1))*g.CellW + float64(abs(cy2-cy1))*g.CellH
	if res.WirelengthDBU < manhattan-1e-9 {
		t.Errorf("WL %v below Manhattan %v", res.WirelengthDBU, manhattan)
	}
}

func TestCongestionMapMatchesEq3(t *testing.T) {
	d := synth.MustGenerate("tiny_hot")
	g := NewGrid(d, 32)
	res := NewRouter(d, g).Route()
	for i := 0; i < g.NX*g.NY; i++ {
		util := res.DemandTotal(i) / g.CapTotal(i)
		want := math.Max(util-1, 0)
		if math.Abs(res.Congestion[i]-want) > 1e-9 {
			t.Fatalf("congestion[%d] = %v, want max(%v−1,0) = %v", i, res.Congestion[i], util, want)
		}
		if res.Congestion[i] < 0 {
			t.Fatalf("negative congestion at %d", i)
		}
	}
}

func TestReroutingReducesOverflow(t *testing.T) {
	// More RRR rounds must not increase total overflow on a congested case.
	d := synth.MustGenerate("tiny_hot")
	g := NewGrid(d, 32)
	r1 := NewRouter(d, g)
	r1.Rounds = 1
	res1 := r1.Route()
	r3 := NewRouter(d, g)
	r3.Rounds = 3
	res3 := r3.Route()
	if res3.OverflowTotal > res1.OverflowTotal*1.05 {
		t.Errorf("RRR increased overflow: 1 round %v, 3 rounds %v", res1.OverflowTotal, res3.OverflowTotal)
	}
}

func TestRouterDeterministic(t *testing.T) {
	d := synth.MustGenerate("tiny_hot")
	g := NewGrid(d, 32)
	a := NewRouter(d, g).Route()
	b := NewRouter(d, g).Route()
	if a.WirelengthDBU != b.WirelengthDBU || a.Vias != b.Vias || a.OverflowTotal != b.OverflowTotal {
		t.Errorf("router not deterministic")
	}
	for i := range a.Congestion {
		if a.Congestion[i] != b.Congestion[i] {
			t.Fatalf("congestion differs at %d", i)
		}
	}
}

func TestSpreadingCellsReducesCongestion(t *testing.T) {
	// The central claim the placer relies on: moving cells apart in a
	// hotspot reduces peak congestion there.
	b := netlist.NewBuilder("hot", geom.NewRect(0, 0, 256, 256), 8, 1)
	const n = 60
	for i := 0; i < n; i++ {
		b.AddCell("c", netlist.StdCell, 124+float64(i%4)*2, 124+float64(i/4)*2, 2, 8)
	}
	// Dense local interconnect.
	for i := 0; i+1 < n; i++ {
		net := b.AddNet("n", 1)
		b.Connect(i, net, 0, 0)
		b.Connect(i+1, net, 0, 0)
	}
	b.SetRouteCapScale(0.5)
	d := b.MustBuild()
	g := NewGrid(d, 32)
	clustered := NewRouter(d, g).Route()

	for i := range d.Cells {
		d.Cells[i].X = 24 + float64(i%8)*28
		d.Cells[i].Y = 24 + float64(i/8)*28
	}
	spread := NewRouter(d, g).Route()
	if spread.MaxUtil >= clustered.MaxUtil {
		t.Errorf("spreading did not reduce max utilization: %v → %v", clustered.MaxUtil, spread.MaxUtil)
	}
}

func TestAvgAndAtAccessors(t *testing.T) {
	d := synth.MustGenerate("tiny_hot")
	g := NewGrid(d, 32)
	res := NewRouter(d, g).Route()
	var sum float64
	for _, c := range res.Congestion {
		sum += c
	}
	if math.Abs(res.AvgCongestion()-sum/float64(len(res.Congestion))) > 1e-12 {
		t.Errorf("AvgCongestion wrong")
	}
	// CongestionAt must agree with direct indexing.
	x, y := g.CellCenter(5, 7)
	if res.CongestionAt(x, y) != res.Congestion[7*g.NX+5] {
		t.Errorf("CongestionAt disagrees with map")
	}
	if res.UtilAt(x, y) != res.Util[7*g.NX+5] {
		t.Errorf("UtilAt disagrees with map")
	}
	if res.WeightedCongestion() < 0 {
		t.Errorf("negative weighted congestion")
	}
}

func TestRUDYBasics(t *testing.T) {
	d := twoCellDesign(t, 20, 128, 200, 128)
	g := NewGrid(d, 32)
	rudy := RUDY(d, g)
	var total float64
	peak := 0.0
	for _, v := range rudy {
		if v < 0 {
			t.Fatalf("negative RUDY")
		}
		total += v
		if v > peak {
			peak = v
		}
	}
	if total <= 0 {
		t.Fatalf("RUDY empty")
	}
	// Demand concentrates in the net's row.
	cx, cy := g.CellAt(110, 128)
	if rudy[cy*g.NX+cx] < peak/2 {
		t.Errorf("RUDY low along the net row")
	}
}

func TestRUDYCorrelatesWithRouter(t *testing.T) {
	// On a real design, G-cells with high routed demand should tend to have
	// high RUDY too (rank correlation over a coarse split).
	d := synth.MustGenerate("tiny_hot")
	g := NewGrid(d, 32)
	res := NewRouter(d, g).Route()
	rudy := RUDY(d, g)
	// Compare mean RUDY over the top-decile routed cells vs the rest.
	type pair struct{ dmd, rudy float64 }
	n := g.NX * g.NY
	pairs := make([]pair, n)
	for i := 0; i < n; i++ {
		pairs[i] = pair{res.DemandTotal(i), rudy[i]}
	}
	var hiSum, hiN, loSum, loN float64
	// Threshold at the routed-demand mean.
	var dmdMean float64
	for _, p := range pairs {
		dmdMean += p.dmd
	}
	dmdMean /= float64(n)
	for _, p := range pairs {
		if p.dmd > dmdMean {
			hiSum += p.rudy
			hiN++
		} else {
			loSum += p.rudy
			loN++
		}
	}
	if hiN == 0 || loN == 0 {
		t.Skip("degenerate split")
	}
	if hiSum/hiN <= loSum/loN {
		t.Errorf("RUDY does not correlate with routed demand: hi %v lo %v", hiSum/hiN, loSum/loN)
	}
}

func BenchmarkRouteTinyHot(b *testing.B) {
	d := synth.MustGenerate("tiny_hot")
	g := NewGrid(d, 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NewRouter(d, g).Route()
	}
}

func BenchmarkRouteFFT1(b *testing.B) {
	d := synth.MustGenerate("fft_1")
	g := NewGrid(d, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NewRouter(d, g).Route()
	}
}

func TestSteinerDecompositionShortensTrees(t *testing.T) {
	d := synth.MustGenerate("tiny_hot")
	g := NewGrid(d, 32)
	plain := NewRouter(d, g).Route()
	st := NewRouter(d, g)
	st.UseSteiner = true
	res := st.Route()
	// RSMT decomposition must not lengthen the total routed wirelength
	// noticeably; on net mixes with multi-pin nets it should shorten it.
	if res.WirelengthDBU > plain.WirelengthDBU*1.01 {
		t.Errorf("steiner lengthened routing: %v vs %v", res.WirelengthDBU, plain.WirelengthDBU)
	}
	if res.WirelengthDBU >= plain.WirelengthDBU {
		t.Logf("note: steiner gave no improvement (%v vs %v)", res.WirelengthDBU, plain.WirelengthDBU)
	}
}

func TestSteinerRouterDeterministic(t *testing.T) {
	d := synth.MustGenerate("tiny_hot")
	g := NewGrid(d, 32)
	mk := func() *Result {
		r := NewRouter(d, g)
		r.UseSteiner = true
		return r.Route()
	}
	a, b := mk(), mk()
	if a.WirelengthDBU != b.WirelengthDBU || a.Vias != b.Vias {
		t.Errorf("steiner routing not deterministic")
	}
}
