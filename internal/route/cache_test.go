package route

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/netlist"
	"repro/internal/synth"
	"repro/internal/telemetry"
)

// perturbCells moves roughly a third of the movable cells by up to ±20 DBU in
// each axis — enough that some nets cross G-cell boundaries (dirty) while
// most stay put (clean), exercising the filter+merge path rather than the
// degenerate all-clean or all-dirty cases. The returned mask is derived from
// an exact position comparison (the same test the pipeline's delta feed
// uses), not from intent: ClampToDie may move cells the perturbation did not.
func perturbCells(d *netlist.Design, rng *rand.Rand) []bool {
	before := d.SnapshotPositions()
	for i := range d.Cells {
		c := &d.Cells[i]
		if !c.Movable() || rng.Intn(3) != 0 {
			continue
		}
		c.X += (rng.Float64() - 0.5) * 40
		c.Y += (rng.Float64() - 0.5) * 40
	}
	d.ClampToDie()
	moved := make([]bool, len(d.Cells))
	for i := range d.Cells {
		moved[i] = d.Cells[i].X != before[2*i] || d.Cells[i].Y != before[2*i+1]
	}
	return moved
}

// requireSameResult compares two routing results bitwise.
func requireSameResult(t *testing.T, got, want *Result) {
	t.Helper()
	if math.Float64bits(got.WirelengthDBU) != math.Float64bits(want.WirelengthDBU) {
		t.Fatalf("WL differs: %v vs %v", got.WirelengthDBU, want.WirelengthDBU)
	}
	if got.Vias != want.Vias {
		t.Fatalf("vias differ: %d vs %d", got.Vias, want.Vias)
	}
	for l := range want.Dmd {
		for i := range want.Dmd[l] {
			if math.Float64bits(got.Dmd[l][i]) != math.Float64bits(want.Dmd[l][i]) {
				t.Fatalf("Dmd[%d][%d] differs bitwise: %v vs %v", l, i, got.Dmd[l][i], want.Dmd[l][i])
			}
		}
	}
	for i := range want.Congestion {
		if math.Float64bits(got.Congestion[i]) != math.Float64bits(want.Congestion[i]) {
			t.Fatalf("Congestion[%d] differs bitwise", i)
		}
	}
}

// TestIncrementalMatchesFullDecomposition is the core correctness proof of
// the incremental path: after several placement perturbations, a router that
// updated its cache incrementally must hold a sorted segment list and produce
// a Result byte-identical to a fresh router doing a full decomposition at the
// same positions.
func TestIncrementalMatchesFullDecomposition(t *testing.T) {
	for _, steinerMode := range []bool{false, true} {
		name := "mst"
		if steinerMode {
			name = "steiner"
		}
		t.Run(name, func(t *testing.T) {
			d := synth.MustGenerate("tiny_hot")
			g := NewGrid(d, 32)
			inc := NewRouter(d, g)
			inc.UseSteiner = steinerMode
			inc.Route()
			rng := rand.New(rand.NewSource(3))
			for round := 0; round < 3; round++ {
				perturbCells(d, rng)
				resInc := inc.Route()

				full := NewRouter(d, g)
				full.UseSteiner = steinerMode
				resFull := full.Route()

				if len(inc.dc.sorted) != len(full.dc.sorted) {
					t.Fatalf("round %d: incremental holds %d segments, full %d",
						round, len(inc.dc.sorted), len(full.dc.sorted))
				}
				for i := range full.dc.sorted {
					if inc.dc.sorted[i] != full.dc.sorted[i] {
						t.Fatalf("round %d: sorted[%d] differs: %+v vs %+v",
							round, i, inc.dc.sorted[i], full.dc.sorted[i])
					}
				}
				requireSameResult(t, resInc, resFull)
			}
		})
	}
}

// TestIncrementalRouteIdenticalAcrossWorkers replays the same perturbation
// sequence at several worker counts and demands bitwise-identical results —
// the incremental path must not weaken the determinism contract.
func TestIncrementalRouteIdenticalAcrossWorkers(t *testing.T) {
	run := func(workers int) []*Result {
		d := synth.MustGenerate("tiny_hot")
		g := NewGrid(d, 32)
		r := NewRouter(d, g)
		r.Workers = workers
		rng := rand.New(rand.NewSource(5))
		var results []*Result
		for round := 0; round < 3; round++ {
			res := r.Route()
			// Route reuses its Result; snapshot what we compare.
			snap := &Result{
				Grid:          res.Grid,
				WirelengthDBU: res.WirelengthDBU,
				Vias:          res.Vias,
				Congestion:    append([]float64(nil), res.Congestion...),
			}
			snap.Dmd = make([][]float64, len(res.Dmd))
			for l := range res.Dmd {
				snap.Dmd[l] = append([]float64(nil), res.Dmd[l]...)
			}
			results = append(results, snap)
			perturbCells(d, rng)
		}
		return results
	}
	ref := run(1)
	for _, w := range []int{2, 7, 0} {
		got := run(w)
		for round := range ref {
			requireSameResult(t, got[round], ref[round])
		}
	}
}

// TestCacheCountersMaskIndependent: the cache-hit and dirty-net counters are
// part of the canonical trace, so they must not depend on whether the caller
// supplied a moved-cells hint — only on what actually changed.
func TestCacheCountersMaskIndependent(t *testing.T) {
	route := func(withHint bool) (hits, dirty int64) {
		d := synth.MustGenerate("tiny_hot")
		g := NewGrid(d, 32)
		r := NewRouter(d, g)
		r.CacheHits = &telemetry.Counter{}
		r.DirtyNets = &telemetry.Counter{}
		r.Route()
		moved := perturbCells(d, rand.New(rand.NewSource(9)))
		if withHint {
			r.SetMovedCells(moved)
		}
		r.Route()
		return r.CacheHits.Value(), r.DirtyNets.Value()
	}
	h1, d1 := route(false)
	h2, d2 := route(true)
	if h1 != h2 || d1 != d2 {
		t.Fatalf("counters depend on the hint: no-hint (hits=%d dirty=%d) vs hint (hits=%d dirty=%d)",
			h1, d1, h2, d2)
	}
	if d1 == 0 {
		t.Fatalf("perturbation produced no dirty nets — test is vacuous")
	}
	if h1 == 0 {
		t.Fatalf("perturbation left no clean nets — test is vacuous")
	}
}

// TestCacheCountersSteadyState: with unchanged positions every active net is
// a cache hit and none are dirty.
func TestCacheCountersSteadyState(t *testing.T) {
	d := synth.MustGenerate("tiny_hot")
	g := NewGrid(d, 32)
	r := NewRouter(d, g)
	r.CacheHits = &telemetry.Counter{}
	r.DirtyNets = &telemetry.Counter{}
	active := 0
	for e := range d.Nets {
		if d.Nets[e].Degree() >= 2 {
			active++
		}
	}
	r.Route()
	if got := r.DirtyNets.Value(); got != int64(active) {
		t.Fatalf("first route: %d dirty nets, want all %d active nets", got, active)
	}
	if got := r.CacheHits.Value(); got != 0 {
		t.Fatalf("first route: %d cache hits, want 0", got)
	}
	r.Route()
	if got := r.CacheHits.Value(); got != int64(active) {
		t.Fatalf("second route: %d cache hits, want %d", got, active)
	}
	if got := r.DirtyNets.Value(); got != int64(active) {
		t.Fatalf("second route: dirty total %d, want unchanged %d", got, active)
	}
}

// TestDecompositionSignatureRoundTrip: restoring the serialized signature on
// a fresh router must reproduce the cached segment list exactly, even when
// the design has since moved (the signature, not the live positions, is the
// cache key — this is what checkpoint resume relies on).
func TestDecompositionSignatureRoundTrip(t *testing.T) {
	d := synth.MustGenerate("tiny_hot")
	g := NewGrid(d, 32)
	r := NewRouter(d, g)
	if sig := r.DecompositionSignature(); sig != nil {
		t.Fatalf("cold router returned a signature of %d pins", len(sig))
	}
	r.Route()
	sig := r.DecompositionSignature()
	if len(sig) != len(d.Pins) {
		t.Fatalf("signature has %d entries, want %d pins", len(sig), len(d.Pins))
	}

	// Move the design away from the snapshot; restore must ignore this.
	r2 := NewRouter(d, g)
	perturbCells(d, rand.New(rand.NewSource(13)))
	if err := r2.RestoreDecomposition(sig); err != nil {
		t.Fatalf("RestoreDecomposition: %v", err)
	}
	if len(r2.dc.sorted) != len(r.dc.sorted) {
		t.Fatalf("restored cache holds %d segments, want %d", len(r2.dc.sorted), len(r.dc.sorted))
	}
	for i := range r.dc.sorted {
		if r2.dc.sorted[i] != r.dc.sorted[i] {
			t.Fatalf("restored sorted[%d] differs: %+v vs %+v", i, r2.dc.sorted[i], r.dc.sorted[i])
		}
	}

	// Malformed signatures are rejected.
	if err := r2.RestoreDecomposition(sig[:1]); err == nil {
		t.Fatalf("short signature accepted")
	}
	bad := append([]int32(nil), sig...)
	bad[0] = int32(g.NX * g.NY)
	if err := r2.RestoreDecomposition(bad); err == nil {
		t.Fatalf("out-of-range G-cell accepted")
	}
}

// TestDirtyNetCountsPinnedTwoCall pins the exact counter arithmetic of the
// canonical two-call scenario: call 1 is a full decomposition (every active
// net dirty, zero hits), then exactly one movable cell crosses a G-cell
// boundary, and call 2 must count each of that cell's nets dirty exactly
// once and every other active net as exactly one hit. A regression that
// double-counts a dirty net — e.g. counting it once in the moved-hint branch
// and again in the signature branch, or adding the counters twice per call —
// shifts these totals and fails the pinned equalities. The scenario runs with
// and without the moved-cells hint; both must land on identical totals.
func TestDirtyNetCountsPinnedTwoCall(t *testing.T) {
	for _, withHint := range []bool{false, true} {
		name := "nohint"
		if withHint {
			name = "hint"
		}
		t.Run(name, func(t *testing.T) {
			d := synth.MustGenerate("tiny_hot")
			g := NewGrid(d, 32)
			r := NewRouter(d, g)
			r.CacheHits = &telemetry.Counter{}
			r.DirtyNets = &telemetry.Counter{}

			active := 0
			for e := range d.Nets {
				if d.Nets[e].Degree() >= 2 {
					active++
				}
			}

			// Call 1: full decomposition.
			r.Route()
			if got := r.DirtyNets.Value(); got != int64(active) {
				t.Fatalf("call 1: dirty = %d, want all %d active nets", got, active)
			}
			if got := r.CacheHits.Value(); got != 0 {
				t.Fatalf("call 1: hits = %d, want 0", got)
			}

			// Move exactly one movable cell a full G-cell pitch in X, so every
			// one of its pins crosses a boundary and exactly its nets go dirty.
			cell := -1
			for i := range d.Cells {
				if d.Cells[i].Movable() {
					cell = i
					break
				}
			}
			if cell < 0 {
				t.Fatal("design has no movable cell")
			}
			if d.Cells[cell].X+g.CellW < d.Die.Hi.X {
				d.Cells[cell].X += g.CellW
			} else {
				d.Cells[cell].X -= g.CellW
			}
			wantDirty := 0
			for e := range d.Nets {
				net := &d.Nets[e]
				if net.Degree() < 2 {
					continue
				}
				for _, pi := range net.Pins {
					if d.Pins[pi].Cell == cell {
						wantDirty++
						break
					}
				}
			}
			if wantDirty == 0 {
				t.Fatalf("cell %d drives no active net — test is vacuous", cell)
			}
			if withHint {
				moved := make([]bool, len(d.Cells))
				moved[cell] = true
				r.SetMovedCells(moved)
			}

			// Call 2: exactly the moved cell's nets are dirty, once each.
			r.Route()
			if got := r.DirtyNets.Value(); got != int64(active+wantDirty) {
				t.Fatalf("call 2: dirty total = %d, want %d (%d from call 1 + %d nets of the moved cell, each once)",
					got, active+wantDirty, active, wantDirty)
			}
			if got := r.CacheHits.Value(); got != int64(active-wantDirty) {
				t.Fatalf("call 2: hit total = %d, want %d clean nets", got, active-wantDirty)
			}

			// Call 3, nothing moved: hits advance by the full active count and
			// the dirty total must not move at all.
			r.Route()
			if got := r.DirtyNets.Value(); got != int64(active+wantDirty) {
				t.Fatalf("call 3: dirty total moved to %d without any position change, want %d",
					got, active+wantDirty)
			}
			if got := r.CacheHits.Value(); got != int64(2*active-wantDirty) {
				t.Fatalf("call 3: hit total = %d, want %d", got, 2*active-wantDirty)
			}
		})
	}
}
