package route

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/parallel"
	"repro/internal/synth"
)

// TestCostFieldMatchesNaiveRunCost: the prefix-sum run costs must agree with
// the naive cellCost-summing reference on randomized demand grids. The two
// round differently (prefix difference vs left-to-right sum), so the bound
// is a tight relative tolerance, not bitwise equality.
func TestCostFieldMatchesNaiveRunCost(t *testing.T) {
	d := synth.MustGenerate("tiny_hot")
	g := NewGrid(d, 32)
	r := NewRouter(d, g)
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 5; trial++ {
		for i := range r.dmdH {
			r.dmdH[i] = rng.Float64() * 30
			r.dmdV[i] = rng.Float64() * 30
			r.dmdVia[i] = rng.Float64() * 5
			r.hist[i] = rng.Float64() * 2
		}
		r.buildCostField()
		for run := 0; run < 2000; run++ {
			x1, y1 := rng.Intn(g.NX), rng.Intn(g.NY)
			var x2, y2 int
			if rng.Intn(2) == 0 {
				x2, y2 = rng.Intn(g.NX), y1 // horizontal
			} else {
				x2, y2 = x1, rng.Intn(g.NY) // vertical
			}
			naive := r.runCost(x1, y1, x2, y2)
			fast := r.cf.runCost(x1, y1, x2, y2)
			if tol := 1e-9 * (1 + math.Abs(naive)); math.Abs(naive-fast) > tol {
				t.Fatalf("trial %d run (%d,%d)-(%d,%d): prefix-sum cost %v, naive %v (diff %v > tol %v)",
					trial, x1, y1, x2, y2, fast, naive, math.Abs(naive-fast), tol)
			}
		}
	}
}

// TestCostFieldIdenticalAcrossWorkers: the build is disjoint-row/column
// parallel, so the tables must be bitwise identical at any worker count.
func TestCostFieldIdenticalAcrossWorkers(t *testing.T) {
	d := synth.MustGenerate("tiny_hot")
	g := NewGrid(d, 32)
	build := func(workers int) *Router {
		r := NewRouter(d, g)
		r.Workers = workers
		rng := rand.New(rand.NewSource(11))
		for i := range r.dmdH {
			r.dmdH[i] = rng.Float64() * 40
			r.dmdV[i] = rng.Float64() * 40
			r.hist[i] = rng.Float64()
		}
		// Force the parallel path regardless of grid size.
		r.cfStats.Add(parallel.For(workers, r.cf.ny, r.cfRows))
		r.cfStats.Add(parallel.For(workers, r.cf.nx, r.cfCols))
		return r
	}
	ref := build(1)
	for _, w := range []int{2, 16, 0} {
		got := build(w)
		for i := range ref.cf.rowPS {
			if math.Float64bits(got.cf.rowPS[i]) != math.Float64bits(ref.cf.rowPS[i]) {
				t.Fatalf("workers=%d: rowPS[%d] differs bitwise from serial", w, i)
			}
		}
		for i := range ref.cf.colPS {
			if math.Float64bits(got.cf.colPS[i]) != math.Float64bits(ref.cf.colPS[i]) {
				t.Fatalf("workers=%d: colPS[%d] differs bitwise from serial", w, i)
			}
		}
	}
}

// TestZeroCapacityCellSafe: a G-cell with zero total capacity (fully blocked
// by a macro) must produce finite costs, finite overflow history, and a
// finite result — the historical code divided by capTot unguarded and
// produced ±Inf/NaN.
func TestZeroCapacityCellSafe(t *testing.T) {
	d := synth.MustGenerate("tiny_hot")
	g := NewGrid(d, 32)
	for l := range g.Cap {
		for y := 10; y < 14; y++ {
			for x := 10; x < 14; x++ {
				g.Cap[l][y*g.NX+x] = 0
			}
		}
	}
	r := NewRouter(d, g)
	free := r.cellCost(0)
	for y := 10; y < 14; y++ {
		for x := 10; x < 14; x++ {
			c := r.cellCost(y*g.NX + x)
			if math.IsInf(c, 0) || math.IsNaN(c) {
				t.Fatalf("cellCost at blocked (%d,%d) is %v", x, y, c)
			}
			if c <= free {
				t.Fatalf("blocked cell costs %v, free cell %v — blocked must be more expensive", c, free)
			}
		}
	}
	r.Rounds = 3 // exercise the overflow-history accumulation too
	res := r.Route()
	for i := range res.Util {
		if math.IsInf(res.Util[i], 0) || math.IsNaN(res.Util[i]) {
			t.Fatalf("Util[%d] = %v", i, res.Util[i])
		}
		if math.IsInf(res.Congestion[i], 0) || math.IsNaN(res.Congestion[i]) {
			t.Fatalf("Congestion[%d] = %v", i, res.Congestion[i])
		}
	}
	for i, h := range r.hist {
		if math.IsInf(h, 0) || math.IsNaN(h) {
			t.Fatalf("hist[%d] = %v", i, h)
		}
	}
	if math.IsInf(res.WirelengthDBU, 0) || math.IsNaN(res.WirelengthDBU) {
		t.Fatalf("WL = %v", res.WirelengthDBU)
	}
}

// TestRouteSteadyStateZeroAlloc: after warm-up, a repeated route call on
// unchanged positions allocates nothing — the decomposition cache, cost
// field, scratch and Result are all reused (Workers=1 keeps the shard layer
// from spawning goroutines, which is the documented serial path).
func TestRouteSteadyStateZeroAlloc(t *testing.T) {
	d := synth.MustGenerate("tiny_hot")
	g := NewGrid(d, 32)
	r := NewRouter(d, g)
	r.Workers = 1
	r.Route()
	r.Route()
	if allocs := testing.AllocsPerRun(5, func() { r.Route() }); allocs != 0 {
		t.Fatalf("steady-state Route allocates %v times per call, want 0", allocs)
	}
}

// BenchmarkRoute measures the hot route call: cold constructs a fresh router
// per call (the evaluation oracle's pattern), steady reuses one router on
// unchanged positions (the routability loop's pattern between placements
// drifting less than a G-cell).
func BenchmarkRoute(b *testing.B) {
	for _, tc := range []struct {
		name, design string
		hint         int
	}{
		{"tiny_hot32", "tiny_hot", 32},
		{"fft1_64", "fft_1", 64},
	} {
		d := synth.MustGenerate(tc.design)
		g := NewGrid(d, tc.hint)
		b.Run(tc.name+"/cold", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				NewRouter(d, g).Route()
			}
		})
		b.Run(tc.name+"/steady", func(b *testing.B) {
			r := NewRouter(d, g)
			r.Workers = 1
			r.Route()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r.Route()
			}
		})
	}
}

// BenchmarkDecompose measures net decomposition: full rebuilds the whole
// cache (first-call cost), warm re-validates it against unchanged positions
// (the per-iteration steady state).
func BenchmarkDecompose(b *testing.B) {
	d := synth.MustGenerate("fft_1")
	g := NewGrid(d, 64)
	b.Run("full", func(b *testing.B) {
		r := NewRouter(d, g)
		r.updateDecomposition()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			r.Invalidate()
			r.updateDecomposition()
		}
	})
	b.Run("warm", func(b *testing.B) {
		r := NewRouter(d, g)
		r.updateDecomposition()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			r.updateDecomposition()
		}
	})
}
