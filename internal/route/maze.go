package route

import (
	"container/heap"
	"math"
)

// MazeRouter augments the pattern router with a Dijkstra maze-routing
// fallback: after the pattern rounds, segments whose routes cross overflowed
// G-cells are ripped up and re-routed over the full grid with a congestion-
// aware cost, allowing arbitrary detours the L/Z patterns cannot express.
// This mirrors the escalation ladder of full-scale global routers such as
// the paper's reference [18] (pattern → maze).
//
// The fallback is exposed as a Router option rather than a default because
// the placer's congestion oracle intentionally routes fast and coarse; the
// evaluation oracle may use the fallback for a tighter DRWL/overflow bound.
type mazeState struct {
	r    *Router
	dist []float64
	prev []int32
}

// priority queue over G-cell indices keyed by tentative distance.
type pq struct {
	idx  []int32
	dist *[]float64
}

func (q pq) Len() int            { return len(q.idx) }
func (q pq) Less(i, j int) bool  { return (*q.dist)[q.idx[i]] < (*q.dist)[q.idx[j]] }
func (q pq) Swap(i, j int)       { q.idx[i], q.idx[j] = q.idx[j], q.idx[i] }
func (q *pq) Push(x interface{}) { q.idx = append(q.idx, x.(int32)) }
func (q *pq) Pop() interface{} {
	old := q.idx
	n := len(old)
	v := old[n-1]
	q.idx = old[:n-1]
	return v
}

// RouteWithMaze runs the standard pattern rounds, then rips up and maze-
// reroutes every segment whose path touches an overflowed G-cell. maxReroutes
// bounds the work (0 means all overflowed segments).
func (r *Router) RouteWithMaze(maxReroutes int) *Result {
	// First pass: normal pattern routing to build demand.
	res := r.Route()
	if res.OverflowCells == 0 {
		return res
	}
	n := r.g.NX * r.g.NY

	// Identify overflowed cells from the router's internal 2-D demand.
	over := make([]bool, n)
	for i := 0; i < n; i++ {
		if r.dmdH[i]+r.dmdV[i]+r.dmdVia[i] > r.capTot[i] {
			over[i] = true
		}
	}

	// Walk the cached decomposition (in net order, as the historical
	// re-decomposition produced) and find segments crossing overflowed
	// cells. The router does not store per-segment paths (they are cheap to
	// re-derive from the cost structure), so rip-up is approximated: remove
	// the segment's best pattern demand, then maze-route it.
	segs := r.netOrderSegments()
	ms := &mazeState{
		r:    r,
		dist: make([]float64, n),
		prev: make([]int32, n),
	}
	rerouted := 0
	var wlDelta float64
	var viaDelta int
	for _, s := range segs {
		if maxReroutes > 0 && rerouted >= maxReroutes {
			break
		}
		if !r.segmentTouches(s, over) {
			continue
		}
		// Rip up: subtract the demand of the segment's current best pattern.
		oldWL, oldVias := r.unrouteBestPattern(s)
		// Maze route with congestion cost.
		path := ms.dijkstra(s)
		if path == nil {
			// Could not route (should not happen on a connected grid);
			// restore the pattern. Priced against live demand — the batch
			// cost field is stale here.
			wl, vias := r.commitSegment(s, r.chooseSegmentRef(s))
			wlDelta += wl - oldWL
			viaDelta += vias - oldVias
			continue
		}
		wl, vias := r.commitPath(path)
		wlDelta += wl - oldWL
		viaDelta += vias - oldVias
		rerouted++
	}

	if rerouted == 0 {
		return res
	}
	// Rebuild the result from the updated demand.
	out := r.assembleResult(res.WirelengthDBU+wlDelta, res.Vias+viaDelta)
	return out
}

// segmentTouches reports whether the segment's cheapest pattern crosses an
// overflowed cell.
func (r *Router) segmentTouches(s segment, over []bool) bool {
	best := r.bestCandidate(s)
	for k := 0; k < best.nRuns; k++ {
		run := best.runs[k]
		if r.runTouches(run[0], run[1], run[2], run[3], over) {
			return true
		}
	}
	return false
}

func (r *Router) runTouches(x1, y1, x2, y2 int, over []bool) bool {
	if y1 == y2 {
		if x2 < x1 {
			x1, x2 = x2, x1
		}
		for x := x1; x <= x2; x++ {
			if over[y1*r.g.NX+x] {
				return true
			}
		}
	} else {
		if y2 < y1 {
			y1, y2 = y2, y1
		}
		for y := y1; y <= y2; y++ {
			if over[y*r.g.NX+x1] {
				return true
			}
		}
	}
	return false
}

// bestCandidate returns the cheapest pattern for s under current demand.
func (r *Router) bestCandidate(s segment) candidate {
	var buf [2 + 2*8]candidate
	cands := r.enumerate(s, buf[:0])
	bestIdx, bestCost := 0, math.Inf(1)
	for i := range cands {
		c := &cands[i]
		cost := 0.0
		for k := 0; k < c.nRuns; k++ {
			run := c.runs[k]
			cost += r.runCost(run[0], run[1], run[2], run[3])
		}
		for k := 0; k < c.nBend; k++ {
			cost -= r.cellCost(c.bends[k])
			cost += 2 * r.ViaDemand
		}
		if cost < bestCost {
			bestCost = cost
			bestIdx = i
		}
	}
	return cands[bestIdx]
}

// unrouteBestPattern removes the demand of the segment's cheapest pattern
// (the one routeSegment would have committed) and returns its WL and vias.
func (r *Router) unrouteBestPattern(s segment) (float64, int) {
	best := r.bestCandidate(s)
	var wl float64
	for k := 0; k < best.nRuns; k++ {
		run := best.runs[k]
		r.removeRun(run[0], run[1], run[2], run[3])
		wl += float64(abs(run[2]-run[0]))*r.g.CellW + float64(abs(run[3]-run[1]))*r.g.CellH
	}
	for k := 0; k < best.nBend; k++ {
		r.dmdVia[best.bends[k]] -= r.ViaDemand
		if r.dmdVia[best.bends[k]] < 0 {
			r.dmdVia[best.bends[k]] = 0
		}
	}
	return wl, best.nBend
}

func (r *Router) removeRun(x1, y1, x2, y2 int) {
	if y1 == y2 {
		if x2 < x1 {
			x1, x2 = x2, x1
		}
		for x := x1; x <= x2; x++ {
			if i := y1*r.g.NX + x; r.dmdH[i] > 0 {
				r.dmdH[i]--
			}
		}
	} else {
		if y2 < y1 {
			y1, y2 = y2, y1
		}
		for y := y1; y <= y2; y++ {
			if i := y*r.g.NX + x1; r.dmdV[i] > 0 {
				r.dmdV[i]--
			}
		}
	}
}

// dijkstra finds the min-cost 4-connected path between the segment's
// endpoints; returns the cell-index path including both endpoints, or nil.
func (m *mazeState) dijkstra(s segment) []int32 {
	r := m.r
	nx := r.g.NX
	n := nx * r.g.NY
	src := int32(s.y1*nx + s.x1)
	dst := int32(s.y2*nx + s.x2)
	for i := 0; i < n; i++ {
		m.dist[i] = math.Inf(1)
		m.prev[i] = -1
	}
	m.dist[src] = 0
	q := &pq{dist: &m.dist}
	heap.Push(q, src)
	for q.Len() > 0 {
		u := heap.Pop(q).(int32)
		if u == dst {
			break
		}
		ux, uy := int(u)%nx, int(u)/nx
		for _, d := range [4][2]int{{1, 0}, {-1, 0}, {0, 1}, {0, -1}} {
			vx, vy := ux+d[0], uy+d[1]
			if vx < 0 || vx >= nx || vy < 0 || vy >= r.g.NY {
				continue
			}
			v := int32(vy*nx + vx)
			// Bend penalty: turning charges a via.
			step := r.cellCost(int(v))
			if pu := m.prev[u]; pu >= 0 {
				px := int(pu) % nx
				if (px == ux) != (vx == ux) { // direction change
					step += 2 * r.ViaDemand
				}
			}
			if nd := m.dist[u] + step; nd < m.dist[v] {
				m.dist[v] = nd
				m.prev[v] = u
				heap.Push(q, v) // lazy decrease-key: duplicates are fine
			}
		}
	}
	if math.IsInf(m.dist[dst], 1) {
		return nil
	}
	var path []int32
	for at := dst; at >= 0; at = m.prev[at] {
		path = append(path, at)
		if at == src {
			break
		}
	}
	// Reverse.
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path
}

// commitPath adds demand along a maze path and returns its WL and via count.
func (r *Router) commitPath(path []int32) (float64, int) {
	nx := r.g.NX
	var wl float64
	vias := 0
	for i := 1; i < len(path); i++ {
		u, v := int(path[i-1]), int(path[i])
		horizontal := u/nx == v/nx
		if horizontal {
			r.dmdH[v]++
			wl += r.g.CellW
		} else {
			r.dmdV[v]++
			wl += r.g.CellH
		}
		if i >= 2 {
			w := int(path[i-2])
			prevHorizontal := w/nx == u/nx
			if prevHorizontal != horizontal {
				r.dmdVia[u] += r.ViaDemand
				vias++
			}
		}
	}
	return wl, vias
}

// assembleResult converts the router's current 2-D demand into a full Result
// (shared by Route and RouteWithMaze). The Result and its slices are
// router-owned and refilled in place on every call — see Route's ownership
// contract.
func (r *Router) assembleResult(wl float64, vias int) *Result {
	n := r.g.NX * r.g.NY
	res := r.res
	if res == nil {
		res = &Result{Grid: r.g}
		res.Dmd = make([][]float64, r.g.Layers)
		for l := range res.Dmd {
			res.Dmd[l] = make([]float64, n)
		}
		r.res = res
	}
	res.WirelengthDBU = wl
	res.Vias = vias
	for l := range res.Dmd {
		dl := res.Dmd[l]
		for i := range dl {
			dl[i] = 0
		}
	}
	hl, vl := r.hl, r.vl
	for i := 0; i < n; i++ {
		var hCap, vCap float64
		for _, l := range hl {
			hCap += r.g.Cap[l][i]
		}
		for _, l := range vl {
			vCap += r.g.Cap[l][i]
		}
		for _, l := range hl {
			share := 1.0 / float64(len(hl))
			if hCap > 0 {
				share = r.g.Cap[l][i] / hCap
			}
			res.Dmd[l][i] += r.dmdH[i] * share
		}
		for _, l := range vl {
			share := 1.0 / float64(len(vl))
			if vCap > 0 {
				share = r.g.Cap[l][i] / vCap
			}
			res.Dmd[l][i] += r.dmdV[i] * share
		}
		tot := r.capTot[i]
		for l := 0; l < r.g.Layers; l++ {
			share := 1.0 / float64(r.g.Layers)
			if tot > 0 {
				share = r.g.Cap[l][i] / tot
			}
			res.Dmd[l][i] += r.dmdVia[i] * share
		}
	}
	res.finalize()
	return res
}
