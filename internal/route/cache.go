package route

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/netlist"
	"repro/internal/steiner"
)

// Incremental net decomposition.
//
// Decomposing a net into two-pin segments depends on the placement only
// through the G-cell each pin lands in (decompose reads nothing but
// g.CellAt(PinPos)). The router therefore caches, per net, the segment list
// from the last decomposition, keyed by the net's pin G-cell signature; a
// route call re-decomposes only the nets whose signature changed since the
// previous call — across the routability loop's iterations cells move a
// fraction of a G-cell per iteration, so most nets are clean.
//
// Ordering contract: the historical full decomposition emitted segments in
// (net, emission) order and then stable-sorted by lenEst, which is exactly a
// sort by the key (lenEst, net, emit) — the key is unique per segment. The
// incremental path preserves that order with a filter + sorted merge:
// surviving segments of clean nets are a subsequence of the previous sorted
// list (order preserved), fresh segments of dirty nets are sorted by the
// same key, and a single merge pass restores the total order. The result is
// byte-identical to a full decomposition followed by the stable sort
// (proven by TestIncrementalMatchesFullDecomposition).

// sseg is a segment in the router's sorted working list together with its
// canonical sort key components (lenEst lives in the embedded segment).
type sseg struct {
	segment
	net  int32 // owning net index
	emit int32 // emission position within the net's segment list
}

// ssegLess orders by the canonical key (lenEst, net, emit).
func ssegLess(a, b *sseg) bool {
	if a.lenEst != b.lenEst {
		return a.lenEst < b.lenEst
	}
	if a.net != b.net {
		return a.net < b.net
	}
	return a.emit < b.emit
}

// decompCache holds the per-net segment cache plus every scratch buffer the
// decomposition needs, so the steady state (no dirty nets) allocates
// nothing.
type decompCache struct {
	valid bool
	// pinCell[pi] is the G-cell index of pin pi at the last decomposition —
	// the cache key. It is the only state needed to reconstruct the whole
	// cache (checkpoints serialize it; see RestoreDecomposition).
	pinCell []int32

	netSegs [][]segment // per-net cached two-pin segments (reused capacity)

	sorted []sseg // all segments ordered by (lenEst, net, emit)
	merge  []sseg // double buffer for the filter+merge pass
	fresh  []sseg // this call's re-decomposed segments, sorted by key

	dirty     []bool  // per-net flag for the merge pass's filter
	dirtyList []int32 // nets flagged dirty, to clear the flags afterwards

	// Point-collection scratch: epoch-stamped visited marks per G-cell give
	// O(1) duplicate detection while preserving first-seen order (the order
	// the historical map-based dedup produced).
	seenEpoch  []int64
	epoch      int64
	ptsX, ptsY []int32

	// Prim MST scratch, sized to the largest net degree seen.
	inTree       []bool
	dist, parent []int

	spts []steiner.Point // steiner decomposition scratch

	netOrder []segment // maze fallback: segments concatenated in net order
}

func (dc *decompCache) ensureInit(numPins, numNets, numGCells int) {
	if dc.pinCell != nil {
		return
	}
	dc.pinCell = make([]int32, numPins)
	dc.netSegs = make([][]segment, numNets)
	dc.dirty = make([]bool, numNets)
	dc.seenEpoch = make([]int64, numGCells)
}

// updateDecomposition brings the cache in sync with the current pin
// positions: detects dirty nets, re-decomposes exactly those, and restores
// the sorted working list. On the first call (or after Invalidate) every
// net is dirty and the path degenerates to a full decomposition + sort.
func (r *Router) updateDecomposition() {
	dc := &r.dc
	dc.ensureInit(len(r.d.Pins), len(r.d.Nets), r.g.NX*r.g.NY)
	full := !dc.valid
	moved := r.moved
	r.moved = nil // the hint describes exactly one position delta
	clean, dirtyN := 0, 0
	dc.fresh = dc.fresh[:0]
	dc.dirtyList = dc.dirtyList[:0]
	for e := range r.d.Nets {
		net := &r.d.Nets[e]
		if net.Degree() < 2 {
			continue
		}
		if !full && moved != nil && !netMoved(r.d, net, moved) {
			// Position-delta fast path: no pin of the net belongs to a cell
			// that moved, so the signature cannot have changed. The counter
			// result is identical to checking the signature (which would
			// find it clean), keeping the counters mask-independent.
			clean++
			continue
		}
		changed := r.refreshSignature(net)
		if !full && !changed {
			clean++
			continue
		}
		dirtyN++
		dc.dirty[e] = true
		dc.dirtyList = append(dc.dirtyList, int32(e))
		dc.netSegs[e] = r.decomposeNet(e, dc.netSegs[e][:0])
		for k := range dc.netSegs[e] {
			dc.fresh = append(dc.fresh, sseg{dc.netSegs[e][k], int32(e), int32(k)})
		}
	}
	// Counter invariant: exactly one Add per counter per route call, and every
	// active net lands in exactly one of the two buckets — the moved-hint
	// branch and the signature branch above are mutually exclusive, so a net
	// can never be counted dirty twice (or dirty AND clean) within a call.
	// Both counters feed the canonical trace; the arithmetic is pinned by
	// TestDirtyNetCountsPinnedTwoCall.
	r.CacheHits.Add(int64(clean))
	r.DirtyNets.Add(int64(dirtyN))
	dc.valid = true
	if dirtyN == 0 {
		return
	}
	sort.Slice(dc.fresh, func(i, j int) bool { return ssegLess(&dc.fresh[i], &dc.fresh[j]) })
	if full {
		dc.sorted = append(dc.sorted[:0], dc.fresh...)
	} else {
		// Filter the previous sorted list down to clean nets (an
		// order-preserving subsequence) while merging the fresh sorted runs
		// in by the canonical key.
		dst := dc.merge[:0]
		fi := 0
		for i := range dc.sorted {
			s := &dc.sorted[i]
			if dc.dirty[s.net] {
				continue
			}
			for fi < len(dc.fresh) && ssegLess(&dc.fresh[fi], s) {
				dst = append(dst, dc.fresh[fi])
				fi++
			}
			dst = append(dst, *s)
		}
		dst = append(dst, dc.fresh[fi:]...)
		dc.sorted, dc.merge = dst, dc.sorted
	}
	for _, e := range dc.dirtyList {
		dc.dirty[e] = false
	}
}

// netMoved reports whether any pin of the net sits on a cell flagged by the
// caller's position-delta hint.
func netMoved(d *netlist.Design, net *netlist.Net, moved []bool) bool {
	for _, pi := range net.Pins {
		if moved[d.Pins[pi].Cell] {
			return true
		}
	}
	return false
}

// refreshSignature recomputes the net's pin G-cells into the signature and
// reports whether any of them changed.
func (r *Router) refreshSignature(net *netlist.Net) bool {
	changed := false
	for _, pi := range net.Pins {
		p := r.d.PinPos(pi)
		cx, cy := r.g.CellAt(p.X, p.Y)
		q := int32(cy*r.g.NX + cx)
		if r.dc.pinCell[pi] != q {
			r.dc.pinCell[pi] = q
			changed = true
		}
	}
	return changed
}

// decomposeNet converts net e into two-pin segments, appending to out and
// returning it. The pin G-cells are read from the signature (dc.pinCell),
// which the caller has already refreshed — this is what lets a checkpoint
// restore rebuild the cache from the serialized signature alone. The
// emission order is byte-identical to the historical full decomposition:
// first-seen point dedup over the net's pin order, then the identical Prim
// MST (or 1-Steiner) edge emission.
func (r *Router) decomposeNet(e int, out []segment) []segment {
	dc := &r.dc
	net := &r.d.Nets[e]
	nx := int32(r.g.NX)
	dc.epoch++
	dc.ptsX = dc.ptsX[:0]
	dc.ptsY = dc.ptsY[:0]
	for _, pi := range net.Pins {
		q := dc.pinCell[pi]
		if dc.seenEpoch[q] == dc.epoch {
			continue
		}
		dc.seenEpoch[q] = dc.epoch
		dc.ptsX = append(dc.ptsX, q%nx)
		dc.ptsY = append(dc.ptsY, q/nx)
	}
	k := len(dc.ptsX)
	if k < 2 {
		return out
	}
	if k == 2 {
		return append(out, newSegment(int(dc.ptsX[0]), int(dc.ptsY[0]), int(dc.ptsX[1]), int(dc.ptsY[1])))
	}
	if r.UseSteiner {
		if cap(dc.spts) < k {
			dc.spts = make([]steiner.Point, k)
		}
		spts := dc.spts[:k]
		for i := 0; i < k; i++ {
			spts[i] = steiner.Point{X: int(dc.ptsX[i]), Y: int(dc.ptsY[i])}
		}
		nodes, edges, _ := steiner.Tree(spts)
		for _, ed := range edges {
			a, b := nodes[ed.A], nodes[ed.B]
			out = append(out, newSegment(a.X, a.Y, b.X, b.Y))
		}
		return out
	}
	// Prim MST on Manhattan distance, identical tie-breaking to the
	// historical slice-allocating version (strict < keeps the earliest
	// index on equal distances).
	if cap(dc.inTree) < k {
		dc.inTree = make([]bool, k)
		dc.dist = make([]int, k)
		dc.parent = make([]int, k)
	}
	inTree, dist, parent := dc.inTree[:k], dc.dist[:k], dc.parent[:k]
	for i := 0; i < k; i++ {
		inTree[i] = false
		dist[i] = math.MaxInt32
		parent[i] = -1
	}
	dist[0] = 0
	for iter := 0; iter < k; iter++ {
		best, bd := -1, math.MaxInt32
		for i := 0; i < k; i++ {
			if !inTree[i] && dist[i] < bd {
				best, bd = i, dist[i]
			}
		}
		inTree[best] = true
		if p := parent[best]; p >= 0 {
			out = append(out, newSegment(int(dc.ptsX[p]), int(dc.ptsY[p]), int(dc.ptsX[best]), int(dc.ptsY[best])))
		}
		for i := 0; i < k; i++ {
			if inTree[i] {
				continue
			}
			d := int(abs32(dc.ptsX[i]-dc.ptsX[best])) + int(abs32(dc.ptsY[i]-dc.ptsY[best]))
			if d < dist[i] {
				dist[i] = d
				parent[i] = best
			}
		}
	}
	return out
}

func abs32(a int32) int32 {
	if a < 0 {
		return -a
	}
	return a
}

// netOrderSegments returns the cached segments concatenated in net order —
// the order the historical one-shot decomposition produced — for the maze
// fallback's rip-up scan. The cache must be current (RouteWithMaze calls it
// right after Route). The returned slice is router-owned scratch.
func (r *Router) netOrderSegments() []segment {
	dc := &r.dc
	dc.netOrder = dc.netOrder[:0]
	for e := range dc.netSegs {
		dc.netOrder = append(dc.netOrder, dc.netSegs[e]...)
	}
	return dc.netOrder
}

// Invalidate discards the decomposition cache: the next route call performs
// a full decomposition (counting every active net as dirty), exactly as a
// freshly constructed Router would. Reset deliberately does NOT invalidate —
// the cache is a pure function of pin positions, not of demand state.
func (r *Router) Invalidate() { r.dc.valid = false }

// DecompositionSignature returns a copy of the per-pin G-cell signature the
// cache is keyed on, or nil when the cache is cold. Checkpoints store it so
// a resumed run rebuilds an identical cache and the cache-hit/dirty-net
// counters continue exactly as in an uninterrupted run.
func (r *Router) DecompositionSignature() []int32 {
	if !r.dc.valid {
		return nil
	}
	return append([]int32(nil), r.dc.pinCell...)
}

// RestoreDecomposition rebuilds the decomposition cache from a serialized
// signature: every net is decomposed from the stored pin G-cells (not the
// current positions) and the sorted working list is rebuilt, leaving the
// router in the exact state it was in when DecompositionSignature was
// called. The telemetry counters are not touched.
func (r *Router) RestoreDecomposition(sig []int32) error {
	if len(sig) != len(r.d.Pins) {
		return fmt.Errorf("route: signature has %d pins, design has %d", len(sig), len(r.d.Pins))
	}
	n := int32(r.g.NX * r.g.NY)
	for _, q := range sig {
		if q < 0 || q >= n {
			return fmt.Errorf("route: signature G-cell %d outside %dx%d grid", q, r.g.NX, r.g.NY)
		}
	}
	dc := &r.dc
	dc.ensureInit(len(r.d.Pins), len(r.d.Nets), r.g.NX*r.g.NY)
	copy(dc.pinCell, sig)
	dc.fresh = dc.fresh[:0]
	for e := range r.d.Nets {
		if r.d.Nets[e].Degree() < 2 {
			continue
		}
		dc.netSegs[e] = r.decomposeNet(e, dc.netSegs[e][:0])
		for k := range dc.netSegs[e] {
			dc.fresh = append(dc.fresh, sseg{dc.netSegs[e][k], int32(e), int32(k)})
		}
	}
	sort.Slice(dc.fresh, func(i, j int) bool { return ssegLess(&dc.fresh[i], &dc.fresh[j]) })
	dc.sorted = append(dc.sorted[:0], dc.fresh...)
	dc.valid = true
	return nil
}
