package route

import (
	"math"
	"testing"

	"repro/internal/geom"
	"repro/internal/netlist"
	"repro/internal/synth"
)

// featureTestDesign builds a hand-computable design on a 4×4 grid of
// 10×10-DBU G-cells: one 2-pin net spanning six G-cells, one near-degenerate
// 2-pin net confined to the corner G-cell, and one single-pin net (inactive,
// must contribute no RUDY but its pin still counts). Every pin sits on its
// own zero-offset cell, so pin positions are the cell centers verbatim.
func featureTestDesign() *netlist.Design {
	pts := []geom.Point{
		{X: 5, Y: 5},   // net 0, cell (0,0)
		{X: 25, Y: 15}, // net 0, cell (2,1)
		{X: 35, Y: 35}, // net 1, cell (3,3)
		{X: 35, Y: 38}, // net 1, cell (3,3)
		{X: 12, Y: 12}, // net 2 (degree 1), cell (1,1)
	}
	d := &netlist.Design{
		Name: "feature_golden",
		Die:  geom.Rect{Lo: geom.Point{X: 0, Y: 0}, Hi: geom.Point{X: 40, Y: 40}},
	}
	for i, p := range pts {
		d.Cells = append(d.Cells, netlist.Cell{X: p.X, Y: p.Y, W: 1, H: 1, Pins: []int{i}, NumPins: 1})
	}
	nets := [][]int{{0, 1}, {2, 3}, {4}}
	for e, pins := range nets {
		d.Nets = append(d.Nets, netlist.Net{Pins: pins})
		for _, p := range pins {
			for len(d.Pins) <= p {
				d.Pins = append(d.Pins, netlist.Pin{})
			}
			d.Pins[p] = netlist.Pin{Cell: p, Net: e}
		}
	}
	return d
}

// featureTestGrid is a literal 4×4 single-capacity grid matching the design
// above. G-cell 5 (column 1, row 1) has reduced layer-0 capacity so CapRatio
// is non-trivial.
func featureTestGrid() *Grid {
	g := &Grid{
		NX:       4,
		NY:       4,
		Layers:   2,
		CellW:    10,
		CellH:    10,
		Die:      geom.Rect{Lo: geom.Point{X: 0, Y: 0}, Hi: geom.Point{X: 40, Y: 40}},
		LayerDir: []Dir{Horizontal, Vertical},
	}
	g.Cap = make([][]float64, 2)
	for l := range g.Cap {
		g.Cap[l] = make([]float64, 16)
		for i := range g.Cap[l] {
			g.Cap[l][i] = 5
		}
	}
	g.Cap[0][5] = 2.5 // CapTotal(5)=7.5 vs 10 elsewhere
	return g
}

// TestRUDYGolden pins the serial RUDY estimator on the 4×4 scenario against
// hand-computed values.
//
// Net 0: bbox (5,5)-(25,15), W=20 H=10 → demand (20+10)/(20·10)·(10·10)=15
// over cells cx∈{0,1,2}, cy∈{0,1}. Net 1: bbox W=0 H=3, clamped to one
// G-cell extent → demand (0+3)/(10·10)·(10·10)=3 on cell (3,3). Net 2 has
// degree 1 and contributes nothing.
func TestRUDYGolden(t *testing.T) {
	d := featureTestDesign()
	g := featureTestGrid()
	got := RUDY(d, g)
	want := make([]float64, 16)
	for cy := 0; cy <= 1; cy++ {
		for cx := 0; cx <= 2; cx++ {
			want[cy*4+cx] = 15
		}
	}
	want[3*4+3] = 3
	for i := range want {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("RUDY[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

// TestFeatureMapsGolden pins every FeatureMaps plane on the same scenario.
func TestFeatureMapsGolden(t *testing.T) {
	d := featureTestDesign()
	g := featureTestGrid()
	f := NewFeatureMaps(g)
	f.Update(d, g, 1)

	// RUDY plane must match the serial estimator here: each G-cell receives
	// demand from at most one net, so the summation trees coincide.
	serial := RUDY(d, g)
	for i := range serial {
		if math.Float64bits(f.RUDY[i]) != math.Float64bits(serial[i]) {
			t.Fatalf("FeatureMaps.RUDY[%d] = %v, want %v", i, f.RUDY[i], serial[i])
		}
	}

	// Pin counts: (0,0)=1, (2,1)=1, (3,3)=2, (1,1)=1 — the degree-1 net's
	// pin still lands on the map.
	wantPins := make([]float64, 16)
	wantPins[0*4+0] = 1
	wantPins[1*4+2] = 1
	wantPins[3*4+3] = 2
	wantPins[1*4+1] = 1
	for i := range wantPins {
		if f.PinCount[i] != wantPins[i] {
			t.Fatalf("PinCount[%d] = %v, want %v", i, f.PinCount[i], wantPins[i])
		}
	}

	// CapRatio: cell 5 is 7.5/10, everything else 1.
	for i := range f.CapRatio {
		want := 1.0
		if i == 5 {
			want = 0.75
		}
		if f.CapRatio[i] != want {
			t.Fatalf("CapRatio[%d] = %v, want %v", i, f.CapRatio[i], want)
		}
	}

	// Blur spot checks, hand-computed means over in-bounds neighbors:
	// RUDYBlur(1,1): 3×3 block rows 0–2 × cols 0–2 = six 15s and three 0s → 10.
	// RUDYBlur(3,3): corner, cells (2,2),(3,2),(2,3),(3,3) = {0,0,0,3} → 0.75.
	// PinBlur(0,0): corner, cells (0,0),(1,0),(0,1),(1,1) = {1,0,0,1} → 0.5.
	if got := f.RUDYBlur[1*4+1]; got != 10 {
		t.Fatalf("RUDYBlur(1,1) = %v, want 10", got)
	}
	if got := f.RUDYBlur[3*4+3]; got != 0.75 {
		t.Fatalf("RUDYBlur(3,3) = %v, want 0.75", got)
	}
	if got := f.PinBlur[0*4+0]; got != 0.5 {
		t.Fatalf("PinBlur(0,0) = %v, want 0.5", got)
	}
}

// TestFeatureMapsWorkerIdentity demands bitwise-identical planes at every
// worker count on a non-trivial synthetic design — the predictor's inputs
// are part of the determinism contract.
func TestFeatureMapsWorkerIdentity(t *testing.T) {
	d := synth.MustGenerate("tiny_hot")
	g := NewGrid(d, 32)
	run := func(workers int) *FeatureMaps {
		f := NewFeatureMaps(g)
		f.Update(d, g, workers)
		return f
	}
	ref := run(1)
	for _, w := range []int{2, 4, 7, 16, 0} {
		got := run(w)
		planes := []struct {
			name     string
			got, ref []float64
		}{
			{"RUDY", got.RUDY, ref.RUDY},
			{"RUDYBlur", got.RUDYBlur, ref.RUDYBlur},
			{"PinCount", got.PinCount, ref.PinCount},
			{"PinBlur", got.PinBlur, ref.PinBlur},
			{"CapRatio", got.CapRatio, ref.CapRatio},
		}
		for _, p := range planes {
			for i := range p.ref {
				if math.Float64bits(p.got[i]) != math.Float64bits(p.ref[i]) {
					t.Fatalf("workers=%d: %s[%d] differs bitwise: %v vs %v",
						w, p.name, i, p.got[i], p.ref[i])
				}
			}
		}
	}
}
