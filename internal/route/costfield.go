package route

import "repro/internal/parallel"

// costField is a prefix-sum snapshot of cellCost over the whole grid, built
// once per choice batch against the frozen demand state. With it, pricing an
// inclusive horizontal or vertical run is two array lookups instead of an
// O(length) loop — the dominant term of chooseSegment (candidates ×
// run-length cellCost evaluations) collapses to O(candidates).
//
// Determinism: each row (and each column) prefix is accumulated serially
// left-to-right inside one shard range, and rows/columns are disjoint
// writes, so the tables are bitwise identical at any worker count. The
// prefix-difference run cost rounds differently from the naive left-to-right
// sum (both are deterministic; they agree to ~n·ε relative error), which is
// why BENCH_baseline.json was regenerated when the field was introduced.
type costField struct {
	nx, ny int
	// cost[i] is the cellCost snapshot itself; bend cells are priced from it
	// directly so that runs and bends see the identical frozen values.
	cost []float64
	// rowPS[y*(nx+1)+x] = Σ_{k<x} cost[y*nx+k]; one extra slot per row makes
	// the inclusive-run difference branch-free.
	rowPS []float64
	// colPS[x*(ny+1)+y] = Σ_{k<y} cost[k*nx+x].
	colPS []float64
}

func (f *costField) init(nx, ny int) {
	f.nx, f.ny = nx, ny
	f.cost = make([]float64, nx*ny)
	f.rowPS = make([]float64, ny*(nx+1))
	f.colPS = make([]float64, nx*(ny+1))
}

// runCost returns the summed snapshot cost of an inclusive horizontal or
// vertical run in O(1). It matches the naive runCost reference over the same
// frozen demand up to prefix-sum rounding (cross-checked in tests).
func (f *costField) runCost(x1, y1, x2, y2 int) float64 {
	if y1 == y2 {
		if x2 < x1 {
			x1, x2 = x2, x1
		}
		base := y1 * (f.nx + 1)
		return f.rowPS[base+x2+1] - f.rowPS[base+x1]
	}
	if y2 < y1 {
		y1, y2 = y2, y1
	}
	base := x1 * (f.ny + 1)
	return f.colPS[base+y2+1] - f.colPS[base+y1]
}

// costFieldParallelMin is the G-cell count below which the field is built
// serially: spawning the shard goroutines costs more than summing a small
// grid. The threshold depends only on the grid, never on the worker count,
// so it cannot perturb determinism (the build is worker-independent anyway).
const costFieldParallelMin = 1 << 14

// buildCostField rebuilds the prefix-sum tables from the current demand and
// history state. Called at the top of every choice batch, i.e. whenever the
// frozen demand snapshot changes.
func (r *Router) buildCostField() {
	workers := r.Workers
	if r.cf.nx*r.cf.ny < costFieldParallelMin {
		workers = 1
	}
	r.cfStats.Add(parallel.For(workers, r.cf.ny, r.cfRows))
	r.cfStats.Add(parallel.For(workers, r.cf.nx, r.cfCols))
}
