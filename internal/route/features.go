package route

import (
	"repro/internal/netlist"
	"repro/internal/parallel"
)

// FeatureMaps holds the per-G-cell feature planes the congestion predictor
// (internal/predict) regresses over: a RUDY wire-demand estimate, a pin-count
// map, 3×3 box-blurred copies of both (local neighborhood context — a hot
// G-cell's demand spills into its neighbors when the router detours), and a
// static capacity-ratio plane encoding macro proximity (macros eat routing
// capacity on the layers above them, so CapRatio < 1 marks macro shadows).
//
// Update recomputes the position-dependent planes with the same fixed-shard
// decomposition as the routing kernels: shard-private accumulators merged in
// ascending shard order, so every plane is bitwise-identical for any worker
// count. Note the parallel RUDY plane is NOT required to be bitwise-equal to
// the serial RUDY() baseline above (the summation tree differs); it is
// deterministic in its own right, which is what the predictor needs.
type FeatureMaps struct {
	NX, NY int

	RUDY     []float64 // RUDY wire density, shard-merged
	RUDYBlur []float64 // 3×3 box blur of RUDY
	PinCount []float64 // pins per G-cell
	PinBlur  []float64 // 3×3 box blur of PinCount

	// CapRatio[i] = CapTotal(i)/max CapTotal — static macro-proximity
	// plane, computed once at construction.
	CapRatio []float64

	rudyShards [][]float64 // shard-private RUDY accumulators
	pinShards  [][]float64 // shard-private pin-count accumulators
}

// NewFeatureMaps allocates feature planes for grid g and precomputes the
// static capacity-ratio plane.
func NewFeatureMaps(g *Grid) *FeatureMaps {
	n := g.NX * g.NY
	f := &FeatureMaps{
		NX:         g.NX,
		NY:         g.NY,
		RUDY:       make([]float64, n),
		RUDYBlur:   make([]float64, n),
		PinCount:   make([]float64, n),
		PinBlur:    make([]float64, n),
		CapRatio:   make([]float64, n),
		rudyShards: parallel.NewShards(n),
		pinShards:  parallel.NewShards(n),
	}
	maxCap := 0.0
	for i := 0; i < n; i++ {
		if c := g.CapTotal(i); c > maxCap {
			maxCap = c
		}
	}
	for i := 0; i < n; i++ {
		if maxCap > 0 {
			f.CapRatio[i] = g.CapTotal(i) / maxCap
		}
	}
	return f
}

// Update recomputes the position-dependent planes (RUDY, PinCount and their
// blurs) at the design's current positions using at most `workers` workers.
// Results are bitwise-identical across worker counts.
func (f *FeatureMaps) Update(d *netlist.Design, g *Grid, workers int) {
	// RUDY: each net scatter-adds uniform demand over its bbox G-cells into
	// a shard-private plane; shards merge in ascending order.
	parallel.ZeroFloats(f.rudyShards)
	parallel.For(workers, len(d.Nets), func(shard, start, end int) {
		acc := f.rudyShards[shard]
		for e := start; e < end; e++ {
			if d.Nets[e].Degree() < 2 {
				continue
			}
			bb := d.NetBBox(e)
			w := maxFloat(bb.W(), g.CellW)
			h := maxFloat(bb.H(), g.CellH)
			demand := (bb.W() + bb.H()) / (w * h) * g.CellW * g.CellH
			x0, y0 := g.CellAt(bb.Lo.X, bb.Lo.Y)
			x1, y1 := g.CellAt(bb.Lo.X+w-1e-9, bb.Lo.Y+h-1e-9)
			for cy := y0; cy <= y1; cy++ {
				row := acc[cy*g.NX:]
				for cx := x0; cx <= x1; cx++ {
					row[cx] += demand
				}
			}
		}
	})
	for i := range f.RUDY {
		f.RUDY[i] = 0
	}
	parallel.MergeFloats(f.RUDY, f.rudyShards)

	// Pin counts: integer-exact scatter-add, same shard pattern.
	parallel.ZeroFloats(f.pinShards)
	parallel.For(workers, len(d.Pins), func(shard, start, end int) {
		acc := f.pinShards[shard]
		for p := start; p < end; p++ {
			pos := d.PinPos(p)
			cx, cy := g.CellAt(pos.X, pos.Y)
			acc[cy*g.NX+cx]++
		}
	})
	for i := range f.PinCount {
		f.PinCount[i] = 0
	}
	parallel.MergeFloats(f.PinCount, f.pinShards)

	boxBlur3(f.RUDYBlur, f.RUDY, g.NX, g.NY, workers)
	boxBlur3(f.PinBlur, f.PinCount, g.NX, g.NY, workers)
}

// boxBlur3 writes the 3×3 box blur of src into dst: each output cell is the
// mean of the up-to-9 in-bounds neighbors, accumulated in fixed dy-then-dx
// order. Writes are disjoint per output row, so the row-parallel loop is
// bitwise-identical to serial execution by construction.
func boxBlur3(dst, src []float64, nx, ny, workers int) {
	parallel.For(workers, ny, func(_, start, end int) {
		for cy := start; cy < end; cy++ {
			for cx := 0; cx < nx; cx++ {
				var sum float64
				var cnt int
				for dy := -1; dy <= 1; dy++ {
					y := cy + dy
					if y < 0 || y >= ny {
						continue
					}
					for dx := -1; dx <= 1; dx++ {
						x := cx + dx
						if x < 0 || x >= nx {
							continue
						}
						sum += src[y*nx+x]
						cnt++
					}
				}
				dst[cy*nx+cx] = sum / float64(cnt)
			}
		}
	})
}
