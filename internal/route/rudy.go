package route

import "repro/internal/netlist"

// RUDY computes the Rectangular Uniform wire DensitY congestion estimate
// (Spindler & Johannes, DATE 2007) on the grid: each net spreads a demand of
// HPWL/(bbox area) uniformly over its bounding box. The paper's Sec. I
// criticizes RUDY for "treating all regions within the BB equally" — the
// estimator is provided as the cheap baseline the differentiable congestion
// term improves upon, and as a cross-check for the pattern router in tests.
func RUDY(d *netlist.Design, g *Grid) []float64 {
	out := make([]float64, g.NX*g.NY)
	for e := range d.Nets {
		if d.Nets[e].Degree() < 2 {
			continue
		}
		bb := d.NetBBox(e)
		// Degenerate boxes get one G-cell of extent.
		w := maxFloat(bb.W(), g.CellW)
		h := maxFloat(bb.H(), g.CellH)
		demand := (bb.W() + bb.H()) / (w * h) // wire length per unit area
		x0, y0 := g.CellAt(bb.Lo.X, bb.Lo.Y)
		x1, y1 := g.CellAt(bb.Lo.X+w-1e-9, bb.Lo.Y+h-1e-9)
		for cy := y0; cy <= y1; cy++ {
			for cx := x0; cx <= x1; cx++ {
				out[cy*g.NX+cx] += demand * g.CellW * g.CellH
			}
		}
	}
	return out
}
