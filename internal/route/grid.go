// Package route implements the global-routing substrate of the framework: a
// 3-D G-cell grid with per-layer directional capacities, an MST-based net
// decomposition, congestion-aware L/Z-shape pattern routing with a small
// rip-up-and-reroute loop, and the congestion map of paper Eq. 3.
//
// It is the CPU substitution for the GPU-accelerated Z-shape router [18] the
// paper invokes to estimate routing congestion (see DESIGN.md): the placer
// consumes only the demand/capacity maps, which any congestion-aware pattern
// router produces with the same structure.
package route

import (
	"repro/internal/geom"
	"repro/internal/netlist"
	"repro/internal/spectral"
)

// Dir is a routing layer's preferred direction.
type Dir uint8

const (
	// Horizontal layers carry x-direction wires.
	Horizontal Dir = iota
	// Vertical layers carry y-direction wires.
	Vertical
)

// trackPitch is the nominal routing track pitch in DBU; a G-cell of width w
// offers w/trackPitch tracks per layer before scaling. One DBU is one site
// width in the synthetic technology, and one routing track per site per
// layer yields placed-design average utilizations in the realistic 0.3–0.6
// band (hotspots above 1.0), which is where routability optimization is
// meaningful.
const trackPitch = 0.5

// macroCapFactor is the fraction of capacity left over macros (wires can
// still cross on top-level layers).
const macroCapFactor = 0.25

// Grid is the 3-D routing fabric: NX columns × NY rows of G-cells with
// Layers routing layers of alternating preferred direction (layer 0 is
// horizontal, mirroring M2 in a typical stack; M1 is pin-only and unmodeled).
type Grid struct {
	NX, NY int
	Layers int
	CellW  float64
	CellH  float64
	Die    geom.Rect

	LayerDir []Dir
	// Cap[l][i] is the routing capacity of G-cell i on layer l, in tracks.
	Cap [][]float64
}

// NewGrid builds the routing grid for a design with roughly gridHint G-cells
// per axis (rounded to a power of two so it can share dimensions with the
// density bins, as the paper requires in Sec. II-B).
func NewGrid(d *netlist.Design, gridHint int) *Grid {
	if gridHint < 16 {
		gridHint = 16
	}
	n := spectral.NextPow2(gridHint)
	g := &Grid{
		NX:    n,
		NY:    n,
		Die:   d.Die,
		CellW: d.Die.W() / float64(n),
		CellH: d.Die.H() / float64(n),
	}
	layers := d.RouteLayers
	if layers < 2 {
		layers = 2
	}
	g.Layers = layers
	g.LayerDir = make([]Dir, layers)
	for l := range g.LayerDir {
		if l%2 == 0 {
			g.LayerDir[l] = Horizontal
		} else {
			g.LayerDir[l] = Vertical
		}
	}
	scale := d.RouteCapScale
	if scale <= 0 {
		scale = 1
	}
	g.Cap = make([][]float64, layers)
	for l := 0; l < layers; l++ {
		g.Cap[l] = make([]float64, n*n)
		var per float64
		if g.LayerDir[l] == Horizontal {
			per = g.CellH / trackPitch * scale
		} else {
			per = g.CellW / trackPitch * scale
		}
		if per < 1 {
			per = 1
		}
		for i := range g.Cap[l] {
			g.Cap[l][i] = per
		}
	}
	// Macros consume most of the lower-layer routing resources above them.
	for _, r := range d.MacroRects() {
		x0, y0 := g.CellAt(r.Lo.X, r.Lo.Y)
		x1, y1 := g.CellAt(r.Hi.X-1e-9, r.Hi.Y-1e-9)
		for l := 0; l < layers; l++ {
			f := macroCapFactor
			if l >= layers-2 {
				f = 0.7 // top two layers stay mostly routable over macros
			}
			for y := y0; y <= y1; y++ {
				for x := x0; x <= x1; x++ {
					g.Cap[l][y*g.NX+x] *= f
				}
			}
		}
	}
	return g
}

// CellAt returns the (column, row) of the G-cell containing point (x, y),
// clamped to the grid.
func (g *Grid) CellAt(x, y float64) (int, int) {
	cx := int((x - g.Die.Lo.X) / g.CellW)
	cy := int((y - g.Die.Lo.Y) / g.CellH)
	return geom.ClampInt(cx, 0, g.NX-1), geom.ClampInt(cy, 0, g.NY-1)
}

// CellCenter returns the center coordinates of G-cell (cx, cy).
func (g *Grid) CellCenter(cx, cy int) (float64, float64) {
	return g.Die.Lo.X + (float64(cx)+0.5)*g.CellW, g.Die.Lo.Y + (float64(cy)+0.5)*g.CellH
}

// CapTotal returns the total capacity of G-cell i summed over layers
// (Cap_{m,n} of Sec. II-B).
func (g *Grid) CapTotal(i int) float64 {
	var s float64
	for l := 0; l < g.Layers; l++ {
		s += g.Cap[l][i]
	}
	return s
}

// DirLayers returns the indices of the layers with direction dir.
func (g *Grid) DirLayers(dir Dir) []int {
	var out []int
	for l, d := range g.LayerDir {
		if d == dir {
			out = append(out, l)
		}
	}
	return out
}

// Result holds one routing pass's outputs: the 3-D demand map, the 2-D
// congestion map of Eq. 3, and summary metrics.
type Result struct {
	Grid *Grid
	// Dmd[l][i]: wire+via demand of G-cell i on layer l.
	Dmd [][]float64
	// Congestion[i] = max(ΣDmd/ΣCap − 1, 0) per Eq. 3.
	Congestion []float64
	// Util[i] = ΣDmd/ΣCap (un-clamped utilization; Alg. 2 thresholds it).
	Util []float64

	WirelengthDBU float64 // total routed wirelength in DBU
	Vias          int     // total via count
	OverflowTotal float64 // Σ max(0, Dmd−Cap) over G-cells (2-D)
	OverflowCells int     // number of overflowed G-cells
	MaxUtil       float64

	// Segments is the number of two-pin segments routed; RoundsRun the
	// number of routing rounds executed (telemetry bookkeeping).
	Segments  int
	RoundsRun int
}

// DemandTotal returns ΣDmd over layers at G-cell i.
func (r *Result) DemandTotal(i int) float64 {
	var s float64
	for l := range r.Dmd {
		s += r.Dmd[l][i]
	}
	return s
}

// finalize computes congestion, utilization and overflow from the demand.
// The output slices are reused across calls on the same Result (the router
// refills one Result per call; see Route's ownership contract).
func (r *Result) finalize() {
	g := r.Grid
	n := g.NX * g.NY
	if len(r.Congestion) != n {
		r.Congestion = make([]float64, n)
		r.Util = make([]float64, n)
	}
	r.OverflowTotal = 0
	r.OverflowCells = 0
	r.MaxUtil = 0
	for i := 0; i < n; i++ {
		cap := g.CapTotal(i)
		dmd := r.DemandTotal(i)
		u := 0.0
		if cap > 0 {
			u = dmd / cap
		} else if dmd > 0 {
			u = 2
		}
		r.Util[i] = u
		if u > r.MaxUtil {
			r.MaxUtil = u
		}
		r.Congestion[i] = 0
		if c := u - 1; c > 0 {
			r.Congestion[i] = c
			r.OverflowTotal += dmd - cap
			r.OverflowCells++
		}
	}
}

// AvgCongestion returns the mean of the congestion map (C̄ used by Eq. 12 and
// Eq. 15). Note the mean is over all G-cells, including zero entries.
func (r *Result) AvgCongestion() float64 {
	if len(r.Congestion) == 0 {
		return 0
	}
	var s float64
	for _, c := range r.Congestion {
		s += c
	}
	return s / float64(len(r.Congestion))
}

// CongestionAt returns the congestion value of the G-cell containing (x, y).
func (r *Result) CongestionAt(x, y float64) float64 {
	cx, cy := r.Grid.CellAt(x, y)
	return r.Congestion[cy*r.Grid.NX+cx]
}

// UtilAt returns the utilization of the G-cell containing (x, y).
func (r *Result) UtilAt(x, y float64) float64 {
	cx, cy := r.Grid.CellAt(x, y)
	return r.Util[cy*r.Grid.NX+cx]
}

// WeightedCongestion returns Σ congestion·area, a scalar used to track
// whether C(x,y) is still decreasing (the loop exit test in Fig. 2).
func (r *Result) WeightedCongestion() float64 {
	var s float64
	for _, c := range r.Congestion {
		s += c
	}
	return s * r.Grid.CellW * r.Grid.CellH
}

// maxFloat is a tiny helper avoiding math.Max churn in hot loops.
func maxFloat(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
