package route

import (
	"testing"

	"repro/internal/geom"
	"repro/internal/netlist"
	"repro/internal/synth"
)

func TestMazeNoOpWhenUncongested(t *testing.T) {
	d := synth.MustGenerate("tiny_open")
	g := NewGrid(d, 32)
	plain := NewRouter(d, g).Route()
	if plain.OverflowCells != 0 {
		t.Skip("tiny_open unexpectedly congested")
	}
	maze := NewRouter(d, g).RouteWithMaze(0)
	if maze.WirelengthDBU != plain.WirelengthDBU || maze.Vias != plain.Vias {
		t.Errorf("maze changed an uncongested routing: WL %v vs %v",
			maze.WirelengthDBU, plain.WirelengthDBU)
	}
}

func TestMazeReducesOverflowScore(t *testing.T) {
	// A corridor bottleneck: many straight nets through a capacity-starved
	// band; pattern routing has no alternative (straight runs only), maze
	// can detour around.
	b := netlist.NewBuilder("bottleneck", geom.NewRect(0, 0, 256, 256), 8, 1)
	const k = 30
	for i := 0; i < k; i++ {
		a := b.AddCell("a", netlist.StdCell, 8, 120+float64(i%3)*4, 2, 8)
		c := b.AddCell("b", netlist.StdCell, 248, 120+float64(i%3)*4, 2, 8)
		n := b.AddNet("n", 1)
		b.Connect(a, n, 0, 0)
		b.Connect(c, n, 0, 0)
	}
	b.SetRouteCapScale(0.15)
	d := b.MustBuild()
	g := NewGrid(d, 32)

	plain := NewRouter(d, g).Route()
	if plain.OverflowCells == 0 {
		t.Fatalf("test design not congested")
	}
	maze := NewRouter(d, g).RouteWithMaze(0)
	if maze.OverflowTotal >= plain.OverflowTotal {
		t.Errorf("maze did not reduce overflow: %v → %v", plain.OverflowTotal, maze.OverflowTotal)
	}
	// Detours may lengthen wires; they must never shorten below Manhattan.
	if maze.WirelengthDBU < plain.WirelengthDBU {
		t.Errorf("maze shortened total wirelength below pattern optimum: %v < %v",
			maze.WirelengthDBU, plain.WirelengthDBU)
	}
}

func TestMazeRespectsRerouteBudget(t *testing.T) {
	d := synth.MustGenerate("tiny_hot")
	g := NewGrid(d, 32)
	full := NewRouter(d, g).RouteWithMaze(0)
	one := NewRouter(d, g).RouteWithMaze(1)
	// With a budget of one reroute, the result must differ from the full
	// maze pass on a congested design (or equal the plain result).
	plain := NewRouter(d, g).Route()
	if plain.OverflowCells == 0 {
		t.Skip("tiny_hot not congested at this grid")
	}
	if one.OverflowTotal < full.OverflowTotal {
		t.Errorf("budget-1 maze beat unlimited maze: %v < %v", one.OverflowTotal, full.OverflowTotal)
	}
}

func TestMazeDeterministic(t *testing.T) {
	d := synth.MustGenerate("tiny_hot")
	g := NewGrid(d, 32)
	a := NewRouter(d, g).RouteWithMaze(0)
	b2 := NewRouter(d, g).RouteWithMaze(0)
	if a.WirelengthDBU != b2.WirelengthDBU || a.Vias != b2.Vias || a.OverflowTotal != b2.OverflowTotal {
		t.Errorf("maze routing not deterministic")
	}
}

func TestDijkstraStraightLine(t *testing.T) {
	d := synth.MustGenerate("tiny_open")
	g := NewGrid(d, 32)
	r := NewRouter(d, g)
	ms := &mazeState{
		r:    r,
		dist: make([]float64, g.NX*g.NY),
		prev: make([]int32, g.NX*g.NY),
	}
	path := ms.dijkstra(segment{x1: 2, y1: 5, x2: 9, y2: 5})
	if path == nil {
		t.Fatalf("no path found")
	}
	if len(path) != 8 {
		t.Errorf("straight path length %d, want 8 cells", len(path))
	}
	if path[0] != int32(5*g.NX+2) || path[len(path)-1] != int32(5*g.NX+9) {
		t.Errorf("endpoints wrong")
	}
}
