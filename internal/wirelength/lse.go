package wirelength

import (
	"math"

	"repro/internal/netlist"
)

// LSE is the log-sum-exp wirelength model used by the original ePlace
// (Naylor's patent formulation):
//
//	LSE_x(e) = γ·( log Σ_i e^{x_i/γ} + log Σ_i e^{−x_i/γ} )
//
// Unlike the WA model (which underestimates HPWL), LSE overestimates it;
// both converge to HPWL as γ→0. The placer uses WA per the paper (Sec.
// II-A cites the WA model), and LSE is provided as the classical
// alternative for comparison and for downstream users.
type LSE struct {
	d     *netlist.Design
	gamma float64
}

// NewLSE creates an LSE model with smoothing parameter gamma.
func NewLSE(d *netlist.Design, gamma float64) *LSE {
	return &LSE{d: d, gamma: gamma}
}

// Gamma returns the smoothing parameter.
func (m *LSE) Gamma() float64 { return m.gamma }

// SetGamma overrides the smoothing parameter.
func (m *LSE) SetGamma(g float64) { m.gamma = g }

// EvaluateWithGrad returns the total weighted LSE wirelength, accumulating
// ∂/∂(cell center) into grad (layout [gx0,gy0,...]; nil to skip gradients).
func (m *LSE) EvaluateWithGrad(grad []float64) float64 {
	d := m.d
	if grad != nil && len(grad) != 2*len(d.Cells) {
		panic("wirelength: gradient length mismatch")
	}
	var total float64
	for e := range d.Nets {
		net := &d.Nets[e]
		if net.Degree() < 2 {
			continue
		}
		w := net.Weight
		if w == 0 {
			w = 1
		}
		total += w * m.netLSE(net, grad, w, axisX)
		total += w * m.netLSE(net, grad, w, axisY)
	}
	return total
}

// Evaluate returns the total LSE wirelength without gradients.
func (m *LSE) Evaluate() float64 { return m.EvaluateWithGrad(nil) }

// netLSE computes one net's LSE length along one axis with max-shifted
// exponentials for numerical stability.
func (m *LSE) netLSE(net *netlist.Net, grad []float64, w float64, ax axis) float64 {
	d := m.d
	g := m.gamma
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, pi := range net.Pins {
		p := d.PinPos(pi)
		c := p.X
		if ax == axisY {
			c = p.Y
		}
		if c < lo {
			lo = c
		}
		if c > hi {
			hi = c
		}
	}
	var sP, sN float64
	for _, pi := range net.Pins {
		p := d.PinPos(pi)
		c := p.X
		if ax == axisY {
			c = p.Y
		}
		sP += math.Exp((c - hi) / g)
		sN += math.Exp((lo - c) / g)
	}
	// γ(log Σe^{(x−hi)/γ} + hi/γ·γ) + symmetric term.
	length := g*math.Log(sP) + hi + g*math.Log(sN) - lo

	if grad != nil {
		for _, pi := range net.Pins {
			p := d.PinPos(pi)
			c := p.X
			if ax == axisY {
				c = p.Y
			}
			gv := w * (math.Exp((c-hi)/g)/sP - math.Exp((lo-c)/g)/sN)
			ci := d.Pins[pi].Cell
			if ax == axisX {
				grad[2*ci] += gv
			} else {
				grad[2*ci+1] += gv
			}
		}
	}
	return length
}
