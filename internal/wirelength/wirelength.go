// Package wirelength implements the weighted-average (WA) wirelength model
// (Hsu, Chang, Balabanov, DAC 2011) used as the smooth HPWL surrogate in the
// placement objective (paper Sec. II-A), together with its analytic gradient
// and the overflow-driven smoothing-parameter (γ) schedule of ePlace.
//
// Evaluation is net-parallel over the internal/parallel shard layer: each
// shard accumulates its nets' WA total and scatter-adds gradients into a
// shard-private buffer, and the shards are merged in fixed index order —
// so the result is byte-identical for every worker count.
package wirelength

import (
	"math"

	"repro/internal/netlist"
	"repro/internal/parallel"
)

// Model evaluates WA wirelength and its gradient for a fixed design. The
// gamma parameter controls smoothness: WA → HPWL as γ → 0.
type Model struct {
	// Workers caps the goroutines used per evaluation; 0 selects
	// runtime.NumCPU(), 1 runs fully serial. Results are byte-identical
	// for any setting (deterministic shard reduction).
	Workers int

	d     *netlist.Design
	gamma float64

	// Per-shard state: gradient accumulators (merged in shard order) and
	// exponential scratch sized to the max net degree.
	shardGrad [][]float64
	shardEx   [parallel.NumShards][]float64
	shardEn   [parallel.NumShards][]float64

	stats parallel.Timing
}

// New creates a WA model with an initial γ proportional to the given
// characteristic length (typically the bin size).
func New(d *netlist.Design, gamma float64) *Model {
	maxDeg := 2
	for i := range d.Nets {
		if deg := d.Nets[i].Degree(); deg > maxDeg {
			maxDeg = deg
		}
	}
	m := &Model{d: d, gamma: gamma}
	m.shardGrad = parallel.NewShards(2 * len(d.Cells))
	for s := 0; s < parallel.NumShards; s++ {
		m.shardEx[s] = make([]float64, maxDeg)
		m.shardEn[s] = make([]float64, maxDeg)
	}
	return m
}

// Gamma returns the current smoothing parameter.
func (m *Model) Gamma() float64 { return m.gamma }

// SetGamma overrides the smoothing parameter directly.
func (m *Model) SetGamma(g float64) { m.gamma = g }

// Stats returns the accumulated wall/busy time of the net-parallel
// evaluations (telemetry: the parallel.wirelength speedup gauge).
func (m *Model) Stats() parallel.Timing { return m.stats }

// UpdateGamma applies the ePlace overflow schedule: γ = base·10^(k·ovf + b)
// with k, b chosen so overflow 1.0 gives 10·base and overflow 0.1 gives
// base/10. Smaller overflow sharpens the model toward HPWL as the placement
// converges.
func (m *Model) UpdateGamma(base, overflow float64) {
	const (
		k = 20.0 / 9.0
		b = -11.0 / 9.0
	)
	m.gamma = base * math.Pow(10, k*overflow+b)
}

// EvaluateWithGrad returns the total weighted WA wirelength and accumulates
// ∂WA/∂(cell center) into grad, which must have length 2·len(cells) and is
// laid out [gx0, gy0, gx1, gy1, ...]. Gradients are accumulated (callers
// zero the slice when they need a fresh gradient); entries for fixed cells
// are accumulated too and it is the caller's choice to ignore them.
//
// Nets are processed shard-parallel; per-cell contributions land in the
// fixed net-index order regardless of the worker count.
func (m *Model) EvaluateWithGrad(grad []float64) float64 {
	d := m.d
	if grad != nil && len(grad) != 2*len(d.Cells) {
		panic("wirelength: gradient length mismatch")
	}
	if grad != nil {
		parallel.ZeroFloats(m.shardGrad)
	}
	var parts [parallel.NumShards]float64
	m.stats.Add(parallel.For(m.Workers, len(d.Nets), func(shard, lo, hi int) {
		var sg []float64
		if grad != nil {
			sg = m.shardGrad[shard]
		}
		coords := m.shardEx[shard]
		expP := m.shardEn[shard]
		var total float64
		for e := lo; e < hi; e++ {
			net := &d.Nets[e]
			if net.Degree() < 2 {
				continue
			}
			w := net.Weight
			if w == 0 {
				w = 1
			}
			total += w * m.netWA(net, sg, w, axisX, coords, expP)
			total += w * m.netWA(net, sg, w, axisY, coords, expP)
		}
		parts[shard] = total
	}))
	if grad != nil {
		parallel.MergeFloats(grad, m.shardGrad)
	}
	return parallel.SumShards(&parts)
}

// Evaluate returns the total WA wirelength without gradients.
func (m *Model) Evaluate() float64 { return m.EvaluateWithGrad(nil) }

type axis int

const (
	axisX axis = iota
	axisY
)

// netWA computes the WA length of one net along one axis and accumulates the
// (weighted) gradient into grad (shard-private; nil skips gradients). The
// max/min-shifted exponentials keep the computation stable for any
// coordinate magnitude. coords and expP are caller-provided scratch sized
// to at least the net degree.
func (m *Model) netWA(net *netlist.Net, grad []float64, w float64, ax axis, coords, expP []float64) float64 {
	d := m.d
	n := len(net.Pins)
	coords = coords[:n]
	for k, pi := range net.Pins {
		p := d.PinPos(pi)
		if ax == axisX {
			coords[k] = p.X
		} else {
			coords[k] = p.Y
		}
	}
	lo, hi := coords[0], coords[0]
	for _, c := range coords[1:] {
		if c < lo {
			lo = c
		}
		if c > hi {
			hi = c
		}
	}
	g := m.gamma
	// Positive side (max approximation), shifted by hi.
	// Negative side (min approximation), shifted by lo.
	expP = expP[:n]
	var sP, sxP, sN, sxN float64
	for k, c := range coords {
		ep := math.Exp((c - hi) / g)
		en := math.Exp((lo - c) / g)
		expP[k] = ep // store positive exp; negative recomputed below (cheap)
		sP += ep
		sxP += c * ep
		sN += en
		sxN += c * en
	}
	waMax := sxP / sP
	waMin := sxN / sN
	length := waMax - waMin

	if grad != nil {
		for k, pi := range net.Pins {
			c := coords[k]
			ep := expP[k]
			en := math.Exp((lo - c) / g)
			// d(waMax)/dc_k = ep·((1 + c/g)·sP − sxP/g)/sP²
			// d(waMin)/dc_k = en·((1 − c/g)·sN + sxN/g)/sN²
			dMax := ep * ((1+c/g)*sP - sxP/g) / (sP * sP)
			dMin := en * ((1-c/g)*sN + sxN/g) / (sN * sN)
			gv := w * (dMax - dMin)
			ci := d.Pins[pi].Cell
			if ax == axisX {
				grad[2*ci] += gv
			} else {
				grad[2*ci+1] += gv
			}
		}
	}
	return length
}

// GradL1 returns the L1 norm of a gradient vector restricted to movable
// cells; Eq. 10's λ₂ formula uses it.
func GradL1(d *netlist.Design, grad []float64) float64 {
	var s float64
	for i := range d.Cells {
		if !d.Cells[i].Movable() {
			continue
		}
		s += math.Abs(grad[2*i]) + math.Abs(grad[2*i+1])
	}
	return s
}
