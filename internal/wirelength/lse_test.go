package wirelength

import (
	"math"
	"math/rand"
	"testing"
)

func TestLSEUpperBoundsHPWL(t *testing.T) {
	// LSE overestimates HPWL for any pin configuration (the dual of WA's
	// underestimation).
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(6)
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = rng.Float64() * 100
			ys[i] = rng.Float64() * 100
		}
		d := chainDesign(t, xs, ys)
		m := NewLSE(d, 5)
		if lse, hp := m.Evaluate(), d.HPWL(); lse < hp-1e-9 {
			t.Errorf("trial %d: LSE %v below HPWL %v", trial, lse, hp)
		}
	}
}

func TestWAHPWLLSESandwich(t *testing.T) {
	// WA ≤ HPWL ≤ LSE at the same γ.
	d := chainDesign(t, []float64{0, 12, 37, 50}, []float64{3, -9, 14, 2})
	hp := d.HPWL()
	for _, g := range []float64{0.5, 2, 8} {
		wa := New(d, g).Evaluate()
		lse := NewLSE(d, g).Evaluate()
		if !(wa <= hp+1e-9 && hp <= lse+1e-9) {
			t.Errorf("γ=%v: sandwich violated: WA %v, HPWL %v, LSE %v", g, wa, hp, lse)
		}
	}
}

func TestLSEApproachesHPWLAsGammaShrinks(t *testing.T) {
	d := chainDesign(t, []float64{0, 10, 25, 40}, []float64{0, 5, -8, 12})
	hp := d.HPWL()
	prevErr := math.Inf(1)
	for _, g := range []float64{10, 3, 1, 0.3} {
		err := math.Abs(NewLSE(d, g).Evaluate() - hp)
		if err > prevErr+1e-9 {
			t.Errorf("γ=%v: error %v did not shrink (prev %v)", g, err, prevErr)
		}
		prevErr = err
	}
	if prevErr > 0.05*hp {
		t.Errorf("LSE at γ=0.3 still %v away from HPWL %v", prevErr, hp)
	}
}

func TestLSEGradientMatchesFiniteDifference(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	n := 5
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i] = rng.Float64() * 50
		ys[i] = rng.Float64() * 50
	}
	d := chainDesign(t, xs, ys)
	m := NewLSE(d, 2.0)

	grad := make([]float64, 2*len(d.Cells))
	m.EvaluateWithGrad(grad)

	const h = 1e-5
	for ci := 0; ci < n; ci++ {
		for ax := 0; ax < 2; ax++ {
			move := func(delta float64) {
				if ax == 0 {
					d.Cells[ci].X += delta
				} else {
					d.Cells[ci].Y += delta
				}
			}
			move(h)
			fp := m.Evaluate()
			move(-2 * h)
			fm := m.Evaluate()
			move(h)
			want := (fp - fm) / (2 * h)
			got := grad[2*ci+ax]
			if math.Abs(got-want) > 1e-5*math.Max(1, math.Abs(want)) {
				t.Errorf("cell %d axis %d: grad %v, finite-diff %v", ci, ax, got, want)
			}
		}
	}
}

func TestLSEStabilityLargeCoordinates(t *testing.T) {
	d := chainDesign(t, []float64{200000, 200040}, []float64{-90000, -90020})
	m := NewLSE(d, 0.5)
	v := m.Evaluate()
	if math.IsNaN(v) || math.IsInf(v, 0) {
		t.Fatalf("LSE overflowed: %v", v)
	}
	if math.Abs(v-d.HPWL()) > 0.05*d.HPWL() {
		t.Errorf("LSE %v far from HPWL %v at small γ", v, d.HPWL())
	}
}

func TestLSESetGamma(t *testing.T) {
	d := chainDesign(t, []float64{0, 10}, []float64{0, 0})
	m := NewLSE(d, 1)
	m.SetGamma(4)
	if m.Gamma() != 4 {
		t.Errorf("SetGamma failed")
	}
}

func BenchmarkLSEEvaluateWithGrad(b *testing.B) {
	rng := rand.New(rand.NewSource(23))
	xs := make([]float64, 6)
	ys := make([]float64, 6)
	for i := range xs {
		xs[i] = rng.Float64() * 100
		ys[i] = rng.Float64() * 100
	}
	d := chainDesign(b, xs, ys)
	m := NewLSE(d, 3)
	grad := make([]float64, 2*len(d.Cells))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range grad {
			grad[j] = 0
		}
		m.EvaluateWithGrad(grad)
	}
}
