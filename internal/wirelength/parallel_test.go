package wirelength

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/netlist"
	"repro/internal/parallel"
)

// meshDesign builds a design with many nets of mixed degree so the shard
// decomposition is exercised with uneven per-net work.
func meshDesign(t testing.TB) *netlist.Design {
	t.Helper()
	rng := rand.New(rand.NewSource(41))
	b := netlist.NewBuilder("mesh", geom.NewRect(0, 0, 1000, 1000), 8, 1)
	const cells = 400
	for i := 0; i < cells; i++ {
		b.AddCell("c", netlist.StdCell, rng.Float64()*1000, rng.Float64()*1000, 2, 8)
	}
	for e := 0; e < 700; e++ {
		n := b.AddNet("n", 1)
		deg := 2 + rng.Intn(7)
		for k := 0; k < deg; k++ {
			b.Connect(rng.Intn(cells), n, 0, 0)
		}
	}
	return b.MustBuild()
}

// TestEvaluateBitwiseIdenticalAcrossWorkers: the shard reduction tree
// depends only on the net count, so WA total and gradient must be
// bit-for-bit identical for every worker count.
func TestEvaluateBitwiseIdenticalAcrossWorkers(t *testing.T) {
	d := meshDesign(t)
	run := func(workers int) (float64, []float64) {
		m := New(d, 4.0)
		m.Workers = workers
		grad := make([]float64, 2*len(d.Cells))
		wa := m.EvaluateWithGrad(grad)
		return wa, grad
	}
	refWA, refGrad := run(1)
	for _, w := range []int{2, 3, parallel.NumShards, 0} {
		wa, grad := run(w)
		if math.Float64bits(wa) != math.Float64bits(refWA) {
			t.Errorf("workers=%d: WA %v != serial %v (bitwise)", w, wa, refWA)
		}
		for i := range grad {
			if math.Float64bits(grad[i]) != math.Float64bits(refGrad[i]) {
				t.Fatalf("workers=%d: grad[%d] differs bitwise from serial", w, i)
			}
		}
	}
}

// TestEvaluateStatsAccumulate: evaluations record the cost of the parallel
// section for the telemetry speedup gauges.
func TestEvaluateStatsAccumulate(t *testing.T) {
	d := meshDesign(t)
	m := New(d, 4.0)
	m.Evaluate()
	m.Evaluate()
	if m.Stats().Wall <= 0 || m.Stats().Busy <= 0 {
		t.Errorf("stats not accumulated: %+v", m.Stats())
	}
}
