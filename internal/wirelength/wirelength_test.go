package wirelength

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/netlist"
)

// chainDesign builds numCells cells on one net each consecutive pair.
func chainDesign(t testing.TB, xs, ys []float64) *netlist.Design {
	t.Helper()
	b := netlist.NewBuilder("chain", geom.NewRect(-1000, -1000, 1000, 1000), 8, 1)
	for i := range xs {
		b.AddCell("c", netlist.StdCell, xs[i], ys[i], 1, 8)
	}
	n := b.AddNet("n", 1)
	for i := range xs {
		b.Connect(i, n, 0, 0)
	}
	return b.MustBuild()
}

func TestWAApproachesHPWLAsGammaShrinks(t *testing.T) {
	d := chainDesign(t, []float64{0, 10, 25, 40}, []float64{0, 5, -8, 12})
	hpwl := d.HPWL()
	var prevErr float64 = math.Inf(1)
	for _, g := range []float64{10, 3, 1, 0.3} {
		m := New(d, g)
		wa := m.Evaluate()
		err := math.Abs(wa - hpwl)
		if err > prevErr+1e-9 {
			t.Errorf("gamma %v: error %v did not shrink (prev %v)", g, err, prevErr)
		}
		prevErr = err
	}
	if prevErr > 0.05*hpwl {
		t.Errorf("WA at gamma=0.3 still %v away from HPWL %v", prevErr, hpwl)
	}
}

func TestWALowerBoundsHPWL(t *testing.T) {
	// The WA model underestimates HPWL for any pin configuration.
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(6)
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = rng.Float64() * 100
			ys[i] = rng.Float64() * 100
		}
		d := chainDesign(t, xs, ys)
		m := New(d, 5)
		if wa, hp := m.Evaluate(), d.HPWL(); wa > hp+1e-9 {
			t.Errorf("trial %d: WA %v exceeds HPWL %v", trial, wa, hp)
		}
	}
}

func TestGradientMatchesFiniteDifference(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	n := 5
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i] = rng.Float64() * 50
		ys[i] = rng.Float64() * 50
	}
	d := chainDesign(t, xs, ys)
	m := New(d, 2.0)

	grad := make([]float64, 2*len(d.Cells))
	m.EvaluateWithGrad(grad)

	const h = 1e-5
	for ci := 0; ci < n; ci++ {
		for ax := 0; ax < 2; ax++ {
			move := func(delta float64) {
				if ax == 0 {
					d.Cells[ci].X += delta
				} else {
					d.Cells[ci].Y += delta
				}
			}
			move(h)
			fp := m.Evaluate()
			move(-2 * h)
			fm := m.Evaluate()
			move(h)
			want := (fp - fm) / (2 * h)
			got := grad[2*ci+ax]
			if math.Abs(got-want) > 1e-5*math.Max(1, math.Abs(want)) {
				t.Errorf("cell %d axis %d: grad %v, finite-diff %v", ci, ax, got, want)
			}
		}
	}
}

func TestGradientAccumulates(t *testing.T) {
	d := chainDesign(t, []float64{0, 10}, []float64{0, 0})
	m := New(d, 1)
	grad := make([]float64, 2*len(d.Cells))
	m.EvaluateWithGrad(grad)
	once := append([]float64(nil), grad...)
	m.EvaluateWithGrad(grad)
	for i := range grad {
		if math.Abs(grad[i]-2*once[i]) > 1e-12 {
			t.Fatalf("gradient not accumulated at %d", i)
		}
	}
}

func TestGradientSignsPullTogether(t *testing.T) {
	// On a two-pin net, the WL gradient pulls the cells toward each other.
	d := chainDesign(t, []float64{0, 10}, []float64{0, 0})
	m := New(d, 1)
	grad := make([]float64, 4)
	m.EvaluateWithGrad(grad)
	if grad[0] >= 0 { // left cell: decreasing objective means moving right → positive grad? No: gradient of WL wrt left x is negative (moving right reduces WL)
		t.Errorf("left cell x-gradient %v, want negative", grad[0])
	}
	if grad[2] <= 0 {
		t.Errorf("right cell x-gradient %v, want positive", grad[2])
	}
}

func TestNetWeightScalesGradient(t *testing.T) {
	mk := func(w float64) (*netlist.Design, []float64) {
		b := netlist.NewBuilder("w", geom.NewRect(0, 0, 100, 100), 8, 1)
		b.AddCell("a", netlist.StdCell, 10, 10, 1, 8)
		b.AddCell("b", netlist.StdCell, 60, 40, 1, 8)
		n := b.AddNet("n", w)
		b.Connect(0, n, 0, 0)
		b.Connect(1, n, 0, 0)
		d := b.MustBuild()
		g := make([]float64, 4)
		New(d, 2).EvaluateWithGrad(g)
		return d, g
	}
	d1, g1 := mk(1)
	d3, g3 := mk(3)
	wa1 := New(d1, 2).Evaluate()
	wa3 := New(d3, 2).Evaluate()
	if math.Abs(wa3-3*wa1) > 1e-9 {
		t.Errorf("weighted WA %v != 3×%v", wa3, wa1)
	}
	for i := range g1 {
		if math.Abs(g3[i]-3*g1[i]) > 1e-9 {
			t.Errorf("weighted grad[%d] %v != 3×%v", i, g3[i], g1[i])
		}
	}
}

func TestStabilityLargeCoordinates(t *testing.T) {
	// Shifted exponentials must survive coordinates ≫ γ.
	d := chainDesign(t, []float64{100000, 100040}, []float64{-50000, -50020})
	m := New(d, 0.5)
	wa := m.Evaluate()
	if math.IsNaN(wa) || math.IsInf(wa, 0) {
		t.Fatalf("WA overflowed: %v", wa)
	}
	if math.Abs(wa-d.HPWL()) > 0.05*d.HPWL() {
		t.Errorf("WA %v far from HPWL %v at small gamma", wa, d.HPWL())
	}
}

func TestUpdateGammaSchedule(t *testing.T) {
	d := chainDesign(t, []float64{0, 10}, []float64{0, 0})
	m := New(d, 1)
	m.UpdateGamma(2.0, 1.0) // overflow 1 → 10·base
	if math.Abs(m.Gamma()-20) > 1e-9 {
		t.Errorf("gamma at overflow 1 = %v, want 20", m.Gamma())
	}
	m.UpdateGamma(2.0, 0.1) // overflow 0.1 → base/10
	if math.Abs(m.Gamma()-0.2) > 1e-9 {
		t.Errorf("gamma at overflow 0.1 = %v, want 0.2", m.Gamma())
	}
	// Monotone: lower overflow → smaller gamma.
	m.UpdateGamma(2.0, 0.5)
	mid := m.Gamma()
	if mid >= 20 || mid <= 0.2 {
		t.Errorf("gamma at overflow 0.5 = %v, not between", mid)
	}
	m.SetGamma(7)
	if m.Gamma() != 7 {
		t.Errorf("SetGamma failed")
	}
}

func TestSinglePinNetIgnored(t *testing.T) {
	b := netlist.NewBuilder("s", geom.NewRect(0, 0, 10, 10), 8, 1)
	b.AddCell("a", netlist.StdCell, 5, 5, 1, 8)
	n := b.AddNet("n", 1)
	b.Connect(0, n, 0, 0)
	d := b.MustBuild()
	m := New(d, 1)
	if wa := m.Evaluate(); wa != 0 {
		t.Errorf("single-pin net WA = %v, want 0", wa)
	}
}

func TestGradL1MovableOnly(t *testing.T) {
	b := netlist.NewBuilder("g", geom.NewRect(0, 0, 100, 100), 8, 1)
	b.AddCell("a", netlist.StdCell, 10, 10, 1, 8)
	b.AddCell("m", netlist.Macro, 60, 60, 10, 10)
	n := b.AddNet("n", 1)
	b.Connect(0, n, 0, 0)
	b.Connect(1, n, 0, 0)
	d := b.MustBuild()
	grad := make([]float64, 4)
	New(d, 2).EvaluateWithGrad(grad)
	l1 := GradL1(d, grad)
	want := math.Abs(grad[0]) + math.Abs(grad[1])
	if math.Abs(l1-want) > 1e-12 {
		t.Errorf("GradL1 = %v, want %v (movable part only)", l1, want)
	}
}

func BenchmarkEvaluateWithGrad(b *testing.B) {
	rng := rand.New(rand.NewSource(13))
	nb := netlist.NewBuilder("bench", geom.NewRect(0, 0, 1000, 1000), 8, 1)
	for i := 0; i < 1000; i++ {
		nb.AddCell("c", netlist.StdCell, rng.Float64()*1000, rng.Float64()*1000, 2, 8)
	}
	for e := 0; e < 1200; e++ {
		n := nb.AddNet("n", 1)
		deg := 2 + rng.Intn(4)
		for k := 0; k < deg; k++ {
			nb.Connect(rng.Intn(1000), n, 0, 0)
		}
	}
	d := nb.MustBuild()
	m := New(d, 5)
	grad := make([]float64, 2*len(d.Cells))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range grad {
			grad[j] = 0
		}
		m.EvaluateWithGrad(grad)
	}
}
