// Package inflation implements cell-inflation schemes for mitigating local
// routing congestion (paper Sec. III-B). The paper's contribution is the
// momentum-based scheme of Eq. 11–12 with a deflation mechanism; the package
// also provides the two prior-art baselines the paper contrasts it with
// (present-congestion-only inflation as in DREAMPlace/RePlAce, and monotone
// history-based inflation as in Xplace-Route/NTUplace4dr), so the ablation
// and Table I comparisons exercise real alternatives.
package inflation

import (
	"fmt"
	"math"
)

// Inflator updates per-cell inflation ratios from a congestion observation.
// congAt[i] is C_i^t: the congestion value (Eq. 3) of the G-cell containing
// cell i's center; avg is C̄^t, the mean congestion over all G-cells.
// Update returns an error (instead of panicking) when the congestion vector
// does not have one entry per cell — an API-boundary mistake a caller can
// make and therefore must be able to handle.
type Inflator interface {
	Update(congAt []float64, avg float64) error
	// Ratios returns the current inflation ratio per cell. The returned
	// slice aliases internal state; callers must not modify it.
	Ratios() []float64
}

func lengthErr(got, want int) error {
	return fmt.Errorf("inflation: congestion vector has %d entries, want %d", got, want)
}

// epsAvg guards divisions by near-zero average congestion in Eq. 12.
const epsAvg = 1e-12

// Momentum is the paper's momentum-based cell inflation (Eq. 11–12):
//
//	r_i^t  = clamp(r_i^{t−1} + Δr_i^t, RMin, RMax)
//	Δr_i^t = α·Δr_i^{t−1} + (1−α)·s_i^t,   Δr_i^1 = C_i^1
//	s_i^t  = δ_i^t·C_i^t
//
// with the deflation decision δ_i^t of Eq. 12: when a cell has moved from an
// above-average-congestion G-cell to a below-average one, δ turns negative
// with magnitude equal to the relative improvement, shrinking the cell
// instead of growing it.
type Momentum struct {
	RMin, RMax, Alpha float64

	r       []float64
	dr      []float64
	cPrev   []float64
	avgPrev float64
	t       int
}

// NewMomentum creates the paper's inflator with its published defaults
// r_min = 0.9, r_max = 2.0, α = 0.4.
func NewMomentum(numCells int) *Momentum {
	m := &Momentum{RMin: 0.9, RMax: 2.0, Alpha: 0.4,
		r:     make([]float64, numCells),
		dr:    make([]float64, numCells),
		cPrev: make([]float64, numCells),
	}
	for i := range m.r {
		m.r[i] = 1 // r_i^0 = 1
	}
	return m
}

// Update applies one inflation iteration (Eq. 11–12).
func (m *Momentum) Update(congAt []float64, avg float64) error {
	if len(congAt) != len(m.r) {
		return lengthErr(len(congAt), len(m.r))
	}
	m.t++
	for i, c := range congAt {
		var s float64
		if m.t == 1 {
			// Δr_i^1 = C_i^1 (paper's initialization).
			m.dr[i] = c
		} else {
			delta := 1.0
			if c < avg && m.cPrev[i] > m.avgPrev {
				// Deflation: the cell moved from above-average to
				// below-average congestion (Eq. 12).
				a0 := math.Max(m.avgPrev, epsAvg)
				a1 := math.Max(avg, epsAvg)
				delta = -math.Abs((m.cPrev[i]*a1 - c*a0) / (a0 * a1))
			}
			s = delta * c
			m.dr[i] = m.Alpha*m.dr[i] + (1-m.Alpha)*s
		}
		prev := m.r[i]
		m.r[i] = clamp(prev+m.dr[i], m.RMin, m.RMax)
		// Δr is "the change value in the inflation rate" (paper): carry the
		// REALIZED change into the momentum so a ratio pinned at a clamp
		// does not accumulate phantom momentum that would drown the
		// deflation signal.
		m.dr[i] = m.r[i] - prev
		m.cPrev[i] = c
	}
	m.avgPrev = avg
	return nil
}

// Ratios returns the current inflation ratios (aliases internal state).
func (m *Momentum) Ratios() []float64 { return m.r }

// Monotonic is the Xplace-Route/NTUplace4dr-style baseline: ratios grow
// monotonically with observed congestion and never shrink, which the paper
// identifies as prone to over-inflation ("may lead to over-inflation even
// when cells have been moved away from the congested area").
type Monotonic struct {
	RMax float64
	Beta float64 // growth gain per unit congestion

	r []float64
}

// NewMonotonic creates the monotone baseline with r_max = 2.0, β = 0.8.
func NewMonotonic(numCells int) *Monotonic {
	m := &Monotonic{RMax: 2.0, Beta: 0.8, r: make([]float64, numCells)}
	for i := range m.r {
		m.r[i] = 1
	}
	return m
}

// Update grows each ratio by its current congestion; never shrinks.
func (m *Monotonic) Update(congAt []float64, _ float64) error {
	if len(congAt) != len(m.r) {
		return lengthErr(len(congAt), len(m.r))
	}
	for i, c := range congAt {
		m.r[i] = clamp(m.r[i]*(1+m.Beta*c), 1, m.RMax)
	}
	return nil
}

// Ratios returns the current inflation ratios (aliases internal state).
func (m *Monotonic) Ratios() []float64 { return m.r }

// PresentOnly is the memoryless baseline (DREAMPlace/RePlAce style): the
// ratio is recomputed from the current congestion alone each iteration, so a
// cell that leaves a hotspot immediately loses its inflation — the paper's
// Sec. I notes this lets cells "return to the previously congested areas
// inadvertently".
type PresentOnly struct {
	RMax float64
	r    []float64
}

// NewPresentOnly creates the memoryless baseline with r_max = 2.0.
func NewPresentOnly(numCells int) *PresentOnly {
	return &PresentOnly{RMax: 2.0, r: ones(numCells)}
}

// Update sets r_i = clamp(1 + C_i, 1, RMax) from the present congestion.
func (p *PresentOnly) Update(congAt []float64, _ float64) error {
	if len(congAt) != len(p.r) {
		return lengthErr(len(congAt), len(p.r))
	}
	for i, c := range congAt {
		p.r[i] = clamp(1+c, 1, p.RMax)
	}
	return nil
}

// Ratios returns the current inflation ratios (aliases internal state).
func (p *PresentOnly) Ratios() []float64 { return p.r }

func ones(n int) []float64 {
	r := make([]float64, n)
	for i := range r {
		r[i] = 1
	}
	return r
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
