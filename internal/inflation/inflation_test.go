package inflation

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMomentumDefaultsMatchPaper(t *testing.T) {
	m := NewMomentum(3)
	if m.RMin != 0.9 || m.RMax != 2.0 || m.Alpha != 0.4 {
		t.Errorf("defaults %v/%v/%v, want 0.9/2.0/0.4", m.RMin, m.RMax, m.Alpha)
	}
	for _, r := range m.Ratios() {
		if r != 1 {
			t.Errorf("r^0 = %v, want 1", r)
		}
	}
}

func TestMomentumFirstIterationUsescongestionAsDelta(t *testing.T) {
	m := NewMomentum(2)
	m.Update([]float64{0.5, 0}, 0.25)
	// Δr^1 = C^1, so r^1 = 1 + C.
	if got := m.Ratios()[0]; math.Abs(got-1.5) > 1e-12 {
		t.Errorf("r[0] = %v, want 1.5", got)
	}
	if got := m.Ratios()[1]; got != 1 {
		t.Errorf("uncongested cell inflated: %v", got)
	}
}

func TestMomentumGrowsUnderPersistentCongestion(t *testing.T) {
	m := NewMomentum(1)
	prev := 1.0
	for it := 0; it < 6; it++ {
		m.Update([]float64{0.6}, 0.1)
		r := m.Ratios()[0]
		if r < prev {
			t.Fatalf("iteration %d: ratio shrank under persistent congestion (%v → %v)", it, prev, r)
		}
		prev = r
	}
	if prev < 1.5 {
		t.Errorf("persistent congestion only reached r=%v", prev)
	}
}

func TestMomentumCapsAtRMax(t *testing.T) {
	m := NewMomentum(1)
	for it := 0; it < 50; it++ {
		m.Update([]float64{3.0}, 0.1)
	}
	if got := m.Ratios()[0]; got != 2.0 {
		t.Errorf("ratio %v, want capped at 2.0", got)
	}
}

func TestMomentumDeflationOnEscape(t *testing.T) {
	// A cell sits in heavy congestion, then escapes to a low-congestion
	// area: Eq. 12 must produce a negative correction, shrinking r.
	m := NewMomentum(1)
	m.Update([]float64{0.8}, 0.3) // above average
	m.Update([]float64{0.8}, 0.3)
	atPeak := m.Ratios()[0]
	// Escape to below-average (but nonzero) congestion: Eq. 12's deflation
	// branch fires on this transition iteration and must shrink r. (Note
	// s = δ·C_i^t, so an escape straight to C = 0 produces no deflation —
	// that is the published formula's behaviour.)
	m.Update([]float64{0.2}, 0.3)
	after := m.Ratios()[0]
	if after >= atPeak {
		t.Errorf("no deflation after escape: %v → %v", atPeak, after)
	}
}

func TestMomentumDeflationFloorsAtRMin(t *testing.T) {
	m := NewMomentum(1)
	m.Update([]float64{1.5}, 0.2)
	for it := 0; it < 40; it++ {
		// Alternate just enough to keep triggering the deflation branch.
		m.Update([]float64{0.4}, 0.1) // above avg
		m.Update([]float64{0.01}, 0.1)
	}
	if got := m.Ratios()[0]; got < 0.9-1e-12 {
		t.Errorf("ratio %v fell below RMin", got)
	}
}

func TestMomentumStableAtZeroCongestion(t *testing.T) {
	// Once a cell is fully uncongested, the momentum decays and r plateaus
	// (the paper's "inflation persists" behaviour, preventing return to the
	// hotspot).
	m := NewMomentum(1)
	m.Update([]float64{0.5}, 0.1)
	m.Update([]float64{0.5}, 0.1)
	m.Update([]float64{0}, 0.2) // escape triggers deflation (δ·C = 0 here)
	var prev float64
	for it := 0; it < 30; it++ {
		m.Update([]float64{0}, 0.0)
		r := m.Ratios()[0]
		if it > 20 && math.Abs(r-prev) > 1e-6 {
			t.Fatalf("ratio still moving at zero congestion: %v → %v", prev, r)
		}
		prev = r
	}
	if prev < 0.9 || prev > 2.0 {
		t.Errorf("plateau %v outside [RMin, RMax]", prev)
	}
}

func TestMomentumBoundsProperty(t *testing.T) {
	// For any congestion sequence, ratios stay within [RMin, RMax].
	f := func(cs []float64, avgs []float64) bool {
		m := NewMomentum(1)
		for i := 0; i < len(cs) && i < len(avgs); i++ {
			c := math.Abs(math.Mod(cs[i], 5))
			if math.IsNaN(c) || math.IsInf(c, 0) {
				c = 0
			}
			a := math.Abs(math.Mod(avgs[i], 2))
			if math.IsNaN(a) || math.IsInf(a, 0) {
				a = 0
			}
			m.Update([]float64{c}, a)
			r := m.Ratios()[0]
			if r < m.RMin-1e-12 || r > m.RMax+1e-12 || math.IsNaN(r) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestMonotonicNeverShrinks(t *testing.T) {
	m := NewMonotonic(1)
	m.Update([]float64{1.0}, 0.5)
	peak := m.Ratios()[0]
	if peak <= 1 {
		t.Fatalf("no growth under congestion")
	}
	m.Update([]float64{0}, 0)
	m.Update([]float64{0}, 0)
	if got := m.Ratios()[0]; got < peak {
		t.Errorf("monotone baseline shrank: %v → %v", peak, got)
	}
	for it := 0; it < 50; it++ {
		m.Update([]float64{2}, 0.5)
	}
	if got := m.Ratios()[0]; got != 2.0 {
		t.Errorf("monotone cap %v, want 2.0", got)
	}
}

func TestPresentOnlyForgetsImmediately(t *testing.T) {
	p := NewPresentOnly(1)
	p.Update([]float64{0.7}, 0.2)
	if got := p.Ratios()[0]; math.Abs(got-1.7) > 1e-12 {
		t.Fatalf("present-only ratio %v, want 1.7", got)
	}
	p.Update([]float64{0}, 0)
	if got := p.Ratios()[0]; got != 1 {
		t.Errorf("present-only did not forget: %v", got)
	}
	p.Update([]float64{5}, 1)
	if got := p.Ratios()[0]; got != 2.0 {
		t.Errorf("present-only cap %v, want 2.0", got)
	}
}

func TestUpdateRejectsLengthMismatch(t *testing.T) {
	for _, inf := range []Inflator{NewMomentum(2), NewMonotonic(2), NewPresentOnly(2)} {
		if err := inf.Update([]float64{1}, 0); err == nil {
			t.Errorf("%T: length mismatch not caught", inf)
		}
	}
}

func TestSchemesDivergeOnEscapeScenario(t *testing.T) {
	// The scenario from the paper's Sec. I: a cell is congested for a few
	// iterations, then escapes. Present-only drops straight back to 1
	// (risking return), monotone stays pinned high (over-inflation), and
	// momentum settles in between.
	mom := NewMomentum(1)
	mon := NewMonotonic(1)
	pre := NewPresentOnly(1)
	seq := []struct{ c, avg float64 }{
		{0.9, 0.3}, {0.9, 0.3}, {0.9, 0.3}, // congested
		{0.2, 0.3}, {0.1, 0.25}, // escaping gradually
	}
	for _, s := range seq {
		mom.Update([]float64{s.c}, s.avg)
		mon.Update([]float64{s.c}, s.avg)
		pre.Update([]float64{s.c}, s.avg)
	}
	rm, rn, rp := mom.Ratios()[0], mon.Ratios()[0], pre.Ratios()[0]
	if !(rp < rm && rm < rn) {
		t.Errorf("expected present(%v) < momentum(%v) < monotone(%v)", rp, rm, rn)
	}
}
