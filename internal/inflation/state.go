package inflation

import "fmt"

// State is a serializable snapshot of an Inflator. Scheme names the
// concrete type ("momentum", "monotonic" or "present"); the remaining
// fields are populated per scheme — Momentum carries its full Eq. 11–12
// memory, the two baselines only their ratios.
type State struct {
	Scheme string

	R []float64 // all schemes: current per-cell ratios

	// Momentum only.
	DR      []float64
	CPrev   []float64
	AvgPrev float64
	T       int
}

// Capture snapshots an Inflator into a State (deep copies).
func Capture(inf Inflator) State {
	switch m := inf.(type) {
	case *Momentum:
		return State{
			Scheme:  "momentum",
			R:       append([]float64(nil), m.r...),
			DR:      append([]float64(nil), m.dr...),
			CPrev:   append([]float64(nil), m.cPrev...),
			AvgPrev: m.avgPrev,
			T:       m.t,
		}
	case *Monotonic:
		return State{Scheme: "monotonic", R: append([]float64(nil), m.r...)}
	case *PresentOnly:
		return State{Scheme: "present", R: append([]float64(nil), m.r...)}
	default:
		panic("inflation: unknown inflator type")
	}
}

// Restore loads a State into an Inflator of the matching concrete type and
// cell count; subsequent Updates then evolve bitwise-identically to the
// snapshotted inflator.
func Restore(inf Inflator, s State) error {
	switch m := inf.(type) {
	case *Momentum:
		if s.Scheme != "momentum" {
			return fmt.Errorf("inflation: state scheme %q does not match momentum inflator", s.Scheme)
		}
		if len(s.R) != len(m.r) || len(s.DR) != len(m.dr) || len(s.CPrev) != len(m.cPrev) {
			return fmt.Errorf("inflation: state length %d does not match %d cells", len(s.R), len(m.r))
		}
		copy(m.r, s.R)
		copy(m.dr, s.DR)
		copy(m.cPrev, s.CPrev)
		m.avgPrev = s.AvgPrev
		m.t = s.T
		return nil
	case *Monotonic:
		if s.Scheme != "monotonic" {
			return fmt.Errorf("inflation: state scheme %q does not match monotonic inflator", s.Scheme)
		}
		if len(s.R) != len(m.r) {
			return fmt.Errorf("inflation: state length %d does not match %d cells", len(s.R), len(m.r))
		}
		copy(m.r, s.R)
		return nil
	case *PresentOnly:
		if s.Scheme != "present" {
			return fmt.Errorf("inflation: state scheme %q does not match present-only inflator", s.Scheme)
		}
		if len(s.R) != len(m.r) {
			return fmt.Errorf("inflation: state length %d does not match %d cells", len(s.R), len(m.r))
		}
		copy(m.r, s.R)
		return nil
	default:
		panic("inflation: unknown inflator type")
	}
}
