// Package testutil holds small helpers shared across the repo's test
// suites.
package testutil

import (
	"runtime"
	"testing"
	"time"
)

// GoroutineBaseline records the current goroutine count. Take it BEFORE
// the code under test starts any concurrent work.
func GoroutineBaseline() int { return runtime.NumGoroutine() }

// AssertNoGoroutineLeak polls for up to 5 s until the goroutine count is
// back within +2 of the baseline (the runtime may briefly keep a retiring
// worker or two alive) and fails the test otherwise. This is the one
// leak-watch used by the checkpoint, chaos and dashboard suites.
func AssertNoGoroutineLeak(t testing.TB, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline+2 {
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Errorf("goroutines leaked: %d now vs %d baseline", runtime.NumGoroutine(), baseline)
}
