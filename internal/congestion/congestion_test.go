package congestion

import (
	"math"
	"testing"

	"repro/internal/geom"
	"repro/internal/netlist"
	"repro/internal/route"
	"repro/internal/synth"
)

// hotspotSetup builds a design with a dense traffic hotspot in the middle of
// the die (many short nets between clustered cells) and one long horizontal
// two-pin "victim" net whose chord passes through the hotspot.
func hotspotSetup(t testing.TB) (*netlist.Design, *route.Grid, *route.Result, *Model) {
	t.Helper()
	b := netlist.NewBuilder("hotspot", geom.NewRect(0, 0, 256, 256), 8, 1)
	const n = 48
	for i := 0; i < n; i++ {
		b.AddCell("h", netlist.StdCell, 120+float64(i%8)*2, 120+float64(i/8)*2, 2, 8)
	}
	for i := 0; i+1 < n; i++ {
		net := b.AddNet("hn", 1)
		b.Connect(i, net, 0, 0)
		b.Connect(i+1, net, 0, 0)
	}
	// Victim net: two cells at the same y as the hotspot, far left/right.
	va := b.AddCell("va", netlist.StdCell, 20, 126, 2, 8)
	vb := b.AddCell("vb", netlist.StdCell, 236, 126, 2, 8)
	vn := b.AddNet("victim", 1)
	b.Connect(va, vn, 0, 0)
	b.Connect(vb, vn, 0, 0)
	// A multi-pin hub cell inside the hotspot with far more pins than avg.
	hub := b.AddCell("hub", netlist.StdCell, 126, 126, 4, 8)
	for k := 0; k < 8; k++ {
		net := b.AddNet("hubnet", 1)
		b.Connect(hub, net, 0, 0)
		b.Connect(k, net, 0, 0)
	}
	b.SetRouteCapScale(0.12)
	d := b.MustBuild()
	g := route.NewGrid(d, 32)
	res := route.NewRouter(d, g).Route()
	m := New(d, g)
	m.Update(res)
	return d, g, res, m
}

func TestUpdateRequiresMatchingGrid(t *testing.T) {
	d, _, res, _ := hotspotSetup(t)
	other := route.NewGrid(d, 16)
	m2 := New(d, other)
	defer func() {
		if recover() == nil {
			t.Errorf("mismatched grid not caught")
		}
	}()
	m2.Update(res)
}

func TestGradientsBeforeUpdatePanics(t *testing.T) {
	d := synth.MustGenerate("tiny_open")
	g := route.NewGrid(d, 32)
	m := New(d, g)
	if m.Ready() {
		t.Fatalf("Ready before Update")
	}
	defer func() {
		if recover() == nil {
			t.Errorf("Gradients before Update did not panic")
		}
	}()
	m.Gradients(make([]float64, 2*len(d.Cells)))
}

func TestVirtualCellPlacedAtMaxCongestion(t *testing.T) {
	d, _, res, m := hotspotSetup(t)
	_ = d
	p1 := geom.Point{X: 20, Y: 126}
	p2 := geom.Point{X: 236, Y: 126}
	v, ok := m.VirtualCell(p1, p2)
	if !ok {
		t.Fatalf("no virtual cell created across the hotspot")
	}
	// The virtual cell must sit in a G-cell at least as congested as most of
	// the chord; specifically its congestion must equal the max over all
	// interior candidates.
	vc := res.CongestionAt(v.X, v.Y)
	if vc <= 0 {
		t.Fatalf("virtual cell in uncongested G-cell")
	}
	// Scan a dense sampling of the chord: nothing should beat it by much
	// (candidates are the Eq. 7 lattice, so allow small slack).
	maxC := 0.0
	for i := 1; i < 200; i++ {
		tt := float64(i) / 200
		x := p1.X + tt*(p2.X-p1.X)
		c := res.CongestionAt(x, 126)
		if c > maxC {
			maxC = c
		}
	}
	if vc < 0.7*maxC {
		t.Errorf("virtual cell congestion %v far below chord max %v", vc, maxC)
	}
	// And it must be inside the hotspot region (110..150).
	if v.X < 100 || v.X > 160 {
		t.Errorf("virtual cell at x=%v, expected inside hotspot band", v.X)
	}
}

func TestVirtualCellSkipsShortNets(t *testing.T) {
	_, g, _, m := hotspotSetup(t)
	p := geom.Point{X: 50, Y: 50}
	q := geom.Point{X: 50 + g.CellW*0.5, Y: 50}
	if _, ok := m.VirtualCell(p, q); ok {
		t.Errorf("virtual cell created for a sub-G-cell net")
	}
}

func TestVirtualCellSkipsUncongestedNets(t *testing.T) {
	_, _, res, m := hotspotSetup(t)
	// A chord along the top edge, far from the hotspot.
	p := geom.Point{X: 10, Y: 250}
	q := geom.Point{X: 240, Y: 250}
	// Verify precondition: that region is actually uncongested.
	for x := 10.0; x <= 240; x += 8 {
		if res.CongestionAt(x, 250) > 0 {
			t.Skip("top edge unexpectedly congested")
		}
	}
	if _, ok := m.VirtualCell(p, q); ok {
		t.Errorf("virtual cell created on an uncongested chord")
	}
}

func TestTwoPinGradientIsPerpendicular(t *testing.T) {
	d, _, _, m := hotspotSetup(t)
	grad := make([]float64, 2*len(d.Cells))
	m.Gradients(grad)
	// The victim net is horizontal, so its cells' congestion gradient must
	// be (near-)purely vertical (projection on the segment normal).
	va, vb := 48, 49
	for _, ci := range []int{va, vb} {
		gx, gy := grad[2*ci], grad[2*ci+1]
		// The victim cells also belong to no other net, so any gradient here
		// comes from Algorithm 1.
		if gy == 0 && gx == 0 {
			t.Fatalf("victim cell %d received no congestion gradient", ci)
		}
		if math.Abs(gx) > 1e-9+0.02*math.Abs(gy) {
			t.Errorf("victim cell %d gradient (%v, %v) not perpendicular to its horizontal net", ci, gx, gy)
		}
	}
	// Both cells must be pushed the SAME direction (the net moves rigidly).
	if grad[2*va+1]*grad[2*vb+1] < 0 {
		t.Errorf("victim cells pushed in opposite directions")
	}
}

func TestCloserPinGetsLargerForce(t *testing.T) {
	// Eq. 9: the cell nearer the virtual cell receives the larger gradient.
	b := netlist.NewBuilder("asym", geom.NewRect(0, 0, 256, 256), 8, 1)
	const n = 48
	for i := 0; i < n; i++ {
		b.AddCell("h", netlist.StdCell, 60+float64(i%8)*2, 120+float64(i/8)*2, 2, 8)
	}
	for i := 0; i+1 < n; i++ {
		net := b.AddNet("hn", 1)
		b.Connect(i, net, 0, 0)
		b.Connect(i+1, net, 0, 0)
	}
	// Victim with hotspot near its LEFT pin.
	va := b.AddCell("va", netlist.StdCell, 40, 126, 2, 8)
	vb := b.AddCell("vb", netlist.StdCell, 240, 126, 2, 8)
	vn := b.AddNet("victim", 1)
	b.Connect(va, vn, 0, 0)
	b.Connect(vb, vn, 0, 0)
	b.SetRouteCapScale(0.12)
	d := b.MustBuild()
	g := route.NewGrid(d, 32)
	res := route.NewRouter(d, g).Route()
	m := New(d, g)
	m.Update(res)
	grad := make([]float64, 2*len(d.Cells))
	m.Gradients(grad)
	fa := math.Hypot(grad[2*va], grad[2*va+1])
	fb := math.Hypot(grad[2*vb], grad[2*vb+1])
	if fa == 0 && fb == 0 {
		t.Skip("no virtual cell created (hotspot missed the chord)")
	}
	if fa <= fb {
		t.Errorf("near pin force %v not larger than far pin force %v", fa, fb)
	}
}

func TestMultiPinCellReceivesFieldForce(t *testing.T) {
	d, _, res, m := hotspotSetup(t)
	hub := 50 // the 12-pin hub inside the hotspot
	if float64(d.Cells[hub].NumPins) <= d.AvgPinsPerCell() {
		t.Fatalf("test setup: hub pin count not above average")
	}
	grad := make([]float64, 2*len(d.Cells))
	st := m.Gradients(grad)
	hubCong := res.CongestionAt(d.Cells[hub].X, d.Cells[hub].Y)
	if hubCong > m.UtilThreshold {
		if st.MultiPinHits == 0 {
			t.Errorf("no multi-pin force applied despite hub congestion %v", hubCong)
		}
		if grad[2*hub] == 0 && grad[2*hub+1] == 0 {
			t.Errorf("hub received no gradient")
		}
	} else {
		// Threshold not reached: the hub must NOT receive multi-pin force
		// (it has no two-pin nets crossing congestion either — but its
		// hub nets are two-pin, so just check the stat accounting).
		t.Logf("hub congestion %v below threshold %v; multiPinHits=%d", hubCong, m.UtilThreshold, st.MultiPinHits)
	}
}

func TestGradientZeroWithoutCongestion(t *testing.T) {
	// An uncongested design yields zero virtual cells and zero gradients.
	b := netlist.NewBuilder("calm", geom.NewRect(0, 0, 256, 256), 8, 1)
	b.AddCell("a", netlist.StdCell, 20, 20, 2, 8)
	b.AddCell("b", netlist.StdCell, 200, 200, 2, 8)
	n := b.AddNet("n", 1)
	b.Connect(0, n, 0, 0)
	b.Connect(1, n, 0, 0)
	b.SetRouteCapScale(10)
	d := b.MustBuild()
	g := route.NewGrid(d, 32)
	res := route.NewRouter(d, g).Route()
	if res.OverflowCells != 0 {
		t.Fatalf("expected no overflow in calm design")
	}
	m := New(d, g)
	m.Update(res)
	grad := make([]float64, 2*len(d.Cells))
	st := m.Gradients(grad)
	if st.VirtualCells != 0 {
		t.Errorf("virtual cells created without congestion")
	}
	for i, gv := range grad {
		if gv != 0 {
			t.Errorf("nonzero gradient at %d without congestion", i)
		}
	}
	if st.GradL1 != 0 {
		t.Errorf("GradL1 = %v, want 0", st.GradL1)
	}
}

func TestLambda2Formula(t *testing.T) {
	d, _, _, m := hotspotSetup(t)
	grad := make([]float64, 2*len(d.Cells))
	st := m.Gradients(grad)
	if st.GradL1 == 0 {
		t.Skip("no congestion gradient")
	}
	wl := 1000.0
	l2 := m.Lambda2(wl, st)
	nMov := 0
	for i := range d.Cells {
		if d.Cells[i].Movable() {
			nMov++
		}
	}
	want := (2 * float64(st.CongestedCell) / float64(nMov)) * wl / st.GradL1
	if math.Abs(l2-want) > 1e-12 {
		t.Errorf("Lambda2 = %v, want %v", l2, want)
	}
	// Zero congestion gradient → λ2 = 0.
	if m.Lambda2(wl, Stats{}) != 0 {
		t.Errorf("Lambda2 with zero gradient not 0")
	}
}

func TestPenaltyCountsVirtualAndMultiPinCells(t *testing.T) {
	d, _, _, m := hotspotSetup(t)
	grad := make([]float64, 2*len(d.Cells))
	st := m.Gradients(grad)
	p := m.Penalty()
	if st.VirtualCells > 0 && p == 0 {
		t.Errorf("penalty zero despite %d virtual cells", st.VirtualCells)
	}
	if math.IsNaN(p) || math.IsInf(p, 0) {
		t.Errorf("penalty not finite: %v", p)
	}
}

func TestMidpointAblationDiffers(t *testing.T) {
	// Build a hotspot OFF-center along the victim chord so the Eq. 8
	// max-congestion rule and the midpoint ablation choose different points.
	b := netlist.NewBuilder("offcenter", geom.NewRect(0, 0, 256, 256), 8, 1)
	const n = 48
	for i := 0; i < n; i++ {
		b.AddCell("h", netlist.StdCell, 60+float64(i%8)*2, 120+float64(i/8)*2, 2, 8)
	}
	for i := 0; i+1 < n; i++ {
		net := b.AddNet("hn", 1)
		b.Connect(i, net, 0, 0)
		b.Connect(i+1, net, 0, 0)
	}
	va := b.AddCell("va", netlist.StdCell, 40, 126, 2, 8)
	vb := b.AddCell("vb", netlist.StdCell, 240, 126, 2, 8)
	vn := b.AddNet("victim", 1)
	b.Connect(va, vn, 0, 0)
	b.Connect(vb, vn, 0, 0)
	b.SetRouteCapScale(0.12)
	d := b.MustBuild()
	g := route.NewGrid(d, 32)
	res := route.NewRouter(d, g).Route()

	m1 := New(d, g)
	m1.Update(res)
	grad1 := make([]float64, 2*len(d.Cells))
	st1 := m1.Gradients(grad1)
	if st1.VirtualCells == 0 {
		t.Skip("no congestion crossing the victim chord")
	}

	m2 := New(d, g)
	m2.VirtualAtMidpoint = true
	m2.Update(res)
	grad2 := make([]float64, 2*len(d.Cells))
	m2.Gradients(grad2)

	same := true
	for i := range grad1 {
		if math.Abs(grad1[i]-grad2[i]) > 1e-12 {
			same = false
			break
		}
	}
	if same {
		t.Errorf("midpoint ablation produced identical gradients")
	}
}

func TestDescentReducesPotentialAtVictim(t *testing.T) {
	// Moving the victim net along the negative gradient (descent) must
	// reduce the congestion potential sampled along the chord.
	d, _, _, m := hotspotSetup(t)
	grad := make([]float64, 2*len(d.Cells))
	m.Gradients(grad)
	va, vb := 48, 49
	gy := grad[2*va+1]
	if gy == 0 {
		t.Skip("no gradient on victim")
	}
	mid := func(off float64) float64 {
		return m.PotentialAt((d.Cells[va].X+d.Cells[vb].X)/2, 126+off)
	}
	step := -8.0 * sign(gy) // descend: negative gradient direction
	if mid(step) >= mid(0) {
		t.Errorf("descent step did not reduce congestion potential: %v → %v", mid(0), mid(step))
	}
}

func sign(v float64) float64 {
	if v < 0 {
		return -1
	}
	return 1
}
