// Package congestion implements the paper's primary contribution (Sec. II-B
// and III-A): a differentiable global-congestion function developed from
// Poisson's equation, with net-driven gradient updates.
//
// The routing utilization ρ = Dmd/Cap on the G-cell grid is fed to the same
// spectral Poisson solver the density term uses, yielding a congestion
// potential ψ_c and field E_c = −∇ψ_c. Cell congestion gradients are NOT the
// raw field (that only handles local congestion); instead:
//
//   - every two-pin net gets a virtual standard cell at the most congested
//     point of its pin-connecting segment (Eq. 6–8), and the virtual cell's
//     field force, projected on the segment normal and levered by L/(2d_iv)
//     (Eq. 9, Algorithm 1), is transferred to the net's two cells — moving
//     the whole net sideways out of the congested region;
//   - cells with more pins than the design average sitting in G-cells with
//     congestion above 0.7 receive the raw field force (Algorithm 2);
//   - the penalty weight λ₂ adapts every iteration per Eq. 10.
package congestion

import (
	"math"

	"repro/internal/geom"
	"repro/internal/netlist"
	"repro/internal/parallel"
	"repro/internal/poisson"
	"repro/internal/route"
)

// Model computes the congestion potential, penalty C(x,y) and the
// net-driven congestion gradients for one design on one routing grid.
type Model struct {
	// UtilThreshold is Algorithm 2's congestion threshold for multi-pin
	// cells (paper: 0.7 on the Eq. 3 congestion value).
	UtilThreshold float64
	// MaxLeverage clamps the L/(2·d_iv) factor of Eq. 9 so a virtual cell
	// landing on top of a pin cannot produce an unbounded force.
	MaxLeverage float64
	// VirtualAtMidpoint switches Eq. 8 off for the ablation study: the
	// virtual cell is placed at the segment midpoint instead of the
	// maximum-congestion candidate.
	VirtualAtMidpoint bool
	// Workers caps the goroutines of the embedded Poisson solve; 0 selects
	// runtime.NumCPU(). Any setting produces bitwise-identical fields.
	Workers int

	d *netlist.Design
	g *route.Grid

	solver *poisson.Solver
	field  *poisson.Grid
	rho    []float64

	stdArea float64 // virtual cell area: the average movable cell footprint
	avgPins float64 // n̄ of Algorithm 2

	res *route.Result // last routing result fed to Update

	// virtual cell bookkeeping from the last Gradients call, reused by
	// Penalty so V' matches the gradients.
	virtX, virtY []float64
}

// Stats summarizes one gradient assembly pass.
type Stats struct {
	VirtualCells  int     // virtual cells created (two-pin nets over congestion)
	MultiPinHits  int     // multi-pin cell force applications
	CongestedCell int     // N_C of Eq. 10: cells whose G-cell has C > 0
	GradL1        float64 // ‖∇C‖₁ over movable cells
}

// New creates a congestion model for the design on the routing grid.
func New(d *netlist.Design, g *route.Grid) *Model {
	solver, err := poisson.NewSolver(g.NX, g.NY)
	if err != nil {
		// route.NewGrid produces power-of-two dimensions by construction; a
		// failure here is a programming error, not a caller mistake.
		panic(err)
	}
	m := &Model{
		UtilThreshold: 0.7,
		MaxLeverage:   4.0,
		d:             d,
		g:             g,
		solver:        solver,
		rho:           make([]float64, g.NX*g.NY),
		avgPins:       d.AvgPinsPerCell(),
	}
	m.field = m.solver.NewGrid()
	var area float64
	var n int
	for i := range d.Cells {
		if d.Cells[i].Movable() {
			area += d.Cells[i].Area()
			n++
		}
	}
	if n > 0 {
		m.stdArea = area / float64(n)
	} else {
		m.stdArea = d.RowHeight * d.SiteWidth
	}
	return m
}

// Update ingests a fresh routing result: ρ = Dmd/Cap per G-cell (Sec. II-B)
// is solved for the congestion potential and field.
func (m *Model) Update(res *route.Result) {
	if res.Grid != m.g {
		panic("congestion: routing result from a different grid")
	}
	m.res = res
	copy(m.rho, res.Util)
	m.solver.Workers = m.Workers
	m.solver.Solve(m.rho, m.field)
}

// SolverStats returns the timing of the embedded Poisson solver's parallel
// sections (telemetry: the parallel.poisson speedup gauge).
func (m *Model) SolverStats() parallel.Timing { return m.solver.Stats() }

// Ready reports whether Update has been called at least once.
func (m *Model) Ready() bool { return m.res != nil }

// State returns deep copies of the utilization and congestion maps of the
// last Update (nil, nil before the first Update). Together with the grid —
// which is a pure function of the design — they are the model's complete
// serializable state: the potential field is re-derived from them.
func (m *Model) State() (util, congestion []float64) {
	if m.res == nil {
		return nil, nil
	}
	return append([]float64(nil), m.res.Util...),
		append([]float64(nil), m.res.Congestion...)
}

// Restore rebuilds the model as if Update had been called with a routing
// result carrying these maps: the Poisson solve is re-run, which is a pure
// deterministic function of util, so the restored potential and field are
// bitwise-identical to the ones the snapshotted model held.
func (m *Model) Restore(util, congestion []float64) {
	n := m.g.NX * m.g.NY
	if len(util) != n || len(congestion) != n {
		panic("congestion: restore map length mismatch")
	}
	m.res = &route.Result{
		Grid:       m.g,
		Util:       append([]float64(nil), util...),
		Congestion: append([]float64(nil), congestion...),
	}
	copy(m.rho, util)
	m.solver.Workers = m.Workers
	m.solver.Solve(m.rho, m.field)
}

// sample bilinearly interpolates a field array at die coordinates (x, y).
func (m *Model) sample(f []float64, x, y float64) float64 {
	fx := (x-m.g.Die.Lo.X)/m.g.CellW - 0.5
	fy := (y-m.g.Die.Lo.Y)/m.g.CellH - 0.5
	x0 := int(math.Floor(fx))
	y0 := int(math.Floor(fy))
	tx := geom.Clamp(fx-float64(x0), 0, 1)
	ty := geom.Clamp(fy-float64(y0), 0, 1)
	x0 = geom.ClampInt(x0, 0, m.g.NX-1)
	y0 = geom.ClampInt(y0, 0, m.g.NY-1)
	x1 := geom.ClampInt(x0+1, 0, m.g.NX-1)
	y1 := geom.ClampInt(y0+1, 0, m.g.NY-1)
	return f[y0*m.g.NX+x0]*(1-tx)*(1-ty) + f[y0*m.g.NX+x1]*tx*(1-ty) +
		f[y1*m.g.NX+x0]*(1-tx)*ty + f[y1*m.g.NX+x1]*tx*ty
}

// FieldAt returns the congestion field E_c = −∇ψ_c at (x, y).
func (m *Model) FieldAt(x, y float64) (float64, float64) {
	return m.sample(m.field.Ex, x, y), m.sample(m.field.Ey, x, y)
}

// PotentialAt returns the congestion potential ψ_c at (x, y).
func (m *Model) PotentialAt(x, y float64) float64 {
	return m.sample(m.field.Psi, x, y)
}

// congestionAtPoint reads the Eq. 3 congestion of the G-cell containing p.
func (m *Model) congestionAtPoint(x, y float64) float64 {
	cx, cy := m.g.CellAt(x, y)
	return m.res.Congestion[cy*m.g.NX+cx]
}

// VirtualCell computes Eq. 6–8 for a two-pin net with pin positions p1, p2:
// the segment is sampled at k interior candidates, and the candidate in the
// most congested G-cell becomes the virtual cell location. ok is false when
// the segment spans no interior candidate (k = 0) or no candidate sees any
// congestion — in both cases the net needs no moving.
func (m *Model) VirtualCell(p1, p2 geom.Point) (pos geom.Point, ok bool) {
	k := int(math.Max(
		math.Floor(math.Abs(p1.X-p2.X)/m.g.CellW),
		math.Floor(math.Abs(p1.Y-p2.Y)/m.g.CellH),
	))
	if k < 1 {
		return geom.Point{}, false
	}
	if m.VirtualAtMidpoint {
		// Ablation variant: ignore the congestion profile.
		mid := geom.Point{X: (p1.X + p2.X) / 2, Y: (p1.Y + p2.Y) / 2}
		if m.congestionAtPoint(mid.X, mid.Y) <= 0 {
			return geom.Point{}, false
		}
		return mid, true
	}
	bestC := 0.0
	var best geom.Point
	found := false
	for i := 1; i <= k; i++ {
		t := float64(i) / float64(k+1)
		cand := geom.Point{X: p1.X + t*(p2.X-p1.X), Y: p1.Y + t*(p2.Y-p1.Y)}
		c := m.congestionAtPoint(cand.X, cand.Y)
		if c > bestC {
			bestC = c
			best = cand
			found = true
		}
	}
	return best, found
}

// Gradients assembles the congestion gradient ∂C/∂(cell center) following
// Algorithm 2 (which invokes Algorithm 1 per two-pin net) and ACCUMULATES it
// into grad (layout [gx0,gy0,...], length 2·len(Cells)); callers zero the
// buffer first ("initially, we set the congestion gradient of all cells to
// 0"). Returns assembly statistics. Update must have been called.
func (m *Model) Gradients(grad []float64) Stats {
	if m.res == nil {
		panic("congestion: Gradients before Update")
	}
	if len(grad) != 2*len(m.d.Cells) {
		panic("congestion: gradient length mismatch")
	}
	var st Stats
	m.virtX = m.virtX[:0]
	m.virtY = m.virtY[:0]

	for e := range m.d.Nets {
		net := &m.d.Nets[e]
		deg := net.Degree()
		if deg < 2 {
			continue
		}
		// Algorithm 1: two-pin net moving.
		if deg == 2 {
			m.twoPinGradient(net, grad, &st)
		}
		// Algorithm 2 lines 7–15: multi-pin cell forces, per net.
		for _, pi := range net.Pins {
			ci := m.d.Pins[pi].Cell
			c := &m.d.Cells[ci]
			if !c.Movable() || float64(c.NumPins) <= m.avgPins {
				continue
			}
			if m.congestionAtPoint(c.X, c.Y) <= m.UtilThreshold {
				continue
			}
			ex, ey := m.FieldAt(c.X, c.Y)
			a := c.Area()
			// Force A·E pushes away from congestion; the gradient of the
			// penalty is its negation.
			grad[2*ci] -= a * ex
			grad[2*ci+1] -= a * ey
			st.MultiPinHits++
		}
	}

	// Stats for Eq. 10.
	for ci := range m.d.Cells {
		c := &m.d.Cells[ci]
		if !c.Movable() {
			continue
		}
		if m.congestionAtPoint(c.X, c.Y) > 0 {
			st.CongestedCell++
		}
		st.GradL1 += math.Abs(grad[2*ci]) + math.Abs(grad[2*ci+1])
	}
	return st
}

// twoPinGradient is Algorithm 1: create the virtual cell, project its field
// force on the segment normal, and lever it onto the two cells.
func (m *Model) twoPinGradient(net *netlist.Net, grad []float64, st *Stats) {
	p1 := m.d.PinPos(net.Pins[0])
	p2 := m.d.PinPos(net.Pins[1])
	v, ok := m.VirtualCell(p1, p2)
	if !ok {
		return
	}
	st.VirtualCells++
	m.virtX = append(m.virtX, v.X)
	m.virtY = append(m.virtY, v.Y)

	ex, ey := m.FieldAt(v.X, v.Y)
	fv := geom.Point{X: m.stdArea * ex, Y: m.stdArea * ey} // ∇C_cv as a force

	L := p1.Dist(p2)
	if L == 0 {
		return
	}
	// Unit normal of the segment, oriented to an acute angle with the force.
	n := geom.Point{X: -(p2.Y - p1.Y) / L, Y: (p2.X - p1.X) / L}
	if n.Dot(fv) < 0 {
		n = n.Scale(-1)
	}
	// Projection ∇C⊥ (Fig. 3b).
	fperp := n.Scale(fv.Dot(n))

	for idx, pi := range []int{net.Pins[0], net.Pins[1]} {
		p := p1
		if idx == 1 {
			p = p2
		}
		ci := m.d.Pins[pi].Cell
		if !m.d.Cells[ci].Movable() {
			continue
		}
		div := p.Dist(v)
		factor := m.MaxLeverage
		if div > 0 {
			factor = math.Min(L/(2*div), m.MaxLeverage)
		}
		grad[2*ci] -= factor * fperp.X
		grad[2*ci+1] -= factor * fperp.Y
	}
}

// Penalty returns C(x,y) = ½·Σ_{i∈V'} A_i·ψ_i (Sec. II-B) where V' is the
// multi-pin cells (pin count above average) plus the virtual cells created
// by the most recent Gradients call.
func (m *Model) Penalty() float64 {
	if m.res == nil {
		panic("congestion: Penalty before Update")
	}
	var sum float64
	for ci := range m.d.Cells {
		c := &m.d.Cells[ci]
		if !c.Movable() || float64(c.NumPins) <= m.avgPins {
			continue
		}
		sum += c.Area() * m.PotentialAt(c.X, c.Y)
	}
	for i := range m.virtX {
		sum += m.stdArea * m.PotentialAt(m.virtX[i], m.virtY[i])
	}
	return sum / 2
}

// Lambda2 computes the adaptive congestion weight of Eq. 10:
//
//	λ₂ = (2·N_C/N) · ‖∇W‖₁ / ‖∇C‖₁
//
// wlGradL1 is ‖∇W‖₁ over movable cells; st is the Stats from the matching
// Gradients call. A zero congestion gradient yields λ₂ = 0 (nothing to push).
func (m *Model) Lambda2(wlGradL1 float64, st Stats) float64 {
	n := 0
	for ci := range m.d.Cells {
		if m.d.Cells[ci].Movable() {
			n++
		}
	}
	if n == 0 || st.GradL1 == 0 {
		return 0
	}
	return (2 * float64(st.CongestedCell) / float64(n)) * (wlGradL1 / st.GradL1)
}
