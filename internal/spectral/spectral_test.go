package spectral

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func mustFFT(tb testing.TB, n int) *FFT {
	tb.Helper()
	f, err := NewFFT(n)
	if err != nil {
		tb.Fatal(err)
	}
	return f
}

func mustTrig(tb testing.TB, n int) *Trig {
	tb.Helper()
	tr, err := NewTrig(n)
	if err != nil {
		tb.Fatal(err)
	}
	return tr
}

// naiveDFT computes the forward DFT directly, O(n^2), as the oracle.
func naiveDFT(re, im []float64, sign float64) ([]float64, []float64) {
	n := len(re)
	or := make([]float64, n)
	oi := make([]float64, n)
	for k := 0; k < n; k++ {
		for j := 0; j < n; j++ {
			ang := sign * 2 * math.Pi * float64(j) * float64(k) / float64(n)
			c, s := math.Cos(ang), math.Sin(ang)
			or[k] += re[j]*c - im[j]*s
			oi[k] += re[j]*s + im[j]*c
		}
	}
	return or, oi
}

func TestIsPow2(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8, 1024} {
		if !IsPow2(n) {
			t.Errorf("IsPow2(%d) = false", n)
		}
	}
	for _, n := range []int{0, -4, 3, 6, 12, 1000} {
		if IsPow2(n) {
			t.Errorf("IsPow2(%d) = true", n)
		}
	}
}

func TestNextPow2(t *testing.T) {
	cases := map[int]int{1: 1, 2: 2, 3: 4, 5: 8, 8: 8, 9: 16, 1000: 1024}
	for n, want := range cases {
		if got := NextPow2(n); got != want {
			t.Errorf("NextPow2(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestFFTMatchesNaiveDFT(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 4, 8, 16, 64} {
		re := make([]float64, n)
		im := make([]float64, n)
		for i := range re {
			re[i] = rng.NormFloat64()
			im[i] = rng.NormFloat64()
		}
		wantRe, wantIm := naiveDFT(re, im, -1)
		f := mustFFT(t, n)
		gotRe := append([]float64(nil), re...)
		gotIm := append([]float64(nil), im...)
		f.Forward(gotRe, gotIm)
		for i := 0; i < n; i++ {
			if math.Abs(gotRe[i]-wantRe[i]) > 1e-9 || math.Abs(gotIm[i]-wantIm[i]) > 1e-9 {
				t.Fatalf("n=%d bin %d: got (%g,%g), want (%g,%g)", n, i, gotRe[i], gotIm[i], wantRe[i], wantIm[i])
			}
		}
	}
}

func TestFFTRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := 128
	f := mustFFT(t, n)
	re := make([]float64, n)
	im := make([]float64, n)
	for i := range re {
		re[i] = rng.NormFloat64()
		im[i] = rng.NormFloat64()
	}
	origRe := append([]float64(nil), re...)
	origIm := append([]float64(nil), im...)
	f.Forward(re, im)
	f.Inverse(re, im)
	for i := 0; i < n; i++ {
		if math.Abs(re[i]/float64(n)-origRe[i]) > 1e-9 || math.Abs(im[i]/float64(n)-origIm[i]) > 1e-9 {
			t.Fatalf("round trip failed at %d", i)
		}
	}
}

func TestFFTLinearityProperty(t *testing.T) {
	n := 32
	f := mustFFT(t, n)
	apply := func(x []float64) ([]float64, []float64) {
		re := append([]float64(nil), x...)
		im := make([]float64, n)
		f.Forward(re, im)
		return re, im
	}
	prop := func(seed int64, a, b float64) bool {
		if math.IsNaN(a) || math.IsInf(a, 0) || math.IsNaN(b) || math.IsInf(b, 0) {
			return true
		}
		a, b = math.Mod(a, 10), math.Mod(b, 10)
		rng := rand.New(rand.NewSource(seed))
		x := make([]float64, n)
		y := make([]float64, n)
		z := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
			y[i] = rng.NormFloat64()
			z[i] = a*x[i] + b*y[i]
		}
		xr, xi := apply(x)
		yr, yi := apply(y)
		zr, zi := apply(z)
		for i := 0; i < n; i++ {
			if math.Abs(zr[i]-(a*xr[i]+b*yr[i])) > 1e-7 || math.Abs(zi[i]-(a*xi[i]+b*yi[i])) > 1e-7 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestFFTParseval(t *testing.T) {
	n := 64
	f := mustFFT(t, n)
	rng := rand.New(rand.NewSource(3))
	re := make([]float64, n)
	im := make([]float64, n)
	var timeE float64
	for i := range re {
		re[i] = rng.NormFloat64()
		im[i] = rng.NormFloat64()
		timeE += re[i]*re[i] + im[i]*im[i]
	}
	f.Forward(re, im)
	var freqE float64
	for i := range re {
		freqE += re[i]*re[i] + im[i]*im[i]
	}
	if math.Abs(freqE/float64(n)-timeE) > 1e-8*timeE {
		t.Errorf("Parseval violated: time %g freq/n %g", timeE, freqE/float64(n))
	}
}

func TestNewFFTRejectsNonPow2(t *testing.T) {
	if _, err := NewFFT(12); !errors.Is(err, ErrNotPow2) {
		t.Errorf("NewFFT(12) error = %v, want ErrNotPow2", err)
	}
	if _, err := NewFFT(0); !errors.Is(err, ErrNotPow2) {
		t.Errorf("NewFFT(0) error = %v, want ErrNotPow2", err)
	}
	if _, err := NewTrig(12); !errors.Is(err, ErrNotPow2) {
		t.Errorf("NewTrig(12) error = %v, want ErrNotPow2", err)
	}
}

// naiveAnalyzeCos is the O(n^2) oracle for the DCT-II used by the solver.
func naiveAnalyzeCos(f []float64) []float64 {
	n := len(f)
	out := make([]float64, n)
	for u := 0; u < n; u++ {
		for x := 0; x < n; x++ {
			out[u] += f[x] * math.Cos(math.Pi*float64(u)*(float64(x)+0.5)/float64(n))
		}
	}
	return out
}

func naiveSynth(F []float64) (cosOut, sinOut []float64) {
	n := len(F)
	cosOut = make([]float64, n)
	sinOut = make([]float64, n)
	for x := 0; x < n; x++ {
		for u := 0; u < n; u++ {
			ang := math.Pi * float64(u) * (float64(x) + 0.5) / float64(n)
			cosOut[x] += F[u] * math.Cos(ang)
			sinOut[x] += F[u] * math.Sin(ang)
		}
	}
	return
}

func TestAnalyzeCosMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, n := range []int{2, 4, 8, 32} {
		f := make([]float64, n)
		for i := range f {
			f[i] = rng.NormFloat64()
		}
		want := naiveAnalyzeCos(f)
		tr := mustTrig(t, n)
		got := make([]float64, n)
		tr.AnalyzeCos(got, f)
		for i := range got {
			if math.Abs(got[i]-want[i]) > 1e-9 {
				t.Fatalf("n=%d coeff %d: got %g want %g", n, i, got[i], want[i])
			}
		}
	}
}

func TestSynthCosSinMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, n := range []int{2, 4, 16, 64} {
		F := make([]float64, n)
		for i := range F {
			F[i] = rng.NormFloat64()
		}
		wantC, wantS := naiveSynth(F)
		tr := mustTrig(t, n)
		gotC := make([]float64, n)
		gotS := make([]float64, n)
		tr.SynthCosSin(gotC, gotS, F)
		for i := 0; i < n; i++ {
			if math.Abs(gotC[i]-wantC[i]) > 1e-9 {
				t.Fatalf("n=%d cos[%d]: got %g want %g", n, i, gotC[i], wantC[i])
			}
			if math.Abs(gotS[i]-wantS[i]) > 1e-9 {
				t.Fatalf("n=%d sin[%d]: got %g want %g", n, i, gotS[i], wantS[i])
			}
		}
	}
}

func TestAnalyzeSynthRoundTrip(t *testing.T) {
	// DCT-II followed by properly scaled cosine synthesis reconstructs f.
	rng := rand.New(rand.NewSource(6))
	n := 64
	tr := mustTrig(t, n)
	f := make([]float64, n)
	for i := range f {
		f[i] = rng.NormFloat64()
	}
	F := make([]float64, n)
	tr.AnalyzeCos(F, f)
	// Scale: f[x] = (1/n)·(F[0] + 2·Σ_{u>0} F[u] cos(...)).
	F[0] /= float64(n)
	for u := 1; u < n; u++ {
		F[u] *= 2 / float64(n)
	}
	got := make([]float64, n)
	tr.SynthCosSin(got, nil, F)
	for i := range got {
		if math.Abs(got[i]-f[i]) > 1e-9 {
			t.Fatalf("round trip mismatch at %d: got %g want %g", i, got[i], f[i])
		}
	}
}

func TestSynthNilOutputs(t *testing.T) {
	tr := mustTrig(t, 8)
	F := make([]float64, 8)
	F[1] = 1
	// Must not panic with either output nil.
	tr.SynthCosSin(nil, nil, F)
	out := make([]float64, 8)
	tr.SynthCosSin(out, nil, F)
	tr.SynthCosSin(nil, out, F)
}

func BenchmarkFFT1024(b *testing.B) {
	n := 1024
	f := mustFFT(b, n)
	re := make([]float64, n)
	im := make([]float64, n)
	for i := range re {
		re[i] = float64(i % 7)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Forward(re, im)
	}
}

func BenchmarkAnalyzeCos256(b *testing.B) {
	n := 256
	tr := mustTrig(b, n)
	f := make([]float64, n)
	out := make([]float64, n)
	for i := range f {
		f[i] = float64(i % 5)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.AnalyzeCos(out, f)
	}
}
