// Package spectral implements the fast trigonometric transforms underlying
// the electrostatic placement engine: a radix-2 complex FFT and, built on it,
// the half-sample cosine analysis (DCT-II) and combined cosine/sine synthesis
// used by the spectral Poisson solver of ePlace (Lu et al., TODAES 2015).
//
// All lengths must be powers of two; the Poisson grid is sized accordingly.
package spectral

import (
	"errors"
	"fmt"
	"math"
	"math/bits"
)

// ErrNotPow2 is the typed failure of the transform constructors: the
// requested length is not a positive power of two. Callers match it with
// errors.Is; the wrapping message carries the offending length.
var ErrNotPow2 = errors.New("length is not a power of two")

// IsPow2 reports whether n is a positive power of two.
func IsPow2(n int) bool { return n > 0 && n&(n-1) == 0 }

// NextPow2 returns the smallest power of two >= n (n must be positive).
func NextPow2(n int) int {
	if n <= 1 {
		return 1
	}
	return 1 << bits.Len(uint(n-1))
}

// FFT holds precomputed twiddle factors and bit-reversal tables for a fixed
// power-of-two length, so repeated transforms allocate nothing.
type FFT struct {
	n    int
	rev  []int
	cosT []float64 // cos(2πk/n), k = 0..n/2-1
	sinT []float64 // sin(2πk/n)
}

// NewFFT creates a transform plan of length n. n must be a power of two;
// any other length fails with an error matching ErrNotPow2.
func NewFFT(n int) (*FFT, error) {
	if !IsPow2(n) {
		return nil, fmt.Errorf("spectral: FFT length %d: %w", n, ErrNotPow2)
	}
	f := &FFT{n: n, rev: make([]int, n), cosT: make([]float64, n/2), sinT: make([]float64, n/2)}
	shift := bits.LeadingZeros(uint(n)) + 1
	for i := 0; i < n; i++ {
		f.rev[i] = int(bits.Reverse(uint(i)) >> shift)
	}
	for k := 0; k < n/2; k++ {
		ang := 2 * math.Pi * float64(k) / float64(n)
		f.cosT[k] = math.Cos(ang)
		f.sinT[k] = math.Sin(ang)
	}
	return f, nil
}

// Len returns the transform length.
func (f *FFT) Len() int { return f.n }

// Forward computes the in-place forward DFT
//
//	X[k] = Σ_j x[j] · e^{-2πi jk/n}
//
// on the interleaved real/imag slices re, im (each of length n).
func (f *FFT) Forward(re, im []float64) { f.transform(re, im, -1) }

// Inverse computes the in-place unnormalized inverse DFT
//
//	x[j] = Σ_k X[k] · e^{+2πi jk/n}
//
// Callers divide by n when they need the normalized inverse.
func (f *FFT) Inverse(re, im []float64) { f.transform(re, im, +1) }

func (f *FFT) transform(re, im []float64, sign float64) {
	n := f.n
	if len(re) != n || len(im) != n {
		panic("spectral: slice length does not match FFT plan")
	}
	// Bit-reversal permutation.
	for i, j := range f.rev {
		if i < j {
			re[i], re[j] = re[j], re[i]
			im[i], im[j] = im[j], im[i]
		}
	}
	// Iterative Cooley-Tukey butterflies.
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		step := n / size
		for base := 0; base < n; base += size {
			k := 0
			for off := base; off < base+half; off++ {
				wr := f.cosT[k]
				wi := sign * f.sinT[k]
				p := off + half
				tr := re[p]*wr - im[p]*wi
				ti := re[p]*wi + im[p]*wr
				re[p] = re[off] - tr
				im[p] = im[off] - ti
				re[off] += tr
				im[off] += ti
				k += step
			}
		}
	}
}
