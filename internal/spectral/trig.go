package spectral

import (
	"fmt"
	"math"
)

// Trig provides half-sample cosine analysis and cosine/sine synthesis of a
// fixed power-of-two length n, sharing one length-2n FFT plan. These are the
// 1-D building blocks of the spectral Poisson solver:
//
//	AnalyzeCos:  F[u] = Σ_{x=0}^{n-1} f[x] · cos(π u (x+½) / n)        (DCT-II)
//	SynthCosSin: c[x] = Σ_{u=0}^{n-1} F[u] · cos(π u (x+½) / n)        (DCT-III-like)
//	             s[x] = Σ_{u=0}^{n-1} F[u] · sin(π u (x+½) / n)        (DST synthesis)
//
// The cos/sin pair is produced by a single complex FFT because both are the
// real and imaginary parts of the same exponential sum — the placer needs
// exactly this pairing (potential uses cos, field uses sin).
type Trig struct {
	n    int
	fft  *FFT
	re   []float64 // scratch, length 2n
	im   []float64
	phC  []float64 // cos(π u / 2n), u = 0..n-1 (analysis phase)
	phS  []float64 // sin(π u / 2n)
	phC2 []float64 // cos(π u / 2n) reused for synthesis phase
}

// NewTrig creates a plan for length n. n must be a power of two; any other
// length fails with an error matching ErrNotPow2.
func NewTrig(n int) (*Trig, error) {
	if !IsPow2(n) {
		return nil, fmt.Errorf("spectral: Trig length %d: %w", n, ErrNotPow2)
	}
	fft, err := NewFFT(2 * n)
	if err != nil {
		return nil, err
	}
	t := &Trig{
		n:   n,
		fft: fft,
		re:  make([]float64, 2*n),
		im:  make([]float64, 2*n),
		phC: make([]float64, n),
		phS: make([]float64, n),
	}
	for u := 0; u < n; u++ {
		ang := math.Pi * float64(u) / float64(2*n)
		t.phC[u] = math.Cos(ang)
		t.phS[u] = math.Sin(ang)
	}
	t.phC2 = t.phC
	return t, nil
}

// Len returns the plan length.
func (t *Trig) Len() int { return t.n }

// Clone returns a plan usable concurrently with t: the FFT plan and the
// phase tables (all read-only after construction) are shared, only the
// private scratch is reallocated. AnalyzeCos/SynthCosSin mutate scratch,
// so one Trig must never be used from two goroutines — one clone per
// worker shard is the intended pattern.
func (t *Trig) Clone() *Trig {
	c := *t
	c.re = make([]float64, 2*t.n)
	c.im = make([]float64, 2*t.n)
	return &c
}

// AnalyzeCos writes the DCT-II of f into dst (both length n). dst and f may
// alias.
func (t *Trig) AnalyzeCos(dst, f []float64) {
	n := t.n
	if len(f) != n || len(dst) != n {
		panic("spectral: AnalyzeCos length mismatch")
	}
	// Σ_x f[x] e^{-iπu(x+½)/n} = e^{-iπu/2n} · Σ_x f[x] e^{-2πi ux / 2n}:
	// zero-pad f to length 2n, forward FFT, rotate by the half-sample phase.
	copy(t.re[:n], f)
	for i := n; i < 2*n; i++ {
		t.re[i] = 0
	}
	for i := range t.im {
		t.im[i] = 0
	}
	t.fft.Forward(t.re, t.im)
	for u := 0; u < n; u++ {
		// Re(e^{-iθ}·(re+i·im)) = re·cosθ + im·sinθ
		dst[u] = t.re[u]*t.phC[u] + t.im[u]*t.phS[u]
	}
}

// SynthCosSin evaluates both the cosine and sine synthesis of the coefficient
// vector F at the n half-sample points, writing them to cosOut and sinOut.
// Either output may be nil to skip it; outputs must not alias F.
func (t *Trig) SynthCosSin(cosOut, sinOut, F []float64) {
	n := t.n
	if len(F) != n {
		panic("spectral: SynthCosSin length mismatch")
	}
	// Σ_u F[u] e^{+iπu(x+½)/n} = Σ_u (F[u] e^{iπu/2n}) e^{2πi ux / 2n}:
	// rotate coefficients by the half-sample phase, zero-pad to 2n, inverse FFT.
	for u := 0; u < n; u++ {
		t.re[u] = F[u] * t.phC2[u]
		t.im[u] = F[u] * t.phS[u]
	}
	for i := n; i < 2*n; i++ {
		t.re[i] = 0
		t.im[i] = 0
	}
	t.fft.Inverse(t.re, t.im)
	if cosOut != nil {
		copy(cosOut, t.re[:n])
	}
	if sinOut != nil {
		copy(sinOut, t.im[:n])
	}
}
