package synth

import (
	"encoding/binary"
	"hash/fnv"
	"math"
	"os"
	"testing"

	"repro/internal/netlist"
)

func TestCatalogCoversTable1(t *testing.T) {
	cat := Catalog()
	for _, name := range Table1Designs() {
		if _, ok := cat[name]; !ok {
			t.Errorf("Table I design %q missing from catalog", name)
		}
	}
	if len(Table1Designs()) != 20 {
		t.Errorf("Table I list has %d entries, want 20", len(Table1Designs()))
	}
}

func TestGenerateUnknownName(t *testing.T) {
	if _, err := Generate("nope"); err == nil {
		t.Errorf("unknown design name accepted")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := MustGenerate("tiny_hot")
	b := MustGenerate("tiny_hot")
	if len(a.Cells) != len(b.Cells) || len(a.Nets) != len(b.Nets) || len(a.Pins) != len(b.Pins) {
		t.Fatalf("sizes differ between runs")
	}
	for i := range a.Cells {
		if a.Cells[i].X != b.Cells[i].X || a.Cells[i].Y != b.Cells[i].Y || a.Cells[i].W != b.Cells[i].W {
			t.Fatalf("cell %d differs between runs", i)
		}
	}
	for i := range a.Pins {
		if a.Pins[i] != b.Pins[i] {
			t.Fatalf("pin %d differs between runs", i)
		}
	}
}

func TestGeneratedDesignsValid(t *testing.T) {
	for _, name := range []string{"tiny_open", "tiny_hot", "fft_1", "matrix_mult_a", "superblue12", "pci_bridge32_b"} {
		d, err := Generate(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := d.Validate(); err != nil {
			t.Errorf("%s: invalid: %v", name, err)
		}
	}
}

func TestUtilizationNearTarget(t *testing.T) {
	for _, name := range []string{"fft_1", "des_perf_1", "matrix_mult_a", "superblue12"} {
		p := Catalog()[name]
		d := MustGenerate(name)
		s := d.ComputeStats()
		if math.Abs(s.Utilization-p.Utilization) > 0.08 {
			t.Errorf("%s: utilization %v, target %v", name, s.Utilization, p.Utilization)
		}
	}
}

func TestMacroLayouts(t *testing.T) {
	// matrix_mult_a must have its macro grid (Fig. 4's layout).
	d := MustGenerate("matrix_mult_a")
	s := d.ComputeStats()
	if s.NumMacros != 12 {
		t.Errorf("matrix_mult_a macros = %d, want 12", s.NumMacros)
	}
	for _, r := range d.MacroRects() {
		if !d.Die.ContainsClosed(r.Lo) || !d.Die.ContainsClosed(r.Hi) {
			t.Errorf("macro %v leaves the die %v", r, d.Die)
		}
	}
	// Macros must not overlap each other.
	rects := d.MacroRects()
	for i := range rects {
		for j := i + 1; j < len(rects); j++ {
			if rects[i].Intersects(rects[j]) {
				t.Errorf("macros %d and %d overlap", i, j)
			}
		}
	}
	// fft_1 has none.
	if n := MustGenerate("fft_1").ComputeStats().NumMacros; n != 0 {
		t.Errorf("fft_1 macros = %d, want 0", n)
	}
}

func TestNetDegreeDistribution(t *testing.T) {
	d := MustGenerate("des_perf_1")
	p := Catalog()["des_perf_1"]
	two, total := 0, 0
	maxDeg := 0
	for i := range d.Nets {
		deg := d.Nets[i].Degree()
		if deg < 2 {
			t.Fatalf("net %d has degree %d", i, deg)
		}
		if deg > maxDeg {
			maxDeg = deg
		}
		// High-fanout nets excluded from the two-pin fraction check.
		if deg <= p.MaxDegree {
			total++
			if deg == 2 {
				two++
			}
		}
	}
	frac := float64(two) / float64(total)
	if math.Abs(frac-p.TwoPinFrac) > 0.06 {
		t.Errorf("two-pin fraction %v, target %v", frac, p.TwoPinFrac)
	}
	if maxDeg < 30 {
		t.Errorf("no high-fanout nets generated (max degree %d)", maxDeg)
	}
}

func TestPGRailsSpanDie(t *testing.T) {
	d := MustGenerate("matrix_mult_a")
	if len(d.Rails) == 0 {
		t.Fatalf("no PG rails generated")
	}
	for i, r := range d.Rails {
		if !r.Seg.Horizontal() {
			t.Errorf("rail %d not horizontal", i)
		}
		if r.Seg.Len() != d.Die.W() {
			t.Errorf("rail %d length %v, want die width %v", i, r.Seg.Len(), d.Die.W())
		}
		if r.Width <= 0 {
			t.Errorf("rail %d has non-positive width", i)
		}
	}
}

func TestIOPadsOnBoundary(t *testing.T) {
	d := MustGenerate("fft_1")
	found := 0
	for i := range d.Cells {
		c := &d.Cells[i]
		if c.Kind != netlist.IOPad {
			continue
		}
		found++
		onEdge := c.X == d.Die.Lo.X || c.X == d.Die.Hi.X || c.Y == d.Die.Lo.Y || c.Y == d.Die.Hi.Y
		if !onEdge {
			t.Errorf("IO pad %d at (%v,%v) not on boundary", i, c.X, c.Y)
		}
	}
	if found == 0 {
		t.Errorf("no IO pads")
	}
}

func TestFromParamsRejectsBadParams(t *testing.T) {
	if _, err := FromParams(Params{Name: "bad", NumCells: 0}); err == nil {
		t.Errorf("zero cells accepted")
	}
	if _, err := FromParams(Params{Name: "bad", NumCells: 10, Utilization: 1.5}); err == nil {
		t.Errorf("utilization > 1 accepted")
	}
	if _, err := FromParams(Params{Name: "bad", NumCells: 10, Utilization: 0.5,
		Macros: 2, MacroFrac: 0.9, MacroLayout: MacroGrid}); err == nil {
		t.Errorf("MacroFrac 0.9 accepted")
	}
}

func TestAllCatalogDesignsGenerate(t *testing.T) {
	if testing.Short() {
		t.Skip("generates every design")
	}
	cat := Catalog()
	for _, name := range Names() {
		if cat[name].NumCells > 150_000 && os.Getenv("SYNTH_BIG") == "" {
			// The 250k–1M designs generate fine but dominate the suite's
			// runtime under -race; TestBigDesignDeterministicHash covers the
			// family at 100k. Set SYNTH_BIG=1 to include them.
			continue
		}
		d, err := Generate(name)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if err := d.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		s := d.ComputeStats()
		if s.NumMovable == 0 || s.NumNets == 0 {
			t.Errorf("%s: degenerate design %+v", name, s)
		}
	}
}

// hashDesign digests the full generated structure — geometry bits included —
// so any cross-platform or cross-release drift in generation shows up as a
// hash mismatch, not as a silent placement difference.
func hashDesign(d *netlist.Design) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	u64 := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	f64 := func(v float64) { u64(math.Float64bits(v)) }
	u64(uint64(len(d.Cells)))
	u64(uint64(len(d.Nets)))
	u64(uint64(len(d.Pins)))
	u64(uint64(len(d.Rails)))
	f64(d.Die.W())
	f64(d.Die.H())
	for i := range d.Cells {
		c := &d.Cells[i]
		u64(uint64(c.Kind))
		f64(c.X)
		f64(c.Y)
		f64(c.W)
		f64(c.H)
	}
	for i := range d.Pins {
		p := &d.Pins[i]
		u64(uint64(p.Cell))
		u64(uint64(p.Net))
		f64(p.OffX)
		f64(p.OffY)
	}
	for i := range d.Nets {
		u64(uint64(len(d.Nets[i].Pins)))
	}
	return h.Sum64()
}

// TestBigDesignDeterministicHash pins the 100k-cell superblue1_big design to
// a golden digest: large-design generation must be bit-stable across
// platforms, Go releases and refactors of the generator's inner loops (the
// multilevel scale tests and the CI scale-smoke job all assume it). If an
// INTENTIONAL generator change shifts the digest, update the constant here
// and re-baseline the bench gate.
func TestBigDesignDeterministicHash(t *testing.T) {
	if testing.Short() {
		t.Skip("generates a 100k-cell design")
	}
	d := MustGenerate("superblue1_big")
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	s := d.ComputeStats()
	if s.NumMovable != 100_000 {
		t.Fatalf("superblue1_big has %d movable cells, want 100000", s.NumMovable)
	}
	const golden = 0x75996f2b1264d178
	got := hashDesign(d)
	if got != golden {
		t.Fatalf("superblue1_big digest %#x, want %#x", got, golden)
	}
}

func BenchmarkGenerateFFT1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		MustGenerate("fft_1")
	}
}
