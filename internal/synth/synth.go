// Package synth generates deterministic synthetic placement benchmarks
// modeled on the ISPD 2015 detailed-routing-driven placement contest suite.
//
// The real contest designs are proprietary LEF/DEF data; this generator is
// the substitution documented in DESIGN.md. Each of the 20 designs of the
// paper's Table I is reproduced by name with per-family parameters —
// utilization, macro count and layout, net-degree distribution, Rent-style
// net locality, pin density, and PG-rail pitch — chosen to mimic the
// published character of that family, scaled to CPU-feasible sizes. The
// hypergraph, geometry and PG rails exercise exactly the code paths the
// paper's algorithms consume.
//
// Generation is fully deterministic: the same name always yields the same
// design.
package synth

import (
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"sort"

	"repro/internal/geom"
	"repro/internal/netlist"
)

// MacroLayout selects how a family arranges its fixed macros.
type MacroLayout uint8

const (
	// MacroNone places no macros.
	MacroNone MacroLayout = iota
	// MacroGrid arranges macros in a regular array (matrix_mult_a style,
	// Fig. 4 of the paper).
	MacroGrid
	// MacroEdge lines macros along two die edges (pci_bridge style).
	MacroEdge
	// MacroScattered drops macros quasi-randomly (superblue style).
	MacroScattered
)

// Params fully describes a synthetic design family instance.
type Params struct {
	Name        string
	NumCells    int     // movable standard cells
	Utilization float64 // movable area / free area
	AspectRatio float64 // die height / width

	Macros      int
	MacroLayout MacroLayout
	MacroFrac   float64 // fraction of die area covered by macros

	NetsPerCell float64 // nets ≈ NetsPerCell · NumCells
	TwoPinFrac  float64 // fraction of nets with exactly two pins
	MaxDegree   int     // cap for the geometric degree tail
	HighFanout  int     // number of clock-like high-fanout nets
	Locality    float64 // 0 = global nets, 1 = strongly clustered

	IOPads int

	// HotModules designates this many index-space clusters as "hot": their
	// cells carry HotNetBoost× the normal net density, so after placement
	// they become genuine routing hotspots (real designs' congestion is
	// module-structured, not uniform).
	HotModules  int
	HotNetBoost float64

	RowsPerRail int // PG rail every this many rows
	RouteLayers int
	// CapacityScale shrinks routing capacity to create congestion pressure;
	// 1.0 is relaxed, lower is harder.
	CapacityScale float64
}

// maxSynthPins bounds the expected pin count of a generated design; params
// whose net budget would exceed it are rejected up front rather than left to
// exhaust memory mid-generation (a 1M-cell superblue sits near 4M pins).
const maxSynthPins = 256 << 20

// Validate rejects parameter sets that cannot generate a well-formed design:
// non-positive or overflow-prone sizes, out-of-range ratios. FromParams runs
// it automatically; callers constructing Params programmatically can call it
// early for a better error site.
func (p *Params) Validate() error {
	if p.NumCells <= 0 {
		return fmt.Errorf("synth: %s: NumCells must be positive", p.Name)
	}
	if p.Utilization <= 0 || p.Utilization >= 1 {
		return fmt.Errorf("synth: %s: utilization %v out of (0,1)", p.Name, p.Utilization)
	}
	if p.Macros > 0 && (p.MacroFrac <= 0 || p.MacroFrac >= 0.8) {
		return fmt.Errorf("synth: %s: MacroFrac %v out of range", p.Name, p.MacroFrac)
	}
	if p.NetsPerCell < 0 || p.TwoPinFrac < 0 || p.TwoPinFrac > 1 {
		return fmt.Errorf("synth: %s: NetsPerCell/TwoPinFrac out of range", p.Name)
	}
	if p.Macros < 0 || p.IOPads < 0 || p.HighFanout < 0 || p.HotModules < 0 || p.MaxDegree < 0 {
		return fmt.Errorf("synth: %s: negative structural count", p.Name)
	}
	// Overflow guard: the expected pin count must fit comfortably in memory
	// (and in int32-adjacent downstream math). All factors are evaluated in
	// float64 so a hostile NumCells×MaxDegree product cannot wrap around.
	deg := float64(maxInt(p.MaxDegree, 2))
	boost := math.Max(p.HotNetBoost, 1)
	pins := float64(p.NumCells) * math.Max(p.NetsPerCell, 1) * deg * boost
	if pins > maxSynthPins {
		return fmt.Errorf("synth: %s: expected pin count %.3g exceeds the %d limit", p.Name, pins, maxSynthPins)
	}
	return nil
}

// seedFor derives a stable RNG seed from the design name.
func seedFor(name string) int64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	return int64(h.Sum64() & 0x7fffffffffffffff)
}

// Catalog returns the parameter set for every named Table I design plus the
// test-scale designs, keyed by name.
func Catalog() map[string]Params {
	m := make(map[string]Params)
	add := func(p Params) { m[p.Name] = p }

	// des_perf family: dense logic, no or few macros, very high utilization.
	add(Params{Name: "des_perf_1", NumCells: 4200, Utilization: 0.88, AspectRatio: 1.0,
		Macros: 0, MacroLayout: MacroNone,
		NetsPerCell: 1.05, TwoPinFrac: 0.62, MaxDegree: 10, HighFanout: 3, Locality: 0.72,
		IOPads: 60, HotModules: 4, HotNetBoost: 2.6, RowsPerRail: 2, RouteLayers: 4, CapacityScale: 1.15})
	add(Params{Name: "des_perf_a", NumCells: 4000, Utilization: 0.55, AspectRatio: 1.0,
		Macros: 4, MacroLayout: MacroEdge, MacroFrac: 0.18,
		NetsPerCell: 1.05, TwoPinFrac: 0.62, MaxDegree: 10, HighFanout: 3, Locality: 0.70,
		IOPads: 60, HotModules: 5, HotNetBoost: 3.0, RowsPerRail: 2, RouteLayers: 4, CapacityScale: 1.90})
	add(Params{Name: "des_perf_b", NumCells: 4000, Utilization: 0.50, AspectRatio: 1.0,
		Macros: 4, MacroLayout: MacroEdge, MacroFrac: 0.14,
		NetsPerCell: 1.05, TwoPinFrac: 0.64, MaxDegree: 10, HighFanout: 3, Locality: 0.74,
		IOPads: 60, HotModules: 2, HotNetBoost: 1.8, RowsPerRail: 2, RouteLayers: 4, CapacityScale: 0.72})

	// edit_dist: large, several big macros, medium congestion but huge nets.
	add(Params{Name: "edit_dist_a", NumCells: 4800, Utilization: 0.58, AspectRatio: 1.0,
		Macros: 6, MacroLayout: MacroEdge, MacroFrac: 0.22,
		NetsPerCell: 1.00, TwoPinFrac: 0.58, MaxDegree: 12, HighFanout: 4, Locality: 0.60,
		IOPads: 80, HotModules: 6, HotNetBoost: 2.6, RowsPerRail: 2, RouteLayers: 4, CapacityScale: 0.58})

	// fft family: small, hot.
	add(Params{Name: "fft_1", NumCells: 2000, Utilization: 0.84, AspectRatio: 1.0,
		Macros: 0, MacroLayout: MacroNone,
		NetsPerCell: 1.10, TwoPinFrac: 0.66, MaxDegree: 8, HighFanout: 2, Locality: 0.76,
		IOPads: 40, HotModules: 3, HotNetBoost: 2.2, RowsPerRail: 2, RouteLayers: 4, CapacityScale: 0.76})
	add(Params{Name: "fft_2", NumCells: 2000, Utilization: 0.50, AspectRatio: 1.0,
		Macros: 0, MacroLayout: MacroNone,
		NetsPerCell: 1.10, TwoPinFrac: 0.66, MaxDegree: 8, HighFanout: 2, Locality: 0.76,
		IOPads: 40, HotModules: 2, HotNetBoost: 1.7, RowsPerRail: 2, RouteLayers: 4, CapacityScale: 0.61})
	add(Params{Name: "fft_a", NumCells: 1800, Utilization: 0.30, AspectRatio: 1.0,
		Macros: 6, MacroLayout: MacroScattered, MacroFrac: 0.20,
		NetsPerCell: 1.08, TwoPinFrac: 0.66, MaxDegree: 8, HighFanout: 2, Locality: 0.72,
		IOPads: 40, HotModules: 2, HotNetBoost: 1.7, RowsPerRail: 2, RouteLayers: 4, CapacityScale: 0.85})
	add(Params{Name: "fft_b", NumCells: 1800, Utilization: 0.32, AspectRatio: 1.0,
		Macros: 6, MacroLayout: MacroScattered, MacroFrac: 0.20,
		NetsPerCell: 1.08, TwoPinFrac: 0.62, MaxDegree: 10, HighFanout: 3, Locality: 0.64,
		IOPads: 40, HotModules: 5, HotNetBoost: 2.4, RowsPerRail: 2, RouteLayers: 4, CapacityScale: 0.80})

	// matrix_mult family: the macro-array designs (Fig. 4 uses matrix_mult_a).
	add(Params{Name: "matrix_mult_1", NumCells: 5200, Utilization: 0.80, AspectRatio: 1.0,
		Macros: 0, MacroLayout: MacroNone,
		NetsPerCell: 1.02, TwoPinFrac: 0.60, MaxDegree: 10, HighFanout: 3, Locality: 0.70,
		IOPads: 70, HotModules: 5, HotNetBoost: 2.8, RowsPerRail: 2, RouteLayers: 4, CapacityScale: 1.12})
	add(Params{Name: "matrix_mult_2", NumCells: 5200, Utilization: 0.78, AspectRatio: 1.0,
		Macros: 0, MacroLayout: MacroNone,
		NetsPerCell: 1.02, TwoPinFrac: 0.60, MaxDegree: 10, HighFanout: 3, Locality: 0.68,
		IOPads: 70, HotModules: 5, HotNetBoost: 2.8, RowsPerRail: 2, RouteLayers: 4, CapacityScale: 1.07})
	add(Params{Name: "matrix_mult_a", NumCells: 5000, Utilization: 0.42, AspectRatio: 1.0,
		Macros: 12, MacroLayout: MacroGrid, MacroFrac: 0.24,
		NetsPerCell: 1.02, TwoPinFrac: 0.60, MaxDegree: 10, HighFanout: 3, Locality: 0.70,
		IOPads: 70, HotModules: 3, HotNetBoost: 2.2, RowsPerRail: 2, RouteLayers: 4, CapacityScale: 2.01})
	add(Params{Name: "matrix_mult_b", NumCells: 5000, Utilization: 0.42, AspectRatio: 1.0,
		Macros: 12, MacroLayout: MacroGrid, MacroFrac: 0.24,
		NetsPerCell: 1.02, TwoPinFrac: 0.58, MaxDegree: 10, HighFanout: 3, Locality: 0.62,
		IOPads: 70, HotModules: 6, HotNetBoost: 3.2, RowsPerRail: 2, RouteLayers: 4, CapacityScale: 2.10})
	add(Params{Name: "matrix_mult_c", NumCells: 5000, Utilization: 0.42, AspectRatio: 1.0,
		Macros: 12, MacroLayout: MacroGrid, MacroFrac: 0.24,
		NetsPerCell: 1.02, TwoPinFrac: 0.60, MaxDegree: 10, HighFanout: 3, Locality: 0.70,
		IOPads: 70, HotModules: 3, HotNetBoost: 2.2, RowsPerRail: 2, RouteLayers: 4, CapacityScale: 2.03})

	// pci_bridge: small control designs with edge macros.
	add(Params{Name: "pci_bridge32_a", NumCells: 1600, Utilization: 0.38, AspectRatio: 1.0,
		Macros: 4, MacroLayout: MacroEdge, MacroFrac: 0.18,
		NetsPerCell: 1.06, TwoPinFrac: 0.64, MaxDegree: 9, HighFanout: 2, Locality: 0.70,
		IOPads: 50, HotModules: 3, HotNetBoost: 2.4, RowsPerRail: 2, RouteLayers: 4, CapacityScale: 0.64})
	add(Params{Name: "pci_bridge32_b", NumCells: 1600, Utilization: 0.26, AspectRatio: 1.0,
		Macros: 6, MacroLayout: MacroEdge, MacroFrac: 0.24,
		NetsPerCell: 1.06, TwoPinFrac: 0.64, MaxDegree: 9, HighFanout: 2, Locality: 0.72,
		IOPads: 50, HotModules: 1, HotNetBoost: 1.5, RowsPerRail: 2, RouteLayers: 4, CapacityScale: 0.73})

	// superblue: large mixed-size designs with many scattered macros.
	superblue := func(name string, cells int, util, macroFrac, locality, capScale float64, macros, hotMods int, hotBoost float64) Params {
		return Params{Name: name, NumCells: cells, Utilization: util, AspectRatio: 1.0,
			Macros: macros, MacroLayout: MacroScattered, MacroFrac: macroFrac,
			NetsPerCell: 0.98, TwoPinFrac: 0.56, MaxDegree: 14, HighFanout: 6, Locality: locality,
			IOPads: 120, HotModules: hotMods, HotNetBoost: hotBoost, RowsPerRail: 2, RouteLayers: 6, CapacityScale: capScale}
	}
	add(superblue("superblue11_a", 9000, 0.40, 0.28, 0.66, 1.26, 24, 2, 1.7))
	add(superblue("superblue12", 11000, 0.55, 0.20, 0.58, 1.44, 18, 8, 3.2))
	add(superblue("superblue14", 8000, 0.38, 0.24, 0.68, 1.26, 20, 1, 1.5))
	add(superblue("superblue16_a", 8500, 0.42, 0.22, 0.66, 1.23, 18, 4, 2.4))
	add(superblue("superblue19", 7000, 0.40, 0.24, 0.66, 1.55, 18, 4, 2.6))

	// superblue *_big family: the large-scale targets of the multilevel flow
	// (100k–1M movable cells, near the published superblue sizes). Same
	// family character as the Table I superblues, more IO and high-fanout
	// structure; generation streams in O(cells) memory.
	big := func(name string, cells, macros int, util, macroFrac, capScale float64) Params {
		p := superblue(name, cells, util, macroFrac, 0.70, capScale, macros, 8, 2.0)
		p.IOPads = 400
		p.HighFanout = 8
		return p
	}
	add(big("superblue1_big", 100_000, 32, 0.45, 0.22, 1.35))
	add(big("superblue4_big", 250_000, 40, 0.45, 0.22, 1.40))
	add(big("superblue11_big", 500_000, 48, 0.42, 0.24, 1.45))
	add(big("superblue19_big", 1_000_000, 56, 0.42, 0.24, 1.50))

	// Tiny designs for unit and integration tests.
	add(Params{Name: "tiny_open", NumCells: 300, Utilization: 0.40, AspectRatio: 1.0,
		Macros: 0, MacroLayout: MacroNone,
		NetsPerCell: 1.05, TwoPinFrac: 0.65, MaxDegree: 6, HighFanout: 1, Locality: 0.7,
		IOPads: 16, RowsPerRail: 2, RouteLayers: 4, CapacityScale: 1.20})
	add(Params{Name: "tiny_hot", NumCells: 500, Utilization: 0.82, AspectRatio: 1.0,
		Macros: 2, MacroLayout: MacroGrid, MacroFrac: 0.12,
		NetsPerCell: 1.10, TwoPinFrac: 0.62, MaxDegree: 8, HighFanout: 2, Locality: 0.72,
		IOPads: 16, HotModules: 2, HotNetBoost: 2.5, RowsPerRail: 2, RouteLayers: 4, CapacityScale: 0.48})
	return m
}

// BigDesigns lists the large-scale superblue families in ascending size
// (100k, 250k, 500k, 1M movable cells) — the multilevel flow's targets.
func BigDesigns() []string {
	return []string{"superblue1_big", "superblue4_big", "superblue11_big", "superblue19_big"}
}

// Table1Designs lists the 20 Table I design names in paper order.
func Table1Designs() []string {
	return []string{
		"des_perf_1", "des_perf_a", "des_perf_b", "edit_dist_a",
		"fft_1", "fft_2", "fft_a", "fft_b",
		"matrix_mult_1", "matrix_mult_2", "matrix_mult_a", "matrix_mult_b", "matrix_mult_c",
		"pci_bridge32_a", "pci_bridge32_b",
		"superblue11_a", "superblue12", "superblue14", "superblue16_a", "superblue19",
	}
}

// Names returns all catalog names sorted.
func Names() []string {
	cat := Catalog()
	out := make([]string, 0, len(cat))
	for n := range cat {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Generate builds the named design from the catalog.
func Generate(name string) (*netlist.Design, error) {
	p, ok := Catalog()[name]
	if !ok {
		return nil, fmt.Errorf("synth: unknown design %q (known: %v)", name, Names())
	}
	return FromParams(p)
}

// MustGenerate is Generate for known-good names; it panics on error.
func MustGenerate(name string) *netlist.Design {
	d, err := Generate(name)
	if err != nil {
		panic(err)
	}
	return d
}

// FromParams builds a design from an explicit parameter set.
func FromParams(p Params) (*netlist.Design, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seedFor(p.Name)))

	const (
		rowHeight = 8.0
		siteWidth = 1.0
	)

	// Cell widths: mixture of 1-6 sites, mean ≈ 2.6 sites.
	widths := make([]float64, p.NumCells)
	var movArea float64
	for i := range widths {
		w := float64(1 + rng.Intn(3) + rng.Intn(3)) // 1..5-ish, mode around 3
		widths[i] = w * siteWidth
		movArea += widths[i] * rowHeight
	}

	// Die sizing: free area = movable/util; total = free/(1-macroFrac).
	util := p.Utilization
	freeArea := movArea / util
	total := freeArea
	if p.Macros > 0 {
		total = freeArea / (1 - p.MacroFrac)
	}
	ar := p.AspectRatio
	if ar == 0 {
		ar = 1
	}
	dieW := math.Sqrt(total / ar)
	// Round die height to whole rows and width to whole sites.
	numRows := int(math.Ceil(dieW * ar / rowHeight))
	dieH := float64(numRows) * rowHeight
	dieW = math.Ceil(dieW/siteWidth) * siteWidth
	die := geom.NewRect(0, 0, dieW, dieH)

	b := netlist.NewBuilder(p.Name, die, rowHeight, siteWidth)
	b.SetRouteLayers(maxInt(2, p.RouteLayers))
	b.SetTargetDensity(math.Min(0.95, util+0.12))
	capScale := p.CapacityScale
	if capScale == 0 {
		capScale = 1
	}
	b.SetRouteCapScale(capScale)

	// ---- Macros ----
	macroRects := placeMacros(rng, p, die)
	for i, r := range macroRects {
		b.AddCell(fmt.Sprintf("macro_%d", i), netlist.Macro,
			r.Center().X, r.Center().Y, r.W(), r.H())
	}

	// ---- Standard cells ----
	// Initial positions: spread uniformly over free area (the placer
	// re-initializes anyway; these are just sane starting coordinates).
	firstStd := len(macroRects)
	for i := 0; i < p.NumCells; i++ {
		var x, y float64
		for try := 0; ; try++ {
			x = die.Lo.X + rng.Float64()*die.W()
			y = die.Lo.Y + rng.Float64()*die.H()
			if try > 50 || !insideAny(geom.Point{X: x, Y: y}, macroRects) {
				break
			}
		}
		b.AddCell(fmt.Sprintf("c%d", i), netlist.StdCell, x, y, widths[i], rowHeight)
	}

	// ---- IO pads ----
	firstIO := firstStd + p.NumCells
	for i := 0; i < p.IOPads; i++ {
		x, y := perimeterPoint(rng, die)
		b.AddCell(fmt.Sprintf("io%d", i), netlist.IOPad, x, y, siteWidth, siteWidth)
	}

	// ---- Nets: Rent-style clustered hypergraph ----
	// Cells are conceptually ordered along a space-filling cluster hierarchy;
	// a net picks a window whose size depends on Locality, then samples its
	// pins within the window. IO pads join a fraction of boundary nets.
	numNets := int(float64(p.NumCells) * p.NetsPerCell)
	stdIdx := func(k int) int { return firstStd + k }
	cellPinBudget := make([]int, p.NumCells)

	// Per-net duplicate-pin rejection uses one reusable epoch-stamped array
	// instead of a fresh map per net, keeping generation allocation-free per
	// net and O(cells) overall — the property that lets the *_big families
	// stream out at 1M cells.
	stamp := make([]int, p.NumCells)
	epoch := 0
	taken := func(ci int) bool { return stamp[ci] == epoch }
	take := func(ci int) { stamp[ci] = epoch }

	for e := 0; e < numNets; e++ {
		deg := sampleDegree(rng, p)
		// Window: with prob Locality, small window (cluster); otherwise wide.
		var window int
		if rng.Float64() < p.Locality {
			window = 8 + rng.Intn(56) // tight cluster: 8..64 cells
		} else {
			window = p.NumCells // global
		}
		if window > p.NumCells {
			window = p.NumCells
		}
		if window < 2*deg {
			// The window must comfortably hold deg distinct cells.
			window = minInt(2*deg, p.NumCells)
		}
		if deg > window {
			deg = window
		}
		start := 0
		if p.NumCells > window {
			start = rng.Intn(p.NumCells - window + 1)
		}
		net := b.AddNet(fmt.Sprintf("n%d", e), 1)
		epoch++
		for k := 0; k < deg; k++ {
			var ci int
			for {
				ci = start + rng.Intn(window)
				if !taken(ci) {
					break
				}
			}
			take(ci)
			cellPinBudget[ci]++
			w := widths[ci]
			offX := (rng.Float64() - 0.5) * w * 0.8
			offY := (rng.Float64() - 0.5) * rowHeight * 0.8
			b.Connect(stdIdx(ci), net, offX, offY)
		}
		// Some nets also attach to an IO pad (boundary nets).
		if p.IOPads > 0 && rng.Float64() < 0.04 {
			b.Connect(firstIO+rng.Intn(p.IOPads), net, 0, 0)
		}
		// Macro pins: macro-adjacent nets (matrix_mult-style dataflow).
		if len(macroRects) > 0 && rng.Float64() < 0.05 {
			mi := rng.Intn(len(macroRects))
			r := macroRects[mi]
			b.Connect(mi, net, (rng.Float64()-0.5)*r.W()*0.9, (rng.Float64()-0.5)*r.H()*0.9)
		}
	}

	// Hot modules: extra intra-module nets that turn the module into a
	// routing hotspot once the placer clusters it.
	if p.HotModules > 0 && p.HotNetBoost > 1 {
		modSize := p.NumCells / (4 * p.HotModules)
		if modSize < 24 {
			modSize = minInt(24, p.NumCells)
		}
		for hm := 0; hm < p.HotModules; hm++ {
			start := (hm*2 + 1) * p.NumCells / (2 * p.HotModules)
			if start+modSize > p.NumCells {
				start = p.NumCells - modSize
			}
			extra := int(float64(modSize) * p.NetsPerCell * (p.HotNetBoost - 1))
			for e := 0; e < extra; e++ {
				deg := sampleDegree(rng, p)
				if deg > modSize {
					deg = modSize
				}
				net := b.AddNet(fmt.Sprintf("hot%d_%d", hm, e), 1)
				epoch++
				for k := 0; k < deg; k++ {
					var ci int
					for {
						ci = start + rng.Intn(modSize)
						if !taken(ci) {
							break
						}
					}
					take(ci)
					b.Connect(stdIdx(ci), net, 0, 0)
				}
			}
		}
	}

	// High-fanout (clock-like) nets.
	for h := 0; h < p.HighFanout; h++ {
		net := b.AddNet(fmt.Sprintf("hf%d", h), 1)
		fan := 30 + rng.Intn(40)
		epoch++
		connected := 0
		for k := 0; k < fan && connected < p.NumCells; k++ {
			ci := rng.Intn(p.NumCells)
			if taken(ci) {
				continue
			}
			take(ci)
			connected++
			b.Connect(stdIdx(ci), net, 0, 0)
		}
	}

	// ---- PG rails ----
	// Horizontal M2 rails every RowsPerRail rows, full die width; selection
	// and cutting happen later in the pgrail package.
	rpr := p.RowsPerRail
	if rpr <= 0 {
		rpr = 2
	}
	railW := rowHeight * 0.15
	for r := 0; r <= numRows; r += rpr {
		y := die.Lo.Y + float64(r)*rowHeight
		b.AddRail(geom.Segment{
			A: geom.Point{X: die.Lo.X, Y: y},
			B: geom.Point{X: die.Hi.X, Y: y},
		}, railW)
	}

	return b.Build()
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func insideAny(p geom.Point, rects []geom.Rect) bool {
	for _, r := range rects {
		if r.Contains(p) {
			return true
		}
	}
	return false
}

// sampleDegree draws a net degree: 2 with probability TwoPinFrac, otherwise a
// geometric tail in [3, MaxDegree].
func sampleDegree(rng *rand.Rand, p Params) int {
	if rng.Float64() < p.TwoPinFrac {
		return 2
	}
	d := 3
	for d < p.MaxDegree && rng.Float64() < 0.55 {
		d++
	}
	return d
}

// perimeterPoint returns a point on the die boundary.
func perimeterPoint(rng *rand.Rand, die geom.Rect) (float64, float64) {
	t := rng.Float64()
	switch rng.Intn(4) {
	case 0:
		return die.Lo.X + t*die.W(), die.Lo.Y
	case 1:
		return die.Lo.X + t*die.W(), die.Hi.Y
	case 2:
		return die.Lo.X, die.Lo.Y + t*die.H()
	default:
		return die.Hi.X, die.Lo.Y + t*die.H()
	}
}

// placeMacros realizes the family's macro layout inside the die.
func placeMacros(rng *rand.Rand, p Params, die geom.Rect) []geom.Rect {
	if p.Macros == 0 || p.MacroLayout == MacroNone {
		return nil
	}
	targetArea := die.Area() * p.MacroFrac
	each := targetArea / float64(p.Macros)
	var out []geom.Rect
	switch p.MacroLayout {
	case MacroGrid:
		// Near-square array with channels between macros (Fig. 4's layout).
		cols := int(math.Ceil(math.Sqrt(float64(p.Macros))))
		rows := (p.Macros + cols - 1) / cols
		mw := math.Sqrt(each * 1.1)
		mh := each / mw
		gapX := (die.W() - float64(cols)*mw) / float64(cols+1)
		gapY := (die.H() - float64(rows)*mh) / float64(rows+1)
		if gapX < 0 || gapY < 0 {
			// Macros too big for a grid with channels; shrink.
			mw, mh = die.W()/float64(cols)*0.7, die.H()/float64(rows)*0.7
			gapX = (die.W() - float64(cols)*mw) / float64(cols+1)
			gapY = (die.H() - float64(rows)*mh) / float64(rows+1)
		}
		n := 0
		for r := 0; r < rows && n < p.Macros; r++ {
			for c := 0; c < cols && n < p.Macros; c++ {
				x0 := die.Lo.X + gapX + float64(c)*(mw+gapX)
				y0 := die.Lo.Y + gapY + float64(r)*(mh+gapY)
				out = append(out, geom.NewRect(x0, y0, x0+mw, y0+mh))
				n++
			}
		}
	case MacroEdge:
		// Alternate along left and bottom edges.
		mw := math.Sqrt(each * 1.4)
		mh := each / mw
		for i := 0; i < p.Macros; i++ {
			if i%2 == 0 {
				y0 := die.Lo.Y + (0.1+0.8*rng.Float64())*(die.H()-mh)
				out = append(out, geom.NewRect(die.Lo.X, y0, die.Lo.X+mw, y0+mh))
			} else {
				x0 := die.Lo.X + (0.1+0.8*rng.Float64())*(die.W()-mw)
				out = append(out, geom.NewRect(x0, die.Lo.Y, x0+mw, die.Lo.Y+mh))
			}
		}
	case MacroScattered:
		// Rejection-sample non-overlapping blocks with varied aspect.
		for i := 0; i < p.Macros; i++ {
			a := each * (0.5 + rng.Float64())
			asp := 0.5 + rng.Float64()*1.5
			mw := math.Sqrt(a * asp)
			mh := a / mw
			var r geom.Rect
			placed := false
			for try := 0; try < 200; try++ {
				x0 := die.Lo.X + rng.Float64()*(die.W()-mw)
				y0 := die.Lo.Y + rng.Float64()*(die.H()-mh)
				r = geom.NewRect(x0, y0, x0+mw, y0+mh)
				ok := true
				for _, q := range out {
					if r.Pad(2).Intersects(q) {
						ok = false
						break
					}
				}
				if ok {
					placed = true
					break
				}
			}
			if placed {
				out = append(out, r)
			}
		}
	}
	return out
}
