// Package poisson solves the Neumann-boundary Poisson equation of ePlace
// (paper Eq. 1) on a regular power-of-two grid using spectral (DCT-based)
// methods:
//
//	∇·∇ψ = −ρ            in R
//	n·∇ψ = 0             on ∂R
//	∬ρ = ∬ψ = 0          (compatibility)
//
// The solver returns both the potential ψ and the field E = −∇ψ, which the
// placer uses as the electrostatic force on cells. The same solver instance
// serves the cell-density term D(x,y) and the routing-congestion term C(x,y)
// (paper Sec. II-B takes ρ = Dmd/Cap on the G-cell grid).
//
// Every transform stage is a set of independent 1-D row or column
// transforms with disjoint outputs, so the solver parallelizes over the
// internal/parallel shard layer with NO reductions at all: outputs are
// bitwise-identical to the serial solver for every worker count.
package poisson

import (
	"fmt"
	"math"

	"repro/internal/parallel"
	"repro/internal/spectral"
)

// Solver is a reusable spectral Poisson solver on an NX×NY grid. It
// preallocates all scratch space (one trig-plan clone and one column
// buffer per parallel shard); Solve performs no allocation.
type Solver struct {
	// Workers caps the goroutines used per Solve; 0 selects
	// runtime.NumCPU(), 1 runs fully serial. Any setting produces
	// bitwise-identical results.
	Workers int

	nx, ny int
	trigX  [parallel.NumShards]*spectral.Trig // per-shard plans (shared tables)
	trigY  [parallel.NumShards]*spectral.Trig

	wx []float64 // frequencies π·u/nx
	wy []float64 // frequencies π·v/ny

	coef   []float64                     // DCT-II coefficients of ρ, then scaled for ψ
	coefEx []float64                     // coefficients scaled for Ex
	coefEy []float64                     // coefficients scaled for Ey
	fil    []float64                     // spectral filter c_u·c_v/(nx·ny·(w_u²+w_v²))
	filEx  []float64                     // fil · w_u (Ex differentiation)
	filEy  []float64                     // fil · w_v (Ey differentiation)
	colBuf [parallel.NumShards][]float64 // per-shard column gather, length max(nx, ny)
	colOut [parallel.NumShards][]float64
	tmpA   []float64 // nx*ny intermediates
	tmpB   []float64
	tmpC   []float64

	stats parallel.Timing // accumulated cost of the parallel sections
}

// Grid holds the solver outputs. Index layout is row-major: cell (ix, iy) is
// at iy*NX+ix.
type Grid struct {
	NX, NY int
	Psi    []float64 // electric potential ψ
	Ex     []float64 // field −∂ψ/∂x
	Ey     []float64 // field −∂ψ/∂y
}

// NewSolver creates a solver for an nx×ny grid. Both dimensions must be
// powers of two (the placer rounds its bin counts up accordingly); any other
// size fails with an error matching spectral.ErrNotPow2.
func NewSolver(nx, ny int) (*Solver, error) {
	if !spectral.IsPow2(nx) || !spectral.IsPow2(ny) {
		return nil, fmt.Errorf("poisson: grid %dx%d must have power-of-two dimensions: %w",
			nx, ny, spectral.ErrNotPow2)
	}
	s := &Solver{
		nx:     nx,
		ny:     ny,
		wx:     make([]float64, nx),
		wy:     make([]float64, ny),
		coef:   make([]float64, nx*ny),
		coefEx: make([]float64, nx*ny),
		coefEy: make([]float64, nx*ny),
		fil:    make([]float64, nx*ny),
		filEx:  make([]float64, nx*ny),
		filEy:  make([]float64, nx*ny),
		tmpA:   make([]float64, nx*ny),
		tmpB:   make([]float64, nx*ny),
		tmpC:   make([]float64, nx*ny),
	}
	tx, err := spectral.NewTrig(nx)
	if err != nil {
		return nil, err
	}
	ty, err := spectral.NewTrig(ny)
	if err != nil {
		return nil, err
	}
	n := nx
	if ny > n {
		n = ny
	}
	for i := 0; i < parallel.NumShards; i++ {
		s.trigX[i] = tx.Clone()
		s.trigY[i] = ty.Clone()
		s.colBuf[i] = make([]float64, n)
		s.colOut[i] = make([]float64, n)
	}
	for u := 0; u < nx; u++ {
		s.wx[u] = math.Pi * float64(u) / float64(nx)
	}
	for v := 0; v < ny; v++ {
		s.wy[v] = math.Pi * float64(v) / float64(ny)
	}
	// Precompute the spectral filter tables: the per-mode scale factor
	// c_u·c_v/(nx·ny·(w_u²+w_v²)) and its w_u/w_v-differentiated variants
	// depend only on the grid, so Solve's scale pass reduces to three
	// multiplies per coefficient — no divides in the hot loop. The (0,0)
	// mode stays zero (compatibility condition). Note the precomputed
	// association groups the constants first, which can differ from the
	// historical per-solve expression by an ulp or two.
	for v := 0; v < ny; v++ {
		for u := 0; u < nx; u++ {
			i := v*nx + u
			if u == 0 && v == 0 {
				continue
			}
			cu, cv := 2.0, 2.0
			if u == 0 {
				cu = 1
			}
			if v == 0 {
				cv = 1
			}
			w2 := s.wx[u]*s.wx[u] + s.wy[v]*s.wy[v]
			f := cu * cv / (float64(nx) * float64(ny) * w2)
			s.fil[i] = f
			s.filEx[i] = f * s.wx[u]
			s.filEy[i] = f * s.wy[v]
		}
	}
	return s, nil
}

// NX returns the grid width.
func (s *Solver) NX() int { return s.nx }

// NY returns the grid height.
func (s *Solver) NY() int { return s.ny }

// Stats returns the accumulated wall/busy time of the parallel transform
// sections across all Solve calls since creation (telemetry: the
// parallel.poisson speedup gauge).
func (s *Solver) Stats() parallel.Timing { return s.stats }

// NewGrid allocates an output grid matching the solver dimensions.
func (s *Solver) NewGrid() *Grid {
	return &Grid{
		NX:  s.nx,
		NY:  s.ny,
		Psi: make([]float64, s.nx*s.ny),
		Ex:  make([]float64, s.nx*s.ny),
		Ey:  make([]float64, s.nx*s.ny),
	}
}

// Solve computes ψ and E = −∇ψ for the charge density rho (length nx*ny,
// row-major) into g. The DC component of rho is removed internally, enforcing
// the compatibility condition; rho itself is not modified.
func (s *Solver) Solve(rho []float64, g *Grid) {
	nx, ny := s.nx, s.ny
	if len(rho) != nx*ny {
		panic("poisson: rho length mismatch")
	}
	if g.NX != nx || g.NY != ny {
		panic("poisson: grid dimension mismatch")
	}

	// Forward 2-D DCT-II of rho: rows (x direction), then columns (y).
	// Each row/column transform owns its output rows — no reduction.
	s.stats.Add(parallel.For(s.Workers, ny, func(shard, lo, hi int) {
		tx := s.trigX[shard]
		for iy := lo; iy < hi; iy++ {
			tx.AnalyzeCos(s.tmpA[iy*nx:(iy+1)*nx], rho[iy*nx:(iy+1)*nx])
		}
	}))
	s.stats.Add(parallel.For(s.Workers, nx, func(shard, lo, hi int) {
		ty := s.trigY[shard]
		col := s.colBuf[shard][:ny]
		out := s.colOut[shard][:ny]
		for ix := lo; ix < hi; ix++ {
			for iy := 0; iy < ny; iy++ {
				col[iy] = s.tmpA[iy*nx+ix]
			}
			ty.AnalyzeCos(out, col)
			for v := 0; v < ny; v++ {
				s.coef[v*nx+ix] = out[v]
			}
		}
	}))

	// Scale coefficients by the precomputed spectral filter tables (DCT
	// normalization, ψ's 1/(w_u²+w_v²) filter, and the E-field
	// differentiation factors, all baked in at construction). The (0,0)
	// entries of the tables are zero, which drops the DC mode
	// (compatibility condition). Disjoint writes per coefficient row.
	s.stats.Add(parallel.For(s.Workers, ny, func(_, lo, hi int) {
		for v := lo; v < hi; v++ {
			for u := 0; u < nx; u++ {
				i := v*nx + u
				c := s.coef[i]
				s.coef[i] = c * s.fil[i]
				s.coefEx[i] = c * s.filEx[i]
				s.coefEy[i] = c * s.filEy[i]
			}
		}
	}))

	// ψ: cosine synthesis in x then cosine synthesis in y.
	// Ex = −∂ψ/∂x = Σ b·w_u·sin(w_u(x+½))·cos(w_v(y+½)): sine synth in x, cos in y.
	// Ey symmetric.
	s.stats.Add(parallel.For(s.Workers, ny, func(shard, lo, hi int) {
		tx := s.trigX[shard]
		for v := lo; v < hi; v++ {
			tx.SynthCosSin(nil, s.tmpA[v*nx:(v+1)*nx], s.coefEx[v*nx:(v+1)*nx])
			tx.SynthCosSin(s.tmpB[v*nx:(v+1)*nx], nil, s.coef[v*nx:(v+1)*nx])
			tx.SynthCosSin(s.tmpC[v*nx:(v+1)*nx], nil, s.coefEy[v*nx:(v+1)*nx])
		}
	}))
	// Now tmpA rows hold Ex's x-synthesis, tmpB rows ψ's, tmpC rows Ey's.
	// Finish along y: ψ and Ex use cosine synthesis, Ey uses sine synthesis.
	s.stats.Add(parallel.For(s.Workers, nx, func(shard, lo, hi int) {
		ty := s.trigY[shard]
		col := s.colBuf[shard][:ny]
		out := s.colOut[shard][:ny]
		for ix := lo; ix < hi; ix++ {
			for iy := 0; iy < ny; iy++ {
				col[iy] = s.tmpB[iy*nx+ix]
			}
			ty.SynthCosSin(out, nil, col)
			for iy := 0; iy < ny; iy++ {
				g.Psi[iy*nx+ix] = out[iy]
			}

			for iy := 0; iy < ny; iy++ {
				col[iy] = s.tmpA[iy*nx+ix]
			}
			ty.SynthCosSin(out, nil, col)
			for iy := 0; iy < ny; iy++ {
				g.Ex[iy*nx+ix] = out[iy]
			}

			for iy := 0; iy < ny; iy++ {
				col[iy] = s.tmpC[iy*nx+ix]
			}
			ty.SynthCosSin(nil, out, col)
			for iy := 0; iy < ny; iy++ {
				g.Ey[iy*nx+ix] = out[iy]
			}
		}
	}))
}

// Energy returns the total field energy ½·Σ ρ_i·ψ_i over the grid, the
// discrete counterpart of the electrostatic penalty (paper Sec. II-A computes
// it per cell; this grid form is used in tests and diagnostics).
func Energy(rho []float64, g *Grid) float64 {
	var e float64
	for i, r := range rho {
		e += r * g.Psi[i]
	}
	return e / 2
}
