package poisson

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/spectral"
)

func mustSolver(tb testing.TB, nx, ny int) *Solver {
	tb.Helper()
	s, err := NewSolver(nx, ny)
	if err != nil {
		tb.Fatal(err)
	}
	return s
}

// laplacian computes the 5-point discrete Laplacian of psi at interior cells,
// in grid-index units, matching the spectral operator to second order.
func laplacian(psi []float64, nx, ny, ix, iy int) float64 {
	i := iy*nx + ix
	return psi[i-1] + psi[i+1] + psi[i-nx] + psi[i+nx] - 4*psi[i]
}

func TestSolvePoissonResidual(t *testing.T) {
	// ∇²ψ must equal −ρ (up to discretization error) for a smooth ρ.
	nx, ny := 64, 64
	s := mustSolver(t, nx, ny)
	rho := make([]float64, nx*ny)
	for iy := 0; iy < ny; iy++ {
		for ix := 0; ix < nx; ix++ {
			// Smooth low-frequency density with zero mean by construction of
			// the solver (DC removed internally).
			rho[iy*nx+ix] = math.Cos(2*math.Pi*(float64(ix)+0.5)/float64(nx)) *
				math.Cos(2*math.Pi*(float64(iy)+0.5)/float64(ny))
		}
	}
	g := s.NewGrid()
	s.Solve(rho, g)

	// Compare at interior points. The analytic solution for this single-mode
	// rho has Laplacian exactly −rho in the continuum; the 5-point stencil
	// approximates it with O(h²) error, so allow a few percent.
	var maxErr, maxRho float64
	for iy := 2; iy < ny-2; iy++ {
		for ix := 2; ix < nx-2; ix++ {
			lap := laplacian(g.Psi, nx, ny, ix, iy)
			want := -rho[iy*nx+ix]
			if e := math.Abs(lap - want); e > maxErr {
				maxErr = e
			}
			if a := math.Abs(want); a > maxRho {
				maxRho = a
			}
		}
	}
	if maxErr > 0.02*maxRho {
		t.Errorf("Laplacian residual too large: %g (scale %g)", maxErr, maxRho)
	}
}

func TestFieldIsNegativeGradient(t *testing.T) {
	// E must equal −∇ψ: compare against central differences of ψ.
	nx, ny := 32, 32
	s := mustSolver(t, nx, ny)
	rng := rand.New(rand.NewSource(7))
	rho := make([]float64, nx*ny)
	// Smooth random density: superpose a few low-frequency modes.
	for k := 0; k < 5; k++ {
		u := 1 + rng.Intn(4)
		v := 1 + rng.Intn(4)
		amp := rng.NormFloat64()
		for iy := 0; iy < ny; iy++ {
			for ix := 0; ix < nx; ix++ {
				rho[iy*nx+ix] += amp *
					math.Cos(math.Pi*float64(u)*(float64(ix)+0.5)/float64(nx)) *
					math.Cos(math.Pi*float64(v)*(float64(iy)+0.5)/float64(ny))
			}
		}
	}
	g := s.NewGrid()
	s.Solve(rho, g)

	var worst float64
	var scale float64
	for iy := 1; iy < ny-1; iy++ {
		for ix := 1; ix < nx-1; ix++ {
			i := iy*nx + ix
			gradX := (g.Psi[i+1] - g.Psi[i-1]) / 2
			gradY := (g.Psi[i+nx] - g.Psi[i-nx]) / 2
			if e := math.Abs(g.Ex[i] + gradX); e > worst {
				worst = e
			}
			if e := math.Abs(g.Ey[i] + gradY); e > worst {
				worst = e
			}
			if a := math.Abs(g.Ex[i]); a > scale {
				scale = a
			}
		}
	}
	// Central differences carry O(h²) error relative to the spectral field.
	if worst > 0.05*scale {
		t.Errorf("field/gradient mismatch: worst %g, field scale %g", worst, scale)
	}
}

func TestZeroMeanPotential(t *testing.T) {
	nx, ny := 16, 16
	s := mustSolver(t, nx, ny)
	rng := rand.New(rand.NewSource(8))
	rho := make([]float64, nx*ny)
	for i := range rho {
		rho[i] = rng.Float64()
	}
	g := s.NewGrid()
	s.Solve(rho, g)
	var sum float64
	for _, p := range g.Psi {
		sum += p
	}
	if math.Abs(sum) > 1e-6*float64(nx*ny) {
		t.Errorf("psi mean not zero: %g", sum/float64(nx*ny))
	}
}

func TestUniformDensityGivesZeroField(t *testing.T) {
	nx, ny := 16, 16
	s := mustSolver(t, nx, ny)
	rho := make([]float64, nx*ny)
	for i := range rho {
		rho[i] = 3.7
	}
	g := s.NewGrid()
	s.Solve(rho, g)
	for i := range g.Psi {
		if math.Abs(g.Psi[i]) > 1e-9 || math.Abs(g.Ex[i]) > 1e-9 || math.Abs(g.Ey[i]) > 1e-9 {
			t.Fatalf("uniform density produced nonzero potential/field at %d", i)
		}
	}
}

func TestFieldPushesAwayFromPeak(t *testing.T) {
	// A single density spike must create a field pointing away from it —
	// this is the repulsive force that spreads cells (and, for the congestion
	// instance, moves nets out of hotspots).
	nx, ny := 32, 32
	s := mustSolver(t, nx, ny)
	rho := make([]float64, nx*ny)
	cx, cy := 16, 16
	rho[cy*nx+cx] = 100
	g := s.NewGrid()
	s.Solve(rho, g)

	probes := []struct{ ix, iy int }{{20, 16}, {12, 16}, {16, 20}, {16, 12}, {20, 20}, {10, 10}}
	for _, p := range probes {
		i := p.iy*nx + p.ix
		dir := [2]float64{float64(p.ix - cx), float64(p.iy - cy)}
		dot := g.Ex[i]*dir[0] + g.Ey[i]*dir[1]
		if dot <= 0 {
			t.Errorf("field at (%d,%d) does not point away from spike: E=(%g,%g)", p.ix, p.iy, g.Ex[i], g.Ey[i])
		}
	}
}

func TestEnergyPositive(t *testing.T) {
	// Field energy ½Σρψ is positive for any non-uniform density.
	nx, ny := 16, 16
	s := mustSolver(t, nx, ny)
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 10; trial++ {
		rho := make([]float64, nx*ny)
		for i := range rho {
			rho[i] = rng.Float64() * 2
		}
		g := s.NewGrid()
		s.Solve(rho, g)
		if e := Energy(rho, g); e <= 0 {
			t.Errorf("trial %d: energy %g not positive", trial, e)
		}
	}
}

func TestEnergyDecreasesWhenSpread(t *testing.T) {
	// Spreading the same total charge over a larger region lowers energy —
	// the optimizer's descent direction is meaningful.
	nx, ny := 32, 32
	s := mustSolver(t, nx, ny)
	concentrated := make([]float64, nx*ny)
	spread := make([]float64, nx*ny)
	concentrated[16*nx+16] = 16
	for dy := 0; dy < 4; dy++ {
		for dx := 0; dx < 4; dx++ {
			spread[(14+dy)*nx+14+dx] = 1
		}
	}
	g := s.NewGrid()
	s.Solve(concentrated, g)
	e1 := Energy(concentrated, g)
	s.Solve(spread, g)
	e2 := Energy(spread, g)
	if e2 >= e1 {
		t.Errorf("spread energy %g not below concentrated energy %g", e2, e1)
	}
}

func TestSolverRejectsBadDimensions(t *testing.T) {
	if _, err := NewSolver(12, 16); !errors.Is(err, spectral.ErrNotPow2) {
		t.Errorf("NewSolver(12, 16) error = %v, want spectral.ErrNotPow2", err)
	}
}

func TestSolveRejectsWrongLength(t *testing.T) {
	s := mustSolver(t, 8, 8)
	g := s.NewGrid()
	defer func() {
		if recover() == nil {
			t.Errorf("Solve with short rho did not panic")
		}
	}()
	s.Solve(make([]float64, 7), g)
}

func BenchmarkSolve256(b *testing.B) {
	nx, ny := 256, 256
	s := mustSolver(b, nx, ny)
	rho := make([]float64, nx*ny)
	for i := range rho {
		rho[i] = float64(i%13) * 0.1
	}
	g := s.NewGrid()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Solve(rho, g)
	}
}

// BenchmarkPoissonSolve is the CI bench-smoke entry point for the solver
// (picked up by the Route|Poisson benchmark filter); it exercises the
// placer's common 128- and 256-bin grids.
func BenchmarkPoissonSolve(b *testing.B) {
	for _, n := range []int{128, 256} {
		b.Run(fmt.Sprintf("%dx%d", n, n), func(b *testing.B) {
			s := mustSolver(b, n, n)
			rho := make([]float64, n*n)
			for i := range rho {
				rho[i] = float64(i%13) * 0.1
			}
			g := s.NewGrid()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Solve(rho, g)
			}
		})
	}
}
