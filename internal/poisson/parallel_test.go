package poisson

import (
	"math"
	"testing"

	"repro/internal/parallel"
)

// TestSolveBitwiseIdenticalAcrossWorkers: the solver has no reductions, so
// every worker count must produce bit-for-bit identical ψ and E fields.
func TestSolveBitwiseIdenticalAcrossWorkers(t *testing.T) {
	const nx, ny = 32, 32
	rho := make([]float64, nx*ny)
	for i := range rho {
		rho[i] = math.Sin(float64(3*i)) + 0.25*math.Cos(float64(7*i))
	}
	solve := func(workers int) *Grid {
		s := mustSolver(t, nx, ny)
		s.Workers = workers
		g := s.NewGrid()
		s.Solve(rho, g)
		return g
	}
	ref := solve(1)
	for _, w := range []int{2, 3, parallel.NumShards, 0} {
		g := solve(w)
		for i := range ref.Psi {
			if math.Float64bits(g.Psi[i]) != math.Float64bits(ref.Psi[i]) ||
				math.Float64bits(g.Ex[i]) != math.Float64bits(ref.Ex[i]) ||
				math.Float64bits(g.Ey[i]) != math.Float64bits(ref.Ey[i]) {
				t.Fatalf("workers=%d: field bit %d differs from serial", w, i)
			}
		}
	}
}

// TestSolveStatsAccumulate: Solve records the cost of its parallel
// sections for the telemetry speedup gauges.
func TestSolveStatsAccumulate(t *testing.T) {
	s := mustSolver(t, 16, 16)
	g := s.NewGrid()
	rho := make([]float64, 16*16)
	rho[5] = 1
	s.Solve(rho, g)
	if s.Stats().Wall <= 0 || s.Stats().Busy <= 0 {
		t.Errorf("stats not accumulated: %+v", s.Stats())
	}
}
