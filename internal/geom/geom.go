// Package geom provides the small set of planar-geometry primitives used
// throughout the placer: points, rectangles, overlap computation, interval
// clipping and segment cutting. All coordinates are float64 in database
// units (DBU); the placer treats one DBU as one site-width-independent unit.
package geom

import (
	"fmt"
	"math"
)

// Point is a location in the placement plane.
type Point struct {
	X, Y float64
}

// Add returns p + q componentwise.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns p - q componentwise.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Scale returns p scaled by s.
func (p Point) Scale(s float64) Point { return Point{p.X * s, p.Y * s} }

// Dot returns the dot product of p and q treated as vectors.
func (p Point) Dot(q Point) float64 { return p.X*q.X + p.Y*q.Y }

// Norm returns the Euclidean length of p treated as a vector.
func (p Point) Norm() float64 { return math.Hypot(p.X, p.Y) }

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 { return math.Hypot(p.X-q.X, p.Y-q.Y) }

// Unit returns p normalized to unit length. The zero vector is returned
// unchanged so callers need not special-case degenerate segments.
func (p Point) Unit() Point {
	n := p.Norm()
	if n == 0 {
		return p
	}
	return Point{p.X / n, p.Y / n}
}

// Perp returns p rotated 90 degrees counterclockwise.
func (p Point) Perp() Point { return Point{-p.Y, p.X} }

func (p Point) String() string { return fmt.Sprintf("(%.3f, %.3f)", p.X, p.Y) }

// Rect is an axis-aligned rectangle with Lo the lower-left corner and Hi the
// upper-right corner. A Rect with Hi.X <= Lo.X or Hi.Y <= Lo.Y is empty.
type Rect struct {
	Lo, Hi Point
}

// NewRect builds the rectangle spanning the two corner points in any order.
func NewRect(x0, y0, x1, y1 float64) Rect {
	if x1 < x0 {
		x0, x1 = x1, x0
	}
	if y1 < y0 {
		y0, y1 = y1, y0
	}
	return Rect{Point{x0, y0}, Point{x1, y1}}
}

// W returns the width of r (zero for empty rectangles).
func (r Rect) W() float64 { return math.Max(0, r.Hi.X-r.Lo.X) }

// H returns the height of r (zero for empty rectangles).
func (r Rect) H() float64 { return math.Max(0, r.Hi.Y-r.Lo.Y) }

// Area returns the area of r (zero for empty rectangles).
func (r Rect) Area() float64 { return r.W() * r.H() }

// Empty reports whether r has zero area.
func (r Rect) Empty() bool { return r.Hi.X <= r.Lo.X || r.Hi.Y <= r.Lo.Y }

// Center returns the center point of r.
func (r Rect) Center() Point {
	return Point{(r.Lo.X + r.Hi.X) / 2, (r.Lo.Y + r.Hi.Y) / 2}
}

// Contains reports whether p lies inside r (closed on the low edges, open on
// the high edges, the convention used for bin membership).
func (r Rect) Contains(p Point) bool {
	return p.X >= r.Lo.X && p.X < r.Hi.X && p.Y >= r.Lo.Y && p.Y < r.Hi.Y
}

// ContainsClosed reports whether p lies inside or on the boundary of r.
func (r Rect) ContainsClosed(p Point) bool {
	return p.X >= r.Lo.X && p.X <= r.Hi.X && p.Y >= r.Lo.Y && p.Y <= r.Hi.Y
}

// Intersect returns the intersection of r and s; the result may be empty.
func (r Rect) Intersect(s Rect) Rect {
	return Rect{
		Point{math.Max(r.Lo.X, s.Lo.X), math.Max(r.Lo.Y, s.Lo.Y)},
		Point{math.Min(r.Hi.X, s.Hi.X), math.Min(r.Hi.Y, s.Hi.Y)},
	}
}

// Overlap returns the overlap area of r and s.
func (r Rect) Overlap(s Rect) float64 { return r.Intersect(s).Area() }

// Intersects reports whether r and s share positive area.
func (r Rect) Intersects(s Rect) bool { return !r.Intersect(s).Empty() }

// Expand grows r by fraction f of its width/height on every side; f may be
// negative to shrink. Used for the paper's 10% macro bounding-box expansion.
func (r Rect) Expand(f float64) Rect {
	dx, dy := r.W()*f, r.H()*f
	return Rect{Point{r.Lo.X - dx, r.Lo.Y - dy}, Point{r.Hi.X + dx, r.Hi.Y + dy}}
}

// Pad grows r by the absolute margin m on every side.
func (r Rect) Pad(m float64) Rect {
	return Rect{Point{r.Lo.X - m, r.Lo.Y - m}, Point{r.Hi.X + m, r.Hi.Y + m}}
}

// Union returns the smallest rectangle containing both r and s.
func (r Rect) Union(s Rect) Rect {
	return Rect{
		Point{math.Min(r.Lo.X, s.Lo.X), math.Min(r.Lo.Y, s.Lo.Y)},
		Point{math.Max(r.Hi.X, s.Hi.X), math.Max(r.Hi.Y, s.Hi.Y)},
	}
}

func (r Rect) String() string {
	return fmt.Sprintf("[%s %s]", r.Lo, r.Hi)
}

// Clamp limits v to the closed interval [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// ClampInt limits v to the closed interval [lo, hi].
func ClampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// OverlapLen returns the length of the intersection of the 1-D intervals
// [a0,a1] and [b0,b1]. Intervals may be given in any order.
func OverlapLen(a0, a1, b0, b1 float64) float64 {
	if a1 < a0 {
		a0, a1 = a1, a0
	}
	if b1 < b0 {
		b0, b1 = b1, b0
	}
	return math.Max(0, math.Min(a1, b1)-math.Max(a0, b0))
}

// Segment is a straight line segment between two points. PG rails and two-pin
// net chords are segments.
type Segment struct {
	A, B Point
}

// Len returns the Euclidean length of s.
func (s Segment) Len() float64 { return s.A.Dist(s.B) }

// Horizontal reports whether s runs along the x axis.
func (s Segment) Horizontal() bool { return s.A.Y == s.B.Y }

// Vertical reports whether s runs along the y axis.
func (s Segment) Vertical() bool { return s.A.X == s.B.X }

// Lerp returns the point a fraction t of the way from A to B.
func (s Segment) Lerp(t float64) Point {
	return Point{s.A.X + t*(s.B.X-s.A.X), s.A.Y + t*(s.B.Y-s.A.Y)}
}

// CutAxisSegment removes the parts of an axis-aligned segment that fall inside
// any of the blockers, returning the surviving sub-segments in order. It is
// used by PG-rail selection: rails are cut by expanded macro bounding boxes
// (paper Sec. III-C step 1). Non-axis-aligned segments are returned uncut.
func CutAxisSegment(s Segment, blockers []Rect) []Segment {
	switch {
	case s.Horizontal():
		y := s.A.Y
		lo, hi := math.Min(s.A.X, s.B.X), math.Max(s.A.X, s.B.X)
		ivs := cutInterval(lo, hi, func(r Rect) (float64, float64, bool) {
			if y < r.Lo.Y || y > r.Hi.Y {
				return 0, 0, false
			}
			return r.Lo.X, r.Hi.X, true
		}, blockers)
		out := make([]Segment, 0, len(ivs))
		for _, iv := range ivs {
			out = append(out, Segment{Point{iv[0], y}, Point{iv[1], y}})
		}
		return out
	case s.Vertical():
		x := s.A.X
		lo, hi := math.Min(s.A.Y, s.B.Y), math.Max(s.A.Y, s.B.Y)
		ivs := cutInterval(lo, hi, func(r Rect) (float64, float64, bool) {
			if x < r.Lo.X || x > r.Hi.X {
				return 0, 0, false
			}
			return r.Lo.Y, r.Hi.Y, true
		}, blockers)
		out := make([]Segment, 0, len(ivs))
		for _, iv := range ivs {
			out = append(out, Segment{Point{x, iv[0]}, Point{x, iv[1]}})
		}
		return out
	default:
		return []Segment{s}
	}
}

// cutInterval subtracts, from [lo,hi], every blocker interval produced by
// proj, returning the remaining sub-intervals in increasing order.
func cutInterval(lo, hi float64, proj func(Rect) (float64, float64, bool), blockers []Rect) [][2]float64 {
	live := [][2]float64{{lo, hi}}
	for _, r := range blockers {
		blo, bhi, ok := proj(r)
		if !ok {
			continue
		}
		var next [][2]float64
		for _, iv := range live {
			// Left remainder.
			if iv[0] < blo {
				next = append(next, [2]float64{iv[0], math.Min(iv[1], blo)})
			}
			// Right remainder.
			if iv[1] > bhi {
				next = append(next, [2]float64{math.Max(iv[0], bhi), iv[1]})
			}
		}
		live = next
		if len(live) == 0 {
			break
		}
	}
	// Drop zero-length slivers.
	out := live[:0]
	for _, iv := range live {
		if iv[1] > iv[0] {
			out = append(out, iv)
		}
	}
	return out
}
