package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestPointArithmetic(t *testing.T) {
	p := Point{3, 4}
	q := Point{1, -2}
	if got := p.Add(q); got != (Point{4, 2}) {
		t.Errorf("Add = %v", got)
	}
	if got := p.Sub(q); got != (Point{2, 6}) {
		t.Errorf("Sub = %v", got)
	}
	if got := p.Scale(2); got != (Point{6, 8}) {
		t.Errorf("Scale = %v", got)
	}
	if got := p.Dot(q); got != 3-8 {
		t.Errorf("Dot = %v", got)
	}
	if got := p.Norm(); !almostEq(got, 5) {
		t.Errorf("Norm = %v", got)
	}
	if got := p.Dist(Point{0, 0}); !almostEq(got, 5) {
		t.Errorf("Dist = %v", got)
	}
}

func TestUnitZeroVector(t *testing.T) {
	z := Point{}
	if got := z.Unit(); got != z {
		t.Errorf("Unit of zero vector = %v, want zero", got)
	}
	u := Point{3, 4}.Unit()
	if !almostEq(u.Norm(), 1) {
		t.Errorf("Unit norm = %v, want 1", u.Norm())
	}
}

func TestPerpOrthogonal(t *testing.T) {
	p := Point{2.5, -7}
	if got := p.Dot(p.Perp()); !almostEq(got, 0) {
		t.Errorf("p . perp(p) = %v, want 0", got)
	}
	if !almostEq(p.Perp().Norm(), p.Norm()) {
		t.Errorf("perp changes length")
	}
}

func TestNewRectNormalizesCorners(t *testing.T) {
	r := NewRect(5, 7, 1, 2)
	if r.Lo != (Point{1, 2}) || r.Hi != (Point{5, 7}) {
		t.Errorf("NewRect = %v", r)
	}
	if !almostEq(r.W(), 4) || !almostEq(r.H(), 5) || !almostEq(r.Area(), 20) {
		t.Errorf("dims: W=%v H=%v Area=%v", r.W(), r.H(), r.Area())
	}
}

func TestRectContains(t *testing.T) {
	r := NewRect(0, 0, 10, 10)
	cases := []struct {
		p    Point
		half bool // half-open convention
		full bool // closed convention
	}{
		{Point{5, 5}, true, true},
		{Point{0, 0}, true, true},
		{Point{10, 10}, false, true},
		{Point{10, 5}, false, true},
		{Point{-1, 5}, false, false},
		{Point{5, 11}, false, false},
	}
	for _, c := range cases {
		if got := r.Contains(c.p); got != c.half {
			t.Errorf("Contains(%v) = %v, want %v", c.p, got, c.half)
		}
		if got := r.ContainsClosed(c.p); got != c.full {
			t.Errorf("ContainsClosed(%v) = %v, want %v", c.p, got, c.full)
		}
	}
}

func TestIntersectAndOverlap(t *testing.T) {
	a := NewRect(0, 0, 10, 10)
	b := NewRect(5, 5, 15, 15)
	if got := a.Overlap(b); !almostEq(got, 25) {
		t.Errorf("Overlap = %v, want 25", got)
	}
	c := NewRect(20, 20, 30, 30)
	if a.Intersects(c) {
		t.Errorf("disjoint rects report intersection")
	}
	if got := a.Overlap(c); got != 0 {
		t.Errorf("disjoint overlap = %v", got)
	}
	// Touching edges share no area.
	d := NewRect(10, 0, 20, 10)
	if a.Intersects(d) {
		t.Errorf("edge-touching rects report positive-area intersection")
	}
}

func TestOverlapCommutativeProperty(t *testing.T) {
	f := func(x0, y0, x1, y1, u0, v0, u1, v1 float64) bool {
		a := NewRect(mod100(x0), mod100(y0), mod100(x1), mod100(y1))
		b := NewRect(mod100(u0), mod100(v0), mod100(u1), mod100(v1))
		ab, ba := a.Overlap(b), b.Overlap(a)
		if math.Abs(ab-ba) > 1e-9 {
			return false
		}
		// Overlap bounded by each area.
		return ab <= a.Area()+1e-9 && ab <= b.Area()+1e-9 && ab >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func mod100(x float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return 0
	}
	return math.Mod(x, 100)
}

func TestExpandAndPad(t *testing.T) {
	r := NewRect(10, 10, 20, 30)
	e := r.Expand(0.1)
	if !almostEq(e.Lo.X, 9) || !almostEq(e.Hi.X, 21) {
		t.Errorf("Expand x: %v", e)
	}
	if !almostEq(e.Lo.Y, 8) || !almostEq(e.Hi.Y, 32) {
		t.Errorf("Expand y: %v", e)
	}
	p := r.Pad(2)
	if !almostEq(p.Lo.X, 8) || !almostEq(p.Hi.Y, 32) {
		t.Errorf("Pad: %v", p)
	}
}

func TestUnion(t *testing.T) {
	a := NewRect(0, 0, 5, 5)
	b := NewRect(10, -3, 12, 2)
	u := a.Union(b)
	want := NewRect(0, -3, 12, 5)
	if u != want {
		t.Errorf("Union = %v, want %v", u, want)
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 10) != 5 || Clamp(-1, 0, 10) != 0 || Clamp(11, 0, 10) != 10 {
		t.Errorf("Clamp wrong")
	}
	if ClampInt(5, 0, 10) != 5 || ClampInt(-1, 0, 10) != 0 || ClampInt(11, 0, 10) != 10 {
		t.Errorf("ClampInt wrong")
	}
}

func TestOverlapLen(t *testing.T) {
	if got := OverlapLen(0, 10, 5, 15); !almostEq(got, 5) {
		t.Errorf("OverlapLen = %v", got)
	}
	if got := OverlapLen(0, 10, 15, 20); !almostEq(got, 0) {
		t.Errorf("disjoint OverlapLen = %v", got)
	}
	if got := OverlapLen(10, 0, 5, 15); !almostEq(got, 5) {
		t.Errorf("reversed OverlapLen = %v", got)
	}
}

func TestSegmentBasics(t *testing.T) {
	s := Segment{Point{0, 0}, Point{3, 4}}
	if !almostEq(s.Len(), 5) {
		t.Errorf("Len = %v", s.Len())
	}
	if s.Horizontal() || s.Vertical() {
		t.Errorf("diagonal segment misclassified")
	}
	h := Segment{Point{0, 2}, Point{9, 2}}
	if !h.Horizontal() {
		t.Errorf("horizontal segment not detected")
	}
	v := Segment{Point{4, 0}, Point{4, 7}}
	if !v.Vertical() {
		t.Errorf("vertical segment not detected")
	}
	mid := s.Lerp(0.5)
	if !almostEq(mid.X, 1.5) || !almostEq(mid.Y, 2) {
		t.Errorf("Lerp = %v", mid)
	}
}

func TestCutAxisSegmentHorizontal(t *testing.T) {
	s := Segment{Point{0, 5}, Point{100, 5}}
	blockers := []Rect{NewRect(20, 0, 40, 10), NewRect(60, 0, 70, 10)}
	parts := CutAxisSegment(s, blockers)
	if len(parts) != 3 {
		t.Fatalf("got %d parts, want 3: %v", len(parts), parts)
	}
	wantX := [][2]float64{{0, 20}, {40, 60}, {70, 100}}
	for i, p := range parts {
		if !almostEq(p.A.X, wantX[i][0]) || !almostEq(p.B.X, wantX[i][1]) {
			t.Errorf("part %d = %v, want x-range %v", i, p, wantX[i])
		}
		if p.A.Y != 5 || p.B.Y != 5 {
			t.Errorf("part %d moved off rail", i)
		}
	}
}

func TestCutAxisSegmentVertical(t *testing.T) {
	s := Segment{Point{5, 0}, Point{5, 50}}
	blockers := []Rect{NewRect(0, 10, 10, 20)}
	parts := CutAxisSegment(s, blockers)
	if len(parts) != 2 {
		t.Fatalf("got %d parts, want 2", len(parts))
	}
	if !almostEq(parts[0].B.Y, 10) || !almostEq(parts[1].A.Y, 20) {
		t.Errorf("cut positions wrong: %v", parts)
	}
}

func TestCutAxisSegmentMisses(t *testing.T) {
	s := Segment{Point{0, 5}, Point{100, 5}}
	// Blocker does not cover the rail's y.
	parts := CutAxisSegment(s, []Rect{NewRect(20, 10, 40, 20)})
	if len(parts) != 1 || parts[0] != s {
		t.Errorf("segment should be uncut: %v", parts)
	}
}

func TestCutAxisSegmentFullyBlocked(t *testing.T) {
	s := Segment{Point{10, 5}, Point{20, 5}}
	parts := CutAxisSegment(s, []Rect{NewRect(0, 0, 100, 10)})
	if len(parts) != 0 {
		t.Errorf("fully blocked segment should vanish: %v", parts)
	}
}

func TestCutAxisSegmentTotalLengthProperty(t *testing.T) {
	// Cutting never increases total length, and pieces stay inside original span.
	f := func(bx0, bx1, bx2, bx3 float64) bool {
		s := Segment{Point{0, 5}, Point{100, 5}}
		blockers := []Rect{
			NewRect(mod100(bx0), 0, mod100(bx1), 10),
			NewRect(mod100(bx2), 0, mod100(bx3), 10),
		}
		total := 0.0
		for _, p := range CutAxisSegment(s, blockers) {
			if p.A.X < -1e-9 || p.B.X > 100+1e-9 {
				return false
			}
			total += p.Len()
		}
		return total <= s.Len()+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCutDiagonalUnchanged(t *testing.T) {
	s := Segment{Point{0, 0}, Point{10, 10}}
	parts := CutAxisSegment(s, []Rect{NewRect(2, 2, 8, 8)})
	if len(parts) != 1 || parts[0] != s {
		t.Errorf("diagonal segment should pass through uncut")
	}
}
