// Package pgrail implements the dynamic pin-accessibility density
// optimization of paper Sec. III-C: selecting the power/ground rails whose
// surrounding cell density may safely be adjusted (step 1, Fig. 4), and
// converting the selected rails plus the current congestion map into the
// additive bin density D^PG of Eq. 13–15 (step 2), re-evaluated every
// routability iteration.
package pgrail

import (
	"fmt"

	"repro/internal/geom"
	"repro/internal/netlist"
)

// MacroExpand is the fractional bounding-box expansion applied to each macro
// before cutting rails (the paper expands by 10%).
const MacroExpand = 0.10

// MinLenFrac is the minimum selected-rail length as a fraction of the
// placement region's width (horizontal rails) or height (vertical rails);
// the paper uses 0.2.
const MinLenFrac = 0.20

// SelectRails performs the pre-processing step of Sec. III-C: every rail is
// cut by the 10%-expanded macro bounding boxes, and the surviving pieces are
// kept only if they are at least 0.2× the die width (horizontal) or height
// (vertical). The narrow channels between macros — already congested — are
// thereby excluded from density adjustment.
func SelectRails(d *netlist.Design) []netlist.PGRail {
	blockers := make([]geom.Rect, 0, 8)
	for _, r := range d.MacroRects() {
		blockers = append(blockers, r.Expand(MacroExpand))
	}
	minH := MinLenFrac * d.Die.W()
	minV := MinLenFrac * d.Die.H()
	var out []netlist.PGRail
	for _, rail := range d.Rails {
		for _, piece := range geom.CutAxisSegment(rail.Seg, blockers) {
			keep := false
			switch {
			case piece.Horizontal():
				keep = piece.Len() >= minH
			case piece.Vertical():
				keep = piece.Len() >= minV
			}
			if keep {
				out = append(out, netlist.PGRail{Seg: piece, Width: rail.Width})
			}
		}
	}
	return out
}

// BinGrid describes the bin discretization shared with the density model
// (the paper predefines G-cells and bins to have the same dimensions, so a
// G-cell congestion value maps 1:1 onto a bin).
type BinGrid struct {
	NX, NY     int
	Die        geom.Rect
	BinW, BinH float64
}

// Density computes the PG-rail additive area term of Eq. 14:
//
//	D_b^PG · A_b = η_b·(1+C_b) · Σ_{i∈V_PG} A_{PG_i ∩ b}
//
// returning area-per-bin values (the density model divides by A_b), where
// η_b = 1 iff the bin's congestion C_b exceeds the average C̄ (Eq. 15).
// cong is the bin-mapped congestion map with NX·NY entries, avg its mean; a
// map of the wrong size is an API-boundary mistake reported as an error,
// not a panic.
func Density(selected []netlist.PGRail, grid BinGrid, cong []float64, avg float64) ([]float64, error) {
	if len(cong) != grid.NX*grid.NY {
		return nil, fmt.Errorf("pgrail: congestion map has %d entries, grid is %dx%d",
			len(cong), grid.NX, grid.NY)
	}
	out := make([]float64, grid.NX*grid.NY)
	for _, rail := range selected {
		r := rail.Rect().Intersect(grid.Die)
		if r.Empty() {
			continue
		}
		bx0 := geom.ClampInt(int((r.Lo.X-grid.Die.Lo.X)/grid.BinW), 0, grid.NX-1)
		bx1 := geom.ClampInt(int((r.Hi.X-grid.Die.Lo.X)/grid.BinW), 0, grid.NX-1)
		by0 := geom.ClampInt(int((r.Lo.Y-grid.Die.Lo.Y)/grid.BinH), 0, grid.NY-1)
		by1 := geom.ClampInt(int((r.Hi.Y-grid.Die.Lo.Y)/grid.BinH), 0, grid.NY-1)
		for by := by0; by <= by1; by++ {
			y0 := grid.Die.Lo.Y + float64(by)*grid.BinH
			oy := geom.OverlapLen(r.Lo.Y, r.Hi.Y, y0, y0+grid.BinH)
			if oy <= 0 {
				continue
			}
			for bx := bx0; bx <= bx1; bx++ {
				x0 := grid.Die.Lo.X + float64(bx)*grid.BinW
				ox := geom.OverlapLen(r.Lo.X, r.Hi.X, x0, x0+grid.BinW)
				if ox <= 0 {
					continue
				}
				b := by*grid.NX + bx
				if cong[b] > avg { // η_b gate, Eq. 15
					out[b] += ox * oy * (1 + cong[b])
				}
			}
		}
	}
	return out, nil
}

// StaticDensity is the Xplace-Route-style baseline (Sec. III-C: "Xplace-Route
// only adjusts cell density around PG rails before placement"): every rail —
// unselected, uncut — contributes its overlap area to every bin it touches,
// with no congestion gating and no per-iteration adaptation.
func StaticDensity(d *netlist.Design, grid BinGrid) ([]float64, error) {
	ones := make([]float64, grid.NX*grid.NY) // C_b = 0 everywhere, η forced on
	return Density(d.Rails, grid, ones, -1)  // avg −1 < 0 = every bin passes
}
