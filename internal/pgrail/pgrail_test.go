package pgrail

import (
	"math"
	"testing"

	"repro/internal/geom"
	"repro/internal/netlist"
	"repro/internal/synth"
)

// railDesign builds a die with one macro and three horizontal rails: one
// crossing the macro, one clear and long, one clear but short.
func railDesign(t testing.TB) *netlist.Design {
	t.Helper()
	b := netlist.NewBuilder("rails", geom.NewRect(0, 0, 100, 100), 10, 1)
	b.AddCell("m", netlist.Macro, 50, 50, 40, 20) // rect [30,40]x[70,60]
	b.AddCell("c", netlist.StdCell, 10, 10, 2, 10)
	n := b.AddNet("n", 1)
	b.Connect(0, n, 0, 0)
	b.Connect(1, n, 0, 0)
	// Rail crossing the macro at y=50.
	b.AddRail(geom.Segment{A: geom.Point{X: 0, Y: 50}, B: geom.Point{X: 100, Y: 50}}, 2)
	// Clear rail at y=80.
	b.AddRail(geom.Segment{A: geom.Point{X: 0, Y: 80}, B: geom.Point{X: 100, Y: 80}}, 2)
	// Short rail at y=20 (length 10 < 0.2·100).
	b.AddRail(geom.Segment{A: geom.Point{X: 45, Y: 20}, B: geom.Point{X: 55, Y: 20}}, 2)
	return b.MustBuild()
}

func TestSelectRailsCutsAndFilters(t *testing.T) {
	d := railDesign(t)
	sel := SelectRails(d)
	// Expect: rail y=50 cut into [0, 28] and [72, 100] (macro expanded 10%:
	// [26,38]x[74,62]), both pieces ≥ 20 → kept; rail y=80 kept whole;
	// short rail dropped. Total 3 rails.
	if len(sel) != 3 {
		t.Fatalf("selected %d rails, want 3: %+v", len(sel), sel)
	}
	var cutPieces, whole int
	for _, r := range sel {
		if !r.Seg.Horizontal() {
			t.Errorf("selected rail not horizontal")
		}
		if r.Seg.Len() < 0.2*d.Die.W() {
			t.Errorf("selected rail shorter than threshold: %v", r.Seg.Len())
		}
		switch r.Seg.A.Y {
		case 50:
			cutPieces++
		case 80:
			whole++
		case 20:
			t.Errorf("short rail was selected")
		}
	}
	if cutPieces != 2 || whole != 1 {
		t.Errorf("cut pieces %d (want 2), whole %d (want 1)", cutPieces, whole)
	}
	// Verify the macro expansion: the cut boundary must be at 26 (30−10%·40).
	for _, r := range sel {
		if r.Seg.A.Y == 50 && r.Seg.A.X == 0 {
			if math.Abs(r.Seg.B.X-26) > 1e-9 {
				t.Errorf("left piece ends at %v, want 26 (10%% expanded macro)", r.Seg.B.X)
			}
		}
	}
}

func TestSelectRailsNoMacros(t *testing.T) {
	b := netlist.NewBuilder("nomacro", geom.NewRect(0, 0, 100, 100), 10, 1)
	b.AddCell("c", netlist.StdCell, 10, 10, 2, 10)
	n := b.AddNet("n", 1)
	b.Connect(0, n, 0, 0)
	b.AddRail(geom.Segment{A: geom.Point{X: 0, Y: 30}, B: geom.Point{X: 100, Y: 30}}, 2)
	d := b.MustBuild()
	sel := SelectRails(d)
	if len(sel) != 1 || sel[0].Seg.Len() != 100 {
		t.Errorf("rail without macros should be selected whole: %+v", sel)
	}
}

func TestSelectRailsOnSyntheticMatrixMultA(t *testing.T) {
	// Fig. 4's design: the macro grid must remove some rails/pieces.
	d := synth.MustGenerate("matrix_mult_a")
	sel := SelectRails(d)
	if len(sel) == 0 {
		t.Fatalf("no rails selected on matrix_mult_a")
	}
	var selLen, totLen float64
	for _, r := range sel {
		selLen += r.Seg.Len()
	}
	for _, r := range d.Rails {
		totLen += r.Seg.Len()
	}
	if selLen >= totLen {
		t.Errorf("selection did not remove any rail length (%v of %v)", selLen, totLen)
	}
	if selLen < 0.2*totLen {
		t.Errorf("selection removed almost everything (%v of %v)", selLen, totLen)
	}
}

func testGrid() BinGrid {
	return BinGrid{NX: 10, NY: 10, Die: geom.NewRect(0, 0, 100, 100), BinW: 10, BinH: 10}
}

func TestDensityGatedByCongestion(t *testing.T) {
	g := testGrid()
	rails := []netlist.PGRail{{
		Seg:   geom.Segment{A: geom.Point{X: 0, Y: 55}, B: geom.Point{X: 100, Y: 55}},
		Width: 4,
	}}
	cong := make([]float64, 100)
	// Congest only bins x∈[0..4] of row 5.
	for bx := 0; bx < 5; bx++ {
		cong[5*10+bx] = 0.5
	}
	avg := 0.025 // mean over the map
	out, err := Density(rails, g, cong, avg)
	if err != nil {
		t.Fatal(err)
	}
	for bx := 0; bx < 10; bx++ {
		b := 5*10 + bx
		if bx < 5 {
			want := 10.0 * 4 * (1 + 0.5) // overlap area × (1+C_b)
			if math.Abs(out[b]-want) > 1e-9 {
				t.Errorf("bin %d density %v, want %v", b, out[b], want)
			}
		} else if out[b] != 0 {
			t.Errorf("uncongested bin %d got density %v (η must gate it off)", b, out[b])
		}
	}
	// Rows without the rail stay zero everywhere.
	for by := 0; by < 10; by++ {
		if by == 5 {
			continue
		}
		for bx := 0; bx < 10; bx++ {
			if out[by*10+bx] != 0 {
				t.Errorf("bin (%d,%d) off the rail got density", bx, by)
			}
		}
	}
}

func TestDensityWeightGrowsWithCongestion(t *testing.T) {
	g := testGrid()
	rails := []netlist.PGRail{{
		Seg:   geom.Segment{A: geom.Point{X: 0, Y: 55}, B: geom.Point{X: 100, Y: 55}},
		Width: 2,
	}}
	mk := func(c float64) float64 {
		cong := make([]float64, 100)
		cong[5*10+2] = c
		out, err := Density(rails, g, cong, c/200)
		if err != nil {
			t.Fatal(err)
		}
		return out[5*10+2]
	}
	lo := mk(0.3)
	hi := mk(1.2)
	if hi <= lo {
		t.Errorf("density did not grow with congestion: %v → %v", lo, hi)
	}
	if math.Abs(hi/lo-(1+1.2)/(1+0.3)) > 1e-9 {
		t.Errorf("weight ratio %v, want %v (Eq. 14's 1+C_b)", hi/lo, (1+1.2)/(1+0.3))
	}
}

func TestDensityRejectsBadLength(t *testing.T) {
	if _, err := Density(nil, testGrid(), make([]float64, 3), 0); err == nil {
		t.Errorf("bad congestion length not caught")
	}
	if _, err := Density(nil, testGrid(), nil, 0); err == nil {
		t.Errorf("nil congestion map not caught")
	}
}

func TestStaticDensityCoversAllRails(t *testing.T) {
	d := railDesign(t)
	g := testGrid()
	out, err := StaticDensity(d, g)
	if err != nil {
		t.Fatal(err)
	}
	var total float64
	for _, v := range out {
		total += v
	}
	if total <= 0 {
		t.Fatalf("static density empty")
	}
	// The short rail (excluded by selection) must contribute here.
	b := 2*10 + 5 // bin containing (50, 20)... y=20 → by=2, x=50 → bx=5
	if out[b] == 0 {
		t.Errorf("static density ignored the short rail")
	}
}

func TestDynamicChangesWithCongestionStaticDoesNot(t *testing.T) {
	d := railDesign(t)
	g := testGrid()
	sel := SelectRails(d)

	congA := make([]float64, 100)
	congA[8*10+3] = 1.0 // bin under the y=80 rail
	dynA, err := Density(sel, g, congA, 0.005)
	if err != nil {
		t.Fatal(err)
	}

	congB := make([]float64, 100) // congestion cleared
	dynB, err := Density(sel, g, congB, 0)
	if err != nil {
		t.Fatal(err)
	}

	var sumA, sumB float64
	for i := range dynA {
		sumA += dynA[i]
		sumB += dynB[i]
	}
	if sumA <= sumB {
		t.Errorf("dynamic density did not respond to congestion: %v vs %v", sumA, sumB)
	}
	// Static is congestion-independent by construction.
	s1, err1 := StaticDensity(d, g)
	s2, err2 := StaticDensity(d, g)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatalf("static density not deterministic")
		}
	}
}
