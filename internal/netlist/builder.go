package netlist

import (
	"fmt"

	"repro/internal/geom"
)

// Builder constructs a Design incrementally while maintaining the cell/net/
// pin cross-references. The synthetic benchmark generator and the unit tests
// use it; it is also the natural target for a future file-format loader.
type Builder struct {
	d Design
}

// NewBuilder starts a design with the given name and die rectangle.
func NewBuilder(name string, die geom.Rect, rowHeight, siteWidth float64) *Builder {
	return &Builder{d: Design{
		Name:          name,
		Die:           die,
		RowHeight:     rowHeight,
		SiteWidth:     siteWidth,
		RouteLayers:   4,
		RouteCapScale: 1.0,
		TargetDensity: 0.9,
	}}
}

// AddCell appends a cell and returns its index.
func (b *Builder) AddCell(name string, kind CellKind, x, y, w, h float64) int {
	b.d.Cells = append(b.d.Cells, Cell{Name: name, Kind: kind, X: x, Y: y, W: w, H: h})
	return len(b.d.Cells) - 1
}

// AddNet appends an empty net and returns its index.
func (b *Builder) AddNet(name string, weight float64) int {
	b.d.Nets = append(b.d.Nets, Net{Name: name, Weight: weight})
	return len(b.d.Nets) - 1
}

// Connect attaches a new pin on cell to net with the given offsets from the
// cell center, and returns the pin index.
func (b *Builder) Connect(cell, net int, offX, offY float64) int {
	if cell < 0 || cell >= len(b.d.Cells) {
		panic(fmt.Sprintf("netlist: Connect to bad cell %d", cell))
	}
	if net < 0 || net >= len(b.d.Nets) {
		panic(fmt.Sprintf("netlist: Connect to bad net %d", net))
	}
	pi := len(b.d.Pins)
	b.d.Pins = append(b.d.Pins, Pin{Cell: cell, Net: net, OffX: offX, OffY: offY})
	b.d.Cells[cell].Pins = append(b.d.Cells[cell].Pins, pi)
	b.d.Nets[net].Pins = append(b.d.Nets[net].Pins, pi)
	return pi
}

// AddRail appends a PG rail.
func (b *Builder) AddRail(seg geom.Segment, width float64) {
	b.d.Rails = append(b.d.Rails, PGRail{Seg: seg, Width: width})
}

// SetRouteLayers overrides the default routing layer count.
func (b *Builder) SetRouteLayers(n int) { b.d.RouteLayers = n }

// SetRouteCapScale overrides the routing capacity scale factor.
func (b *Builder) SetRouteCapScale(s float64) { b.d.RouteCapScale = s }

// SetTargetDensity overrides the default bin density bound.
func (b *Builder) SetTargetDensity(td float64) { b.d.TargetDensity = td }

// Build finalizes pin-count caches, validates the design and returns it.
func (b *Builder) Build() (*Design, error) {
	for i := range b.d.Cells {
		b.d.Cells[i].NumPins = len(b.d.Cells[i].Pins)
	}
	if err := b.d.Validate(); err != nil {
		return nil, err
	}
	d := b.d
	return &d, nil
}

// MustBuild is Build for tests and generators with known-good inputs.
func (b *Builder) MustBuild() *Design {
	d, err := b.Build()
	if err != nil {
		panic(err)
	}
	return d
}
