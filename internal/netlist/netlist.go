// Package netlist defines the circuit data model shared by every stage of
// the placer: cells, nets, pins, macros, power/ground rails and the design
// container. The model matches what the ISPD 2015 contest benchmarks provide
// to a detailed-routing-driven placement flow — standard cells on rows,
// fixed macro blocks, a pin-level hypergraph, and M2 PG rails.
package netlist

import (
	"fmt"
	"math"

	"repro/internal/geom"
)

// CellKind distinguishes the three classes of placeable objects.
type CellKind uint8

const (
	// StdCell is a movable standard cell placed on rows.
	StdCell CellKind = iota
	// Macro is a fixed macro block (placement blockage + routing obstacle).
	Macro
	// IOPad is a fixed terminal on or near the die boundary.
	IOPad
)

func (k CellKind) String() string {
	switch k {
	case StdCell:
		return "stdcell"
	case Macro:
		return "macro"
	case IOPad:
		return "iopad"
	default:
		return "unknown"
	}
}

// Cell is one placeable (or fixed) object. Positions X, Y are the cell
// CENTER in DBU; the placer optimizes centers and converts to lower-left
// corners only at legalization.
type Cell struct {
	Name string
	Kind CellKind
	X, Y float64 // center
	W, H float64 // size
	Pins []int   // indices into Design.Pins

	// NumPins caches len(Pins); Algorithm 2 compares it to the design
	// average when selecting multi-pin cells.
	NumPins int
}

// Movable reports whether the placer may move the cell.
func (c *Cell) Movable() bool { return c.Kind == StdCell }

// Area returns the footprint area of the cell.
func (c *Cell) Area() float64 { return c.W * c.H }

// Rect returns the cell's bounding rectangle at its current position.
func (c *Cell) Rect() geom.Rect {
	return geom.Rect{
		Lo: geom.Point{X: c.X - c.W/2, Y: c.Y - c.H/2},
		Hi: geom.Point{X: c.X + c.W/2, Y: c.Y + c.H/2},
	}
}

// Pin is a connection point. It belongs to exactly one cell and one net.
// Offsets are measured from the cell center, so the absolute pin location is
// (cell.X+OffX, cell.Y+OffY) and moves with the cell.
type Pin struct {
	Cell int // index into Design.Cells
	Net  int // index into Design.Nets
	OffX float64
	OffY float64
}

// Net is a hyperedge over pins.
type Net struct {
	Name   string
	Pins   []int // indices into Design.Pins
	Weight float64
}

// Degree returns the number of pins on the net.
func (n *Net) Degree() int { return len(n.Pins) }

// PGRail is one power or ground rail segment on the M2 layer. The paper's
// pin-accessibility technique selects a subset of these for density
// adjustment (Sec. III-C).
type PGRail struct {
	Seg   geom.Segment
	Width float64 // rail width in DBU
}

// Rect returns the area footprint of the rail (the segment thickened by the
// rail width), used for overlap-with-bin computation in Eq. 14.
func (r PGRail) Rect() geom.Rect {
	h := r.Width / 2
	a, b := r.Seg.A, r.Seg.B
	return geom.NewRect(math.Min(a.X, b.X)-h, math.Min(a.Y, b.Y)-h,
		math.Max(a.X, b.X)+h, math.Max(a.Y, b.Y)+h)
}

// Design is a complete placement instance.
type Design struct {
	Name      string
	Die       geom.Rect
	RowHeight float64
	SiteWidth float64

	Cells []Cell
	Nets  []Net
	Pins  []Pin
	Rails []PGRail

	// RouteLayers is the number of routing layers the global router models.
	RouteLayers int
	// RouteCapScale scales per-layer routing capacity; 1.0 is the nominal
	// track density, lower values model resource-constrained technologies.
	RouteCapScale float64
	// TargetDensity is the bin density upper bound used by the density term.
	TargetDensity float64
}

// PinPos returns the absolute position of pin p.
func (d *Design) PinPos(p int) geom.Point {
	pin := &d.Pins[p]
	c := &d.Cells[pin.Cell]
	return geom.Point{X: c.X + pin.OffX, Y: c.Y + pin.OffY}
}

// NetBBox returns the bounding box of net e's pins.
func (d *Design) NetBBox(e int) geom.Rect {
	net := &d.Nets[e]
	if len(net.Pins) == 0 {
		return geom.Rect{}
	}
	p0 := d.PinPos(net.Pins[0])
	r := geom.Rect{Lo: p0, Hi: p0}
	for _, pi := range net.Pins[1:] {
		p := d.PinPos(pi)
		if p.X < r.Lo.X {
			r.Lo.X = p.X
		}
		if p.X > r.Hi.X {
			r.Hi.X = p.X
		}
		if p.Y < r.Lo.Y {
			r.Lo.Y = p.Y
		}
		if p.Y > r.Hi.Y {
			r.Hi.Y = p.Y
		}
	}
	return r
}

// HPWL returns the weighted total half-perimeter wirelength of the design.
func (d *Design) HPWL() float64 {
	var total float64
	for e := range d.Nets {
		if d.Nets[e].Degree() < 2 {
			continue
		}
		bb := d.NetBBox(e)
		w := d.Nets[e].Weight
		if w == 0 {
			w = 1
		}
		total += w * (bb.W() + bb.H())
	}
	return total
}

// Stats summarizes a design for reporting and for generator validation.
type Stats struct {
	NumCells    int
	NumMovable  int
	NumMacros   int
	NumIOPads   int
	NumNets     int
	NumPins     int
	NumRails    int
	MovableArea float64
	FixedArea   float64
	DieArea     float64
	Utilization float64 // movable area / free area
	AvgPins     float64 // average pins per cell (Alg. 2's n̄)
}

// ComputeStats derives summary statistics.
func (d *Design) ComputeStats() Stats {
	var s Stats
	s.NumCells = len(d.Cells)
	s.NumNets = len(d.Nets)
	s.NumPins = len(d.Pins)
	s.NumRails = len(d.Rails)
	s.DieArea = d.Die.Area()
	var pinSum int
	for i := range d.Cells {
		c := &d.Cells[i]
		pinSum += c.NumPins
		switch c.Kind {
		case StdCell:
			s.NumMovable++
			s.MovableArea += c.Area()
		case Macro:
			s.NumMacros++
			s.FixedArea += c.Rect().Intersect(d.Die).Area()
		case IOPad:
			s.NumIOPads++
		}
	}
	free := s.DieArea - s.FixedArea
	if free > 0 {
		s.Utilization = s.MovableArea / free
	}
	if s.NumCells > 0 {
		s.AvgPins = float64(pinSum) / float64(s.NumCells)
	}
	return s
}

// AvgPinsPerCell returns n̄ of Algorithm 2: the mean pin count over all cells.
func (d *Design) AvgPinsPerCell() float64 {
	if len(d.Cells) == 0 {
		return 0
	}
	var sum int
	for i := range d.Cells {
		sum += d.Cells[i].NumPins
	}
	return float64(sum) / float64(len(d.Cells))
}

// MovableIndices returns the indices of all movable cells, in order.
func (d *Design) MovableIndices() []int {
	out := make([]int, 0, len(d.Cells))
	for i := range d.Cells {
		if d.Cells[i].Movable() {
			out = append(out, i)
		}
	}
	return out
}

// MacroRects returns the bounding rectangles of all macros.
func (d *Design) MacroRects() []geom.Rect {
	var out []geom.Rect
	for i := range d.Cells {
		if d.Cells[i].Kind == Macro {
			out = append(out, d.Cells[i].Rect())
		}
	}
	return out
}

// SnapshotPositions copies the centers of all cells into a flat [x0,y0,x1,y1,...]
// slice; RestorePositions writes such a snapshot back. The optimizer and the
// evaluator use snapshots to compare placements without copying whole designs.
func (d *Design) SnapshotPositions() []float64 {
	out := make([]float64, 2*len(d.Cells))
	for i := range d.Cells {
		out[2*i] = d.Cells[i].X
		out[2*i+1] = d.Cells[i].Y
	}
	return out
}

// RestorePositions writes a snapshot produced by SnapshotPositions back into
// the design. It panics if the snapshot length does not match.
func (d *Design) RestorePositions(snap []float64) {
	if len(snap) != 2*len(d.Cells) {
		panic("netlist: snapshot length mismatch")
	}
	for i := range d.Cells {
		d.Cells[i].X = snap[2*i]
		d.Cells[i].Y = snap[2*i+1]
	}
}

// ClampToDie moves every movable cell's center so its footprint stays inside
// the die.
func (d *Design) ClampToDie() {
	for i := range d.Cells {
		c := &d.Cells[i]
		if !c.Movable() {
			continue
		}
		c.X = geom.Clamp(c.X, d.Die.Lo.X+c.W/2, d.Die.Hi.X-c.W/2)
		c.Y = geom.Clamp(c.Y, d.Die.Lo.Y+c.H/2, d.Die.Hi.Y-c.H/2)
	}
}

// Validate checks referential integrity of the hypergraph and geometry; the
// synthetic generator and file loaders run it after construction.
func (d *Design) Validate() error {
	if d.Die.Empty() {
		return fmt.Errorf("design %s: empty die", d.Name)
	}
	if d.RowHeight <= 0 || d.SiteWidth <= 0 {
		return fmt.Errorf("design %s: non-positive row height or site width", d.Name)
	}
	for i := range d.Pins {
		p := &d.Pins[i]
		if p.Cell < 0 || p.Cell >= len(d.Cells) {
			return fmt.Errorf("pin %d: bad cell index %d", i, p.Cell)
		}
		if p.Net < 0 || p.Net >= len(d.Nets) {
			return fmt.Errorf("pin %d: bad net index %d", i, p.Net)
		}
	}
	for ci := range d.Cells {
		c := &d.Cells[ci]
		if c.W <= 0 || c.H <= 0 {
			return fmt.Errorf("cell %d (%s): non-positive size", ci, c.Name)
		}
		if c.NumPins != len(c.Pins) {
			return fmt.Errorf("cell %d (%s): NumPins cache %d != %d", ci, c.Name, c.NumPins, len(c.Pins))
		}
		for _, pi := range c.Pins {
			if pi < 0 || pi >= len(d.Pins) {
				return fmt.Errorf("cell %d: bad pin index %d", ci, pi)
			}
			if d.Pins[pi].Cell != ci {
				return fmt.Errorf("cell %d: pin %d back-reference mismatch", ci, pi)
			}
		}
	}
	for ei := range d.Nets {
		for _, pi := range d.Nets[ei].Pins {
			if pi < 0 || pi >= len(d.Pins) {
				return fmt.Errorf("net %d: bad pin index %d", ei, pi)
			}
			if d.Pins[pi].Net != ei {
				return fmt.Errorf("net %d: pin %d back-reference mismatch", ei, pi)
			}
		}
	}
	return nil
}
