package netlist

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/geom"
)

// tinyDesign builds a 4-cell, 2-net design used across the tests.
//
//	c0 (10,10) --- n0 --- c1 (30,10)
//	c0, c1, c2 --- n1 --- (c2 at (10,40))
//	m0: fixed macro at (70,70) 20x20
func tinyDesign(t testing.TB) *Design {
	t.Helper()
	b := NewBuilder("tiny", geom.NewRect(0, 0, 100, 100), 10, 1)
	c0 := b.AddCell("c0", StdCell, 10, 10, 2, 10)
	c1 := b.AddCell("c1", StdCell, 30, 10, 4, 10)
	c2 := b.AddCell("c2", StdCell, 10, 40, 2, 10)
	m0 := b.AddCell("m0", Macro, 70, 70, 20, 20)
	n0 := b.AddNet("n0", 1)
	n1 := b.AddNet("n1", 2)
	b.Connect(c0, n0, 0, 0)
	b.Connect(c1, n0, 0, 0)
	b.Connect(c0, n1, 1, 0)
	b.Connect(c1, n1, -1, 0)
	b.Connect(c2, n1, 0, 0)
	b.Connect(m0, n1, -10, -10)
	b.AddRail(geom.Segment{A: geom.Point{X: 0, Y: 20}, B: geom.Point{X: 100, Y: 20}}, 2)
	return b.MustBuild()
}

func TestBuilderWiring(t *testing.T) {
	d := tinyDesign(t)
	if got := len(d.Cells); got != 4 {
		t.Fatalf("cells = %d", got)
	}
	if got := len(d.Nets); got != 2 {
		t.Fatalf("nets = %d", got)
	}
	if got := len(d.Pins); got != 6 {
		t.Fatalf("pins = %d", got)
	}
	if d.Nets[0].Degree() != 2 || d.Nets[1].Degree() != 4 {
		t.Errorf("net degrees wrong: %d, %d", d.Nets[0].Degree(), d.Nets[1].Degree())
	}
	if d.Cells[0].NumPins != 2 {
		t.Errorf("c0 NumPins = %d, want 2", d.Cells[0].NumPins)
	}
	if err := d.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestPinPosMovesWithCell(t *testing.T) {
	d := tinyDesign(t)
	p := d.PinPos(2) // c0's pin on n1 with offset (1,0)
	if p != (geom.Point{X: 11, Y: 10}) {
		t.Fatalf("PinPos = %v", p)
	}
	d.Cells[0].X += 5
	p = d.PinPos(2)
	if p != (geom.Point{X: 16, Y: 10}) {
		t.Fatalf("PinPos after move = %v", p)
	}
}

func TestNetBBoxAndHPWL(t *testing.T) {
	d := tinyDesign(t)
	bb := d.NetBBox(0)
	if bb.W() != 20 || bb.H() != 0 {
		t.Errorf("n0 bbox = %v", bb)
	}
	// n1 pins: (11,10), (29,10), (10,40), (60,60) → bbox 50x50, weight 2.
	bb1 := d.NetBBox(1)
	if bb1.W() != 50 || bb1.H() != 50 {
		t.Errorf("n1 bbox = %v", bb1)
	}
	want := 1*20.0 + 2*(50+50.0)
	if got := d.HPWL(); math.Abs(got-want) > 1e-9 {
		t.Errorf("HPWL = %v, want %v", got, want)
	}
}

func TestMovableAndKinds(t *testing.T) {
	d := tinyDesign(t)
	if !d.Cells[0].Movable() || d.Cells[3].Movable() {
		t.Errorf("movable flags wrong")
	}
	mv := d.MovableIndices()
	if len(mv) != 3 {
		t.Errorf("MovableIndices = %v", mv)
	}
	if got := len(d.MacroRects()); got != 1 {
		t.Errorf("MacroRects = %d", got)
	}
	if StdCell.String() != "stdcell" || Macro.String() != "macro" || IOPad.String() != "iopad" {
		t.Errorf("CellKind strings wrong")
	}
	if CellKind(200).String() != "unknown" {
		t.Errorf("unknown kind string wrong")
	}
}

func TestComputeStats(t *testing.T) {
	d := tinyDesign(t)
	s := d.ComputeStats()
	if s.NumMovable != 3 || s.NumMacros != 1 || s.NumNets != 2 {
		t.Errorf("stats counts: %+v", s)
	}
	wantMovable := 2*10.0 + 4*10 + 2*10
	if math.Abs(s.MovableArea-wantMovable) > 1e-9 {
		t.Errorf("MovableArea = %v, want %v", s.MovableArea, wantMovable)
	}
	if math.Abs(s.FixedArea-400) > 1e-9 {
		t.Errorf("FixedArea = %v, want 400", s.FixedArea)
	}
	wantUtil := wantMovable / (100*100 - 400)
	if math.Abs(s.Utilization-wantUtil) > 1e-9 {
		t.Errorf("Utilization = %v, want %v", s.Utilization, wantUtil)
	}
	if s.AvgPins != 6.0/4.0 {
		t.Errorf("AvgPins = %v", s.AvgPins)
	}
	if d.AvgPinsPerCell() != s.AvgPins {
		t.Errorf("AvgPinsPerCell mismatch")
	}
}

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	d := tinyDesign(t)
	snap := d.SnapshotPositions()
	d.Cells[0].X = -999
	d.Cells[2].Y = 12345
	d.RestorePositions(snap)
	if d.Cells[0].X != 10 || d.Cells[2].Y != 40 {
		t.Errorf("restore failed: %v %v", d.Cells[0].X, d.Cells[2].Y)
	}
}

func TestRestoreRejectsBadLength(t *testing.T) {
	d := tinyDesign(t)
	defer func() {
		if recover() == nil {
			t.Errorf("RestorePositions with wrong length did not panic")
		}
	}()
	d.RestorePositions(make([]float64, 3))
}

func TestClampToDie(t *testing.T) {
	d := tinyDesign(t)
	d.Cells[0].X = -50
	d.Cells[0].Y = 500
	macroX := d.Cells[3].X
	d.Cells[3].X = -50 // fixed: must NOT be clamped
	d.ClampToDie()
	if d.Cells[0].X != 1 { // W/2 = 1
		t.Errorf("clamped X = %v, want 1", d.Cells[0].X)
	}
	if d.Cells[0].Y != 95 { // die hi 100 - H/2
		t.Errorf("clamped Y = %v, want 95", d.Cells[0].Y)
	}
	if d.Cells[3].X != -50 {
		t.Errorf("macro was clamped; want untouched (was %v)", macroX)
	}
	d.Cells[3].X = macroX
}

func TestValidateCatchesCorruption(t *testing.T) {
	d := tinyDesign(t)
	d.Pins[0].Cell = 99
	if err := d.Validate(); err == nil {
		t.Errorf("bad pin cell index not caught")
	}

	d = tinyDesign(t)
	d.Pins[0].Net = -1
	if err := d.Validate(); err == nil {
		t.Errorf("bad pin net index not caught")
	}

	d = tinyDesign(t)
	d.Cells[0].NumPins = 7
	if err := d.Validate(); err == nil {
		t.Errorf("stale NumPins not caught")
	}

	d = tinyDesign(t)
	d.Cells[0].W = 0
	if err := d.Validate(); err == nil {
		t.Errorf("zero-size cell not caught")
	}

	d = tinyDesign(t)
	d.RowHeight = 0
	if err := d.Validate(); err == nil {
		t.Errorf("zero row height not caught")
	}
}

func TestPGRailRect(t *testing.T) {
	r := PGRail{Seg: geom.Segment{A: geom.Point{X: 0, Y: 20}, B: geom.Point{X: 100, Y: 20}}, Width: 2}
	rect := r.Rect()
	if rect.Lo.Y != 19 || rect.Hi.Y != 21 || rect.Lo.X != -1 || rect.Hi.X != 101 {
		t.Errorf("rail rect = %v", rect)
	}
}

func TestHPWLTranslationInvariance(t *testing.T) {
	// HPWL must be invariant under rigid translation of all cells.
	d := tinyDesign(t)
	base := d.HPWL()
	f := func(dx, dy float64) bool {
		if math.IsNaN(dx) || math.IsInf(dx, 0) || math.IsNaN(dy) || math.IsInf(dy, 0) {
			return true
		}
		dx, dy = math.Mod(dx, 1000), math.Mod(dy, 1000)
		snap := d.SnapshotPositions()
		for i := range d.Cells {
			d.Cells[i].X += dx
			d.Cells[i].Y += dy
		}
		got := d.HPWL()
		d.RestorePositions(snap)
		return math.Abs(got-base) < 1e-6*math.Max(1, math.Abs(base))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestConnectPanicsOnBadIndex(t *testing.T) {
	b := NewBuilder("x", geom.NewRect(0, 0, 10, 10), 1, 1)
	b.AddCell("c", StdCell, 5, 5, 1, 1)
	defer func() {
		if recover() == nil {
			t.Errorf("Connect to missing net did not panic")
		}
	}()
	b.Connect(0, 0, 0, 0) // no nets yet
}
