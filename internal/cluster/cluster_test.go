package cluster

import (
	"testing"

	"repro/internal/netlist"
	"repro/internal/synth"
)

func testDesign(t *testing.T, name string) *netlist.Design {
	t.Helper()
	d, err := synth.Generate(name)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestCoarsenInvariants checks the structural contract of one level: every
// fine cell lands in exactly one cluster, fixed cells stay fixed singletons,
// movable area is conserved, and the coarse design validates.
func TestCoarsenInvariants(t *testing.T) {
	d := testDesign(t, "fft_b")
	m, err := Coarsen(d, nil, 64)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Coarse.Validate(); err != nil {
		t.Fatalf("coarse design invalid: %v", err)
	}
	if len(m.CellToCluster) != len(d.Cells) {
		t.Fatalf("CellToCluster length %d, want %d", len(m.CellToCluster), len(d.Cells))
	}
	// Partition check: members are disjoint, ascending and cover all cells.
	covered := make([]bool, len(d.Cells))
	for c, ms := range m.Members {
		for k, i := range ms {
			if covered[i] {
				t.Fatalf("cell %d in two clusters", i)
			}
			covered[i] = true
			if m.CellToCluster[i] != c {
				t.Fatalf("cell %d: CellToCluster %d, member of %d", i, m.CellToCluster[i], c)
			}
			if k > 0 && ms[k-1] >= i {
				t.Fatalf("cluster %d members not ascending: %v", c, ms)
			}
		}
	}
	for i, ok := range covered {
		if !ok {
			t.Fatalf("cell %d not covered by any cluster", i)
		}
	}
	// Fixed cells must be singletons of the same kind and position.
	for i := range d.Cells {
		if d.Cells[i].Movable() {
			continue
		}
		c := m.CellToCluster[i]
		if len(m.Members[c]) != 1 {
			t.Fatalf("fixed cell %d merged into cluster of %d", i, len(m.Members[c]))
		}
		cc := &m.Coarse.Cells[c]
		if cc.Kind != d.Cells[i].Kind || cc.X != d.Cells[i].X || cc.Y != d.Cells[i].Y {
			t.Fatalf("fixed cell %d not passed through verbatim", i)
		}
		if m.Weight[c] != 0 {
			t.Fatalf("fixed cluster %d has weight %d", c, m.Weight[c])
		}
	}
	// Movable area conservation (clusters carry their exact member area).
	var fineArea, coarseArea float64
	for i := range d.Cells {
		if d.Cells[i].Movable() {
			fineArea += d.Cells[i].Area()
		}
	}
	for i := range m.Coarse.Cells {
		if m.Coarse.Cells[i].Movable() {
			coarseArea += m.Coarse.Cells[i].Area()
		}
	}
	if rel := (coarseArea - fineArea) / fineArea; rel > 1e-9 || rel < -1e-9 {
		t.Fatalf("movable area not conserved: fine %g coarse %g", fineArea, coarseArea)
	}
	// The pass must actually coarsen.
	fm, cm := movableCount(d), movableCount(m.Coarse)
	if cm >= fm {
		t.Fatalf("no reduction: %d -> %d movable cells", fm, cm)
	}
	t.Logf("fft_b: %d -> %d movable cells, %d -> %d nets",
		fm, cm, len(d.Nets), len(m.Coarse.Nets))
}

// TestCoarsenDeterministicAndPositionIndependent regenerates the design,
// perturbs every movable position, and requires the identical clustering.
func TestCoarsenDeterministicAndPositionIndependent(t *testing.T) {
	a := testDesign(t, "tiny_hot")
	b := testDesign(t, "tiny_hot")
	for i := range b.Cells {
		if b.Cells[i].Movable() {
			b.Cells[i].X += 100
			b.Cells[i].Y -= 50
		}
	}
	ma, err := Coarsen(a, nil, 16)
	if err != nil {
		t.Fatal(err)
	}
	mb, err := Coarsen(b, nil, 16)
	if err != nil {
		t.Fatal(err)
	}
	if len(ma.CellToCluster) != len(mb.CellToCluster) {
		t.Fatal("cluster count differs across position perturbation")
	}
	for i := range ma.CellToCluster {
		if ma.CellToCluster[i] != mb.CellToCluster[i] {
			t.Fatalf("cell %d: cluster %d vs %d (topology-only contract broken)",
				i, ma.CellToCluster[i], mb.CellToCluster[i])
		}
	}
}

// TestCoarsenSizeCap verifies no cluster exceeds the base-cell weight cap.
func TestCoarsenSizeCap(t *testing.T) {
	d := testDesign(t, "tiny_hot")
	const cap = 4
	m, err := Coarsen(d, nil, cap)
	if err != nil {
		t.Fatal(err)
	}
	for c, w := range m.Weight {
		if w > cap {
			t.Fatalf("cluster %d weight %d exceeds cap %d", c, w, cap)
		}
	}
}

// TestHierarchyShrinks checks stacked levels keep shrinking and weights sum
// to the movable cell count at every level.
func TestHierarchyShrinks(t *testing.T) {
	d := testDesign(t, "fft_b")
	maps, err := Hierarchy(d, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(maps) != 2 {
		t.Fatalf("got %d maps, want 2", len(maps))
	}
	prev := movableCount(d)
	for k, m := range maps {
		now := movableCount(m.Coarse)
		if now >= prev {
			t.Fatalf("level %d did not shrink: %d -> %d", k+1, prev, now)
		}
		var wsum int
		for _, w := range m.Weight {
			wsum += w
		}
		if wsum != movableCount(d) {
			t.Fatalf("level %d weights sum %d, want %d", k+1, wsum, movableCount(d))
		}
		prev = now
	}
	if maps[1].Fine != maps[0].Coarse {
		t.Fatal("hierarchy levels not chained")
	}
}

// TestInterpolateSpreads places clusters, interpolates, and checks members
// land near their cluster center, inside the die, with no two members of a
// multi-cell cluster coincident.
func TestInterpolateSpreads(t *testing.T) {
	d := testDesign(t, "tiny_open")
	m, err := Coarsen(d, nil, 8)
	if err != nil {
		t.Fatal(err)
	}
	// Scatter clusters deterministically inside the die.
	die := d.Die
	for i := range m.Coarse.Cells {
		c := &m.Coarse.Cells[i]
		if !c.Movable() {
			continue
		}
		fx := float64(i%7)/7 + 0.07
		fy := float64(i%5)/5 + 0.11
		c.X = die.Lo.X + fx*die.W()
		c.Y = die.Lo.Y + fy*die.H()
	}
	m.Interpolate()
	for c, ms := range m.Members {
		cc := &m.Coarse.Cells[c]
		if !cc.Movable() {
			continue
		}
		for k, i := range ms {
			f := &d.Cells[i]
			if f.X < die.Lo.X || f.X > die.Hi.X || f.Y < die.Lo.Y || f.Y > die.Hi.Y {
				t.Fatalf("cell %d interpolated outside the die", i)
			}
			if k > 0 && len(ms) > 1 {
				p := &d.Cells[ms[k-1]]
				if p.X == f.X && p.Y == f.Y {
					t.Fatalf("cluster %d members %d and %d coincide", c, ms[k-1], i)
				}
			}
		}
	}
}

// TestPushPositions checks PushPositions computes the exact area-weighted
// centroid of the current fine member positions.
func TestPushPositions(t *testing.T) {
	d := testDesign(t, "tiny_open")
	m, err := Coarsen(d, nil, 8)
	if err != nil {
		t.Fatal(err)
	}
	die := d.Die
	for i := range m.Coarse.Cells {
		c := &m.Coarse.Cells[i]
		if c.Movable() {
			c.X = die.Lo.X + 0.5*die.W()
			c.Y = die.Lo.Y + 0.5*die.H()
		}
	}
	m.Interpolate()
	m.PushPositions()
	for c, ms := range m.Members {
		cc := &m.Coarse.Cells[c]
		if !cc.Movable() {
			continue
		}
		var area, cx, cy float64
		for _, i := range ms {
			a := d.Cells[i].Area()
			area += a
			cx += a * d.Cells[i].X
			cy += a * d.Cells[i].Y
		}
		cx /= area
		cy /= area
		if dx, dy := cc.X-cx, cc.Y-cy; dx > 1e-9 || dx < -1e-9 || dy > 1e-9 || dy < -1e-9 {
			t.Fatalf("cluster %d centroid off by (%g, %g)", c, dx, dy)
		}
	}
}

func TestHierarchyRejectsBadLevels(t *testing.T) {
	d := testDesign(t, "tiny_open")
	if _, err := Hierarchy(d, 1, 0); err == nil {
		t.Fatal("levels=1 accepted")
	}
}
