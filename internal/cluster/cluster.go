// Package cluster implements the multilevel coarsening substrate of the
// placement pipeline: a deterministic heavy-edge-matching coarsener over the
// netlist hypergraph and the inverse interpolation that projects cluster
// positions back onto their member cells.
//
// The coarsener depends ONLY on the hypergraph topology — never on cell
// positions — so a resumed run rebuilds the identical cluster hierarchy from
// the identical input design. Visit order, tie-breaking and cluster
// numbering are all fixed by ascending cell index, making the coarse design
// a pure function of the fine design and the size cap.
package cluster

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/netlist"
)

// maxAffinityDegree bounds the net degree considered during matching. Larger
// hyperedges (clock/reset-like fanout) carry almost no 1/(|e|-1) weight and
// would make the pass quadratic in net degree, so they contribute to the
// coarse netlist but not to the matching affinity.
const maxAffinityDegree = 16

// targetReduction is the movable-cell shrink factor one Coarsen level aims
// for; matching passes repeat until the level reaches it (or a pass stalls).
const targetReduction = 3.5

// stallReduction ends the pass loop early: a matching pass that shrinks the
// movable count by less than this factor means the graph has no pairable
// neighbors left (all candidate merges exceed the size cap).
const stallReduction = 1.05

// Map records one coarsening level: the coarse design plus the
// correspondence between fine cells and coarse clusters.
type Map struct {
	// Fine is the input design the level coarsened (not modified).
	Fine *netlist.Design
	// Coarse is the clustered design: one cell per cluster, macros and IO
	// pads passed through as fixed singletons, nets deduplicated per cluster
	// and dropped when they collapse to a single cluster.
	Coarse *netlist.Design
	// CellToCluster maps every fine cell index to its coarse cell index.
	CellToCluster []int
	// Members lists, per coarse cell, the fine member indices in ascending
	// order. Fixed cells are always singletons.
	Members [][]int
	// Weight is the number of base standard cells represented by each coarse
	// cell (1 for every cell of the original design, summed up the
	// hierarchy); fixed cells have weight 0 and never merge.
	Weight []int
}

// Coarsen builds one level of the cluster hierarchy over d. maxWeight caps
// the number of base cells a cluster may absorb (≤ 0 selects no cap).
// Macros and IO pads are never merged; only movable standard cells cluster.
// The result is deterministic and position-independent: matching visits
// cells in ascending index order, scores neighbors by the heavy-edge
// affinity Σ w(e)/(|e|−1) over shared nets, and breaks ties by the lowest
// neighbor index.
//
// weights gives the base-cell weight of every fine cell (nil means weight 1
// for movable cells — the original design); pass the previous level's
// cluster weights when stacking levels.
func Coarsen(d *netlist.Design, weights []int, maxWeight int) (*Map, error) {
	if maxWeight <= 0 {
		maxWeight = math.MaxInt
	}
	cur := d
	curW := baseWeights(d, weights)
	var total *Map
	startMovable := movableCount(d)
	for {
		m, err := matchOnce(cur, curW, maxWeight)
		if err != nil {
			return nil, err
		}
		if total == nil {
			total = m
		} else {
			total = compose(total, m)
		}
		prev := movableCount(cur)
		now := movableCount(m.Coarse)
		cur, curW = m.Coarse, m.Weight
		if now == 0 || float64(startMovable)/float64(now) >= targetReduction {
			break
		}
		if float64(prev)/float64(now) < stallReduction {
			break // pass stalled: size cap or topology admits no more merges
		}
	}
	return total, nil
}

// baseWeights normalizes the caller's weight slice: movable cells default to
// weight 1, fixed cells always weigh 0 (they never merge).
func baseWeights(d *netlist.Design, weights []int) []int {
	w := make([]int, len(d.Cells))
	for i := range d.Cells {
		if !d.Cells[i].Movable() {
			continue
		}
		if weights != nil {
			w[i] = weights[i]
		} else {
			w[i] = 1
		}
	}
	return w
}

func movableCount(d *netlist.Design) int {
	n := 0
	for i := range d.Cells {
		if d.Cells[i].Movable() {
			n++
		}
	}
	return n
}

// matchOnce runs a single heavy-edge matching pass over d and materializes
// the coarse design.
func matchOnce(d *netlist.Design, weight []int, maxWeight int) (*Map, error) {
	n := len(d.Cells)
	partner := make([]int, n)
	for i := range partner {
		partner[i] = -1
	}

	// Neighbor affinity accumulation uses a dense scratch score array plus a
	// touched list, so each cell's candidate scan is O(Σ_e |e|) without any
	// map allocation.
	score := make([]float64, n)
	touched := make([]int, 0, 64)

	for i := 0; i < n; i++ {
		if partner[i] != -1 || !d.Cells[i].Movable() {
			continue
		}
		touched = touched[:0]
		for _, pi := range d.Cells[i].Pins {
			e := d.Pins[pi].Net
			net := &d.Nets[e]
			deg := len(net.Pins)
			if deg < 2 || deg > maxAffinityDegree {
				continue
			}
			w := net.Weight
			if w == 0 {
				w = 1
			}
			aff := w / float64(deg-1)
			for _, pj := range net.Pins {
				j := d.Pins[pj].Cell
				if j == i || partner[j] != -1 || !d.Cells[j].Movable() {
					continue
				}
				if weight[i]+weight[j] > maxWeight {
					continue
				}
				if score[j] == 0 {
					touched = append(touched, j)
				}
				score[j] += aff
			}
		}
		best, bestScore := -1, 0.0
		for _, j := range touched {
			if score[j] > bestScore || (score[j] == bestScore && best != -1 && j < best) {
				best, bestScore = j, score[j]
			}
			score[j] = 0
		}
		if best != -1 {
			partner[i] = best
			partner[best] = i
		}
	}

	return materialize(d, weight, partner)
}

// materialize builds the coarse design from a matching. Cluster numbering
// follows the ascending index of each cluster's first member, so the coarse
// cell order is a deterministic function of the matching alone.
func materialize(d *netlist.Design, weight []int, partner []int) (*Map, error) {
	n := len(d.Cells)
	cellToCluster := make([]int, n)
	for i := range cellToCluster {
		cellToCluster[i] = -1
	}
	var members [][]int
	var wOut []int
	for i := 0; i < n; i++ {
		if cellToCluster[i] != -1 {
			continue
		}
		c := len(members)
		cellToCluster[i] = c
		if p := partner[i]; p > i {
			cellToCluster[p] = c
			members = append(members, []int{i, p})
			wOut = append(wOut, weight[i]+weight[p])
		} else {
			members = append(members, []int{i})
			wOut = append(wOut, weight[i])
		}
	}

	b := netlist.NewBuilder(d.Name, d.Die, d.RowHeight, d.SiteWidth)
	b.SetRouteLayers(d.RouteLayers)
	b.SetRouteCapScale(d.RouteCapScale)
	b.SetTargetDensity(d.TargetDensity)
	for c := range members {
		ms := members[c]
		first := &d.Cells[ms[0]]
		if len(ms) == 1 && !first.Movable() {
			b.AddCell(first.Name, first.Kind, first.X, first.Y, first.W, first.H)
			continue
		}
		var area, cx, cy float64
		for _, m := range ms {
			cell := &d.Cells[m]
			a := cell.Area()
			area += a
			cx += a * cell.X
			cy += a * cell.Y
		}
		cx /= area
		cy /= area
		// Coarse standard cells stay one row tall with the exact member area
		// so the density model conserves total charge across levels.
		w := area / d.RowHeight
		b.AddCell(first.Name, netlist.StdCell, cx, cy, w, d.RowHeight)
	}

	// Coarse nets: map each fine net's pins onto clusters, deduplicate, and
	// drop nets that collapse into a single cluster. Pin offsets become zero
	// (the cluster center stands in for its member pins).
	seen := make([]int, len(members))
	for i := range seen {
		seen[i] = -1
	}
	for e := range d.Nets {
		net := &d.Nets[e]
		var clusters []int
		for _, pi := range net.Pins {
			c := cellToCluster[d.Pins[pi].Cell]
			if seen[c] != e {
				seen[c] = e
				clusters = append(clusters, c)
			}
		}
		if len(clusters) < 2 {
			continue
		}
		ce := b.AddNet(net.Name, net.Weight)
		for _, c := range clusters {
			b.Connect(c, ce, 0, 0)
		}
	}
	for _, r := range d.Rails {
		b.AddRail(r.Seg, r.Width)
	}
	coarse, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("cluster: coarse design invalid: %w", err)
	}
	return &Map{
		Fine:          d,
		Coarse:        coarse,
		CellToCluster: cellToCluster,
		Members:       members,
		Weight:        wOut,
	}, nil
}

// compose merges two stacked matchings a (fine→mid) and b (mid→coarse) into
// one fine→coarse map. b's designs and weights are authoritative.
func compose(a, b *Map) *Map {
	c2c := make([]int, len(a.CellToCluster))
	for i, mid := range a.CellToCluster {
		c2c[i] = b.CellToCluster[mid]
	}
	members := make([][]int, len(b.Members))
	for c, mids := range b.Members {
		var fine []int
		for _, m := range mids {
			fine = append(fine, a.Members[m]...)
		}
		sort.Ints(fine)
		members[c] = fine
	}
	return &Map{
		Fine:          a.Fine,
		Coarse:        b.Coarse,
		CellToCluster: c2c,
		Members:       members,
		Weight:        b.Weight,
	}
}

// Hierarchy stacks levels−1 coarsening maps over d: maps[k] coarsens the
// level-k design onto level k+1 (level 0 is d itself, the finest). Building
// stops early when a level fails to shrink the movable count — the returned
// slice may be shorter than requested but never empty for levels ≥ 2.
// maxWeight caps the base cells per cluster across the whole hierarchy
// (≤ 0 selects no cap). The hierarchy is a pure function of d's topology.
func Hierarchy(d *netlist.Design, levels, maxWeight int) ([]*Map, error) {
	if levels < 2 {
		return nil, fmt.Errorf("cluster: hierarchy needs ≥ 2 levels, got %d", levels)
	}
	var maps []*Map
	cur := d
	var weights []int
	for k := 1; k < levels; k++ {
		m, err := Coarsen(cur, weights, maxWeight)
		if err != nil {
			return nil, err
		}
		if movableCount(m.Coarse) >= movableCount(cur) {
			break // coarsening stalled; deeper levels would be identical
		}
		maps = append(maps, m)
		cur, weights = m.Coarse, m.Weight
	}
	if len(maps) == 0 {
		return nil, fmt.Errorf("cluster: design %s does not coarsen (no matchable movable cells)", d.Name)
	}
	return maps, nil
}

// Interpolate projects the coarse design's cluster positions back onto the
// fine design's member cells with density-aware spreading: each cluster's
// movable members are laid out on a near-square local grid sized so that
// the member area lands at the design's target density, centered on the
// cluster position and clamped to the die. Fixed cells are untouched.
func (m *Map) Interpolate() {
	td := m.Fine.TargetDensity
	if td <= 0 || td > 1 {
		td = 1
	}
	for c := range m.Members {
		ms := m.Members[c]
		cc := &m.Coarse.Cells[c]
		if !cc.Movable() {
			continue
		}
		if len(ms) == 1 {
			f := &m.Fine.Cells[ms[0]]
			f.X, f.Y = cc.X, cc.Y
			continue
		}
		var area float64
		for _, i := range ms {
			area += m.Fine.Cells[i].Area()
		}
		side := math.Sqrt(area / td)
		cols := int(math.Ceil(math.Sqrt(float64(len(ms)))))
		rows := (len(ms) + cols - 1) / cols
		for k, i := range ms {
			col := k % cols
			row := k / cols
			f := &m.Fine.Cells[i]
			f.X = cc.X - side/2 + (float64(col)+0.5)*side/float64(cols)
			f.Y = cc.Y - side/2 + (float64(row)+0.5)*side/float64(rows)
		}
	}
	m.Fine.ClampToDie()
}

// PushPositions copies the fine design's current member positions up into
// the coarse design as area-weighted centroids (the inverse of Interpolate,
// used when a hierarchy is rebuilt around an already-placed fine level).
func (m *Map) PushPositions() {
	for c := range m.Members {
		cc := &m.Coarse.Cells[c]
		if !cc.Movable() {
			continue
		}
		var area, cx, cy float64
		for _, i := range m.Members[c] {
			cell := &m.Fine.Cells[i]
			a := cell.Area()
			area += a
			cx += a * cell.X
			cy += a * cell.Y
		}
		cc.X, cc.Y = cx/area, cy/area
	}
}
