package eval

import (
	"math"
	"testing"

	"repro/internal/geom"
	"repro/internal/legalize"
	"repro/internal/netlist"
	"repro/internal/route"
	"repro/internal/synth"
)

func TestEvaluateBasics(t *testing.T) {
	d := synth.MustGenerate("tiny_hot")
	m := Evaluate(d, 32)
	if m.DRWL <= 0 {
		t.Errorf("DRWL = %v", m.DRWL)
	}
	if m.DRVias <= 0 {
		t.Errorf("DRVias = %v", m.DRVias)
	}
	if m.DRVs < 0 {
		t.Errorf("DRVs = %v", m.DRVs)
	}
	if m.HPWL <= 0 {
		t.Errorf("HPWL = %v", m.HPWL)
	}
	if math.IsNaN(m.OverflowViol + m.PinDensViol + m.PinAccessViol) {
		t.Errorf("NaN in violation components")
	}
}

func TestEvaluateDeterministic(t *testing.T) {
	d := synth.MustGenerate("tiny_hot")
	a := Evaluate(d, 32)
	b := Evaluate(d, 32)
	if a != b {
		t.Errorf("evaluation not deterministic: %+v vs %+v", a, b)
	}
}

func TestClusteredPlacementScoresWorse(t *testing.T) {
	// The DRV oracle must prefer a spread placement over a compacted one
	// when the netlist is local (nets connect physical neighbours, as they
	// do after placement) — this is the property every Table I comparison
	// rests on. Compacting such a design shortens wires only modestly but
	// multiplies density and pin crowding.
	build := func(scale float64) *netlist.Design {
		b := netlist.NewBuilder("mesh", geom.NewRect(0, 0, 256, 256), 8, 1)
		const n = 16 // 16×16 mesh
		cx, cy := 128.0, 128.0
		idx := func(i, j int) int { return i*n + j }
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				x := cx + (float64(j)-float64(n-1)/2)*14*scale
				y := cy + (float64(i)-float64(n-1)/2)*14*scale
				b.AddCell("c", netlist.StdCell, x, y, 3, 8)
			}
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if j+1 < n {
					net := b.AddNet("h", 1)
					b.Connect(idx(i, j), net, 0, 0)
					b.Connect(idx(i, j+1), net, 0, 0)
				}
				if i+1 < n {
					net := b.AddNet("v", 1)
					b.Connect(idx(i, j), net, 0, 0)
					b.Connect(idx(i+1, j), net, 0, 0)
				}
			}
		}
		b.SetRouteCapScale(0.6)
		return b.MustBuild()
	}
	spread := Evaluate(build(1.0), 32)
	clustered := Evaluate(build(0.25), 32)
	if clustered.DRVs <= spread.DRVs {
		t.Errorf("clustered DRVs %d not worse than spread %d", clustered.DRVs, spread.DRVs)
	}
}

func TestScoreMatchesEvaluate(t *testing.T) {
	d := synth.MustGenerate("tiny_open")
	g := route.NewGrid(d, 32)
	r := route.NewRouter(d, g)
	r.Rounds = 4
	res := r.Route()
	viaScore := Score(d, res)
	viaEval := Evaluate(d, 32)
	if viaScore != viaEval {
		t.Errorf("Score and Evaluate disagree: %+v vs %+v", viaScore, viaEval)
	}
}

func TestPinAccessComponentRespondsToRails(t *testing.T) {
	// A cell sitting on a selected PG rail in a congested bin must produce
	// pin-access violations; removing the rails removes them.
	b := netlist.NewBuilder("pa", geom.NewRect(0, 0, 128, 128), 8, 1)
	const n = 40
	for i := 0; i < n; i++ {
		b.AddCell("c", netlist.StdCell, 60+float64(i%8)*2, 60+float64(i/8)*2, 2, 8)
	}
	for _, stride := range []int{1, 2, 3, 8, 16} {
		for i := 0; i+stride < n; i++ {
			net := b.AddNet("n", 1)
			b.Connect(i, net, 0, 0)
			b.Connect(i+stride, net, 0, 0)
		}
	}
	// Rail passing through the congested cluster.
	b.AddRail(geom.Segment{A: geom.Point{X: 0, Y: 64}, B: geom.Point{X: 128, Y: 64}}, 2)
	b.SetRouteCapScale(0.10)
	d := b.MustBuild()
	withRail := Evaluate(d, 32)

	d.Rails = nil
	withoutRail := Evaluate(d, 32)
	if withRail.PinAccessViol <= withoutRail.PinAccessViol {
		t.Errorf("pin-access component ignored the rail: %v vs %v",
			withRail.PinAccessViol, withoutRail.PinAccessViol)
	}
	if withoutRail.PinAccessViol != 0 {
		t.Errorf("pin-access violations without rails: %v", withoutRail.PinAccessViol)
	}
}

func TestDecomposeClassifiesBothKinds(t *testing.T) {
	// Build the Fig. 1 scenario: a dense cell cluster (local congestion)
	// plus long nets traversing an empty corridor (global congestion).
	b := netlist.NewBuilder("fig1", geom.NewRect(0, 0, 256, 256), 8, 1)
	const n = 48
	for i := 0; i < n; i++ {
		b.AddCell("c", netlist.StdCell, 40+float64(i%4)*3, 40+float64(i/4)*3, 3, 8)
	}
	for i := 0; i+1 < n; i++ {
		net := b.AddNet("n", 1)
		b.Connect(i, net, 0, 0)
		b.Connect(i+1, net, 0, 0)
	}
	// Long nets crossing the empty top corridor: pairs of cells on the far
	// left and right edges at high y, concentrated on two rows so the
	// through-traffic overflows the corridor G-cells.
	for k := 0; k < 40; k++ {
		a := b.AddCell("la", netlist.StdCell, 4, 200+float64(k%2)*8, 2, 8)
		c := b.AddCell("lb", netlist.StdCell, 252, 200+float64(k%2)*8, 2, 8)
		net := b.AddNet("long", 1)
		b.Connect(a, net, 0, 0)
		b.Connect(c, net, 0, 0)
	}
	b.SetRouteCapScale(0.25)
	d := b.MustBuild()
	g := route.NewGrid(d, 32)
	res := route.NewRouter(d, g).Route()
	dec := Decompose(d, res)
	if dec.LocalCells == 0 {
		t.Errorf("no local congestion found near the cluster")
	}
	if dec.GlobalCells == 0 {
		t.Errorf("no global congestion found in the corridor")
	}
	// Class array consistency.
	var local, global int
	for _, cl := range dec.Class {
		switch cl {
		case 1:
			local++
		case 2:
			global++
		}
	}
	if local != dec.LocalCells || global != dec.GlobalCells {
		t.Errorf("class counts inconsistent")
	}
}

func TestEvaluateAfterLegalization(t *testing.T) {
	d := synth.MustGenerate("tiny_open")
	before := Evaluate(d, 32)
	if _, _, err := legalize.New(d).Run(); err != nil {
		t.Fatal(err)
	}
	after := Evaluate(d, 32)
	// Legalization of an already-spread design must not explode the metrics.
	if after.DRWL > 2*before.DRWL+1 {
		t.Errorf("legalization doubled DRWL: %v → %v", before.DRWL, after.DRWL)
	}
}
