// Package eval scores a finished placement the way the paper's experiments
// score one with Cadence Innovus (Table I): detailed-routing wirelength
// (DRWL), via count (#DRVias) and design-rule violations (#DRVs).
//
// Innovus is unavailable in this reproduction (see DESIGN.md); instead the
// pattern router is run at high effort on the final placement and the DRV
// count is estimated from the three effects that dominate post-detailed-
// routing violations:
//
//   - leftover global-routing overflow (shorts/spacing in overfull G-cells),
//   - pin-density hotspots (unreachable pins in crowded G-cells),
//   - cells under congested power/ground rails (the pin-access problem of
//     paper Sec. III-C).
//
// Absolute counts differ from a real detailed router; the ratios between
// placements of the same design — the quantity the paper reports — are
// preserved because every placement is scored by the identical oracle.
package eval

import (
	"context"
	"math"

	"repro/internal/netlist"
	"repro/internal/pgrail"
	"repro/internal/route"
	"repro/internal/telemetry"
)

// Weights of the three DRV components; shared by every evaluation so that
// cross-placer ratios are meaningful.
const (
	wOverflow = 2.0
	wPinDens  = 1.0
	// Pin-access failures are counted per cell-on-rail (a handful of cells
	// per congested rail bin) while overflow is counted per track; the
	// weight rebalances them to the share pin-access DRVs take in detailed
	// routing (roughly 10–30% on congested designs).
	wPinAccess = 25.0

	// pinDensityFactor sets the pin capacity of a G-cell as a multiple of
	// the pins a G-cell would hold when filled with average cells at full
	// density. The capacity is a property of the design, not the placement,
	// so piling cells together always produces violations.
	pinDensityFactor = 2.0
)

// OverflowExp is the superlinear exponent applied to per-G-cell routing
// overflow: concentrated overflow costs more than spread-out overflow,
// matching how detailed routers degrade sharply in hotspots. It is shared
// between this scoring oracle and the placer's in-loop congestion score
// (core.overflowScore tracks the identical quantity), so the loop optimizes
// exactly what the scorecard measures and the two cannot silently drift.
const OverflowExp = 1.8

// Metrics is the Table I measurement set for one placement.
type Metrics struct {
	DRWL   float64 // routed wirelength, DBU
	DRVias int
	DRVs   int

	// Component breakdown (diagnostics and the ablation discussion).
	OverflowViol  float64
	PinDensViol   float64
	PinAccessViol float64

	OverflowTotal float64
	OverflowCells int
	MaxUtil       float64
	HPWL          float64
}

// Evaluate routes the design at high effort and derives the metrics. The
// gridHint chooses the G-cell resolution (power-of-two rounded).
func Evaluate(d *netlist.Design, gridHint int) Metrics {
	return EvaluateTraced(d, gridHint, nil, 0)
}

// EvaluateTraced is Evaluate with telemetry and a worker cap: the
// high-effort routing and the scoring pass are recorded as child spans of
// the caller's current span (a nil tracer disables tracing), and workers
// bounds the router's parallel choice phase (0 selects runtime.NumCPU();
// results are byte-identical for any setting).
func EvaluateTraced(d *netlist.Design, gridHint int, tr *telemetry.Tracer, workers int) Metrics {
	m, _ := EvaluateContext(context.Background(), d, gridHint, tr, workers)
	return m
}

// EvaluateContext is EvaluateTraced with cooperative cancellation: the
// embedded high-effort routing aborts between rounds and batches, and the
// zero Metrics plus ctx.Err() are returned. Evaluation never mutates the
// design, so an aborted call has no side effects.
func EvaluateContext(ctx context.Context, d *netlist.Design, gridHint int, tr *telemetry.Tracer, workers int) (Metrics, error) {
	g := route.NewGrid(d, gridHint)
	r := route.NewRouter(d, g)
	r.Rounds = 4 // detailed-routing effort
	r.Trace = tr
	r.Workers = workers
	res, err := r.RouteContext(ctx)
	if err != nil {
		return Metrics{}, err
	}
	sp := tr.Start("eval.score")
	m := Score(d, res)
	sp.End()
	return m, nil
}

// Score derives the metrics from an existing routing result (exposed so the
// placer can report its internal routing state without re-routing).
func Score(d *netlist.Design, res *route.Result) Metrics {
	g := res.Grid
	m := Metrics{
		DRWL:          res.WirelengthDBU,
		DRVias:        res.Vias,
		OverflowTotal: res.OverflowTotal,
		OverflowCells: res.OverflowCells,
		MaxUtil:       res.MaxUtil,
		HPWL:          d.HPWL(),
	}

	// Component 1: leftover overflow, super-linearly weighted.
	for i := 0; i < g.NX*g.NY; i++ {
		if ov := res.DemandTotal(i) - g.CapTotal(i); ov > 0 {
			m.OverflowViol += math.Pow(ov, OverflowExp)
		}
	}

	// Component 2: pin-density hotspots. Capacity is physical: the pins a
	// G-cell holds when packed with average-size cells, times a margin.
	pins := make([]float64, g.NX*g.NY)
	for pi := range d.Pins {
		p := d.PinPos(pi)
		cx, cy := g.CellAt(p.X, p.Y)
		pins[cy*g.NX+cx]++
	}
	var movArea float64
	var movPins, movN int
	for ci := range d.Cells {
		c := &d.Cells[ci]
		if c.Movable() {
			movArea += c.Area()
			movPins += c.NumPins
			movN++
		}
	}
	if movN > 0 && movArea > 0 {
		avgCellArea := movArea / float64(movN)
		avgPins := float64(movPins) / float64(movN)
		pinCap := pinDensityFactor * (g.CellW * g.CellH / avgCellArea) * avgPins
		for _, c := range pins {
			if c > pinCap {
				m.PinDensViol += c - pinCap
			}
		}
	}

	// Component 3: pin access under congested PG rails. For every G-cell
	// that a selected rail crosses and whose congestion exceeds the average,
	// each pin in that G-cell risks an access violation, weighted by the
	// G-cell congestion (the routing resources the rail does not already
	// consume are fought over by the through-wires). This is exactly the
	// quantity Sec. III-C\'s density adjustment reduces: cells — hence pins —
	// are pushed out of these bins.
	selected := pgrail.SelectRails(d)
	avg := res.AvgCongestion()
	railBin := make([]bool, g.NX*g.NY)
	for _, rail := range selected {
		rr := rail.Rect().Intersect(d.Die)
		if rr.Empty() {
			continue
		}
		x0, y0 := g.CellAt(rr.Lo.X, rr.Lo.Y)
		x1, y1 := g.CellAt(rr.Hi.X-1e-9, rr.Hi.Y-1e-9)
		for cy := y0; cy <= y1; cy++ {
			for cx := x0; cx <= x1; cx++ {
				railBin[cy*g.NX+cx] = true
			}
		}
	}
	for i, isRail := range railBin {
		if !isRail || res.Congestion[i] <= avg {
			continue
		}
		m.PinAccessViol += pins[i] * res.Congestion[i]
	}

	m.DRVs = int(math.Round(wOverflow*m.OverflowViol + wPinDens*m.PinDensViol + wPinAccess*m.PinAccessViol))
	return m
}

// Decomposition classifies every overflowed G-cell as LOCAL congestion
// (excessive cell area under it — relocating cells helps) or GLOBAL
// congestion (wires passing through — net moving helps), reproducing the
// distinction of paper Fig. 1.
type Decomposition struct {
	Grid *route.Grid
	// Class[i]: 0 = not congested, 1 = local, 2 = global.
	Class       []uint8
	LocalCells  int
	GlobalCells int
}

// localAreaFraction is the cell-occupancy threshold above which an
// overflowed G-cell is attributed to local (cell-driven) congestion.
const localAreaFraction = 0.5

// Decompose classifies the congestion of a routed design.
func Decompose(d *netlist.Design, res *route.Result) Decomposition {
	g := res.Grid
	n := g.NX * g.NY
	dec := Decomposition{Grid: g, Class: make([]uint8, n)}
	// Rasterize movable cell area per G-cell.
	area := make([]float64, n)
	for ci := range d.Cells {
		c := &d.Cells[ci]
		if !c.Movable() {
			continue
		}
		cx, cy := g.CellAt(c.X, c.Y)
		area[cy*g.NX+cx] += c.Area()
	}
	cellArea := g.CellW * g.CellH
	for i := 0; i < n; i++ {
		if res.Congestion[i] <= 0 {
			continue
		}
		if area[i]/cellArea >= localAreaFraction {
			dec.Class[i] = 1
			dec.LocalCells++
		} else {
			dec.Class[i] = 2
			dec.GlobalCells++
		}
	}
	return dec
}
