package parallel

import (
	"math"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestResolve(t *testing.T) {
	cases := []struct{ in, want int }{
		{1, 1},
		{2, 2},
		{NumShards, NumShards},
		{NumShards + 5, NumShards},
		{-3, clampCPU()},
		{0, clampCPU()},
	}
	for _, c := range cases {
		if got := Resolve(c.in); got != c.want {
			t.Errorf("Resolve(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

func clampCPU() int {
	n := runtime.NumCPU()
	if n > NumShards {
		n = NumShards
	}
	return n
}

func TestRangeCoversExactly(t *testing.T) {
	for _, n := range []int{0, 1, 2, NumShards - 1, NumShards, NumShards + 1, 1000, 12345} {
		covered := 0
		prevEnd := 0
		for s := 0; s < NumShards; s++ {
			lo, hi := Range(s, n)
			if lo != prevEnd {
				t.Fatalf("n=%d shard %d: start %d != previous end %d", n, s, lo, prevEnd)
			}
			if hi < lo {
				t.Fatalf("n=%d shard %d: end %d < start %d", n, s, hi, lo)
			}
			covered += hi - lo
			prevEnd = hi
		}
		if covered != n || prevEnd != n {
			t.Fatalf("n=%d: shards cover %d items ending at %d", n, covered, prevEnd)
		}
	}
}

func TestForVisitsEveryItemOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 3, NumShards} {
		const n = 1003
		var visits [n]atomic.Int32
		For(workers, n, func(shard, start, end int) {
			for i := start; i < end; i++ {
				visits[i].Add(1)
			}
		})
		for i := range visits {
			if v := visits[i].Load(); v != 1 {
				t.Fatalf("workers=%d: item %d visited %d times", workers, i, v)
			}
		}
	}
}

func TestForShardedSumIdenticalAcrossWorkerCounts(t *testing.T) {
	// The canonical reduction pattern: per-shard partial sums folded in
	// shard order must be byte-identical for every worker count.
	const n = 4099
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = math.Sin(float64(i)) * 1e3 // nontrivial float content
	}
	sum := func(workers int) float64 {
		var parts [NumShards]float64
		For(workers, n, func(shard, start, end int) {
			var s float64
			for i := start; i < end; i++ {
				s += vals[i]
			}
			parts[shard] = s
		})
		return SumShards(&parts)
	}
	ref := sum(1)
	for _, w := range []int{2, 3, 4, NumShards, 0} {
		if got := sum(w); math.Float64bits(got) != math.Float64bits(ref) {
			t.Errorf("workers=%d: sum %v differs from serial %v", w, got, ref)
		}
	}
}

func TestMergeFloatsShardOrder(t *testing.T) {
	shards := NewShards(4)
	for s := range shards {
		for i := range shards[s] {
			shards[s][i] = float64(s + 1)
		}
	}
	dst := make([]float64, 4)
	MergeFloats(dst, shards)
	want := float64(NumShards * (NumShards + 1) / 2)
	for i, v := range dst {
		if v != want {
			t.Fatalf("dst[%d] = %v, want %v", i, v, want)
		}
	}
	ZeroFloats(shards)
	for s := range shards {
		for i, v := range shards[s] {
			if v != 0 {
				t.Fatalf("shard %d[%d] = %v after ZeroFloats", s, i, v)
			}
		}
	}
}

func TestForEmptyAndTiny(t *testing.T) {
	ran := false
	if tm := For(4, 0, func(_, _, _ int) { ran = true }); ran || tm.Wall != 0 {
		t.Errorf("For with n=0 ran work or reported time")
	}
	var count atomic.Int32
	For(8, 1, func(shard, start, end int) {
		count.Add(1)
		if end-start != 1 {
			t.Errorf("single-item shard has range [%d,%d)", start, end)
		}
	})
	if count.Load() != 1 {
		t.Errorf("n=1 executed %d shards, want 1", count.Load())
	}
}

func TestTimingSpeedup(t *testing.T) {
	tm := Timing{}
	if s := tm.Speedup(); s != 1 {
		t.Errorf("zero timing speedup = %v, want 1", s)
	}
	tm = Timing{Wall: 100, Busy: 250}
	if s := tm.Speedup(); s != 2.5 {
		t.Errorf("speedup = %v, want 2.5", s)
	}
	tm.Add(Timing{Wall: 100, Busy: 150})
	if tm.Wall != 200 || tm.Busy != 400 {
		t.Errorf("Add gave %+v", tm)
	}
}
