// Package parallel is the placement pipeline's deterministic multi-core
// execution layer: a chunked parallel-for over a FIXED shard decomposition,
// so that every result — including floating-point reductions — is
// byte-identical for any worker count and any goroutine schedule.
//
// The determinism contract rests on two rules:
//
//  1. Work is split into exactly NumShards contiguous chunks whose
//     boundaries depend only on the item count, never on the worker count
//     or on runtime scheduling. Each shard is executed exactly once.
//  2. A kernel that reduces (sums demand maps, scatter-adds gradients,
//     accumulates totals) writes into shard-private state, and the caller
//     merges the shards in ascending shard-index order after For returns.
//     The floating-point summation tree is therefore a pure function of
//     the input size: Workers=1 and Workers=N walk the identical tree.
//
// Kernels whose writes are disjoint per item (one output row per input
// row, one gradient slot per cell) need no shard state at all and are
// bitwise-identical to a plain serial loop by construction.
//
// Workers=1 never spawns a goroutine: the shards run inline, in order, on
// the calling goroutine — serial execution with the same summation tree.
package parallel

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// NumShards is the fixed shard count of every chunked parallel-for. It is
// a property of the algorithm, not of the machine: raising it would change
// the reduction tree (and the low-order float bits of every reduced
// result), so it is a constant rather than a tuning knob. It also caps the
// useful worker count.
const NumShards = 16

// Resolve maps an Options.Workers-style setting to the effective worker
// count: 0 (or negative) selects runtime.NumCPU(); the result is clamped
// to [1, NumShards].
func Resolve(workers int) int {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers < 1 {
		workers = 1
	}
	if workers > NumShards {
		workers = NumShards
	}
	return workers
}

// Range returns the half-open item range [start, end) of one shard for n
// items. Boundaries depend only on n and the shard index.
func Range(shard, n int) (start, end int) {
	return shard * n / NumShards, (shard + 1) * n / NumShards
}

// Timing reports the cost of one or more For calls: Wall is elapsed time,
// Busy is the summed in-shard execution time across workers. Busy/Wall is
// the effective parallelism actually achieved.
type Timing struct {
	Wall time.Duration
	Busy time.Duration
}

// Add accumulates another timing sample into t.
func (t *Timing) Add(u Timing) {
	t.Wall += u.Wall
	t.Busy += u.Busy
}

// Speedup returns the effective parallelism Busy/Wall (1 when no work was
// recorded).
func (t Timing) Speedup() float64 {
	if t.Wall <= 0 || t.Busy <= 0 {
		return 1
	}
	return float64(t.Busy) / float64(t.Wall)
}

// For executes fn once per non-empty shard of the fixed NumShards
// decomposition of [0, n), using at most Resolve(workers) goroutines, and
// returns how long the call took. fn(shard, start, end) must confine its
// writes to shard-private state (indexed by shard) or to locations owned
// by items in [start, end); it must not touch other shards' state.
//
// Shards are handed to workers dynamically (load balancing), which is safe
// under the determinism contract because each shard's result lands in its
// own slot regardless of which worker computed it, or in what order.
func For(workers, n int, fn func(shard, start, end int)) Timing {
	t, _ := ForCtx(context.Background(), workers, n, fn)
	return t
}

// ForCtx is For with cooperative cancellation: the context is checked on
// entry and before every shard claim, and the first non-nil ctx.Err() seen
// is returned. Shards already started always run to completion and every
// worker goroutine is joined before ForCtx returns (no leaks), but on a
// non-nil error an unknown SUBSET of shards has executed — the caller must
// treat every output buffer the kernel wrote as garbage and either discard
// it or rebuild it from scratch. Determinism is unaffected on the nil-error
// path: all shards ran, exactly as For.
func ForCtx(ctx context.Context, workers, n int, fn func(shard, start, end int)) (Timing, error) {
	if n <= 0 {
		return Timing{}, ctx.Err()
	}
	w := Resolve(workers)
	t0 := time.Now()
	if w == 1 {
		for s := 0; s < NumShards; s++ {
			if err := ctx.Err(); err != nil {
				wall := time.Since(t0)
				return Timing{Wall: wall, Busy: wall}, err
			}
			if lo, hi := Range(s, n); lo < hi {
				fn(s, lo, hi)
			}
		}
		wall := time.Since(t0)
		return Timing{Wall: wall, Busy: wall}, nil
	}
	if w > n {
		w = n // never more workers than items
	}
	var next atomic.Int32
	var busy atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	done := ctx.Done()
	var cancelled atomic.Bool
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			g0 := time.Now()
			for {
				if done != nil {
					select {
					case <-done:
						cancelled.Store(true)
						busy.Add(int64(time.Since(g0)))
						return
					default:
					}
				}
				s := int(next.Add(1)) - 1
				if s >= NumShards {
					break
				}
				if lo, hi := Range(s, n); lo < hi {
					fn(s, lo, hi)
				}
			}
			busy.Add(int64(time.Since(g0)))
		}()
	}
	wg.Wait()
	t := Timing{Wall: time.Since(t0), Busy: time.Duration(busy.Load())}
	if cancelled.Load() {
		return t, ctx.Err()
	}
	return t, nil
}

// MergeFloats adds every shard slice into dst elementwise, in ascending
// shard order — the canonical deterministic reduction of scatter-add
// kernels. All slices must have len(dst).
func MergeFloats(dst []float64, shards [][]float64) {
	for _, sh := range shards {
		for i, v := range sh {
			dst[i] += v
		}
	}
}

// ZeroFloats zeroes every shard slice (the per-evaluation reset of shard
// accumulators).
func ZeroFloats(shards [][]float64) {
	for _, sh := range shards {
		for i := range sh {
			sh[i] = 0
		}
	}
}

// NewShards allocates NumShards slices of length n each (shard-private
// accumulator buffers).
func NewShards(n int) [][]float64 {
	out := make([][]float64, NumShards)
	for i := range out {
		out[i] = make([]float64, n)
	}
	return out
}

// SumShards folds per-shard partial sums in ascending shard order.
func SumShards(parts *[NumShards]float64) float64 {
	var s float64
	for _, v := range parts {
		s += v
	}
	return s
}
