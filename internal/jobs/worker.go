package jobs

// The worker side of process isolation: RunWorker is the body of the hidden
// `placed -worker` mode. One worker process runs one segment of one job from
// the job's state directory — checkpoint in, checkpoint/trace/placement out —
// so a panic, runaway allocation or wedged kernel takes down a single job's
// process, never the daemon or its other tenants.
//
// Protocol (worker → supervisor, over the worker's stdout):
//
//   - Raw canonical trace lines pass through verbatim. The supervisor owns
//     the job's trace file and hub; the worker never touches trace.jsonl, so
//     a torn write from a dying worker cannot corrupt it.
//   - Control lines are prefixed with '!' and carry one JSON ctlMsg:
//     {"type":"hb"} heartbeats, {"type":"boundary",...} at stage boundaries,
//     {"type":"end","summary":...} before a successful exit 0, and
//     {"type":"fail","error":...} before a failure exit.
//
// Supervisor → worker control is signals and stdin:
//
//   - SIGTERM: checkpoint-and-stop at the next stage boundary, exit 7
//     (pause, preemption, graceful drain).
//   - SIGINT: cancel the run's context, exit 3.
//   - stdin EOF: the daemon died; exit immediately. Checkpoint writes are
//     atomic, so the restarted daemon migrates the job from the last one.
//
// Exit codes extend the placer CLI's contract (DESIGN.md §9): 0 done,
// 1 generic error, 2 usage, 3 cancelled, 4 corrupt checkpoint, 5 degenerate
// design, 6 guard failure, plus workerExitStopped (7) for a scheduled
// boundary stop. Anything else — a panic-free crash, an injected crash, a
// kill — is unclassified and triggers the supervisor's crash-resume path.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/designio"
	"repro/internal/guard"
	"repro/internal/guard/inject"
	"repro/internal/telemetry"
)

// Worker exit codes. 0–6 mirror cmd/placer; 7 is the worker's scheduled
// boundary stop (the CLI reports that as 0, but the supervisor must tell
// "stopped as asked" from "finished").
const (
	workerExitOK         = 0
	workerExitError      = 1
	workerExitUsage      = 2
	workerExitCancelled  = 3
	workerExitCorrupt    = 4
	workerExitDegenerate = 5
	workerExitGuard      = 6
	workerExitStopped    = 7
	// workerExitCrashInjected is what the WorkerCrash fault exits with —
	// deliberately outside the classified range so the supervisor treats it
	// exactly like a kill -9.
	workerExitCrashInjected = 70
)

// ctlPrefix marks a control line in the worker's stdout stream; every other
// line is a canonical trace event passed through verbatim.
const ctlPrefix = '!'

// ctlMsg is one worker → supervisor control message.
type ctlMsg struct {
	Type    string   `json:"type"` // "hb" | "boundary" | "end" | "fail"
	Point   string   `json:"point,omitempty"`
	Ckpt    bool     `json:"ckpt,omitempty"`
	Error   string   `json:"error,omitempty"`
	Summary *Summary `json:"summary,omitempty"`
}

// muxWriter serializes the worker's two stdout streams — raw trace lines
// (the telemetry observer writes whole lines) and control messages — so they
// never interleave mid-line.
type muxWriter struct {
	mu sync.Mutex
	w  io.Writer
}

// Write passes a trace line through verbatim (telemetry sinks receive one
// complete JSONL line per call).
func (m *muxWriter) Write(p []byte) (int, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.w.Write(p)
}

func (m *muxWriter) control(msg ctlMsg) {
	data, err := json.Marshal(&msg)
	if err != nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.w.Write(append(append([]byte{ctlPrefix}, data...), '\n'))
}

// faultSpecs is a repeatable -inject flag.
type faultSpecs []string

func (f *faultSpecs) String() string { return fmt.Sprint(*f) }
func (f *faultSpecs) Set(s string) error {
	*f = append(*f, s)
	return nil
}

// RunWorker runs one job segment from its state directory and returns the
// process exit code. It is the body of `placed -worker`; cmd/placed calls it
// before normal flag parsing so the mode stays hidden from -help.
func RunWorker(args []string) (code int) {
	defer func() {
		if r := recover(); r != nil {
			// A panic is precisely what process isolation exists for: turn it
			// into an unclassified exit and let the supervisor's crash-resume
			// path handle it.
			fmt.Fprintf(os.Stderr, "worker: panic: %v\n", r)
			code = workerExitError
		}
	}()

	fs := flag.NewFlagSet("placed -worker", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	dir := fs.String("dir", "", "job state directory (required)")
	budget := fs.Int("budget", 1, "worker goroutines for the parallel kernels")
	persistEvery := fs.Int("persist-every", 1, "checkpoint every K stage boundaries")
	hbMillis := fs.Int("heartbeat-ms", 1000, "heartbeat interval")
	boundaryBase := fs.Int("boundary-base", 0, "global index of this segment's first boundary")
	resume := fs.Bool("resume", false, "resume from the state dir's checkpoint")
	injectSeed := fs.Int64("inject-seed", 0, "fault injection seed")
	var faults faultSpecs
	fs.Var(&faults, "inject", "arm a deterministic fault (point:iter; repeatable)")
	if err := fs.Parse(args); err != nil {
		return workerExitUsage
	}
	if *dir == "" {
		fmt.Fprintln(os.Stderr, "worker: -dir is required")
		return workerExitUsage
	}

	mux := &muxWriter{w: os.Stdout}

	data, err := os.ReadFile(filepath.Join(*dir, "job.json"))
	if err != nil {
		mux.control(ctlMsg{Type: "fail", Error: err.Error()})
		return workerExitUsage
	}
	var rec jobRecord
	if err := json.Unmarshal(data, &rec); err != nil {
		mux.control(ctlMsg{Type: "fail", Error: "bad job.json: " + err.Error()})
		return workerExitUsage
	}

	var reg *inject.Registry
	if len(faults) > 0 {
		reg = inject.New(*injectSeed)
		for _, spec := range faults {
			if err := reg.ArmSpec(spec); err != nil {
				fmt.Fprintf(os.Stderr, "worker: %v\n", err)
				return workerExitUsage
			}
		}
	}

	// Orphan watch: the supervisor holds our stdin open for our lifetime and
	// never writes. EOF (or any read error) means the daemon is gone — exit
	// abruptly; the atomic checkpoint on disk is the migration point.
	go func() {
		io.Copy(io.Discard, os.Stdin)
		os.Exit(workerExitError)
	}()

	// Heartbeats, until stopHB (a WorkerStall fault silences them so the
	// supervisor's stall detector — not the exit path — must reap us).
	hbStop := make(chan struct{})
	var hbOnce sync.Once
	stopHB := func() { hbOnce.Do(func() { close(hbStop) }) }
	defer stopHB()
	go func() {
		t := time.NewTicker(time.Duration(*hbMillis) * time.Millisecond)
		defer t.Stop()
		for {
			select {
			case <-hbStop:
				return
			case <-t.C:
				mux.control(ctlMsg{Type: "hb"})
			}
		}
	}()

	// SIGTERM requests a checkpoint-and-stop at the next boundary; SIGINT
	// cancels the run outright.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var stopReq atomic.Bool
	sig := make(chan os.Signal, 4)
	signal.Notify(sig, syscall.SIGTERM, os.Interrupt)
	go func() {
		for s := range sig {
			if s == syscall.SIGTERM {
				stopReq.Store(true)
			} else {
				cancel()
			}
		}
	}()

	d, err := rec.Spec.BuildDesign()
	if err != nil {
		mux.control(ctlMsg{Type: "fail", Error: err.Error()})
		return workerExitError
	}
	opt := rec.Spec.coreOptions()
	opt.Workers = *budget
	opt.Observer = telemetry.NewObserver(mux)
	opt.CheckpointPath = filepath.Join(*dir, "run.ckpt")
	opt.DisableCancelCheckpoint = true
	boundarySeen := 0 // this segment's boundary count, for the persist throttle
	boundaryIdx := 0  // offset from -boundary-base, for deterministic faults
	opt.BoundaryHook = func(point string) core.BoundaryAction {
		idx := *boundaryBase + boundaryIdx
		boundaryIdx++
		action := core.BoundaryContinue
		if stopReq.Load() {
			action = core.BoundaryStop
		} else {
			boundarySeen++
			if boundarySeen%*persistEvery == 0 {
				action = core.BoundaryCheckpoint
			}
		}
		mux.control(ctlMsg{Type: "boundary", Point: point, Ckpt: action != core.BoundaryContinue})
		if reg.ShouldFire(inject.WorkerStall, idx) {
			stopHB()
			select {} // wedge until the supervisor kills us
		}
		if reg.ShouldFire(inject.WorkerCrash, idx) {
			os.Exit(workerExitCrashInjected) // no flush, no cleanup: kill -9 in spirit
		}
		return action
	}

	var res *core.Result
	if *resume {
		res, err = core.ResumeFromFile(ctx, d, opt.CheckpointPath, opt)
	} else {
		res, err = core.PlaceContext(ctx, d, opt)
	}
	switch {
	case errors.Is(err, core.ErrCheckpointed):
		// Scheduled boundary stop: no flush — the resumed segment's events
		// must concatenate into one continuous canonical trace.
		return workerExitStopped
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return workerExitCancelled
	case errors.Is(err, core.ErrCheckpointCorrupt):
		mux.control(ctlMsg{Type: "fail", Error: err.Error()})
		return workerExitCorrupt
	case errors.Is(err, core.ErrDegenerateDesign):
		mux.control(ctlMsg{Type: "fail", Error: err.Error()})
		return workerExitDegenerate
	case errors.Is(err, guard.ErrBudgetExhausted), errors.Is(err, guard.ErrViolation):
		mux.control(ctlMsg{Type: "fail", Error: err.Error()})
		return workerExitGuard
	case err != nil:
		mux.control(ctlMsg{Type: "fail", Error: err.Error()})
		return workerExitError
	}

	// Success: mirror the plain CLI's end-of-run telemetry (metrics flush,
	// no volatile gauges), write the placement, and only then report done —
	// the supervisor treats exit 0 without an end message as a crash.
	if ferr := opt.Observer.Flush(); ferr != nil {
		mux.control(ctlMsg{Type: "fail", Error: "trace flush: " + ferr.Error()})
		return workerExitError
	}
	var buf bytes.Buffer
	if werr := designio.Write(&buf, d); werr == nil {
		werr = writeFileAtomic(filepath.Join(*dir, "out.place"), buf.Bytes())
		if werr != nil {
			mux.control(ctlMsg{Type: "fail", Error: werr.Error()})
			return workerExitError
		}
	} else {
		mux.control(ctlMsg{Type: "fail", Error: werr.Error()})
		return workerExitError
	}
	mux.control(ctlMsg{Type: "end", Summary: summarize(res)})
	return workerExitOK
}
