//go:build !(linux || darwin)

package jobs

// diskFree has no portable implementation here; report "plenty" so the disk
// guard never sheds on platforms where it cannot measure.
func diskFree(dir string) (uint64, error) {
	return 1 << 62, nil
}
