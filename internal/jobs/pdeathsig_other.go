//go:build !linux

package jobs

import "os/exec"

// setPdeathsig is a no-op off Linux; the worker's stdin-EOF orphan watch
// still reaps workers whose daemon died.
func setPdeathsig(cmd *exec.Cmd) {}
