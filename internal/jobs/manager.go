package jobs

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/telemetry"
)

// Config parameterizes a Manager.
type Config struct {
	// Dir is the state directory. Every job lives in Dir/<id>/ (job.json,
	// trace.jsonl, run.ckpt, out.place); a Manager opened over an existing
	// directory adopts the jobs it finds there.
	Dir string
	// Capacity is the worker-slot pool shared by all running jobs
	// (default 1). A job occupies its (clamped) Workers budget while running.
	Capacity int
	// Quantum is the fair-share lease: after this many stage boundaries a
	// running job yields to an equal-or-higher-priority waiter (default 4).
	Quantum int
	// PersistEvery throttles durability checkpoints to every Nth boundary
	// (default 1: persist at every boundary — the crash-migration window is
	// then a single stage or route iteration).
	PersistEvery int
	// Log receives operational one-liners and worker stderr; nil discards.
	Log io.Writer

	// WorkerCommand is the argv prefix that starts a worker process
	// (typically the placed binary followed by "-worker"); the manager
	// appends the per-job flags. Required.
	WorkerCommand []string
	// WorkerEnv is appended to the inherited environment of every worker.
	WorkerEnv []string

	// RetryBudget is how many automatic restarts a job gets after worker
	// crashes or stalls before it is quarantined as failed(poisoned)
	// (default 3; negative = no retries).
	RetryBudget int
	// BackoffBase/BackoffMax bound the exponential restart backoff
	// (defaults 250ms and 10s): restart k waits min(Base·2^(k-1), Max).
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// StallTimeout kills a worker that has not heartbeated for this long
	// (default 60s; negative disables the stall monitor). The kill feeds the
	// same crash-resume path as a real crash.
	StallTimeout time.Duration
	// HeartbeatEvery is the worker heartbeat interval (default 1s).
	HeartbeatEvery time.Duration

	// MaxQueued bounds the number of jobs waiting in state queued; beyond
	// it Submit sheds with ErrOverloaded (default 64; negative = unbounded).
	MaxQueued int
	// MinFreeBytes sheds submissions when the state dir's filesystem has
	// less than this many bytes free (default 64 MiB; negative disables).
	MinFreeBytes int64

	// FaultSpecs/FaultSeed arm deterministic worker faults ("worker_crash:K",
	// "worker_stall:K" — see internal/guard/inject) in every launched worker.
	// Chaos tests only; empty in production.
	FaultSpecs []string
	FaultSeed  int64
}

func (c *Config) fill() {
	if c.Capacity < 1 {
		c.Capacity = 1
	}
	if c.Quantum < 1 {
		c.Quantum = 4
	}
	if c.PersistEvery < 1 {
		c.PersistEvery = 1
	}
	if c.RetryBudget == 0 {
		c.RetryBudget = 3
	}
	if c.RetryBudget < 0 {
		c.RetryBudget = 0
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = 250 * time.Millisecond
	}
	if c.BackoffMax <= 0 {
		c.BackoffMax = 10 * time.Second
	}
	if c.StallTimeout == 0 {
		c.StallTimeout = 60 * time.Second
	}
	if c.HeartbeatEvery <= 0 {
		c.HeartbeatEvery = time.Second
	}
	if c.MaxQueued == 0 {
		c.MaxQueued = 64
	}
	if c.MinFreeBytes == 0 {
		c.MinFreeBytes = 64 << 20
	}
}

// Manager owns the job table, the scheduler and the supervised worker
// processes. All methods are safe for concurrent use.
type Manager struct {
	cfg Config

	mu      sync.Mutex
	jobs    map[string]*job
	sched   *sched
	nextSeq int
	closed  bool

	killed atomic.Bool // crash simulation: freeze all further state updates

	monitorStop chan struct{}
	monitorOnce sync.Once

	// Supervision telemetry lives in its own registry — never a job's trace
	// observer — so the counters cannot perturb canonical traces.
	sreg         *telemetry.Registry
	cRestarts    *telemetry.Counter
	cQuarantines *telemetry.Counter
	cStalls      *telemetry.Counter
	cShed        *telemetry.Counter

	wg sync.WaitGroup // one count per worker supervisor + the stall monitor
}

var (
	// ErrNoSuchJob is returned for an unknown job ID.
	ErrNoSuchJob = errors.New("jobs: no such job")
	// ErrBadTransition is returned when a pause/resume/cancel does not apply
	// to the job's current state.
	ErrBadTransition = errors.New("jobs: invalid state transition")
	// ErrClosed is returned by Submit after Close.
	ErrClosed = errors.New("jobs: manager is closed")
	// ErrOverloaded is returned by Submit when admission control sheds the
	// request (queue cap or disk guard); the HTTP layer maps it to 503 with
	// a Retry-After.
	ErrOverloaded = errors.New("jobs: overloaded")
)

// Open creates a Manager over cfg.Dir, creating the directory if needed and
// recovering any jobs a previous process left behind:
//
//   - terminal jobs are adopted read-only (their traces replay over SSE);
//   - paused jobs stay paused, ready to resume from their checkpoint;
//   - queued/running jobs are re-queued — from their latest valid checkpoint
//     when one exists (the trace file is first truncated to the events that
//     preceded it, keeping the migrated run's trace byte-exact), from
//     scratch otherwise;
//   - jobs caught mid-cancellation are marked cancelled.
func Open(cfg Config) (*Manager, error) {
	cfg.fill()
	if cfg.Dir == "" {
		return nil, fmt.Errorf("jobs: Config.Dir is required")
	}
	if len(cfg.WorkerCommand) == 0 {
		return nil, fmt.Errorf("jobs: Config.WorkerCommand is required (the placed binary plus \"-worker\")")
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, err
	}
	m := &Manager{
		cfg:         cfg,
		jobs:        map[string]*job{},
		sched:       newSched(cfg.Capacity, cfg.Quantum),
		monitorStop: make(chan struct{}),
		sreg:        telemetry.NewRegistry(),
	}
	m.cRestarts = m.sreg.Counter("supervise.restarts")
	m.cQuarantines = m.sreg.Counter("supervise.quarantines")
	m.cStalls = m.sreg.Counter("supervise.stalls")
	m.cShed = m.sreg.Counter("supervise.shed_requests")
	if err := m.recover(); err != nil {
		return nil, err
	}
	if cfg.StallTimeout > 0 {
		m.wg.Add(1)
		go m.monitor()
	}
	m.mu.Lock()
	m.scheduleLocked()
	m.mu.Unlock()
	return m, nil
}

func (m *Manager) logf(format string, args ...any) {
	if m.cfg.Log != nil {
		fmt.Fprintf(m.cfg.Log, "jobs: "+format+"\n", args...)
	}
}

// ---- Submission and control ----

// Submit validates spec, applies admission control, registers the job and
// schedules it. It returns the job ID immediately; the placement runs
// asynchronously in a supervised worker process.
func (m *Manager) Submit(spec Spec) (string, error) {
	if err := spec.Validate(); err != nil {
		return "", err
	}
	// Building the design up front rejects a broken inline payload at
	// submission instead of failing the job later; workers rebuild it
	// (deterministically) when they run.
	if _, err := spec.BuildDesign(); err != nil {
		return "", err
	}

	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return "", ErrClosed
	}
	if m.cfg.MaxQueued > 0 {
		if q := m.queuedLocked(); q >= m.cfg.MaxQueued {
			m.cShed.Inc()
			return "", fmt.Errorf("%w: %d jobs queued (cap %d)", ErrOverloaded, q, m.cfg.MaxQueued)
		}
	}
	if m.cfg.MinFreeBytes > 0 {
		if free, err := diskFree(m.cfg.Dir); err == nil && free < uint64(m.cfg.MinFreeBytes) {
			m.cShed.Inc()
			return "", fmt.Errorf("%w: %d bytes free on state dir (min %d)", ErrOverloaded, free, m.cfg.MinFreeBytes)
		}
	}
	m.nextSeq++
	j := &job{
		id:      fmt.Sprintf("j%04d", m.nextSeq),
		seq:     m.nextSeq,
		spec:    spec,
		created: time.Now().UTC(),
		state:   StateQueued,
	}
	j.dir = filepath.Join(m.cfg.Dir, j.id)
	if err := os.MkdirAll(j.dir, 0o755); err != nil {
		return "", err
	}
	f, err := os.OpenFile(m.tracePath(j), os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return "", err
	}
	j.traceFile = f
	j.hub = telemetry.NewHub(f)
	m.jobs[j.id] = j
	if err := m.persistLocked(j); err != nil {
		return "", err
	}
	m.sched.add(j.id, j.seq, j.spec.Priority, m.budget(&j.spec))
	m.logf("submitted %s design=%s mode=%s workers=%d priority=%d",
		j.id, j.spec.DesignName(), j.spec.Mode, m.budget(&j.spec), j.spec.Priority)
	m.scheduleLocked()
	return j.id, nil
}

// queuedLocked counts jobs waiting in state queued (including crash backoff).
func (m *Manager) queuedLocked() int {
	n := 0
	for _, j := range m.jobs {
		if j.state == StateQueued {
			n++
		}
	}
	return n
}

// Pause asks a job to park: a running job's worker checkpoints and stops at
// its next stage boundary, a queued job leaves the scheduler immediately.
// Pausing a paused or pausing job is a no-op.
func (m *Manager) Pause(id string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return ErrNoSuchJob
	}
	switch j.state {
	case StatePaused, StatePausing:
		return nil
	case StateQueued:
		m.stopBackoffLocked(j)
		m.sched.remove(id)
		j.state = StatePaused
		return m.persistLocked(j)
	case StateRunning:
		j.pauseWanted = true
		j.state = StatePausing
		m.sched.stop(id)
		m.stopWorkerLocked(j)
		m.scheduleLocked() // a waiter may be admissible once the slots free
		return m.persistLocked(j)
	default:
		return fmt.Errorf("%w: cannot pause a %s job", ErrBadTransition, j.state)
	}
}

// Resume re-queues a paused job; it continues from its checkpoint.
func (m *Manager) Resume(id string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return ErrNoSuchJob
	}
	if j.state != StatePaused {
		return fmt.Errorf("%w: cannot resume a %s job", ErrBadTransition, j.state)
	}
	j.state = StateQueued
	m.sched.add(j.id, j.seq, j.spec.Priority, m.budget(&j.spec))
	if err := m.persistLocked(j); err != nil {
		return err
	}
	m.scheduleLocked()
	return nil
}

// Cancel aborts a job. A running worker is interrupted (its cancellation
// checkpoint is disabled, so the abort cannot disturb the job's last
// migration point); a queued or paused job goes terminal immediately.
// Cancelling an already-cancelled job is a no-op.
func (m *Manager) Cancel(id string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return ErrNoSuchJob
	}
	switch j.state {
	case StateCancelled, StateCancelling:
		return nil
	case StateQueued, StatePaused:
		m.stopBackoffLocked(j)
		m.sched.remove(id)
		j.state = StateCancelled
		m.finishLocked(j)
		m.scheduleLocked()
		return m.persistLocked(j)
	case StateRunning, StatePausing:
		j.state = StateCancelling
		m.cancelWorkerLocked(j)
		return m.persistLocked(j)
	default:
		return fmt.Errorf("%w: cannot cancel a %s job", ErrBadTransition, j.state)
	}
}

// Get returns a snapshot of one job.
func (m *Manager) Get(id string) (JobView, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return JobView{}, ErrNoSuchJob
	}
	return m.viewLocked(j), nil
}

// List returns snapshots of all jobs in submission order.
func (m *Manager) List() []JobView {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]JobView, 0, len(m.jobs))
	for _, j := range m.jobs {
		out = append(out, m.viewLocked(j))
	}
	sort.Slice(out, func(i, k int) bool { return out[i].ID < out[k].ID })
	return out
}

// Hub returns the job's telemetry hub for SSE/dashboard subscribers. The
// hub of a terminal job is closed: subscribers receive the full backlog and
// an immediate end-of-stream.
func (m *Manager) Hub(id string) (*telemetry.Hub, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return nil, ErrNoSuchJob
	}
	return j.hub, nil
}

// TracePath returns the job's canonical JSONL trace file.
func (m *Manager) TracePath(id string) (string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return "", ErrNoSuchJob
	}
	return m.tracePath(j), nil
}

// PlacementPath returns the final placement file of a done job.
func (m *Manager) PlacementPath(id string) (string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return "", ErrNoSuchJob
	}
	if j.state != StateDone {
		return "", fmt.Errorf("%w: placement available once done, job is %s", ErrBadTransition, j.state)
	}
	return filepath.Join(j.dir, "out.place"), nil
}

// Ready reports whether the server should accept new submissions, with a
// reason when it should not — the /readyz probe. Distinct from liveness: a
// draining or overloaded daemon is alive but not ready.
func (m *Manager) Ready() (bool, string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return false, "draining"
	}
	if m.cfg.MaxQueued > 0 {
		if q := m.queuedLocked(); q >= m.cfg.MaxQueued {
			return false, fmt.Sprintf("overloaded: %d jobs queued (cap %d)", q, m.cfg.MaxQueued)
		}
	}
	if m.cfg.MinFreeBytes > 0 {
		if free, err := diskFree(m.cfg.Dir); err == nil && free < uint64(m.cfg.MinFreeBytes) {
			return false, fmt.Sprintf("low disk: %d bytes free on state dir", free)
		}
	}
	return true, ""
}

// Stats snapshots the supervision metrics (restarts, quarantines, stalls,
// shed requests, live worker/queue gauges). The registry is separate from
// every job's trace observer, so reading it never perturbs canonical traces.
func (m *Manager) Stats() []telemetry.Metric {
	m.mu.Lock()
	var maxAge time.Duration
	active, queued := 0, 0
	now := time.Now()
	for _, j := range m.jobs {
		if j.proc != nil {
			active++
			if age := now.Sub(j.lastHB); age > maxAge {
				maxAge = age
			}
		}
		if j.state == StateQueued {
			queued++
		}
	}
	m.sreg.VolatileGauge("supervise.active_workers").Set(float64(active))
	m.sreg.VolatileGauge("supervise.queued_jobs").Set(float64(queued))
	m.sreg.VolatileGauge("supervise.heartbeat_age_ms").Set(float64(maxAge.Milliseconds()))
	m.mu.Unlock()
	return m.sreg.Snapshot()
}

// NoteShed records a shed request decided outside the manager (the HTTP
// layer's per-submitter rate limiter).
func (m *Manager) NoteShed() { m.cShed.Inc() }

// ---- Scheduling and worker supervision ----

// budget is the job's effective worker-slot budget.
func (m *Manager) budget(s *Spec) int {
	w := s.Workers
	if w < 1 {
		w = 1
	}
	if w > m.cfg.Capacity {
		w = m.cfg.Capacity
	}
	return w
}

// scheduleLocked launches workers for every job the scheduler admits and
// signals preemption victims. Callers hold m.mu.
func (m *Manager) scheduleLocked() {
	if m.closed || m.killed.Load() {
		return
	}
	for _, id := range m.sched.decide() {
		j := m.jobs[id]
		if err := m.launchWorkerLocked(j); err != nil {
			// A failed launch takes the same path as a crash: backoff,
			// retry, and quarantine if it keeps failing.
			m.noteCrashLocked(j, fmt.Sprintf("worker launch: %v", err))
			if perr := m.persistLocked(j); perr != nil {
				m.logf("%s: persist: %v", j.id, perr)
			}
		}
	}
	// decide may have marked running jobs as preemption victims; tell their
	// workers to checkpoint-and-stop at the next boundary.
	for _, id := range m.sched.stopping() {
		if j := m.jobs[id]; j != nil {
			m.stopWorkerLocked(j)
		}
	}
}

// prepareLaunchLocked fixes up the job's on-disk state before a worker
// starts: it picks the latest valid checkpoint (promoting .prev over a
// corrupt primary), truncates the trace to exactly the events that preceded
// it, and rebuilds the hub when the truncation changed the stream (live
// subscribers get an eof and reconnect to the consistent backlog). With no
// usable checkpoint the job restarts from scratch. Idempotent: a clean
// boundary stop passes through without touching the stream.
func (m *Manager) prepareLaunchLocked(j *job) error {
	trace := m.tracePath(j)
	ckpt := filepath.Join(j.dir, "run.ckpt")
	info, ierr := core.InspectCheckpoint(ckpt)
	if ierr != nil && errors.Is(ierr, core.ErrCheckpointCorrupt) {
		prev := ckpt + ".prev"
		if pinfo, perr := core.InspectCheckpoint(prev); perr == nil {
			if rerr := os.Rename(prev, ckpt); rerr != nil {
				return rerr
			}
			info, ierr = pinfo, nil
			m.logf("%s: primary checkpoint corrupt; promoted .prev", j.id)
		}
	}
	fresh := ierr != nil
	var lines [][]byte
	changed := false
	if !fresh {
		var terr error
		lines, changed, terr = truncateTrace(trace, info.TraceSeq)
		if terr != nil {
			if !errors.Is(terr, errTraceShort) {
				return terr
			}
			// Checkpoint claims events the trace never got: the pair is
			// inconsistent, so a byte-exact migration is impossible. Restart
			// from scratch rather than serve a wrong trace.
			m.logf("%s: %v; restarting from scratch", j.id, terr)
			fresh = true
		}
	}
	if fresh {
		os.Remove(ckpt)
		os.Remove(ckpt + ".prev")
		j.resume = false
		if j.segments == 0 {
			return nil // first launch: the trace is already empty
		}
		if err := os.WriteFile(trace, nil, 0o644); err != nil {
			return err
		}
		return m.rebuildStreamLocked(j, nil)
	}
	j.resume = true
	j.lastCheckpoint = fmt.Sprintf("%s iter=%d", info.Stage, info.Iter)
	if changed {
		return m.rebuildStreamLocked(j, lines)
	}
	return nil
}

// rebuildStreamLocked replaces the job's hub and trace file handle after the
// trace was rewritten on disk. The old hub closes, so live subscribers see
// an end-of-stream and reconnect.
func (m *Manager) rebuildStreamLocked(j *job, lines [][]byte) error {
	if j.hub != nil {
		j.hub.Close()
	}
	if j.traceFile != nil {
		j.traceFile.Close()
		j.traceFile = nil
	}
	f, err := os.OpenFile(m.tracePath(j), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	j.traceFile = f
	j.hub = telemetry.NewHub(f)
	j.hub.Seed(lines)
	return nil
}

// launchWorkerLocked starts one worker process for the job and a supervisor
// goroutine that consumes its stdout protocol until exit.
func (m *Manager) launchWorkerLocked(j *job) error {
	if err := m.prepareLaunchLocked(j); err != nil {
		return err
	}
	argv := append([]string{}, m.cfg.WorkerCommand...)
	argv = append(argv,
		"-dir", j.dir,
		"-budget", strconv.Itoa(m.budget(&j.spec)),
		"-persist-every", strconv.Itoa(m.cfg.PersistEvery),
		"-heartbeat-ms", strconv.Itoa(int(m.cfg.HeartbeatEvery/time.Millisecond)),
		"-boundary-base", strconv.Itoa(j.boundaryTotal),
	)
	if j.resume {
		argv = append(argv, "-resume")
	}
	for _, spec := range m.cfg.FaultSpecs {
		argv = append(argv, "-inject", spec)
	}
	if len(m.cfg.FaultSpecs) > 0 {
		argv = append(argv, "-inject-seed", strconv.FormatInt(m.cfg.FaultSeed, 10))
	}
	cmd := exec.Command(argv[0], argv[1:]...)
	cmd.Env = append(os.Environ(), m.cfg.WorkerEnv...)
	if m.cfg.Log != nil {
		cmd.Stderr = m.cfg.Log
	}
	setPdeathsig(cmd)
	// The worker holds our write end of its stdin open for its lifetime;
	// closing it (or daemon death closing it) tells the worker it is
	// orphaned.
	stdin, err := cmd.StdinPipe()
	if err != nil {
		return err
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		stdin.Close()
		return err
	}
	if err := cmd.Start(); err != nil {
		stdin.Close()
		return err
	}
	j.state = StateRunning
	j.segments++
	j.stopSent = false
	j.stalled = false
	j.endMsg = nil
	j.failMsg = ""
	j.proc = cmd.Process
	j.pid = cmd.Process.Pid
	j.lastHB = time.Now()
	if err := m.persistLocked(j); err != nil {
		m.logf("%s: persist: %v", j.id, err)
	}
	m.logf("%s: starting segment %d pid=%d (resume=%v)", j.id, j.segments, j.pid, j.resume)
	hub := j.hub
	m.wg.Add(1)
	go m.superviseWorker(j, cmd, hub, stdin, stdout)
	return nil
}

// superviseWorker consumes one worker's stdout until it exits: raw trace
// lines flow into the job's hub (and so the canonical trace file), control
// lines update supervision state. It then classifies the exit.
func (m *Manager) superviseWorker(j *job, cmd *exec.Cmd, hub *telemetry.Hub, stdin io.WriteCloser, stdout io.Reader) {
	defer m.wg.Done()
	br := bufio.NewReaderSize(stdout, 64<<10)
	for {
		line, err := br.ReadBytes('\n')
		if len(line) > 0 && line[len(line)-1] == '\n' {
			// A torn final line (no newline) from a dying worker is dropped:
			// the trace file must stay valid JSONL.
			if line[0] == ctlPrefix {
				m.handleControl(j, line[1:])
			} else if !m.killed.Load() {
				hub.Write(line)
			}
		}
		if err != nil {
			break
		}
	}
	werr := cmd.Wait()
	stdin.Close()
	code := -1
	if cmd.ProcessState != nil {
		code = cmd.ProcessState.ExitCode()
	}
	desc := fmt.Sprintf("exit code %d", code)
	if werr != nil {
		desc = werr.Error() // "signal: killed" and friends
	}
	m.onWorkerExit(j, code, desc)
}

// handleControl applies one worker control message.
func (m *Manager) handleControl(j *job, payload []byte) {
	var msg ctlMsg
	if err := json.Unmarshal(payload, &msg); err != nil {
		m.logf("%s: bad control line: %v", j.id, err)
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.killed.Load() {
		return
	}
	j.lastHB = time.Now()
	switch msg.Type {
	case "hb":
	case "boundary":
		j.boundaryTotal++
		if msg.Ckpt {
			j.lastCheckpoint = msg.Point
		}
		// The scheduler decides pause/preemption/fair-share at boundaries,
		// exactly as it did in-process; a stop decision becomes a signal and
		// the worker checkpoints at its next boundary.
		if m.sched.onBoundary(j.id) {
			m.stopWorkerLocked(j)
		}
	case "end":
		j.endMsg = msg.Summary
	case "fail":
		j.failMsg = msg.Error
	}
}

// stopWorkerLocked asks the worker to checkpoint-and-stop at its next stage
// boundary (SIGTERM; exit 7). Deduplicated per launch.
func (m *Manager) stopWorkerLocked(j *job) {
	if j.proc == nil || j.stopSent {
		return
	}
	j.stopSent = true
	if err := j.proc.Signal(syscall.SIGTERM); err != nil {
		m.logf("%s: stop signal: %v", j.id, err)
	}
}

// cancelWorkerLocked interrupts the worker's run (SIGINT; exit 3).
func (m *Manager) cancelWorkerLocked(j *job) {
	if j.proc == nil {
		return
	}
	if err := j.proc.Signal(os.Interrupt); err != nil {
		m.logf("%s: cancel signal: %v", j.id, err)
	}
}

// onWorkerExit is the supervisor's state machine: it classifies the worker's
// exit code against the contract (see worker.go), persists the transition
// and lets the scheduler fill the freed slots.
func (m *Manager) onWorkerExit(j *job, code int, desc string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j.proc = nil
	j.pid = 0
	if m.killed.Load() {
		return // crash simulation: the dead daemon updates nothing
	}
	switch {
	case j.state == StateCancelling:
		// Whatever the exit code — a clean exit 3, or a crash racing the
		// cancel — the user asked for the job to end.
		j.state = StateCancelled
		m.sched.remove(j.id)
		m.finishLocked(j)
		m.logf("%s: cancelled", j.id)
	case code == workerExitStopped:
		// Scheduled stop at a boundary: pause parks the job, preemption and
		// graceful shutdown requeue it. Either way the next worker resumes
		// from the checkpoint and the trace continues byte-exactly.
		j.resume = true
		if j.pauseWanted {
			j.pauseWanted = false
			j.state = StatePaused
			m.sched.remove(j.id)
			m.logf("%s: paused at %s", j.id, j.lastCheckpoint)
		} else {
			j.state = StateQueued
			m.sched.requeue(j.id)
			m.logf("%s: preempted at %s", j.id, j.lastCheckpoint)
		}
	case code == workerExitOK && j.endMsg != nil:
		j.summary = j.endMsg
		j.endMsg = nil
		j.state = StateDone
		m.sched.remove(j.id)
		m.finishLocked(j)
		m.logf("%s: done HPWL=%.0f DRVs=%d", j.id, j.summary.HPWLFinal, j.summary.DRVs)
	case code == workerExitUsage, code == workerExitDegenerate, code == workerExitGuard:
		// Deterministic failures: retrying cannot help, fail immediately.
		j.state = StateFailed
		if j.errMsg = j.failMsg; j.errMsg == "" {
			j.errMsg = fmt.Sprintf("worker: %s", desc)
		}
		m.sched.remove(j.id)
		m.finishLocked(j)
		m.logf("%s: failed: %s", j.id, j.errMsg)
	default:
		// Crashes, kills, stalls (the monitor's kill lands here), corrupt
		// checkpoints (a retry heals them via the .prev promotion), injected
		// crashes, exit 0 without an end message: the crash-resume path.
		reason := desc
		if j.stalled {
			reason = "stalled (heartbeat timeout); killed"
		} else if j.failMsg != "" {
			reason = j.failMsg
		}
		m.noteCrashLocked(j, reason)
	}
	if perr := m.persistLocked(j); perr != nil {
		m.logf("%s: persist: %v", j.id, perr)
	}
	m.scheduleLocked()
}

// noteCrashLocked handles an unclassified worker death: requeue with bounded
// exponential backoff while the retry budget lasts, quarantine as
// failed(poisoned) after.
func (m *Manager) noteCrashLocked(j *job, reason string) {
	if j.pauseWanted {
		// The pause asked for a stop; the crash delivered one. Park the job
		// — Resume will relaunch from the last checkpoint.
		j.pauseWanted = false
		j.state = StatePaused
		m.sched.remove(j.id)
		m.logf("%s: worker died during pause (%s); parked paused", j.id, reason)
		return
	}
	j.restarts++
	m.cRestarts.Inc()
	if j.restarts > m.cfg.RetryBudget {
		j.poisoned = true
		j.state = StateFailed
		j.errMsg = fmt.Sprintf("poisoned: retry budget (%d) exhausted; last worker death: %s",
			m.cfg.RetryBudget, reason)
		m.cQuarantines.Inc()
		m.sched.remove(j.id)
		m.finishLocked(j)
		m.logf("%s: quarantined as failed(poisoned): %s", j.id, reason)
		return
	}
	backoff := m.backoffFor(j.restarts)
	j.state = StateQueued
	m.sched.remove(j.id) // out of the scheduler until the backoff elapses
	m.logf("%s: worker died (%s); restart %d/%d in %v",
		j.id, reason, j.restarts, m.cfg.RetryBudget, backoff)
	if m.closed {
		return // persisted as queued; the next Open requeues it
	}
	id := j.id
	j.backoffTimer = time.AfterFunc(backoff, func() { m.endBackoff(id) })
}

// backoffFor returns min(BackoffBase·2^(restarts-1), BackoffMax).
func (m *Manager) backoffFor(restarts int) time.Duration {
	d := m.cfg.BackoffBase
	for i := 1; i < restarts; i++ {
		d *= 2
		if d >= m.cfg.BackoffMax {
			return m.cfg.BackoffMax
		}
	}
	if d > m.cfg.BackoffMax {
		d = m.cfg.BackoffMax
	}
	return d
}

// endBackoff re-enters a crashed job into the scheduler once its backoff
// elapses. The state checks make a timer that raced a pause/cancel/close a
// no-op.
func (m *Manager) endBackoff(id string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed || m.killed.Load() {
		return
	}
	j := m.jobs[id]
	if j == nil || j.backoffTimer == nil || j.state != StateQueued {
		return
	}
	j.backoffTimer = nil
	m.sched.add(j.id, j.seq, j.spec.Priority, m.budget(&j.spec))
	m.scheduleLocked()
}

// stopBackoffLocked cancels a pending crash-restart timer.
func (m *Manager) stopBackoffLocked(j *job) {
	if j.backoffTimer != nil {
		j.backoffTimer.Stop()
		j.backoffTimer = nil
	}
}

// monitor is the stall detector: a worker that has neither heartbeated nor
// reported a boundary for StallTimeout is killed, which routes it into the
// crash-resume path.
func (m *Manager) monitor() {
	defer m.wg.Done()
	tick := m.cfg.StallTimeout / 4
	if tick < time.Millisecond {
		tick = time.Millisecond
	}
	if tick > time.Second {
		tick = time.Second
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-m.monitorStop:
			return
		case <-t.C:
			m.mu.Lock()
			now := time.Now()
			for _, j := range m.jobs {
				if j.proc != nil && !j.stalled && now.Sub(j.lastHB) > m.cfg.StallTimeout {
					j.stalled = true
					m.cStalls.Inc()
					m.logf("%s: worker pid %d stalled (silent for %v); killing",
						j.id, j.pid, now.Sub(j.lastHB).Round(time.Millisecond))
					j.proc.Kill()
				}
			}
			m.mu.Unlock()
		}
	}
}

func (m *Manager) stopMonitor() {
	m.monitorOnce.Do(func() { close(m.monitorStop) })
}

// finishLocked closes the job's live stream and trace file. Idempotent.
func (m *Manager) finishLocked(j *job) {
	if j.hub != nil {
		j.hub.Close()
	}
	if j.traceFile != nil {
		if err := j.traceFile.Close(); err != nil {
			m.logf("%s: trace close: %v", j.id, err)
		}
		j.traceFile = nil
	}
}

// ---- Persistence and recovery ----

func (m *Manager) tracePath(j *job) string {
	return filepath.Join(j.dir, "trace.jsonl")
}

func (m *Manager) persistLocked(j *job) error {
	rec := jobRecord{
		ID:         j.id,
		Seq:        j.seq,
		Spec:       j.spec,
		State:      j.state,
		Created:    j.created,
		Segments:   j.segments,
		Error:      j.errMsg,
		Summary:    j.summary,
		Restarts:   j.restarts,
		Poisoned:   j.poisoned,
		Boundaries: j.boundaryTotal,
	}
	data, err := json.MarshalIndent(&rec, "", "  ")
	if err != nil {
		return err
	}
	return writeFileAtomic(filepath.Join(j.dir, "job.json"), append(data, '\n'))
}

func (m *Manager) viewLocked(j *job) JobView {
	mode := j.spec.Mode
	if mode == "" {
		mode = "ours"
	}
	return JobView{
		ID:         j.id,
		Design:     j.spec.DesignName(),
		Mode:       mode,
		State:      j.state,
		Priority:   j.spec.Priority,
		Workers:    m.budget(&j.spec),
		Created:    j.created,
		Segments:   j.segments,
		Error:      j.errMsg,
		Summary:    j.summary,
		Checkpoint: j.lastCheckpoint,
		Restarts:   j.restarts,
		Poisoned:   j.poisoned,
		WorkerPID:  j.pid,
	}
}

// recover adopts the jobs a previous process left in the state directory.
func (m *Manager) recover() error {
	entries, err := os.ReadDir(m.cfg.Dir)
	if err != nil {
		return err
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		dir := filepath.Join(m.cfg.Dir, e.Name())
		data, err := os.ReadFile(filepath.Join(dir, "job.json"))
		if err != nil {
			if os.IsNotExist(err) {
				continue // not a job directory
			}
			return err
		}
		var rec jobRecord
		if err := json.Unmarshal(data, &rec); err != nil {
			m.logf("recover %s: bad job.json: %v (skipped)", e.Name(), err)
			continue
		}
		j := &job{
			id:            rec.ID,
			seq:           rec.Seq,
			spec:          rec.Spec,
			dir:           dir,
			created:       rec.Created,
			state:         rec.State,
			errMsg:        rec.Error,
			summary:       rec.Summary,
			segments:      rec.Segments,
			restarts:      rec.Restarts,
			poisoned:      rec.Poisoned,
			boundaryTotal: rec.Boundaries,
		}
		if err := m.recoverJob(j); err != nil {
			return fmt.Errorf("recover %s: %w", j.id, err)
		}
		m.jobs[j.id] = j
		if j.seq > m.nextSeq {
			m.nextSeq = j.seq
		}
	}
	return nil
}

// recoverJob rebuilds one adopted job's runtime state (hub, trace file,
// scheduler entry) from its on-disk remains.
func (m *Manager) recoverJob(j *job) error {
	trace := m.tracePath(j)
	if j.state.Terminal() {
		// Read-only adoption: seed a closed hub so SSE replays the full
		// stream and immediately ends it.
		lines, err := readTraceLines(trace)
		if err != nil {
			return err
		}
		j.hub = telemetry.NewHub(nil)
		j.hub.Seed(lines)
		j.hub.Close()
		return nil
	}
	if j.state == StateCancelling {
		// The cancel was requested before the crash; honor it. The trace is
		// whatever the dead process got out — cancelled jobs carry no
		// byte-identity promise.
		j.state = StateCancelled
		lines, err := readTraceLines(trace)
		if err != nil {
			return err
		}
		j.hub = telemetry.NewHub(nil)
		j.hub.Seed(lines)
		j.hub.Close()
		return m.persistLocked(j)
	}

	// Find the job's latest valid migration point. Only boundary
	// checkpoints exist (the manager disables cancellation checkpoints), so
	// any valid file here is trace-exact.
	ckpt := filepath.Join(j.dir, "run.ckpt")
	info, ierr := core.InspectCheckpoint(ckpt)
	if ierr != nil && errors.Is(ierr, core.ErrCheckpointCorrupt) {
		prev := ckpt + ".prev"
		if pinfo, perr := core.InspectCheckpoint(prev); perr == nil {
			// Promote the last-good rotation so the resume path reads a
			// valid primary.
			if rerr := os.Rename(prev, ckpt); rerr != nil {
				return rerr
			}
			info, ierr = pinfo, nil
			m.logf("%s: primary checkpoint corrupt; promoted .prev", j.id)
		}
	}

	fresh := ierr != nil
	var seedLines [][]byte
	if !fresh {
		lines, _, terr := truncateTrace(trace, info.TraceSeq)
		if terr != nil {
			if !errors.Is(terr, errTraceShort) {
				return terr
			}
			// Checkpoint claims events the trace never got: the pair is
			// inconsistent, so a byte-exact migration is impossible.
			// Restart the job from scratch rather than serve a wrong trace.
			m.logf("%s: %v; restarting from scratch", j.id, terr)
			fresh = true
		} else {
			seedLines = lines
		}
	}
	if fresh {
		os.Remove(ckpt)
		os.Remove(ckpt + ".prev")
		if err := os.WriteFile(trace, nil, 0o644); err != nil {
			return err
		}
		j.resume = false
	} else {
		j.resume = true
		j.lastCheckpoint = fmt.Sprintf("%s iter=%d", info.Stage, info.Iter)
	}

	f, err := os.OpenFile(trace, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	j.traceFile = f
	j.hub = telemetry.NewHub(f)
	j.hub.Seed(seedLines)

	// Pausing collapses to paused (the stop was requested; the crash
	// delivered it); queued/running re-queue for migration.
	switch j.state {
	case StatePausing, StatePaused:
		j.state = StatePaused
	default:
		j.state = StateQueued
		m.sched.add(j.id, j.seq, j.spec.Priority, m.budget(&j.spec))
	}
	m.logf("%s: recovered as %s (resume=%v)", j.id, j.state, j.resume)
	return m.persistLocked(j)
}

// ---- Shutdown ----

// Close shuts the manager down gracefully: running workers checkpoint and
// stop at their next stage boundary and their jobs persist as queued, so a
// Manager reopened over the same directory resumes them byte-exactly.
// Blocks until all workers have exited.
func (m *Manager) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		m.wg.Wait()
		return
	}
	m.closed = true
	for id, j := range m.jobs {
		m.stopBackoffLocked(j)
		if j.state == StateRunning || j.state == StatePausing {
			m.sched.stop(id)
			m.stopWorkerLocked(j)
		}
	}
	m.mu.Unlock()
	m.stopMonitor()
	m.wg.Wait()
	m.mu.Lock()
	for _, j := range m.jobs {
		m.finishLocked(j)
	}
	m.mu.Unlock()
}

// Kill simulates a daemon crash for tests: every worker process is killed
// and no further state is persisted, leaving the directory exactly as a
// SIGKILLed daemon would — the last boundary checkpoint on disk and a trace
// file that may run past it. Blocks until the supervisors have exited (so
// no file write races the Manager that adopts the directory next).
func (m *Manager) Kill() {
	m.killed.Store(true)
	m.mu.Lock()
	for _, j := range m.jobs {
		m.stopBackoffLocked(j)
		if j.proc != nil {
			j.proc.Kill()
		}
	}
	m.mu.Unlock()
	m.stopMonitor()
	m.wg.Wait()
}
