package jobs

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/designio"
	"repro/internal/netlist"
	"repro/internal/telemetry"
)

// Config parameterizes a Manager.
type Config struct {
	// Dir is the state directory. Every job lives in Dir/<id>/ (job.json,
	// trace.jsonl, run.ckpt, out.place); a Manager opened over an existing
	// directory adopts the jobs it finds there.
	Dir string
	// Capacity is the worker-slot pool shared by all running jobs
	// (default 1). A job occupies its (clamped) Workers budget while running.
	Capacity int
	// Quantum is the fair-share lease: after this many stage boundaries a
	// running job yields to an equal-or-higher-priority waiter (default 4).
	Quantum int
	// PersistEvery throttles durability checkpoints to every Nth boundary
	// (default 1: persist at every boundary — the crash-migration window is
	// then a single stage or route iteration).
	PersistEvery int
	// Log receives operational one-liners; nil discards them.
	Log io.Writer
}

func (c *Config) fill() {
	if c.Capacity < 1 {
		c.Capacity = 1
	}
	if c.Quantum < 1 {
		c.Quantum = 4
	}
	if c.PersistEvery < 1 {
		c.PersistEvery = 1
	}
}

// Manager owns the job table, the scheduler and the worker pool. All methods
// are safe for concurrent use.
type Manager struct {
	cfg Config

	mu      sync.Mutex
	jobs    map[string]*job
	sched   *sched
	nextSeq int
	closed  bool
	killed  bool

	wg sync.WaitGroup // one count per in-flight placement segment
}

var (
	// ErrNoSuchJob is returned for an unknown job ID.
	ErrNoSuchJob = errors.New("jobs: no such job")
	// ErrBadTransition is returned when a pause/resume/cancel does not apply
	// to the job's current state.
	ErrBadTransition = errors.New("jobs: invalid state transition")
	// ErrClosed is returned by Submit after Close.
	ErrClosed = errors.New("jobs: manager is closed")
)

// Open creates a Manager over cfg.Dir, creating the directory if needed and
// recovering any jobs a previous process left behind:
//
//   - terminal jobs are adopted read-only (their traces replay over SSE);
//   - paused jobs stay paused, ready to resume from their checkpoint;
//   - queued/running jobs are re-queued — from their latest valid checkpoint
//     when one exists (the trace file is first truncated to the events that
//     preceded it, keeping the migrated run's trace byte-exact), from
//     scratch otherwise;
//   - jobs caught mid-cancellation are marked cancelled.
func Open(cfg Config) (*Manager, error) {
	cfg.fill()
	if cfg.Dir == "" {
		return nil, fmt.Errorf("jobs: Config.Dir is required")
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, err
	}
	m := &Manager{
		cfg:   cfg,
		jobs:  map[string]*job{},
		sched: newSched(cfg.Capacity, cfg.Quantum),
	}
	if err := m.recover(); err != nil {
		return nil, err
	}
	m.mu.Lock()
	m.scheduleLocked()
	m.mu.Unlock()
	return m, nil
}

func (m *Manager) logf(format string, args ...any) {
	if m.cfg.Log != nil {
		fmt.Fprintf(m.cfg.Log, "jobs: "+format+"\n", args...)
	}
}

// ---- Submission and control ----

// Submit validates spec, registers the job and schedules it. It returns the
// job ID immediately; the placement runs asynchronously.
func (m *Manager) Submit(spec Spec) (string, error) {
	if err := spec.Validate(); err != nil {
		return "", err
	}
	// Building the design up front rejects a broken inline payload at
	// submission instead of failing the job later; segments rebuild it
	// (deterministically) when they run.
	if _, err := spec.BuildDesign(); err != nil {
		return "", err
	}

	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return "", ErrClosed
	}
	m.nextSeq++
	j := &job{
		id:      fmt.Sprintf("j%04d", m.nextSeq),
		seq:     m.nextSeq,
		spec:    spec,
		created: time.Now().UTC(),
		state:   StateQueued,
	}
	j.dir = filepath.Join(m.cfg.Dir, j.id)
	if err := os.MkdirAll(j.dir, 0o755); err != nil {
		return "", err
	}
	f, err := os.OpenFile(m.tracePath(j), os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return "", err
	}
	j.traceFile = f
	j.hub = telemetry.NewHub(f)
	m.jobs[j.id] = j
	if err := m.persistLocked(j); err != nil {
		return "", err
	}
	m.sched.add(j.id, j.seq, j.spec.Priority, m.budget(&j.spec))
	m.logf("submitted %s design=%s mode=%s workers=%d priority=%d",
		j.id, j.spec.DesignName(), j.spec.Mode, m.budget(&j.spec), j.spec.Priority)
	m.scheduleLocked()
	return j.id, nil
}

// Pause asks a job to park: a running job checkpoints and stops at its next
// stage boundary, a queued job leaves the scheduler immediately. Pausing a
// paused or pausing job is a no-op.
func (m *Manager) Pause(id string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return ErrNoSuchJob
	}
	switch j.state {
	case StatePaused, StatePausing:
		return nil
	case StateQueued:
		m.sched.remove(id)
		j.state = StatePaused
		return m.persistLocked(j)
	case StateRunning:
		j.pauseWanted = true
		j.state = StatePausing
		m.sched.stop(id)
		m.scheduleLocked() // a waiter may be admissible once the slots free
		return m.persistLocked(j)
	default:
		return fmt.Errorf("%w: cannot pause a %s job", ErrBadTransition, j.state)
	}
}

// Resume re-queues a paused job; it continues from its checkpoint.
func (m *Manager) Resume(id string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return ErrNoSuchJob
	}
	if j.state != StatePaused {
		return fmt.Errorf("%w: cannot resume a %s job", ErrBadTransition, j.state)
	}
	j.state = StateQueued
	m.sched.add(j.id, j.seq, j.spec.Priority, m.budget(&j.spec))
	if err := m.persistLocked(j); err != nil {
		return err
	}
	m.scheduleLocked()
	return nil
}

// Cancel aborts a job. A running segment is cancelled via its context (the
// core's cancellation checkpoint is disabled, so the abort cannot disturb
// the job's last migration point); a queued or paused job goes terminal
// immediately. Cancelling an already-cancelled job is a no-op.
func (m *Manager) Cancel(id string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return ErrNoSuchJob
	}
	switch j.state {
	case StateCancelled, StateCancelling:
		return nil
	case StateQueued, StatePaused:
		m.sched.remove(id)
		j.state = StateCancelled
		m.finishLocked(j)
		m.scheduleLocked()
		return m.persistLocked(j)
	case StateRunning, StatePausing:
		j.state = StateCancelling
		if j.cancel != nil {
			j.cancel()
		}
		return m.persistLocked(j)
	default:
		return fmt.Errorf("%w: cannot cancel a %s job", ErrBadTransition, j.state)
	}
}

// Get returns a snapshot of one job.
func (m *Manager) Get(id string) (JobView, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return JobView{}, ErrNoSuchJob
	}
	return m.viewLocked(j), nil
}

// List returns snapshots of all jobs in submission order.
func (m *Manager) List() []JobView {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]JobView, 0, len(m.jobs))
	for _, j := range m.jobs {
		out = append(out, m.viewLocked(j))
	}
	sort.Slice(out, func(i, k int) bool { return out[i].ID < out[k].ID })
	return out
}

// Hub returns the job's telemetry hub for SSE/dashboard subscribers. The
// hub of a terminal job is closed: subscribers receive the full backlog and
// an immediate end-of-stream.
func (m *Manager) Hub(id string) (*telemetry.Hub, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return nil, ErrNoSuchJob
	}
	return j.hub, nil
}

// TracePath returns the job's canonical JSONL trace file.
func (m *Manager) TracePath(id string) (string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return "", ErrNoSuchJob
	}
	return m.tracePath(j), nil
}

// PlacementPath returns the final placement file of a done job.
func (m *Manager) PlacementPath(id string) (string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return "", ErrNoSuchJob
	}
	if j.state != StateDone {
		return "", fmt.Errorf("%w: placement available once done, job is %s", ErrBadTransition, j.state)
	}
	return filepath.Join(j.dir, "out.place"), nil
}

// ---- Scheduling and segments ----

// budget is the job's effective worker-slot budget.
func (m *Manager) budget(s *Spec) int {
	w := s.Workers
	if w < 1 {
		w = 1
	}
	if w > m.cfg.Capacity {
		w = m.cfg.Capacity
	}
	return w
}

// scheduleLocked starts segments for every job the scheduler admits.
// Callers hold m.mu.
func (m *Manager) scheduleLocked() {
	if m.closed || m.killed {
		return
	}
	for _, id := range m.sched.decide() {
		j := m.jobs[id]
		j.state = StateRunning
		j.segments++
		ctx, cancel := context.WithCancel(context.Background())
		j.cancel = cancel
		resume := j.resume
		if err := m.persistLocked(j); err != nil {
			m.logf("%s: persist: %v", j.id, err)
		}
		m.logf("%s: starting segment %d (resume=%v)", j.id, j.segments, resume)
		m.wg.Add(1)
		go m.runSegment(ctx, j, resume)
	}
}

// boundary is the job's core.Options.BoundaryHook: it consults the
// scheduler (preemption, pause, fair-share yield) and otherwise persists a
// durability checkpoint every PersistEvery boundaries.
func (m *Manager) boundary(j *job, point string) core.BoundaryAction {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.killed {
		// Crash simulation: freeze the on-disk state exactly as a dead
		// process would have left it.
		return core.BoundaryContinue
	}
	if m.sched.onBoundary(j.id) {
		j.lastCheckpoint = point
		return core.BoundaryStop
	}
	j.boundarySeen++
	if j.boundarySeen%m.cfg.PersistEvery == 0 {
		j.lastCheckpoint = point
		return core.BoundaryCheckpoint
	}
	return core.BoundaryContinue
}

// runSegment executes one placement segment: a fresh run or a resume from
// the job's checkpoint, with a fresh Observer writing through the job's hub
// so every segment's events concatenate into one canonical trace.
func (m *Manager) runSegment(ctx context.Context, j *job, resume bool) {
	defer m.wg.Done()
	d, err := j.spec.BuildDesign()
	if err != nil {
		m.onSegmentEnd(j, nil, nil, nil, err)
		return
	}
	opt := j.spec.coreOptions()
	opt.Workers = m.budget(&j.spec)
	opt.Observer = telemetry.NewObserver(j.hub)
	opt.CheckpointPath = filepath.Join(j.dir, "run.ckpt")
	opt.DisableCancelCheckpoint = true
	opt.BoundaryHook = func(point string) core.BoundaryAction { return m.boundary(j, point) }

	var res *core.Result
	if resume {
		res, err = core.ResumeFromFile(ctx, d, opt.CheckpointPath, opt)
	} else {
		res, err = core.PlaceContext(ctx, d, opt)
	}
	m.onSegmentEnd(j, d, opt.Observer, res, err)
}

// onSegmentEnd is the job state machine: it classifies how the segment
// ended, persists the transition and lets the scheduler fill the freed
// slots.
func (m *Manager) onSegmentEnd(j *job, d *netlist.Design, obs *telemetry.Observer, res *core.Result, err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.killed {
		return // crash simulation: the dead process updates nothing
	}
	j.cancel = nil
	switch {
	case errors.Is(err, core.ErrCheckpointed):
		// Scheduled stop at a boundary: pause parks the job, preemption and
		// graceful shutdown requeue it. Either way the next segment resumes
		// from the checkpoint and the trace continues byte-exactly.
		j.resume = true
		if j.pauseWanted {
			j.pauseWanted = false
			j.state = StatePaused
			m.sched.remove(j.id)
			m.logf("%s: paused at %s", j.id, j.lastCheckpoint)
		} else {
			j.state = StateQueued
			m.sched.requeue(j.id)
			m.logf("%s: preempted at %s", j.id, j.lastCheckpoint)
		}
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		j.state = StateCancelled
		m.sched.remove(j.id)
		m.finishLocked(j)
		m.logf("%s: cancelled", j.id)
	case err != nil:
		j.state = StateFailed
		j.errMsg = err.Error()
		m.sched.remove(j.id)
		m.finishLocked(j)
		m.logf("%s: failed: %v", j.id, err)
	default:
		// Mirror the CLI's end-of-run telemetry exactly: the volatile
		// dropped-events gauge, then the metrics flush. Volatile metrics
		// sort after deterministic ones and are stripped from canonical
		// traces, so the server's extra subscribers never shift the trace.
		obs.VolatileGauge("telemetry.dropped_events").Set(float64(j.hub.Dropped()))
		if ferr := obs.Flush(); ferr != nil {
			m.logf("%s: trace flush: %v", j.id, ferr)
		}
		if werr := m.writePlacementLocked(j, d); werr != nil {
			j.state = StateFailed
			j.errMsg = werr.Error()
		} else {
			j.summary = summarize(res)
			j.state = StateDone
			m.logf("%s: done HPWL=%.0f DRVs=%d", j.id, res.HPWLFinal, res.Metrics.DRVs)
		}
		m.sched.remove(j.id)
		m.finishLocked(j)
	}
	if perr := m.persistLocked(j); perr != nil {
		m.logf("%s: persist: %v", j.id, perr)
	}
	m.scheduleLocked()
}

func (m *Manager) writePlacementLocked(j *job, d *netlist.Design) error {
	var buf bytes.Buffer
	if err := designio.Write(&buf, d); err != nil {
		return err
	}
	return writeFileAtomic(filepath.Join(j.dir, "out.place"), buf.Bytes())
}

// finishLocked closes the job's live stream and trace file. Idempotent.
func (m *Manager) finishLocked(j *job) {
	if j.hub != nil {
		j.hub.Close()
	}
	if j.traceFile != nil {
		if err := j.traceFile.Close(); err != nil {
			m.logf("%s: trace close: %v", j.id, err)
		}
		j.traceFile = nil
	}
}

// ---- Persistence and recovery ----

func (m *Manager) tracePath(j *job) string {
	return filepath.Join(j.dir, "trace.jsonl")
}

func (m *Manager) persistLocked(j *job) error {
	rec := jobRecord{
		ID:       j.id,
		Seq:      j.seq,
		Spec:     j.spec,
		State:    j.state,
		Created:  j.created,
		Segments: j.segments,
		Error:    j.errMsg,
		Summary:  j.summary,
	}
	data, err := json.MarshalIndent(&rec, "", "  ")
	if err != nil {
		return err
	}
	return writeFileAtomic(filepath.Join(j.dir, "job.json"), append(data, '\n'))
}

func (m *Manager) viewLocked(j *job) JobView {
	mode := j.spec.Mode
	if mode == "" {
		mode = "ours"
	}
	return JobView{
		ID:         j.id,
		Design:     j.spec.DesignName(),
		Mode:       mode,
		State:      j.state,
		Priority:   j.spec.Priority,
		Workers:    m.budget(&j.spec),
		Created:    j.created,
		Segments:   j.segments,
		Error:      j.errMsg,
		Summary:    j.summary,
		Checkpoint: j.lastCheckpoint,
	}
}

// recover adopts the jobs a previous process left in the state directory.
func (m *Manager) recover() error {
	entries, err := os.ReadDir(m.cfg.Dir)
	if err != nil {
		return err
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		dir := filepath.Join(m.cfg.Dir, e.Name())
		data, err := os.ReadFile(filepath.Join(dir, "job.json"))
		if err != nil {
			if os.IsNotExist(err) {
				continue // not a job directory
			}
			return err
		}
		var rec jobRecord
		if err := json.Unmarshal(data, &rec); err != nil {
			m.logf("recover %s: bad job.json: %v (skipped)", e.Name(), err)
			continue
		}
		j := &job{
			id:       rec.ID,
			seq:      rec.Seq,
			spec:     rec.Spec,
			dir:      dir,
			created:  rec.Created,
			state:    rec.State,
			errMsg:   rec.Error,
			summary:  rec.Summary,
			segments: rec.Segments,
		}
		if err := m.recoverJob(j); err != nil {
			return fmt.Errorf("recover %s: %w", j.id, err)
		}
		m.jobs[j.id] = j
		if j.seq > m.nextSeq {
			m.nextSeq = j.seq
		}
	}
	return nil
}

// recoverJob rebuilds one adopted job's runtime state (hub, trace file,
// scheduler entry) from its on-disk remains.
func (m *Manager) recoverJob(j *job) error {
	trace := m.tracePath(j)
	if j.state.Terminal() {
		// Read-only adoption: seed a closed hub so SSE replays the full
		// stream and immediately ends it.
		lines, err := readTraceLines(trace)
		if err != nil {
			return err
		}
		j.hub = telemetry.NewHub(nil)
		j.hub.Seed(lines)
		j.hub.Close()
		return nil
	}
	if j.state == StateCancelling {
		// The cancel was requested before the crash; honor it. The trace is
		// whatever the dead process got out — cancelled jobs carry no
		// byte-identity promise.
		j.state = StateCancelled
		lines, err := readTraceLines(trace)
		if err != nil {
			return err
		}
		j.hub = telemetry.NewHub(nil)
		j.hub.Seed(lines)
		j.hub.Close()
		return m.persistLocked(j)
	}

	// Find the job's latest valid migration point. Only boundary
	// checkpoints exist (the manager disables cancellation checkpoints), so
	// any valid file here is trace-exact.
	ckpt := filepath.Join(j.dir, "run.ckpt")
	info, ierr := core.InspectCheckpoint(ckpt)
	if ierr != nil && errors.Is(ierr, core.ErrCheckpointCorrupt) {
		prev := ckpt + ".prev"
		if pinfo, perr := core.InspectCheckpoint(prev); perr == nil {
			// Promote the last-good rotation so the resume path reads a
			// valid primary.
			if rerr := os.Rename(prev, ckpt); rerr != nil {
				return rerr
			}
			info, ierr = pinfo, nil
			m.logf("%s: primary checkpoint corrupt; promoted .prev", j.id)
		}
	}

	fresh := ierr != nil
	var seedLines [][]byte
	if !fresh {
		lines, terr := truncateTrace(trace, info.TraceSeq)
		if terr != nil {
			if !errors.Is(terr, errTraceShort) {
				return terr
			}
			// Checkpoint claims events the trace never got: the pair is
			// inconsistent, so a byte-exact migration is impossible.
			// Restart the job from scratch rather than serve a wrong trace.
			m.logf("%s: %v; restarting from scratch", j.id, terr)
			fresh = true
		} else {
			seedLines = lines
		}
	}
	if fresh {
		os.Remove(ckpt)
		os.Remove(ckpt + ".prev")
		if err := os.WriteFile(trace, nil, 0o644); err != nil {
			return err
		}
		j.resume = false
	} else {
		j.resume = true
		j.lastCheckpoint = fmt.Sprintf("%s iter=%d", info.Stage, info.Iter)
	}

	f, err := os.OpenFile(trace, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	j.traceFile = f
	j.hub = telemetry.NewHub(f)
	j.hub.Seed(seedLines)

	// Pausing collapses to paused (the stop was requested; the crash
	// delivered it); queued/running re-queue for migration.
	switch j.state {
	case StatePausing, StatePaused:
		j.state = StatePaused
	default:
		j.state = StateQueued
		m.sched.add(j.id, j.seq, j.spec.Priority, m.budget(&j.spec))
	}
	m.logf("%s: recovered as %s (resume=%v)", j.id, j.state, j.resume)
	return m.persistLocked(j)
}

// ---- Shutdown ----

// Close shuts the manager down gracefully: running jobs checkpoint and stop
// at their next stage boundary and are persisted as queued, so a Manager
// reopened over the same directory resumes them byte-exactly. Blocks until
// all segments have stopped.
func (m *Manager) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		m.wg.Wait()
		return
	}
	m.closed = true
	for id, j := range m.jobs {
		if j.state == StateRunning {
			m.sched.stop(id)
		}
	}
	m.mu.Unlock()
	m.wg.Wait()
	m.mu.Lock()
	for _, j := range m.jobs {
		m.finishLocked(j)
	}
	m.mu.Unlock()
}

// Kill simulates a process crash for tests: it abandons all segments
// without persisting any further state, leaving the directory exactly as a
// SIGKILLed worker would — the last boundary checkpoint on disk and a trace
// file that may run past it. Blocks until the segments have exited (so no
// file write races the Manager that adopts the directory next).
func (m *Manager) Kill() {
	m.mu.Lock()
	m.killed = true
	var cancels []func()
	for _, j := range m.jobs {
		if j.cancel != nil {
			cancels = append(cancels, j.cancel)
		}
	}
	m.mu.Unlock()
	for _, c := range cancels {
		c()
	}
	m.wg.Wait()
}
