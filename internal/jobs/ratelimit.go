package jobs

import (
	"sync"
	"time"
)

// rateLimiter is a per-key token bucket (key = submitter identity, in
// practice the client IP). Buckets refill continuously at rate tokens/sec up
// to burst; a request spends one token. No background goroutine: refill is
// computed lazily from the elapsed time, and the map is pruned of full
// buckets when it grows large, so idle clients cost nothing forever.
type rateLimiter struct {
	mu      sync.Mutex
	rate    float64
	burst   float64
	buckets map[string]*bucket
}

type bucket struct {
	tokens float64
	last   time.Time
}

func newRateLimiter(rate float64, burst int) *rateLimiter {
	if burst < 1 {
		burst = 1
	}
	return &rateLimiter{rate: rate, burst: float64(burst), buckets: map[string]*bucket{}}
}

func (l *rateLimiter) allow(key string, now time.Time) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	b := l.buckets[key]
	if b == nil {
		if len(l.buckets) >= 4096 {
			l.pruneLocked()
		}
		b = &bucket{tokens: l.burst, last: now}
		l.buckets[key] = b
	}
	b.tokens += now.Sub(b.last).Seconds() * l.rate
	if b.tokens > l.burst {
		b.tokens = l.burst
	}
	b.last = now
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// pruneLocked drops buckets that have refilled completely — clients that
// have been quiet long enough to be indistinguishable from new ones.
func (l *rateLimiter) pruneLocked() {
	now := time.Now()
	for k, b := range l.buckets {
		if b.tokens+now.Sub(b.last).Seconds()*l.rate >= l.burst {
			delete(l.buckets, k)
		}
	}
}
