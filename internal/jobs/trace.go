package jobs

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
)

// errTraceShort reports that a trace file holds fewer complete lines than a
// checkpoint's TraceSeq claims were emitted before it — the checkpoint and
// the trace disagree, so a migration cannot be byte-exact and the job must
// restart from scratch.
var errTraceShort = errors.New("jobs: trace shorter than checkpoint's event count")

// truncateTrace cuts the JSONL trace at path down to its first n complete
// lines and returns them (each with its trailing newline). This is the
// crash-migration fix-up: a killed worker may have appended events past the
// checkpoint it will be resumed from (and a torn final line), all of which
// the resumed run re-emits — keeping them would duplicate the tail. n comes
// from core.CheckpointInfo.TraceSeq: the observer assigns sequence numbers
// from 0, so exactly the first n lines precede the checkpoint.
//
// The rewrite is atomic (tmp + rename); when the file already has exactly n
// lines it is left untouched. Fewer than n complete lines fails with
// errTraceShort.
func truncateTrace(path string, n int64) ([][]byte, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) && n == 0 {
			return nil, nil
		}
		return nil, err
	}
	keep := 0 // byte length of the first n complete lines
	var lines [][]byte
	for int64(len(lines)) < n {
		nl := bytes.IndexByte(data[keep:], '\n')
		if nl < 0 {
			return nil, fmt.Errorf("%w: %d of %d", errTraceShort, len(lines), n)
		}
		line := make([]byte, nl+1)
		copy(line, data[keep:keep+nl+1])
		lines = append(lines, line)
		keep += nl + 1
	}
	if keep == len(data) {
		return lines, nil
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data[:keep], 0o644); err != nil {
		return nil, err
	}
	if err := os.Rename(tmp, path); err != nil {
		return nil, err
	}
	return lines, nil
}

// readTraceLines returns the complete lines of a trace file (a torn final
// line, possible after a crash on a terminal-state job, is dropped). Used to
// seed the hub of a recovered job so SSE and dashboard replays still see the
// full stream.
func readTraceLines(path string) ([][]byte, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var lines [][]byte
	for len(data) > 0 {
		nl := bytes.IndexByte(data, '\n')
		if nl < 0 {
			break
		}
		line := make([]byte, nl+1)
		copy(line, data[:nl+1])
		lines = append(lines, line)
		data = data[nl+1:]
	}
	return lines, nil
}

// writeFileAtomic writes data to path via a same-directory temp file and
// rename, so readers (and a recovering manager) never observe a partial
// file.
func writeFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return err
	}
	name := tmp.Name()
	_, werr := tmp.Write(data)
	if cerr := tmp.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(name)
		return werr
	}
	return os.Rename(name, path)
}
