package jobs

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
)

// errTraceShort reports that a trace file holds fewer complete lines than a
// checkpoint's TraceSeq claims were emitted before it — the checkpoint and
// the trace disagree, so a migration cannot be byte-exact and the job must
// restart from scratch.
var errTraceShort = errors.New("jobs: trace shorter than checkpoint's event count")

// truncateTrace cuts the JSONL trace at path down to its first n complete
// lines and returns them (each with its trailing newline). This is the
// crash-migration fix-up: a killed worker may have appended events past the
// checkpoint it will be resumed from (and a torn final line), all of which
// the resumed run re-emits — keeping them would duplicate the tail. n comes
// from core.CheckpointInfo.TraceSeq: the observer assigns sequence numbers
// from 0, so exactly the first n lines precede the checkpoint.
//
// The rewrite is atomic (tmp + rename); when the file already has exactly n
// lines it is left untouched and changed is false — the supervisor uses that
// to keep the live hub (and its SSE subscribers) across clean boundary
// stops, rebuilding the stream only when a crash actually rewrote the file.
// Fewer than n complete lines fails with errTraceShort.
func truncateTrace(path string, n int64) (lines [][]byte, changed bool, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) && n == 0 {
			return nil, false, nil
		}
		return nil, false, err
	}
	keep := 0 // byte length of the first n complete lines
	for int64(len(lines)) < n {
		nl := bytes.IndexByte(data[keep:], '\n')
		if nl < 0 {
			return nil, false, fmt.Errorf("%w: %d of %d", errTraceShort, len(lines), n)
		}
		line := make([]byte, nl+1)
		copy(line, data[keep:keep+nl+1])
		lines = append(lines, line)
		keep += nl + 1
	}
	if keep == len(data) {
		return lines, false, nil
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data[:keep], 0o644); err != nil {
		return nil, false, err
	}
	if err := os.Rename(tmp, path); err != nil {
		return nil, false, err
	}
	return lines, true, nil
}

// readTraceLines returns the complete lines of a trace file (a torn final
// line, possible after a crash on a terminal-state job, is dropped). Used to
// seed the hub of a recovered job so SSE and dashboard replays still see the
// full stream.
func readTraceLines(path string) ([][]byte, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var lines [][]byte
	for len(data) > 0 {
		nl := bytes.IndexByte(data, '\n')
		if nl < 0 {
			break
		}
		line := make([]byte, nl+1)
		copy(line, data[:nl+1])
		lines = append(lines, line)
		data = data[nl+1:]
	}
	return lines, nil
}

// ErrStateDir marks a failed durability write in the manager's state
// directory — disk full, a short write, a failed fsync or rename. The HTTP
// layer maps it to 503 (the condition is operational and usually transient),
// and the admission-control disk guard exists to shed load before writes
// start failing this way.
var ErrStateDir = errors.New("jobs: state directory write failed")

// injectWriteErr, when non-nil, is consulted by writeFileAtomic before the
// data write and simulates a disk fault for tests (returning ENOSPC-shaped
// errors without actually filling a disk). Always nil in production.
var injectWriteErr func(path string) error

// writeFileAtomic writes data to path via a same-directory temp file,
// fsyncs it, and renames it into place, so readers (and a recovering
// manager) never observe a partial file and a machine crash immediately
// after the rename cannot lose the contents. Every failure — including
// disk-full short writes and fsync errors — surfaces as a typed
// ErrStateDir so callers and the HTTP layer can distinguish "the state
// directory is sick" from job-level failures.
func writeFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return fmt.Errorf("%w: %v", ErrStateDir, err)
	}
	name := tmp.Name()
	werr := injectedWriteErr(path)
	if werr == nil {
		_, werr = tmp.Write(data)
	}
	// fsync before rename: without it the rename can land while the data
	// blocks are still only in the page cache, and a power cut would leave
	// a complete-looking file full of zeros.
	if werr == nil {
		werr = tmp.Sync()
	}
	if cerr := tmp.Close(); werr == nil {
		werr = cerr
	}
	if werr == nil {
		werr = os.Rename(name, path)
	}
	if werr != nil {
		os.Remove(name)
		return fmt.Errorf("%w: %s: %v", ErrStateDir, filepath.Base(path), werr)
	}
	return nil
}

func injectedWriteErr(path string) error {
	if injectWriteErr == nil {
		return nil
	}
	return injectWriteErr(path)
}
