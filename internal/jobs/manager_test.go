package jobs

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/designio"
	"repro/internal/telemetry"
	"repro/internal/testutil"
)

// fastSpec is the tiny_hot spec all byte-identity tests run, mirroring the
// core suite's fastOpts tuning.
func fastSpec() Spec {
	return Spec{
		Design:            "tiny_hot",
		GridHint:          32,
		MaxWLIters:        120,
		MaxRouteIters:     6,
		StepsPerRouteIter: 8,
	}
}

var refOnce sync.Once
var refPlacement, refCanon []byte

// reference runs fastSpec straight through core.Place — the plain-CLI
// equivalent — and returns the placement bytes and canonical trace every
// server-run variant must reproduce exactly.
func reference(t *testing.T) (placement, canon []byte) {
	t.Helper()
	refOnce.Do(func() {
		spec := fastSpec()
		d, err := spec.BuildDesign()
		if err != nil {
			t.Fatalf("reference design: %v", err)
		}
		opt := spec.coreOptions()
		opt.Workers = 1
		var trace bytes.Buffer
		obs := telemetry.NewObserver(&trace)
		opt.Observer = obs
		if _, err := core.PlaceContext(context.Background(), d, opt); err != nil {
			t.Fatalf("reference run: %v", err)
		}
		if err := obs.Flush(); err != nil {
			t.Fatalf("reference flush: %v", err)
		}
		refCanon, err = telemetry.StripTimings(trace.Bytes())
		if err != nil {
			t.Fatalf("reference canon: %v", err)
		}
		var place bytes.Buffer
		if err := designio.Write(&place, d); err != nil {
			t.Fatalf("reference placement: %v", err)
		}
		refPlacement = place.Bytes()
	})
	if refPlacement == nil {
		t.Fatal("reference run failed in an earlier test")
	}
	return refPlacement, refCanon
}

// waitState polls until the job reaches want (fails after 60 s).
func waitState(t *testing.T, m *Manager, id string, want State) JobView {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		v, err := m.Get(id)
		if err != nil {
			t.Fatalf("get %s: %v", id, err)
		}
		if v.State == want {
			return v
		}
		if v.State.Terminal() && want != v.State {
			t.Fatalf("job %s is terminal %s (error %q), wanted %s", id, v.State, v.Error, want)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s, wanted %s", id, v.State, want)
		}
		time.Sleep(time.Millisecond)
	}
}

// assertJobMatchesReference compares a done job's placement and canonical
// trace byte-for-byte against the plain run.
func assertJobMatchesReference(t *testing.T, m *Manager, id string) {
	t.Helper()
	wantPlace, wantCanon := reference(t)
	placePath, err := m.PlacementPath(id)
	if err != nil {
		t.Fatalf("placement path: %v", err)
	}
	gotPlace, err := os.ReadFile(placePath)
	if err != nil {
		t.Fatalf("read placement: %v", err)
	}
	if !bytes.Equal(gotPlace, wantPlace) {
		t.Errorf("job %s placement differs from the plain run (%d vs %d bytes)",
			id, len(gotPlace), len(wantPlace))
	}
	tracePath, err := m.TracePath(id)
	if err != nil {
		t.Fatalf("trace path: %v", err)
	}
	raw, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatalf("read trace: %v", err)
	}
	gotCanon, err := telemetry.StripTimings(raw)
	if err != nil {
		t.Fatalf("canonicalize job trace: %v", err)
	}
	if !bytes.Equal(gotCanon, wantCanon) {
		t.Errorf("job %s canonical trace differs from the plain run (%d vs %d bytes)",
			id, len(gotCanon), len(wantCanon))
	}
}

// TestPreemptionAndPauseAreByteExact is the tentpole invariant, driven
// deterministically: capacity 1, quantum 1 and two equal-priority jobs make
// the scheduler ping-pong them at every stage boundary, so both jobs run as
// many checkpoint/resume segments. Job 1 is additionally paused (while
// queued between segments) and resumed. Both placements and canonical
// traces must equal the plain uninterrupted run's bytes.
func TestPreemptionAndPauseAreByteExact(t *testing.T) {
	base := testutil.GoroutineBaseline()
	m, err := Open(workerConfig(t, Config{Dir: t.TempDir(), Capacity: 1, Quantum: 1}))
	if err != nil {
		t.Fatal(err)
	}
	id1, err := m.Submit(fastSpec())
	if err != nil {
		t.Fatal(err)
	}
	id2, err := m.Submit(fastSpec())
	if err != nil {
		t.Fatal(err)
	}
	// Job 1 yields to job 2 at its first boundary (quantum 1, one slot);
	// catch it in the queue and park it.
	waitState(t, m, id1, StateQueued)
	if err := m.Pause(id1); err != nil {
		t.Fatalf("pause: %v", err)
	}
	v := waitState(t, m, id1, StatePaused)
	if v.Segments < 1 {
		t.Fatalf("job 1 paused before running any segment")
	}
	// With job 1 parked, job 2 owns the pool and finishes.
	waitState(t, m, id2, StateDone)
	if err := m.Resume(id1); err != nil {
		t.Fatalf("resume: %v", err)
	}
	v = waitState(t, m, id1, StateDone)
	if v.Segments < 2 {
		t.Fatalf("job 1 ran %d segment(s); the preemption/pause never split it", v.Segments)
	}
	assertJobMatchesReference(t, m, id1)
	assertJobMatchesReference(t, m, id2)

	v2, _ := m.Get(id2)
	if v2.Summary == nil || v2.Summary.RouteIters == 0 {
		t.Errorf("done job carries no summary: %+v", v2.Summary)
	}
	m.Close()
	testutil.AssertNoGoroutineLeak(t, base)
}

// TestCrashMigrationIsByteExact kills the worker process mid-run (simulated
// in-process by Manager.Kill, which abandons segments without persisting
// anything further) and adopts the state directory with a fresh Manager.
// The migrated job must complete with placement and canonical trace
// byte-identical to the plain run — including the trace fix-up that drops
// events the dead process emitted past its last checkpoint.
func TestCrashMigrationIsByteExact(t *testing.T) {
	dir := t.TempDir()
	m1, err := Open(workerConfig(t, Config{Dir: dir, Capacity: 1}))
	if err != nil {
		t.Fatal(err)
	}
	id, err := m1.Submit(fastSpec())
	if err != nil {
		t.Fatal(err)
	}
	// Kill once the first migration checkpoint exists.
	ckpt := filepath.Join(dir, id, "run.ckpt")
	deadline := time.Now().Add(60 * time.Second)
	for {
		if _, serr := os.Stat(ckpt); serr == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no checkpoint appeared")
		}
		time.Sleep(time.Millisecond)
	}
	m1.Kill()

	m2, err := Open(workerConfig(t, Config{Dir: dir, Capacity: 1}))
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer m2.Close()
	v := waitState(t, m2, id, StateDone)
	if v.Segments < 2 {
		t.Fatalf("job completed in %d segment(s); the crash never interrupted it", v.Segments)
	}
	assertJobMatchesReference(t, m2, id)
}

// TestRecoveryAdoptsTerminalAndPausedJobs restarts a manager over a
// directory holding one done and one paused job: the done job must stay
// done with its artifacts intact, the paused job must resume on request and
// still match the plain run.
func TestRecoveryAdoptsTerminalAndPausedJobs(t *testing.T) {
	dir := t.TempDir()
	m1, err := Open(workerConfig(t, Config{Dir: dir, Capacity: 1, Quantum: 1}))
	if err != nil {
		t.Fatal(err)
	}
	id1, _ := m1.Submit(fastSpec())
	id2, _ := m1.Submit(fastSpec())
	waitState(t, m1, id1, StateQueued) // preempted by job 2's admission turn
	if err := m1.Pause(id1); err != nil {
		t.Fatal(err)
	}
	waitState(t, m1, id1, StatePaused)
	waitState(t, m1, id2, StateDone)
	m1.Close()

	m2, err := Open(workerConfig(t, Config{Dir: dir, Capacity: 1}))
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer m2.Close()
	if v, _ := m2.Get(id2); v.State != StateDone {
		t.Fatalf("done job recovered as %s", v.State)
	}
	assertJobMatchesReference(t, m2, id2)
	if v, _ := m2.Get(id1); v.State != StatePaused {
		t.Fatalf("paused job recovered as %s", v.State)
	}
	if err := m2.Resume(id1); err != nil {
		t.Fatal(err)
	}
	waitState(t, m2, id1, StateDone)
	assertJobMatchesReference(t, m2, id1)

	// A terminal job's hub replays the whole stream and ends immediately.
	hub, err := m2.Hub(id2)
	if err != nil {
		t.Fatal(err)
	}
	backlog, sub := hub.Subscribe(8)
	defer sub.Close()
	if len(backlog) == 0 {
		t.Error("recovered done job has an empty backlog")
	}
	if _, open := <-sub.C(); open {
		t.Error("recovered done job's hub is not closed")
	}
}

// TestCancelReleasesWorkers cancels a running job and checks that its
// worker slots return to the pool (the queued job runs) and that no
// goroutines outlive the manager.
func TestCancelReleasesWorkers(t *testing.T) {
	base := testutil.GoroutineBaseline()
	m, err := Open(workerConfig(t, Config{Dir: t.TempDir(), Capacity: 1, Quantum: 1000}))
	if err != nil {
		t.Fatal(err)
	}
	id1, err := m.Submit(fastSpec())
	if err != nil {
		t.Fatal(err)
	}
	id2, err := m.Submit(fastSpec())
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, id1, StateRunning)
	if err := m.Cancel(id1); err != nil {
		t.Fatalf("cancel: %v", err)
	}
	v := waitState(t, m, id1, StateCancelled)
	if err := m.Cancel(id1); err != nil {
		t.Fatalf("cancel must be idempotent on a cancelled job: %v", err)
	}
	_ = v
	// The freed slot lets the queued job run to completion.
	waitState(t, m, id2, StateDone)
	assertJobMatchesReference(t, m, id2)
	if _, err := m.PlacementPath(id1); err == nil {
		t.Error("cancelled job serves a placement")
	}
	m.Close()
	testutil.AssertNoGoroutineLeak(t, base)
}

// TestSubmitValidation exercises the rejection paths.
func TestSubmitValidation(t *testing.T) {
	m, err := Open(workerConfig(t, Config{Dir: t.TempDir()}))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	for name, spec := range map[string]Spec{
		"no design":     {},
		"both sources":  {Design: "tiny_hot", Payload: "x"},
		"unknown":       {Design: "no_such_design"},
		"bad mode":      {Design: "tiny_hot", Mode: "quantum"},
		"bad payload":   {Payload: "not a design"},
		"neg workers":   {Design: "tiny_hot", Workers: -1},
		"huge priority": {Design: "tiny_hot", Priority: 10_000},
	} {
		if _, err := m.Submit(spec); err == nil {
			t.Errorf("%s: submit accepted %+v", name, spec)
		}
	}
	if err := m.Pause("j9999"); err != ErrNoSuchJob {
		t.Errorf("pause unknown = %v, want ErrNoSuchJob", err)
	}
}

func TestTruncateTrace(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.jsonl")
	content := []byte("{\"seq\":0}\n{\"seq\":1}\n{\"seq\":2}\n{\"seq\":3")
	if err := os.WriteFile(path, content, 0o644); err != nil {
		t.Fatal(err)
	}
	lines, changed, err := truncateTrace(path, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !changed {
		t.Fatal("a real truncation must report changed")
	}
	if len(lines) != 2 || string(lines[1]) != "{\"seq\":1}\n" {
		t.Fatalf("kept lines = %q", lines)
	}
	got, _ := os.ReadFile(path)
	if string(got) != "{\"seq\":0}\n{\"seq\":1}\n" {
		t.Fatalf("file after truncation = %q", got)
	}
	// Re-truncating to the same length is a no-op — the supervisor keeps
	// the live hub (and its SSE subscribers) in that case.
	if _, changed, err = truncateTrace(path, 2); err != nil || changed {
		t.Fatalf("no-op truncation: changed=%v err=%v", changed, err)
	}
	// Asking for more lines than exist is the inconsistent-state signal.
	if _, _, err := truncateTrace(path, 5); err == nil {
		t.Fatal("truncateTrace accepted a short trace")
	}
	// n equal to the complete-line count with a torn tail still truncates.
	if err := os.WriteFile(path, content, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := truncateTrace(path, 3); err != nil {
		t.Fatal(err)
	}
	got, _ = os.ReadFile(path)
	if string(got) != "{\"seq\":0}\n{\"seq\":1}\n{\"seq\":2}\n" {
		t.Fatalf("torn tail survived: %q", got)
	}
}
