package jobs

import (
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/telemetry"
)

// State is a job's lifecycle state. Transitions:
//
//	queued ──▶ running ──▶ done | failed
//	  ▲           │
//	  │           ├─▶ pausing ──▶ paused ──▶ queued   (Resume)
//	  │           │                 │
//	  └───────────┘ (preemption)    │
//	queued/running/pausing/paused ──┴─▶ cancelling ──▶ cancelled
//
// Preemption (fair share or priority) moves a running job back to queued via
// a scheduled checkpoint; the states involved are invisible to the client —
// only an explicit Pause parks a job in paused.
type State string

const (
	StateQueued     State = "queued"
	StateRunning    State = "running"
	StatePausing    State = "pausing" // pause requested; stopping at the next boundary
	StatePaused     State = "paused"
	StateCancelling State = "cancelling"
	StateCancelled  State = "cancelled"
	StateDone       State = "done"
	StateFailed     State = "failed"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateCancelled || s == StateDone || s == StateFailed
}

// Summary is the scorecard of a completed job, mirroring the placer CLI's
// result line.
type Summary struct {
	HPWLFinal    float64 `json:"hpwl_final"`
	DRWL         float64 `json:"drwl"`
	DRVias       int     `json:"dr_vias"`
	DRVs         int     `json:"drvs"`
	WLIters      int     `json:"wl_iters"`
	RouteIters   int     `json:"route_iters"`
	PlaceSeconds float64 `json:"place_seconds"`
	RouteSeconds float64 `json:"route_seconds"`
}

func summarize(res *core.Result) *Summary {
	return &Summary{
		HPWLFinal:    res.HPWLFinal,
		DRWL:         res.Metrics.DRWL,
		DRVias:       res.Metrics.DRVias,
		DRVs:         res.Metrics.DRVs,
		WLIters:      res.WLIters,
		RouteIters:   res.RouteIters,
		PlaceSeconds: res.PlaceTime.Seconds(),
		RouteSeconds: res.RouteTime.Seconds(),
	}
}

// JobView is the client-facing snapshot of a job, returned by the list and
// get endpoints.
type JobView struct {
	ID       string    `json:"id"`
	Design   string    `json:"design"`
	Mode     string    `json:"mode"`
	State    State     `json:"state"`
	Priority int       `json:"priority,omitempty"`
	Workers  int       `json:"workers,omitempty"`
	Created  time.Time `json:"created"`
	// Segments counts the pipeline segments run so far (1 for a job that was
	// never paused, preempted or migrated).
	Segments int      `json:"segments"`
	Error    string   `json:"error,omitempty"`
	Summary  *Summary `json:"summary,omitempty"`
	// Checkpoint is the last persisted pipeline cursor ("stage/iter/step"),
	// empty before the first boundary.
	Checkpoint string `json:"checkpoint,omitempty"`
}

// jobRecord is the on-disk form (job.json) that lets a fresh process adopt
// the job after a crash. The spec is stored verbatim so segments in the new
// process rebuild the identical design and options.
type jobRecord struct {
	ID       string    `json:"id"`
	Seq      int       `json:"seq"`
	Spec     Spec      `json:"spec"`
	State    State     `json:"state"`
	Created  time.Time `json:"created"`
	Segments int       `json:"segments"`
	Error    string    `json:"error,omitempty"`
	Summary  *Summary  `json:"summary,omitempty"`
}

// job is the manager's internal bookkeeping for one placement.
type job struct {
	id      string
	seq     int
	spec    Spec
	dir     string // per-job state directory
	created time.Time

	state    State
	errMsg   string
	summary  *Summary
	segments int

	// hub carries the job's telemetry for the whole job lifetime in this
	// process: canonical sink = the trace file, subscribers = SSE clients
	// and dashboards. Closed exactly once, when the job goes terminal (or at
	// manager close), which ends live streams with eof.
	hub       *telemetry.Hub
	traceFile *os.File // canonical sink behind hub; nil once closed

	// pauseWanted distinguishes an explicit Pause (park in paused) from
	// scheduler preemption (requeue) when a segment stops at a boundary.
	pauseWanted bool
	// resume selects ResumeFromFile over PlaceContext for the next segment.
	resume bool
	// cancel aborts the currently running segment's context; nil when no
	// segment is active.
	cancel func()
	// boundarySeen counts boundary-hook calls that did not stop the job,
	// for the PersistEvery throttle.
	boundarySeen int
	// lastCheckpoint is the most recent persisted cursor, for JobView.
	lastCheckpoint string
}
