package jobs

import (
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/telemetry"
)

// State is a job's lifecycle state. Transitions:
//
//	queued ──▶ running ──▶ done | failed
//	  ▲           │
//	  │           ├─▶ pausing ──▶ paused ──▶ queued   (Resume)
//	  │           │                 │
//	  └───────────┘ (preemption)    │
//	queued/running/pausing/paused ──┴─▶ cancelling ──▶ cancelled
//
// Preemption (fair share or priority) moves a running job back to queued via
// a scheduled checkpoint; the states involved are invisible to the client —
// only an explicit Pause parks a job in paused.
//
// A worker-process crash or stall also moves running back to queued (after a
// backoff), invisibly to the client except for the restarts counter; once
// the retry budget is exhausted the job lands in failed with Poisoned set.
type State string

const (
	StateQueued     State = "queued"
	StateRunning    State = "running"
	StatePausing    State = "pausing" // pause requested; stopping at the next boundary
	StatePaused     State = "paused"
	StateCancelling State = "cancelling"
	StateCancelled  State = "cancelled"
	StateDone       State = "done"
	StateFailed     State = "failed"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateCancelled || s == StateDone || s == StateFailed
}

// Summary is the scorecard of a completed job, mirroring the placer CLI's
// result line.
type Summary struct {
	HPWLFinal    float64 `json:"hpwl_final"`
	DRWL         float64 `json:"drwl"`
	DRVias       int     `json:"dr_vias"`
	DRVs         int     `json:"drvs"`
	WLIters      int     `json:"wl_iters"`
	RouteIters   int     `json:"route_iters"`
	PlaceSeconds float64 `json:"place_seconds"`
	RouteSeconds float64 `json:"route_seconds"`
}

func summarize(res *core.Result) *Summary {
	return &Summary{
		HPWLFinal:    res.HPWLFinal,
		DRWL:         res.Metrics.DRWL,
		DRVias:       res.Metrics.DRVias,
		DRVs:         res.Metrics.DRVs,
		WLIters:      res.WLIters,
		RouteIters:   res.RouteIters,
		PlaceSeconds: res.PlaceTime.Seconds(),
		RouteSeconds: res.RouteTime.Seconds(),
	}
}

// JobView is the client-facing snapshot of a job, returned by the list and
// get endpoints.
type JobView struct {
	ID       string    `json:"id"`
	Design   string    `json:"design"`
	Mode     string    `json:"mode"`
	State    State     `json:"state"`
	Priority int       `json:"priority,omitempty"`
	Workers  int       `json:"workers,omitempty"`
	Created  time.Time `json:"created"`
	// Segments counts the pipeline segments run so far (1 for a job that was
	// never paused, preempted or migrated).
	Segments int      `json:"segments"`
	Error    string   `json:"error,omitempty"`
	Summary  *Summary `json:"summary,omitempty"`
	// Checkpoint is the last persisted pipeline cursor ("stage/iter/step"),
	// empty before the first boundary.
	Checkpoint string `json:"checkpoint,omitempty"`
	// Restarts counts worker-process crashes/stalls the supervisor recovered
	// from (scheduled stops — pause, preemption, drain — do not count).
	Restarts int `json:"restarts,omitempty"`
	// Poisoned marks a failed job that exhausted its crash-retry budget: the
	// job itself is the likely cause, and the supervisor quarantined it.
	Poisoned bool `json:"poisoned,omitempty"`
	// WorkerPID is the job's current worker process, 0 when none is running.
	WorkerPID int `json:"worker_pid,omitempty"`
}

// jobRecord is the on-disk form (job.json) that lets a fresh process adopt
// the job after a crash. The spec is stored verbatim so segments in the new
// process rebuild the identical design and options.
type jobRecord struct {
	ID       string    `json:"id"`
	Seq      int       `json:"seq"`
	Spec     Spec      `json:"spec"`
	State    State     `json:"state"`
	Created  time.Time `json:"created"`
	Segments int       `json:"segments"`
	Error    string    `json:"error,omitempty"`
	Summary  *Summary  `json:"summary,omitempty"`
	// Restarts/Poisoned persist the supervision history so a restarted
	// daemon neither resets a job's crash budget nor revives a quarantined
	// job. Boundaries persists the global boundary index that keys
	// deterministic worker faults across daemon restarts.
	Restarts   int  `json:"restarts,omitempty"`
	Poisoned   bool `json:"poisoned,omitempty"`
	Boundaries int  `json:"boundaries,omitempty"`
}

// job is the manager's internal bookkeeping for one placement.
type job struct {
	id      string
	seq     int
	spec    Spec
	dir     string // per-job state directory
	created time.Time

	state    State
	errMsg   string
	summary  *Summary
	segments int

	// hub carries the job's telemetry for the whole job lifetime in this
	// process: canonical sink = the trace file, subscribers = SSE clients
	// and dashboards. Closed exactly once, when the job goes terminal (or at
	// manager close), which ends live streams with eof.
	hub       *telemetry.Hub
	traceFile *os.File // canonical sink behind hub; nil once closed

	// pauseWanted distinguishes an explicit Pause (park in paused) from
	// scheduler preemption (requeue) when a segment stops at a boundary.
	pauseWanted bool
	// resume selects a checkpoint resume over a fresh start for the next
	// segment; prepareLaunchLocked recomputes it from the on-disk state.
	resume bool
	// lastCheckpoint is the most recent persisted cursor, for JobView.
	lastCheckpoint string

	// ---- Worker-process supervision ----

	// proc is the running worker process; nil when no segment is active.
	proc *os.Process
	pid  int
	// stopSent dedups the checkpoint-and-stop signal to the worker.
	stopSent bool
	// lastHB is the time of the last heartbeat or boundary report from the
	// worker; the stall monitor kills workers whose lastHB goes quiet.
	lastHB time.Time
	// stalled marks a worker the stall monitor decided to kill, so the exit
	// is classified as a stall rather than a plain crash.
	stalled bool
	// restarts counts crash/stall recoveries toward the retry budget.
	restarts int
	// poisoned marks a quarantined job (restarts exhausted the budget).
	poisoned bool
	// boundaryTotal counts every boundary report ever observed for this job
	// — monotonic across worker restarts (including re-crossed boundaries
	// after a crash) — and feeds the worker's -boundary-base so deterministic
	// worker faults fire once per global index.
	boundaryTotal int
	// backoffTimer delays the requeue after a crash; nil outside backoff.
	backoffTimer *time.Timer
	// endMsg/failMsg buffer the worker's final control message until its
	// exit code arrives and the two are classified together.
	endMsg  *Summary
	failMsg string
}
