package jobs

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"

	"repro/internal/dashboard"
)

// Server is the HTTP/JSON face of a Manager. Endpoints:
//
//	POST /jobs                submit a Spec, returns {"id": ...}
//	GET  /jobs                list all jobs (JobView array)
//	GET  /jobs/{id}           one job's JobView
//	POST /jobs/{id}/pause     park the job at its next stage boundary
//	POST /jobs/{id}/resume    re-queue a paused job
//	POST /jobs/{id}/cancel    abort the job
//	GET  /jobs/{id}/events    SSE: the job's telemetry stream — full backlog,
//	                          then the live tail, `event: eof` when the job
//	                          goes terminal
//	GET  /jobs/{id}/trace     the canonical JSONL trace file as written so far
//	GET  /jobs/{id}/placement the final placement (designio format; done jobs)
//	GET  /jobs/{id}/dashboard/  the live dashboard page for this job
//	GET  /healthz             liveness probe
//
// Every byte a client streams or downloads is served from the same hub and
// files that carry the canonical trace, so what the API shows is exactly
// what the byte-identity contract covers.
type Server struct {
	m *Manager
}

// NewServer wraps a Manager.
func NewServer(m *Manager) *Server { return &Server{m: m} }

// Handler returns the server's http.Handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("POST /jobs", s.submit)
	mux.HandleFunc("GET /jobs", s.list)
	mux.HandleFunc("GET /jobs/{id}", s.get)
	mux.HandleFunc("POST /jobs/{id}/pause", s.control((*Manager).Pause))
	mux.HandleFunc("POST /jobs/{id}/resume", s.control((*Manager).Resume))
	mux.HandleFunc("POST /jobs/{id}/cancel", s.control((*Manager).Cancel))
	mux.HandleFunc("GET /jobs/{id}/events", s.events)
	mux.HandleFunc("GET /jobs/{id}/trace", s.trace)
	mux.HandleFunc("GET /jobs/{id}/placement", s.placement)
	mux.HandleFunc("GET /jobs/{id}/dashboard/", s.dashboard)
	return mux
}

// fail maps manager errors onto HTTP statuses.
func fail(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrNoSuchJob):
		http.Error(w, err.Error(), http.StatusNotFound)
	case errors.Is(err, ErrBadTransition):
		http.Error(w, err.Error(), http.StatusConflict)
	case errors.Is(err, ErrClosed):
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
	default:
		http.Error(w, err.Error(), http.StatusBadRequest)
	}
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func (s *Server) submit(w http.ResponseWriter, r *http.Request) {
	var spec Spec
	dec := json.NewDecoder(io.LimitReader(r.Body, maxPayloadBytes+1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		http.Error(w, "bad spec: "+err.Error(), http.StatusBadRequest)
		return
	}
	id, err := s.m.Submit(spec)
	if err != nil {
		fail(w, err)
		return
	}
	w.WriteHeader(http.StatusAccepted)
	writeJSON(w, map[string]string{"id": id})
}

func (s *Server) list(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.m.List())
}

func (s *Server) get(w http.ResponseWriter, r *http.Request) {
	v, err := s.m.Get(r.PathValue("id"))
	if err != nil {
		fail(w, err)
		return
	}
	writeJSON(w, v)
}

// control adapts a Manager state-transition method into a handler.
func (s *Server) control(op func(*Manager, string) error) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		if err := op(s.m, id); err != nil {
			fail(w, err)
			return
		}
		v, err := s.m.Get(id)
		if err != nil {
			fail(w, err)
			return
		}
		writeJSON(w, v)
	}
}

// events streams the job's trace over SSE, exactly like the dashboard's
// /events: backlog first (gap-free), then the live tail; `event: eof` when
// the hub closes — for a terminal job that happens right after the backlog.
func (s *Server) events(w http.ResponseWriter, r *http.Request) {
	hub, err := s.m.Hub(r.PathValue("id"))
	if err != nil {
		fail(w, err)
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	send := func(line []byte) bool {
		for len(line) > 0 && (line[len(line)-1] == '\n' || line[len(line)-1] == '\r') {
			line = line[:len(line)-1]
		}
		if _, werr := fmt.Fprintf(w, "data: %s\n\n", line); werr != nil {
			return false
		}
		fl.Flush()
		return true
	}
	backlog, sub := hub.Subscribe(1024)
	defer sub.Close()
	for _, line := range backlog {
		if !send(line) {
			return
		}
	}
	for {
		select {
		case <-r.Context().Done():
			return
		case line, chOK := <-sub.C():
			if !chOK {
				fmt.Fprint(w, "event: eof\ndata: {}\n\n")
				fl.Flush()
				return
			}
			if !send(line) {
				return
			}
		}
	}
}

func (s *Server) trace(w http.ResponseWriter, r *http.Request) {
	path, err := s.m.TracePath(r.PathValue("id"))
	if err != nil {
		fail(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/jsonl")
	http.ServeFile(w, r, path)
}

func (s *Server) placement(w http.ResponseWriter, r *http.Request) {
	path, err := s.m.PlacementPath(r.PathValue("id"))
	if err != nil {
		fail(w, err)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	http.ServeFile(w, r, path)
}

// dashboard mounts the shared live dashboard under the job's prefix. The
// dashboard is a thin stateless view over the hub, so constructing one per
// request is free; its page uses relative URLs, which is what makes the
// StripPrefix mount work.
func (s *Server) dashboard(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	hub, err := s.m.Hub(id)
	if err != nil {
		fail(w, err)
		return
	}
	view, err := s.m.Get(id)
	if err != nil {
		fail(w, err)
		return
	}
	title := fmt.Sprintf("%s — %s (job %s)", view.Design, view.Mode, id)
	h := http.StripPrefix(fmt.Sprintf("/jobs/%s/dashboard", id),
		dashboard.NewServer(hub, title).Handler())
	h.ServeHTTP(w, r)
}
