package jobs

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"time"

	"repro/internal/dashboard"
)

// Server is the HTTP/JSON face of a Manager. Endpoints:
//
//	POST /jobs                submit a Spec, returns {"id": ...}
//	GET  /jobs                list all jobs (JobView array)
//	GET  /jobs/{id}           one job's JobView
//	POST /jobs/{id}/pause     park the job at its next stage boundary
//	POST /jobs/{id}/resume    re-queue a paused job
//	POST /jobs/{id}/cancel    abort the job
//	GET  /jobs/{id}/events    SSE: the job's telemetry stream — full backlog,
//	                          then the live tail, `event: eof` when the job
//	                          goes terminal
//	GET  /jobs/{id}/trace     the canonical JSONL trace file as written so far
//	GET  /jobs/{id}/placement the final placement (designio format; done jobs)
//	GET  /jobs/{id}/dashboard/  the live dashboard page for this job
//	GET  /healthz             liveness probe (is the process serving?)
//	GET  /readyz              readiness probe (should it receive new work?):
//	                          503 with a reason while draining or overloaded
//	GET  /statusz             supervision metrics (restarts, quarantines,
//	                          stalls, shed requests, worker/queue gauges)
//
// Overload and abuse protection on POST /jobs: submissions must be
// application/json, bodies are hard-capped with http.MaxBytesReader, and a
// per-client-IP token bucket plus the manager's queue-depth and disk guards
// shed excess load with 503 + Retry-After rather than queue it unboundedly.
//
// Every byte a client streams or downloads is served from the same hub and
// files that carry the canonical trace, so what the API shows is exactly
// what the byte-identity contract covers.
type Server struct {
	m      *Manager
	cfg    ServerConfig
	limits *rateLimiter
}

// ServerConfig parameterizes the HTTP protections.
type ServerConfig struct {
	// RatePerSec and Burst shape the per-client-IP token bucket on
	// POST /jobs (defaults 5/s, burst 10; RatePerSec < 0 disables).
	RatePerSec float64
	Burst      int
	// RetryAfter is the Retry-After value sent with 503 sheds (default 1s).
	RetryAfter time.Duration
}

func (c *ServerConfig) fill() {
	if c.RatePerSec == 0 {
		c.RatePerSec = 5
	}
	if c.Burst <= 0 {
		c.Burst = 10
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
}

// NewServer wraps a Manager with default protections.
func NewServer(m *Manager) *Server { return NewServerWith(m, ServerConfig{}) }

// NewServerWith wraps a Manager with explicit protection settings.
func NewServerWith(m *Manager, cfg ServerConfig) *Server {
	cfg.fill()
	s := &Server{m: m, cfg: cfg}
	if cfg.RatePerSec > 0 {
		s.limits = newRateLimiter(cfg.RatePerSec, cfg.Burst)
	}
	return s
}

// Handler returns the server's http.Handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /readyz", s.readyz)
	mux.HandleFunc("GET /statusz", s.statusz)
	mux.HandleFunc("POST /jobs", s.submit)
	mux.HandleFunc("GET /jobs", s.list)
	mux.HandleFunc("GET /jobs/{id}", s.get)
	mux.HandleFunc("POST /jobs/{id}/pause", s.control((*Manager).Pause))
	mux.HandleFunc("POST /jobs/{id}/resume", s.control((*Manager).Resume))
	mux.HandleFunc("POST /jobs/{id}/cancel", s.control((*Manager).Cancel))
	mux.HandleFunc("GET /jobs/{id}/events", s.events)
	mux.HandleFunc("GET /jobs/{id}/trace", s.trace)
	mux.HandleFunc("GET /jobs/{id}/placement", s.placement)
	mux.HandleFunc("GET /jobs/{id}/dashboard/", s.dashboard)
	return mux
}

// shed rejects a request with 503 + Retry-After — the graceful-degradation
// contract: clients back off and retry instead of piling on.
func (s *Server) shed(w http.ResponseWriter, msg string) {
	w.Header().Set("Retry-After", strconv.Itoa(int((s.cfg.RetryAfter+time.Second-1)/time.Second)))
	http.Error(w, msg, http.StatusServiceUnavailable)
}

// fail maps manager errors onto HTTP statuses.
func (s *Server) fail(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrNoSuchJob):
		http.Error(w, err.Error(), http.StatusNotFound)
	case errors.Is(err, ErrBadTransition):
		http.Error(w, err.Error(), http.StatusConflict)
	case errors.Is(err, ErrOverloaded), errors.Is(err, ErrStateDir):
		// Both are operational, usually transient conditions: shed and let
		// the client retry rather than report a permanent failure.
		s.shed(w, err.Error())
	case errors.Is(err, ErrClosed):
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
	default:
		http.Error(w, err.Error(), http.StatusBadRequest)
	}
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func (s *Server) readyz(w http.ResponseWriter, r *http.Request) {
	if ok, reason := s.m.Ready(); !ok {
		s.shed(w, reason)
		return
	}
	fmt.Fprintln(w, "ok")
}

func (s *Server) statusz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.m.Stats())
}

// clientKey identifies the submitter for rate limiting: the remote IP
// without the ephemeral port.
func clientKey(r *http.Request) string {
	if host, _, err := net.SplitHostPort(r.RemoteAddr); err == nil {
		return host
	}
	return r.RemoteAddr
}

func (s *Server) submit(w http.ResponseWriter, r *http.Request) {
	if s.limits != nil && !s.limits.allow(clientKey(r), time.Now()) {
		s.m.NoteShed()
		s.shed(w, "rate limit exceeded for "+clientKey(r))
		return
	}
	if ct := r.Header.Get("Content-Type"); !isJSONContentType(ct) {
		http.Error(w, fmt.Sprintf("submit requires Content-Type application/json, got %q", ct),
			http.StatusUnsupportedMediaType)
		return
	}
	// MaxBytesReader (unlike a bare LimitReader) closes the connection and
	// produces a typed error once the cap is crossed, so an oversized body
	// cannot be streamed in full before being rejected.
	body := http.MaxBytesReader(w, r.Body, maxPayloadBytes+1<<20)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	var spec Spec
	if err := dec.Decode(&spec); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			http.Error(w, fmt.Sprintf("spec exceeds %d bytes", tooBig.Limit), http.StatusRequestEntityTooLarge)
			return
		}
		http.Error(w, "bad spec: "+err.Error(), http.StatusBadRequest)
		return
	}
	id, err := s.m.Submit(spec)
	if err != nil {
		s.fail(w, err)
		return
	}
	w.WriteHeader(http.StatusAccepted)
	writeJSON(w, map[string]string{"id": id})
}

func isJSONContentType(ct string) bool {
	// application/json with optional parameters (charset); no multipart or
	// form encodings.
	for i := 0; i < len(ct); i++ {
		if ct[i] == ';' {
			ct = ct[:i]
			break
		}
	}
	for len(ct) > 0 && (ct[len(ct)-1] == ' ' || ct[len(ct)-1] == '\t') {
		ct = ct[:len(ct)-1]
	}
	return ct == "application/json"
}

func (s *Server) list(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.m.List())
}

func (s *Server) get(w http.ResponseWriter, r *http.Request) {
	v, err := s.m.Get(r.PathValue("id"))
	if err != nil {
		s.fail(w, err)
		return
	}
	writeJSON(w, v)
}

// control adapts a Manager state-transition method into a handler.
func (s *Server) control(op func(*Manager, string) error) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		if err := op(s.m, id); err != nil {
			s.fail(w, err)
			return
		}
		v, err := s.m.Get(id)
		if err != nil {
			s.fail(w, err)
			return
		}
		writeJSON(w, v)
	}
}

// events streams the job's trace over SSE, exactly like the dashboard's
// /events: backlog first (gap-free), then the live tail; `event: eof` when
// the hub closes — for a terminal job that happens right after the backlog.
//
// The listener's WriteTimeout would sever a long-lived stream, so every
// write extends its own deadline via the ResponseController, and a periodic
// comment ping keeps half-dead connections detectable.
func (s *Server) events(w http.ResponseWriter, r *http.Request) {
	hub, err := s.m.Hub(r.PathValue("id"))
	if err != nil {
		s.fail(w, err)
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	rc := http.NewResponseController(w)
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	send := func(line []byte) bool {
		rc.SetWriteDeadline(time.Now().Add(30 * time.Second))
		for len(line) > 0 && (line[len(line)-1] == '\n' || line[len(line)-1] == '\r') {
			line = line[:len(line)-1]
		}
		if _, werr := fmt.Fprintf(w, "data: %s\n\n", line); werr != nil {
			return false
		}
		fl.Flush()
		return true
	}
	backlog, sub := hub.Subscribe(1024)
	defer sub.Close()
	for _, line := range backlog {
		if !send(line) {
			return
		}
	}
	ping := time.NewTicker(15 * time.Second)
	defer ping.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case <-ping.C:
			rc.SetWriteDeadline(time.Now().Add(30 * time.Second))
			if _, werr := fmt.Fprint(w, ": ping\n\n"); werr != nil {
				return
			}
			fl.Flush()
		case line, chOK := <-sub.C():
			if !chOK {
				rc.SetWriteDeadline(time.Now().Add(30 * time.Second))
				fmt.Fprint(w, "event: eof\ndata: {}\n\n")
				fl.Flush()
				return
			}
			if !send(line) {
				return
			}
		}
	}
}

func (s *Server) trace(w http.ResponseWriter, r *http.Request) {
	path, err := s.m.TracePath(r.PathValue("id"))
	if err != nil {
		s.fail(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/jsonl")
	http.ServeFile(w, r, path)
}

func (s *Server) placement(w http.ResponseWriter, r *http.Request) {
	path, err := s.m.PlacementPath(r.PathValue("id"))
	if err != nil {
		s.fail(w, err)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	http.ServeFile(w, r, path)
}

// dashboard mounts the shared live dashboard under the job's prefix. The
// dashboard is a thin stateless view over the hub, so constructing one per
// request is free; its page uses relative URLs, which is what makes the
// StripPrefix mount work.
func (s *Server) dashboard(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	hub, err := s.m.Hub(id)
	if err != nil {
		s.fail(w, err)
		return
	}
	view, err := s.m.Get(id)
	if err != nil {
		s.fail(w, err)
		return
	}
	// The mounted dashboard manages no write deadlines of its own; give its
	// connections (including its SSE stream) a long one so the listener's
	// WriteTimeout does not sever live charts.
	http.NewResponseController(w).SetWriteDeadline(time.Now().Add(time.Hour))
	title := fmt.Sprintf("%s — %s (job %s)", view.Design, view.Mode, id)
	h := http.StripPrefix(fmt.Sprintf("/jobs/%s/dashboard", id),
		dashboard.NewServer(hub, title).Handler())
	h.ServeHTTP(w, r)
}
