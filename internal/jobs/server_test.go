package jobs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/designio"
)

func newTestServer(t *testing.T, cfg Config) (*Manager, *httptest.Server) {
	t.Helper()
	if cfg.Dir == "" {
		cfg.Dir = t.TempDir()
	}
	m, err := Open(workerConfig(t, cfg))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewServer(m).Handler())
	t.Cleanup(func() {
		ts.Close()
		m.Close()
	})
	return m, ts
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	resp, err := http.Post(url, "application/json", &buf)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decodeJSON[T any](t *testing.T, resp *http.Response) T {
	t.Helper()
	defer resp.Body.Close()
	var v T
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatalf("decode %s response: %v", resp.Request.URL, err)
	}
	return v
}

func TestServerSubmitStatusStream(t *testing.T) {
	_, ts := newTestServer(t, Config{Capacity: 1})

	resp := postJSON(t, ts.URL+"/jobs", fastSpec())
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d", resp.StatusCode)
	}
	id := decodeJSON[map[string]string](t, resp)["id"]
	if id == "" {
		t.Fatal("submit returned no id")
	}

	// The SSE stream ends with eof when the job completes; count the data
	// frames — they are the full canonical trace, line for line.
	sresp, err := http.Get(ts.URL + "/jobs/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	if ct := sresp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("events content-type = %q", ct)
	}
	events, sawEOF := 0, false
	sc := bufio.NewScanner(sresp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "data: {") {
			events++
		}
		if line == "event: eof" {
			sawEOF = true
			break
		}
	}
	if !sawEOF {
		t.Fatal("SSE stream ended without eof")
	}
	if events == 0 {
		t.Fatal("SSE stream carried no trace events")
	}

	// Terminal view with a summary.
	view := decodeJSON[JobView](t, mustGet(t, ts.URL+"/jobs/"+id))
	if view.State != StateDone || view.Summary == nil {
		t.Fatalf("view after eof = %+v", view)
	}

	// Placement and trace downloads serve the canonical artifacts.
	presp := mustGet(t, ts.URL+"/jobs/"+id+"/placement")
	defer presp.Body.Close()
	if presp.StatusCode != http.StatusOK {
		t.Fatalf("placement status = %d", presp.StatusCode)
	}
	trresp := mustGet(t, ts.URL+"/jobs/"+id+"/trace")
	defer trresp.Body.Close()
	var traceLen int
	tsc := bufio.NewScanner(trresp.Body)
	tsc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for tsc.Scan() {
		traceLen++
	}
	if traceLen != events {
		t.Fatalf("trace download has %d lines, SSE streamed %d", traceLen, events)
	}

	// List shows the job.
	list := decodeJSON[[]JobView](t, mustGet(t, ts.URL+"/jobs"))
	if len(list) != 1 || list[0].ID != id {
		t.Fatalf("list = %+v", list)
	}
}

func mustGet(t *testing.T, url string) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestServerPauseResumeCancel(t *testing.T) {
	_, ts := newTestServer(t, Config{Capacity: 1, Quantum: 1000})

	id1 := decodeJSON[map[string]string](t, postJSON(t, ts.URL+"/jobs", fastSpec()))["id"]
	id2 := decodeJSON[map[string]string](t, postJSON(t, ts.URL+"/jobs", fastSpec()))["id"]

	// Job 2 waits behind job 1 (capacity 1); cancel it while queued and
	// assert the terminal state, as the CI smoke does.
	resp := postJSON(t, ts.URL+"/jobs/"+id2+"/cancel", nil)
	view := decodeJSON[JobView](t, resp)
	if view.State != StateCancelled {
		t.Fatalf("cancelled queued job is %s", view.State)
	}

	// Pause job 1 (running), await paused, resume, await done.
	if resp := postJSON(t, ts.URL+"/jobs/"+id1+"/pause", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("pause status = %d", resp.StatusCode)
	} else {
		resp.Body.Close()
	}
	waitViewState(t, ts.URL, id1, StatePaused)
	if resp := postJSON(t, ts.URL+"/jobs/"+id1+"/resume", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("resume status = %d", resp.StatusCode)
	} else {
		resp.Body.Close()
	}
	waitViewState(t, ts.URL, id1, StateDone)

	// Invalid transitions surface as 409, unknown jobs as 404.
	resp = postJSON(t, ts.URL+"/jobs/"+id1+"/resume", nil)
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("resume done job status = %d, want 409", resp.StatusCode)
	}
	resp = postJSON(t, ts.URL+"/jobs/j9999/pause", nil)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("pause unknown job status = %d, want 404", resp.StatusCode)
	}
	resp = postJSON(t, ts.URL+"/jobs", Spec{Design: "no_such"})
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad submit status = %d, want 400", resp.StatusCode)
	}
}

func waitViewState(t *testing.T, base, id string, want State) {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		view := decodeJSON[JobView](t, mustGet(t, base+"/jobs/"+id))
		if view.State == want {
			return
		}
		if view.State.Terminal() && view.State != want {
			t.Fatalf("job %s terminal %s, wanted %s", id, view.State, want)
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("job %s never reached %s", id, want)
}

func TestServerDashboardPerJob(t *testing.T) {
	_, ts := newTestServer(t, Config{Capacity: 1})
	id := decodeJSON[map[string]string](t, postJSON(t, ts.URL+"/jobs", fastSpec()))["id"]
	waitViewState(t, ts.URL, id, StateDone)

	resp := mustGet(t, ts.URL+"/jobs/"+id+"/dashboard/")
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("dashboard status = %d", resp.StatusCode)
	}
	var page bytes.Buffer
	if _, err := page.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	html := page.String()
	if !strings.Contains(html, "<html") || !strings.Contains(html, fmt.Sprintf("job %s", id)) {
		t.Fatalf("dashboard page missing shell or title: %.120s", html)
	}
	// The page must reference its endpoints relatively, or the per-job
	// mount (/jobs/{id}/dashboard/) would fetch another job's stream.
	if strings.Contains(html, "\"/events\"") || strings.Contains(html, "\"/heatmap") {
		t.Fatal("dashboard page uses absolute endpoint URLs; per-job mounts would break")
	}
	// The mounted events endpoint serves this job's stream and ends (job is
	// done → hub closed → backlog + eof).
	eresp := mustGet(t, ts.URL+"/jobs/"+id+"/dashboard/events")
	defer eresp.Body.Close()
	var body bytes.Buffer
	if _, err := body.ReadFrom(eresp.Body); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(body.String(), "event: eof") {
		t.Fatal("mounted dashboard events stream did not end with eof")
	}
}

func TestServerInlinePayload(t *testing.T) {
	_, ts := newTestServer(t, Config{Capacity: 1})

	// Round-trip a catalog design through designio to get a valid inline
	// payload, then place it via the server.
	spec := fastSpec()
	d, err := spec.BuildDesign()
	if err != nil {
		t.Fatal(err)
	}
	var payload bytes.Buffer
	if err := designio.Write(&payload, d); err != nil {
		t.Fatal(err)
	}
	spec.Design = ""
	spec.Payload = payload.String()
	id := decodeJSON[map[string]string](t, postJSON(t, ts.URL+"/jobs", spec))["id"]
	view := waitViewDone(t, ts.URL, id)
	if view.Summary == nil || view.Summary.RouteIters == 0 {
		t.Fatalf("inline job summary = %+v", view.Summary)
	}
}

func waitViewDone(t *testing.T, base, id string) JobView {
	t.Helper()
	waitViewState(t, base, id, StateDone)
	return decodeJSON[JobView](t, mustGet(t, base+"/jobs/"+id))
}

// TestServerHardening pins the abuse-protection surface on POST /jobs:
// wrong media types are 415, oversized bodies are 413 (cut off by
// MaxBytesReader, not streamed in full), and the per-client rate limiter
// sheds with 503 + Retry-After once the burst is spent.
func TestServerHardening(t *testing.T) {
	m, err := Open(workerConfig(t, Config{Dir: t.TempDir()}))
	if err != nil {
		t.Fatal(err)
	}
	// Burst 2, negligible refill: the third submit in a row must shed.
	ts := httptest.NewServer(NewServerWith(m, ServerConfig{RatePerSec: 0.001, Burst: 2}).Handler())
	t.Cleanup(func() {
		ts.Close()
		m.Close()
	})

	resp, err := http.Post(ts.URL+"/jobs", "text/plain", strings.NewReader("design=tiny_hot"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnsupportedMediaType {
		t.Fatalf("text/plain submit status = %d, want 415", resp.StatusCode)
	}

	// A payload past the MaxBytesReader cap (maxPayloadBytes + 1 MiB slack).
	huge := fmt.Sprintf(`{"payload": %q}`, strings.Repeat("a", maxPayloadBytes+2<<20))
	resp, err = http.Post(ts.URL+"/jobs", "application/json", strings.NewReader(huge))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized submit status = %d, want 413", resp.StatusCode)
	}

	// Burst spent (the two requests above drained the bucket): shed with
	// Retry-After so clients back off instead of piling on.
	resp = postJSON(t, ts.URL+"/jobs", fastSpec())
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("over-rate submit status = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("rate-limit shed carries no Retry-After header")
	}
	if got := statValue(t, m, "supervise.shed_requests"); got != 1 {
		t.Errorf("supervise.shed_requests = %v, want 1", got)
	}
}

// TestServerReadyAndStatus covers the probe split — /healthz is pure
// liveness, /readyz refuses new work with a reason when the queue is at
// cap — and /statusz exposing the supervision metrics.
func TestServerReadyAndStatus(t *testing.T) {
	_, ts := newTestServer(t, Config{Capacity: 1, MaxQueued: 1, Quantum: 1000})

	for _, probe := range []string{"/healthz", "/readyz"} {
		resp := mustGet(t, ts.URL+probe)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s = %d on an idle server", probe, resp.StatusCode)
		}
	}

	// One running + one queued job puts the queue at its cap: still alive,
	// no longer ready, and HTTP submits shed with 503 + Retry-After.
	postJSON(t, ts.URL+"/jobs", fastSpec()).Body.Close()
	postJSON(t, ts.URL+"/jobs", fastSpec()).Body.Close()
	resp := postJSON(t, ts.URL+"/jobs", fastSpec())
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get("Retry-After") == "" {
		t.Fatalf("over-cap submit = %d (Retry-After %q), want 503 with Retry-After",
			resp.StatusCode, resp.Header.Get("Retry-After"))
	}
	resp = mustGet(t, ts.URL+"/readyz")
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/readyz = %d with a full queue, want 503", resp.StatusCode)
	}
	if resp := mustGet(t, ts.URL+"/healthz"); resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz = %d; liveness must not follow readiness", resp.StatusCode)
	} else {
		resp.Body.Close()
	}

	metrics := decodeJSON[[]map[string]any](t, mustGet(t, ts.URL+"/statusz"))
	want := map[string]bool{
		"supervise.restarts": false, "supervise.quarantines": false,
		"supervise.stalls": false, "supervise.shed_requests": false,
		"supervise.active_workers": false, "supervise.queued_jobs": false,
		"supervise.heartbeat_age_ms": false,
	}
	for _, mt := range metrics {
		if name, _ := mt["name"].(string); name != "" {
			if _, ok := want[name]; ok {
				want[name] = true
			}
		}
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("/statusz missing %s", name)
		}
	}
}
