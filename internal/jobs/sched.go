package jobs

// The scheduler's decision core: a pure, single-threaded data structure the
// Manager drives under its mutex. Keeping the policy free of goroutines,
// clocks and channels makes it exhaustively unit-testable — for a fixed
// sequence of add/decide/onBoundary/requeue/remove calls the decisions are
// fully deterministic, which is the contract the scheduler tests pin down.
//
// Model: the server owns `capacity` worker slots. A job occupies `budget`
// slots while running. Admission picks waiting jobs by (priority desc,
// passes asc, seq asc) — strict priority first, round-robin within a
// priority level (passes counts completed leases), FIFO as the tie-break —
// and backfills smaller jobs into slots a bigger waiter cannot use yet.
// Preemption is cooperative and happens only at stage boundaries:
//
//   - Priority preemption: a strictly higher-priority waiter that cannot be
//     admitted marks the newest lowest-priority running jobs as stopping;
//     each victim checkpoints and requeues at its next boundary.
//   - Fair share: a running job that has crossed `quantum` boundaries in
//     its current lease yields — at its next boundary — to a waiting job of
//     equal or higher priority that its slots would admit.
//
// A stopping job keeps its slots until it actually reaches a boundary and
// checkpoints; decide never double-books slots that are only promised.

import "sort"

type schedState int

const (
	schedWaiting schedState = iota
	schedRunning
	schedStopping // running, but told to checkpoint-and-stop at the next boundary
)

type schedEntry struct {
	id       string
	seq      int // submission order, the final FIFO tie-break
	priority int // higher wins
	budget   int // worker slots occupied while running

	state      schedState
	passes     int // completed leases; round-robin key within a priority
	boundaries int // stage boundaries crossed in the current lease
}

type sched struct {
	capacity int
	quantum  int // boundaries per lease before a job must yield to peers
	entries  map[string]*schedEntry
}

func newSched(capacity, quantum int) *sched {
	if capacity < 1 {
		capacity = 1
	}
	if quantum < 1 {
		quantum = 1
	}
	return &sched{capacity: capacity, quantum: quantum, entries: map[string]*schedEntry{}}
}

// add registers a job as waiting. The budget is clamped to [1, capacity] so
// every job is runnable.
func (s *sched) add(id string, seq, priority, budget int) {
	if budget < 1 {
		budget = 1
	}
	if budget > s.capacity {
		budget = s.capacity
	}
	s.entries[id] = &schedEntry{id: id, seq: seq, priority: priority, budget: budget}
}

// remove forgets a job (terminal state, or paused out of the scheduler).
func (s *sched) remove(id string) { delete(s.entries, id) }

// has reports whether the job is currently scheduled.
func (s *sched) has(id string) bool { _, ok := s.entries[id]; return ok }

// requeue puts a preempted job back in the waiting line behind its
// equal-priority peers (its pass count grows, so round-robin order rotates).
func (s *sched) requeue(id string) {
	if e := s.entries[id]; e != nil {
		e.state = schedWaiting
		e.passes++
		e.boundaries = 0
	}
}

// stop marks a running job to checkpoint-and-stop at its next boundary
// (an explicit pause request arriving from outside the policy).
func (s *sched) stop(id string) {
	if e := s.entries[id]; e != nil && e.state == schedRunning {
		e.state = schedStopping
	}
}

// stopping lists the jobs currently marked to checkpoint-and-stop; the
// manager signals their worker processes after each decide.
func (s *sched) stopping() []string {
	var ids []string
	for _, e := range s.entries {
		if e.state == schedStopping {
			ids = append(ids, e.id)
		}
	}
	return ids
}

// used returns the slots held by running and stopping jobs; stopping jobs
// still occupy theirs until they reach a boundary.
func (s *sched) used() int {
	n := 0
	for _, e := range s.entries {
		if e.state != schedWaiting {
			n += e.budget
		}
	}
	return n
}

// pendingFree returns the slots that stopping jobs will release.
func (s *sched) pendingFree() int {
	n := 0
	for _, e := range s.entries {
		if e.state == schedStopping {
			n += e.budget
		}
	}
	return n
}

func (s *sched) waiting() []*schedEntry {
	var w []*schedEntry
	for _, e := range s.entries {
		if e.state == schedWaiting {
			w = append(w, e)
		}
	}
	sort.Slice(w, func(i, j int) bool {
		a, b := w[i], w[j]
		if a.priority != b.priority {
			return a.priority > b.priority
		}
		if a.passes != b.passes {
			return a.passes < b.passes
		}
		return a.seq < b.seq
	})
	return w
}

// decide admits waiting jobs into free slots and triggers priority
// preemption for those that cannot fit. Admitted jobs are marked running
// and returned; the caller launches their segments. Victims are marked
// stopping in place — their segments observe that at the next boundary.
func (s *sched) decide() (start []string) {
	free := s.capacity - s.used()
	pending := s.pendingFree()
	for _, w := range s.waiting() {
		if w.budget <= free {
			w.state = schedRunning
			w.boundaries = 0
			free -= w.budget
			start = append(start, w.id)
			continue
		}
		if w.budget <= free+pending {
			continue // already-promised slots cover it; just wait
		}
		// Preempt strictly lower-priority running jobs, newest first, until
		// the promised slots cover this waiter. If even preempting them all
		// would not help, leave them running and let a smaller waiter
		// backfill instead.
		var victims []*schedEntry
		reclaim := 0
		for _, v := range s.runningBelow(w.priority) {
			victims = append(victims, v)
			reclaim += v.budget
			if w.budget <= free+pending+reclaim {
				break
			}
		}
		if w.budget <= free+pending+reclaim {
			for _, v := range victims {
				v.state = schedStopping
				pending += v.budget
			}
		}
	}
	return start
}

// runningBelow lists running (not yet stopping) jobs with priority strictly
// below p, in preemption order: lowest priority first, newest submission
// first within a priority.
func (s *sched) runningBelow(p int) []*schedEntry {
	var r []*schedEntry
	for _, e := range s.entries {
		if e.state == schedRunning && e.priority < p {
			r = append(r, e)
		}
	}
	sort.Slice(r, func(i, j int) bool {
		a, b := r[i], r[j]
		if a.priority != b.priority {
			return a.priority < b.priority
		}
		return a.seq > b.seq
	})
	return r
}

// onBoundary records that a running job crossed a stage boundary and
// reports whether it must checkpoint-and-stop there: either it was already
// marked stopping (pause or priority preemption), or its lease expired and
// an equal-or-higher-priority waiter can use the slots it would free.
func (s *sched) onBoundary(id string) (stopNow bool) {
	e := s.entries[id]
	if e == nil || e.state == schedWaiting {
		return false
	}
	if e.state == schedStopping {
		return true
	}
	e.boundaries++
	if e.boundaries < s.quantum {
		return false
	}
	free := s.capacity - s.used()
	for _, w := range s.waiting() {
		if w.priority >= e.priority && w.budget <= free+e.budget {
			e.state = schedStopping
			return true
		}
	}
	e.boundaries = 0 // nobody can use the slots; start a fresh lease
	return false
}
