//go:build linux || darwin

package jobs

import "syscall"

// diskFree returns the bytes available to unprivileged writers on the
// filesystem holding dir — the admission-control disk guard's input.
func diskFree(dir string) (uint64, error) {
	var st syscall.Statfs_t
	if err := syscall.Statfs(dir, &st); err != nil {
		return 0, err
	}
	return uint64(st.Bavail) * uint64(st.Bsize), nil //nolint:unconvert // field widths differ per platform
}
