// Package jobs is the placement-as-a-service layer: a job manager that runs
// placements submitted over an HTTP/JSON API (see Server) through the
// internal/core pipeline, multiplexed over a bounded worker pool by a
// deterministic multi-tenant scheduler (see sched).
//
// The package's hard invariant mirrors the repo's checkpoint/resume
// contract: a job run through the server — however often it is paused,
// preempted at stage boundaries, or migrated to a fresh process after a
// crash — produces a final placement and a canonical telemetry trace
// byte-identical to the same design/options run straight through
// core.Place. Three mechanisms carry that promise:
//
//   - Preemption and pause use core.BoundaryStop, the scheduled-checkpoint
//     path: the run stops at an explicit stage-graph cursor and the resumed
//     trace is a byte-exact continuation.
//   - Every boundary also persists a checkpoint (core.BoundaryCheckpoint),
//     so a killed process loses at most the work since the last boundary.
//   - On recovery the job's trace file is truncated to exactly the events
//     that preceded the chosen checkpoint (core.CheckpointInfo.TraceSeq),
//     so replayed iterations are not duplicated in the trace.
package jobs

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/designio"
	"repro/internal/netlist"
	"repro/internal/synth"
)

// maxPayloadBytes bounds inline design payloads accepted at submission.
const maxPayloadBytes = 64 << 20

// Spec is a job submission: the design (catalog name or inline payload in
// the designio text format), the placement options, and the job's share of
// the server (worker budget, priority).
//
// Option fields follow the placer CLI's conventions so that a spec and the
// equivalent CLI invocation produce byte-identical placements and canonical
// traces: zero values select the same defaults, and the three technique
// switches default to ON (disable with the no_* negations, mirroring
// -mci=false etc.).
type Spec struct {
	// Design names a synthetic catalog design (see synth.Names). Exactly one
	// of Design and Payload must be set.
	Design string `json:"design,omitempty"`
	// Payload is an inline design in the designio text format.
	Payload string `json:"payload,omitempty"`

	// Mode is "xplace", "xplace-route" or "ours" (default "ours").
	Mode string `json:"mode,omitempty"`

	// Workers is the job's worker budget: the number of pool slots it
	// occupies while running and the Options.Workers its segments run with.
	// 0 selects 1. The budget is clamped to the manager's capacity. Every
	// value yields the identical placement — the budget only buys speed.
	Workers int `json:"workers,omitempty"`
	// Priority orders jobs: higher runs first and may preempt strictly
	// lower-priority jobs at their next stage boundary. Default 0.
	Priority int `json:"priority,omitempty"`

	// Placement options; zero selects the core defaults.
	GridHint          int `json:"grid,omitempty"`
	MaxWLIters        int `json:"max_wl_iters,omitempty"`
	MaxRouteIters     int `json:"max_route_iters,omitempty"`
	StepsPerRouteIter int `json:"steps_per_route_iter,omitempty"`

	// Levels enables the multilevel clustered flow (core.Options.Levels);
	// 0/1 runs flat. ClusterMaxSize follows the core sentinel convention
	// (0 = auto, negative = no cap). Preemption and crash migration work at
	// any hierarchy level: coarse boundary points ("L2/wirelength") are
	// ordinary stage-graph cursors to the scheduler.
	Levels         int `json:"levels,omitempty"`
	ClusterMaxSize int `json:"cluster_max_size,omitempty"`

	// Technique negations (the techniques default to on, as in the CLI).
	NoMCI bool `json:"no_mci,omitempty"`
	NoDC  bool `json:"no_dc,omitempty"`
	NoDPA bool `json:"no_dpa,omitempty"`

	SkipLegalize bool `json:"skip_legalize,omitempty"`
	SkipDetailed bool `json:"skip_detailed,omitempty"`
}

// Validate checks the spec without building the design.
func (s *Spec) Validate() error {
	switch {
	case s.Design == "" && s.Payload == "":
		return fmt.Errorf("jobs: spec needs a design name or an inline payload")
	case s.Design != "" && s.Payload != "":
		return fmt.Errorf("jobs: design name and inline payload are mutually exclusive")
	case len(s.Payload) > maxPayloadBytes:
		return fmt.Errorf("jobs: payload exceeds %d bytes", maxPayloadBytes)
	}
	if s.Design != "" {
		known := false
		for _, n := range synth.Names() {
			if n == s.Design {
				known = true
				break
			}
		}
		if !known {
			return fmt.Errorf("jobs: unknown design %q", s.Design)
		}
	}
	if _, err := s.mode(); err != nil {
		return err
	}
	if s.Workers < 0 || s.Priority < -1000 || s.Priority > 1000 {
		return fmt.Errorf("jobs: workers must be ≥ 0 and priority within ±1000")
	}
	if s.GridHint < 0 || s.MaxWLIters < 0 || s.MaxRouteIters < 0 || s.StepsPerRouteIter < 0 {
		return fmt.Errorf("jobs: option fields must be ≥ 0")
	}
	if s.Levels < 0 || s.Levels > 8 {
		return fmt.Errorf("jobs: levels must be within [0, 8]")
	}
	return nil
}

func (s *Spec) mode() (core.Mode, error) {
	switch s.Mode {
	case "xplace":
		return core.ModeWirelength, nil
	case "xplace-route":
		return core.ModeBaselineRoute, nil
	case "", "ours":
		return core.ModeOurs, nil
	default:
		return 0, fmt.Errorf("jobs: unknown mode %q", s.Mode)
	}
}

// DesignName is the display name: the catalog name, or the inline payload's
// own design name once parsed (best-effort "inline" before that).
func (s *Spec) DesignName() string {
	if s.Design != "" {
		return s.Design
	}
	return "inline"
}

// BuildDesign constructs the design to place. Deterministic: every segment
// of a job (including one resumed in a fresh process) rebuilds the
// identical netlist.
func (s *Spec) BuildDesign() (*netlist.Design, error) {
	if s.Design != "" {
		return synth.Generate(s.Design)
	}
	d, err := designio.Read(strings.NewReader(s.Payload))
	if err != nil {
		return nil, fmt.Errorf("jobs: inline payload: %w", err)
	}
	return d, nil
}

// coreOptions maps the spec onto core.Options. Environment fields (Workers,
// Observer, checkpointing) are the manager's business and left unset.
func (s *Spec) coreOptions() core.Options {
	mode, _ := s.mode() // Validate ran at submission
	return core.Options{
		Mode: mode,
		Tech: core.Techniques{
			MCI: !s.NoMCI,
			DC:  !s.NoDC,
			DPA: !s.NoDPA,
		},
		GridHint:          s.GridHint,
		MaxWLIters:        s.MaxWLIters,
		MaxRouteIters:     s.MaxRouteIters,
		StepsPerRouteIter: s.StepsPerRouteIter,
		Levels:            s.Levels,
		ClusterMaxSize:    s.ClusterMaxSize,
		SkipLegalize:      s.SkipLegalize,
		SkipDetailed:      s.SkipDetailed,
	}
}
