package jobs

import (
	"reflect"
	"testing"
)

// drive runs decide and returns the started IDs (nil-safe for asserts).
func drive(t *testing.T, s *sched) []string {
	t.Helper()
	return s.decide()
}

func usedSlots(s *sched) int { return s.used() }

func TestSchedAdmitsInPriorityThenFIFOOrder(t *testing.T) {
	s := newSched(4, 4)
	s.add("a", 1, 0, 2)
	s.add("b", 2, 5, 2)
	s.add("c", 3, 0, 2)
	got := drive(t, s)
	// b outranks both; a beats c on submission order; c fills the rest.
	want := []string{"b", "a"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("decide() = %v, want %v", got, want)
	}
	if usedSlots(s) != 4 {
		t.Fatalf("used = %d, want 4", usedSlots(s))
	}
	if got := drive(t, s); got != nil {
		t.Fatalf("second decide started %v with a full pool", got)
	}
}

func TestSchedBackfillsSmallJobPastBigWaiter(t *testing.T) {
	s := newSched(4, 4)
	s.add("big", 1, 0, 3)
	got := drive(t, s)
	if !reflect.DeepEqual(got, []string{"big"}) {
		t.Fatalf("decide() = %v", got)
	}
	// "huge" (same priority) cannot fit in the single free slot and must not
	// preempt an equal-priority job; "small" backfills behind it.
	s.add("huge", 2, 0, 4)
	s.add("small", 3, 0, 1)
	got = drive(t, s)
	if !reflect.DeepEqual(got, []string{"small"}) {
		t.Fatalf("decide() = %v, want [small]", got)
	}
	if s.entries["big"].state != schedRunning {
		t.Fatalf("equal-priority waiter preempted the running job")
	}
}

func TestSchedPriorityPreemptionOrderIsDeterministic(t *testing.T) {
	// Fixed submission sequence; the preemption victims and their order must
	// be reproducible: lowest priority first, newest submission first within
	// a priority level.
	s := newSched(4, 4)
	s.add("low-old", 1, -1, 2)
	s.add("low-new", 2, -1, 2)
	if got := drive(t, s); !reflect.DeepEqual(got, []string{"low-old", "low-new"}) {
		t.Fatalf("setup decide() = %v", got)
	}
	s.add("urgent", 3, 9, 3)
	if got := drive(t, s); got != nil {
		t.Fatalf("urgent started before slots freed: %v", got)
	}
	// Both low jobs must be stopping (3 slots needed, each frees only 2),
	// and low-new (newest) was chosen first — visible once low-new alone
	// has freed its slots but urgent still cannot start.
	if s.entries["low-new"].state != schedStopping || s.entries["low-old"].state != schedStopping {
		t.Fatalf("victims = (%v, %v), want both stopping",
			s.entries["low-new"].state, s.entries["low-old"].state)
	}
	// Victims reach their boundaries and requeue; urgent takes the pool.
	if !s.onBoundary("low-new") || !s.onBoundary("low-old") {
		t.Fatalf("stopping jobs did not stop at their boundary")
	}
	s.requeue("low-new")
	s.requeue("low-old")
	// urgent (3 slots) starts; the requeued low jobs (2 each) cannot fit in
	// the remaining slot and must not re-preempt it.
	if got := drive(t, s); !reflect.DeepEqual(got, []string{"urgent"}) {
		t.Fatalf("post-preemption decide() = %v, want [urgent]", got)
	}
	if s.entries["urgent"].state != schedRunning {
		t.Fatalf("urgent not running after preemption completed")
	}
}

func TestSchedPreemptionIsStrictPriorityOnly(t *testing.T) {
	s := newSched(2, 4)
	s.add("a", 1, 0, 2)
	drive(t, s)
	s.add("b", 2, 0, 2) // equal priority: must wait for the quantum, not preempt
	if got := drive(t, s); got != nil {
		t.Fatalf("equal-priority waiter started %v via preemption", got)
	}
	if s.entries["a"].state != schedRunning {
		t.Fatalf("equal-priority waiter preempted a")
	}
}

func TestSchedFairShareYieldAfterQuantum(t *testing.T) {
	s := newSched(2, 3)
	s.add("a", 1, 0, 2)
	drive(t, s)
	s.add("b", 2, 0, 2)
	// a runs its full lease untouched, then must yield to its peer.
	for i := 0; i < 2; i++ {
		if s.onBoundary("a") {
			t.Fatalf("a stopped at boundary %d, before its quantum of 3", i+1)
		}
	}
	if !s.onBoundary("a") {
		t.Fatalf("a did not yield at its quantum boundary with a peer waiting")
	}
	s.requeue("a")
	if got := drive(t, s); !reflect.DeepEqual(got, []string{"b"}) {
		t.Fatalf("decide() after yield = %v, want [b]", got)
	}
	// Round-robin: when b's lease expires, a (1 pass) is waiting and b
	// yields back.
	for i := 0; i < 2; i++ {
		if s.onBoundary("b") {
			t.Fatalf("b stopped early at boundary %d", i+1)
		}
	}
	if !s.onBoundary("b") {
		t.Fatalf("b did not yield back to a")
	}
	s.requeue("b")
	if got := drive(t, s); !reflect.DeepEqual(got, []string{"a"}) {
		t.Fatalf("decide() = %v, want [a] (round-robin)", got)
	}
}

func TestSchedNoYieldWithoutEligibleWaiter(t *testing.T) {
	s := newSched(2, 2)
	s.add("a", 1, 5, 2)
	drive(t, s)
	s.add("low", 2, 0, 2) // strictly lower priority: never worth yielding to
	for i := 0; i < 10; i++ {
		if s.onBoundary("a") {
			t.Fatalf("high-priority job yielded to a lower-priority waiter at boundary %d", i+1)
		}
	}
	// And with nothing waiting at all, leases renew forever.
	s.remove("low")
	for i := 0; i < 10; i++ {
		if s.onBoundary("a") {
			t.Fatalf("job yielded with an empty queue")
		}
	}
}

func TestSchedBudgetsNeverExceedCapacity(t *testing.T) {
	// Deterministic stress: a fixed interleaving of submissions, boundaries
	// and requeues must keep used() within capacity at every step.
	s := newSched(3, 2)
	check := func(step string) {
		if u := s.used(); u > s.capacity {
			t.Fatalf("%s: used %d > capacity %d", step, u, s.capacity)
		}
	}
	ids := []string{"a", "b", "c", "d", "e"}
	for i, id := range ids {
		s.add(id, i+1, i%2, 1+i%3) // budgets 1,2,3,1,2; priorities alternate
		drive(t, s)
		check("add " + id)
	}
	for round := 0; round < 6; round++ {
		for _, id := range ids {
			if !s.has(id) {
				continue
			}
			if s.entries[id].state != schedWaiting && s.onBoundary(id) {
				s.requeue(id)
			}
			drive(t, s)
			check(id)
		}
	}
	// Draining jobs frees their slots for the rest.
	s.remove("c")
	s.remove("e")
	drive(t, s)
	check("drain")
}

func TestSchedBudgetClampedToCapacity(t *testing.T) {
	s := newSched(2, 4)
	s.add("wide", 1, 0, 99)
	if got := drive(t, s); !reflect.DeepEqual(got, []string{"wide"}) {
		t.Fatalf("over-budget job never admitted: %v", got)
	}
	if usedSlots(s) != 2 {
		t.Fatalf("used = %d, want clamp to capacity 2", usedSlots(s))
	}
}

func TestSchedRemoveReleasesSlots(t *testing.T) {
	s := newSched(2, 4)
	s.add("a", 1, 0, 2)
	drive(t, s)
	s.add("b", 2, 0, 2)
	if got := drive(t, s); got != nil {
		t.Fatalf("b started while a held the pool: %v", got)
	}
	s.remove("a") // cancelled mid-run: slots come back immediately
	if got := drive(t, s); !reflect.DeepEqual(got, []string{"b"}) {
		t.Fatalf("decide() after remove = %v, want [b]", got)
	}
}

// TestSchedStopRacesLeaseExpiryOnSameBoundary pins the three-way collision
// the process-worker supervisor made easy to hit: a running job reaches a
// stage boundary at the exact moment its fair-share lease expires, a
// priority preemption has already marked it stopping, and an explicit pause
// lands on top. The stop decision must be idempotent (every onBoundary
// call answers "stop", none of them double-counts the lease), the job's
// slots must stay booked until it actually stops, and a single requeue must
// restore a clean waiting entry.
func TestSchedStopRacesLeaseExpiryOnSameBoundary(t *testing.T) {
	s := newSched(2, 1) // quantum 1: the lease expires at every boundary
	s.add("a", 1, 0, 2)
	if got := drive(t, s); !reflect.DeepEqual(got, []string{"a"}) {
		t.Fatalf("decide() = %v", got)
	}
	// A higher-priority waiter preempts "a"...
	s.add("hi", 2, 5, 2)
	if got := drive(t, s); got != nil {
		t.Fatalf("decide started %v before the victim stopped", got)
	}
	if s.entries["a"].state != schedStopping {
		t.Fatal("preemption never marked the victim")
	}
	// ...and a pause request arrives for the same job before its boundary.
	s.stop("a")
	if got := s.stopping(); !reflect.DeepEqual(got, []string{"a"}) {
		t.Fatalf("stopping() = %v, want [a]", got)
	}
	// The boundary where preemption, pause and lease expiry all land: stop,
	// decided once, reported consistently on every (racing) query.
	for i := 0; i < 2; i++ {
		if !s.onBoundary("a") {
			t.Fatalf("onBoundary call %d lost the stop decision", i+1)
		}
	}
	if s.entries["a"].boundaries != 0 {
		t.Fatal("a stopping job's boundary crossed counted against its lease")
	}
	// Until the worker really checkpoints and stops, the slots stay booked.
	if got := drive(t, s); got != nil {
		t.Fatalf("decide double-booked promised slots: %v", got)
	}
	// One requeue resolves the race: "a" waits cleanly, "hi" takes the pool.
	s.requeue("a")
	if got := drive(t, s); !reflect.DeepEqual(got, []string{"hi"}) {
		t.Fatalf("decide() = %v, want [hi]", got)
	}
	e := s.entries["a"]
	if e.state != schedWaiting || e.boundaries != 0 || e.passes != 1 {
		t.Fatalf("requeued entry = %+v, want clean waiting with one pass", e)
	}
	// The lease machinery still works after the race: once "hi" finishes,
	// "a" runs again and yields at its first boundary only to a real waiter.
	s.remove("hi")
	if got := drive(t, s); !reflect.DeepEqual(got, []string{"a"}) {
		t.Fatalf("decide() = %v, want [a]", got)
	}
	if s.onBoundary("a") {
		t.Fatal("lease-expiry stop fired with no eligible waiter")
	}
}
