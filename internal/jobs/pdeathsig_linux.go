//go:build linux

package jobs

import (
	"os/exec"
	"syscall"
)

// setPdeathsig makes the kernel SIGKILL a worker whose parent thread dies —
// a second line of defense behind the worker's stdin-EOF orphan watch, so a
// SIGKILLed daemon cannot leave placements running unsupervised.
func setPdeathsig(cmd *exec.Cmd) {
	cmd.SysProcAttr = &syscall.SysProcAttr{Pdeathsig: syscall.SIGKILL}
}
