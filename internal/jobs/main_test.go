package jobs

import (
	"os"
	"testing"
	"time"
)

// TestMain doubles the test binary as the worker executable: when the
// supervisor launches it with JOBS_WORKER_PROC=1 it runs RunWorker instead
// of the test framework — the same self-exec trick cmd/placed plays with its
// hidden -worker mode, so the tests exercise the real process-isolation
// machinery (pipes, signals, exit codes) without needing a prebuilt binary.
func TestMain(m *testing.M) {
	if os.Getenv("JOBS_WORKER_PROC") == "1" {
		os.Exit(RunWorker(os.Args[1:]))
	}
	os.Exit(m.Run())
}

// workerConfig fills cfg with the self-exec worker command and fast
// supervision timings suitable for tests.
func workerConfig(t *testing.T, cfg Config) Config {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatalf("locate test binary: %v", err)
	}
	cfg.WorkerCommand = []string{exe}
	cfg.WorkerEnv = []string{"JOBS_WORKER_PROC=1"}
	if cfg.BackoffBase == 0 {
		cfg.BackoffBase = time.Millisecond
	}
	if cfg.HeartbeatEvery == 0 {
		cfg.HeartbeatEvery = 5 * time.Millisecond
	}
	return cfg
}
