package jobs

import (
	"errors"
	"fmt"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/testutil"
)

// statValue digs one metric out of a Stats snapshot.
func statValue(t *testing.T, m *Manager, name string) float64 {
	t.Helper()
	for _, s := range m.Stats() {
		if s.Name == name {
			return s.Value
		}
	}
	t.Fatalf("metric %q missing from Stats()", name)
	return 0
}

// TestInjectedCrashResumeIsByteExact is the tentpole contract, driven
// deterministically: the worker is armed to die abruptly (os.Exit with no
// flush — the in-process stand-in for kill -9) at two stage boundaries. The
// supervisor must restart it from the last CRC-verified checkpoint each
// time, and the final placement and canonical trace must be byte-identical
// to an uninterrupted plain run — at every worker-budget setting.
func TestInjectedCrashResumeIsByteExact(t *testing.T) {
	for _, workers := range []int{1, 4, 16} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			m, err := Open(workerConfig(t, Config{
				Dir:        t.TempDir(),
				Capacity:   16,
				FaultSpecs: []string{"worker_crash:1", "worker_crash:3"},
				FaultSeed:  1,
			}))
			if err != nil {
				t.Fatal(err)
			}
			defer m.Close()
			spec := fastSpec()
			spec.Workers = workers
			id, err := m.Submit(spec)
			if err != nil {
				t.Fatal(err)
			}
			v := waitState(t, m, id, StateDone)
			if v.Restarts != 2 {
				t.Errorf("job survived %d restarts, want 2 (one per armed crash)", v.Restarts)
			}
			assertJobMatchesReference(t, m, id)
			if got := statValue(t, m, "supervise.restarts"); got != 2 {
				t.Errorf("supervise.restarts = %v, want 2", got)
			}
		})
	}
}

// TestKill9IsByteExactAndIsolated delivers real SIGKILLs — no injection, no
// cooperation from the victim — to one job's workers, twice, while an
// unrelated job runs alongside it. The killed job must auto-resume from its
// last checkpoint and still match the plain run byte-for-byte; the
// bystander must be untouched (one segment, no restarts) and match too.
func TestKill9IsByteExactAndIsolated(t *testing.T) {
	base := testutil.GoroutineBaseline()
	m, err := Open(workerConfig(t, Config{Dir: t.TempDir(), Capacity: 2}))
	if err != nil {
		t.Fatal(err)
	}
	victim, err := m.Submit(fastSpec())
	if err != nil {
		t.Fatal(err)
	}
	bystander, err := m.Submit(fastSpec())
	if err != nil {
		t.Fatal(err)
	}

	// Kill the victim's live worker each time a new one appears, up to two
	// kills. The job may outrun the second kill on a fast machine; assert on
	// the kills that actually landed.
	kills := 0
	lastPID := 0
	deadline := time.Now().Add(60 * time.Second)
	for kills < 2 && time.Now().Before(deadline) {
		v, err := m.Get(victim)
		if err != nil {
			t.Fatal(err)
		}
		if v.State.Terminal() {
			break
		}
		if v.WorkerPID != 0 && v.WorkerPID != lastPID {
			lastPID = v.WorkerPID
			if syscall.Kill(v.WorkerPID, syscall.SIGKILL) == nil {
				kills++
			}
		}
		time.Sleep(time.Millisecond)
	}
	if kills == 0 {
		t.Fatal("never caught a worker PID to kill")
	}

	v := waitState(t, m, victim, StateDone)
	if v.Restarts != kills {
		t.Errorf("victim restarted %d times after %d kills", v.Restarts, kills)
	}
	assertJobMatchesReference(t, m, victim)

	b := waitState(t, m, bystander, StateDone)
	if b.Restarts != 0 || b.Segments != 1 {
		t.Errorf("bystander perturbed: %d restarts, %d segments (want 0 and 1)",
			b.Restarts, b.Segments)
	}
	assertJobMatchesReference(t, m, bystander)
	m.Close()
	testutil.AssertNoGoroutineLeak(t, base)
}

// TestStalledWorkerIsKilledAndResumed wedges the worker (it stops
// heartbeating and blocks forever at a boundary), so the exit path never
// runs: only the supervisor's stall detector can reap it. The job must
// still finish byte-exact.
func TestStalledWorkerIsKilledAndResumed(t *testing.T) {
	m, err := Open(workerConfig(t, Config{
		Dir: t.TempDir(),
		// Generous relative to the 5ms test heartbeat: a healthy-but-slow
		// worker (race detector, loaded CI) must never be declared stalled.
		StallTimeout: 2 * time.Second,
		FaultSpecs:   []string{"worker_stall:2"},
		FaultSeed:    1,
	}))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	id, err := m.Submit(fastSpec())
	if err != nil {
		t.Fatal(err)
	}
	v := waitState(t, m, id, StateDone)
	if v.Restarts != 1 {
		t.Errorf("stalled job restarted %d times, want 1", v.Restarts)
	}
	assertJobMatchesReference(t, m, id)
	if got := statValue(t, m, "supervise.stalls"); got != 1 {
		t.Errorf("supervise.stalls = %v, want 1", got)
	}
}

// TestPoisonedJobIsQuarantined arms a crash at every early boundary so the
// job keeps killing its workers; once the retry budget is spent the
// supervisor must quarantine it as failed(poisoned) instead of restarting
// forever.
func TestPoisonedJobIsQuarantined(t *testing.T) {
	m, err := Open(workerConfig(t, Config{
		Dir:         t.TempDir(),
		RetryBudget: 1,
		FaultSpecs:  []string{"worker_crash:0", "worker_crash:1", "worker_crash:2"},
		FaultSeed:   1,
	}))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	id, err := m.Submit(fastSpec())
	if err != nil {
		t.Fatal(err)
	}
	v := waitState(t, m, id, StateFailed)
	if !v.Poisoned {
		t.Errorf("failed job not marked poisoned: %+v", v)
	}
	if !strings.Contains(v.Error, "poisoned") {
		t.Errorf("error %q does not name the quarantine", v.Error)
	}
	if v.Restarts != 2 {
		t.Errorf("restarts = %d, want 2 (budget 1 + the poisoning crash)", v.Restarts)
	}
	if got := statValue(t, m, "supervise.quarantines"); got != 1 {
		t.Errorf("supervise.quarantines = %v, want 1", got)
	}
}

// TestAdmissionShedsWhenQueueFull pins the queue-cap path: with one slot
// busy and the queue at its cap, Submit must shed with ErrOverloaded (not
// block, not grow the queue) and /readyz must report not-ready.
func TestAdmissionShedsWhenQueueFull(t *testing.T) {
	m, err := Open(workerConfig(t, Config{Dir: t.TempDir(), Capacity: 1, MaxQueued: 1}))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if ok, _ := m.Ready(); !ok {
		t.Fatal("fresh manager not ready")
	}
	if _, err := m.Submit(fastSpec()); err != nil { // runs immediately
		t.Fatal(err)
	}
	if _, err := m.Submit(fastSpec()); err != nil { // fills the queue
		t.Fatal(err)
	}
	_, err = m.Submit(fastSpec())
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("over-cap submit = %v, want ErrOverloaded", err)
	}
	if ok, reason := m.Ready(); ok || !strings.Contains(reason, "overloaded") {
		t.Errorf("Ready() = %v %q with a full queue", ok, reason)
	}
	if got := statValue(t, m, "supervise.shed_requests"); got != 1 {
		t.Errorf("supervise.shed_requests = %v, want 1", got)
	}
}

// TestStateDirWriteFailureIsTyped injects a disk fault under the durability
// path: Submit must surface it as ErrStateDir (the HTTP layer's 503), and
// the failed job must not linger half-registered.
func TestStateDirWriteFailureIsTyped(t *testing.T) {
	m, err := Open(workerConfig(t, Config{Dir: t.TempDir()}))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	injectWriteErr = func(path string) error {
		if strings.HasSuffix(path, "job.json") {
			return errors.New("injected: no space left on device")
		}
		return nil
	}
	defer func() { injectWriteErr = nil }()
	_, err = m.Submit(fastSpec())
	if !errors.Is(err, ErrStateDir) {
		t.Fatalf("submit with a sick state dir = %v, want ErrStateDir", err)
	}
	injectWriteErr = nil
	// The state dir healed; the manager must accept work again.
	id, err := m.Submit(fastSpec())
	if err != nil {
		t.Fatalf("submit after recovery: %v", err)
	}
	waitState(t, m, id, StateDone)
	assertJobMatchesReference(t, m, id)
}
