package stats

import (
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Errorf("Mean(nil) != 0")
	}
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Errorf("Mean = %v", got)
	}
}

func TestGeoMean(t *testing.T) {
	if _, err := GeoMean(nil); err == nil {
		t.Errorf("empty GeoMean accepted")
	}
	if _, err := GeoMean([]float64{1, 0}); err == nil {
		t.Errorf("zero entry accepted")
	}
	got, err := GeoMean([]float64{1, 4})
	if err != nil || math.Abs(got-2) > 1e-12 {
		t.Errorf("GeoMean(1,4) = %v, %v", got, err)
	}
	// Identity: geomean of identical values is the value.
	got, _ = GeoMean([]float64{7, 7, 7})
	if math.Abs(got-7) > 1e-12 {
		t.Errorf("GeoMean(7,7,7) = %v", got)
	}
}

func TestPercentileBasics(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	if got := Percentile(xs, 0); got != 1 {
		t.Errorf("P0 = %v", got)
	}
	if got := Percentile(xs, 100); got != 5 {
		t.Errorf("P100 = %v", got)
	}
	if got := Percentile(xs, 50); got != 3 {
		t.Errorf("P50 = %v", got)
	}
	if got := Percentile(xs, 25); got != 2 {
		t.Errorf("P25 = %v", got)
	}
	// Interpolation between order statistics.
	if got := Percentile([]float64{0, 10}, 50); got != 5 {
		t.Errorf("interpolated P50 = %v", got)
	}
	if Percentile(nil, 50) != 0 {
		t.Errorf("empty percentile != 0")
	}
	// Input must not be mutated.
	if xs[0] != 5 {
		t.Errorf("Percentile mutated its input")
	}
}

func TestPercentileMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		xs := make([]float64, 1+rng.Intn(50))
		for i := range xs {
			xs[i] = rng.NormFloat64() * 100
		}
		prev := math.Inf(-1)
		for p := 0.0; p <= 100; p += 7 {
			v := Percentile(xs, p)
			if v < prev-1e-9 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPercentileBoundsProperty(t *testing.T) {
	f := func(seed int64, p float64) bool {
		if math.IsNaN(p) || math.IsInf(p, 0) {
			return true
		}
		p = math.Mod(math.Abs(p), 100)
		rng := rand.New(rand.NewSource(seed))
		xs := make([]float64, 1+rng.Intn(30))
		for i := range xs {
			xs[i] = rng.Float64() * 10
		}
		v := Percentile(xs, p)
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		return v >= sorted[0]-1e-9 && v <= sorted[len(sorted)-1]+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestMax(t *testing.T) {
	if Max(nil) != 0 {
		t.Errorf("Max(nil) != 0")
	}
	if got := Max([]float64{-3, -1, -2}); got != -1 {
		t.Errorf("Max = %v", got)
	}
}

func TestSummarize(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	s := Summarize(xs)
	if s.N != 10 || s.Mean != 5.5 || s.Max != 10 {
		t.Errorf("summary %+v", s)
	}
	if s.P50 != 5.5 {
		t.Errorf("P50 = %v", s.P50)
	}
	str := s.String()
	for _, want := range []string{"n=10", "p50", "max"} {
		if !strings.Contains(str, want) {
			t.Errorf("String() missing %q: %s", want, str)
		}
	}
}

func TestGeoMeanAMGMProperty(t *testing.T) {
	// Geometric mean never exceeds arithmetic mean (AM–GM inequality).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		xs := make([]float64, 1+rng.Intn(20))
		for i := range xs {
			xs[i] = 0.1 + rng.Float64()*100
		}
		gm, err := GeoMean(xs)
		if err != nil {
			return false
		}
		return gm <= Mean(xs)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
