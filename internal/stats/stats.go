// Package stats provides the small numeric summaries the calibration and
// reporting tools use: percentiles, means, geometric means and histogram
// summaries of metric slices.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// GeoMean returns the geometric mean of xs; all entries must be positive.
// It returns an error on empty input or non-positive entries.
func GeoMean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, fmt.Errorf("stats: GeoMean of empty slice")
	}
	var logSum float64
	for _, x := range xs {
		if x <= 0 {
			return 0, fmt.Errorf("stats: GeoMean requires positive values, got %v", x)
		}
		logSum += math.Log(x)
	}
	return math.Exp(logSum / float64(len(xs))), nil
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) of xs using linear
// interpolation between order statistics. Empty input returns 0.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	t := rank - float64(lo)
	return sorted[lo]*(1-t) + sorted[hi]*t
}

// Max returns the maximum of xs (0 for empty input).
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Summary is a five-number-style description of a metric slice.
type Summary struct {
	N                  int
	Mean               float64
	P50, P90, P99, Max float64
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) Summary {
	return Summary{
		N:    len(xs),
		Mean: Mean(xs),
		P50:  Percentile(xs, 50),
		P90:  Percentile(xs, 90),
		P99:  Percentile(xs, 99),
		Max:  Max(xs),
	}
}

func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.3f p50=%.3f p90=%.3f p99=%.3f max=%.3f",
		s.N, s.Mean, s.P50, s.P90, s.P99, s.Max)
}
