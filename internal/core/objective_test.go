package core

import (
	"math"
	"testing"

	"repro/internal/congestion"
	"repro/internal/density"
	"repro/internal/route"
	"repro/internal/synth"
	"repro/internal/wirelength"
)

func newTestObjective(t *testing.T, withCong bool) (*objective, *density.Model) {
	t.Helper()
	d := synth.MustGenerate("tiny_hot")
	dens := density.New(d, 32)
	wl := wirelength.New(d, dens.BinW())
	var cong *congestion.Model
	if withCong {
		grid := route.NewGrid(d, 32)
		cong = congestion.New(d, grid)
		cong.Update(route.NewRouter(d, grid).Route())
	}
	return newObjective(d, wl, dens, cong), dens
}

func TestGatherScatterRoundTrip(t *testing.T) {
	obj, _ := newTestObjective(t, false)
	x := make([]float64, obj.dim())
	obj.gather(x)
	orig := append([]float64(nil), x...)
	// Perturb and restore.
	for i := range x {
		x[i] += float64(i%7) - 3
	}
	obj.scatter(x)
	obj.gather(x)
	for i := range x {
		if math.Abs(x[i]-(orig[i]+float64(i%7)-3)) > 1e-12 {
			t.Fatalf("scatter/gather mismatch at %d", i)
		}
	}
	obj.scatter(orig)
}

func TestObjectiveDimCoversCellsAndFillers(t *testing.T) {
	obj, dens := newTestObjective(t, false)
	want := 2 * (len(obj.movable) + dens.NumFillers())
	if obj.dim() != want {
		t.Errorf("dim = %d, want %d", obj.dim(), want)
	}
}

func TestEvalInitializesLambda1(t *testing.T) {
	obj, _ := newTestObjective(t, false)
	if obj.lambda1 != 0 {
		t.Fatalf("lambda1 not zero before first eval")
	}
	x := make([]float64, obj.dim())
	obj.gather(x)
	grad := make([]float64, obj.dim())
	val := obj.Eval(x, grad)
	if obj.lambda1 <= 0 {
		t.Errorf("lambda1 = %v after first eval, want positive", obj.lambda1)
	}
	if math.IsNaN(val) || val <= 0 {
		t.Errorf("objective value %v", val)
	}
	nonzero := false
	for _, g := range grad {
		if g != 0 {
			nonzero = true
			break
		}
	}
	if !nonzero {
		t.Errorf("gradient identically zero")
	}
}

func TestEvalWithCongestionTermChangesGradient(t *testing.T) {
	obj, _ := newTestObjective(t, true)
	x := make([]float64, obj.dim())
	obj.gather(x)
	g1 := make([]float64, obj.dim())
	obj.useCong = false
	obj.Eval(x, g1)
	g2 := make([]float64, obj.dim())
	obj.useCong = true
	obj.Eval(x, g2)
	if obj.lambda2 <= 0 {
		t.Skip("no congestion gradient on this instance")
	}
	same := true
	for i := range g1 {
		if math.Abs(g1[i]-g2[i]) > 1e-12 {
			same = false
			break
		}
	}
	if same {
		t.Errorf("congestion term did not change the gradient despite λ2=%v", obj.lambda2)
	}
}

func TestFixedLambda2Override(t *testing.T) {
	obj, _ := newTestObjective(t, true)
	obj.fixedLambda2 = 3.5
	obj.useCong = true
	x := make([]float64, obj.dim())
	obj.gather(x)
	grad := make([]float64, obj.dim())
	obj.Eval(x, grad)
	if obj.lambda2 != 3.5 {
		t.Errorf("lambda2 = %v, want fixed 3.5", obj.lambda2)
	}
}

func TestPreconditionPositiveAndFinite(t *testing.T) {
	obj, _ := newTestObjective(t, false)
	x := make([]float64, obj.dim())
	obj.gather(x)
	grad := make([]float64, obj.dim())
	obj.Eval(x, grad)
	before := append([]float64(nil), grad...)
	obj.Precondition(grad)
	for i := range grad {
		if math.IsNaN(grad[i]) || math.IsInf(grad[i], 0) {
			t.Fatalf("preconditioned gradient not finite at %d", i)
		}
		// Preconditioning divides by a positive scalar: sign preserved.
		if before[i] != 0 && math.Signbit(grad[i]) != math.Signbit(before[i]) {
			t.Fatalf("preconditioning flipped sign at %d", i)
		}
	}
}

func TestClampKeepsInsideDie(t *testing.T) {
	obj, _ := newTestObjective(t, false)
	x := make([]float64, obj.dim())
	for i := range x {
		if i%2 == 0 {
			x[i] = -1e9
		} else {
			x[i] = 1e9
		}
	}
	obj.Clamp(x)
	die := obj.d.Die
	for k := range obj.movable {
		if x[2*k] < die.Lo.X || x[2*k+1] > die.Hi.Y {
			t.Fatalf("cell %d not clamped: (%v, %v)", k, x[2*k], x[2*k+1])
		}
	}
}

func TestSpreadInitialCentersCells(t *testing.T) {
	d := synth.MustGenerate("tiny_open")
	spreadInitial(d)
	cx, cy := d.Die.Center().X, d.Die.Center().Y
	for i := range d.Cells {
		c := &d.Cells[i]
		if !c.Movable() {
			continue
		}
		if math.Abs(c.X-cx) > 0.2*d.Die.W() || math.Abs(c.Y-cy) > 0.2*d.Die.H() {
			t.Fatalf("cell %d not near center: (%v, %v)", i, c.X, c.Y)
		}
	}
}

func TestUnknownInflationSchemeErrors(t *testing.T) {
	d := synth.MustGenerate("tiny_hot")
	opt := fastOpts(ModeOurs)
	opt.Tech.InflationScheme = "quantum"
	if _, err := Place(d, opt); err == nil {
		t.Errorf("unknown inflation scheme accepted")
	}
}

func TestPresentOnlySchemeRuns(t *testing.T) {
	d := synth.MustGenerate("tiny_hot")
	opt := fastOpts(ModeOurs)
	opt.Tech.InflationScheme = "present"
	res, err := Place(d, opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.RouteIters == 0 {
		t.Errorf("present-only run did no routability iterations")
	}
}
