package core

import (
	"bytes"
	"os"
	"testing"
)

func BenchmarkReadSeedCheckpoint(b *testing.B) {
	raw, err := os.ReadFile("testdata/seed.ckpt")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := readCheckpoint(bytes.NewReader(raw)); err != nil {
			b.Fatal(err)
		}
	}
}
