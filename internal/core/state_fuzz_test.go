package core

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/synth"
)

// seedCheckpoint runs a minimal placement to the cheapest scheduled stop and
// returns the raw bytes of a genuine checkpoint file.
func seedCheckpoint(tb testing.TB, dir string) []byte {
	tb.Helper()
	ckPath := filepath.Join(dir, "seed.ckpt")
	d := synth.MustGenerate("tiny_open")
	opt := fastOpts(ModeOurs)
	opt.Workers = 1
	opt.CheckpointPath = ckPath
	opt.CheckpointAfter = "setup"
	if _, err := Place(d, opt); !errors.Is(err, ErrCheckpointed) {
		tb.Fatalf("seed checkpoint run returned %v", err)
	}
	raw, err := os.ReadFile(ckPath)
	if err != nil {
		tb.Fatal(err)
	}
	return raw
}

// TestCheckpointMalformedInputs pins the typed-error contract of the reader:
// integrity failures (truncation, bit rot, garbage) are ErrCheckpointCorrupt
// — the class the .prev fallback retries — while semantic mismatches (wrong
// design) are plain errors, because retrying another file cannot fix them.
func TestCheckpointMalformedInputs(t *testing.T) {
	if testing.Short() {
		t.Skip("placement run for the seed checkpoint; skipped in -short")
	}
	raw := seedCheckpoint(t, t.TempDir())

	corrupt := map[string][]byte{
		"empty":             {},
		"no trailing nl":    []byte("nmckpt 2"),
		"header only":       []byte("nmckpt 2\n"),
		"truncated half":    raw[:len(raw)/2],
		"truncated minus 1": raw[:len(raw)-1],
		"garbage":           []byte("not a checkpoint\nat all\n"),
		"crc line garbage":  append(append([]byte{}, raw[:len(raw)-13]...), []byte("crc zzzzzzzz\n")...),
	}
	// One flipped byte in the middle of the body must trip the CRC.
	flipped := append([]byte(nil), raw...)
	flipped[len(flipped)/2] ^= 0x01
	corrupt["flipped byte"] = flipped

	for name, data := range corrupt {
		if _, err := readCheckpoint(bytes.NewReader(data)); !errors.Is(err, ErrCheckpointCorrupt) {
			t.Errorf("%s: got %v, want ErrCheckpointCorrupt", name, err)
		}
	}

	// Wrong design: fingerprint mismatch is NOT corruption.
	other := synth.MustGenerate("tiny_hot")
	_, err := ResumeContext(context.Background(), other, bytes.NewReader(raw), Options{Workers: 1})
	if err == nil {
		t.Error("resume on wrong design accepted")
	} else if errors.Is(err, ErrCheckpointCorrupt) {
		t.Errorf("design mismatch misclassified as corruption: %v", err)
	}

	// Unsupported version: CRC-valid but too new — also not corruption (a
	// .prev fallback must not mask a version skew). Rebuild the CRC so only
	// the version line is wrong.
	body := bytes.Replace(raw, []byte("nmckpt 2\n"), []byte("nmckpt 99\n"), 1)
	body = body[:bytes.LastIndex(body, []byte("crc "))]
	var vbuf bytes.Buffer
	vbuf.Write(body)
	fmt.Fprintf(&vbuf, "crc %08x\n", crc32.ChecksumIEEE(body))
	if _, err := readCheckpoint(bytes.NewReader(vbuf.Bytes())); err == nil {
		t.Error("version 99 checkpoint accepted")
	} else if errors.Is(err, ErrCheckpointCorrupt) {
		t.Errorf("unsupported version misclassified as corruption: %v", err)
	}
}

// FuzzReadCheckpoint: the parser must never panic on arbitrary bytes, and
// anything it accepts must survive a write→reparse round trip.
func FuzzReadCheckpoint(f *testing.F) {
	// Prefer the checked-in seed: every fuzz worker process replays this
	// setup, and generating a checkpoint means running a placement.
	if raw, err := os.ReadFile(filepath.Join("testdata", "seed.ckpt")); err == nil {
		f.Add(raw)
	} else {
		f.Add(seedCheckpoint(f, f.TempDir()))
	}
	f.Add([]byte(""))
	f.Add([]byte("nmckpt 2\n"))
	f.Add([]byte("nmckpt 2\nend\ncrc 00000000\n"))
	f.Add([]byte("not a checkpoint\n"))
	f.Add([]byte("nmckpt 2\nvec u 3 0 1 2\nend\ncrc ffffffff\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		ck, err := readCheckpoint(bytes.NewReader(data))
		if err != nil {
			return // rejection (typed or not) is fine; panicking is not
		}
		var buf bytes.Buffer
		if err := writeCheckpoint(&buf, ck); err != nil {
			t.Fatalf("accepted checkpoint does not re-serialize: %v", err)
		}
		if _, err := readCheckpoint(bytes.NewReader(buf.Bytes())); err != nil {
			t.Fatalf("re-serialized checkpoint does not reparse: %v", err)
		}
	})
}
