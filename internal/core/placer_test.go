package core

import (
	"strings"
	"testing"

	"repro/internal/eval"
	"repro/internal/legalize"
	"repro/internal/synth"
)

// fastOpts returns options tuned for test speed on tiny designs.
func fastOpts(mode Mode) Options {
	return Options{
		Mode:              mode,
		Tech:              AllTechniques(),
		GridHint:          32,
		MaxWLIters:        120,
		MaxRouteIters:     6,
		StepsPerRouteIter: 8,
	}
}

func TestPlaceWirelengthMode(t *testing.T) {
	d := synth.MustGenerate("tiny_hot")
	res, err := Place(d, fastOpts(ModeWirelength))
	if err != nil {
		t.Fatal(err)
	}
	if res.WLIters == 0 {
		t.Errorf("no wirelength iterations ran")
	}
	if res.RouteIters != 0 {
		t.Errorf("wirelength mode ran routability iterations")
	}
	if err := legalize.CheckLegal(d); err != nil {
		t.Errorf("final placement not legal: %v", err)
	}
	if res.Metrics.DRWL <= 0 || res.Metrics.DRVias <= 0 {
		t.Errorf("missing metrics: %+v", res.Metrics)
	}
	if res.HPWLFinal <= 0 {
		t.Errorf("HPWL not recorded")
	}
}

func TestPlaceReducesHPWLFromScatter(t *testing.T) {
	d := synth.MustGenerate("tiny_open")
	before := d.HPWL() // scattered positions from the generator
	if _, err := Place(d, fastOpts(ModeWirelength)); err != nil {
		t.Fatal(err)
	}
	after := d.HPWL()
	if after >= before*0.8 {
		t.Errorf("placement barely improved HPWL: %v → %v", before, after)
	}
}

func TestPlaceOursRunsRoutabilityLoop(t *testing.T) {
	d := synth.MustGenerate("tiny_hot")
	var log strings.Builder
	opt := fastOpts(ModeOurs)
	opt.Log = &log
	res, err := Place(d, opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.RouteIters == 0 {
		t.Errorf("no routability iterations ran")
	}
	if len(res.CongestionHistory) == 0 {
		t.Errorf("no congestion history recorded")
	}
	if !strings.Contains(log.String(), "PG rails selected") {
		t.Errorf("DPA did not select rails; log:\n%s", log.String())
	}
	if err := legalize.CheckLegal(d); err != nil {
		t.Errorf("final placement not legal: %v", err)
	}
}

func TestPlaceDeterministic(t *testing.T) {
	run := func() *Result {
		d := synth.MustGenerate("tiny_hot")
		res, err := Place(d, fastOpts(ModeOurs))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Metrics.DRVs != b.Metrics.DRVs || a.Metrics.DRWL != b.Metrics.DRWL ||
		a.HPWLFinal != b.HPWLFinal {
		t.Errorf("placement not deterministic: %+v vs %+v", a.Metrics, b.Metrics)
	}
}

func TestModesProduceDifferentPlacements(t *testing.T) {
	hp := map[Mode]float64{}
	for _, m := range []Mode{ModeWirelength, ModeBaselineRoute, ModeOurs} {
		d := synth.MustGenerate("tiny_hot")
		res, err := Place(d, fastOpts(m))
		if err != nil {
			t.Fatal(err)
		}
		hp[m] = res.HPWLFinal
	}
	if hp[ModeWirelength] == hp[ModeOurs] && hp[ModeBaselineRoute] == hp[ModeOurs] {
		t.Errorf("all three modes produced identical HPWL %v — techniques inert", hp[ModeOurs])
	}
}

func TestSkipLegalizeLeavesGlobalPlacement(t *testing.T) {
	d := synth.MustGenerate("tiny_open")
	opt := fastOpts(ModeWirelength)
	opt.SkipLegalize = true
	res, err := Place(d, opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.HPWLLegalized != 0 {
		t.Errorf("legalized HPWL recorded despite SkipLegalize")
	}
	// Global placement generally does NOT satisfy row legality.
	if err := legalize.CheckLegal(d); err == nil {
		t.Logf("note: global placement happened to be legal (unusual but not wrong)")
	}
}

func TestAblationSwitchesChangeBehavior(t *testing.T) {
	run := func(tech Techniques) int {
		d := synth.MustGenerate("tiny_hot")
		opt := fastOpts(ModeOurs)
		opt.Tech = tech
		res, err := Place(d, opt)
		if err != nil {
			t.Fatal(err)
		}
		return res.Metrics.DRVs
	}
	full := run(AllTechniques())
	noDC := run(Techniques{MCI: true, DPA: true})
	midpoint := run(Techniques{MCI: true, DC: true, DPA: true, VirtualAtMidpoint: true})
	if full == noDC && full == midpoint {
		t.Errorf("ablation switches had no effect at all (DRVs %d everywhere)", full)
	}
}

func TestTable1HarnessRuns(t *testing.T) {
	rows, err := RunTable1([]string{"tiny_hot"}, 32, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows, want 3", len(rows))
	}
	ratios := AvgRatios(rows, "ours")
	if r, ok := ratios["ours"]; !ok || r.DRVs != 1.0 || r.DRWL != 1.0 {
		t.Errorf("reference ratios not 1.0: %+v", ratios["ours"])
	}
	var sb strings.Builder
	WriteTable(&sb, rows, []string{"xplace", "xplace-route", "ours"}, "ours")
	out := sb.String()
	for _, want := range []string{"Design", "tiny_hot", "Avg.Ratio", "xplace-route"} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q:\n%s", want, out)
		}
	}
}

func TestTable2HarnessRuns(t *testing.T) {
	rows, err := RunTable2([]string{"tiny_hot"}, 32, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("got %d rows, want 4", len(rows))
	}
	labels := map[string]bool{}
	for _, r := range rows {
		labels[r.Mode] = true
	}
	for _, cfg := range Table2Configs() {
		if !labels[cfg.Label] {
			t.Errorf("missing ablation row %q", cfg.Label)
		}
	}
}

func TestAvgRatiosSafeDivision(t *testing.T) {
	rows := []Row{
		{Design: "d", Mode: "ref", DRVs: 0, DRWL: 100, DRVias: 10, PT: 1, RT: 1},
		{Design: "d", Mode: "x", DRVs: 5, DRWL: 100, DRVias: 10, PT: 1, RT: 1},
	}
	ratios := AvgRatios(rows, "ref")
	if r := ratios["x"].DRVs; r != 2 {
		t.Errorf("zero-reference DRV ratio = %v, want capped 2", r)
	}
	if r := ratios["ref"].DRVs; r != 1 {
		t.Errorf("ref self-ratio = %v, want 1 (0/0 case)", r)
	}
}

func TestEvaluateConsistentWithPlaceMetrics(t *testing.T) {
	d := synth.MustGenerate("tiny_open")
	res, err := Place(d, fastOpts(ModeWirelength))
	if err != nil {
		t.Fatal(err)
	}
	re := eval.Evaluate(d, 32)
	if re.DRVs != res.Metrics.DRVs {
		t.Errorf("re-evaluation DRVs %d != placement-reported %d", re.DRVs, res.Metrics.DRVs)
	}
}

func TestModeString(t *testing.T) {
	if ModeWirelength.String() != "xplace" || ModeBaselineRoute.String() != "xplace-route" ||
		ModeOurs.String() != "ours" || Mode(99).String() != "unknown" {
		t.Errorf("mode strings wrong")
	}
}
