package core

// The stage-graph pipeline. Place used to be one monolithic function; it is
// now an explicit sequence of stages over a shared PlacementState:
//
//	setup → wirelength → routability → legalize → detailed → eval
//
// Each stage implements the Stage interface, mutates the PlacementState it
// is handed, and honours cooperative cancellation through its Context. The
// runner (runPipeline) owns the cursor that records how far the run has
// progressed, the span bookkeeping around stages, and the checkpoint
// machinery: after any stage — and after any individual route iteration —
// the complete mutable state can be serialized (see state.go) and a later
// process can resume it to a byte-identical final placement.
//
// Two kinds of checkpoint exist:
//
//   - Scheduled (Options.CheckpointAfter): the run stops at a pre-announced
//     point with ErrCheckpointed, leaving the telemetry stream un-flushed
//     and the open spans captured. A resumed run CONTINUES the trace: the
//     canonical (StripTimings) concatenation of the two halves is byte-
//     identical to an uninterrupted run's canonical trace.
//
//   - Cancellation (ctx cancelled or timed out): open spans are unwound
//     first so the interrupted trace is well-formed, then the checkpoint is
//     written. Resuming reproduces the uninterrupted run's final PLACEMENT
//     bit-for-bit (positions, CongestionHistory), but not its trace — the
//     cancellation point is not deterministic, so the extra span events
//     around it cannot be.

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"repro/internal/congestion"
	"repro/internal/density"
	"repro/internal/detailed"
	"repro/internal/eval"
	"repro/internal/inflation"
	"repro/internal/legalize"
	"repro/internal/nesterov"
	"repro/internal/netlist"
	"repro/internal/parallel"
	"repro/internal/pgrail"
	"repro/internal/predict"
	"repro/internal/route"
	"repro/internal/telemetry"
	"repro/internal/wirelength"
)

// ErrCheckpointed is returned by PlaceContext/ResumeContext when the run
// stopped at the scheduled Options.CheckpointAfter point after writing its
// state to Options.CheckpointPath. It signals a successful pause, not a
// failure: the partial Result is valid as far as the run got, and resuming
// from the written checkpoint completes the run byte-identically.
var ErrCheckpointed = errors.New("core: run stopped at scheduled checkpoint")

// BoundaryAction is what Options.BoundaryHook tells the pipeline to do at a
// checkpoint boundary. See the field's documentation for the semantics.
type BoundaryAction int

const (
	// BoundaryContinue runs on without touching the checkpoint file.
	BoundaryContinue BoundaryAction = iota
	// BoundaryCheckpoint writes the state to Options.CheckpointPath and
	// continues — periodic persistence for crash migration.
	BoundaryCheckpoint
	// BoundaryStop writes the state and stops with ErrCheckpointed — the
	// cooperative pause/preemption point.
	BoundaryStop
)

// Stage is one step of the placement pipeline. Run mutates the shared
// PlacementState and returns nil on completion, a context error when
// cancelled (after bringing the design back to a consistent position
// state), or any other error on failure. Stages must end every span they
// start before returning an error, so the runner's unwind logic only deals
// with the spans it opened itself.
type Stage interface {
	Name() string
	Run(ctx context.Context, ps *PlacementState) error
}

// stageOrder is the fixed pipeline sequence; cursor.stage always holds one
// of these names, or cursorDone after the eval stage finished.
var stageOrder = []string{"setup", "wirelength", "routability", "legalize", "detailed", "eval"}

const cursorDone = "done"

func stageIndex(name string) int {
	for i, s := range stageOrder {
		if s == name {
			return i
		}
	}
	return len(stageOrder) // cursorDone sorts after every stage
}

// cursor pinpoints the pipeline position a checkpoint was taken at.
type cursor struct {
	// stage is the next stage to run (a finished stage advances the cursor
	// to its successor before any checkpoint can be written).
	stage string
	// iter is the next loop iteration within an iterative stage: the
	// wirelength step for "wirelength", the route iteration for
	// "routability". Zero elsewhere.
	iter int
	// step refines a routability iteration: -1 means iteration `iter` has
	// not begun; s ≥ 0 means its router call and model adaptation are
	// committed and s Nesterov steps have run.
	step int
}

// PlacementState is the complete mutable state of one placement run: the
// design being placed, the run's options and partial Result, the pipeline
// cursor, and the runtime models (density, wirelength, router, optimizer,
// …) the stages share. The serializable subset — everything needed to
// reconstruct the rest deterministically — is written by the checkpoint
// machinery in state.go; the model objects themselves are rebuilt, never
// serialized.
type PlacementState struct {
	D   *netlist.Design
	Opt Options
	Res *Result

	cur cursor

	// Telemetry plumbing. restored holds live handles for spans that were
	// open when a scheduled checkpoint was captured (outermost first); the
	// runner and the routability stage re-adopt them so the resumed trace
	// closes them under their original IDs.
	obs      *telemetry.Observer
	tr       *telemetry.Tracer
	root     *telemetry.Span
	restored []*telemetry.Span

	// Core runtime, built by buildRuntime (deterministically — independent
	// of current movable positions, which restore overwrites afterwards).
	dens       *density.Model
	wl         *wirelength.Model
	grid       *route.Grid
	cong       *congestion.Model
	obj        *objective
	optm       *nesterov.Optimizer
	rtr        *route.Router // constructed once, Reset per route iteration
	gamma0     float64
	routeStats parallel.Timing
	costStats  parallel.Timing // router cost-field build timing

	// Position-delta feed for the router's incremental decomposition: the
	// cell positions as of the previous route call and the per-cell moved
	// mask handed to the router (both reused each iteration).
	lastRoutedPos []float64
	movedMask     []bool

	// Learned congestion pre-oracle (Options.Predict): the feature planes
	// recomputed every fresh route iteration and the online ridge model
	// that gates router calls and seeds inflation between them. Both nil
	// when the predictor is off; orc's mutable state serializes through
	// the checkpoint (the predict record), feat is pure scratch.
	feat *route.FeatureMaps
	orc  *predict.Oracle

	// warmStarted marks that this level's phase 1 was seeded from the
	// coarse level's converged state (Options.MLWarmStart), which lowers
	// the early-stop iteration floor.
	warmStarted bool

	// Routability-loop runtime, built by the loop prologue on a fresh run
	// or by restore when resuming into the middle of the loop.
	loopReady   bool
	inf         inflation.Inflator
	bins        pgrail.BinGrid
	selected    []netlist.PGRail
	dynamicPG   bool
	useCongTerm bool
	congAt      []float64
	bestC       float64
	stall       int
	bestX       []float64 // placement with the lowest weighted congestion

	// Multilevel context (see multilevel.go): nil on a flat run. level is
	// the hierarchy level this state places (0 = the original design); ml
	// carries the cluster maps and the outer run identity shared by every
	// level of one multilevel run.
	level int
	ml    *mlRun

	// Guard layer (see guard.go): nil unless Options.Guard is enabled.
	grd *guardRuntime
	// ckptWrites counts checkpoint files written; it indexes the
	// checkpoint-corruption faults in writeCheckpointNow.
	ckptWrites int

	start time.Time
}

// Place runs the selected placer on the design IN PLACE (cell positions are
// overwritten) and returns the run report including post-route metrics.
// It is PlaceContext with a background context.
//
// Telemetry (Options.Observer) records the run as a span tree:
//
//	place
//	  setup
//	  phase1_wirelength                  (one "wl_iter" snapshot per step)
//	  phase2_routability
//	    route_iter ×N                    (one "route_iter" snapshot each)
//	      route > route.decompose, route.round ×R
//	      inflate · pg_density · congestion_update · nesterov
//	  legalize > legalize.sort, legalize.abacus
//	  detailed > detailed.pass ×P
//	eval
//	  route.decompose, route.round ×4, eval.score
//
// The "place" span closes exactly where Result.PlaceTime is measured and
// "eval" where Result.RouteTime is, so the trace accounts for the full
// reported runtime.
func Place(d *netlist.Design, opt Options) (*Result, error) {
	return PlaceContext(context.Background(), d, opt)
}

// PlaceContext is Place with cooperative cancellation and checkpointing.
// When ctx is cancelled or times out, the run stops within one Nesterov
// step or one router round, brings the design to a consistent position
// state, writes a checkpoint when Options.CheckpointPath is set, and
// returns the partial Result together with ctx.Err(). When
// Options.CheckpointAfter is set, the run stops at that point with
// ErrCheckpointed instead (see the package comments above on the two
// checkpoint kinds).
func PlaceContext(ctx context.Context, d *netlist.Design, opt Options) (*Result, error) {
	opt.setDefaults(len(d.Cells))
	if err := validateCheckpointOpts(&opt); err != nil {
		return nil, err
	}
	if err := opt.Guard.Validate(); err != nil {
		return nil, err
	}
	if err := validatePlaceable(d); err != nil {
		return nil, err
	}
	if opt.Levels > 1 {
		return placeMultilevel(ctx, d, opt)
	}
	ps := &PlacementState{
		D:   d,
		Opt: opt,
		Res: &Result{Mode: opt.Mode},
		cur: cursor{stage: "setup", step: -1},
		obs: opt.Observer,
	}
	if ps.obs != nil {
		ps.tr = ps.obs.Tracer
	}
	return runPipeline(ctx, ps)
}

// pt maps a span/snapshot/boundary-point name onto this state's hierarchy
// level: level 0 (and flat runs) use the bare name, coarse level k prefixes
// "L<k>/" — so traces, stage timings and checkpoint points of different
// levels never collide, and the flat pipeline's names are unchanged.
func (ps *PlacementState) pt(name string) string {
	if ps.level == 0 {
		return name
	}
	return fmt.Sprintf("L%d/%s", ps.level, name)
}

// startSpan opens a span under the state's level prefix.
func (ps *PlacementState) startSpan(name string) *telemetry.Span {
	return ps.obs.StartSpan(ps.pt(name))
}

// validateCheckpointOpts rejects malformed checkpoint requests up front so
// a long run cannot fail at its scheduled stop point.
func validateCheckpointOpts(opt *Options) error {
	if opt.CheckpointAfter == "" {
		return nil
	}
	if opt.CheckpointPath == "" {
		return fmt.Errorf("core: CheckpointAfter %q requires CheckpointPath", opt.CheckpointAfter)
	}
	spec := opt.CheckpointAfter
	// Multilevel boundary points carry an "L<k>/" level prefix
	// ("L2/wirelength", "L1/route_iter:0"); validate the bare point.
	if rest, ok := strings.CutPrefix(spec, "L"); ok {
		if lvl, point, found := strings.Cut(rest, "/"); found {
			if n, err := strconv.Atoi(lvl); err == nil && n >= 1 {
				spec = point
			}
		}
	}
	if k, ok := strings.CutPrefix(spec, "route_iter:"); ok {
		n, err := strconv.Atoi(k)
		if err != nil || n < 0 {
			return fmt.Errorf("core: bad CheckpointAfter route iteration %q", spec)
		}
		return nil
	}
	switch spec {
	case "setup", "wirelength", "routability", "legalize", "detailed":
		return nil
	}
	return fmt.Errorf("core: unknown CheckpointAfter point %q", opt.CheckpointAfter)
}

// runPipeline drives the stage sequence from ps.cur to completion.
func runPipeline(ctx context.Context, ps *PlacementState) (*Result, error) {
	ps.start = time.Now()
	stages := []Stage{
		setupStage{}, wirelengthStage{}, routabilityStage{},
		legalizeStage{}, detailedStage{}, evalStage{},
	}
	// The "place" root span covers setup through detailed (eval is timed
	// separately as Result.RouteTime). A run resumed past detailed has no
	// root span to reopen.
	if stageIndex(ps.cur.stage) <= stageIndex("detailed") {
		ps.root = ps.resumeSpanFor("place")
	}
	for _, st := range stages {
		if stageIndex(ps.cur.stage) > stageIndex(st.Name()) {
			continue // already done per the resumed cursor
		}
		// Label the stage for CPU/goroutine profiles: `go tool pprof`
		// -tagfocus=stage=<name> isolates one pipeline stage.
		var err error
		pprof.Do(ctx, pprof.Labels("stage", st.Name()), func(ctx context.Context) {
			err = st.Run(ctx, ps)
		})
		if err != nil {
			return ps.fail(err)
		}
		if err := ps.afterStage(st.Name()); err != nil {
			return ps.fail(err)
		}
	}
	// Coarse multilevel levels are inner phases of one run: the end-of-run
	// gauges and stage-timing collection belong to the finest level only.
	if ps.level == 0 {
		ps.finishTelemetry()
	}
	return ps.Res, nil
}

// afterStage advances the cursor past a finished stage, applies the
// stage-boundary bookkeeping the monolithic Place used to do inline, and
// fires the scheduled checkpoint when this boundary is the requested one.
func (ps *PlacementState) afterStage(name string) error {
	next := stageIndex(name) + 1
	if next < len(stageOrder) {
		ps.cur = cursor{stage: stageOrder[next], step: -1}
	} else {
		ps.cur = cursor{stage: cursorDone, step: -1}
	}
	switch name {
	case "routability":
		ps.Res.HPWLGlobal = ps.D.HPWL()
	case "detailed":
		ps.Res.HPWLFinal = ps.D.HPWL()
		ps.root.End()
		ps.root = nil
		ps.Res.PlaceTime = time.Since(ps.start)
	case "eval":
		return nil // terminal; no checkpoint point exists after eval
	}
	return ps.maybeCheckpoint(ps.pt(name))
}

// maybeCheckpoint writes the scheduled checkpoint and stops the run when
// the just-completed point matches Options.CheckpointAfter. It MUST be the
// last telemetry-visible action before the run stops: no event may be
// emitted between the state capture and the return, or the interrupted
// trace would diverge from the uninterrupted one.
func (ps *PlacementState) maybeCheckpoint(point string) error {
	if ps.Opt.CheckpointAfter != "" && ps.Opt.CheckpointAfter == point {
		if err := ps.writeCheckpointNow(); err != nil {
			return err
		}
		return ErrCheckpointed
	}
	// The supervisor hook sees every boundary the scheduled checkpoint could
	// name. Capture is read-only and emits no telemetry, so a mid-flight
	// checkpoint leaves the run — and its trace — untouched; a stop is
	// indistinguishable from a CheckpointAfter stop at this point.
	if ps.Opt.BoundaryHook != nil && ps.Opt.CheckpointPath != "" {
		switch ps.Opt.BoundaryHook(point) {
		case BoundaryCheckpoint:
			return ps.writeCheckpointNow()
		case BoundaryStop:
			if err := ps.writeCheckpointNow(); err != nil {
				return err
			}
			return ErrCheckpointed
		}
	}
	return nil
}

// fail is the runner's single error exit. Scheduled checkpoints pass
// through untouched (spans intentionally left open, partial Result
// returned). Cancellation unwinds the root span, writes a best-effort
// checkpoint, and returns the partial Result with the context error. Any
// other error closes the trace and fails the run.
func (ps *PlacementState) fail(err error) (*Result, error) {
	if errors.Is(err, ErrCheckpointed) {
		return ps.Res, err
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		ps.root.End()
		ps.root = nil
		ps.Res.PlaceTime = time.Since(ps.start)
		if ps.Opt.CheckpointPath != "" && !ps.Opt.DisableCancelCheckpoint {
			if werr := ps.writeCheckpointNow(); werr != nil {
				return ps.Res, fmt.Errorf("%w (and writing the checkpoint failed: %v)", err, werr)
			}
		}
		return ps.Res, err
	}
	ps.root.End()
	ps.root = nil
	return nil, err
}

// resumeSpanFor re-adopts the next restored open-span handle when its name
// matches (under the state's level prefix), so the resumed run closes it
// under its original span ID; otherwise it starts a fresh span.
func (ps *PlacementState) resumeSpanFor(name string) *telemetry.Span {
	name = ps.pt(name)
	if len(ps.restored) > 0 && ps.restored[0].Name() == name {
		sp := ps.restored[0]
		ps.restored = ps.restored[1:]
		return sp
	}
	return ps.obs.StartSpan(name)
}

// finishTelemetry emits the end-of-run gauges and collects the stage
// timings. The parallelism gauges are volatile (wall-clock ratios,
// excluded from canonical traces) and only meaningful when the GP runtime
// exists — a run resumed past global placement skips them.
func (ps *PlacementState) finishTelemetry() {
	obs := ps.obs
	if obs == nil {
		return
	}
	res := ps.Res
	obs.Gauge("place.wl_iters").Set(float64(res.WLIters))
	obs.Gauge("place.route_iters").Set(float64(res.RouteIters))
	obs.Gauge("place.final_overflow").Set(res.FinalOverflow)
	obs.Gauge("place.hpwl_final").Set(res.HPWLFinal)
	obs.Gauge("place.legalize_disp").Set(res.LegalizeDisp)
	obs.Gauge("eval.drwl").Set(res.Metrics.DRWL)
	obs.Gauge("eval.drvias").Set(float64(res.Metrics.DRVias))
	obs.Gauge("eval.drvs").Set(float64(res.Metrics.DRVs))
	// Parallelism gauges are volatile: wall-clock ratios that vary with
	// machine and load, excluded from canonical traces.
	obs.VolatileGauge("parallel.workers").Set(float64(parallel.Resolve(ps.Opt.Workers)))
	if ps.wl != nil {
		obs.VolatileGauge("parallel.wirelength.speedup").Set(ps.wl.Stats().Speedup())
	}
	if ps.dens != nil {
		obs.VolatileGauge("parallel.density.speedup").Set(ps.dens.Stats().Speedup())
		pstats := ps.dens.SolverStats()
		if ps.cong != nil {
			pstats.Add(ps.cong.SolverStats())
		}
		obs.VolatileGauge("parallel.poisson.speedup").Set(pstats.Speedup())
	}
	obs.VolatileGauge("parallel.route.speedup").Set(ps.routeStats.Speedup())
	obs.VolatileGauge("parallel.route.costfield").Set(ps.costStats.Speedup())
	res.StageTimings = obs.Tracer.StageTimings()
}

// buildRuntime constructs the shared placement models. Construction is
// deterministic and independent of the current movable-cell positions
// (density fillers are sprinkled over fixed-cell-free area only), so the
// same call serves both a fresh setup and a checkpoint restore — restore
// overwrites the position-dependent state afterwards.
func (ps *PlacementState) buildRuntime() error {
	d, opt := ps.D, ps.Opt
	dens := density.New(d, opt.GridHint)
	dens.Workers = opt.Workers
	ps.dens = dens
	ps.gamma0 = dens.BinW() * 0.5
	ps.wl = wirelength.New(d, ps.gamma0*10)
	ps.wl.Workers = opt.Workers
	ps.grid = route.NewGrid(d, opt.GridHint)
	if ps.grid.NX != dens.NX || ps.grid.NY != dens.NY {
		return fmt.Errorf("core: bin grid %dx%d and G-cell grid %dx%d differ",
			dens.NX, dens.NY, ps.grid.NX, ps.grid.NY)
	}

	if opt.Mode == ModeOurs && opt.Tech.DC {
		cong := congestion.New(d, ps.grid)
		cong.Workers = opt.Workers
		cong.VirtualAtMidpoint = opt.Tech.VirtualAtMidpoint
		if opt.Tech.CongestionThreshold > 0 {
			cong.UtilThreshold = opt.Tech.CongestionThreshold
		}
		ps.cong = cong
	}
	ps.useCongTerm = ps.cong != nil

	ps.obj = newObjective(d, ps.wl, dens, ps.cong)
	ps.obj.fixedLambda2 = opt.Tech.FixedLambda2

	x := make([]float64, ps.obj.dim())
	ps.obj.gather(x)
	ps.optm = nesterov.New(x, dens.BinW()*0.1)
	ps.optm.StepMax = dens.BinW() * 4
	ps.congAt = make([]float64, len(d.Cells))

	if err := ps.initGuard(); err != nil {
		return err
	}
	ps.wireInjector()

	if obs := ps.obs; obs != nil {
		obs.Gauge("design.cells").Set(float64(len(d.Cells)))
		obs.Gauge("design.nets").Set(float64(len(d.Nets)))
		obs.Gauge("design.grid").Set(float64(dens.NX))
		ps.obj.poissonSolves = obs.Counter("poisson.solves")
		evals := obs.Counter("objective.evals")
		stepHist := obs.Histogram("nesterov.step_size")
		ps.optm.OnStep = func(_ int, _, step float64) {
			evals.Inc()
			stepHist.Observe(step)
		}
	}
	return nil
}

// ---- Stages ----

// setupStage spreads the initial placement and builds the shared runtime.
type setupStage struct{}

func (setupStage) Name() string { return "setup" }

func (setupStage) Run(ctx context.Context, ps *PlacementState) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	sp := ps.startSpan("setup")
	// The coarsest level spreads from scratch; every finer multilevel level
	// starts from the interpolated coarse solution instead.
	if ps.ml == nil || ps.level == ps.ml.topLevel {
		spreadInitial(ps.D)
	}
	if err := ps.buildRuntime(); err != nil {
		sp.End()
		return err
	}
	sp.End()
	return nil
}

// wirelengthStage is phase 1: wirelength-driven electrostatic placement
// (the Xplace part of the flow). Cancellation is checked before every
// Nesterov step; the cursor records the step index so a resumed run
// continues the exact iteration sequence.
type wirelengthStage struct{}

func (wirelengthStage) Name() string { return "wirelength" }

func (wirelengthStage) Run(ctx context.Context, ps *PlacementState) error {
	opt, obs, res := &ps.Opt, ps.obs, ps.Res
	p1 := ps.startSpan("phase1_wirelength")
	// Multilevel warm start: a finer level seeds λ₁/γ from the coarse
	// level's converged phase-1 state instead of re-running the full ramp.
	// The boost folds into the lazy ePlace initialization, so a resume
	// whose λ₁ is already serialized (non-zero) must not re-apply it.
	minIters := 20
	if ps.ml != nil && opt.MLWarmStart && ps.level < ps.ml.topLevel && ps.ml.warmSet {
		ps.warmStarted = true
		minIters = 5
		if ps.obj.lambda1 == 0 {
			ps.obj.lambda1Boost = ps.ml.warmBoost
			ps.wl.UpdateGamma(ps.gamma0, ps.ml.warmOverflow)
			opt.logf("phase 1: warm start from coarse level (λ₁ boost %.4g, overflow seed %.3f)",
				ps.ml.warmBoost, ps.ml.warmOverflow)
		}
	}
	if ps.cur.iter == 0 {
		opt.logf("phase 1: wirelength-driven placement (grid %dx%d, %d fillers)",
			ps.dens.NX, ps.dens.NY, ps.dens.NumFillers())
	}
	for it := ps.cur.iter; it < opt.MaxWLIters; it++ {
		if err := ps.checkCancel(ctx); err != nil {
			ps.cur = cursor{stage: "wirelength", iter: it, step: -1}
			p1.End()
			return err
		}
		ps.obj.useCong = false
		_, step := ps.optm.Step(ps.obj)
		if retry, err := ps.guardAfterStep("wirelength"); err != nil {
			p1.End()
			return err
		} else if retry {
			it-- // redo this iteration from the rolled-back state
			continue
		}
		ps.obj.lambda1 *= lambda1Growth
		ps.wl.UpdateGamma(ps.gamma0, clamp01(ps.obj.lastOverflow))
		res.WLIters++
		ps.cur = cursor{stage: "wirelength", iter: it + 1, step: -1}
		if obs != nil {
			obs.Snapshot(ps.pt("wl_iter"), it,
				telemetry.F("wl", ps.obj.lastWL),
				telemetry.F("dens_overflow", ps.obj.lastOverflow),
				telemetry.F("lambda1", ps.obj.lambda1),
				telemetry.F("gamma", ps.wl.Gamma()),
				telemetry.F("step", step))
		}
		if ps.obj.lastOverflow < opt.WLOverflowStop && it > minIters {
			break
		}
		// Warm-started levels run a shortened ramp: the loop starts at
		// √growth and ends once λ₁ reaches the coarse level's full converged
		// growth — the same final scale a cold run's complete ramp reaches —
		// instead of overshooting it for the remaining iterations. All
		// inputs (λ₁, λ₁Init, warmBoost) serialize, so a resumed run breaks
		// at the identical iteration.
		if ps.warmStarted && ps.obj.lambda1Init > 0 && it > minIters &&
			ps.obj.lambda1 >= ps.obj.lambda1Init*ps.ml.warmBoost*ps.ml.warmBoost {
			opt.logf("phase 1: warm ramp reached coarse λ₁ growth after %d iters", it+1)
			break
		}
	}
	ps.obj.scatter(ps.optm.U())
	ps.D.ClampToDie()
	ps.dens.ClampFillers()
	res.FinalOverflow = ps.obj.lastOverflow
	// Hand the converged ramp to the next finer level. λ₁Init is the
	// pre-boost initialization, so the captured boost chains: it carries
	// every coarser level's accumulated growth plus this level's.
	if ps.ml != nil && opt.MLWarmStart && ps.level > 0 && ps.obj.lambda1Init > 0 {
		ps.ml.warmSet = true
		// √growth: start the finer ramp halfway (in log scale) to the
		// coarse level's converged λ₁. A full boost would begin the level
		// density-dominated and never re-optimize wirelength after
		// interpolation; halfway preserves the interpolated spread while
		// leaving a wirelength-dominant regime to refine it.
		ps.ml.warmBoost = math.Sqrt(ps.obj.lambda1 / ps.obj.lambda1Init)
		ps.ml.warmOverflow = clamp01(ps.obj.lastOverflow)
	}
	p1.End()
	opt.logf("phase 1 done: %d iters, overflow %.3f, HPWL %.0f",
		res.WLIters, ps.obj.lastOverflow, ps.D.HPWL())
	return nil
}

// routabilityStage is phase 2: the Fig. 2 routability loop shared by
// ModeBaselineRoute and ModeOurs. Every route iteration is a checkpoint
// boundary; within an iteration, cancellation is checked before the router
// call and before every Nesterov step.
type routabilityStage struct{}

func (routabilityStage) Name() string { return "routability" }

func (routabilityStage) Run(ctx context.Context, ps *PlacementState) error {
	if ps.Opt.Mode == ModeWirelength {
		return nil
	}
	p2 := ps.resumeSpanFor("phase2_routability")
	err := ps.routabilityLoop(ctx, p2)
	if err != nil {
		if errors.Is(err, ErrCheckpointed) {
			return err // p2 stays open; it was captured into the checkpoint
		}
		p2.End()
		return err
	}
	p2.End()
	return nil
}

// loopPrologue builds the routability-loop runtime: the inflation scheme
// for the mode/ablation, and the PG-rail density policy. It runs once per
// loop; a resume into the middle of the loop rebuilds the same objects
// through restore (silently — the prologue's log line already sits in the
// first half of the trace).
func (ps *PlacementState) loopPrologue() error {
	d, opt := ps.D, &ps.Opt
	inf, err := newInflator(d, opt)
	if err != nil {
		return err
	}
	ps.inf = inf

	ps.bins = pgrail.BinGrid{NX: ps.dens.NX, NY: ps.dens.NY, Die: d.Die,
		BinW: ps.dens.BinW(), BinH: ps.dens.BinH()}
	ps.dynamicPG = opt.Mode == ModeOurs && opt.Tech.DPA
	if ps.dynamicPG {
		ps.selected = pgrail.SelectRails(d)
		opt.logf("phase 2: %d of %d PG rails selected for density adjustment",
			len(ps.selected), len(d.Rails))
	} else {
		// Xplace-Route style static pre-adjustment, set once. It stays in
		// effect in the ablation rows without DPA because the paper's
		// framework is built on Xplace-Route's flow — the DPA technique
		// REPLACES the static adjustment with the congestion-gated dynamic
		// one (Sec. III-C contrasts exactly these two policies).
		pg, err := pgrail.StaticDensity(d, ps.bins)
		if err == nil {
			err = ps.dens.SetPGDensity(pg)
		}
		if err != nil {
			return err
		}
	}
	ps.loopReady = true
	return nil
}

// newInflator picks the inflation scheme for the mode / ablation config.
func newInflator(d *netlist.Design, opt *Options) (inflation.Inflator, error) {
	scheme := opt.Tech.InflationScheme
	if scheme == "" {
		if opt.Mode == ModeOurs && opt.Tech.MCI {
			scheme = "momentum"
		} else {
			scheme = "monotonic"
		}
	}
	switch scheme {
	case "momentum":
		m := inflation.NewMomentum(len(d.Cells))
		if opt.Tech.MomentumAlpha > 0 {
			m.Alpha = opt.Tech.MomentumAlpha
		}
		return m, nil
	case "present":
		return inflation.NewPresentOnly(len(d.Cells)), nil
	case "monotonic":
		return inflation.NewMonotonic(len(d.Cells)), nil
	default:
		return nil, fmt.Errorf("core: unknown inflation scheme %q", scheme)
	}
}

// routabilityLoop runs (or resumes) the route→inflate→adapt→optimize loop.
func (ps *PlacementState) routabilityLoop(ctx context.Context, p2 *telemetry.Span) error {
	d, opt, obs, res := ps.D, &ps.Opt, ps.obs, ps.Res

	// Nil-safe metric handles: with obs == nil these are nil and every
	// update below is a no-op branch. On a resumed run these resolve to the
	// restored metrics, continuing their counts.
	routeCalls := obs.Counter("route.calls")
	ripupRounds := obs.Counter("route.ripup_rounds")
	routeSegs := obs.Counter("route.segments")
	congUpdates := obs.Counter("congestion.updates")
	nesterovResets := obs.Counter("nesterov.resets")
	poissonSolves := obs.Counter("poisson.solves")

	// Predictor metrics are created ONLY when the predictor is on: a lazily
	// created metric changes the canonical registry snapshot, and the
	// predictor-off trace must stay byte-identical to builds without it.
	var skippedCalls, predictFits, predictGates *telemetry.Counter
	var gateDelta *telemetry.Gauge
	if opt.Predict {
		skippedCalls = obs.Counter("route.skipped_calls")
		predictFits = obs.Counter("predict.fits")
		predictGates = obs.Counter("predict.gates")
		gateDelta = obs.Gauge("predict.gate_delta")
	}

	if !ps.loopReady {
		if err := ps.loopPrologue(); err != nil {
			p2.End()
			return err
		}
	}
	// One router for the whole loop: constructing the demand/history grids
	// per iteration was pure allocation churn — RouteContext resets them in
	// place, with byte-identical results. A checkpoint restore pre-creates
	// the router (to rebuild its decomposition cache), so the wiring below
	// is unconditional.
	if ps.rtr == nil {
		ps.rtr = route.NewRouter(d, ps.grid)
	}
	ps.rtr.Trace = ps.tr
	ps.rtr.Workers = opt.Workers
	ps.rtr.CacheHits = obs.Counter("route.decompose_cache_hits")
	ps.rtr.DirtyNets = obs.Counter("route.dirty_nets")
	// The oracle survives checkpoint restore (restoreLoop rebuilds it with
	// its serialized state); the feature planes are recomputed every fresh
	// iteration and need no serialization.
	if opt.Predict {
		if ps.orc == nil {
			ps.orc = predict.New(ps.grid, len(d.Pins))
		}
		if ps.feat == nil {
			ps.feat = route.NewFeatureMaps(ps.grid)
		}
	}

	for it := ps.cur.iter; it < opt.MaxRouteIters; it++ {
		fromStep := -1
		if it == ps.cur.iter {
			fromStep = ps.cur.step
		}
		freshAdapt := false
		var itSp *telemetry.Span
		if fromStep < 0 {
			// Fresh iteration: route from the current positions, observe,
			// and adapt the models.
			if err := ps.checkCancel(ctx); err != nil {
				ps.cur = cursor{stage: "routability", iter: it, step: -1}
				return err
			}
			ps.obj.scatter(ps.optm.U())

			// Learned pre-oracle gate: extract the feature planes at the
			// positions this iteration would route, and skip the router
			// call when the predicted utilization has barely drifted since
			// the last real call. The gate decision is a pure function of
			// the (deterministic) planes and the (serialized) model state,
			// so it replays identically across worker counts and resume.
			gateSkip := false
			var gdelta float64
			if opt.Predict {
				psp := ps.startSpan("predict")
				ps.feat.Update(d, ps.grid, opt.Workers)
				gdelta, gateSkip = ps.orc.Gate(ps.feat, opt.PredictThreshold)
				psp.End()
				predictGates.Inc()
				gateDelta.Set(gdelta)
				// Arm the gate only inside a non-improving stretch (the last
				// real call did not beat the best overflow score): improving
				// iterations always get the real router, so the trajectory
				// up to each improvement is identical to a predictor-off
				// run, and skips target exactly the calls whose result the
				// loop would discard anyway. ps.stall is serialized, so the
				// arming decision replays identically on resume.
				if ps.stall == 0 {
					gateSkip = false
				}
			}
			if gateSkip {
				// Skipped call: the frozen demand snapshot stays in effect
				// (no congestion-model update; route.calls, CongestionHistory
				// and best-placement tracking all advance on REAL calls
				// only). The predicted utilization seeds inflation so
				// bloating keeps tracking congestion. A skip does count
				// toward the stall patience: the frozen overflow score by
				// construction does not decrease, so the loop terminates no
				// later than it would with the router in the loop.
				itSp = ps.startSpan("predict_iter")
				skippedCalls.Inc()
				ps.stall++
				if ps.stall >= opt.CongestionPatience {
					opt.logf("route loop: congestion stalled after %d iters (predicted)", it+1)
					itSp.End()
					break
				}
				pred := ps.orc.Pred()
				nx := ps.grid.NX
				sp := ps.startSpan("inflate")
				cellCongestion(d, func(x, y float64) float64 {
					cx, cy := ps.grid.CellAt(x, y)
					if c := pred[cy*nx+cx] - 1; c > 0 {
						return c
					}
					return 0
				}, ps.congAt)
				var avgPred float64
				for _, u := range pred {
					if c := u - 1; c > 0 {
						avgPred += c
					}
				}
				avgPred /= float64(len(pred))
				aerr := ps.inf.Update(ps.congAt, avgPred)
				if aerr == nil {
					aerr = ps.dens.SetInflations(ps.inf.Ratios())
				}
				sp.End()
				if aerr != nil {
					itSp.End()
					return aerr
				}
				opt.logf("route iter %d: skipped (predicted Δutil %.4g < %.4g)",
					it, gdelta, opt.PredictThreshold)
				if obs != nil {
					inflMean, inflMax := inflationStats(ps.inf.Ratios())
					obs.Snapshot(ps.pt("predict_iter"), it,
						telemetry.F("gate_delta", gdelta),
						telemetry.F("pred_avg_cong", avgPred),
						telemetry.F("dens_overflow", ps.obj.lastOverflow),
						telemetry.F("lambda1", ps.obj.lambda1),
						telemetry.F("infl_mean", inflMean),
						telemetry.F("infl_max", inflMax))
				}
				fromStep = 0
				freshAdapt = true
				ps.cur = cursor{stage: "routability", iter: it, step: 0}
			} else {
				itSp = ps.startSpan("route_iter")
				ps.feedPositionDelta()
				sp := ps.startSpan("route")
				rres, err := ps.rtr.RouteContext(ctx)
				if err != nil {
					sp.End()
					itSp.End()
					ps.cur = cursor{stage: "routability", iter: it, step: -1}
					return err
				}
				sp.End()
				routeCalls.Inc()
				ripupRounds.Add(int64(rres.RoundsRun))
				routeSegs.Add(int64(rres.Segments))
				// Fit the pre-oracle against what the router actually saw at
				// these features, then rebase its drift reference — the next
				// gate measures prediction drift from THIS call.
				if opt.Predict {
					ps.orc.Observe(ps.feat, rres.Util)
					ps.orc.Rebase(ps.feat)
					predictFits.Inc()
				}
				// Track the same superlinear overflow shape the post-route DRV
				// oracle scores, so "C(x,y) no longer decreases" and the final
				// evaluation agree on what an improvement is.
				wc := overflowScore(rres)
				res.CongestionHistory = append(res.CongestionHistory, wc)
				// Count the router call NOW so RouteIters ==
				// len(CongestionHistory) even when one of the breaks below ends
				// the loop.
				res.RouteIters++
				opt.logf("route iter %d: overflow score %.1f, max util %.2f, overflow cells %d",
					it, wc, rres.MaxUtil, rres.OverflowCells)
				if obs != nil {
					inflMean, inflMax := inflationStats(ps.inf.Ratios())
					obs.Snapshot(ps.pt("route_iter"), it,
						telemetry.F("hpwl", d.HPWL()),
						telemetry.F("overflow_score", wc),
						telemetry.F("max_util", rres.MaxUtil),
						telemetry.F("overflow_cells", float64(rres.OverflowCells)),
						telemetry.F("dens_overflow", ps.obj.lastOverflow),
						telemetry.F("lambda1", ps.obj.lambda1),
						telemetry.F("lambda2", ps.obj.lambda2),
						telemetry.F("gamma", ps.wl.Gamma()),
						telemetry.F("infl_mean", inflMean),
						telemetry.F("infl_max", inflMax))
					// Quantized congestion frame for heatmap replay (dashboard,
					// trace tooling). Emitted only on fresh iterations — resumed
					// runs skip committed iterations, keeping the trace
					// continuation byte-exact.
					obs.Grid(ps.pt("congestion"), it, ps.grid.NX, ps.grid.NY, rres.Congestion)
				}

				// Stop when C(x,y) no longer decreases (Fig. 2); remember the
				// best placement seen so a late degradation cannot leak into
				// the result.
				if it == 0 || wc < ps.bestC*0.999 {
					ps.bestC = wc
					ps.stall = 0
					ps.bestX = append(ps.bestX[:0], ps.optm.U()...)
				} else {
					ps.stall++
					if ps.stall >= opt.CongestionPatience {
						opt.logf("route loop: congestion stalled after %d iters", it+1)
						itSp.End()
						break
					}
				}
				if rres.OverflowCells == 0 {
					opt.logf("route loop: no congestion left after %d iters", it+1)
					itSp.End()
					break
				}

				// Momentum (or baseline) cell inflation.
				sp = ps.startSpan("inflate")
				cellCongestion(d, rres.CongestionAt, ps.congAt)
				aerr := ps.inf.Update(ps.congAt, rres.AvgCongestion())
				if aerr == nil {
					aerr = ps.dens.SetInflations(ps.inf.Ratios())
				}
				sp.End()
				if aerr != nil {
					itSp.End()
					return aerr
				}

				// Dynamic PG density (Eq. 13–15).
				if ps.dynamicPG {
					sp = ps.startSpan("pg_density")
					pg, perr := pgrail.Density(ps.selected, ps.bins, rres.Congestion, rres.AvgCongestion())
					if perr == nil {
						perr = ps.dens.SetPGDensity(pg)
					}
					sp.End()
					if perr != nil {
						itSp.End()
						return perr
					}
				}

				// Differentiable congestion term.
				if ps.useCongTerm {
					sp = ps.startSpan("congestion_update")
					ps.cong.Update(rres)
					sp.End()
					congUpdates.Inc()
					poissonSolves.Inc() // the congestion potential is one Poisson solve
				}
				fromStep = 0
				freshAdapt = true
				ps.cur = cursor{stage: "routability", iter: it, step: 0}
			}
		} else {
			// Resuming into a half-finished iteration (a cancellation
			// landed between Nesterov steps): router and adaptation are
			// already committed, pick up at the recorded step.
			itSp = ps.startSpan("route_iter")
		}

		// Nesterov steps on the updated objective. The problem changed
		// discontinuously, so restart the momentum sequence at the current
		// main iterate — but only when the adaptation just happened: on a
		// resume the restored optimizer state is already post-Reset. λ₁
		// keeps growing only while density overflow remains above the
		// target — compounding it unconditionally would let the density
		// term drown the wirelength and congestion terms over a long
		// routability loop.
		sp := ps.startSpan("nesterov")
		ps.obj.useCong = ps.useCongTerm
		if freshAdapt {
			ps.optm.Reset(ps.optm.U())
			nesterovResets.Inc()
		}
		for s := fromStep; s < opt.StepsPerRouteIter; s++ {
			if err := ps.checkCancel(ctx); err != nil {
				sp.End()
				itSp.End()
				ps.cur = cursor{stage: "routability", iter: it, step: s}
				return err
			}
			ps.optm.Step(ps.obj)
			if retry, err := ps.guardAfterStep("routability"); err != nil {
				sp.End()
				itSp.End()
				return err
			} else if retry {
				s-- // redo this step from the rolled-back state
				continue
			}
			if ps.obj.lastOverflow > opt.WLOverflowStop {
				ps.obj.lambda1 *= lambda1RouteGrowth
			}
			ps.cur.step = s + 1
		}
		sp.End()
		res.FinalOverflow = ps.obj.lastOverflow
		itSp.End()
		ps.cur = cursor{stage: "routability", iter: it + 1, step: -1}
		if err := ps.maybeCheckpoint(ps.pt(fmt.Sprintf("route_iter:%d", it))); err != nil {
			return err
		}
	}
	if ps.bestX != nil {
		ps.obj.scatter(ps.bestX)
	} else {
		ps.obj.scatter(ps.optm.U())
	}
	d.ClampToDie()
	ps.dens.ClampFillers()
	ps.routeStats.Add(ps.rtr.Stats())
	ps.costStats.Add(ps.rtr.CostFieldStats())
	return nil
}

// feedPositionDelta hands the router an exact-position-comparison moved-cells
// mask so its incremental decomposition can skip signature checks for nets
// whose cells did not move at all. The first call (and the first call after
// a checkpoint restore) only snapshots positions — the router then checks
// every signature, which by the mask-independence of the cache counters
// yields byte-identical results and counter values, so the snapshot needs no
// serialization.
func (ps *PlacementState) feedPositionDelta() {
	d := ps.D
	if len(ps.lastRoutedPos) != 2*len(d.Cells) {
		ps.lastRoutedPos = d.SnapshotPositions()
		ps.movedMask = make([]bool, len(d.Cells))
		return
	}
	for i := range d.Cells {
		moved := d.Cells[i].X != ps.lastRoutedPos[2*i] || d.Cells[i].Y != ps.lastRoutedPos[2*i+1]
		ps.movedMask[i] = moved
		if moved {
			ps.lastRoutedPos[2*i] = d.Cells[i].X
			ps.lastRoutedPos[2*i+1] = d.Cells[i].Y
		}
	}
	ps.rtr.SetMovedCells(ps.movedMask)
}

// legalizeStage snaps the global placement onto legal rows/sites. On
// cancellation the partially legalized positions are rolled back, so the
// checkpoint holds the intact global placement and a resumed legalization
// reproduces the uninterrupted one exactly.
type legalizeStage struct{}

func (legalizeStage) Name() string { return "legalize" }

func (legalizeStage) Run(ctx context.Context, ps *PlacementState) error {
	if ps.Opt.SkipLegalize {
		return nil
	}
	opt, res, d := &ps.Opt, ps.Res, ps.D
	opt.logf("legalizing %d movable cells", len(d.MovableIndices()))
	sp := ps.startSpan("legalize")
	lg := legalize.New(d)
	lg.Trace = ps.tr
	backup := backupPositions(d)
	disp, _, err := lg.RunContext(ctx)
	if err != nil {
		sp.End()
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			restorePositions(d, backup)
			return err
		}
		return fmt.Errorf("core: %w", err)
	}
	sp.End()
	res.LegalizeDisp = disp
	res.HPWLLegalized = d.HPWL()
	opt.logf("legalized: total displacement %.0f, HPWL %.0f", disp, res.HPWLLegalized)
	return nil
}

// detailedStage runs the legality-preserving refinement passes. Like
// legalization, a cancelled refinement is rolled back to keep the
// checkpointed positions deterministic.
type detailedStage struct{}

func (detailedStage) Name() string { return "detailed" }

func (detailedStage) Run(ctx context.Context, ps *PlacementState) error {
	if ps.Opt.SkipLegalize || ps.Opt.SkipDetailed {
		return nil
	}
	opt, d := &ps.Opt, ps.D
	sp := ps.startSpan("detailed")
	backup := backupPositions(d)
	dp, err := detailed.RefineContext(ctx, d, detailed.Options{Passes: 2, Trace: ps.tr})
	if err != nil {
		sp.End()
		restorePositions(d, backup)
		return err
	}
	sp.End()
	opt.logf("detailed placement: %d shifts, %d swaps, HPWL %.0f → %.0f",
		dp.Shifts, dp.Swaps, dp.HPWLBefore, dp.HPWLAfter)
	return nil
}

// evalStage is the final routing evaluation (the Innovus stand-in). It
// never mutates the design, so cancellation needs no rollback.
type evalStage struct{}

func (evalStage) Name() string { return "eval" }

func (evalStage) Run(ctx context.Context, ps *PlacementState) error {
	if ps.level > 0 {
		// Coarse levels exist only to seed the next finer level; routing
		// the cluster netlist would measure nothing the flow reports.
		return nil
	}
	opt, res := &ps.Opt, ps.Res
	rStart := time.Now()
	esp := ps.startSpan("eval")
	m, err := eval.EvaluateContext(ctx, ps.D, opt.GridHint, ps.tr, opt.Workers)
	if err != nil {
		esp.End()
		return err
	}
	esp.End()
	res.Metrics = m
	res.RouteTime = time.Since(rStart)
	opt.logf("final: DRWL %.0f, vias %d, DRVs %d",
		res.Metrics.DRWL, res.Metrics.DRVias, res.Metrics.DRVs)
	opt.timingf("timing: PT %.2fs, RT %.2fs",
		res.PlaceTime.Seconds(), res.RouteTime.Seconds())
	return nil
}

// backupPositions snapshots the movable-cell centers (fixed cells never
// move, fillers play no role after global placement).
func backupPositions(d *netlist.Design) []float64 {
	mov := d.MovableIndices()
	b := make([]float64, 0, 2*len(mov))
	for _, ci := range mov {
		b = append(b, d.Cells[ci].X, d.Cells[ci].Y)
	}
	return b
}

// restorePositions undoes the moves of a cancelled legalize/detailed stage.
func restorePositions(d *netlist.Design, b []float64) {
	for k, ci := range d.MovableIndices() {
		d.Cells[ci].X = b[2*k]
		d.Cells[ci].Y = b[2*k+1]
	}
}
