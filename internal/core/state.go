package core

// Checkpoint serialization: the serializable subset of PlacementState, a
// deterministic line-oriented text form for it (designio-style: '#' starts
// a comment, tokens are whitespace-separated, floats use %g which is the
// shortest exact round-trip form), and the restore path that rebuilds a
// runnable PlacementState from a parsed checkpoint.
//
// The format is canonical: writeCheckpoint(readCheckpoint(b)) == b for any
// checkpoint this package wrote. That, plus the fact that every runtime
// model is reconstructed deterministically from the serialized state,
// is what makes resumed runs byte-identical to uninterrupted ones.
//
//	nmckpt 2
//	cursor <stage> <iter> <step>
//	multilevel <levels> <clustermaxsize> <toplevel> <level> <levelcells>   (only multilevel runs)
//	mode <int>
//	tech <mci> <dc> <dpa> <alpha> <scheme|-> <thresh> <fixedl2> <vmid>
//	opts <grid> <maxwl> <wlstop> <maxroute> <steps> <patience> <skipleg> <skipdet>
//	guard <policy> <maxretries> <backoff> <checkevery> <retries>   (only when guarded)
//	design <cells> <nets> <pins> <rails> <lox> <loy> <hix> <hiy>
//	result <wliters> <routeiters> <finaloverflow> <hpwlglobal> <hpwllegal> <legdisp>
//	vec conghist / cellpos / nes.* / fillers / infl.* / bestx / pgrho / cong.* / rtr.pincell
//	gp <gamma> <lambda1> <lambda2> <lastwl> <lastoverflow> <lastwlgradl1>
//	nesterov <a> <first> <steps> <scale>
//	loop <bestc> <stall>
//	infl <scheme> <avgprev> <t>
//	cong <present>
//	predict <thresh> <rows> <fits> <trained>  + vec predict.*   (only when Options.Predict)
//	mlwarm <set> <boost> <overflow> <l1init>   (only when Options.MLWarmStart)
//	tel <seq> <nextspanid>  + telspan / telagg / telctr / telgauge / telhist
//	end
//	crc <8-hex-digits>
//
// The crc footer is an IEEE CRC-32 over every byte before it (the whole
// file up to and including the "end" line's newline). Any truncation or
// byte flip fails the checksum before parsing begins; all such failures —
// and any parse failure on checksummed content — wrap ErrCheckpointCorrupt
// so callers can distinguish a damaged file from a design/option mismatch
// and fall back to the rotated ".prev" checkpoint (see ResumeFromFile).

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"strconv"
	"strings"

	"time"

	"repro/internal/geom"
	"repro/internal/guard"
	"repro/internal/inflation"
	"repro/internal/nesterov"
	"repro/internal/netlist"
	"repro/internal/pgrail"
	"repro/internal/predict"
	"repro/internal/route"
	"repro/internal/telemetry"
)

// Version history: 1 = initial format; 2 = CRC-32 footer, the nesterov
// record's step-scale field, and the optional guard record.
const checkpointVersion = 2

// ErrCheckpointCorrupt marks a checkpoint file that failed validation —
// checksum mismatch, truncation, or unparsable checksummed content. It is
// distinct from semantic mismatches (wrong design, conflicting options),
// which are NOT corruption and never trigger the ".prev" fallback.
var ErrCheckpointCorrupt = errors.New("checkpoint corrupt")

func corruptf(format string, args ...any) error {
	return fmt.Errorf("core: %w: "+format, append([]any{ErrCheckpointCorrupt}, args...)...)
}

// checkpoint is the serializable subset of PlacementState. Everything not
// here (density bins, Poisson plans, the router, span objects, …) is
// rebuilt deterministically on restore.
type checkpoint struct {
	Cur cursor

	// Multilevel run identity (Options.Levels ≥ 2). The design/opts records
	// keep describing the ORIGINAL design and the caller's options; MLLevel
	// pinpoints the hierarchy level the cursor (and CellPos) belong to, and
	// MLCells its cell count, validated against the rebuilt hierarchy on
	// resume. Flat runs serialize none of this, keeping their checkpoints
	// byte-identical to the pre-multilevel format.
	ML                                        bool
	MLLevels, MLMaxW, MLTop, MLLevel, MLCells int

	// Options fingerprint (post-setDefaults values; Workers/Log/Observer
	// and the checkpoint fields themselves are intentionally absent — they
	// may differ between the two run halves without affecting results).
	Mode               Mode
	Tech               Techniques
	GridHint           int
	MaxWLIters         int
	WLOverflowStop     float64
	MaxRouteIters      int
	StepsPerRouteIter  int
	CongestionPatience int
	SkipLegalize       bool
	SkipDetailed       bool

	// Guard configuration (post-SetDefaults) and the recoveries already
	// used, so a resumed run keeps honouring the same retry budget. The
	// zero-value config (policy Off) is not serialized at all, keeping
	// unguarded checkpoints byte-identical to the pre-guard format.
	GuardCfg     guard.Config
	GuardRetries int

	// Design fingerprint (the netlist itself is not embedded; resume takes
	// the same design file and validates it against this).
	NumCells, NumNets, NumPins, NumRails int
	Die                                  geom.Rect

	// Partial result.
	WLIters, RouteIters                                    int
	FinalOverflow, HPWLGlobal, HPWLLegalized, LegalizeDisp float64
	CongestionHistory                                      []float64

	// All cell centers, x/y interleaved in cell index order.
	CellPos []float64

	// Global-placement state (cursor inside wirelength/routability).
	HasGP                                                 bool
	Gamma, Lambda1, Lambda2, LastWL, LastOv, LastWLGradL1 float64
	Nes                                                   nesterov.State
	Fillers                                               []float64

	// Routability-loop state (the loop prologue has run).
	HasLoop            bool
	BestC              float64
	Stall              int
	BestX              []float64
	Infl               inflation.State
	PGRho              []float64
	HasCong            bool
	CongUtil, CongCong []float64
	// Router decomposition-cache key: the per-pin G-cell signature (int32
	// values, stored as floats — %g round-trips them exactly). Empty when
	// the router had not routed yet. Restore rebuilds the entire cache from
	// it, so resumed cache-hit/dirty-net counters continue exactly.
	RtrPinCell []float64

	// Predictor configuration and state (Options.Predict). The threshold is
	// the post-setDefaults value; the Pred* vectors are the oracle's normal
	// equations, weights and gate reference, present once the oracle exists
	// (the routability loop has started). Predictor-off checkpoints serialize
	// none of this, staying byte-identical to the pre-predictor format.
	Predict            bool
	PredictThreshold   float64
	PredRows, PredFits int
	PredTrained        bool
	PredATA, PredATB   []float64
	PredW, PredRef     []float64

	// Multilevel warm-start hand-off (Options.MLWarmStart): the mlRun's
	// captured coarse-level state plus the capturing level's pre-boost λ₁
	// initialization, so a resume mid-phase-1 can still compute the boost
	// (λ₁/λ₁Init) at stage end. Absent when the option is off.
	MLWarm        bool
	MLWarmSet     bool
	MLWarmBoost   float64
	MLWarmOv      float64
	MLLambda1Init float64

	// Telemetry continuation state (present when the run had an Observer).
	Tel *telemetry.ObserverState
}

// capture snapshots the placement state at the current cursor. Everything
// is deep-copied; the checkpoint shares nothing with the live run.
func (ps *PlacementState) capture() *checkpoint {
	d, opt := ps.D, &ps.Opt
	fingerD := d
	if ps.ml != nil {
		// A multilevel checkpoint is identified by the run the user started:
		// the original design and the outer options. The level pipeline's
		// derived options (coarse grid, skip flags) are reconstructed on
		// resume, never serialized.
		fingerD = ps.ml.orig
		opt = &ps.ml.outer
	}
	ck := &checkpoint{
		Cur:                ps.cur,
		Mode:               opt.Mode,
		Tech:               opt.Tech,
		GridHint:           opt.GridHint,
		MaxWLIters:         opt.MaxWLIters,
		WLOverflowStop:     opt.WLOverflowStop,
		MaxRouteIters:      opt.MaxRouteIters,
		StepsPerRouteIter:  opt.StepsPerRouteIter,
		CongestionPatience: opt.CongestionPatience,
		SkipLegalize:       opt.SkipLegalize,
		SkipDetailed:       opt.SkipDetailed,

		GuardCfg: opt.Guard,

		NumCells: len(fingerD.Cells),
		NumNets:  len(fingerD.Nets),
		NumPins:  len(fingerD.Pins),
		NumRails: len(fingerD.Rails),
		Die:      fingerD.Die,

		WLIters:           ps.Res.WLIters,
		RouteIters:        ps.Res.RouteIters,
		FinalOverflow:     ps.Res.FinalOverflow,
		HPWLGlobal:        ps.Res.HPWLGlobal,
		HPWLLegalized:     ps.Res.HPWLLegalized,
		LegalizeDisp:      ps.Res.LegalizeDisp,
		CongestionHistory: append([]float64(nil), ps.Res.CongestionHistory...),
	}
	if ps.ml != nil {
		ck.ML = true
		ck.MLLevels = ps.ml.levels
		ck.MLMaxW = ps.ml.maxW
		ck.MLTop = ps.ml.topLevel
		ck.MLLevel = ps.level
		ck.MLCells = len(d.Cells)
	}
	if ps.grd != nil {
		ck.GuardRetries = ps.grd.retries
	}
	if opt.Predict {
		ck.Predict = true
		ck.PredictThreshold = opt.PredictThreshold
		if ps.orc != nil {
			st := ps.orc.State()
			ck.PredRows = st.Rows
			ck.PredFits = st.Fits
			ck.PredTrained = st.Trained
			ck.PredATA, ck.PredATB = st.ATA, st.ATB
			ck.PredW, ck.PredRef = st.W, st.RefPred
		}
	}
	if opt.MLWarmStart {
		ck.MLWarm = true
		if ps.ml != nil {
			ck.MLWarmSet = ps.ml.warmSet
			ck.MLWarmBoost = ps.ml.warmBoost
			ck.MLWarmOv = ps.ml.warmOverflow
		}
	}
	ck.CellPos = make([]float64, 0, 2*len(d.Cells))
	for i := range d.Cells {
		ck.CellPos = append(ck.CellPos, d.Cells[i].X, d.Cells[i].Y)
	}

	gpStage := ps.cur.stage == "wirelength" || ps.cur.stage == "routability"
	if gpStage && ps.optm != nil {
		ck.HasGP = true
		ck.Gamma = ps.wl.Gamma()
		ck.Lambda1 = ps.obj.lambda1
		ck.Lambda2 = ps.obj.lambda2
		ck.LastWL = ps.obj.lastWL
		ck.LastOv = ps.obj.lastOverflow
		ck.LastWLGradL1 = ps.obj.lastWLGradL1
		ck.Nes = ps.optm.State()
		ck.Fillers = append([]float64(nil), ps.dens.FillerPos...)
		ck.MLLambda1Init = ps.obj.lambda1Init
	}
	if ck.HasGP && ps.loopReady {
		ck.HasLoop = true
		ck.BestC = ps.bestC
		ck.Stall = ps.stall
		ck.BestX = append([]float64(nil), ps.bestX...)
		ck.Infl = inflation.Capture(ps.inf)
		ck.PGRho = ps.dens.PGDensity()
		if ps.cong != nil {
			if util, cong := ps.cong.State(); util != nil {
				ck.HasCong = true
				ck.CongUtil, ck.CongCong = util, cong
			}
		}
		if ps.rtr != nil {
			if sig := ps.rtr.DecompositionSignature(); sig != nil {
				ck.RtrPinCell = make([]float64, len(sig))
				for i, q := range sig {
					ck.RtrPinCell[i] = float64(q)
				}
			}
		}
	}
	ck.Tel = ps.obs.CaptureState()
	return ck
}

// ---- Writing ----

// writeCheckpointFile writes the checkpoint atomically: a rename either
// publishes the complete file or leaves the previous one intact, so a
// crash mid-write can never produce a torn checkpoint. An existing
// checkpoint at path is rotated to path+".prev" first, keeping the last
// successfully-written state available as a fallback should the new file
// later fail validation (bit rot, a partial copy, …).
func writeCheckpointFile(path string, ck *checkpoint) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("core: checkpoint: %w", err)
	}
	if err := writeCheckpoint(f, ck); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("core: checkpoint: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("core: checkpoint: %w", err)
	}
	if _, err := os.Stat(path); err == nil {
		if err := os.Rename(path, path+".prev"); err != nil {
			os.Remove(tmp)
			return fmt.Errorf("core: checkpoint: %w", err)
		}
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("core: checkpoint: %w", err)
	}
	return nil
}

// writeCheckpoint serializes ck in the canonical text form: the body,
// then the CRC-32 footer over the body's bytes.
func writeCheckpoint(w io.Writer, ck *checkpoint) error {
	var buf bytes.Buffer
	writeCheckpointBody(&buf, ck)
	sum := crc32.ChecksumIEEE(buf.Bytes())
	fmt.Fprintf(&buf, "crc %08x\n", sum)
	_, err := w.Write(buf.Bytes())
	return err
}

func writeCheckpointBody(bw *bytes.Buffer, ck *checkpoint) {
	fmt.Fprintf(bw, "# nmplace checkpoint\n")
	fmt.Fprintf(bw, "nmckpt %d\n", checkpointVersion)
	fmt.Fprintf(bw, "cursor %s %d %d\n", ck.Cur.stage, ck.Cur.iter, ck.Cur.step)
	if ck.ML {
		fmt.Fprintf(bw, "multilevel %d %d %d %d %d\n",
			ck.MLLevels, ck.MLMaxW, ck.MLTop, ck.MLLevel, ck.MLCells)
	}
	fmt.Fprintf(bw, "mode %d\n", int(ck.Mode))
	scheme := ck.Tech.InflationScheme
	if scheme == "" {
		scheme = "-"
	}
	fmt.Fprintf(bw, "tech %s %s %s %g %s %g %g %s\n",
		b01(ck.Tech.MCI), b01(ck.Tech.DC), b01(ck.Tech.DPA),
		ck.Tech.MomentumAlpha, scheme, ck.Tech.CongestionThreshold,
		ck.Tech.FixedLambda2, b01(ck.Tech.VirtualAtMidpoint))
	fmt.Fprintf(bw, "opts %d %d %g %d %d %d %s %s\n",
		ck.GridHint, ck.MaxWLIters, ck.WLOverflowStop, ck.MaxRouteIters,
		ck.StepsPerRouteIter, ck.CongestionPatience,
		b01(ck.SkipLegalize), b01(ck.SkipDetailed))
	if ck.GuardCfg.Enabled() {
		fmt.Fprintf(bw, "guard %s %d %g %d %d\n",
			ck.GuardCfg.Policy, ck.GuardCfg.MaxRetries, ck.GuardCfg.Backoff,
			ck.GuardCfg.CheckEvery, ck.GuardRetries)
	}
	fmt.Fprintf(bw, "design %d %d %d %d %g %g %g %g\n",
		ck.NumCells, ck.NumNets, ck.NumPins, ck.NumRails,
		ck.Die.Lo.X, ck.Die.Lo.Y, ck.Die.Hi.X, ck.Die.Hi.Y)
	fmt.Fprintf(bw, "result %d %d %g %g %g %g\n",
		ck.WLIters, ck.RouteIters, ck.FinalOverflow, ck.HPWLGlobal,
		ck.HPWLLegalized, ck.LegalizeDisp)
	writeVec(bw, "conghist", ck.CongestionHistory)
	writeVec(bw, "cellpos", ck.CellPos)

	if ck.HasGP {
		fmt.Fprintf(bw, "gp %g %g %g %g %g %g\n",
			ck.Gamma, ck.Lambda1, ck.Lambda2, ck.LastWL, ck.LastOv, ck.LastWLGradL1)
		fmt.Fprintf(bw, "nesterov %g %s %d %g\n", ck.Nes.A, b01(ck.Nes.First), ck.Nes.Steps, ck.Nes.Scale)
		writeVec(bw, "nes.u", ck.Nes.U)
		writeVec(bw, "nes.v", ck.Nes.V)
		writeVec(bw, "nes.vprev", ck.Nes.VPrev)
		writeVec(bw, "nes.gprev", ck.Nes.GPrev)
		writeVec(bw, "fillers", ck.Fillers)
	}
	if ck.HasLoop {
		fmt.Fprintf(bw, "loop %g %d\n", ck.BestC, ck.Stall)
		fmt.Fprintf(bw, "infl %s %g %d\n", ck.Infl.Scheme, ck.Infl.AvgPrev, ck.Infl.T)
		writeVec(bw, "infl.r", ck.Infl.R)
		if ck.Infl.Scheme == "momentum" {
			writeVec(bw, "infl.dr", ck.Infl.DR)
			writeVec(bw, "infl.cprev", ck.Infl.CPrev)
		}
		writeVec(bw, "bestx", ck.BestX)
		writeVec(bw, "pgrho", ck.PGRho)
		fmt.Fprintf(bw, "cong %s\n", b01(ck.HasCong))
		if ck.HasCong {
			writeVec(bw, "cong.util", ck.CongUtil)
			writeVec(bw, "cong.cong", ck.CongCong)
		}
		writeVec(bw, "rtr.pincell", ck.RtrPinCell)
	}
	if ck.Predict {
		fmt.Fprintf(bw, "predict %g %d %d %s\n",
			ck.PredictThreshold, ck.PredRows, ck.PredFits, b01(ck.PredTrained))
		if len(ck.PredATA) > 0 {
			writeVec(bw, "predict.ata", ck.PredATA)
			writeVec(bw, "predict.atb", ck.PredATB)
			writeVec(bw, "predict.w", ck.PredW)
			writeVec(bw, "predict.ref", ck.PredRef)
		}
	}
	if ck.MLWarm {
		fmt.Fprintf(bw, "mlwarm %s %g %g %g\n",
			b01(ck.MLWarmSet), ck.MLWarmBoost, ck.MLWarmOv, ck.MLLambda1Init)
	}
	if ck.Tel != nil {
		st := ck.Tel
		fmt.Fprintf(bw, "tel %d %d\n", st.Seq, st.NextSpanID)
		for _, s := range st.OpenSpans {
			fmt.Fprintf(bw, "telspan %d %s\n", s.ID, s.Name)
		}
		for _, a := range st.Stages {
			fmt.Fprintf(bw, "telagg %s %d %d %d\n", a.Name, a.Depth, a.Count, int64(a.Total))
		}
		for i := range st.Metrics {
			m := &st.Metrics[i]
			switch m.Kind {
			case "counter":
				fmt.Fprintf(bw, "telctr %s %d\n", m.Name, m.Counter)
			case "gauge":
				fmt.Fprintf(bw, "telgauge %s %s %s %g\n",
					m.Name, b01(m.Volatile), b01(m.GaugeSet), m.Gauge)
			case "histogram":
				fmt.Fprintf(bw, "telhist %s %d %g %g %g", m.Name, m.Count, m.Sum, m.Min, m.Max)
				for _, b := range m.Buckets {
					fmt.Fprintf(bw, " %d", b)
				}
				fmt.Fprintf(bw, "\n")
			}
		}
	}
	fmt.Fprintf(bw, "end\n")
}

func b01(v bool) string {
	if v {
		return "1"
	}
	return "0"
}

func writeVec(bw *bytes.Buffer, name string, v []float64) {
	fmt.Fprintf(bw, "vec %s %d", name, len(v))
	for _, x := range v {
		fmt.Fprintf(bw, " %g", x)
	}
	fmt.Fprintf(bw, "\n")
}

// ---- Reading ----

// fieldParser consumes whitespace-separated tokens of one line, recording
// the first conversion error.
type fieldParser struct {
	f    []string
	i    int
	what string
	err  error
}

func (p *fieldParser) token() string {
	if p.err != nil {
		return ""
	}
	if p.i >= len(p.f) {
		p.err = fmt.Errorf("%s: too few fields", p.what)
		return ""
	}
	t := p.f[p.i]
	p.i++
	return t
}

func (p *fieldParser) nextInt() int {
	t := p.token()
	if p.err != nil {
		return 0
	}
	v, err := strconv.Atoi(t)
	if err != nil {
		p.err = fmt.Errorf("%s: bad int %q", p.what, t)
	}
	return v
}

func (p *fieldParser) nextI64() int64 {
	t := p.token()
	if p.err != nil {
		return 0
	}
	v, err := strconv.ParseInt(t, 10, 64)
	if err != nil {
		p.err = fmt.Errorf("%s: bad int %q", p.what, t)
	}
	return v
}

func (p *fieldParser) nextFloat() float64 {
	t := p.token()
	if p.err != nil {
		return 0
	}
	v, err := strconv.ParseFloat(t, 64)
	if err != nil {
		p.err = fmt.Errorf("%s: bad float %q", p.what, t)
	}
	return v
}

func (p *fieldParser) nextBool() bool {
	switch t := p.token(); t {
	case "1":
		return true
	case "0":
		return false
	default:
		if p.err == nil {
			p.err = fmt.Errorf("%s: bad bool %q", p.what, t)
		}
		return false
	}
}

func (p *fieldParser) done() error {
	if p.err != nil {
		return p.err
	}
	if p.i != len(p.f) {
		return fmt.Errorf("%s: %d extra fields", p.what, len(p.f)-p.i)
	}
	return nil
}

// readCheckpoint validates and parses the canonical text form back into a
// checkpoint. The CRC-32 footer is verified first, so damaged content is
// rejected (as ErrCheckpointCorrupt) before any of it is parsed.
func readCheckpoint(r io.Reader) (*checkpoint, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("core: checkpoint: %w", err)
	}
	body, err := verifyChecksum(data)
	if err != nil {
		return nil, err
	}
	return parseCheckpoint(body)
}

// verifyChecksum checks the trailing "crc <8-hex>" footer line against the
// bytes before it and returns those bytes (the checkpoint body).
func verifyChecksum(data []byte) ([]byte, error) {
	if len(data) == 0 {
		return nil, corruptf("empty checkpoint file")
	}
	if data[len(data)-1] != '\n' {
		return nil, corruptf("truncated checkpoint (no trailing newline)")
	}
	i := bytes.LastIndexByte(data[:len(data)-1], '\n')
	last := string(data[i+1 : len(data)-1])
	hexDigits, ok := strings.CutPrefix(last, "crc ")
	if !ok {
		return nil, corruptf("truncated checkpoint (missing crc footer)")
	}
	want, err := strconv.ParseUint(hexDigits, 16, 32)
	if err != nil {
		return nil, corruptf("unparsable crc footer %q", last)
	}
	body := data[:i+1]
	if got := crc32.ChecksumIEEE(body); got != uint32(want) {
		return nil, corruptf("crc mismatch: footer says %08x, content hashes to %08x", uint32(want), got)
	}
	return body, nil
}

// parseCheckpoint parses the checksummed checkpoint body. Any failure here
// means the content is malformed despite a valid checksum — still reported
// as corruption, since no well-formed writer produces such a file.
func parseCheckpoint(body []byte) (*checkpoint, error) {
	sc := bufio.NewScanner(bytes.NewReader(body))
	// Vectors are single lines of 2N floats; allow very long lines.
	sc.Buffer(make([]byte, 0, 1<<16), 1<<26)
	ck := &checkpoint{}
	sawVersion, sawEnd := false, false
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if sawEnd {
			return nil, corruptf("checkpoint line %d: content after end", lineNo)
		}
		f := strings.Fields(line)
		p := &fieldParser{f: f[1:], what: f[0]}
		switch f[0] {
		case "nmckpt":
			if v := p.nextInt(); p.err == nil && v != checkpointVersion {
				return nil, fmt.Errorf("core: checkpoint version %d not supported", v)
			}
			sawVersion = true
		case "cursor":
			ck.Cur.stage = p.token()
			ck.Cur.iter = p.nextInt()
			ck.Cur.step = p.nextInt()
		case "multilevel":
			ck.ML = true
			ck.MLLevels = p.nextInt()
			ck.MLMaxW = p.nextInt()
			ck.MLTop = p.nextInt()
			ck.MLLevel = p.nextInt()
			ck.MLCells = p.nextInt()
		case "mode":
			ck.Mode = Mode(p.nextInt())
		case "tech":
			ck.Tech.MCI = p.nextBool()
			ck.Tech.DC = p.nextBool()
			ck.Tech.DPA = p.nextBool()
			ck.Tech.MomentumAlpha = p.nextFloat()
			if s := p.token(); s != "-" {
				ck.Tech.InflationScheme = s
			}
			ck.Tech.CongestionThreshold = p.nextFloat()
			ck.Tech.FixedLambda2 = p.nextFloat()
			ck.Tech.VirtualAtMidpoint = p.nextBool()
		case "opts":
			ck.GridHint = p.nextInt()
			ck.MaxWLIters = p.nextInt()
			ck.WLOverflowStop = p.nextFloat()
			ck.MaxRouteIters = p.nextInt()
			ck.StepsPerRouteIter = p.nextInt()
			ck.CongestionPatience = p.nextInt()
			ck.SkipLegalize = p.nextBool()
			ck.SkipDetailed = p.nextBool()
		case "guard":
			pol, perr := guard.ParsePolicy(p.token())
			if perr != nil && p.err == nil {
				p.err = perr
			}
			ck.GuardCfg.Policy = pol
			ck.GuardCfg.MaxRetries = p.nextInt()
			ck.GuardCfg.Backoff = p.nextFloat()
			ck.GuardCfg.CheckEvery = p.nextInt()
			ck.GuardRetries = p.nextInt()
		case "design":
			ck.NumCells = p.nextInt()
			ck.NumNets = p.nextInt()
			ck.NumPins = p.nextInt()
			ck.NumRails = p.nextInt()
			lox, loy := p.nextFloat(), p.nextFloat()
			hix, hiy := p.nextFloat(), p.nextFloat()
			ck.Die = geom.NewRect(lox, loy, hix, hiy)
		case "result":
			ck.WLIters = p.nextInt()
			ck.RouteIters = p.nextInt()
			ck.FinalOverflow = p.nextFloat()
			ck.HPWLGlobal = p.nextFloat()
			ck.HPWLLegalized = p.nextFloat()
			ck.LegalizeDisp = p.nextFloat()
		case "vec":
			name := p.token()
			n := p.nextInt()
			if p.err != nil {
				return nil, corruptf("checkpoint line %d: %v", lineNo, p.err)
			}
			// The declared count sizes the allocation; cap it by the tokens
			// actually on the line so a corrupted count can neither allocate
			// gigabytes nor spin through a billion empty parses.
			if rest := len(p.f) - p.i; n < 0 || n > rest {
				return nil, corruptf("checkpoint line %d: vec %s declares %d values, line carries %d",
					lineNo, name, n, rest)
			}
			var v []float64
			if n > 0 {
				v = make([]float64, 0, n)
				for k := 0; k < n; k++ {
					v = append(v, p.nextFloat())
				}
			}
			if err := ck.assignVec(name, v); err != nil {
				return nil, corruptf("checkpoint line %d: %v", lineNo, err)
			}
		case "gp":
			ck.HasGP = true
			ck.Gamma = p.nextFloat()
			ck.Lambda1 = p.nextFloat()
			ck.Lambda2 = p.nextFloat()
			ck.LastWL = p.nextFloat()
			ck.LastOv = p.nextFloat()
			ck.LastWLGradL1 = p.nextFloat()
		case "nesterov":
			ck.Nes.A = p.nextFloat()
			ck.Nes.First = p.nextBool()
			ck.Nes.Steps = p.nextInt()
			ck.Nes.Scale = p.nextFloat()
		case "loop":
			ck.HasLoop = true
			ck.BestC = p.nextFloat()
			ck.Stall = p.nextInt()
		case "infl":
			ck.Infl.Scheme = p.token()
			ck.Infl.AvgPrev = p.nextFloat()
			ck.Infl.T = p.nextInt()
		case "cong":
			ck.HasCong = p.nextBool()
		case "predict":
			ck.Predict = true
			ck.PredictThreshold = p.nextFloat()
			ck.PredRows = p.nextInt()
			ck.PredFits = p.nextInt()
			ck.PredTrained = p.nextBool()
		case "mlwarm":
			ck.MLWarm = true
			ck.MLWarmSet = p.nextBool()
			ck.MLWarmBoost = p.nextFloat()
			ck.MLWarmOv = p.nextFloat()
			ck.MLLambda1Init = p.nextFloat()
		case "tel":
			ck.Tel = &telemetry.ObserverState{}
			ck.Tel.Seq = p.nextI64()
			ck.Tel.NextSpanID = p.nextInt()
		case "telspan":
			if ck.Tel == nil {
				return nil, corruptf("checkpoint line %d: telspan before tel", lineNo)
			}
			id := p.nextInt()
			name := p.token()
			ck.Tel.OpenSpans = append(ck.Tel.OpenSpans, telemetry.SpanState{ID: id, Name: name})
		case "telagg":
			if ck.Tel == nil {
				return nil, corruptf("checkpoint line %d: telagg before tel", lineNo)
			}
			st := telemetry.StageTiming{Name: p.token()}
			st.Depth = p.nextInt()
			st.Count = p.nextInt()
			st.Total = time.Duration(p.nextI64())
			ck.Tel.Stages = append(ck.Tel.Stages, st)
		case "telctr":
			if ck.Tel == nil {
				return nil, corruptf("checkpoint line %d: telctr before tel", lineNo)
			}
			m := telemetry.MetricState{Kind: "counter", Name: p.token()}
			m.Counter = p.nextI64()
			ck.Tel.Metrics = append(ck.Tel.Metrics, m)
		case "telgauge":
			if ck.Tel == nil {
				return nil, corruptf("checkpoint line %d: telgauge before tel", lineNo)
			}
			m := telemetry.MetricState{Kind: "gauge", Name: p.token()}
			m.Volatile = p.nextBool()
			m.GaugeSet = p.nextBool()
			m.Gauge = p.nextFloat()
			ck.Tel.Metrics = append(ck.Tel.Metrics, m)
		case "telhist":
			if ck.Tel == nil {
				return nil, corruptf("checkpoint line %d: telhist before tel", lineNo)
			}
			m := telemetry.MetricState{Kind: "histogram", Name: p.token()}
			m.Count = p.nextI64()
			m.Sum = p.nextFloat()
			m.Min = p.nextFloat()
			m.Max = p.nextFloat()
			m.Buckets = make([]int64, 0, telemetry.HistogramBuckets)
			for k := 0; k < telemetry.HistogramBuckets; k++ {
				m.Buckets = append(m.Buckets, p.nextI64())
			}
			ck.Tel.Metrics = append(ck.Tel.Metrics, m)
		case "end":
			sawEnd = true
		default:
			return nil, corruptf("checkpoint line %d: unknown record %q", lineNo, f[0])
		}
		if err := p.done(); err != nil {
			return nil, corruptf("checkpoint line %d: %v", lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("core: checkpoint: %w", err)
	}
	if !sawVersion {
		return nil, corruptf("not a checkpoint file (missing nmckpt header)")
	}
	if !sawEnd {
		return nil, corruptf("truncated checkpoint (missing end record)")
	}
	if stageIndex(ck.Cur.stage) >= len(stageOrder) {
		return nil, corruptf("checkpoint has unknown cursor stage %q", ck.Cur.stage)
	}
	if ck.ML && (ck.MLLevels < 2 || ck.MLMaxW < 0 || ck.MLTop < 1 ||
		ck.MLLevel < 0 || ck.MLLevel > ck.MLTop || ck.MLCells <= 0) {
		return nil, corruptf("checkpoint has inconsistent multilevel record %d %d %d %d %d",
			ck.MLLevels, ck.MLMaxW, ck.MLTop, ck.MLLevel, ck.MLCells)
	}
	return ck, nil
}

func (ck *checkpoint) assignVec(name string, v []float64) error {
	switch name {
	case "conghist":
		ck.CongestionHistory = v
	case "cellpos":
		ck.CellPos = v
	case "nes.u":
		ck.Nes.U = v
	case "nes.v":
		ck.Nes.V = v
	case "nes.vprev":
		ck.Nes.VPrev = v
	case "nes.gprev":
		ck.Nes.GPrev = v
	case "fillers":
		ck.Fillers = v
	case "infl.r":
		ck.Infl.R = v
	case "infl.dr":
		ck.Infl.DR = v
	case "infl.cprev":
		ck.Infl.CPrev = v
	case "bestx":
		ck.BestX = v
	case "pgrho":
		ck.PGRho = v
	case "cong.util":
		ck.CongUtil = v
	case "cong.cong":
		ck.CongCong = v
	case "rtr.pincell":
		ck.RtrPinCell = v
	case "predict.ata":
		ck.PredATA = v
	case "predict.atb":
		ck.PredATB = v
	case "predict.w":
		ck.PredW = v
	case "predict.ref":
		ck.PredRef = v
	default:
		return fmt.Errorf("unknown vector %q", name)
	}
	return nil
}

// ---- Resume ----

// ResumeContext continues a checkpointed run. The caller supplies the SAME
// design the original run was started on (validated against the checkpoint
// fingerprint) and an Options whose run-defining fields either match the
// checkpointed ones or are left zero (the checkpoint is then authoritative).
// Only the environment fields — Workers, Log, Observer, CheckpointPath,
// CheckpointAfter — are taken from opt unconditionally; any Workers setting
// yields the identical placement. The Observer, when given, must be fresh:
// the checkpoint restores the interrupted run's telemetry state into it so
// the resumed trace is a byte-exact continuation.
func ResumeContext(ctx context.Context, d *netlist.Design, ckr io.Reader, opt Options) (*Result, error) {
	ck, err := readCheckpoint(ckr)
	if err != nil {
		return nil, err
	}
	return resumeCheckpoint(ctx, d, ck, opt)
}

// ResumeFromFile is ResumeContext reading the checkpoint from a file, with
// last-good fallback: when path fails validation (CRC mismatch, truncation
// — anything wrapping ErrCheckpointCorrupt), the rotated path+".prev"
// checkpoint written by the previous successful checkpoint write is tried
// before giving up. Falling back resumes from one checkpoint earlier, which
// by determinism still reproduces the uninterrupted run's final placement.
// Semantic errors (wrong design, conflicting options) never fall back.
func ResumeFromFile(ctx context.Context, d *netlist.Design, path string, opt Options) (*Result, error) {
	ck, rerr := readCheckpointFile(path)
	if rerr != nil {
		if !errors.Is(rerr, ErrCheckpointCorrupt) {
			return nil, rerr
		}
		prev := path + ".prev"
		ckPrev, perr := readCheckpointFile(prev)
		if perr != nil {
			return nil, fmt.Errorf("%w (fallback %s: %v)", rerr, prev, perr)
		}
		// Plain-log only: the Observer's restored sequence must start
		// exactly where the interrupted trace stopped.
		if opt.Log != nil {
			fmt.Fprintf(opt.Log, "resume: checkpoint %s is corrupt (%v); falling back to last-good %s\n",
				path, rerr, prev)
		}
		ck = ckPrev
	}
	return resumeCheckpoint(ctx, d, ck, opt)
}

// CheckpointInfo summarizes a checkpoint file for job-management tooling
// without rebuilding any runtime state.
type CheckpointInfo struct {
	// Stage, Iter and Step are the pipeline cursor the checkpoint was taken
	// at (the next work to do on resume).
	Stage string
	Iter  int
	Step  int
	// Level is the multilevel hierarchy level the cursor belongs to
	// (0 for flat runs and for a multilevel run's finest level).
	Level int
	// RouteIters is the number of router calls committed so far.
	RouteIters int
	// TraceSeq is the number of telemetry events the run had emitted when
	// the state was captured: exactly the first TraceSeq lines of the run's
	// JSONL trace precede this checkpoint. A supervisor migrating a crashed
	// run truncates the trace file to those lines before resuming, which
	// keeps the continued trace a byte-exact continuation. Zero when the run
	// had no Observer.
	TraceSeq int64
}

// InspectCheckpoint validates and summarizes the checkpoint at path. A
// damaged file fails with ErrCheckpointCorrupt, exactly as resuming from it
// would, so callers can probe a primary checkpoint and fall back to its
// rotated ".prev" sibling themselves.
func InspectCheckpoint(path string) (CheckpointInfo, error) {
	ck, err := readCheckpointFile(path)
	if err != nil {
		return CheckpointInfo{}, err
	}
	info := CheckpointInfo{
		Stage:      ck.Cur.stage,
		Iter:       ck.Cur.iter,
		Step:       ck.Cur.step,
		Level:      ck.MLLevel,
		RouteIters: ck.RouteIters,
	}
	if ck.Tel != nil {
		info.TraceSeq = ck.Tel.Seq
	}
	return info, nil
}

func readCheckpointFile(path string) (*checkpoint, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return readCheckpoint(f)
}

// resumeCheckpoint is the shared back half of ResumeContext/ResumeFromFile.
func resumeCheckpoint(ctx context.Context, d *netlist.Design, ck *checkpoint, opt Options) (*Result, error) {
	merged, err := ck.mergeOptions(opt)
	if err != nil {
		return nil, err
	}
	if err := validateCheckpointOpts(&merged); err != nil {
		return nil, err
	}
	if err := merged.Guard.Validate(); err != nil {
		return nil, err
	}
	if err := validatePlaceable(d); err != nil {
		return nil, err
	}
	if ck.ML {
		return resumeMultilevel(ctx, d, ck, merged)
	}
	ps, err := ck.restore(d, merged)
	if err != nil {
		return nil, err
	}
	return runPipeline(ctx, ps)
}

// mergeOptions reconciles the caller's options with the checkpointed ones:
// checkpointed run-defining fields are authoritative, and a caller value
// that is set (non-zero, after the documented negative-sentinel mapping)
// but different is an error — resuming under different placement options
// could not reproduce the original run.
func (ck *checkpoint) mergeOptions(opt Options) (Options, error) {
	merged := Options{
		Mode:               ck.Mode,
		Tech:               ck.Tech,
		GridHint:           ck.GridHint,
		MaxWLIters:         ck.MaxWLIters,
		WLOverflowStop:     ck.WLOverflowStop,
		MaxRouteIters:      ck.MaxRouteIters,
		StepsPerRouteIter:  ck.StepsPerRouteIter,
		CongestionPatience: ck.CongestionPatience,
		SkipLegalize:       ck.SkipLegalize,
		SkipDetailed:       ck.SkipDetailed,
		Guard:              ck.GuardCfg,
		Levels:             ck.MLLevels,
		ClusterMaxSize:     ck.MLMaxW,
		Predict:            ck.Predict,
		PredictThreshold:   ck.PredictThreshold,
		MLWarmStart:        ck.MLWarm,

		Workers:                 opt.Workers,
		Log:                     opt.Log,
		Observer:                opt.Observer,
		CheckpointPath:          opt.CheckpointPath,
		CheckpointAfter:         opt.CheckpointAfter,
		BoundaryHook:            opt.BoundaryHook,
		DisableCancelCheckpoint: opt.DisableCancelCheckpoint,
		FaultInjector:           opt.FaultInjector,
	}
	// The checkpoint stores post-setDefaults values, so WLOverflowStop==0
	// really means threshold zero; re-running setDefaults would turn it
	// back into 0.12. Map the caller's sentinels the same way setDefaults
	// would before comparing.
	wlStop := opt.WLOverflowStop
	if wlStop < 0 {
		wlStop = 0
	}
	patience := opt.CongestionPatience
	if patience < 0 {
		patience = 0
	}
	// Levels 0 and 1 both select the flat flow; ClusterMaxSize follows the
	// sentinel convention (negative selects "no cap", serialized as 0).
	levels := opt.Levels
	if levels == 1 {
		levels = 0
	}
	maxSize := opt.ClusterMaxSize
	if maxSize < 0 {
		maxSize = 0
	}
	// PredictThreshold follows the sentinel convention (negative selects
	// "threshold zero", serialized as 0).
	predThresh := opt.PredictThreshold
	if predThresh < 0 {
		predThresh = 0
	}
	mismatch := ""
	switch {
	case opt.Mode != 0 && opt.Mode != ck.Mode:
		mismatch = "Mode"
	case opt.Tech != (Techniques{}) && opt.Tech != ck.Tech:
		mismatch = "Tech"
	case opt.GridHint != 0 && opt.GridHint != ck.GridHint:
		mismatch = "GridHint"
	case opt.MaxWLIters != 0 && opt.MaxWLIters != ck.MaxWLIters:
		mismatch = "MaxWLIters"
	case opt.WLOverflowStop != 0 && wlStop != ck.WLOverflowStop:
		mismatch = "WLOverflowStop"
	case opt.MaxRouteIters != 0 && opt.MaxRouteIters != ck.MaxRouteIters:
		mismatch = "MaxRouteIters"
	case opt.StepsPerRouteIter != 0 && opt.StepsPerRouteIter != ck.StepsPerRouteIter:
		mismatch = "StepsPerRouteIter"
	case opt.CongestionPatience != 0 && patience != ck.CongestionPatience:
		mismatch = "CongestionPatience"
	case opt.SkipLegalize && !ck.SkipLegalize:
		mismatch = "SkipLegalize"
	case opt.SkipDetailed && !ck.SkipDetailed:
		mismatch = "SkipDetailed"
	case levels != 0 && levels != ck.MLLevels:
		mismatch = "Levels"
	case opt.ClusterMaxSize != 0 && maxSize != ck.MLMaxW:
		mismatch = "ClusterMaxSize"
	case opt.Predict && !ck.Predict:
		mismatch = "Predict"
	case opt.PredictThreshold != 0 && predThresh != ck.PredictThreshold:
		mismatch = "PredictThreshold"
	case opt.MLWarmStart && !ck.MLWarm:
		mismatch = "MLWarmStart"
	}
	// The checkpoint stores the post-SetDefaults guard config, so apply the
	// same defaulting to the caller's before comparing.
	if mismatch == "" && opt.Guard != (guard.Config{}) {
		gcall := opt.Guard
		if gcall.Enabled() {
			gcall.SetDefaults()
		}
		if gcall != ck.GuardCfg {
			mismatch = "Guard"
		}
	}
	if mismatch != "" {
		return Options{}, fmt.Errorf("core: resume: Options.%s differs from the checkpointed run", mismatch)
	}
	return merged, nil
}

// validateDesign checks the caller's design against the checkpoint's
// fingerprint (always the ORIGINAL design, even for a checkpoint captured at
// a coarse multilevel level).
func (ck *checkpoint) validateDesign(d *netlist.Design) error {
	if len(d.Cells) != ck.NumCells || len(d.Nets) != ck.NumNets ||
		len(d.Pins) != ck.NumPins || len(d.Rails) != ck.NumRails {
		return fmt.Errorf("core: resume: design has %d cells/%d nets/%d pins/%d rails, checkpoint was taken on %d/%d/%d/%d",
			len(d.Cells), len(d.Nets), len(d.Pins), len(d.Rails),
			ck.NumCells, ck.NumNets, ck.NumPins, ck.NumRails)
	}
	if d.Die != ck.Die {
		return fmt.Errorf("core: resume: design die %v differs from checkpointed %v", d.Die, ck.Die)
	}
	return nil
}

// restore rebuilds a runnable PlacementState from a flat-run checkpoint.
func (ck *checkpoint) restore(d *netlist.Design, opt Options) (*PlacementState, error) {
	if err := ck.validateDesign(d); err != nil {
		return nil, err
	}
	return ck.restoreInto(d, opt, 0, nil)
}

// restoreInto rebuilds the PlacementState for the design the cursor points
// at — the original design on a flat run, the level design of a multilevel
// one. Order matters: telemetry first (so metric handles resolved while
// building the runtime bind to the restored registry), then positions, then
// the deterministic model reconstruction, then the model state overlays.
func (ck *checkpoint) restoreInto(d *netlist.Design, opt Options, level int, ml *mlRun) (*PlacementState, error) {
	if len(ck.CellPos) != 2*len(d.Cells) {
		return nil, fmt.Errorf("core: resume: cellpos has %d values, want %d", len(ck.CellPos), 2*len(d.Cells))
	}

	ps := &PlacementState{
		D:     d,
		Opt:   opt,
		level: level,
		ml:    ml,
		Res: &Result{
			Mode:              ck.Mode,
			WLIters:           ck.WLIters,
			RouteIters:        ck.RouteIters,
			FinalOverflow:     ck.FinalOverflow,
			HPWLGlobal:        ck.HPWLGlobal,
			HPWLLegalized:     ck.HPWLLegalized,
			LegalizeDisp:      ck.LegalizeDisp,
			CongestionHistory: ck.CongestionHistory,
		},
		cur: ck.Cur,
		obs: opt.Observer,
	}
	if ps.obs != nil {
		ps.tr = ps.obs.Tracer
		ps.restored = ps.obs.RestoreState(ck.Tel)
	}

	for i := range d.Cells {
		d.Cells[i].X = ck.CellPos[2*i]
		d.Cells[i].Y = ck.CellPos[2*i+1]
	}

	gpStage := ck.Cur.stage == "wirelength" || ck.Cur.stage == "routability"
	if gpStage {
		if !ck.HasGP {
			return nil, fmt.Errorf("core: resume: checkpoint cursor is at %q but the gp section is missing", ck.Cur.stage)
		}
		if err := ps.buildRuntime(); err != nil {
			return nil, err
		}
		ps.wl.SetGamma(ck.Gamma)
		ps.obj.lambda1 = ck.Lambda1
		ps.obj.lambda2 = ck.Lambda2
		ps.obj.lastWL = ck.LastWL
		ps.obj.lastOverflow = ck.LastOv
		ps.obj.lastWLGradL1 = ck.LastWLGradL1
		if err := ps.optm.SetState(ck.Nes); err != nil {
			return nil, fmt.Errorf("core: resume: %w", err)
		}
		// One Eval per Step, so the restored eval count — which indexes the
		// WA-gradient fault injection — is the serialized step count.
		ps.obj.evals = ck.Nes.Steps
		ps.obj.lambda1Init = ck.MLLambda1Init
		if ps.grd != nil {
			ps.grd.retries = ck.GuardRetries
		}
		if len(ck.Fillers) != len(ps.dens.FillerPos) {
			return nil, fmt.Errorf("core: resume: checkpoint has %d filler coordinates, design yields %d",
				len(ck.Fillers), len(ps.dens.FillerPos))
		}
		if ck.HasLoop {
			if err := ps.restoreLoop(ck); err != nil {
				return nil, err
			}
		}
		// After SetInflations (restoreLoop) so the filler rebalance cannot
		// be confused with the restored coordinates.
		copy(ps.dens.FillerPos, ck.Fillers)
	}
	return ps, nil
}

// restoreLoop rebuilds the routability-loop runtime mid-loop: the inflator
// with its momentum memory, the PG-density policy output, and the
// congestion model's field (re-derived from the serialized utilization by
// the same deterministic Poisson solve the original run performed).
func (ps *PlacementState) restoreLoop(ck *checkpoint) error {
	d, opt := ps.D, &ps.Opt
	inf, err := newInflator(d, opt)
	if err != nil {
		return err
	}
	if err := inflation.Restore(inf, ck.Infl); err != nil {
		return fmt.Errorf("core: resume: %w", err)
	}
	ps.inf = inf
	ps.bins = pgrail.BinGrid{NX: ps.dens.NX, NY: ps.dens.NY, Die: d.Die,
		BinW: ps.dens.BinW(), BinH: ps.dens.BinH()}
	ps.dynamicPG = opt.Mode == ModeOurs && opt.Tech.DPA
	if ps.dynamicPG {
		ps.selected = pgrail.SelectRails(d)
	}
	if err := ps.dens.SetInflations(inf.Ratios()); err != nil {
		return fmt.Errorf("core: resume: %w", err)
	}
	if len(ck.PGRho) != ps.dens.NX*ps.dens.NY {
		return fmt.Errorf("core: resume: pgrho has %d bins, grid is %dx%d",
			len(ck.PGRho), ps.dens.NX, ps.dens.NY)
	}
	if err := ps.dens.SetPGDensity(ck.PGRho); err != nil {
		return fmt.Errorf("core: resume: %w", err)
	}
	ps.bestC = ck.BestC
	ps.stall = ck.Stall
	if len(ck.BestX) > 0 {
		if len(ck.BestX) != ps.obj.dim() {
			return fmt.Errorf("core: resume: bestx has %d values, optimizer dimension is %d",
				len(ck.BestX), ps.obj.dim())
		}
		ps.bestX = ck.BestX
	}
	if ck.HasCong {
		if ps.cong == nil {
			return fmt.Errorf("core: resume: checkpoint carries congestion state but the DC technique is off")
		}
		n := ps.grid.NX * ps.grid.NY
		if len(ck.CongUtil) != n || len(ck.CongCong) != n {
			return fmt.Errorf("core: resume: congestion state has %d/%d bins, grid is %dx%d",
				len(ck.CongUtil), len(ck.CongCong), ps.grid.NX, ps.grid.NY)
		}
		ps.cong.Restore(ck.CongUtil, ck.CongCong)
	}
	if len(ck.RtrPinCell) > 0 {
		sig := make([]int32, len(ck.RtrPinCell))
		for i, v := range ck.RtrPinCell {
			sig[i] = int32(v)
		}
		ps.rtr = route.NewRouter(d, ps.grid)
		if err := ps.rtr.RestoreDecomposition(sig); err != nil {
			return fmt.Errorf("core: resume: %w", err)
		}
	}
	if opt.Predict && len(ck.PredATA) > 0 {
		orc := predict.New(ps.grid, len(d.Pins))
		if err := orc.Restore(predict.State{
			Rows:    ck.PredRows,
			Fits:    ck.PredFits,
			Trained: ck.PredTrained,
			ATA:     ck.PredATA,
			ATB:     ck.PredATB,
			W:       ck.PredW,
			RefPred: ck.PredRef,
		}); err != nil {
			return fmt.Errorf("core: resume: %w", err)
		}
		ps.orc = orc
	}
	ps.loopReady = true
	return nil
}
