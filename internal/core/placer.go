package core

import (
	"fmt"
	"math"
	"time"

	"repro/internal/congestion"
	"repro/internal/density"
	"repro/internal/detailed"
	"repro/internal/eval"
	"repro/internal/inflation"
	"repro/internal/legalize"
	"repro/internal/nesterov"
	"repro/internal/netlist"
	"repro/internal/pgrail"
	"repro/internal/route"
	"repro/internal/wirelength"
)

// lambda1Growth is the per-step multiplicative growth of the density weight
// (ePlace's μ), applied during both placement phases.
const lambda1Growth = 1.05

// lambda1RouteGrowth is the slower density-weight growth used inside the
// routability loop, applied only while overflow exceeds the target.
const lambda1RouteGrowth = 1.02

// Place runs the selected placer on the design IN PLACE (cell positions are
// overwritten) and returns the run report including post-route metrics.
func Place(d *netlist.Design, opt Options) (*Result, error) {
	opt.setDefaults(len(d.Cells))
	res := &Result{Mode: opt.Mode}
	start := time.Now()

	// ---- Setup ----
	spreadInitial(d)
	dens := density.New(d, opt.GridHint)
	gamma0 := dens.BinW() * 0.5
	wl := wirelength.New(d, gamma0*10)
	grid := route.NewGrid(d, opt.GridHint)
	if grid.NX != dens.NX || grid.NY != dens.NY {
		return nil, fmt.Errorf("core: bin grid %dx%d and G-cell grid %dx%d differ",
			dens.NX, dens.NY, grid.NX, grid.NY)
	}

	var cong *congestion.Model
	if opt.Mode == ModeOurs && opt.Tech.DC {
		cong = congestion.New(d, grid)
		cong.VirtualAtMidpoint = opt.Tech.VirtualAtMidpoint
		if opt.Tech.CongestionThreshold > 0 {
			cong.UtilThreshold = opt.Tech.CongestionThreshold
		}
	}

	obj := newObjective(d, wl, dens, cong)
	obj.fixedLambda2 = opt.Tech.FixedLambda2

	x := make([]float64, obj.dim())
	obj.gather(x)
	optm := nesterov.New(x, dens.BinW()*0.1)
	optm.StepMax = dens.BinW() * 4

	// ---- Phase 1: wirelength-driven global placement (Xplace) ----
	opt.logf("phase 1: wirelength-driven placement (grid %dx%d, %d fillers)",
		dens.NX, dens.NY, dens.NumFillers())
	for it := 0; it < opt.MaxWLIters; it++ {
		obj.useCong = false
		_, _ = optm.Step(obj)
		obj.lambda1 *= lambda1Growth
		wl.UpdateGamma(gamma0, clamp01(obj.lastOverflow))
		res.WLIters++
		if obj.lastOverflow < opt.WLOverflowStop && it > 20 {
			break
		}
	}
	obj.scatter(optm.U())
	d.ClampToDie()
	dens.ClampFillers()
	res.FinalOverflow = obj.lastOverflow
	opt.logf("phase 1 done: %d iters, overflow %.3f, HPWL %.0f",
		res.WLIters, obj.lastOverflow, d.HPWL())

	// ---- Phase 2: routability-driven placement ----
	if opt.Mode != ModeWirelength {
		if err := routabilityLoop(d, opt, res, dens, grid, cong, obj, optm); err != nil {
			return nil, err
		}
	}

	res.HPWLGlobal = d.HPWL()

	// ---- Legalization ----
	if !opt.SkipLegalize {
		disp, _, err := legalize.New(d).Run()
		if err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
		res.LegalizeDisp = disp
		res.HPWLLegalized = d.HPWL()
		opt.logf("legalized: total displacement %.0f, HPWL %.0f", disp, res.HPWLLegalized)

		if !opt.SkipDetailed {
			dp := detailed.Refine(d, detailed.Options{Passes: 2})
			opt.logf("detailed placement: %d shifts, %d swaps, HPWL %.0f → %.0f",
				dp.Shifts, dp.Swaps, dp.HPWLBefore, dp.HPWLAfter)
		}
	}
	res.HPWLFinal = d.HPWL()
	res.PlaceTime = time.Since(start)

	// ---- Final routing evaluation (the Innovus stand-in) ----
	rStart := time.Now()
	res.Metrics = eval.Evaluate(d, opt.GridHint)
	res.RouteTime = time.Since(rStart)
	opt.logf("final: DRWL %.0f, vias %d, DRVs %d (PT %.2fs, RT %.2fs)",
		res.Metrics.DRWL, res.Metrics.DRVias, res.Metrics.DRVs,
		res.PlaceTime.Seconds(), res.RouteTime.Seconds())
	return res, nil
}

// routabilityLoop is the Fig. 2 inner loop shared by ModeBaselineRoute and
// ModeOurs.
func routabilityLoop(d *netlist.Design, opt Options, res *Result,
	dens *density.Model, grid *route.Grid, cong *congestion.Model,
	obj *objective, optm *nesterov.Optimizer) error {

	// Inflation scheme per mode / ablation.
	var inf inflation.Inflator
	scheme := opt.Tech.InflationScheme
	if scheme == "" {
		if opt.Mode == ModeOurs && opt.Tech.MCI {
			scheme = "momentum"
		} else {
			scheme = "monotonic"
		}
	}
	switch scheme {
	case "momentum":
		m := inflation.NewMomentum(len(d.Cells))
		if opt.Tech.MomentumAlpha > 0 {
			m.Alpha = opt.Tech.MomentumAlpha
		}
		inf = m
	case "present":
		inf = inflation.NewPresentOnly(len(d.Cells))
	case "monotonic":
		inf = inflation.NewMonotonic(len(d.Cells))
	default:
		return fmt.Errorf("core: unknown inflation scheme %q", scheme)
	}

	// PG-rail handling per mode.
	bins := pgrail.BinGrid{NX: dens.NX, NY: dens.NY, Die: d.Die,
		BinW: dens.BinW(), BinH: dens.BinH()}
	var selected []netlist.PGRail
	dynamicPG := opt.Mode == ModeOurs && opt.Tech.DPA
	if dynamicPG {
		selected = pgrail.SelectRails(d)
		opt.logf("phase 2: %d of %d PG rails selected for density adjustment",
			len(selected), len(d.Rails))
	} else {
		// Xplace-Route style static pre-adjustment, set once. It stays in
		// effect in the ablation rows without DPA because the paper's
		// framework is built on Xplace-Route's flow — the DPA technique
		// REPLACES the static adjustment with the congestion-gated dynamic
		// one (Sec. III-C contrasts exactly these two policies).
		dens.SetPGDensity(pgrail.StaticDensity(d, bins))
	}

	congAt := make([]float64, len(d.Cells))
	bestC := 0.0
	stall := 0
	useCongTerm := cong != nil
	var bestX []float64 // placement with the lowest weighted congestion

	for it := 0; it < opt.MaxRouteIters; it++ {
		// Route from the current positions.
		obj.scatter(optm.U())
		rres := route.NewRouter(d, grid).Route()
		// Track the same superlinear overflow shape the post-route DRV
		// oracle scores, so "C(x,y) no longer decreases" and the final
		// evaluation agree on what an improvement is.
		wc := overflowScore(rres)
		res.CongestionHistory = append(res.CongestionHistory, wc)
		opt.logf("route iter %d: overflow score %.1f, max util %.2f, overflow cells %d",
			it, wc, rres.MaxUtil, rres.OverflowCells)

		// Stop when C(x,y) no longer decreases (Fig. 2); remember the best
		// placement seen so a late degradation cannot leak into the result.
		if it == 0 || wc < bestC*0.999 {
			bestC = wc
			stall = 0
			bestX = append(bestX[:0], optm.U()...)
		} else {
			stall++
			if stall >= opt.CongestionPatience {
				opt.logf("route loop: congestion stalled after %d iters", it+1)
				break
			}
		}
		if rres.OverflowCells == 0 {
			opt.logf("route loop: no congestion left after %d iters", it+1)
			break
		}
		res.RouteIters++

		// Momentum (or baseline) cell inflation.
		cellCongestion(d, rres.CongestionAt, congAt)
		inf.Update(congAt, rres.AvgCongestion())
		dens.SetInflations(inf.Ratios())

		// Dynamic PG density (Eq. 13–15).
		if dynamicPG {
			dens.SetPGDensity(pgrail.Density(selected, bins, rres.Congestion, rres.AvgCongestion()))
		}

		// Differentiable congestion term.
		if useCongTerm {
			cong.Update(rres)
		}

		// Nesterov steps on the updated objective. The problem changed
		// discontinuously, so restart the momentum sequence at the current
		// main iterate. λ₁ keeps growing only while density overflow remains
		// above the target — compounding it unconditionally would let the
		// density term drown the wirelength and congestion terms over a long
		// routability loop.
		obj.useCong = useCongTerm
		optm.Reset(optm.U())
		for s := 0; s < opt.StepsPerRouteIter; s++ {
			optm.Step(obj)
			if obj.lastOverflow > opt.WLOverflowStop {
				obj.lambda1 *= lambda1RouteGrowth
			}
		}
		res.FinalOverflow = obj.lastOverflow
	}
	if bestX != nil {
		obj.scatter(bestX)
	} else {
		obj.scatter(optm.U())
	}
	d.ClampToDie()
	dens.ClampFillers()
	return nil
}

// overflowScore sums G-cell overflow with the same superlinear exponent the
// evaluation oracle uses, so the loop optimizes what the scorecard measures.
func overflowScore(r *route.Result) float64 {
	g := r.Grid
	var s float64
	for i := 0; i < g.NX*g.NY; i++ {
		if ov := r.DemandTotal(i) - g.CapTotal(i); ov > 0 {
			s += math.Pow(ov, 1.8)
		}
	}
	return s
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
