package core

import (
	"math"

	"repro/internal/eval"
	"repro/internal/route"
)

// lambda1Growth is the per-step multiplicative growth of the density weight
// (ePlace's μ), applied during both placement phases.
const lambda1Growth = 1.05

// lambda1RouteGrowth is the slower density-weight growth used inside the
// routability loop, applied only while overflow exceeds the target.
const lambda1RouteGrowth = 1.02

// inflationStats summarizes the current inflation ratios for snapshots.
func inflationStats(ratios []float64) (mean, max float64) {
	if len(ratios) == 0 {
		return 0, 0
	}
	var sum float64
	for _, r := range ratios {
		sum += r
		if r > max {
			max = r
		}
	}
	return sum / float64(len(ratios)), max
}

// overflowScore sums G-cell overflow with the same superlinear exponent the
// evaluation oracle uses (eval.OverflowExp), so the routability loop
// optimizes exactly what the scorecard measures.
func overflowScore(r *route.Result) float64 {
	g := r.Grid
	var s float64
	for i := 0; i < g.NX*g.NY; i++ {
		if ov := r.DemandTotal(i) - g.CapTotal(i); ov > 0 {
			s += math.Pow(ov, eval.OverflowExp)
		}
	}
	return s
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
