package core

import (
	"fmt"
	"math"
	"time"

	"repro/internal/congestion"
	"repro/internal/density"
	"repro/internal/detailed"
	"repro/internal/eval"
	"repro/internal/inflation"
	"repro/internal/legalize"
	"repro/internal/nesterov"
	"repro/internal/netlist"
	"repro/internal/parallel"
	"repro/internal/pgrail"
	"repro/internal/route"
	"repro/internal/telemetry"
	"repro/internal/wirelength"
)

// lambda1Growth is the per-step multiplicative growth of the density weight
// (ePlace's μ), applied during both placement phases.
const lambda1Growth = 1.05

// lambda1RouteGrowth is the slower density-weight growth used inside the
// routability loop, applied only while overflow exceeds the target.
const lambda1RouteGrowth = 1.02

// Place runs the selected placer on the design IN PLACE (cell positions are
// overwritten) and returns the run report including post-route metrics.
//
// Telemetry (Options.Observer) records the run as a span tree:
//
//	place
//	  setup
//	  phase1_wirelength                  (one "wl_iter" snapshot per step)
//	  phase2_routability
//	    route_iter ×N                    (one "route_iter" snapshot each)
//	      route > route.decompose, route.round ×R
//	      inflate · pg_density · congestion_update · nesterov
//	  legalize > legalize.sort, legalize.abacus
//	  detailed > detailed.pass ×P
//	eval
//	  route.decompose, route.round ×4, eval.score
//
// The "place" span closes exactly where Result.PlaceTime is measured and
// "eval" where Result.RouteTime is, so the trace accounts for the full
// reported runtime.
func Place(d *netlist.Design, opt Options) (*Result, error) {
	opt.setDefaults(len(d.Cells))
	obs := opt.Observer
	var tr *telemetry.Tracer
	if obs != nil {
		tr = obs.Tracer
	}
	res := &Result{Mode: opt.Mode}
	start := time.Now()
	root := obs.StartSpan("place")

	// ---- Setup ----
	sp := obs.StartSpan("setup")
	spreadInitial(d)
	dens := density.New(d, opt.GridHint)
	dens.Workers = opt.Workers
	gamma0 := dens.BinW() * 0.5
	wl := wirelength.New(d, gamma0*10)
	wl.Workers = opt.Workers
	grid := route.NewGrid(d, opt.GridHint)
	if grid.NX != dens.NX || grid.NY != dens.NY {
		sp.End()
		root.End()
		return nil, fmt.Errorf("core: bin grid %dx%d and G-cell grid %dx%d differ",
			dens.NX, dens.NY, grid.NX, grid.NY)
	}

	var cong *congestion.Model
	if opt.Mode == ModeOurs && opt.Tech.DC {
		cong = congestion.New(d, grid)
		cong.Workers = opt.Workers
		cong.VirtualAtMidpoint = opt.Tech.VirtualAtMidpoint
		if opt.Tech.CongestionThreshold > 0 {
			cong.UtilThreshold = opt.Tech.CongestionThreshold
		}
	}

	obj := newObjective(d, wl, dens, cong)
	obj.fixedLambda2 = opt.Tech.FixedLambda2

	x := make([]float64, obj.dim())
	obj.gather(x)
	optm := nesterov.New(x, dens.BinW()*0.1)
	optm.StepMax = dens.BinW() * 4

	if obs != nil {
		obs.Gauge("design.cells").Set(float64(len(d.Cells)))
		obs.Gauge("design.nets").Set(float64(len(d.Nets)))
		obs.Gauge("design.grid").Set(float64(dens.NX))
		obj.poissonSolves = obs.Counter("poisson.solves")
		evals := obs.Counter("objective.evals")
		stepHist := obs.Histogram("nesterov.step_size")
		optm.OnStep = func(_ int, _, step float64) {
			evals.Inc()
			stepHist.Observe(step)
		}
	}
	sp.End()

	// ---- Phase 1: wirelength-driven global placement (Xplace) ----
	p1 := obs.StartSpan("phase1_wirelength")
	opt.logf("phase 1: wirelength-driven placement (grid %dx%d, %d fillers)",
		dens.NX, dens.NY, dens.NumFillers())
	for it := 0; it < opt.MaxWLIters; it++ {
		obj.useCong = false
		_, step := optm.Step(obj)
		obj.lambda1 *= lambda1Growth
		wl.UpdateGamma(gamma0, clamp01(obj.lastOverflow))
		res.WLIters++
		if obs != nil {
			obs.Snapshot("wl_iter", it,
				telemetry.F("wl", obj.lastWL),
				telemetry.F("dens_overflow", obj.lastOverflow),
				telemetry.F("lambda1", obj.lambda1),
				telemetry.F("gamma", wl.Gamma()),
				telemetry.F("step", step))
		}
		if obj.lastOverflow < opt.WLOverflowStop && it > 20 {
			break
		}
	}
	obj.scatter(optm.U())
	d.ClampToDie()
	dens.ClampFillers()
	res.FinalOverflow = obj.lastOverflow
	p1.End()
	opt.logf("phase 1 done: %d iters, overflow %.3f, HPWL %.0f",
		res.WLIters, obj.lastOverflow, d.HPWL())

	// ---- Phase 2: routability-driven placement ----
	var routeStats parallel.Timing
	if opt.Mode != ModeWirelength {
		p2 := obs.StartSpan("phase2_routability")
		err := routabilityLoop(d, opt, res, dens, grid, cong, obj, optm, &routeStats)
		p2.End()
		if err != nil {
			root.End()
			return nil, err
		}
	}

	res.HPWLGlobal = d.HPWL()

	// ---- Legalization ----
	if !opt.SkipLegalize {
		sp = obs.StartSpan("legalize")
		lg := legalize.New(d)
		lg.Trace = tr
		disp, _, err := lg.Run()
		sp.End()
		if err != nil {
			root.End()
			return nil, fmt.Errorf("core: %w", err)
		}
		res.LegalizeDisp = disp
		res.HPWLLegalized = d.HPWL()
		opt.logf("legalized: total displacement %.0f, HPWL %.0f", disp, res.HPWLLegalized)

		if !opt.SkipDetailed {
			sp = obs.StartSpan("detailed")
			dp := detailed.Refine(d, detailed.Options{Passes: 2, Trace: tr})
			sp.End()
			opt.logf("detailed placement: %d shifts, %d swaps, HPWL %.0f → %.0f",
				dp.Shifts, dp.Swaps, dp.HPWLBefore, dp.HPWLAfter)
		}
	}
	res.HPWLFinal = d.HPWL()
	root.End()
	res.PlaceTime = time.Since(start)

	// ---- Final routing evaluation (the Innovus stand-in) ----
	rStart := time.Now()
	esp := obs.StartSpan("eval")
	res.Metrics = eval.EvaluateTraced(d, opt.GridHint, tr, opt.Workers)
	esp.End()
	res.RouteTime = time.Since(rStart)
	opt.logf("final: DRWL %.0f, vias %d, DRVs %d",
		res.Metrics.DRWL, res.Metrics.DRVias, res.Metrics.DRVs)
	opt.timingf("timing: PT %.2fs, RT %.2fs",
		res.PlaceTime.Seconds(), res.RouteTime.Seconds())

	if obs != nil {
		obs.Gauge("place.wl_iters").Set(float64(res.WLIters))
		obs.Gauge("place.route_iters").Set(float64(res.RouteIters))
		obs.Gauge("place.final_overflow").Set(res.FinalOverflow)
		obs.Gauge("place.hpwl_final").Set(res.HPWLFinal)
		obs.Gauge("place.legalize_disp").Set(res.LegalizeDisp)
		obs.Gauge("eval.drwl").Set(res.Metrics.DRWL)
		obs.Gauge("eval.drvias").Set(float64(res.Metrics.DRVias))
		obs.Gauge("eval.drvs").Set(float64(res.Metrics.DRVs))
		// Parallelism gauges are volatile: wall-clock ratios that vary
		// with machine and load, excluded from canonical traces.
		obs.VolatileGauge("parallel.workers").Set(float64(parallel.Resolve(opt.Workers)))
		obs.VolatileGauge("parallel.wirelength.speedup").Set(wl.Stats().Speedup())
		obs.VolatileGauge("parallel.density.speedup").Set(dens.Stats().Speedup())
		pstats := dens.SolverStats()
		if cong != nil {
			pstats.Add(cong.SolverStats())
		}
		obs.VolatileGauge("parallel.poisson.speedup").Set(pstats.Speedup())
		obs.VolatileGauge("parallel.route.speedup").Set(routeStats.Speedup())
		res.StageTimings = obs.Tracer.StageTimings()
	}
	return res, nil
}

// routabilityLoop is the Fig. 2 inner loop shared by ModeBaselineRoute and
// ModeOurs.
func routabilityLoop(d *netlist.Design, opt Options, res *Result,
	dens *density.Model, grid *route.Grid, cong *congestion.Model,
	obj *objective, optm *nesterov.Optimizer, routeStats *parallel.Timing) error {

	obs := opt.Observer
	var tr *telemetry.Tracer
	if obs != nil {
		tr = obs.Tracer
	}
	// Nil-safe metric handles: with obs == nil these are nil and every
	// update below is a no-op branch.
	routeCalls := obs.Counter("route.calls")
	ripupRounds := obs.Counter("route.ripup_rounds")
	routeSegs := obs.Counter("route.segments")
	congUpdates := obs.Counter("congestion.updates")
	nesterovResets := obs.Counter("nesterov.resets")
	poissonSolves := obs.Counter("poisson.solves")

	// Inflation scheme per mode / ablation.
	var inf inflation.Inflator
	scheme := opt.Tech.InflationScheme
	if scheme == "" {
		if opt.Mode == ModeOurs && opt.Tech.MCI {
			scheme = "momentum"
		} else {
			scheme = "monotonic"
		}
	}
	switch scheme {
	case "momentum":
		m := inflation.NewMomentum(len(d.Cells))
		if opt.Tech.MomentumAlpha > 0 {
			m.Alpha = opt.Tech.MomentumAlpha
		}
		inf = m
	case "present":
		inf = inflation.NewPresentOnly(len(d.Cells))
	case "monotonic":
		inf = inflation.NewMonotonic(len(d.Cells))
	default:
		return fmt.Errorf("core: unknown inflation scheme %q", scheme)
	}

	// PG-rail handling per mode.
	bins := pgrail.BinGrid{NX: dens.NX, NY: dens.NY, Die: d.Die,
		BinW: dens.BinW(), BinH: dens.BinH()}
	var selected []netlist.PGRail
	dynamicPG := opt.Mode == ModeOurs && opt.Tech.DPA
	if dynamicPG {
		selected = pgrail.SelectRails(d)
		opt.logf("phase 2: %d of %d PG rails selected for density adjustment",
			len(selected), len(d.Rails))
	} else {
		// Xplace-Route style static pre-adjustment, set once. It stays in
		// effect in the ablation rows without DPA because the paper's
		// framework is built on Xplace-Route's flow — the DPA technique
		// REPLACES the static adjustment with the congestion-gated dynamic
		// one (Sec. III-C contrasts exactly these two policies).
		dens.SetPGDensity(pgrail.StaticDensity(d, bins))
	}

	congAt := make([]float64, len(d.Cells))
	bestC := 0.0
	stall := 0
	useCongTerm := cong != nil
	var bestX []float64 // placement with the lowest weighted congestion

	for it := 0; it < opt.MaxRouteIters; it++ {
		itSp := obs.StartSpan("route_iter")
		// Route from the current positions.
		obj.scatter(optm.U())
		sp := obs.StartSpan("route")
		rtr := route.NewRouter(d, grid)
		rtr.Trace = tr
		rtr.Workers = opt.Workers
		rres := rtr.Route()
		sp.End()
		routeStats.Add(rtr.Stats())
		routeCalls.Inc()
		ripupRounds.Add(int64(rres.RoundsRun))
		routeSegs.Add(int64(rres.Segments))
		// Track the same superlinear overflow shape the post-route DRV
		// oracle scores, so "C(x,y) no longer decreases" and the final
		// evaluation agree on what an improvement is.
		wc := overflowScore(rres)
		res.CongestionHistory = append(res.CongestionHistory, wc)
		// Count the router call NOW so RouteIters == len(CongestionHistory)
		// even when one of the breaks below ends the loop.
		res.RouteIters++
		opt.logf("route iter %d: overflow score %.1f, max util %.2f, overflow cells %d",
			it, wc, rres.MaxUtil, rres.OverflowCells)
		if obs != nil {
			inflMean, inflMax := inflationStats(inf.Ratios())
			obs.Snapshot("route_iter", it,
				telemetry.F("hpwl", d.HPWL()),
				telemetry.F("overflow_score", wc),
				telemetry.F("max_util", rres.MaxUtil),
				telemetry.F("overflow_cells", float64(rres.OverflowCells)),
				telemetry.F("dens_overflow", obj.lastOverflow),
				telemetry.F("lambda1", obj.lambda1),
				telemetry.F("lambda2", obj.lambda2),
				telemetry.F("gamma", obj.wl.Gamma()),
				telemetry.F("infl_mean", inflMean),
				telemetry.F("infl_max", inflMax))
		}

		// Stop when C(x,y) no longer decreases (Fig. 2); remember the best
		// placement seen so a late degradation cannot leak into the result.
		if it == 0 || wc < bestC*0.999 {
			bestC = wc
			stall = 0
			bestX = append(bestX[:0], optm.U()...)
		} else {
			stall++
			if stall >= opt.CongestionPatience {
				opt.logf("route loop: congestion stalled after %d iters", it+1)
				itSp.End()
				break
			}
		}
		if rres.OverflowCells == 0 {
			opt.logf("route loop: no congestion left after %d iters", it+1)
			itSp.End()
			break
		}

		// Momentum (or baseline) cell inflation.
		sp = obs.StartSpan("inflate")
		cellCongestion(d, rres.CongestionAt, congAt)
		inf.Update(congAt, rres.AvgCongestion())
		dens.SetInflations(inf.Ratios())
		sp.End()

		// Dynamic PG density (Eq. 13–15).
		if dynamicPG {
			sp = obs.StartSpan("pg_density")
			dens.SetPGDensity(pgrail.Density(selected, bins, rres.Congestion, rres.AvgCongestion()))
			sp.End()
		}

		// Differentiable congestion term.
		if useCongTerm {
			sp = obs.StartSpan("congestion_update")
			cong.Update(rres)
			sp.End()
			congUpdates.Inc()
			poissonSolves.Inc() // the congestion potential is one Poisson solve
		}

		// Nesterov steps on the updated objective. The problem changed
		// discontinuously, so restart the momentum sequence at the current
		// main iterate. λ₁ keeps growing only while density overflow remains
		// above the target — compounding it unconditionally would let the
		// density term drown the wirelength and congestion terms over a long
		// routability loop.
		sp = obs.StartSpan("nesterov")
		obj.useCong = useCongTerm
		optm.Reset(optm.U())
		nesterovResets.Inc()
		for s := 0; s < opt.StepsPerRouteIter; s++ {
			optm.Step(obj)
			if obj.lastOverflow > opt.WLOverflowStop {
				obj.lambda1 *= lambda1RouteGrowth
			}
		}
		sp.End()
		res.FinalOverflow = obj.lastOverflow
		itSp.End()
	}
	if bestX != nil {
		obj.scatter(bestX)
	} else {
		obj.scatter(optm.U())
	}
	d.ClampToDie()
	dens.ClampFillers()
	return nil
}

// inflationStats summarizes the current inflation ratios for snapshots.
func inflationStats(ratios []float64) (mean, max float64) {
	if len(ratios) == 0 {
		return 0, 0
	}
	var sum float64
	for _, r := range ratios {
		sum += r
		if r > max {
			max = r
		}
	}
	return sum / float64(len(ratios)), max
}

// overflowScore sums G-cell overflow with the same superlinear exponent the
// evaluation oracle uses, so the loop optimizes what the scorecard measures.
func overflowScore(r *route.Result) float64 {
	g := r.Grid
	var s float64
	for i := 0; i < g.NX*g.NY; i++ {
		if ov := r.DemandTotal(i) - g.CapTotal(i); ov > 0 {
			s += math.Pow(ov, 1.8)
		}
	}
	return s
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
