package core

import (
	"bytes"
	"context"
	"errors"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"

	"repro/internal/synth"
	"repro/internal/telemetry"
)

// placeRun places one catalog design with the given worker count and
// returns the full result, the final cell positions and the canonical
// (timing- and volatile-stripped) trace.
func placeRun(t *testing.T, design string, workers int) (*Result, []float64, []byte) {
	t.Helper()
	d := synth.MustGenerate(design)
	var trace bytes.Buffer
	obs := telemetry.NewObserver(&trace)
	opt := fastOpts(ModeOurs)
	opt.Workers = workers
	opt.Observer = obs
	res, err := Place(d, opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := obs.Flush(); err != nil {
		t.Fatal(err)
	}
	pos := make([]float64, 0, 2*len(d.Cells))
	for i := range d.Cells {
		pos = append(pos, d.Cells[i].X, d.Cells[i].Y)
	}
	canon, err := telemetry.StripTimings(trace.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	return res, pos, canon
}

// resumeRun places one catalog design with an interruption in the middle:
// the run stops at the scheduled checkpoint point, then a fresh design
// object and a fresh Observer resume it to completion. It returns the same
// tuple as placeRun — with the trace being the canonicalized CONCATENATION
// of the two halves' streams — so the caller can compare an interrupted run
// against an uninterrupted one verbatim.
func resumeRun(t *testing.T, design, point string, workers int) (*Result, []float64, []byte) {
	t.Helper()
	ckPath := filepath.Join(t.TempDir(), "resume.ckpt")
	var buf1 bytes.Buffer
	d := synth.MustGenerate(design)
	opt := fastOpts(ModeOurs)
	opt.Workers = workers
	opt.Observer = telemetry.NewObserver(&buf1)
	opt.CheckpointPath = ckPath
	opt.CheckpointAfter = point
	_, err := Place(d, opt)
	if !errors.Is(err, ErrCheckpointed) {
		t.Fatalf("Place with CheckpointAfter=%q returned %v, want ErrCheckpointed", point, err)
	}

	var buf2 bytes.Buffer
	obs2 := telemetry.NewObserver(&buf2)
	d = synth.MustGenerate(design)
	ckf, err := os.Open(ckPath)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ResumeContext(context.Background(), d, ckf, Options{Workers: workers, Observer: obs2})
	ckf.Close()
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	if err := obs2.Flush(); err != nil {
		t.Fatal(err)
	}
	pos := make([]float64, 0, 2*len(d.Cells))
	for i := range d.Cells {
		pos = append(pos, d.Cells[i].X, d.Cells[i].Y)
	}
	concat := append(append([]byte(nil), buf1.Bytes()...), buf2.Bytes()...)
	canon, err := telemetry.StripTimings(concat)
	if err != nil {
		t.Fatal(err)
	}
	return res, pos, canon
}

// TestPlaceIdenticalAcrossWorkerCounts is the tentpole's acceptance test:
// the entire placement — every cell position, the congestion history and
// the canonical telemetry trace — must be byte-identical whether the
// parallel kernels run serial or with any number of workers, because every
// float reduction merges a fixed number of shards in fixed index order.
// The same must hold for a run interrupted at a scheduled checkpoint and
// resumed: the resume leg runs each worker count through checkpoint+resume
// and compares against the serial uninterrupted reference.
func TestPlaceIdenticalAcrossWorkerCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("full placement runs; skipped in -short")
	}
	workerCounts := []int{1, 2, runtime.NumCPU()}
	// The checkpoint point must be one the run reaches: tiny_open converges
	// after a single route iteration, so it checkpoints at the phase-1
	// boundary; tiny_hot runs the full loop and checkpoints mid-loop.
	resumePoint := map[string]string{"tiny_open": "wirelength", "tiny_hot": "route_iter:2"}
	for _, design := range []string{"tiny_open", "tiny_hot"} {
		design := design
		t.Run(design, func(t *testing.T) {
			refRes, refPos, refTrace := placeRun(t, design, workerCounts[0])
			type leg struct {
				w      int
				resume bool
			}
			legs := []leg{}
			for _, w := range workerCounts[1:] {
				legs = append(legs, leg{w, false})
			}
			for _, w := range workerCounts {
				legs = append(legs, leg{w, true})
			}
			for _, l := range legs {
				w := l.w
				var res *Result
				var pos []float64
				var trace []byte
				if l.resume {
					res, pos, trace = resumeRun(t, design, resumePoint[design], w)
				} else {
					res, pos, trace = placeRun(t, design, w)
				}

				for i := range refPos {
					if math.Float64bits(pos[i]) != math.Float64bits(refPos[i]) {
						t.Fatalf("workers=%d: cell coordinate %d differs bitwise from serial (%v vs %v)",
							w, i, pos[i], refPos[i])
					}
				}

				if res.HPWLFinal != refRes.HPWLFinal || res.FinalOverflow != refRes.FinalOverflow ||
					res.Metrics.DRWL != refRes.Metrics.DRWL || res.Metrics.DRVias != refRes.Metrics.DRVias ||
					res.Metrics.DRVs != refRes.Metrics.DRVs ||
					res.WLIters != refRes.WLIters || res.RouteIters != refRes.RouteIters {
					t.Errorf("workers=%d: result summary differs from serial:\n  serial: %+v\n  got:    %+v",
						w, refRes.Metrics, res.Metrics)
				}

				if len(res.CongestionHistory) != len(refRes.CongestionHistory) {
					t.Fatalf("workers=%d: congestion history length %d != serial %d",
						w, len(res.CongestionHistory), len(refRes.CongestionHistory))
				}
				for i := range refRes.CongestionHistory {
					if math.Float64bits(res.CongestionHistory[i]) != math.Float64bits(refRes.CongestionHistory[i]) {
						t.Errorf("workers=%d: congestion history[%d] %v != serial %v",
							w, i, res.CongestionHistory[i], refRes.CongestionHistory[i])
					}
				}

				if !bytes.Equal(trace, refTrace) {
					a := strings.Split(string(refTrace), "\n")
					b := strings.Split(string(trace), "\n")
					for i := 0; i < len(a) && i < len(b); i++ {
						if a[i] != b[i] {
							t.Fatalf("workers=%d: canonical traces diverge at line %d:\n  serial: %s\n  got:    %s",
								w, i+1, a[i], b[i])
						}
					}
					t.Fatalf("workers=%d: canonical traces differ in length: %d vs %d lines",
						w, len(a), len(b))
				}
			}
		})
	}
}
