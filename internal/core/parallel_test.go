package core

import (
	"bytes"
	"math"
	"runtime"
	"strings"
	"testing"

	"repro/internal/synth"
	"repro/internal/telemetry"
)

// placeRun places one catalog design with the given worker count and
// returns the full result, the final cell positions and the canonical
// (timing- and volatile-stripped) trace.
func placeRun(t *testing.T, design string, workers int) (*Result, []float64, []byte) {
	t.Helper()
	d := synth.MustGenerate(design)
	var trace bytes.Buffer
	obs := telemetry.NewObserver(&trace)
	opt := fastOpts(ModeOurs)
	opt.Workers = workers
	opt.Observer = obs
	res, err := Place(d, opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := obs.Flush(); err != nil {
		t.Fatal(err)
	}
	pos := make([]float64, 0, 2*len(d.Cells))
	for i := range d.Cells {
		pos = append(pos, d.Cells[i].X, d.Cells[i].Y)
	}
	canon, err := telemetry.StripTimings(trace.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	return res, pos, canon
}

// TestPlaceIdenticalAcrossWorkerCounts is the tentpole's acceptance test:
// the entire placement — every cell position, the congestion history and
// the canonical telemetry trace — must be byte-identical whether the
// parallel kernels run serial or with any number of workers, because every
// float reduction merges a fixed number of shards in fixed index order.
func TestPlaceIdenticalAcrossWorkerCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("full placement runs; skipped in -short")
	}
	workerCounts := []int{1, 2, runtime.NumCPU()}
	for _, design := range []string{"tiny_open", "tiny_hot"} {
		design := design
		t.Run(design, func(t *testing.T) {
			refRes, refPos, refTrace := placeRun(t, design, workerCounts[0])
			for _, w := range workerCounts[1:] {
				res, pos, trace := placeRun(t, design, w)

				for i := range refPos {
					if math.Float64bits(pos[i]) != math.Float64bits(refPos[i]) {
						t.Fatalf("workers=%d: cell coordinate %d differs bitwise from serial (%v vs %v)",
							w, i, pos[i], refPos[i])
					}
				}

				if res.HPWLFinal != refRes.HPWLFinal || res.FinalOverflow != refRes.FinalOverflow ||
					res.Metrics.DRWL != refRes.Metrics.DRWL || res.Metrics.DRVias != refRes.Metrics.DRVias ||
					res.Metrics.DRVs != refRes.Metrics.DRVs ||
					res.WLIters != refRes.WLIters || res.RouteIters != refRes.RouteIters {
					t.Errorf("workers=%d: result summary differs from serial:\n  serial: %+v\n  got:    %+v",
						w, refRes.Metrics, res.Metrics)
				}

				if len(res.CongestionHistory) != len(refRes.CongestionHistory) {
					t.Fatalf("workers=%d: congestion history length %d != serial %d",
						w, len(res.CongestionHistory), len(refRes.CongestionHistory))
				}
				for i := range refRes.CongestionHistory {
					if math.Float64bits(res.CongestionHistory[i]) != math.Float64bits(refRes.CongestionHistory[i]) {
						t.Errorf("workers=%d: congestion history[%d] %v != serial %v",
							w, i, res.CongestionHistory[i], refRes.CongestionHistory[i])
					}
				}

				if !bytes.Equal(trace, refTrace) {
					a := strings.Split(string(refTrace), "\n")
					b := strings.Split(string(trace), "\n")
					for i := 0; i < len(a) && i < len(b); i++ {
						if a[i] != b[i] {
							t.Fatalf("workers=%d: canonical traces diverge at line %d:\n  serial: %s\n  got:    %s",
								w, i+1, a[i], b[i])
						}
					}
					t.Fatalf("workers=%d: canonical traces differ in length: %d vs %d lines",
						w, len(a), len(b))
				}
			}
		})
	}
}
