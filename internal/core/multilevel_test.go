package core

import (
	"bytes"
	"context"
	"errors"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"

	"repro/internal/synth"
	"repro/internal/telemetry"
)

// mlOpts is fastOpts with the multilevel flow enabled.
func mlOpts(levels int) Options {
	opt := fastOpts(ModeOurs)
	opt.Levels = levels
	return opt
}

// mlPlaceRun places one catalog design through the multilevel flow and
// returns the result, final cell positions and canonical trace.
func mlPlaceRun(t *testing.T, design string, workers, levels int) (*Result, []float64, []byte) {
	t.Helper()
	d := synth.MustGenerate(design)
	var trace bytes.Buffer
	obs := telemetry.NewObserver(&trace)
	opt := mlOpts(levels)
	opt.Workers = workers
	opt.Observer = obs
	res, err := Place(d, opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := obs.Flush(); err != nil {
		t.Fatal(err)
	}
	pos := make([]float64, 0, 2*len(d.Cells))
	for i := range d.Cells {
		pos = append(pos, d.Cells[i].X, d.Cells[i].Y)
	}
	canon, err := telemetry.StripTimings(trace.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	return res, pos, canon
}

// mlResumeRun is mlPlaceRun with an interruption at the given boundary point
// (which may name a coarse level, e.g. "L1/wirelength"): the run stops at the
// scheduled checkpoint, then a fresh design and Observer resume it. The
// returned trace is the canonicalized concatenation of the two halves.
func mlResumeRun(t *testing.T, design, point string, workers, levels int) (*Result, []float64, []byte) {
	t.Helper()
	ckPath := filepath.Join(t.TempDir(), "ml.ckpt")
	var buf1 bytes.Buffer
	d := synth.MustGenerate(design)
	opt := mlOpts(levels)
	opt.Workers = workers
	opt.Observer = telemetry.NewObserver(&buf1)
	opt.CheckpointPath = ckPath
	opt.CheckpointAfter = point
	_, err := Place(d, opt)
	if !errors.Is(err, ErrCheckpointed) {
		t.Fatalf("Place with CheckpointAfter=%q returned %v, want ErrCheckpointed", point, err)
	}

	var buf2 bytes.Buffer
	obs2 := telemetry.NewObserver(&buf2)
	d = synth.MustGenerate(design)
	ckf, err := os.Open(ckPath)
	if err != nil {
		t.Fatal(err)
	}
	// The resume passes Levels explicitly, as the job server's segments do:
	// a set-and-matching value must reconcile against the checkpoint.
	res, err := ResumeContext(context.Background(), d, ckf,
		Options{Workers: workers, Observer: obs2, Levels: levels})
	ckf.Close()
	if err != nil {
		t.Fatalf("resume at %q: %v", point, err)
	}
	if err := obs2.Flush(); err != nil {
		t.Fatal(err)
	}
	pos := make([]float64, 0, 2*len(d.Cells))
	for i := range d.Cells {
		pos = append(pos, d.Cells[i].X, d.Cells[i].Y)
	}
	concat := append(append([]byte(nil), buf1.Bytes()...), buf2.Bytes()...)
	canon, err := telemetry.StripTimings(concat)
	if err != nil {
		t.Fatal(err)
	}
	return res, pos, canon
}

// TestMultilevelPlaceBasic: the multilevel flow completes the full pipeline,
// produces a finite in-die placement, and runs the coarse level (visible as
// L1-prefixed stage timings in the trace).
func TestMultilevelPlaceBasic(t *testing.T) {
	if testing.Short() {
		t.Skip("full placement runs; skipped in -short")
	}
	res, pos, trace := mlPlaceRun(t, "tiny_hot", 0, 2)
	if res.HPWLFinal <= 0 {
		t.Errorf("HPWLFinal = %g, want > 0", res.HPWLFinal)
	}
	d := synth.MustGenerate("tiny_hot")
	for i := 0; i < len(pos); i += 2 {
		if math.IsNaN(pos[i]) || math.IsNaN(pos[i+1]) {
			t.Fatalf("cell %d has NaN position", i/2)
		}
	}
	if !bytes.Contains(trace, []byte("L1/phase1_wirelength")) {
		t.Errorf("trace carries no L1-prefixed coarse-level spans")
	}
	if !bytes.Contains(trace, []byte("multilevel: 2 levels")) {
		t.Errorf("trace carries no multilevel prologue log line")
	}
	_ = d
}

// TestMultilevelIdenticalAcrossWorkerCounts extends the flat pipeline's
// acceptance test to the multilevel flow: positions, congestion history and
// the canonical trace must be byte-identical for every worker count, both
// uninterrupted and when checkpointed/resumed mid-hierarchy — at a coarse
// in-level point, at the coarse/fine transition, and inside the finest level.
func TestMultilevelIdenticalAcrossWorkerCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("full placement runs; skipped in -short")
	}
	const design = "tiny_hot"
	const levels = 2
	refRes, refPos, refTrace := mlPlaceRun(t, design, 1, levels)

	check := func(name string, res *Result, pos []float64, trace []byte) {
		t.Helper()
		for i := range refPos {
			if math.Float64bits(pos[i]) != math.Float64bits(refPos[i]) {
				t.Fatalf("%s: cell coordinate %d differs bitwise from serial (%v vs %v)",
					name, i, pos[i], refPos[i])
			}
		}
		if res.HPWLFinal != refRes.HPWLFinal || res.WLIters != refRes.WLIters ||
			res.RouteIters != refRes.RouteIters {
			t.Errorf("%s: result summary differs from serial", name)
		}
		if len(res.CongestionHistory) != len(refRes.CongestionHistory) {
			t.Fatalf("%s: congestion history length %d != serial %d",
				name, len(res.CongestionHistory), len(refRes.CongestionHistory))
		}
		for i := range refRes.CongestionHistory {
			if math.Float64bits(res.CongestionHistory[i]) != math.Float64bits(refRes.CongestionHistory[i]) {
				t.Errorf("%s: congestion history[%d] differs from serial", name, i)
			}
		}
		if !bytes.Equal(trace, refTrace) {
			a := strings.Split(string(refTrace), "\n")
			b := strings.Split(string(trace), "\n")
			for i := 0; i < len(a) && i < len(b); i++ {
				if a[i] != b[i] {
					t.Fatalf("%s: canonical traces diverge at line %d:\n  serial: %s\n  got:    %s",
						name, i+1, a[i], b[i])
				}
			}
			t.Fatalf("%s: canonical traces differ in length: %d vs %d lines", name, len(a), len(b))
		}
	}

	for _, w := range []int{2, runtime.NumCPU()} {
		res, pos, trace := mlPlaceRun(t, design, w, levels)
		check("workers", res, pos, trace)
	}
	// Resume legs: mid-coarse-level, at the last coarse boundary (before
	// interpolation), and inside the finest level.
	for _, leg := range []struct {
		point   string
		workers int
	}{
		{"L1/wirelength", 1},
		{"L1/detailed", runtime.NumCPU()},
		{"wirelength", 2},
	} {
		res, pos, trace := mlResumeRun(t, design, leg.point, leg.workers, levels)
		check("resume@"+leg.point, res, pos, trace)
	}
}

// TestMultilevelCheckpointInspect: a coarse-level checkpoint reports its
// hierarchy level and survives the canonical write→read round trip.
func TestMultilevelCheckpointInspect(t *testing.T) {
	if testing.Short() {
		t.Skip("full placement runs; skipped in -short")
	}
	ckPath := filepath.Join(t.TempDir(), "ml.ckpt")
	d := synth.MustGenerate("tiny_hot")
	opt := mlOpts(2)
	opt.CheckpointPath = ckPath
	opt.CheckpointAfter = "L1/wirelength"
	if _, err := Place(d, opt); !errors.Is(err, ErrCheckpointed) {
		t.Fatalf("Place returned %v, want ErrCheckpointed", err)
	}
	info, err := InspectCheckpoint(ckPath)
	if err != nil {
		t.Fatal(err)
	}
	if info.Level != 1 {
		t.Errorf("InspectCheckpoint Level = %d, want 1", info.Level)
	}
	if info.Stage != "routability" {
		t.Errorf("InspectCheckpoint Stage = %q, want %q", info.Stage, "routability")
	}

	// Canonical round trip: rewriting the parsed checkpoint reproduces the
	// file byte for byte (the property the whole format maintains).
	raw, err := os.ReadFile(ckPath)
	if err != nil {
		t.Fatal(err)
	}
	ck, err := readCheckpoint(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if !ck.ML || ck.MLLevel != 1 || ck.MLLevels != 2 {
		t.Fatalf("parsed multilevel record = %+v, want ML level 1 of 2", ck)
	}
	var rewritten bytes.Buffer
	if err := writeCheckpoint(&rewritten, ck); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rewritten.Bytes(), raw) {
		t.Errorf("multilevel checkpoint is not canonical: rewrite differs from original")
	}
}

// TestMultilevelResumeOptionMismatch: resuming a flat checkpoint with Levels
// set (or a multilevel one with a different Levels) is a semantic error.
func TestMultilevelResumeOptionMismatch(t *testing.T) {
	if testing.Short() {
		t.Skip("full placement runs; skipped in -short")
	}
	ckPath := filepath.Join(t.TempDir(), "flat.ckpt")
	d := synth.MustGenerate("tiny_open")
	opt := fastOpts(ModeOurs)
	opt.CheckpointPath = ckPath
	opt.CheckpointAfter = "wirelength"
	if _, err := Place(d, opt); !errors.Is(err, ErrCheckpointed) {
		t.Fatalf("Place returned %v, want ErrCheckpointed", err)
	}
	d = synth.MustGenerate("tiny_open")
	ckf, err := os.Open(ckPath)
	if err != nil {
		t.Fatal(err)
	}
	defer ckf.Close()
	_, err = ResumeContext(context.Background(), d, ckf, Options{Levels: 2})
	if err == nil || !strings.Contains(err.Error(), "Levels") {
		t.Errorf("resume of a flat checkpoint with Levels=2 returned %v, want Levels mismatch", err)
	}
}

// TestValidateCheckpointOptsLevelPrefix: coarse-level boundary points are
// valid CheckpointAfter specs; malformed prefixes are still rejected.
func TestValidateCheckpointOptsLevelPrefix(t *testing.T) {
	valid := []string{"L1/wirelength", "L2/route_iter:3", "L3/setup", "wirelength", "route_iter:0"}
	for _, p := range valid {
		opt := &Options{CheckpointAfter: p, CheckpointPath: "x.ckpt"}
		if err := validateCheckpointOpts(opt); err != nil {
			t.Errorf("validateCheckpointOpts(%q) = %v, want nil", p, err)
		}
	}
	invalid := []string{"L0/wirelength", "Lx/wirelength", "L1/bogus", "L1/route_iter:-1", "L1/", "L-2/setup"}
	for _, p := range invalid {
		opt := &Options{CheckpointAfter: p, CheckpointPath: "x.ckpt"}
		if err := validateCheckpointOpts(opt); err == nil {
			t.Errorf("validateCheckpointOpts(%q) = nil, want error", p)
		}
	}
}

// warmOpts is mlOpts with the coarse-to-fine λ₁/γ warm start enabled.
func warmOpts(levels int) Options {
	opt := mlOpts(levels)
	opt.MLWarmStart = true
	return opt
}

// warmPlaceRun is mlPlaceRun with MLWarmStart on.
func warmPlaceRun(t *testing.T, design string, workers, levels int) (*Result, []float64, []byte) {
	t.Helper()
	d := synth.MustGenerate(design)
	var trace bytes.Buffer
	obs := telemetry.NewObserver(&trace)
	opt := warmOpts(levels)
	opt.Workers = workers
	opt.Observer = obs
	res, err := Place(d, opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := obs.Flush(); err != nil {
		t.Fatal(err)
	}
	pos := make([]float64, 0, 2*len(d.Cells))
	for i := range d.Cells {
		pos = append(pos, d.Cells[i].X, d.Cells[i].Y)
	}
	canon, err := telemetry.StripTimings(trace.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	return res, pos, canon
}

// TestMLWarmStartShortensFineRamp: with the warm start on, the finest level
// seeds λ₁/γ from the coarse level's converged state and stops its ramp once
// λ₁ reaches the coarse level's growth — strictly fewer fine-level
// wirelength iterations than the cold run on a hot design.
func TestMLWarmStartShortensFineRamp(t *testing.T) {
	if testing.Short() {
		t.Skip("full placement runs; skipped in -short")
	}
	coldRes, _, coldTrace := mlPlaceRun(t, "tiny_hot", 1, 2)
	warmRes, _, warmTrace := warmPlaceRun(t, "tiny_hot", 1, 2)
	if warmRes.WLIters >= coldRes.WLIters {
		t.Errorf("warm start ran %d fine-level WL iters, cold ran %d — want strictly fewer",
			warmRes.WLIters, coldRes.WLIters)
	}
	if !bytes.Contains(warmTrace, []byte("warm start")) {
		t.Errorf("warm trace carries no warm-start log line")
	}
	if bytes.Contains(coldTrace, []byte("warm start")) {
		t.Errorf("cold trace mentions the warm start — flag must gate all behavior")
	}
}

// TestMLWarmStartIdenticalAcrossWorkerCounts: the warm start derives its
// boost from deterministic coarse-level state, so placements and canonical
// traces must stay bitwise identical across worker counts and across a
// checkpoint/resume at the coarse/fine boundary.
func TestMLWarmStartIdenticalAcrossWorkerCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("full placement runs; skipped in -short")
	}
	const design = "tiny_hot"
	_, refPos, refTrace := warmPlaceRun(t, design, 1, 2)
	for _, w := range []int{4, 16} {
		_, pos, canon := warmPlaceRun(t, design, w, 2)
		for i := range refPos {
			if math.Float64bits(pos[i]) != math.Float64bits(refPos[i]) {
				t.Fatalf("workers=%d coordinate %d differs bitwise from workers=1", w, i)
			}
		}
		if !bytes.Equal(canon, refTrace) {
			t.Fatalf("workers=%d canonical trace differs from workers=1", w)
		}
	}

	// Resume across the coarse/fine boundary: the warm boost must ride the
	// checkpoint (mlwarm record), not be recomputed from a re-run coarse level.
	ckPath := filepath.Join(t.TempDir(), "warm.ckpt")
	var buf1 bytes.Buffer
	d := synth.MustGenerate(design)
	opt := warmOpts(2)
	opt.Workers = 1
	opt.Observer = telemetry.NewObserver(&buf1)
	opt.CheckpointPath = ckPath
	opt.CheckpointAfter = "wirelength"
	if _, err := Place(d, opt); !errors.Is(err, ErrCheckpointed) {
		t.Fatalf("Place returned %v, want ErrCheckpointed", err)
	}
	var buf2 bytes.Buffer
	obs2 := telemetry.NewObserver(&buf2)
	d2 := synth.MustGenerate(design)
	ckf, err := os.Open(ckPath)
	if err != nil {
		t.Fatal(err)
	}
	_, err = ResumeContext(context.Background(), d2, ckf, Options{Workers: 1, Observer: obs2})
	ckf.Close()
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	if err := obs2.Flush(); err != nil {
		t.Fatal(err)
	}
	for i := range d2.Cells {
		if math.Float64bits(d2.Cells[i].X) != math.Float64bits(refPos[2*i]) ||
			math.Float64bits(d2.Cells[i].Y) != math.Float64bits(refPos[2*i+1]) {
			t.Fatalf("cell %d position differs from uninterrupted warm run", i)
		}
	}
	concat := append(append([]byte(nil), buf1.Bytes()...), buf2.Bytes()...)
	canon, err := telemetry.StripTimings(concat)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(canon, refTrace) {
		t.Fatal("resumed canonical trace differs from uninterrupted warm run")
	}
}
