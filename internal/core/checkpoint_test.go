package core

import (
	"bytes"
	"context"
	"errors"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/synth"
	"repro/internal/telemetry"
	"repro/internal/testutil"
)

// TestOptionsSentinelDefaults covers the zero-value trap fix: 0 selects the
// documented default, negative selects the literal zero.
func TestOptionsSentinelDefaults(t *testing.T) {
	var o Options
	o.setDefaults(100)
	if o.WLOverflowStop != 0.12 {
		t.Errorf("zero WLOverflowStop → %v, want default 0.12", o.WLOverflowStop)
	}
	if o.CongestionPatience != 4 {
		t.Errorf("zero CongestionPatience → %v, want default 4", o.CongestionPatience)
	}
	o2 := Options{WLOverflowStop: -1, CongestionPatience: -1}
	o2.setDefaults(100)
	if o2.WLOverflowStop != 0 {
		t.Errorf("negative WLOverflowStop → %v, want literal 0", o2.WLOverflowStop)
	}
	if o2.CongestionPatience != 0 {
		t.Errorf("negative CongestionPatience → %v, want literal 0", o2.CongestionPatience)
	}
}

func TestValidateCheckpointOpts(t *testing.T) {
	for _, good := range []string{"", "setup", "wirelength", "routability",
		"legalize", "detailed", "route_iter:0", "route_iter:17"} {
		opt := Options{CheckpointAfter: good, CheckpointPath: "x"}
		if err := validateCheckpointOpts(&opt); err != nil {
			t.Errorf("point %q rejected: %v", good, err)
		}
	}
	for _, bad := range []string{"eval", "route_iter:", "route_iter:-1",
		"route_iter:x", "phase1"} {
		opt := Options{CheckpointAfter: bad, CheckpointPath: "x"}
		if err := validateCheckpointOpts(&opt); err == nil {
			t.Errorf("point %q accepted, want error", bad)
		}
	}
	opt := Options{CheckpointAfter: "wirelength"}
	if err := validateCheckpointOpts(&opt); err == nil {
		t.Error("CheckpointAfter without CheckpointPath accepted, want error")
	}
}

// checkpointAt runs the design with a scheduled checkpoint and returns the
// checkpoint file path and the (un-flushed) trace of the first half.
func checkpointAt(t *testing.T, design, point string, obs *telemetry.Observer) string {
	t.Helper()
	ckPath := filepath.Join(t.TempDir(), "run.ckpt")
	d := synth.MustGenerate(design)
	opt := fastOpts(ModeOurs)
	opt.Workers = 1
	opt.Observer = obs
	opt.CheckpointPath = ckPath
	opt.CheckpointAfter = point
	_, err := Place(d, opt)
	if !errors.Is(err, ErrCheckpointed) {
		t.Fatalf("Place with CheckpointAfter=%q returned %v, want ErrCheckpointed", point, err)
	}
	return ckPath
}

// TestCheckpointRoundTrip: parse a real mid-loop checkpoint (GP state, loop
// state, congestion state, telemetry — every section populated) and write it
// back; the serialization must be byte-identical.
func TestCheckpointRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("full placement run; skipped in -short")
	}
	var trace bytes.Buffer
	ckPath := checkpointAt(t, "tiny_hot", "route_iter:1", telemetry.NewObserver(&trace))
	raw, err := os.ReadFile(ckPath)
	if err != nil {
		t.Fatal(err)
	}
	ck, err := readCheckpoint(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if !ck.HasGP || !ck.HasLoop || !ck.HasCong || ck.Tel == nil {
		t.Fatalf("mid-loop checkpoint misses sections: gp=%v loop=%v cong=%v tel=%v",
			ck.HasGP, ck.HasLoop, ck.HasCong, ck.Tel != nil)
	}
	var rewritten bytes.Buffer
	if err := writeCheckpoint(&rewritten, ck); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw, rewritten.Bytes()) {
		a := strings.Split(string(raw), "\n")
		b := strings.Split(string(rewritten.Bytes()), "\n")
		for i := 0; i < len(a) && i < len(b); i++ {
			if a[i] != b[i] {
				t.Fatalf("write→read→write differs at line %d:\n  first:  %.120s\n  second: %.120s", i+1, a[i], b[i])
			}
		}
		t.Fatalf("write→read→write differs in length: %d vs %d lines", len(a), len(b))
	}
}

// TestScheduledCheckpointResume is the tentpole acceptance test: stop at a
// scheduled point, resume in a fresh process state (fresh design object,
// fresh Observer), and require the final placement, congestion history,
// result summary AND the concatenated canonical telemetry trace to be
// byte-identical to an uninterrupted run.
func TestScheduledCheckpointResume(t *testing.T) {
	if testing.Short() {
		t.Skip("full placement runs; skipped in -short")
	}
	for _, tc := range []struct{ design, point string }{
		{"tiny_hot", "wirelength"},
		{"tiny_hot", "route_iter:2"},
		{"tiny_open", "wirelength"},
	} {
		tc := tc
		t.Run(tc.design+"/"+tc.point, func(t *testing.T) {
			refRes, refPos, refTrace := placeRun(t, tc.design, 1)

			var buf1 bytes.Buffer
			ckPath := checkpointAt(t, tc.design, tc.point, telemetry.NewObserver(&buf1))
			// No Flush on the first half: the stream must stop exactly at the
			// checkpoint so the resumed half continues it.

			var buf2 bytes.Buffer
			obs2 := telemetry.NewObserver(&buf2)
			d := synth.MustGenerate(tc.design) // fresh design: positions come from the checkpoint
			ckf, err := os.Open(ckPath)
			if err != nil {
				t.Fatal(err)
			}
			res, err := ResumeContext(context.Background(), d, ckf, Options{Workers: 1, Observer: obs2})
			ckf.Close()
			if err != nil {
				t.Fatalf("resume: %v", err)
			}
			if err := obs2.Flush(); err != nil {
				t.Fatal(err)
			}

			for i := range d.Cells {
				if math.Float64bits(d.Cells[i].X) != math.Float64bits(refPos[2*i]) ||
					math.Float64bits(d.Cells[i].Y) != math.Float64bits(refPos[2*i+1]) {
					t.Fatalf("cell %d position (%v,%v) differs from uninterrupted (%v,%v)",
						i, d.Cells[i].X, d.Cells[i].Y, refPos[2*i], refPos[2*i+1])
				}
			}
			if res.WLIters != refRes.WLIters || res.RouteIters != refRes.RouteIters ||
				res.HPWLFinal != refRes.HPWLFinal || res.FinalOverflow != refRes.FinalOverflow ||
				res.Metrics != refRes.Metrics {
				t.Errorf("result summary differs:\n  uninterrupted: %+v %+v\n  resumed:       %+v %+v",
					refRes.Metrics, *refRes, res.Metrics, *res)
			}
			if len(res.CongestionHistory) != len(refRes.CongestionHistory) {
				t.Fatalf("congestion history length %d != %d", len(res.CongestionHistory), len(refRes.CongestionHistory))
			}
			for i := range refRes.CongestionHistory {
				if math.Float64bits(res.CongestionHistory[i]) != math.Float64bits(refRes.CongestionHistory[i]) {
					t.Errorf("congestion history[%d] %v != %v", i, res.CongestionHistory[i], refRes.CongestionHistory[i])
				}
			}

			concat := append(append([]byte(nil), buf1.Bytes()...), buf2.Bytes()...)
			canon, err := telemetry.StripTimings(concat)
			if err != nil {
				t.Fatalf("concatenated trace does not canonicalize: %v", err)
			}
			if !bytes.Equal(canon, refTrace) {
				a := strings.Split(string(refTrace), "\n")
				b := strings.Split(string(canon), "\n")
				for i := 0; i < len(a) && i < len(b); i++ {
					if a[i] != b[i] {
						t.Fatalf("canonical traces diverge at line %d:\n  uninterrupted: %.200s\n  resumed:       %.200s",
							i+1, a[i], b[i])
					}
				}
				t.Fatalf("canonical traces differ in length: %d vs %d lines", len(a), len(b))
			}
		})
	}
}

// TestResumeRejectsMismatches: the checkpoint is authoritative; a wrong
// design or conflicting options must be refused up front.
func TestResumeRejectsMismatches(t *testing.T) {
	if testing.Short() {
		t.Skip("full placement run; skipped in -short")
	}
	ckPath := checkpointAt(t, "tiny_hot", "wirelength", nil)
	read := func() []byte {
		raw, err := os.ReadFile(ckPath)
		if err != nil {
			t.Fatal(err)
		}
		return raw
	}
	// Wrong design.
	other := synth.MustGenerate("tiny_open")
	if _, err := ResumeContext(context.Background(), other, bytes.NewReader(read()), Options{}); err == nil {
		t.Error("resume on a different design accepted, want error")
	}
	// Conflicting run-defining option.
	d := synth.MustGenerate("tiny_hot")
	if _, err := ResumeContext(context.Background(), d, bytes.NewReader(read()), Options{MaxWLIters: 7}); err == nil {
		t.Error("resume with conflicting MaxWLIters accepted, want error")
	}
	// Matching explicit options are fine; design is restored and completes.
	opt := fastOpts(ModeOurs)
	opt.Workers = 1
	if _, err := ResumeContext(context.Background(), d, bytes.NewReader(read()), opt); err != nil {
		t.Errorf("resume with matching explicit options failed: %v", err)
	}
	// Truncated checkpoint.
	raw := read()
	if _, err := readCheckpoint(bytes.NewReader(raw[:len(raw)/2])); err == nil {
		t.Error("truncated checkpoint accepted, want error")
	}
}

// cancelOnLog cancels a context the first time a log line containing the
// trigger substring is written — a deterministic way to land a cancellation
// inside a specific pipeline phase.
type cancelOnLog struct {
	cancel  context.CancelFunc
	trigger string
	fired   bool
}

func (c *cancelOnLog) Write(p []byte) (int, error) {
	if !c.fired && strings.Contains(string(p), c.trigger) {
		c.fired = true
		c.cancel()
	}
	return len(p), nil
}

// TestCancellation drops a cancellation into each phase of the pipeline —
// the wirelength loop, a routability iteration, legalization — and requires
// PlaceContext to return ctx.Err() promptly with a valid checkpoint on
// disk, from which a resumed run reproduces the uninterrupted final
// placement bit-for-bit. It also watches for leaked goroutines: every
// parallel kernel must join its workers even on the cancellation path.
func TestCancellation(t *testing.T) {
	if testing.Short() {
		t.Skip("full placement runs; skipped in -short")
	}
	refD := synth.MustGenerate("tiny_hot")
	refOpt := fastOpts(ModeOurs)
	refOpt.Workers = 1
	refRes, err := Place(refD, refOpt)
	if err != nil {
		t.Fatal(err)
	}

	baseline := testutil.GoroutineBaseline()
	for _, tc := range []struct{ name, trigger string }{
		{"wirelength", "phase 1:"},
		{"route_iter", "route iter 1:"},
		{"legalize", "legalizing"},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			ckPath := filepath.Join(t.TempDir(), "cancel.ckpt")
			d := synth.MustGenerate("tiny_hot")
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			opt := fastOpts(ModeOurs)
			opt.Workers = 2 // exercise the parallel kernels' cancellation path
			opt.CheckpointPath = ckPath
			opt.Log = &cancelOnLog{cancel: cancel, trigger: tc.trigger}
			res, err := PlaceContext(ctx, d, opt)
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("PlaceContext returned %v, want context.Canceled", err)
			}
			if res == nil {
				t.Fatal("cancelled run returned no partial result")
			}

			ckf, err := os.Open(ckPath)
			if err != nil {
				t.Fatalf("no checkpoint written on cancellation: %v", err)
			}
			ck, err := readCheckpoint(ckf)
			ckf.Close()
			if err != nil {
				t.Fatalf("cancellation checkpoint does not parse: %v", err)
			}
			t.Logf("cancelled at cursor %s/%d/%d", ck.Cur.stage, ck.Cur.iter, ck.Cur.step)

			ckf, err = os.Open(ckPath)
			if err != nil {
				t.Fatal(err)
			}
			res2, err := ResumeContext(context.Background(), d, ckf, Options{Workers: 1})
			ckf.Close()
			if err != nil {
				t.Fatalf("resume after cancellation: %v", err)
			}
			for i := range d.Cells {
				if math.Float64bits(d.Cells[i].X) != math.Float64bits(refD.Cells[i].X) ||
					math.Float64bits(d.Cells[i].Y) != math.Float64bits(refD.Cells[i].Y) {
					t.Fatalf("cell %d position (%v,%v) differs from uninterrupted (%v,%v)",
						i, d.Cells[i].X, d.Cells[i].Y, refD.Cells[i].X, refD.Cells[i].Y)
				}
			}
			if res2.HPWLFinal != refRes.HPWLFinal || res2.Metrics != refRes.Metrics ||
				res2.RouteIters != refRes.RouteIters {
				t.Errorf("resumed result differs from uninterrupted:\n  uninterrupted: %+v\n  resumed:       %+v",
					*refRes, *res2)
			}
		})
	}

	// Goroutine accounting: allow the runtime a moment to retire workers,
	// then require the count back near the pre-test baseline.
	testutil.AssertNoGoroutineLeak(t, baseline)
}
