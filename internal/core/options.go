// Package core assembles the full routability-driven global placement flow
// of the paper (Fig. 2): initial wirelength-driven electrostatic placement,
// the routability loop (global routing → momentum cell inflation → dynamic
// PG density → congestion gradients → Nesterov steps), and the finishing
// legalization + detailed placement. Three placer modes reproduce the Table I
// columns, and per-technique switches reproduce the Table II ablation.
package core

import (
	"fmt"
	"io"
	"time"

	"repro/internal/eval"
	"repro/internal/guard"
	"repro/internal/guard/inject"
	"repro/internal/telemetry"
)

// Mode selects which placer of Table I runs.
type Mode int

const (
	// ModeWirelength is the pure wirelength-driven placer (the paper's
	// Xplace column): no routability optimization at all.
	ModeWirelength Mode = iota
	// ModeBaselineRoute approximates Xplace-Route: monotone cell inflation
	// from the congestion map plus a one-shot static PG-rail density
	// pre-adjustment — no net moving, no momentum, no dynamic adaptation.
	ModeBaselineRoute
	// ModeOurs is the paper's framework with all three techniques
	// (configurable individually through Techniques for the ablation).
	ModeOurs
)

func (m Mode) String() string {
	switch m {
	case ModeWirelength:
		return "xplace"
	case ModeBaselineRoute:
		return "xplace-route"
	case ModeOurs:
		return "ours"
	default:
		return "unknown"
	}
}

// Techniques toggles the paper's three contributions inside ModeOurs,
// mirroring Table II's MCI / DC / DPA columns, plus the extra ablation knobs
// indexed in DESIGN.md.
type Techniques struct {
	// MCI enables momentum-based cell inflation (Sec. III-B); when false,
	// the monotone baseline inflator is used instead.
	MCI bool
	// DC enables the differentiable congestion term with net moving
	// (Sec. III-A).
	DC bool
	// DPA enables dynamic pin-accessibility density adjustment (Sec. III-C).
	DPA bool

	// MomentumAlpha overrides Eq. 11's α when positive (ablation A1).
	MomentumAlpha float64
	// InflationScheme overrides the inflation policy regardless of MCI:
	// "momentum", "monotonic" or "present" (the memoryless prior-art scheme
	// of DREAMPlace/RePlAce the paper's Sec. I criticizes). Empty selects by
	// the MCI flag.
	InflationScheme string
	// CongestionThreshold overrides Algorithm 2's multi-pin congestion
	// threshold (paper default 0.7) when positive.
	CongestionThreshold float64
	// FixedLambda2 disables Eq. 10 and uses this constant λ₂ when positive
	// (ablation A2).
	FixedLambda2 float64
	// VirtualAtMidpoint places virtual cells at segment midpoints instead
	// of the Eq. 8 max-congestion point (ablation A3).
	VirtualAtMidpoint bool
}

// AllTechniques returns the full paper configuration.
func AllTechniques() Techniques { return Techniques{MCI: true, DC: true, DPA: true} }

// Options configures a placement run.
//
// Sentinel convention: for every numeric option whose zero value is itself a
// meaningful setting, 0 selects the documented default and any NEGATIVE value
// selects the literal zero. This avoids the classic zero-value trap where
// Options{WLOverflowStop: 0} silently becomes 0.12: callers who really want
// "threshold 0" or "no patience" pass -1.
type Options struct {
	Mode Mode
	Tech Techniques

	// GridHint sets the bin/G-cell resolution (power-of-two rounded); 0
	// chooses automatically from the design size.
	GridHint int
	// MaxWLIters bounds the wirelength-driven phase (default 400).
	MaxWLIters int
	// WLOverflowStop ends the wirelength phase at this density overflow
	// (default 0.12). Zero is a meaningful threshold ("never stop early"),
	// so the sentinel convention applies: 0 selects the default, a negative
	// value selects threshold 0.
	WLOverflowStop float64
	// MaxRouteIters bounds the routability loop (default 24).
	MaxRouteIters int
	// StepsPerRouteIter is the number of Nesterov steps between router
	// invocations (default 12).
	StepsPerRouteIter int
	// CongestionPatience stops the routability loop after this many
	// non-improving router calls (Fig. 2's "C(x,y) no longer decreases";
	// default 4). Zero patience ("stop at the first non-improving call")
	// is meaningful, so the sentinel convention applies: 0 selects the
	// default, a negative value selects zero patience.
	CongestionPatience int

	// Levels enables the multilevel clustered flow: the design is coarsened
	// Levels−1 times by internal/cluster, placed coarsest-first, and each
	// solution is interpolated down to seed the next finer level. 0 or 1
	// runs the flat single-level pipeline (the default). Coarse levels run
	// global placement only (no legalization/detailed/eval) with a grid
	// auto-sized from the coarse cell count; the finest level runs the full
	// pipeline under the caller's options. Every Workers setting still
	// produces byte-identical placements, and checkpoint/resume works at any
	// level (boundary points gain an "L<k>/" prefix on coarse levels, e.g.
	// "L2/wirelength", "L1/route_iter:3").
	Levels int
	// ClusterMaxSize caps the number of base cells a cluster may absorb
	// across the whole hierarchy (see cluster.Coarsen). Only meaningful with
	// Levels ≥ 2. Sentinel convention: 0 selects the default 4^(Levels−1)
	// (each level targets a ~4× reduction), a negative value removes the
	// cap entirely.
	ClusterMaxSize int

	// Predict enables the learned congestion pre-oracle (internal/predict):
	// a ridge regression over RUDY, pin-density and macro-proximity feature
	// planes, fitted online against the router's own utilization maps. Every
	// fresh route iteration first asks the oracle how much the predicted
	// per-G-cell utilization has drifted since the last REAL router call;
	// below PredictThreshold the call is skipped (route.skipped_calls) and
	// the predicted utilization seeds cell inflation instead, so bloating
	// keeps tracking congestion without paying for routing. Off by default:
	// runs without it are byte-identical to builds without the predictor
	// (no predict.* metrics ever enter the registry). With it on, runs stay
	// byte-identical across Workers settings and checkpoint/resume — the
	// feature planes are shard-merged deterministically and the fitted
	// weights serialize through the checkpoint.
	Predict bool
	// PredictThreshold is the skip gate: a route call is skipped only when
	// the mean absolute predicted-utilization delta per G-cell since the
	// last real call stays below it AND the loop is already in a
	// non-improving stretch (the last real call did not beat the best
	// overflow score), so improving iterations always see the real router.
	// Sentinel convention: 0 selects the default 0.05, a negative value
	// selects threshold 0 (never skip). Only meaningful with Predict.
	PredictThreshold float64

	// MLWarmStart warm-starts λ₁ and γ at the finer multilevel levels from
	// the coarse level's converged phase-1 state instead of re-running the
	// full wirelength ramp: the fine level's ePlace λ₁ initialization is
	// multiplied by the growth the coarse level had accumulated, γ starts
	// from the coarse level's final overflow, and the phase-1 early-stop
	// iteration floor drops from 20 to 5. Off by default (it changes the
	// multilevel trajectory); only meaningful with Levels ≥ 2. Deterministic
	// and checkpoint-safe: the warm state serializes so resumed runs replay
	// identically.
	MLWarmStart bool

	// CheckpointPath, when non-empty, is where the run writes its state
	// checkpoint: at the scheduled CheckpointAfter point, or — on context
	// cancellation — at the last consistent pipeline position reached. The
	// file is written atomically (temp file + rename). Empty disables
	// checkpointing.
	CheckpointPath string
	// CheckpointAfter schedules a checkpoint-and-stop: when the named
	// pipeline point completes, the state is written to CheckpointPath and
	// the run returns ErrCheckpointed. Valid points are the stage names
	// "setup", "wirelength", "routability", "legalize", "detailed", and
	// "route_iter:K" (after route iteration K of the routability loop
	// completes, 0-based). A point the run never reaches (e.g. a route
	// iteration after the loop converged) lets the run finish normally.
	// Empty disables scheduled checkpoints. Requires CheckpointPath.
	CheckpointAfter string

	// BoundaryHook, when non-nil, is consulted at every checkpoint boundary —
	// after each finished stage and after each completed route iteration, the
	// same points CheckpointAfter can name. The point string is the boundary's
	// name ("wirelength", "route_iter:3", …). The returned BoundaryAction lets
	// a supervisor (the job server's scheduler) persist the run's state
	// mid-flight or stop it cooperatively:
	//
	//   - BoundaryContinue: nothing happens.
	//   - BoundaryCheckpoint: the state is written to CheckpointPath and the
	//     run continues. Capturing is read-only and emits no telemetry, so
	//     periodic persistence never perturbs the run or its trace.
	//   - BoundaryStop: the state is written to CheckpointPath and the run
	//     stops with ErrCheckpointed — exactly the scheduled-checkpoint path,
	//     so a resume is a byte-exact trace continuation. This is the
	//     pause/preemption primitive: the stage-graph cursor makes the stop
	//     point explicit and the resume deterministic.
	//
	// Checkpointing actions require CheckpointPath and are ignored without it.
	// BoundaryHook is environment, not algorithm state: it is never serialized
	// into checkpoints and always taken from the caller on resume.
	BoundaryHook func(point string) BoundaryAction

	// DisableCancelCheckpoint suppresses the best-effort checkpoint normally
	// written to CheckpointPath when the run is cancelled. The job server sets
	// it: cancellation checkpoints are taken mid-step (position-identical but
	// not trace-identical on resume), and a supervisor that persists scheduled
	// boundary checkpoints must not let a cancellation overwrite its last
	// trace-exact migration point.
	DisableCancelCheckpoint bool

	// Workers caps the goroutines used by the parallel kernels (wirelength
	// gradient, density rasterization, Poisson transforms and the router's
	// candidate choice). 0 selects runtime.NumCPU(); 1 runs fully serial.
	// Every setting produces byte-identical placements: all parallel
	// reductions merge a fixed number of shards in fixed index order, so
	// the float summation tree never depends on the worker count.
	Workers int

	// Guard configures the numeric guardrails (invariant sentinels and
	// divergence recovery; see internal/guard and DESIGN.md §9). The zero
	// value — policy Off — disables guarding entirely: no sentinel scans, no
	// extra telemetry metrics, byte-identical traces to builds without the
	// guard layer. Guard settings are serialized into checkpoints and follow
	// the same merge rules as the algorithm options.
	Guard guard.Config

	// FaultInjector, when non-nil, arms deterministic fault injection at the
	// named points of internal/guard/inject (tests and chaos runs only; nil
	// in production). It is environment, not algorithm state: never
	// serialized into checkpoints, always taken from the caller.
	FaultInjector *inject.Registry

	// SkipLegalize and SkipDetailed shorten test runs.
	SkipLegalize bool
	SkipDetailed bool

	// Log, when non-nil, receives progress lines.
	Log io.Writer

	// Observer, when non-nil, receives the run's full telemetry: the
	// hierarchical span trace, per-iteration snapshots, the log events
	// (every Log line is also a trace event, so text logs and traces can
	// never drift apart) and the metrics registry. The same Observer may
	// be shared across several Place calls; the caller flushes it. A nil
	// Observer disables all instrumentation at zero cost.
	Observer *telemetry.Observer
}

// DefaultGridHint picks the bin/G-cell resolution for a design size; the
// density bins and routing G-cells share it (paper Sec. II-B).
func DefaultGridHint(numCells int) int {
	switch {
	case numCells <= 800:
		return 32
	case numCells <= 8000:
		return 64
	case numCells <= 80000:
		return 128
	case numCells <= 400000:
		return 256
	default:
		return 512
	}
}

func (o *Options) setDefaults(numCells int) {
	if o.GridHint == 0 {
		o.GridHint = DefaultGridHint(numCells)
	}
	if o.MaxWLIters == 0 {
		o.MaxWLIters = 400
	}
	// WLOverflowStop and CongestionPatience follow the sentinel convention
	// documented on Options: 0 = default, negative = literal zero.
	if o.WLOverflowStop == 0 {
		o.WLOverflowStop = 0.12
	} else if o.WLOverflowStop < 0 {
		o.WLOverflowStop = 0
	}
	if o.MaxRouteIters == 0 {
		o.MaxRouteIters = 24
	}
	if o.StepsPerRouteIter == 0 {
		o.StepsPerRouteIter = 12
	}
	if o.CongestionPatience == 0 {
		o.CongestionPatience = 4
	} else if o.CongestionPatience < 0 {
		o.CongestionPatience = 0
	}
	if o.Levels > 1 {
		if o.ClusterMaxSize == 0 {
			o.ClusterMaxSize = 1 << (2 * (o.Levels - 1)) // 4^(Levels−1)
		} else if o.ClusterMaxSize < 0 {
			o.ClusterMaxSize = 0 // no cap
		}
	}
	if o.Predict {
		// PredictThreshold follows the sentinel convention: 0 = default,
		// negative = literal zero (the gate then never skips).
		if o.PredictThreshold == 0 {
			o.PredictThreshold = 0.05
		} else if o.PredictThreshold < 0 {
			o.PredictThreshold = 0
		}
	}
	if o.Guard.Enabled() {
		o.Guard.SetDefaults()
	}
}

// logf emits one progress line to BOTH sinks from a single call site: the
// plain-text Log writer and (as a deterministic "log" trace event) the
// Observer. Messages must not interpolate wall-clock times — use timingf
// for those so determinism-checked traces stay clean.
func (o *Options) logf(format string, args ...any) {
	if o.Log == nil && o.Observer == nil {
		return
	}
	msg := fmt.Sprintf(format, args...)
	o.Observer.Log(msg)
	if o.Log != nil {
		fmt.Fprintln(o.Log, msg)
	}
}

// timingf is logf for messages carrying wall-clock content; the trace
// event is kind "timing", which telemetry.StripTimings removes when
// canonicalizing a trace for run-to-run comparison.
func (o *Options) timingf(format string, args ...any) {
	if o.Log == nil && o.Observer == nil {
		return
	}
	msg := fmt.Sprintf(format, args...)
	o.Observer.Timing(msg)
	if o.Log != nil {
		fmt.Fprintln(o.Log, msg)
	}
}

// Result reports a finished placement run.
type Result struct {
	Mode Mode

	// PlaceTime is the total placement runtime (the paper's PT).
	PlaceTime time.Duration
	// RouteTime is the final evaluation routing runtime (the paper's RT
	// proxy — see DESIGN.md on the Innovus substitution).
	RouteTime time.Duration

	// Metrics is the post-route scorecard (DRWL, #DRVias, #DRVs).
	Metrics eval.Metrics

	// HPWL after each stage, for diagnostics.
	HPWLGlobal    float64
	HPWLLegalized float64
	HPWLFinal     float64

	WLIters int
	// RouteIters counts router invocations of the routability loop; it
	// always equals len(CongestionHistory).
	RouteIters int
	// FinalOverflow is the density overflow at the end of global placement.
	FinalOverflow float64
	// CongestionHistory is the weighted congestion after each router call.
	CongestionHistory []float64
	// LegalizeDisp is the total legalization displacement.
	LegalizeDisp float64

	// StageTimings breaks the run down by pipeline stage (span name,
	// count, total duration) in first-seen order, covering both PlaceTime
	// and RouteTime spans. Populated only when Options.Observer is set.
	StageTimings []telemetry.StageTiming
}
