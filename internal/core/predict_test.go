package core

import (
	"bytes"
	"context"
	"errors"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/synth"
	"repro/internal/telemetry"
)

// predictOpts is fastOpts with the congestion predictor on and a generous
// threshold, so the gate actually fires within the shortened loop budget.
func predictOpts() Options {
	opt := fastOpts(ModeOurs)
	opt.MaxRouteIters = 10
	opt.Predict = true
	opt.PredictThreshold = 0.5
	return opt
}

// predictRun places design with the predictor on and returns the result,
// final positions, canonical trace, and the two gate counters.
func predictRun(t *testing.T, design string, workers int, opt Options) (*Result, []float64, []byte, int64, int64) {
	t.Helper()
	d := synth.MustGenerate(design)
	var trace bytes.Buffer
	obs := telemetry.NewObserver(&trace)
	opt.Workers = workers
	opt.Observer = obs
	res, err := Place(d, opt)
	if err != nil {
		t.Fatal(err)
	}
	calls := obs.Counter("route.calls").Value()
	skips := obs.Counter("route.skipped_calls").Value()
	if err := obs.Flush(); err != nil {
		t.Fatal(err)
	}
	pos := make([]float64, 0, 2*len(d.Cells))
	for i := range d.Cells {
		pos = append(pos, d.Cells[i].X, d.Cells[i].Y)
	}
	canon, err := telemetry.StripTimings(trace.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	return res, pos, canon, calls, skips
}

// TestPredictSkipsCallsAndKeepsResult: the gate must skip at least one router
// call (strictly fewer real calls than the predictor-off run) while the loop
// still terminates and produces a legal result.
func TestPredictSkipsCallsAndKeepsResult(t *testing.T) {
	if testing.Short() {
		t.Skip("full placement runs; skipped in -short")
	}
	offOpt := predictOpts()
	offOpt.Predict = false
	offOpt.PredictThreshold = 0
	var offTrace bytes.Buffer
	offObs := telemetry.NewObserver(&offTrace)
	offOpt.Workers = 1
	offOpt.Observer = offObs
	dOff := synth.MustGenerate("tiny_hot")
	if _, err := Place(dOff, offOpt); err != nil {
		t.Fatal(err)
	}
	offCalls := offObs.Counter("route.calls").Value()

	res, _, _, calls, skips := predictRun(t, "tiny_hot", 1, predictOpts())
	if skips == 0 {
		t.Fatal("predictor never skipped a route call")
	}
	if calls >= offCalls {
		t.Fatalf("predictor-on made %d route calls, predictor-off made %d — want strictly fewer", calls, offCalls)
	}
	if res.RouteIters != int(calls) {
		t.Fatalf("RouteIters %d != route.calls %d: skipped iterations must not count as router calls",
			res.RouteIters, calls)
	}
}

// TestPredictOffRegistersNoMetrics: with Predict off, no predict.* metric may
// enter the registry — the canonical trace must stay byte-identical to a
// build without the predictor.
func TestPredictOffRegistersNoMetrics(t *testing.T) {
	if testing.Short() {
		t.Skip("full placement run; skipped in -short")
	}
	d := synth.MustGenerate("tiny_hot")
	obs := telemetry.NewObserver(nil)
	opt := fastOpts(ModeOurs)
	opt.Workers = 1
	opt.Observer = obs
	if _, err := Place(d, opt); err != nil {
		t.Fatal(err)
	}
	for _, m := range obs.Metrics.Snapshot() {
		if strings.HasPrefix(m.Name, "predict.") || m.Name == "route.skipped_calls" {
			t.Errorf("metric %s registered with Predict off", m.Name)
		}
	}
}

// TestPredictIdenticalAcrossWorkerCounts: with the predictor on, placements
// and canonical traces must stay bitwise identical for any worker count —
// the gate decisions are a pure function of deterministic feature planes.
func TestPredictIdenticalAcrossWorkerCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("full placement runs; skipped in -short")
	}
	_, refPos, refTrace, _, refSkips := predictRun(t, "tiny_hot", 1, predictOpts())
	if refSkips == 0 {
		t.Fatal("test needs at least one skipped call to exercise the gated path")
	}
	for _, w := range []int{4, 16} {
		_, pos, canon, _, skips := predictRun(t, "tiny_hot", w, predictOpts())
		if skips != refSkips {
			t.Fatalf("workers=%d skipped %d calls, workers=1 skipped %d", w, skips, refSkips)
		}
		for i := range refPos {
			if math.Float64bits(pos[i]) != math.Float64bits(refPos[i]) {
				t.Fatalf("workers=%d coordinate %d differs bitwise from workers=1", w, i)
			}
		}
		if !bytes.Equal(canon, refTrace) {
			t.Fatalf("workers=%d canonical trace differs from workers=1", w)
		}
	}
}

// TestPredictCheckpointResume: a predictor-on run checkpointed mid-loop must
// resume to the identical placement AND the identical canonical trace — the
// oracle's normal equations, weights and gate reference ride the checkpoint.
func TestPredictCheckpointResume(t *testing.T) {
	if testing.Short() {
		t.Skip("full placement runs; skipped in -short")
	}
	refRes, refPos, refTrace, _, refSkips := predictRun(t, "tiny_hot", 1, predictOpts())
	if refSkips == 0 {
		t.Fatal("test needs at least one skipped call after the checkpoint")
	}

	ckPath := filepath.Join(t.TempDir(), "run.ckpt")
	var buf1 bytes.Buffer
	opt := predictOpts()
	opt.Workers = 1
	opt.Observer = telemetry.NewObserver(&buf1)
	opt.CheckpointPath = ckPath
	opt.CheckpointAfter = "route_iter:1"
	d := synth.MustGenerate("tiny_hot")
	if _, err := Place(d, opt); !errors.Is(err, ErrCheckpointed) {
		t.Fatalf("Place returned %v, want ErrCheckpointed", err)
	}

	var buf2 bytes.Buffer
	obs2 := telemetry.NewObserver(&buf2)
	d2 := synth.MustGenerate("tiny_hot")
	ckf, err := os.Open(ckPath)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ResumeContext(context.Background(), d2, ckf, Options{Workers: 1, Observer: obs2})
	ckf.Close()
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	if err := obs2.Flush(); err != nil {
		t.Fatal(err)
	}
	for i := range d2.Cells {
		if math.Float64bits(d2.Cells[i].X) != math.Float64bits(refPos[2*i]) ||
			math.Float64bits(d2.Cells[i].Y) != math.Float64bits(refPos[2*i+1]) {
			t.Fatalf("cell %d position differs from uninterrupted run", i)
		}
	}
	if res.RouteIters != refRes.RouteIters || res.HPWLFinal != refRes.HPWLFinal {
		t.Errorf("result summary differs: %+v vs %+v", res, refRes)
	}
	concat := append(append([]byte(nil), buf1.Bytes()...), buf2.Bytes()...)
	canon, err := telemetry.StripTimings(concat)
	if err != nil {
		t.Fatalf("concatenated trace does not canonicalize: %v", err)
	}
	if !bytes.Equal(canon, refTrace) {
		a := strings.Split(string(refTrace), "\n")
		b := strings.Split(string(canon), "\n")
		for i := 0; i < len(a) && i < len(b); i++ {
			if a[i] != b[i] {
				t.Fatalf("canonical traces diverge at line %d:\n  uninterrupted: %.200s\n  resumed:       %.200s",
					i+1, a[i], b[i])
			}
		}
		t.Fatalf("canonical traces differ in length: %d vs %d lines", len(a), len(b))
	}
}

// TestPredictCheckpointRoundTrip: a checkpoint captured mid-loop with the
// predictor on must carry the predict record and round-trip byte-identically.
func TestPredictCheckpointRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("full placement run; skipped in -short")
	}
	ckPath := filepath.Join(t.TempDir(), "run.ckpt")
	opt := predictOpts()
	opt.Workers = 1
	opt.CheckpointPath = ckPath
	opt.CheckpointAfter = "route_iter:1"
	d := synth.MustGenerate("tiny_hot")
	if _, err := Place(d, opt); !errors.Is(err, ErrCheckpointed) {
		t.Fatal("expected ErrCheckpointed")
	}
	raw, err := os.ReadFile(ckPath)
	if err != nil {
		t.Fatal(err)
	}
	ck, err := readCheckpoint(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if !ck.Predict || len(ck.PredATA) == 0 || len(ck.PredRef) == 0 {
		t.Fatalf("checkpoint misses predictor state: predict=%v ata=%d ref=%d",
			ck.Predict, len(ck.PredATA), len(ck.PredRef))
	}
	var rewritten bytes.Buffer
	if err := writeCheckpoint(&rewritten, ck); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw, rewritten.Bytes()) {
		t.Fatal("predictor checkpoint is not canonical (write→read→write differs)")
	}
}

// TestPredictResumeOptionMismatch: resuming a predictor-off checkpoint with
// Predict set must be refused — it could not reproduce the original run.
func TestPredictResumeOptionMismatch(t *testing.T) {
	if testing.Short() {
		t.Skip("full placement run; skipped in -short")
	}
	ckPath := checkpointAt(t, "tiny_hot", "wirelength", nil)
	d := synth.MustGenerate("tiny_hot")
	ckb, err := os.ReadFile(ckPath)
	if err != nil {
		t.Fatal(err)
	}
	_, err = ResumeContext(context.Background(), d, bytes.NewReader(ckb), Options{Predict: true})
	if err == nil || !strings.Contains(err.Error(), "Predict") {
		t.Fatalf("resume with conflicting Predict returned %v, want Options.Predict mismatch", err)
	}
	_, err = ResumeContext(context.Background(), d, bytes.NewReader(ckb), Options{MLWarmStart: true})
	if err == nil || !strings.Contains(err.Error(), "MLWarmStart") {
		t.Fatalf("resume with conflicting MLWarmStart returned %v, want Options.MLWarmStart mismatch", err)
	}
}
