package core

// The guard layer's pipeline integration: invariant sentinels scanned after
// optimizer steps, the rolling last-good snapshot, and the rollback/backoff
// recovery path. Policy and detection primitives live in internal/guard;
// the deterministic fault injections that exercise this file live in
// internal/guard/inject and are wired in buildRuntime.
//
// Recovery granularity is the optimizer step: the snapshot captures exactly
// the state a Nesterov step mutates (the nesterov.State including the
// cumulative step scale, the λ/γ schedule scalars and the last-eval stats).
// Adaptation-time state (inflation ratios, PG density, congestion fields)
// is not snapshotted — a violation that survives a rollback retry simply
// burns the retry budget and surfaces as a typed error. All decisions are
// pure functions of deterministic values, so a recovered run stays
// byte-identical across worker counts.

import (
	"context"
	"errors"
	"fmt"
	"math"

	"repro/internal/guard"
	"repro/internal/guard/inject"
	"repro/internal/nesterov"
	"repro/internal/netlist"
	"repro/internal/telemetry"
)

// ErrDegenerateDesign is returned by Place/PlaceContext when the design
// cannot be meaningfully placed (no movable cells, no multi-pin nets, or a
// zero-area die) — a clean typed error instead of a downstream panic.
var ErrDegenerateDesign = errors.New("core: degenerate design")

// validatePlaceable guards the pipeline entry against degenerate designs.
// It assumes d already passed netlist.Design.Validate (referential
// integrity); this checks the placement-specific preconditions on top.
func validatePlaceable(d *netlist.Design) error {
	if d.Die.W() <= 0 || d.Die.H() <= 0 {
		return fmt.Errorf("%w: die %v has zero area", ErrDegenerateDesign, d.Die)
	}
	movable := 0
	for ci := range d.Cells {
		if d.Cells[ci].Movable() {
			movable++
		}
	}
	if movable == 0 {
		return fmt.Errorf("%w: no movable cells (%d cells total)", ErrDegenerateDesign, len(d.Cells))
	}
	multiPin := 0
	for ni := range d.Nets {
		if len(d.Nets[ni].Pins) >= 2 {
			multiPin++
		}
	}
	if multiPin == 0 {
		return fmt.Errorf("%w: no net with ≥2 pins (%d nets total)", ErrDegenerateDesign, len(d.Nets))
	}
	return nil
}

// gpSnapshot is the rolling last-good state divergence recovery rolls back
// to: everything an optimizer step mutates. Buffers are reused between
// captures, so the steady-state capture cost is four vector copies.
type gpSnapshot struct {
	valid                      bool
	nes                        nesterov.State
	gamma, lambda1, lambda2    float64
	lastWL, lastOv, lastGradL1 float64
}

// guardRuntime is the per-run state of the guard layer; nil when
// Options.Guard.Policy is Off, so unguarded runs pay one pointer comparison
// per step and register no extra telemetry metrics (canonical traces stay
// unchanged).
type guardRuntime struct {
	cfg        guard.Config
	violations *telemetry.Counter
	recoveries *telemetry.Counter
	retries    int // recoveries used so far (serialized in checkpoints)
	last       gpSnapshot
}

// initGuard builds the guard runtime when guarding is enabled. The
// guard.violations / guard.recoveries counters are resolved here — and only
// here — so a guards-Off run's metrics registry (and therefore its flushed
// trace) is byte-identical to a build without the guard layer.
func (ps *PlacementState) initGuard() error {
	cfg := ps.Opt.Guard
	if !cfg.Enabled() {
		return nil
	}
	if err := cfg.Validate(); err != nil {
		return err
	}
	ps.grd = &guardRuntime{
		cfg:        cfg,
		violations: ps.obs.Counter("guard.violations"),
		recoveries: ps.obs.Counter("guard.recoveries"),
	}
	return nil
}

// wireInjector hooks the deterministic fault injector (tests only; nil in
// production) into the runtime models: the objective gets the WA-gradient
// fault, the density model's RhoHook gets the Poisson-bin fault. Checkpoint
// faults are applied in writeCheckpointNow and the cancel fault in
// checkCancel.
func (ps *PlacementState) wireInjector() {
	inj := ps.Opt.FaultInjector
	if inj == nil {
		return
	}
	ps.obj.inject = inj
	solves := 0
	ps.dens.RhoHook = func(rho []float64) {
		if inj.ShouldFire(inject.PoissonBin, solves) {
			rho[inj.Index(inject.PoissonBin, len(rho))] = math.Inf(1)
		}
		solves++
	}
}

// writeCheckpointNow captures the run state and writes it to
// Options.CheckpointPath (rotating any previous checkpoint file to ".prev"
// first — see writeCheckpointFile), then applies the post-write checkpoint
// faults when the injector is armed for this write.
func (ps *PlacementState) writeCheckpointNow() error {
	path := ps.Opt.CheckpointPath
	if err := writeCheckpointFile(path, ps.capture()); err != nil {
		return err
	}
	if inj := ps.Opt.FaultInjector; inj != nil {
		if inj.ShouldFire(inject.CkptCorrupt, ps.ckptWrites) {
			if err := inj.CorruptFile(path); err != nil {
				return err
			}
		}
		if inj.ShouldFire(inject.CkptTruncate, ps.ckptWrites) {
			if err := inj.TruncateFile(path); err != nil {
				return err
			}
		}
	}
	ps.ckptWrites++
	return nil
}

// checkCancel is the cooperative cancellation check of the step loops, plus
// the deterministic stand-in the Cancel fault injects: when the injector is
// armed for the current optimizer step, the run behaves exactly as if its
// context had been cancelled there.
func (ps *PlacementState) checkCancel(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if ps.optm != nil && ps.Opt.FaultInjector.ShouldFire(inject.Cancel, ps.optm.Steps()) {
		return context.Canceled
	}
	return nil
}

// guardAfterStep runs the sentinel scan after an optimizer step (every
// cfg.CheckEvery steps). It returns retry=true when the caller must redo
// the step it just took (the state has been rolled back to the last-good
// snapshot with a shrunken step), or a typed error when the policy is Fail
// or the retry budget is exhausted.
func (ps *PlacementState) guardAfterStep(where string) (retry bool, err error) {
	g := ps.grd
	if g == nil {
		return false, nil
	}
	if g.cfg.CheckEvery > 1 && ps.optm.Steps()%g.cfg.CheckEvery != 0 {
		return false, nil
	}
	v := ps.scanInvariants(where)
	if v == nil {
		if g.cfg.Policy == guard.Recover {
			g.capture(ps)
		}
		return false, nil
	}
	g.violations.Inc()
	switch g.cfg.Policy {
	case guard.Warn:
		ps.Opt.logf("guard: violation: %s (policy warn: continuing)", v)
		return false, nil
	case guard.Recover:
		if !g.last.valid {
			return false, fmt.Errorf("%w: %s (no last-good snapshot to roll back to)",
				guard.ErrViolation, v)
		}
		if g.retries >= g.cfg.MaxRetries {
			return false, fmt.Errorf("%w: %d recoveries used, then %s",
				guard.ErrBudgetExhausted, g.retries, v)
		}
		g.retries++
		g.recoveries.Inc()
		g.restore(ps)
		ps.optm.ShrinkStep(g.cfg.Backoff)
		ps.Opt.logf("guard: violation: %s — rolled back to last-good state, step scale %g (recovery %d/%d)",
			v, ps.optm.StepScale(), g.retries, g.cfg.MaxRetries)
		return true, nil
	default: // guard.Fail
		return false, fmt.Errorf("%w: %s", guard.ErrViolation, v)
	}
}

// scanInvariants runs the cheap deterministic sentinels: NaN/Inf in the
// optimizer iterates (which covers positions, fillers and any gradient NaN
// from the step that produced them), the last objective stats, cell centers
// outside the die, and the density/Poisson field.
func (ps *PlacementState) scanInvariants(where string) *guard.Violation {
	if v := guard.CheckFinite("positions", where, ps.optm.U()); v != nil {
		return v
	}
	if v := guard.CheckFinite("positions", where, ps.optm.X()); v != nil {
		return v
	}
	if v := guard.CheckScalar("wirelength", where, ps.obj.lastWL); v != nil {
		return v
	}
	if v := guard.CheckRange("overflow", where, ps.obj.lastOverflow, 0, math.MaxFloat64); v != nil {
		return v
	}
	d := ps.D
	for ci := range d.Cells {
		c := &d.Cells[ci]
		if !c.Movable() {
			continue
		}
		if !(c.X >= d.Die.Lo.X && c.X <= d.Die.Hi.X && c.Y >= d.Die.Lo.Y && c.Y <= d.Die.Hi.Y) {
			return &guard.Violation{Sentinel: "cells_outside_die", Where: where, Index: ci, Value: c.X}
		}
	}
	if field, idx, val, ok := ps.dens.ScanNonFinite(); !ok {
		return &guard.Violation{Sentinel: "density_field_" + field, Where: where, Index: idx, Value: val}
	}
	return nil
}

// capture refreshes the rolling last-good snapshot (buffer-reusing).
func (g *guardRuntime) capture(ps *PlacementState) {
	ps.optm.StateInto(&g.last.nes)
	g.last.gamma = ps.wl.Gamma()
	g.last.lambda1 = ps.obj.lambda1
	g.last.lambda2 = ps.obj.lambda2
	g.last.lastWL = ps.obj.lastWL
	g.last.lastOv = ps.obj.lastOverflow
	g.last.lastGradL1 = ps.obj.lastWLGradL1
	g.last.valid = true
}

// restore rolls the optimizer, the λ/γ schedule and the design positions
// back to the last-good snapshot. The density/congestion models need no
// rollback: their fields are recomputed from scratch on the next
// evaluation, and their externally-set state (inflation ratios, PG density)
// is not touched by optimizer steps.
func (g *guardRuntime) restore(ps *PlacementState) {
	// Dimensions always match: the snapshot came from this optimizer.
	if err := ps.optm.SetState(g.last.nes); err != nil {
		panic("core: guard snapshot dimension mismatch: " + err.Error())
	}
	ps.wl.SetGamma(g.last.gamma)
	ps.obj.lambda1 = g.last.lambda1
	ps.obj.lambda2 = g.last.lambda2
	ps.obj.lastWL = g.last.lastWL
	ps.obj.lastOverflow = g.last.lastOv
	ps.obj.lastWLGradL1 = g.last.lastGradL1
	ps.obj.scatter(ps.optm.U())
}
