package core

import (
	"math"

	"repro/internal/congestion"
	"repro/internal/density"
	"repro/internal/geom"
	"repro/internal/guard/inject"
	"repro/internal/netlist"
	"repro/internal/telemetry"
	"repro/internal/wirelength"
)

// objective adapts the placement model (Eq. 5):
//
//	min  Σ WA_e(x,y) + λ₁·D(x,y) + λ₂·C(x,y)
//
// to the nesterov.Objective interface. The optimization variables are the
// centers of all movable cells followed by all filler positions.
type objective struct {
	d    *netlist.Design
	wl   *wirelength.Model
	dens *density.Model
	cong *congestion.Model // nil when the DC technique is off

	movable []int // movable cell indices, fixed order
	nCells  int   // len(movable)
	nFill   int

	lambda1      float64
	lambda2      float64
	fixedLambda2 float64 // >0 → ablation A2
	useCong      bool    // congestion term active this phase

	// lambda1Init records the ePlace initialization value BEFORE the
	// warm-start boost, so the multilevel warm start can capture how much
	// growth a level accumulated (λ₁ / λ₁Init) and hand it to the next
	// finer level. lambda1Boost (> 0) multiplies the lazy initialization —
	// the finer level then starts its ramp where the coarse level ended,
	// in its own gradient scale.
	lambda1Init  float64
	lambda1Boost float64

	// Scratch buffers.
	gWL   []float64 // per netlist cell, 2N
	gDens []float64 // per netlist cell, 2N
	gCong []float64 // per netlist cell, 2N
	gFill []float64 // per filler, 2F

	// Stats from the last Eval.
	lastWL       float64
	lastOverflow float64
	lastStats    congestion.Stats
	lastWLGradL1 float64

	// poissonSolves counts the spectral density solves (telemetry); a nil
	// counter is a no-op, keeping the disabled path allocation-free.
	poissonSolves *telemetry.Counter

	// evals counts Eval calls; it indexes the WA-gradient fault injection.
	// There is exactly one Eval per nesterov.Step, so a checkpoint restore
	// sets it from the serialized step count and injection indices stay
	// comparable across resumed and uninterrupted runs. Retried (rolled-back)
	// steps still advance it: indices count actual evaluations.
	evals  int
	inject *inject.Registry // nil in production
}

func newObjective(d *netlist.Design, wl *wirelength.Model, dens *density.Model, cong *congestion.Model) *objective {
	mov := d.MovableIndices()
	n2 := 2 * len(d.Cells)
	return &objective{
		d:       d,
		wl:      wl,
		dens:    dens,
		cong:    cong,
		movable: mov,
		nCells:  len(mov),
		nFill:   dens.NumFillers(),
		gWL:     make([]float64, n2),
		gDens:   make([]float64, n2),
		gCong:   make([]float64, n2),
		gFill:   make([]float64, 2*dens.NumFillers()),
	}
}

// dim returns the optimization dimension.
func (o *objective) dim() int { return 2 * (o.nCells + o.nFill) }

// gather copies the current design/filler positions into x.
func (o *objective) gather(x []float64) {
	for k, ci := range o.movable {
		x[2*k] = o.d.Cells[ci].X
		x[2*k+1] = o.d.Cells[ci].Y
	}
	copy(x[2*o.nCells:], o.dens.FillerPos)
}

// scatter writes x into the design and filler positions.
func (o *objective) scatter(x []float64) {
	for k, ci := range o.movable {
		o.d.Cells[ci].X = x[2*k]
		o.d.Cells[ci].Y = x[2*k+1]
	}
	copy(o.dens.FillerPos, x[2*o.nCells:])
}

// Eval implements nesterov.Objective.
func (o *objective) Eval(x, grad []float64) float64 {
	evalIdx := o.evals
	o.evals++
	o.scatter(x)

	zero(o.gWL)
	wlVal := o.wl.EvaluateWithGrad(o.gWL)
	if o.inject.ShouldFire(inject.WAGradNaN, evalIdx) {
		// Poison one movable cell's WA gradient entry (a fixed cell's entry
		// would never reach the combined gradient).
		ci := o.movable[o.inject.Index(inject.WAGradNaN, len(o.movable))]
		o.gWL[2*ci] = math.NaN()
	}
	o.lastWL = wlVal
	o.lastWLGradL1 = wirelength.GradL1(o.d, o.gWL)

	o.dens.Compute()
	o.poissonSolves.Inc() // one spectral solve per density computation
	o.lastOverflow = o.dens.Overflow()
	zero(o.gDens)
	o.dens.AccumCellGrad(o.gDens, 1)
	zero(o.gFill)
	o.dens.AccumFillerGrad(o.gFill, 1)

	if o.lambda1 == 0 {
		// First evaluation: λ₁ = ‖∇W‖₁ / ‖∇D‖₁ (ePlace initialization).
		densL1 := wirelength.GradL1(o.d, o.gDens)
		if densL1 > 0 {
			o.lambda1 = o.lastWLGradL1 / densL1
		} else {
			o.lambda1 = 1
		}
		o.lambda1Init = o.lambda1
		if o.lambda1Boost > 0 {
			o.lambda1 *= o.lambda1Boost
		}
	}

	congVal := 0.0
	if o.useCong && o.cong != nil && o.cong.Ready() {
		zero(o.gCong)
		o.lastStats = o.cong.Gradients(o.gCong)
		if o.fixedLambda2 > 0 {
			o.lambda2 = o.fixedLambda2
		} else {
			o.lambda2 = o.cong.Lambda2(o.lastWLGradL1, o.lastStats) // Eq. 10
		}
		congVal = o.cong.Penalty()
	} else {
		o.lambda2 = 0
	}

	// Combine into the flat gradient.
	for k, ci := range o.movable {
		gx := o.gWL[2*ci] + o.lambda1*o.gDens[2*ci]
		gy := o.gWL[2*ci+1] + o.lambda1*o.gDens[2*ci+1]
		if o.lambda2 > 0 {
			gx += o.lambda2 * o.gCong[2*ci]
			gy += o.lambda2 * o.gCong[2*ci+1]
		}
		grad[2*k] = gx
		grad[2*k+1] = gy
	}
	base := 2 * o.nCells
	for k := 0; k < 2*o.nFill; k++ {
		grad[base+k] = o.lambda1 * o.gFill[k]
	}

	return wlVal + o.lambda1*o.dens.Penalty() + o.lambda2*congVal
}

// Precondition implements nesterov.Objective with the ePlace preconditioner:
// each cell's gradient is divided by (pin count + λ₁·area).
func (o *objective) Precondition(grad []float64) {
	for k, ci := range o.movable {
		c := &o.d.Cells[ci]
		p := float64(c.NumPins) + o.lambda1*c.Area()
		if p < 1 {
			p = 1
		}
		grad[2*k] /= p
		grad[2*k+1] /= p
	}
	base := 2 * o.nCells
	fp := o.lambda1 * o.dens.FillerW * o.dens.FillerH
	if fp < 1 {
		fp = 1
	}
	for k := 0; k < 2*o.nFill; k++ {
		grad[base+k] /= fp
	}
}

// Clamp implements nesterov.Objective: keep every object inside the die.
func (o *objective) Clamp(x []float64) {
	die := o.d.Die
	for k, ci := range o.movable {
		c := &o.d.Cells[ci]
		x[2*k] = geom.Clamp(x[2*k], die.Lo.X+c.W/2, die.Hi.X-c.W/2)
		x[2*k+1] = geom.Clamp(x[2*k+1], die.Lo.Y+c.H/2, die.Hi.Y-c.H/2)
	}
	base := 2 * o.nCells
	hw, hh := o.dens.FillerW/2, o.dens.FillerH/2
	for k := 0; k < o.nFill; k++ {
		x[base+2*k] = geom.Clamp(x[base+2*k], die.Lo.X+hw, die.Hi.X-hw)
		x[base+2*k+1] = geom.Clamp(x[base+2*k+1], die.Lo.Y+hh, die.Hi.Y-hh)
	}
}

func zero(s []float64) {
	for i := range s {
		s[i] = 0
	}
}

// spreadInitial places all movable cells (and fillers are already sprinkled)
// near the die center with a deterministic low-discrepancy jitter, the
// standard electrostatic-placement initialization.
func spreadInitial(d *netlist.Design) {
	die := d.Die
	cx, cy := die.Center().X, die.Center().Y
	spanX, spanY := die.W()*0.15, die.H()*0.15
	k := 0
	for ci := range d.Cells {
		c := &d.Cells[ci]
		if !c.Movable() {
			continue
		}
		k++
		c.X = cx + (halton(k, 2)-0.5)*spanX
		c.Y = cy + (halton(k, 3)-0.5)*spanY
	}
	d.ClampToDie()
}

func halton(i, base int) float64 {
	f, r := 1.0, 0.0
	for i > 0 {
		f /= float64(base)
		r += f * float64(i%base)
		i /= base
	}
	return r
}

// cellCongestion fills congAt[i] with the Eq. 3 congestion of the G-cell
// containing each netlist cell's center (the C_i^t of Eq. 11).
func cellCongestion(d *netlist.Design, congFn func(x, y float64) float64, congAt []float64) {
	for ci := range d.Cells {
		congAt[ci] = congFn(d.Cells[ci].X, d.Cells[ci].Y)
	}
}
