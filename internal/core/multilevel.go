package core

// The multilevel clustered flow (Options.Levels ≥ 2): the design is
// coarsened Levels−1 times by internal/cluster's heavy-edge matcher, the
// coarsest level is placed from scratch, and each coarse solution is
// interpolated down to seed the next finer level until the original design
// runs the full pipeline. Every level reuses the flat stage pipeline
// unchanged — a level is just a PlacementState over the level's design with
// derived options — so checkpoint/resume, boundary preemption and the
// byte-identity guarantees all carry over: the hierarchy is a pure function
// of the input design (topology-deterministic matching, position-only
// centroids that are themselves deterministic), so a resumed process
// rebuilds the identical cluster maps and continues any level mid-flight.
//
// Telemetry and boundary points of coarse level k are prefixed "L<k>/"
// ("L2/wirelength", "L1/route_iter:3"); level 0 keeps the flat names, so
// flat runs are byte-identical to builds without this file.

import (
	"context"
	"fmt"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/netlist"
)

// mlRun is the shared context of one multilevel run: the cluster hierarchy
// plus the outer run identity (the caller's design and post-default options)
// that checkpoints serialize regardless of which level they capture.
type mlRun struct {
	orig  *netlist.Design // the finest (caller's) design
	outer Options         // post-setDefaults caller options

	levels   int            // requested Options.Levels
	maxW     int            // resolved ClusterMaxSize (0 = no cap)
	maps     []*cluster.Map // maps[k] coarsens level k onto level k+1
	topLevel int            // coarsest level actually built (len(maps))

	// Warm-start hand-off (Options.MLWarmStart): captured at the end of
	// each level's phase 1 and applied at the next finer level's phase-1
	// entry. warmBoost is the cumulative λ₁ growth (λ₁ / λ₁Init, chaining
	// across levels), warmOverflow the clamped density overflow phase 1
	// converged to. Serialized into checkpoints (the mlwarm record) because
	// resume never re-runs completed coarse levels.
	warmSet      bool
	warmBoost    float64
	warmOverflow float64
}

// design returns the level-k design (level 0 is the original).
func (ml *mlRun) design(k int) *netlist.Design {
	if k == 0 {
		return ml.orig
	}
	return ml.maps[k-1].Coarse
}

// levelOptions derives the options level k's pipeline runs under. Coarse
// levels run global placement only — their solution exists to seed the next
// finer level, so legalization/detailed refinement would be wasted work —
// and auto-size the bin grid from the coarse cell count (the caller's
// GridHint describes the finest level). Environment fields (Workers,
// Observer, checkpointing, hooks) pass through to every level.
func (ml *mlRun) levelOptions(k int) Options {
	opt := ml.outer
	if k > 0 {
		opt.GridHint = DefaultGridHint(len(ml.design(k).Cells))
		opt.SkipLegalize = true
		opt.SkipDetailed = true
	}
	return opt
}

// newLevelState builds a fresh PlacementState for level k.
func (ml *mlRun) newLevelState(k int) *PlacementState {
	opt := ml.levelOptions(k)
	ps := &PlacementState{
		D:     ml.design(k),
		Opt:   opt,
		Res:   &Result{Mode: opt.Mode},
		cur:   cursor{stage: "setup", step: -1},
		obs:   opt.Observer,
		level: k,
		ml:    ml,
	}
	if ps.obs != nil {
		ps.tr = ps.obs.Tracer
	}
	return ps
}

// placeMultilevel is PlaceContext's Levels ≥ 2 path.
func placeMultilevel(ctx context.Context, d *netlist.Design, opt Options) (*Result, error) {
	maps, err := cluster.Hierarchy(d, opt.Levels, opt.ClusterMaxSize)
	if err != nil {
		return nil, fmt.Errorf("core: multilevel: %w", err)
	}
	ml := &mlRun{
		orig:     d,
		outer:    opt,
		levels:   opt.Levels,
		maxW:     opt.ClusterMaxSize,
		maps:     maps,
		topLevel: len(maps),
	}
	sizes := make([]string, 0, ml.topLevel+1)
	for k := ml.topLevel; k >= 0; k-- {
		sizes = append(sizes, fmt.Sprintf("%d", len(ml.design(k).Cells)))
	}
	opt.logf("multilevel: %d levels, cells coarsest→finest %s",
		ml.topLevel+1, strings.Join(sizes, " → "))
	return ml.descend(ctx, ml.newLevelState(ml.topLevel))
}

// descend runs level pipelines from ps's level down to level 0, carrying
// each coarse solution to the next finer level through the cluster map's
// density-aware interpolation. The returned Result is the finest level's,
// with the coarse levels' placement time folded into PlaceTime.
func (ml *mlRun) descend(ctx context.Context, ps *PlacementState) (*Result, error) {
	opt := &ml.outer
	var coarseTime time.Duration
	for {
		res, err := runPipeline(ctx, ps)
		if err != nil {
			if res != nil {
				res.PlaceTime += coarseTime
			}
			return res, err
		}
		if ps.level == 0 {
			res.PlaceTime += coarseTime
			return res, nil
		}
		coarseTime += res.PlaceTime
		m := ml.maps[ps.level-1]
		m.Interpolate()
		opt.logf("level %d done: %d clusters interpolated onto %d cells, HPWL %.0f",
			ps.level, len(m.Coarse.Cells), len(m.Fine.Cells), m.Fine.HPWL())
		ps = ml.newLevelState(ps.level - 1)
	}
}

// resumeMultilevel continues a checkpointed multilevel run: it rebuilds the
// hierarchy from the (identical) input design, restores the captured level's
// state mid-pipeline, and descends through the remaining levels exactly as
// the uninterrupted run would have.
func resumeMultilevel(ctx context.Context, d *netlist.Design, ck *checkpoint, merged Options) (*Result, error) {
	if err := ck.validateDesign(d); err != nil {
		return nil, err
	}
	ml := &mlRun{
		orig:     d,
		outer:    merged,
		levels:   ck.MLLevels,
		maxW:     ck.MLMaxW,
		topLevel: ck.MLTop,
		// Resume never re-runs completed coarse levels, so the warm-start
		// hand-off those levels produced comes from the checkpoint.
		warmSet:      ck.MLWarmSet,
		warmBoost:    ck.MLWarmBoost,
		warmOverflow: ck.MLWarmOv,
	}
	// The hierarchy is only needed while coarse levels remain: a run
	// checkpointed at level 0 has consumed every cluster map already.
	if ck.MLLevel > 0 {
		maps, err := cluster.Hierarchy(d, ck.MLLevels, ck.MLMaxW)
		if err != nil {
			return nil, fmt.Errorf("core: resume: %w", err)
		}
		if len(maps) != ck.MLTop {
			return nil, fmt.Errorf("core: resume: hierarchy rebuilt with %d coarse levels, checkpoint was taken with %d",
				len(maps), ck.MLTop)
		}
		ml.maps = maps
		// No interpolation replay is needed for levels already completed:
		// the checkpoint's cellpos overlay carries the captured level's
		// positions, and every finer level's seed positions are produced by
		// the Interpolate calls the descent below will still perform.
	}
	lvD := ml.design(ck.MLLevel)
	if len(lvD.Cells) != ck.MLCells {
		return nil, fmt.Errorf("core: resume: level %d design has %d cells, checkpoint was taken on %d",
			ck.MLLevel, len(lvD.Cells), ck.MLCells)
	}
	ps, err := ck.restoreInto(lvD, ml.levelOptions(ck.MLLevel), ck.MLLevel, ml)
	if err != nil {
		return nil, err
	}
	return ml.descend(ctx, ps)
}
