package core

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"repro/internal/density"
	"repro/internal/nesterov"
	"repro/internal/synth"
	"repro/internal/telemetry"
	"repro/internal/telemetry/report"
	"repro/internal/wirelength"
)

func TestRouteItersMatchesCongestionHistory(t *testing.T) {
	// Each router call appends one entry to CongestionHistory; RouteIters
	// must count exactly those calls, including the final call before a
	// stall/zero-overflow break.
	for _, mode := range []Mode{ModeBaselineRoute, ModeOurs} {
		d := synth.MustGenerate("tiny_hot")
		res, err := Place(d, fastOpts(mode))
		if err != nil {
			t.Fatal(err)
		}
		if res.RouteIters != len(res.CongestionHistory) {
			t.Errorf("mode %v: RouteIters %d != len(CongestionHistory) %d",
				mode, res.RouteIters, len(res.CongestionHistory))
		}
		if res.RouteIters == 0 {
			t.Errorf("mode %v: no route iterations recorded", mode)
		}
	}
}

// tracedRun places tiny_hot with a trace-collecting observer and returns
// the result, raw trace bytes and the metrics snapshot.
func tracedRun(t *testing.T, logSink *strings.Builder) (*Result, []byte, []telemetry.Metric) {
	t.Helper()
	d := synth.MustGenerate("tiny_hot")
	var trace bytes.Buffer
	obs := telemetry.NewObserver(&trace)
	opt := fastOpts(ModeOurs)
	opt.Observer = obs
	if logSink != nil {
		opt.Log = logSink
	}
	res, err := Place(d, opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := obs.Flush(); err != nil {
		t.Fatal(err)
	}
	return res, trace.Bytes(), obs.Metrics.Snapshot()
}

func TestTraceDeterministic(t *testing.T) {
	// Two identical runs must produce byte-identical canonical traces
	// (wall-clock content stripped) and identical metrics.
	_, trace1, met1 := tracedRun(t, nil)
	_, trace2, met2 := tracedRun(t, nil)

	c1, err := telemetry.StripTimings(trace1)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := telemetry.StripTimings(trace2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(c1, c2) {
		a := strings.Split(string(c1), "\n")
		b := strings.Split(string(c2), "\n")
		for i := 0; i < len(a) && i < len(b); i++ {
			if a[i] != b[i] {
				t.Fatalf("canonical traces diverge at line %d:\n  run1: %s\n  run2: %s", i+1, a[i], b[i])
			}
		}
		t.Fatalf("canonical traces differ in length: %d vs %d lines", len(a), len(b))
	}

	j1, _ := json.Marshal(met1)
	j2, _ := json.Marshal(met2)
	if !bytes.Equal(j1, j2) {
		t.Errorf("metrics snapshots differ:\n%s\nvs\n%s", j1, j2)
	}
}

func TestTraceSpansCoverPlaceTime(t *testing.T) {
	res, raw, _ := tracedRun(t, nil)
	tr, err := report.ReadTrace(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}

	var place, eval, children time.Duration
	for _, s := range tr.Stages {
		switch {
		case s.Name == "place":
			place = s.Total
		case s.Name == "eval":
			eval = s.Total
		case s.Depth == 1: // direct children of "place"
			children += s.Total
		}
	}
	if place == 0 || eval == 0 {
		t.Fatalf("missing top-level spans: place=%v eval=%v", place, eval)
	}
	// The "place" span closes exactly where PlaceTime is measured; they
	// must agree within scheduling noise.
	if diff := (place - res.PlaceTime).Abs(); diff > res.PlaceTime/5+5*time.Millisecond {
		t.Errorf("place span %v vs PlaceTime %v (diff %v)", place, res.PlaceTime, diff)
	}
	if diff := (eval - res.RouteTime).Abs(); diff > res.RouteTime/5+5*time.Millisecond {
		t.Errorf("eval span %v vs RouteTime %v (diff %v)", eval, res.RouteTime, diff)
	}
	// The phase spans must account for most of the place time (the gaps
	// are HPWL computations and logging between stages).
	if children < place/2 {
		t.Errorf("child spans sum to %v, less than half of place %v", children, place)
	}
	if children > place+place/10 {
		t.Errorf("child spans sum to %v, exceeding place %v", children, place)
	}

	// StageTimings on the Result must mirror the trace aggregation.
	if len(res.StageTimings) == 0 {
		t.Fatal("Result.StageTimings empty despite Observer")
	}
	byName := map[string]telemetry.StageTiming{}
	for _, s := range res.StageTimings {
		byName[s.Name] = s
	}
	for _, want := range []string{"place", "setup", "phase1_wirelength",
		"phase2_routability", "route_iter", "route", "nesterov", "legalize",
		"detailed", "eval", "eval.score"} {
		if byName[want].Count == 0 {
			t.Errorf("StageTimings missing stage %q", want)
		}
	}
	if rt := byName["route_iter"]; rt.Count != res.RouteIters {
		t.Errorf("route_iter span count %d != RouteIters %d", rt.Count, res.RouteIters)
	}
}

func TestLogLinesMirroredToTrace(t *testing.T) {
	// Every plain-text log line must also exist as a log/timing event in
	// the trace (satellite: logs and traces can never drift apart).
	var logSink strings.Builder
	_, raw, _ := tracedRun(t, &logSink)
	tr, err := report.ReadTrace(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	eventMsgs := map[string]bool{}
	for _, ev := range tr.Events {
		if ev.Ev == "log" || ev.Ev == "timing" {
			eventMsgs[ev.Msg] = true
		}
	}
	logLines := strings.Split(strings.TrimSpace(logSink.String()), "\n")
	if len(logLines) < 3 {
		t.Fatalf("too few log lines to test: %q", logSink.String())
	}
	for _, line := range logLines {
		if !eventMsgs[line] {
			t.Errorf("log line not in trace: %q", line)
		}
	}
}

func TestTraceSnapshotsPresent(t *testing.T) {
	res, raw, met := tracedRun(t, nil)
	tr, err := report.ReadTrace(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if n := len(tr.Snaps["wl_iter"]); n != res.WLIters {
		t.Errorf("wl_iter snapshots %d != WLIters %d", n, res.WLIters)
	}
	if n := len(tr.Snaps["route_iter"]); n != res.RouteIters {
		t.Errorf("route_iter snapshots %d != RouteIters %d", n, res.RouteIters)
	}
	// One congestion heatmap frame per route iteration, decodable.
	grids := tr.Grids["congestion"]
	if len(grids) != res.RouteIters {
		t.Errorf("congestion grid frames %d != RouteIters %d", len(grids), res.RouteIters)
	}
	for _, g := range grids {
		if g.NX <= 0 || g.NY <= 0 || len(g.Data) != g.NX*g.NY {
			t.Errorf("grid frame iter %d malformed: nx=%d ny=%d len(data)=%d",
				g.Iter, g.NX, g.NY, len(g.Data))
		}
	}
	// The convergence fields the paper's Fig. 2 loop reasons about.
	first := tr.Snaps["route_iter"][0]
	for _, key := range []string{"hpwl", "overflow_score", "max_util",
		"dens_overflow", "lambda1", "lambda2", "gamma", "infl_mean", "infl_max"} {
		if _, ok := first.F[key]; !ok {
			t.Errorf("route_iter snapshot missing field %q: %v", key, first.F)
		}
	}
	// Key registry metrics must be populated.
	byName := map[string]telemetry.Metric{}
	for _, m := range met {
		byName[m.Name] = m
	}
	for _, name := range []string{"objective.evals", "poisson.solves",
		"route.calls", "route.ripup_rounds", "nesterov.step_size",
		"eval.drvs", "place.hpwl_final"} {
		if _, ok := byName[name]; !ok {
			t.Errorf("metrics registry missing %q", name)
		}
	}
	if byName["route.calls"].Value != float64(res.RouteIters) {
		t.Errorf("route.calls %v != RouteIters %d", byName["route.calls"].Value, res.RouteIters)
	}
	if byName["objective.evals"].Value <= 0 || byName["poisson.solves"].Value <= 0 {
		t.Errorf("eval/solve counters empty: %+v", byName)
	}
}

// benchStepObjective builds the real placement objective on a tiny design,
// ready for inner Nesterov steps.
func benchStepObjective(b *testing.B, obs *telemetry.Observer) (*objective, *nesterov.Optimizer) {
	b.Helper()
	d := synth.MustGenerate("tiny_hot")
	spreadInitial(d)
	dens := density.New(d, 32)
	wl := wirelength.New(d, dens.BinW()*5)
	obj := newObjective(d, wl, dens, nil)
	obj.poissonSolves = obs.Counter("poisson.solves")
	x := make([]float64, obj.dim())
	obj.gather(x)
	optm := nesterov.New(x, dens.BinW()*0.1)
	optm.StepMax = dens.BinW() * 4
	if obs != nil {
		evals := obs.Counter("objective.evals")
		stepHist := obs.Histogram("nesterov.step_size")
		optm.OnStep = func(_ int, _, step float64) {
			evals.Inc()
			stepHist.Observe(step)
		}
	}
	return obj, optm
}

// BenchmarkInnerStepNilObserver vs BenchmarkInnerStepWithObserver compare
// the fully-instrumented inner Nesterov step (the hot path) with telemetry
// disabled and enabled. The nil-observer delta against the seed is the
// acceptance bar: 0 allocs/op added.
func BenchmarkInnerStepNilObserver(b *testing.B) {
	obj, optm := benchStepObjective(b, nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		optm.Step(obj)
	}
}

func BenchmarkInnerStepWithObserver(b *testing.B) {
	obj, optm := benchStepObjective(b, telemetry.NewObserver(nil))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		optm.Step(obj)
	}
}
