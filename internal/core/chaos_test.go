package core

import (
	"bytes"
	"context"
	"errors"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/guard"
	"repro/internal/guard/inject"
	"repro/internal/netlist"
	"repro/internal/synth"
	"repro/internal/telemetry"
	"repro/internal/testutil"
)

// The chaos suite: deterministic fault injection against the guard layer.
// Every test here is driven by a seed-fixed inject.Registry, so a failure
// reproduces exactly — rerun the one test, no flakes to chase. CI runs the
// whole suite under -race via `go test -race -run TestChaos ./internal/core`.

// chaosOpts is fastOpts plus a guard configuration and an armed injector.
func chaosOpts(pol guard.Policy, inj *inject.Registry) Options {
	opt := fastOpts(ModeOurs)
	opt.Workers = 1
	opt.Guard = guard.Config{Policy: pol}
	opt.FaultInjector = inj
	return opt
}

// chaosRun places design with the given options and returns the result, the
// final positions and the canonical trace.
func chaosRun(t *testing.T, design string, opt Options) (*Result, []float64, []byte) {
	t.Helper()
	d := synth.MustGenerate(design)
	var trace bytes.Buffer
	obs := telemetry.NewObserver(&trace)
	opt.Observer = obs
	res, err := Place(d, opt)
	if err != nil {
		t.Fatalf("guarded run failed: %v", err)
	}
	if err := obs.Flush(); err != nil {
		t.Fatal(err)
	}
	pos := make([]float64, 0, 2*len(d.Cells))
	for i := range d.Cells {
		pos = append(pos, d.Cells[i].X, d.Cells[i].Y)
	}
	canon, err := telemetry.StripTimings(trace.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	return res, pos, canon
}

// metricValue digs one metric out of an observer snapshot (-1 if absent).
func metricValue(obs *telemetry.Observer, name string) float64 {
	for _, m := range obs.Metrics.Snapshot() {
		if m.Name == name {
			return m.Value
		}
	}
	return -1
}

// TestChaosRecoverFromInjectedNaN is the tentpole acceptance test: a NaN
// injected into the WA gradient mid-run under policy Recover must be
// detected, rolled back and retried, and the run must still complete a
// placement with finite in-die positions — byte-identically at any worker
// count, because every guard decision is a pure function of deterministic
// values.
func TestChaosRecoverFromInjectedNaN(t *testing.T) {
	if testing.Short() {
		t.Skip("full placement runs; skipped in -short")
	}
	const seed, evalIdx = 42, 10
	run := func(t *testing.T, workers int) (*Result, []float64, []byte, *inject.Registry) {
		inj := inject.New(seed).Arm(inject.WAGradNaN, evalIdx)
		opt := chaosOpts(guard.Recover, inj)
		opt.Workers = workers
		res, pos, trace := chaosRun(t, "tiny_hot", opt)
		return res, pos, trace, inj
	}
	refRes, refPos, refTrace, refInj := run(t, 1)
	if got := refInj.Fired(inject.WAGradNaN); got != 1 {
		t.Fatalf("WA-gradient fault fired %d times, want exactly 1", got)
	}
	d := synth.MustGenerate("tiny_hot")
	for i, v := range refPos {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("recovered run left non-finite coordinate %d: %v", i, v)
		}
	}
	for i := 0; i < len(refPos); i += 2 {
		if refPos[i] < d.Die.Lo.X || refPos[i] > d.Die.Hi.X ||
			refPos[i+1] < d.Die.Lo.Y || refPos[i+1] > d.Die.Hi.Y {
			t.Fatalf("recovered run left cell %d outside die: (%v,%v)", i/2, refPos[i], refPos[i+1])
		}
	}

	// The recovery must actually have happened (counter in the trace) and
	// the run must report success.
	if !bytes.Contains(refTrace, []byte("guard.recoveries")) {
		t.Errorf("trace carries no guard.recoveries metric")
	}
	if refRes.HPWLFinal <= 0 {
		t.Errorf("recovered run reports HPWL %v", refRes.HPWLFinal)
	}

	for _, w := range []int{4, 16} {
		res, pos, trace, inj := run(t, w)
		if inj.Fired(inject.WAGradNaN) != 1 {
			t.Fatalf("workers=%d: fault fired %d times, want 1", w, inj.Fired(inject.WAGradNaN))
		}
		for i := range refPos {
			if math.Float64bits(pos[i]) != math.Float64bits(refPos[i]) {
				t.Fatalf("workers=%d: recovered coordinate %d differs bitwise (%v vs %v)",
					w, i, pos[i], refPos[i])
			}
		}
		if res.HPWLFinal != refRes.HPWLFinal || res.Metrics != refRes.Metrics {
			t.Errorf("workers=%d: recovered result differs:\n  serial: %+v\n  got:    %+v",
				w, refRes.Metrics, res.Metrics)
		}
		if !bytes.Equal(trace, refTrace) {
			a := strings.Split(string(refTrace), "\n")
			b := strings.Split(string(trace), "\n")
			for i := 0; i < len(a) && i < len(b); i++ {
				if a[i] != b[i] {
					t.Fatalf("workers=%d: recovered traces diverge at line %d:\n  serial: %.200s\n  got:    %.200s",
						w, i+1, a[i], b[i])
				}
			}
			t.Fatalf("workers=%d: recovered traces differ in length", w)
		}
	}
}

// TestChaosPoissonBinRecovery: a +Inf poisoned into a charge-density bin
// propagates through the spectral solve into every field value; Recover must
// roll it back and complete.
func TestChaosPoissonBinRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("full placement run; skipped in -short")
	}
	inj := inject.New(7).Arm(inject.PoissonBin, 12)
	_, pos, _ := chaosRun(t, "tiny_hot", chaosOpts(guard.Recover, inj))
	if inj.Fired(inject.PoissonBin) != 1 {
		t.Fatalf("Poisson fault fired %d times, want 1", inj.Fired(inject.PoissonBin))
	}
	for i, v := range pos {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("non-finite coordinate %d after recovery: %v", i, v)
		}
	}
}

// TestChaosFailPolicyReturnsViolation: under Fail the first sentinel hit is
// a typed error, not a crash and not a silent continuation.
func TestChaosFailPolicyReturnsViolation(t *testing.T) {
	if testing.Short() {
		t.Skip("full placement run; skipped in -short")
	}
	inj := inject.New(42).Arm(inject.WAGradNaN, 10)
	d := synth.MustGenerate("tiny_hot")
	_, err := Place(d, chaosOpts(guard.Fail, inj))
	if !errors.Is(err, guard.ErrViolation) {
		t.Fatalf("Fail policy returned %v, want guard.ErrViolation", err)
	}
	if errors.Is(err, guard.ErrBudgetExhausted) {
		t.Errorf("Fail policy error claims budget exhaustion: %v", err)
	}
}

// TestChaosRetryBudgetExhausted: MaxRetries < 0 resolves to a zero budget,
// so the first violation under Recover exhausts it.
func TestChaosRetryBudgetExhausted(t *testing.T) {
	if testing.Short() {
		t.Skip("full placement run; skipped in -short")
	}
	inj := inject.New(42).Arm(inject.WAGradNaN, 10)
	opt := chaosOpts(guard.Recover, inj)
	opt.Guard.MaxRetries = -1
	d := synth.MustGenerate("tiny_hot")
	_, err := Place(d, opt)
	if !errors.Is(err, guard.ErrBudgetExhausted) {
		t.Fatalf("zero-budget Recover returned %v, want guard.ErrBudgetExhausted", err)
	}
}

// TestChaosWarnMatchesOffBitwise: the sentinel scans are read-only — a Warn
// run with no faults armed must land on exactly the positions of an
// unguarded run.
func TestChaosWarnMatchesOffBitwise(t *testing.T) {
	if testing.Short() {
		t.Skip("full placement runs; skipped in -short")
	}
	_, offPos, _ := chaosRun(t, "tiny_hot", chaosOpts(guard.Off, nil))
	_, warnPos, _ := chaosRun(t, "tiny_hot", chaosOpts(guard.Warn, nil))
	for i := range offPos {
		if math.Float64bits(offPos[i]) != math.Float64bits(warnPos[i]) {
			t.Fatalf("warn-policy scan perturbed coordinate %d: %v vs %v", i, warnPos[i], offPos[i])
		}
	}
}

// TestChaosGuardOffRegistersNoMetrics: with guards off the metrics registry
// must not even contain the guard counters — registering one changes the
// flushed trace, and Off-policy traces are contractually byte-identical to
// pre-guard builds.
func TestChaosGuardOffRegistersNoMetrics(t *testing.T) {
	if testing.Short() {
		t.Skip("full placement runs; skipped in -short")
	}
	d := synth.MustGenerate("tiny_open")
	obs := telemetry.NewObserver(nil)
	opt := chaosOpts(guard.Off, nil)
	opt.Observer = obs
	if _, err := Place(d, opt); err != nil {
		t.Fatal(err)
	}
	for _, m := range obs.Metrics.Snapshot() {
		if strings.HasPrefix(m.Name, "guard.") {
			t.Errorf("guards-off run registered metric %q", m.Name)
		}
	}

	d2 := synth.MustGenerate("tiny_open")
	obs2 := telemetry.NewObserver(nil)
	opt2 := chaosOpts(guard.Warn, nil)
	opt2.Observer = obs2
	if _, err := Place(d2, opt2); err != nil {
		t.Fatal(err)
	}
	if got := metricValue(obs2, "guard.violations"); got != 0 {
		t.Errorf("clean warn run guard.violations = %v, want registered at 0", got)
	}
}

// TestChaosCheckpointCorruptDetected: a byte flipped in the checkpoint right
// after it is written must be caught by the CRC on resume as
// ErrCheckpointCorrupt (no .prev exists here, so the typed error surfaces).
func TestChaosCheckpointCorruptDetected(t *testing.T) {
	if testing.Short() {
		t.Skip("full placement run; skipped in -short")
	}
	ckPath := filepath.Join(t.TempDir(), "chaos.ckpt")
	inj := inject.New(3).Arm(inject.CkptCorrupt, 0)
	d := synth.MustGenerate("tiny_hot")
	opt := chaosOpts(guard.Off, inj)
	opt.CheckpointPath = ckPath
	opt.CheckpointAfter = "wirelength"
	if _, err := Place(d, opt); !errors.Is(err, ErrCheckpointed) {
		t.Fatalf("scheduled checkpoint run returned %v", err)
	}
	if inj.Fired(inject.CkptCorrupt) != 1 {
		t.Fatalf("corruption fault fired %d times, want 1", inj.Fired(inject.CkptCorrupt))
	}
	d2 := synth.MustGenerate("tiny_hot")
	_, err := ResumeFromFile(context.Background(), d2, ckPath, Options{Workers: 1})
	if !errors.Is(err, ErrCheckpointCorrupt) {
		t.Fatalf("resume from corrupted checkpoint returned %v, want ErrCheckpointCorrupt", err)
	}
}

// TestChaosCheckpointTruncateDetected: same contract for a truncated file.
func TestChaosCheckpointTruncateDetected(t *testing.T) {
	if testing.Short() {
		t.Skip("full placement run; skipped in -short")
	}
	ckPath := filepath.Join(t.TempDir(), "chaos.ckpt")
	inj := inject.New(9).Arm(inject.CkptTruncate, 0)
	d := synth.MustGenerate("tiny_hot")
	opt := chaosOpts(guard.Off, inj)
	opt.CheckpointPath = ckPath
	opt.CheckpointAfter = "wirelength"
	if _, err := Place(d, opt); !errors.Is(err, ErrCheckpointed) {
		t.Fatalf("scheduled checkpoint run returned %v", err)
	}
	d2 := synth.MustGenerate("tiny_hot")
	_, err := ResumeFromFile(context.Background(), d2, ckPath, Options{Workers: 1})
	if !errors.Is(err, ErrCheckpointCorrupt) {
		t.Fatalf("resume from truncated checkpoint returned %v, want ErrCheckpointCorrupt", err)
	}
}

// TestChaosCorruptPrimaryFallsBackToPrev is the rotation acceptance test:
// two checkpoint writes to the same path leave a ".prev"; corrupting the
// primary right after the second write must make ResumeFromFile fall back to
// the rotated previous checkpoint and still complete byte-identical to an
// uninterrupted run.
func TestChaosCorruptPrimaryFallsBackToPrev(t *testing.T) {
	if testing.Short() {
		t.Skip("full placement runs; skipped in -short")
	}
	_, refPos, _ := placeRun(t, "tiny_hot", 1)

	ckPath := filepath.Join(t.TempDir(), "rot.ckpt")
	d := synth.MustGenerate("tiny_hot")
	opt := fastOpts(ModeOurs)
	opt.Workers = 1
	opt.CheckpointPath = ckPath
	opt.CheckpointAfter = "route_iter:1"
	if _, err := Place(d, opt); !errors.Is(err, ErrCheckpointed) {
		t.Fatalf("first checkpoint run returned %v", err)
	}

	// Resume to the next scheduled point with the corruption fault armed on
	// this run's first write: the write rotates the route_iter:1 state to
	// .prev, then the primary (route_iter:2) gets one byte flipped.
	inj := inject.New(5).Arm(inject.CkptCorrupt, 0)
	d2 := synth.MustGenerate("tiny_hot")
	opt2 := Options{Workers: 1, CheckpointPath: ckPath, CheckpointAfter: "route_iter:2",
		FaultInjector: inj}
	if _, err := ResumeFromFile(context.Background(), d2, ckPath, opt2); !errors.Is(err, ErrCheckpointed) {
		t.Fatalf("second checkpoint run returned %v", err)
	}
	if _, err := os.Stat(ckPath + ".prev"); err != nil {
		t.Fatalf("no rotated .prev after second write: %v", err)
	}
	if _, err := readCheckpointFile(ckPath); !errors.Is(err, ErrCheckpointCorrupt) {
		t.Fatalf("primary not corrupted as armed: %v", err)
	}

	// Final resume: primary rejected by CRC, .prev (route_iter:1) accepted,
	// run completes and must land bit-for-bit on the uninterrupted placement.
	d3 := synth.MustGenerate("tiny_hot")
	if _, err := ResumeFromFile(context.Background(), d3, ckPath, Options{Workers: 1}); err != nil {
		t.Fatalf("resume with .prev fallback failed: %v", err)
	}
	for i := range d3.Cells {
		if math.Float64bits(d3.Cells[i].X) != math.Float64bits(refPos[2*i]) ||
			math.Float64bits(d3.Cells[i].Y) != math.Float64bits(refPos[2*i+1]) {
			t.Fatalf("cell %d after fallback resume (%v,%v) differs from uninterrupted (%v,%v)",
				i, d3.Cells[i].X, d3.Cells[i].Y, refPos[2*i], refPos[2*i+1])
		}
	}
}

// TestChaosCancelInjection: the deterministic cancel fault must behave
// exactly like a real context cancellation — typed error, checkpoint on
// disk, byte-identical completion after resume — and leak no goroutines.
func TestChaosCancelInjection(t *testing.T) {
	if testing.Short() {
		t.Skip("full placement runs; skipped in -short")
	}
	_, refPos, _ := placeRun(t, "tiny_hot", 1)
	baseline := testutil.GoroutineBaseline()

	ckPath := filepath.Join(t.TempDir(), "cancel.ckpt")
	inj := inject.New(11).Arm(inject.Cancel, 20)
	d := synth.MustGenerate("tiny_hot")
	opt := chaosOpts(guard.Recover, inj)
	opt.Workers = 2 // exercise the parallel kernels' shutdown path
	opt.CheckpointPath = ckPath
	_, err := PlaceContext(context.Background(), d, opt)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancel injection returned %v, want context.Canceled", err)
	}
	if inj.Fired(inject.Cancel) != 1 {
		t.Fatalf("cancel fault fired %d times, want 1", inj.Fired(inject.Cancel))
	}

	d2 := synth.MustGenerate("tiny_hot")
	if _, err := ResumeFromFile(context.Background(), d2, ckPath, Options{Workers: 1}); err != nil {
		t.Fatalf("resume after injected cancel: %v", err)
	}
	for i := range d2.Cells {
		if math.Float64bits(d2.Cells[i].X) != math.Float64bits(refPos[2*i]) ||
			math.Float64bits(d2.Cells[i].Y) != math.Float64bits(refPos[2*i+1]) {
			t.Fatalf("cell %d after injected-cancel resume differs bitwise from uninterrupted", i)
		}
	}

	testutil.AssertNoGoroutineLeak(t, baseline)
}

// TestDegenerateDesignsRejected: the pipeline entry must refuse designs it
// cannot place with a typed error, not fail obscurely downstream.
func TestDegenerateDesignsRejected(t *testing.T) {
	cases := map[string]func() error{
		"no movable cells": func() error {
			d := synth.MustGenerate("tiny_open")
			for i := range d.Cells {
				d.Cells[i].Kind = netlist.Macro
			}
			_, err := Place(d, fastOpts(ModeOurs))
			return err
		},
		"all singleton nets": func() error {
			d := synth.MustGenerate("tiny_open")
			for ni := range d.Nets {
				if len(d.Nets[ni].Pins) > 1 {
					d.Nets[ni].Pins = d.Nets[ni].Pins[:1]
				}
			}
			_, err := Place(d, fastOpts(ModeOurs))
			return err
		},
		"zero-area die": func() error {
			d := synth.MustGenerate("tiny_open")
			d.Die.Hi = d.Die.Lo
			_, err := Place(d, fastOpts(ModeOurs))
			return err
		},
		"guarded entry rejects too": func() error {
			d := synth.MustGenerate("tiny_open")
			for i := range d.Cells {
				d.Cells[i].Kind = netlist.Macro
			}
			opt := fastOpts(ModeOurs)
			opt.Guard = guard.Config{Policy: guard.Recover}
			_, err := Place(d, opt)
			return err
		},
	}
	for name, run := range cases {
		if err := run(); !errors.Is(err, ErrDegenerateDesign) {
			t.Errorf("%s: got %v, want ErrDegenerateDesign", name, err)
		}
	}
}
