package core

import (
	"fmt"
	"io"
	"text/tabwriter"

	"repro/internal/synth"
)

// Row is one design × placer measurement of the Table I schema.
type Row struct {
	Design string
	Mode   string
	DRWL   float64
	DRVias int
	DRVs   int
	PT     float64 // placement seconds
	RT     float64 // routing seconds
}

// RunTable1 places every design in designs with each of the three placers
// and returns the measurement rows grouped per design (len(designs)×3 rows,
// ordered Xplace, Xplace-Route, Ours within each design). Log, when non-nil,
// receives one progress line per run.
func RunTable1(designs []string, gridHint int, log io.Writer) ([]Row, error) {
	modes := []struct {
		mode Mode
		name string
	}{
		{ModeWirelength, "xplace"},
		{ModeBaselineRoute, "xplace-route"},
		{ModeOurs, "ours"},
	}
	var rows []Row
	for _, name := range designs {
		for _, m := range modes {
			d, err := synth.Generate(name)
			if err != nil {
				return nil, err
			}
			res, err := Place(d, Options{Mode: m.mode, Tech: AllTechniques(), GridHint: gridHint})
			if err != nil {
				return nil, fmt.Errorf("%s/%s: %w", name, m.name, err)
			}
			rows = append(rows, rowFrom(name, m.name, res))
			if log != nil {
				fmt.Fprintf(log, "%s %s: DRWL=%.0f vias=%d DRVs=%d PT=%.2fs\n",
					name, m.name, res.Metrics.DRWL, res.Metrics.DRVias, res.Metrics.DRVs,
					res.PlaceTime.Seconds())
			}
		}
	}
	return rows, nil
}

// AblationConfig is one Table II row: which techniques are active.
type AblationConfig struct {
	Label         string
	MCI, DC, DPA  bool
	BaselineRoute bool // row 1 is Xplace-Route itself
}

// Table2Configs returns the paper's four ablation rows.
func Table2Configs() []AblationConfig {
	return []AblationConfig{
		{Label: "baseline (Xplace-Route)", BaselineRoute: true},
		{Label: "MCI", MCI: true},
		{Label: "MCI+DC", MCI: true, DC: true},
		{Label: "MCI+DC+DPA", MCI: true, DC: true, DPA: true},
	}
}

// RunTable2 runs the ablation configurations over the given designs and
// returns rows grouped per design in config order.
func RunTable2(designs []string, gridHint int, log io.Writer) ([]Row, error) {
	var rows []Row
	for _, name := range designs {
		for _, cfg := range Table2Configs() {
			d, err := synth.Generate(name)
			if err != nil {
				return nil, err
			}
			opt := Options{GridHint: gridHint}
			if cfg.BaselineRoute {
				opt.Mode = ModeBaselineRoute
			} else {
				opt.Mode = ModeOurs
				opt.Tech = Techniques{MCI: cfg.MCI, DC: cfg.DC, DPA: cfg.DPA}
			}
			res, err := Place(d, opt)
			if err != nil {
				return nil, fmt.Errorf("%s/%s: %w", name, cfg.Label, err)
			}
			rows = append(rows, rowFrom(name, cfg.Label, res))
			if log != nil {
				fmt.Fprintf(log, "%s %-24s DRWL=%.0f vias=%d DRVs=%d\n",
					name, cfg.Label, res.Metrics.DRWL, res.Metrics.DRVias, res.Metrics.DRVs)
			}
		}
	}
	return rows, nil
}

func rowFrom(design, mode string, res *Result) Row {
	return Row{
		Design: design,
		Mode:   mode,
		DRWL:   res.Metrics.DRWL,
		DRVias: res.Metrics.DRVias,
		DRVs:   res.Metrics.DRVs,
		PT:     res.PlaceTime.Seconds(),
		RT:     res.RouteTime.Seconds(),
	}
}

// AvgRatios computes, for each mode label, the geometric-mean-free average
// ratios the paper reports: each design's metric divided by the reference
// mode's value on the same design, averaged over designs. Reference is the
// label whose ratios are all 1.0 (the paper normalizes to "Ours").
func AvgRatios(rows []Row, reference string) map[string]Ratios {
	byDesign := map[string]map[string]Row{}
	for _, r := range rows {
		if byDesign[r.Design] == nil {
			byDesign[r.Design] = map[string]Row{}
		}
		byDesign[r.Design][r.Mode] = r
	}
	sums := map[string]*Ratios{}
	counts := map[string]int{}
	for _, modes := range byDesign {
		ref, ok := modes[reference]
		if !ok {
			continue
		}
		for label, r := range modes {
			if sums[label] == nil {
				sums[label] = &Ratios{}
			}
			s := sums[label]
			s.DRWL += safeDiv(r.DRWL, ref.DRWL)
			s.DRVias += safeDiv(float64(r.DRVias), float64(ref.DRVias))
			s.DRVs += safeDiv(float64(r.DRVs), float64(ref.DRVs))
			s.PT += safeDiv(r.PT, ref.PT)
			s.RT += safeDiv(r.RT, ref.RT)
			counts[label]++
		}
	}
	out := map[string]Ratios{}
	for label, s := range sums {
		n := float64(counts[label])
		out[label] = Ratios{DRWL: s.DRWL / n, DRVias: s.DRVias / n, DRVs: s.DRVs / n,
			PT: s.PT / n, RT: s.RT / n}
	}
	return out
}

// Ratios is a set of per-metric average ratios versus the reference mode.
type Ratios struct {
	DRWL, DRVias, DRVs, PT, RT float64
}

func safeDiv(a, b float64) float64 {
	if b == 0 {
		if a == 0 {
			return 1
		}
		return 2 // capped penalty ratio for zero-reference cases
	}
	return a / b
}

// WriteTable renders rows plus the average-ratio footer in the paper's
// Table I layout.
func WriteTable(w io.Writer, rows []Row, modeOrder []string, reference string) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Design\tMode\tDRWL/um\t#DRVias\t#DRVs\tPT/s\tRT/s")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%s\t%.0f\t%d\t%d\t%.2f\t%.3f\n",
			r.Design, r.Mode, r.DRWL, r.DRVias, r.DRVs, r.PT, r.RT)
	}
	ratios := AvgRatios(rows, reference)
	for _, mode := range modeOrder {
		rt, ok := ratios[mode]
		if !ok {
			continue
		}
		fmt.Fprintf(tw, "Avg.Ratio\t%s\t%.2f\t%.2f\t%.2f\t%.2f\t%.2f\n",
			mode, rt.DRWL, rt.DRVias, rt.DRVs, rt.PT, rt.RT)
	}
	tw.Flush()
}
