// Package legalize places the movable standard cells of a globally placed
// design onto legal row/site positions with minimum displacement, using the
// Abacus algorithm (Spindler, Schlichtmann, Johannes, DATE 2008): cells are
// processed in x order; each is trialed in nearby rows, where a row insertion
// collapses into clusters whose optimal positions minimize total squared
// displacement; the cheapest row wins.
//
// It is the stand-in for the "routability-driven legalization" step of the
// paper's flow (Fig. 2) — the routability part of the flow lives in global
// placement; legalization here preserves the global placement's spreading.
package legalize

import (
	"context"
	"fmt"
	"math"
	"sort"

	"repro/internal/geom"
	"repro/internal/netlist"
	"repro/internal/telemetry"
)

// segment is a free interval [x0, x1) of one row.
type segment struct {
	x0, x1   float64
	clusters []cluster
	used     float64 // total cell width committed
}

// cluster is a maximal group of abutting cells within a segment.
type cluster struct {
	x     float64 // left edge
	w     float64 // total width
	e     float64 // weight (cell count; unit weights)
	q     float64 // Σ (desiredX_i − offset_i)
	cells []int
}

// row is one placement row with its free segments.
type row struct {
	y    float64 // row bottom
	segs []segment
}

// Legalizer legalizes one design.
type Legalizer struct {
	// MaxRowSearch bounds how many rows above/below the ideal row are tried.
	MaxRowSearch int
	// Trace, when non-nil, receives spans for the sort and Abacus scan
	// phases.
	Trace *telemetry.Tracer

	d    *netlist.Design
	rows []row
}

// New prepares the row structure of the design: rows spanning the die,
// split by macro footprints.
func New(d *netlist.Design) *Legalizer {
	l := &Legalizer{MaxRowSearch: 6, d: d}
	macros := d.MacroRects()
	numRows := int(d.Die.H() / d.RowHeight)
	for r := 0; r < numRows; r++ {
		y := d.Die.Lo.Y + float64(r)*d.RowHeight
		rowRect := geom.NewRect(d.Die.Lo.X, y, d.Die.Hi.X, y+d.RowHeight)
		// Any macro overlapping ANY part of the row's height blocks its x
		// span for the whole row.
		live := [][2]float64{{d.Die.Lo.X, d.Die.Hi.X}}
		for _, m := range macros {
			if !m.Intersects(rowRect) {
				continue
			}
			var next [][2]float64
			for _, iv := range live {
				if iv[0] < m.Lo.X {
					next = append(next, [2]float64{iv[0], math.Min(iv[1], m.Lo.X)})
				}
				if iv[1] > m.Hi.X {
					next = append(next, [2]float64{math.Max(iv[0], m.Hi.X), iv[1]})
				}
			}
			live = next
			if len(live) == 0 {
				break
			}
		}
		rw := row{y: y}
		for _, iv := range live {
			// Snap inward to the site grid.
			x0 := math.Ceil(iv[0]/d.SiteWidth) * d.SiteWidth
			x1 := math.Floor(iv[1]/d.SiteWidth) * d.SiteWidth
			if x1 > x0 {
				rw.segs = append(rw.segs, segment{x0: x0, x1: x1})
			}
		}
		l.rows = append(l.rows, rw)
	}
	return l
}

// Run legalizes all movable cells in place (updating their centers) and
// returns the total and maximum displacement. An error is returned when a
// cell cannot be placed anywhere (die over-full).
func (l *Legalizer) Run() (totalDisp, maxDisp float64, err error) {
	return l.RunContext(context.Background())
}

// RunContext is Run with cooperative cancellation, checked once per cell.
// On cancellation it returns ctx.Err() with the design left PARTIALLY
// legalized — some cells moved, some not. Callers wanting all-or-nothing
// semantics (the pipeline's checkpoint machinery does) must back up the
// movable positions before calling and restore them on error.
func (l *Legalizer) RunContext(ctx context.Context) (totalDisp, maxDisp float64, err error) {
	d := l.d
	sp := l.Trace.Start("legalize.sort")
	order := d.MovableIndices()
	sort.SliceStable(order, func(a, b int) bool {
		ca, cb := &d.Cells[order[a]], &d.Cells[order[b]]
		if ca.X != cb.X {
			return ca.X < cb.X
		}
		return order[a] < order[b]
	})
	sp.End()

	sp = l.Trace.Start("legalize.abacus")
	defer sp.End()
	for _, ci := range order {
		if err := ctx.Err(); err != nil {
			return totalDisp, maxDisp, err
		}
		c := &d.Cells[ci]
		bestCost := math.Inf(1)
		bestRow, bestSeg := -1, -1
		ideal := int((c.Y - d.RowHeight/2 - d.Die.Lo.Y) / d.RowHeight)
		for dr := 0; dr <= l.MaxRowSearch; dr++ {
			for _, r := range []int{ideal - dr, ideal + dr} {
				if dr == 0 && r != ideal {
					continue
				}
				if r < 0 || r >= len(l.rows) {
					continue
				}
				// Prune: even a perfect x placement cannot beat bestCost if
				// the row's y displacement alone exceeds it.
				dy := l.rows[r].y + d.RowHeight/2 - c.Y
				if dy*dy >= bestCost {
					continue
				}
				si, cost := l.trialRow(r, ci)
				if si >= 0 && cost < bestCost {
					bestCost = cost
					bestRow, bestSeg = r, si
				}
			}
		}
		if bestRow < 0 {
			return totalDisp, maxDisp, fmt.Errorf("legalize: no room for cell %d (%s, w=%v)", ci, c.Name, c.W)
		}
		ox, oy := c.X, c.Y
		l.commit(bestRow, bestSeg, ci)
		disp := math.Hypot(c.X-ox, c.Y-oy)
		totalDisp += disp
		if disp > maxDisp {
			maxDisp = disp
		}
	}
	return totalDisp, maxDisp, nil
}

// trialRow finds the best segment in row r for cell ci and returns its index
// and the squared-displacement cost; (-1, inf) when the cell does not fit.
func (l *Legalizer) trialRow(r int, ci int) (int, float64) {
	d := l.d
	c := &d.Cells[ci]
	rw := &l.rows[r]
	yCenter := rw.y + d.RowHeight/2
	bestSeg, bestCost := -1, math.Inf(1)
	for si := range rw.segs {
		s := &rw.segs[si]
		if s.used+c.W > s.x1-s.x0 {
			continue
		}
		x := l.trialSegment(s, c)
		dx := x + c.W/2 - c.X
		dy := yCenter - c.Y
		cost := dx*dx + dy*dy
		if cost < bestCost {
			bestCost = cost
			bestSeg = si
		}
	}
	return bestSeg, bestCost
}

// trialSegment simulates appending cell c to segment s (cells arrive in x
// order, so appending at the tail is correct) and returns the final left-edge
// x the cell would get after cluster collapse.
func (l *Legalizer) trialSegment(s *segment, c *netlist.Cell) float64 {
	desired := c.X - c.W/2
	// Simulate cluster merging without mutating s.
	type sim struct{ x, w, e, q float64 }
	var st []sim
	for _, cl := range s.clusters {
		st = append(st, sim{cl.x, cl.w, cl.e, cl.q})
	}
	st = append(st, sim{x: desired, w: c.W, e: 1, q: desired})
	// Collapse from the top.
	for len(st) >= 1 {
		top := &st[len(st)-1]
		x := top.q / top.e
		x = geom.Clamp(x, s.x0, s.x1-top.w)
		top.x = x
		if len(st) >= 2 && st[len(st)-2].x+st[len(st)-2].w > x {
			prev := st[len(st)-2]
			merged := sim{
				w: prev.w + top.w,
				e: prev.e + top.e,
				q: prev.q + top.q - top.e*prev.w,
			}
			st = st[:len(st)-2]
			st = append(st, merged)
			continue
		}
		break
	}
	top := st[len(st)-1]
	// The appended cell sits at the end of the top cluster.
	return snap(top.x+top.w-c.W, l.d.SiteWidth)
}

// commit performs the real insertion of cell ci into segment si of row r and
// assigns final positions to every cell in the affected clusters.
func (l *Legalizer) commit(r, si, ci int) {
	d := l.d
	c := &d.Cells[ci]
	s := &l.rows[r].segs[si]
	desired := c.X - c.W/2

	s.clusters = append(s.clusters, cluster{
		x: desired, w: c.W, e: 1, q: desired, cells: []int{ci},
	})
	s.used += c.W
	// Collapse.
	for {
		top := &s.clusters[len(s.clusters)-1]
		x := top.q / top.e
		x = geom.Clamp(x, s.x0, s.x1-top.w)
		top.x = x
		n := len(s.clusters)
		if n >= 2 && s.clusters[n-2].x+s.clusters[n-2].w > x {
			prev := s.clusters[n-2]
			merged := cluster{
				w:     prev.w + top.w,
				e:     prev.e + top.e,
				q:     prev.q + top.q - top.e*prev.w,
				cells: append(prev.cells, top.cells...),
			}
			s.clusters = s.clusters[:n-2]
			s.clusters = append(s.clusters, merged)
			continue
		}
		break
	}
	// Assign positions for every cell in every cluster (cheap: clusters are
	// re-assigned only when touched, but a full sweep keeps it simple and
	// correct).
	yCenter := l.rows[r].y + d.RowHeight/2
	for _, cl := range s.clusters {
		x := snap(cl.x, d.SiteWidth)
		for _, id := range cl.cells {
			cell := &d.Cells[id]
			cell.X = x + cell.W/2
			cell.Y = yCenter
			x += cell.W
		}
	}
}

func snap(x, site float64) float64 {
	return math.Round(x/site) * site
}

// CheckLegal verifies that all movable cells sit on rows and sites, inside
// the die, without overlapping each other or any macro. It returns a
// descriptive error for the first violation found.
func CheckLegal(d *netlist.Design) error {
	type placed struct {
		x0, x1 float64
		id     int
	}
	rows := map[int][]placed{}
	macros := d.MacroRects()
	for ci := range d.Cells {
		c := &d.Cells[ci]
		if !c.Movable() {
			continue
		}
		r := c.Rect()
		if r.Lo.X < d.Die.Lo.X-1e-6 || r.Hi.X > d.Die.Hi.X+1e-6 ||
			r.Lo.Y < d.Die.Lo.Y-1e-6 || r.Hi.Y > d.Die.Hi.Y+1e-6 {
			return fmt.Errorf("cell %d (%s) outside die: %v", ci, c.Name, r)
		}
		rowIdx := (r.Lo.Y - d.Die.Lo.Y) / d.RowHeight
		if math.Abs(rowIdx-math.Round(rowIdx)) > 1e-6 {
			return fmt.Errorf("cell %d (%s) not row-aligned: y0=%v", ci, c.Name, r.Lo.Y)
		}
		siteIdx := (r.Lo.X - d.Die.Lo.X) / d.SiteWidth
		if math.Abs(siteIdx-math.Round(siteIdx)) > 1e-6 {
			return fmt.Errorf("cell %d (%s) not site-aligned: x0=%v", ci, c.Name, r.Lo.X)
		}
		for _, m := range macros {
			if m.Intersects(r) {
				return fmt.Errorf("cell %d (%s) overlaps a macro", ci, c.Name)
			}
		}
		rows[int(math.Round(rowIdx))] = append(rows[int(math.Round(rowIdx))], placed{r.Lo.X, r.Hi.X, ci})
	}
	for _, cells := range rows {
		sort.Slice(cells, func(i, j int) bool { return cells[i].x0 < cells[j].x0 })
		for i := 1; i < len(cells); i++ {
			if cells[i].x0 < cells[i-1].x1-1e-6 {
				return fmt.Errorf("cells %d and %d overlap in a row", cells[i-1].id, cells[i].id)
			}
		}
	}
	return nil
}
