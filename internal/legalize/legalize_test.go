package legalize

import (
	"testing"

	"repro/internal/geom"
	"repro/internal/netlist"
	"repro/internal/synth"
)

func TestLegalizeSimpleCluster(t *testing.T) {
	b := netlist.NewBuilder("l", geom.NewRect(0, 0, 64, 64), 8, 1)
	// Three overlapping cells near the center.
	b.AddCell("a", netlist.StdCell, 30, 30, 4, 8)
	b.AddCell("b", netlist.StdCell, 31, 30, 4, 8)
	b.AddCell("c", netlist.StdCell, 32, 31, 4, 8)
	n := b.AddNet("n", 1)
	b.Connect(0, n, 0, 0)
	b.Connect(1, n, 0, 0)
	b.Connect(2, n, 0, 0)
	d := b.MustBuild()
	l := New(d)
	total, maxD, err := l.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if err := CheckLegal(d); err != nil {
		t.Fatalf("not legal: %v", err)
	}
	if total <= 0 || maxD <= 0 {
		t.Errorf("expected nonzero displacement for overlapping cells")
	}
	if maxD > 16 {
		t.Errorf("max displacement %v too large for a 3-cell cluster", maxD)
	}
}

func TestLegalizeRespectsMacros(t *testing.T) {
	b := netlist.NewBuilder("m", geom.NewRect(0, 0, 64, 64), 8, 1)
	b.AddCell("macro", netlist.Macro, 32, 32, 24, 24) // blocks rows 2..5
	// Cells placed on top of the macro.
	for i := 0; i < 6; i++ {
		b.AddCell("c", netlist.StdCell, 30+float64(i), 32, 3, 8)
	}
	n := b.AddNet("n", 1)
	b.Connect(0, n, 0, 0)
	b.Connect(1, n, 0, 0)
	d := b.MustBuild()
	_, _, err := New(d).Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if err := CheckLegal(d); err != nil {
		t.Fatalf("not legal: %v", err)
	}
}

func TestLegalizeFullDesign(t *testing.T) {
	d := synth.MustGenerate("tiny_hot")
	// Spread cells roughly (simulating a finished global placement) so
	// legalization has a fair starting point: tiny_hot's generator already
	// scatters them uniformly.
	_, maxD, err := New(d).Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if err := CheckLegal(d); err != nil {
		t.Fatalf("not legal: %v", err)
	}
	if maxD > d.Die.W() {
		t.Errorf("max displacement %v exceeds die width", maxD)
	}
}

func TestLegalizePreservesHPWLReasonably(t *testing.T) {
	d := synth.MustGenerate("tiny_open")
	before := d.HPWL()
	if _, _, err := New(d).Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	after := d.HPWL()
	if after > 2.5*before+1 {
		t.Errorf("legalization blew up HPWL: %v → %v", before, after)
	}
}

func TestLegalizeErrorsWhenOverfull(t *testing.T) {
	b := netlist.NewBuilder("full", geom.NewRect(0, 0, 16, 8), 8, 1)
	// One row of 16 sites; 20 sites of cells cannot fit.
	for i := 0; i < 5; i++ {
		b.AddCell("c", netlist.StdCell, 8, 4, 4, 8)
	}
	n := b.AddNet("n", 1)
	b.Connect(0, n, 0, 0)
	b.Connect(1, n, 0, 0)
	d := b.MustBuild()
	if _, _, err := New(d).Run(); err == nil {
		t.Errorf("over-full die did not error")
	}
}

func TestCheckLegalCatchesViolations(t *testing.T) {
	mk := func() *netlist.Design {
		b := netlist.NewBuilder("v", geom.NewRect(0, 0, 64, 64), 8, 1)
		b.AddCell("a", netlist.StdCell, 10, 4, 4, 8) // legal: x0=8 y0=0
		b.AddCell("b", netlist.StdCell, 20, 4, 4, 8)
		n := b.AddNet("n", 1)
		b.Connect(0, n, 0, 0)
		b.Connect(1, n, 0, 0)
		return b.MustBuild()
	}
	d := mk()
	if err := CheckLegal(d); err != nil {
		t.Fatalf("legal design flagged: %v", err)
	}
	d = mk()
	d.Cells[0].Y = 5 // off-row
	if err := CheckLegal(d); err == nil {
		t.Errorf("off-row cell not caught")
	}
	d = mk()
	d.Cells[0].X = 10.3 // off-site
	if err := CheckLegal(d); err == nil {
		t.Errorf("off-site cell not caught")
	}
	d = mk()
	d.Cells[1].X = 11 // overlap with a
	if err := CheckLegal(d); err == nil {
		t.Errorf("overlap not caught")
	}
	d = mk()
	d.Cells[0].X = -10 // outside die
	if err := CheckLegal(d); err == nil {
		t.Errorf("outside-die cell not caught")
	}
}

func TestLegalizeDeterministic(t *testing.T) {
	d1 := synth.MustGenerate("tiny_hot")
	d2 := synth.MustGenerate("tiny_hot")
	if _, _, err := New(d1).Run(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := New(d2).Run(); err != nil {
		t.Fatal(err)
	}
	for i := range d1.Cells {
		if d1.Cells[i].X != d2.Cells[i].X || d1.Cells[i].Y != d2.Cells[i].Y {
			t.Fatalf("cell %d position differs between runs", i)
		}
	}
}

func TestLegalizeIdempotentCost(t *testing.T) {
	// Legalizing an already-legal design should move cells very little.
	d := synth.MustGenerate("tiny_open")
	if _, _, err := New(d).Run(); err != nil {
		t.Fatal(err)
	}
	snap := d.SnapshotPositions()
	total, _, err := New(d).Run()
	if err != nil {
		t.Fatal(err)
	}
	_ = snap
	if total > 1e-6*float64(len(d.Cells)) {
		// Cells may shuffle by a site due to tie-breaks; allow small drift.
		avg := total / float64(len(d.Cells))
		if avg > 1.0 {
			t.Errorf("re-legalization moved cells by %v on average", avg)
		}
	}
}

func BenchmarkLegalizeTinyHot(b *testing.B) {
	base := synth.MustGenerate("tiny_hot")
	snap := base.SnapshotPositions()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		base.RestorePositions(snap)
		if _, _, err := New(base).Run(); err != nil {
			b.Fatal(err)
		}
	}
}
