package telemetry

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing integer metric. A nil *Counter is
// inert (Inc/Add are no-ops), so hot paths can hold a possibly-nil counter
// and increment it unconditionally without allocating.
type Counter struct {
	n atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.n.Add(1)
}

// Add adds delta.
func (c *Counter) Add(delta int64) {
	if c == nil {
		return
	}
	c.n.Add(delta)
}

// Value returns the current count (0 for nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.n.Load()
}

// Gauge is a last-value float metric. A nil *Gauge is inert.
type Gauge struct {
	bits atomic.Uint64
	set  atomic.Bool
}

// Set records the value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
	g.set.Store(true)
}

// Value returns the last value set (0 for nil or never-set).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// histBuckets spans value decades 1e-12 … 1e12; values outside clamp to
// the edge buckets. Bucket k counts observations with
// 10^(k-12) <= v < 10^(k-11).
const histBuckets = 25

// Histogram summarizes a stream of non-negative observations with count,
// sum, min, max and a fixed decade-bucket distribution. A nil *Histogram
// is inert.
type Histogram struct {
	mu      sync.Mutex
	count   int64
	sum     float64
	min     float64
	max     float64
	buckets [histBuckets]int64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil || math.IsNaN(v) {
		return
	}
	h.mu.Lock()
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	h.buckets[bucketOf(v)]++
	h.mu.Unlock()
}

func bucketOf(v float64) int {
	if v <= 0 {
		return 0
	}
	k := int(math.Floor(math.Log10(v))) + 12
	if k < 0 {
		k = 0
	}
	if k >= histBuckets {
		k = histBuckets - 1
	}
	return k
}

// Metric is one exported metric point. Kind is "counter", "gauge" or
// "histogram"; the summary fields are populated per kind. Volatile marks
// metrics carrying wall-clock or environment-dependent content (speedups,
// worker counts, machine facts): they are excluded from the determinism
// contract — StripTimings removes them from canonical traces and baseline
// comparison tooling must skip them.
type Metric struct {
	Name     string  `json:"name"`
	Kind     string  `json:"kind"`
	Value    float64 `json:"value"`           // counter count / gauge value / histogram mean
	Count    int64   `json:"count,omitempty"` // histogram only
	Sum      float64 `json:"sum,omitempty"`   // histogram only
	Min      float64 `json:"min,omitempty"`   // histogram only
	Max      float64 `json:"max,omitempty"`   // histogram only
	Volatile bool    `json:"volatile,omitempty"`
}

// Registry is a get-or-create store of named metrics. Accessors are
// goroutine-safe; the returned metric handles are meant to be resolved
// once and then updated on the hot path. A nil *Registry returns nil
// (inert) handles from every accessor.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	volatile map[string]bool // names registered via VolatileGauge
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
		volatile: map[string]bool{},
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// VolatileGauge returns the named gauge, creating it on first use and
// marking it volatile: its value carries wall-clock or environment content
// (a measured speedup, a worker count) and is therefore excluded from the
// determinism contract. Snapshot flags it, Observer.Flush emits the flag,
// and StripTimings drops it from canonical traces.
func (r *Registry) VolatileGauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	g := r.Gauge(name)
	r.mu.Lock()
	r.volatile[name] = true
	r.mu.Unlock()
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Snapshot exports every metric sorted by (kind, name) — a deterministic
// order for JSON emission and run-to-run comparison. Gauges that were
// never Set and zero-count histograms are still included so the metric
// NAME set is deterministic too.
func (r *Registry) Snapshot() []Metric {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Metric, 0, len(r.counters)+len(r.gauges)+len(r.hists))
	for name, c := range r.counters {
		out = append(out, Metric{Name: name, Kind: "counter", Value: float64(c.Value())})
	}
	for name, g := range r.gauges {
		out = append(out, Metric{Name: name, Kind: "gauge", Value: g.Value(),
			Volatile: r.volatile[name]})
	}
	for name, h := range r.hists {
		h.mu.Lock()
		m := Metric{Name: name, Kind: "histogram", Count: h.count,
			Sum: h.sum, Min: h.min, Max: h.max}
		if h.count > 0 {
			m.Value = h.sum / float64(h.count)
		}
		h.mu.Unlock()
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Kind != out[j].Kind {
			return out[i].Kind < out[j].Kind
		}
		return out[i].Name < out[j].Name
	})
	return out
}
