package telemetry

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing integer metric. A nil *Counter is
// inert (Inc/Add are no-ops), so hot paths can hold a possibly-nil counter
// and increment it unconditionally without allocating.
type Counter struct {
	n atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.n.Add(1)
}

// Add adds delta.
func (c *Counter) Add(delta int64) {
	if c == nil {
		return
	}
	c.n.Add(delta)
}

// Value returns the current count (0 for nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.n.Load()
}

// Gauge is a last-value float metric. A nil *Gauge is inert.
type Gauge struct {
	bits atomic.Uint64
	set  atomic.Bool
}

// Set records the value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
	g.set.Store(true)
}

// Value returns the last value set (0 for nil or never-set).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram buckets are log-spaced: histSub sub-buckets per decade across
// the decades 1e-12 … 1e12, plus bucket 0 collecting v ≤ 1e-12 (including
// zero). Values above the top decade clamp to the last bucket. The
// resolution bounds the percentile-estimation error to one sub-bucket —
// a factor of 10^(1/histSub) ≈ 1.33.
const (
	histSub     = 8
	histDecades = 24
	histBuckets = histSub*histDecades + 1
)

// Histogram summarizes a stream of non-negative observations with count,
// sum, min, max, a fixed log-bucket distribution and bucket-interpolated
// quantiles (Quantile; p50/p95/p99 in Registry.Snapshot). A nil *Histogram
// is inert.
type Histogram struct {
	mu      sync.Mutex
	count   int64
	sum     float64
	min     float64
	max     float64
	buckets [histBuckets]int64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil || math.IsNaN(v) {
		return
	}
	h.mu.Lock()
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	h.buckets[bucketOf(v)]++
	h.mu.Unlock()
}

func bucketOf(v float64) int {
	if v <= 1e-12 {
		return 0
	}
	k := 1 + int(math.Floor(float64(histSub)*(math.Log10(v)+float64(histDecades/2))))
	if k < 1 {
		k = 1
	}
	if k >= histBuckets {
		k = histBuckets - 1
	}
	return k
}

// bucketBounds returns the value range [lo, hi) of bucket k ≥ 1.
func bucketBounds(k int) (lo, hi float64) {
	e := float64(k-1)/histSub - float64(histDecades/2)
	return math.Pow(10, e), math.Pow(10, e+1.0/histSub)
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) of the observed stream
// from the bucket distribution, log-interpolated within the containing
// bucket and clamped to the observed [min, max]. It is a deterministic
// pure function of the observations, so percentile summaries belong in
// the canonical trace. Returns 0 on a nil or empty histogram.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.quantileLocked(q)
}

func (h *Histogram) quantileLocked(q float64) float64 {
	if h.count == 0 {
		return 0
	}
	if q <= 0 {
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	target := q * float64(h.count-1) // rank in [0, count-1]
	cum := int64(0)
	for k, c := range h.buckets {
		if c == 0 {
			continue
		}
		// The target rank lies in this bucket iff it is below the bucket's
		// cumulative count; then frac = (target-cum)/c is in [0, 1).
		if float64(cum+c) > target {
			v := h.min
			if k > 0 {
				lo, hi := bucketBounds(k)
				frac := (target - float64(cum)) / float64(c)
				v = lo * math.Pow(hi/lo, frac)
			}
			if v < h.min {
				v = h.min
			}
			if v > h.max {
				v = h.max
			}
			return v
		}
		cum += c
	}
	return h.max
}

// Metric is one exported metric point. Kind is "counter", "gauge" or
// "histogram"; the summary fields are populated per kind. Volatile marks
// metrics carrying wall-clock or environment-dependent content (speedups,
// worker counts, machine facts): they are excluded from the determinism
// contract — StripTimings removes them from canonical traces and baseline
// comparison tooling must skip them.
type Metric struct {
	Name     string  `json:"name"`
	Kind     string  `json:"kind"`
	Value    float64 `json:"value"`           // counter count / gauge value / histogram mean
	Count    int64   `json:"count,omitempty"` // histogram only
	Sum      float64 `json:"sum,omitempty"`   // histogram only
	Min      float64 `json:"min,omitempty"`   // histogram only
	Max      float64 `json:"max,omitempty"`   // histogram only
	P50      float64 `json:"p50,omitempty"`   // histogram only (bucket-interpolated)
	P95      float64 `json:"p95,omitempty"`   // histogram only
	P99      float64 `json:"p99,omitempty"`   // histogram only
	Volatile bool    `json:"volatile,omitempty"`
}

// Registry is a get-or-create store of named metrics. Accessors are
// goroutine-safe; the returned metric handles are meant to be resolved
// once and then updated on the hot path. A nil *Registry returns nil
// (inert) handles from every accessor.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	volatile map[string]bool // names registered via VolatileGauge
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
		volatile: map[string]bool{},
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// VolatileGauge returns the named gauge, creating it on first use and
// marking it volatile: its value carries wall-clock or environment content
// (a measured speedup, a worker count) and is therefore excluded from the
// determinism contract. Snapshot flags it, Observer.Flush emits the flag,
// and StripTimings drops it from canonical traces.
func (r *Registry) VolatileGauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	g := r.Gauge(name)
	r.mu.Lock()
	r.volatile[name] = true
	r.mu.Unlock()
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Snapshot exports every metric sorted by (volatile, kind, name) — a
// deterministic order for JSON emission and run-to-run comparison. Gauges
// that were never Set and zero-count histograms are still included so the
// metric NAME set is deterministic too. Volatile metrics sort after every
// deterministic one: their presence may differ between configurations
// (e.g. the streaming drop counter exists only with a dashboard attached),
// and emitting them last keeps the seq numbers of all canonical events
// identical across such configurations.
func (r *Registry) Snapshot() []Metric {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Metric, 0, len(r.counters)+len(r.gauges)+len(r.hists))
	for name, c := range r.counters {
		out = append(out, Metric{Name: name, Kind: "counter", Value: float64(c.Value())})
	}
	for name, g := range r.gauges {
		out = append(out, Metric{Name: name, Kind: "gauge", Value: g.Value(),
			Volatile: r.volatile[name]})
	}
	for name, h := range r.hists {
		h.mu.Lock()
		m := Metric{Name: name, Kind: "histogram", Count: h.count,
			Sum: h.sum, Min: h.min, Max: h.max}
		if h.count > 0 {
			m.Value = h.sum / float64(h.count)
			m.P50 = h.quantileLocked(0.50)
			m.P95 = h.quantileLocked(0.95)
			m.P99 = h.quantileLocked(0.99)
		}
		h.mu.Unlock()
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Volatile != out[j].Volatile {
			return !out[i].Volatile
		}
		if out[i].Kind != out[j].Kind {
			return out[i].Kind < out[j].Kind
		}
		return out[i].Name < out[j].Name
	})
	return out
}
