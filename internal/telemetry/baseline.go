package telemetry

import (
	"encoding/json"
	"io"
)

// Baseline is the machine-readable benchmark record format
// (BENCH_baseline.json): a label plus a deterministic metric dump. Future
// PRs regenerate the file and diff it against the committed one to track
// the repo's performance trajectory.
type Baseline struct {
	Label   string   `json:"label"`
	Metrics []Metric `json:"metrics"`
}

// WriteBaseline writes the registry's snapshot as an indented JSON
// Baseline document.
func WriteBaseline(w io.Writer, label string, r *Registry) error {
	b := Baseline{Label: label, Metrics: r.Snapshot()}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(b)
}

// ReadBaseline parses a Baseline document.
func ReadBaseline(r io.Reader) (*Baseline, error) {
	var b Baseline
	if err := json.NewDecoder(r).Decode(&b); err != nil {
		return nil, err
	}
	return &b, nil
}
