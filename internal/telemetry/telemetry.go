// Package telemetry is the placer's observability layer: hierarchical
// timed spans (Tracer), a metrics registry (counters, gauges, histograms),
// and per-iteration snapshot records, all emitted as one deterministic
// JSONL event stream.
//
// Determinism contract: for a fixed design, mode and options, two runs
// produce byte-identical event streams apart from wall-clock content —
// the "dur_us" field of span_end events, events of kind "timing", and
// metric events flagged "volatile" (measured speedups, worker counts and
// other machine facts, registered via VolatileGauge). StripTimings
// canonicalizes a trace by removing exactly those, which is what the
// determinism tests (and any trace-diffing tooling) compare. The parallel
// execution layer extends the contract across worker counts: the same
// run at any -workers setting yields the same canonical trace.
//
// Everything is stdlib-only and inert when disabled: a nil *Observer, nil
// *Tracer, nil *Span and nil metric handles are all safe to call and do
// nothing, so pipeline code can be instrumented unconditionally without
// allocating on the disabled path.
//
// The JSONL schema (one event per line, "seq" strictly increasing):
//
//	{"seq":0,"ev":"span_start","span":1,"parent":0,"name":"place"}
//	{"seq":1,"ev":"log","msg":"phase 1: ..."}
//	{"seq":2,"ev":"snap","name":"wl_iter","iter":0,"f":{"overflow":0.93,...}}
//	{"seq":3,"ev":"timing","msg":"timing: PT 1.24s, RT 0.31s"}
//	{"seq":4,"ev":"grid","name":"congestion","iter":0,"nx":64,"ny":64,"max":1.4,"data":"00a3..."}
//	{"seq":5,"ev":"span_end","span":1,"name":"place","dur_us":1240031}
//	{"seq":6,"ev":"metric","name":"objective.evals","kind":"counter","value":412}
package telemetry

import (
	"bytes"
	"io"
	"math"
	"strconv"
	"sync"
	"time"
)

// Field is one named value of a snapshot record. Call sites pass fields
// in a fixed order; the encoder preserves it, keeping the stream
// deterministic without map-key sorting.
type Field struct {
	Key string
	Val float64
}

// F is shorthand for constructing a Field.
func F(key string, val float64) Field { return Field{Key: key, Val: val} }

// Observer bundles the three telemetry facilities behind one handle: the
// span Tracer, the metrics Registry, and the shared JSONL event stream
// (snapshots, logs, metric dumps). A nil *Observer is fully inert.
type Observer struct {
	// Tracer records hierarchical timed spans.
	Tracer *Tracer
	// Metrics is the run's metric registry.
	Metrics *Registry

	mu   sync.Mutex
	sink io.Writer // JSONL destination; nil = aggregate in memory only
	seq  int64
	line bytes.Buffer
	err  error
	now  func() time.Time
}

// NewObserver creates an observer writing JSONL events to sink. A nil
// sink is valid: spans and metrics still aggregate (StageTimings,
// Registry.Snapshot) but no event stream is written.
func NewObserver(sink io.Writer) *Observer {
	o := &Observer{sink: sink, now: time.Now}
	o.Tracer = newTracer(o)
	o.Metrics = NewRegistry()
	return o
}

// StartSpan opens a span on the observer's tracer. Safe on nil.
func (o *Observer) StartSpan(name string) *Span {
	if o == nil {
		return nil
	}
	return o.Tracer.Start(name)
}

// Counter resolves a named counter (nil handle when o is nil).
func (o *Observer) Counter(name string) *Counter {
	if o == nil {
		return nil
	}
	return o.Metrics.Counter(name)
}

// Gauge resolves a named gauge (nil handle when o is nil).
func (o *Observer) Gauge(name string) *Gauge {
	if o == nil {
		return nil
	}
	return o.Metrics.Gauge(name)
}

// VolatileGauge resolves a named volatile gauge (wall-clock/environment
// content, excluded from canonical traces). Nil handle when o is nil.
func (o *Observer) VolatileGauge(name string) *Gauge {
	if o == nil {
		return nil
	}
	return o.Metrics.VolatileGauge(name)
}

// Histogram resolves a named histogram (nil handle when o is nil).
func (o *Observer) Histogram(name string) *Histogram {
	if o == nil {
		return nil
	}
	return o.Metrics.Histogram(name)
}

// Log emits a deterministic log event. Safe on nil.
func (o *Observer) Log(msg string) {
	if o == nil {
		return
	}
	o.mu.Lock()
	o.emitLocked(func(e *eventWriter) {
		e.str("ev", "log")
		e.str("msg", msg)
	})
	o.mu.Unlock()
}

// Timing emits a log-like event whose message carries wall-clock content
// (runtimes). It is excluded from the determinism contract: StripTimings
// removes timing events entirely. Safe on nil.
func (o *Observer) Timing(msg string) {
	if o == nil {
		return
	}
	o.mu.Lock()
	o.emitLocked(func(e *eventWriter) {
		e.str("ev", "timing")
		e.str("msg", msg)
	})
	o.mu.Unlock()
}

// Snapshot emits one per-iteration record: a named set of fields at a
// loop index (e.g. HPWL, overflow, λ₁, λ₂, γ at routability iteration 3).
// Field order is preserved as given. Safe on nil.
func (o *Observer) Snapshot(name string, iter int, fields ...Field) {
	if o == nil {
		return
	}
	o.mu.Lock()
	o.emitLocked(func(e *eventWriter) {
		e.str("ev", "snap")
		e.str("name", name)
		e.num("iter", int64(iter))
		e.fieldObj("f", fields)
	})
	o.mu.Unlock()
}

// gridLevels is the quantization alphabet of "grid" events: 36 intensity
// steps, low to high. One character per G-cell keeps a 64×64 congestion
// map at 4 KB per event — small enough to stream every route iteration.
const gridLevels = "0123456789abcdefghijklmnopqrstuvwxyz"

// EncodeGridValues quantizes a non-negative field into the gridLevels
// alphabet, max-normalized, and returns the data string and the maximum
// (the scale needed to dequantize). All-zero input yields max 0 and an
// all-'0' string. The quantization is a pure function of the values, so
// grid events are part of the deterministic canonical trace.
func EncodeGridValues(vals []float64) (data string, max float64) {
	for _, v := range vals {
		if v > max {
			max = v
		}
	}
	buf := make([]byte, len(vals))
	n := float64(len(gridLevels) - 1)
	for i, v := range vals {
		k := 0
		if max > 0 && v > 0 {
			k = int(v/max*n + 0.5)
			if k < 0 {
				k = 0
			}
			if k > len(gridLevels)-1 {
				k = len(gridLevels) - 1
			}
		}
		buf[i] = gridLevels[k]
	}
	return string(buf), max
}

// DecodeGridValues reverses EncodeGridValues up to quantization error.
// Unknown characters decode to 0.
func DecodeGridValues(data string, max float64) []float64 {
	out := make([]float64, len(data))
	n := float64(len(gridLevels) - 1)
	for i := 0; i < len(data); i++ {
		c := data[i]
		k := 0
		switch {
		case c >= '0' && c <= '9':
			k = int(c - '0')
		case c >= 'a' && c <= 'z':
			k = int(c-'a') + 10
		}
		out[i] = float64(k) / n * max
	}
	return out
}

// Grid emits one quantized 2-D field snapshot (e.g. the congestion map of
// route iteration iter): a "grid" event carrying the nx×ny row-major cells
// encoded via EncodeGridValues. Deterministic; safe on nil.
func (o *Observer) Grid(name string, iter, nx, ny int, vals []float64) {
	if o == nil {
		return
	}
	data, max := EncodeGridValues(vals)
	o.mu.Lock()
	o.emitLocked(func(e *eventWriter) {
		e.str("ev", "grid")
		e.str("name", name)
		e.num("iter", int64(iter))
		e.num("nx", int64(nx))
		e.num("ny", int64(ny))
		e.f64("max", max)
		e.str("data", data)
	})
	o.mu.Unlock()
}

// Flush emits one "metric" event per registry entry (in the registry's
// deterministic order) and returns the first write error encountered on
// the stream, if any. Call once at the end of a run. Safe on nil.
func (o *Observer) Flush() error {
	if o == nil {
		return nil
	}
	snap := o.Metrics.Snapshot()
	o.mu.Lock()
	defer o.mu.Unlock()
	for i := range snap {
		m := &snap[i]
		o.emitLocked(func(e *eventWriter) {
			e.str("ev", "metric")
			e.str("name", m.Name)
			e.str("kind", m.Kind)
			e.f64("value", m.Value)
			if m.Kind == "histogram" {
				e.num("count", m.Count)
				e.f64("sum", m.Sum)
				e.f64("min", m.Min)
				e.f64("max", m.Max)
				if m.Count > 0 {
					e.f64("p50", m.P50)
					e.f64("p95", m.P95)
					e.f64("p99", m.P99)
				}
			}
			if m.Volatile {
				e.boolean("volatile", true)
			}
		})
	}
	return o.err
}

// Err returns the first write error seen on the event stream, if any.
func (o *Observer) Err() error {
	if o == nil {
		return nil
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.err
}

// emitLocked writes one event line. Callers must hold o.mu. With no sink
// the sequence number still advances so that enabling the sink never
// changes span IDs or aggregation behaviour.
func (o *Observer) emitLocked(fill func(*eventWriter)) {
	seq := o.seq
	o.seq++
	if o.sink == nil || o.err != nil {
		return
	}
	o.line.Reset()
	e := eventWriter{buf: &o.line}
	e.open(seq)
	fill(&e)
	e.close()
	if _, err := o.sink.Write(o.line.Bytes()); err != nil {
		o.err = err
	}
}

// eventWriter hand-assembles one JSON object so that field order,
// float formatting and string escaping are fully under our control
// (encoding/json would also work, but this keeps the hot path free of
// reflection and makes the determinism contract explicit).
type eventWriter struct {
	buf *bytes.Buffer
}

func (e *eventWriter) open(seq int64) {
	e.buf.WriteString(`{"seq":`)
	e.buf.WriteString(strconv.FormatInt(seq, 10))
}

func (e *eventWriter) close() {
	e.buf.WriteString("}\n")
}

func (e *eventWriter) key(k string) {
	e.buf.WriteByte(',')
	e.buf.WriteByte('"')
	e.buf.WriteString(k) // keys are compile-time identifiers, no escaping
	e.buf.WriteString(`":`)
}

func (e *eventWriter) str(k, v string) {
	e.key(k)
	e.buf.WriteString(strconv.Quote(v))
}

func (e *eventWriter) num(k string, v int64) {
	e.key(k)
	e.buf.WriteString(strconv.FormatInt(v, 10))
}

func (e *eventWriter) f64(k string, v float64) {
	e.key(k)
	writeFloat(e.buf, v)
}

func (e *eventWriter) boolean(k string, v bool) {
	e.key(k)
	e.buf.WriteString(strconv.FormatBool(v))
}

func (e *eventWriter) fieldObj(k string, fields []Field) {
	e.key(k)
	e.buf.WriteByte('{')
	for i, f := range fields {
		if i > 0 {
			e.buf.WriteByte(',')
		}
		e.buf.WriteString(strconv.Quote(f.Key))
		e.buf.WriteByte(':')
		writeFloat(e.buf, f.Val)
	}
	e.buf.WriteByte('}')
}

// writeFloat emits v as JSON: shortest round-trip decimal, with the
// non-finite values (invalid in JSON) mapped to null.
func writeFloat(buf *bytes.Buffer, v float64) {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		buf.WriteString("null")
		return
	}
	buf.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
}
