package report

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/telemetry"
)

// emitTrace runs a small instrumented workload and returns its raw trace.
// Real wall-clock timestamps are fine: everything the report and diff
// layers treat as deterministic is independent of them.
func emitTrace(t *testing.T, iters int, hpwlStep float64) []byte {
	t.Helper()
	var buf bytes.Buffer
	o := telemetry.NewObserver(&buf)
	root := o.StartSpan("place")
	for i := 0; i < iters; i++ {
		sp := o.StartSpan("route_iter")
		o.Snapshot("route_iter", i,
			telemetry.F("overflow_score", float64(100)-hpwlStep*float64(i)),
			telemetry.F("lambda2", 0.1*float64(i)))
		o.Grid("congestion", i, 2, 2, []float64{0.1, 0.9, 0.4, float64(i)})
		sp.End()
	}
	root.End()
	o.Counter("route.calls").Add(int64(iters))
	o.Histogram("nesterov.step_size").Observe(0.5)
	o.VolatileGauge("parallel.route.speedup").Set(3.3)
	if err := o.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestReadTraceRoundTrip(t *testing.T) {
	raw := emitTrace(t, 3, 20)
	tr, err := ReadTrace(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Malformed) != 0 {
		t.Fatalf("clean trace reported malformed lines: %+v", tr.Malformed)
	}
	want := []struct {
		name         string
		depth, count int
	}{
		{"place", 0, 1}, {"route_iter", 1, 3},
	}
	if len(tr.Stages) != len(want) {
		t.Fatalf("parsed %d stages, want %d: %+v", len(tr.Stages), len(want), tr.Stages)
	}
	for i, w := range want {
		if tr.Stages[i].Name != w.name || tr.Stages[i].Depth != w.depth || tr.Stages[i].Count != w.count {
			t.Errorf("stage %d = %+v, want %+v", i, tr.Stages[i], w)
		}
	}
	if got := len(tr.Snaps["route_iter"]); got != 3 {
		t.Errorf("route_iter series has %d samples, want 3", got)
	}
	if got := len(tr.Grids["congestion"]); got != 3 {
		t.Errorf("congestion grid series has %d frames, want 3", got)
	}
	g := tr.Grids["congestion"][2]
	if g.NX != 2 || g.NY != 2 || len(g.Data) != 4 {
		t.Errorf("grid frame wrong: %+v", g)
	}
	vals := telemetry.DecodeGridValues(g.Data, g.Max)
	if len(vals) != 4 || vals[3] < 1.9 || vals[3] > 2.1 {
		t.Errorf("grid decode wrong: %v", vals)
	}
	fm := tr.FinalMetrics()
	if fm["route.calls"].Value != 3 {
		t.Errorf("final route.calls = %v, want 3", fm["route.calls"].Value)
	}
	if !fm["parallel.route.speedup"].Volatile {
		t.Error("volatile flag lost in parsing")
	}
}

func TestReadTraceToleratesMalformedLines(t *testing.T) {
	raw := emitTrace(t, 2, 20)
	lines := bytes.Split(bytes.TrimSpace(raw), []byte("\n"))
	var corrupted bytes.Buffer
	corrupted.WriteString("this is not json\n")
	for i, ln := range lines {
		corrupted.Write(ln)
		corrupted.WriteByte('\n')
		if i == 1 {
			corrupted.WriteString(`{"seq": truncated...` + "\n")
		}
	}
	tr, err := ReadTrace(&corrupted)
	if err != nil {
		t.Fatalf("malformed lines aborted the parse: %v", err)
	}
	if len(tr.Malformed) != 2 {
		t.Fatalf("recorded %d malformed lines, want 2: %+v", len(tr.Malformed), tr.Malformed)
	}
	if tr.Malformed[0].Line != 1 || tr.Malformed[1].Line != 4 {
		t.Errorf("malformed line numbers = %d, %d; want 1, 4",
			tr.Malformed[0].Line, tr.Malformed[1].Line)
	}
	if len(tr.Events) != len(lines) {
		t.Errorf("parsed %d events, want %d (all valid lines kept)", len(tr.Events), len(lines))
	}
	var rep strings.Builder
	tr.WriteReport(&rep)
	if !strings.Contains(rep.String(), "2 malformed lines skipped") {
		t.Errorf("report does not surface malformed count:\n%s", rep.String())
	}
}

func TestSparkline(t *testing.T) {
	if s := Sparkline(nil, 10); s != "" {
		t.Errorf("empty series sparkline = %q", s)
	}
	s := Sparkline([]float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}, 10)
	if len(s) != 10 {
		t.Fatalf("sparkline width %d, want 10", len(s))
	}
	if s[0] != sparkLevels[0] || s[9] != sparkLevels[len(sparkLevels)-1] {
		t.Errorf("sparkline extremes wrong: %q", s)
	}
	// Constant series: mid-level everywhere, no div-by-zero.
	c := Sparkline([]float64{2, 2, 2}, 10)
	if len(c) != 3 {
		t.Errorf("constant series width %d, want 3", len(c))
	}
	// Downsampling long series to the target width.
	long := make([]float64, 1000)
	for i := range long {
		long[i] = float64(i)
	}
	if got := Sparkline(long, 60); len(got) != 60 {
		t.Errorf("downsampled width %d, want 60", len(got))
	}
}

func TestWriteReport(t *testing.T) {
	raw := emitTrace(t, 5, 20)
	tr, err := ReadTrace(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	var rep strings.Builder
	tr.WriteReport(&rep)
	out := rep.String()
	for _, want := range []string{
		"Per-stage timing", "place", "route_iter",
		"Convergence: route_iter (5 samples)", "overflow_score", "lambda2",
		"Grid series: congestion (5 frames, 2x2",
		"Metrics", "route.calls", "nesterov.step_size",
		"p50=", "p95=", "p99=",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestStageLevel(t *testing.T) {
	cases := []struct {
		name string
		lvl  int
		bare string
	}{
		{"wirelength", 0, "wirelength"},
		{"L1/wirelength", 1, "wirelength"},
		{"L2/route_iter", 2, "route_iter"},
		{"L12/place", 12, "place"},
		{"L0/setup", 0, "L0/setup"},   // level 0 never carries a prefix
		{"Lx/setup", 0, "Lx/setup"},   // malformed: not a level prefix
		{"Lambda/x", 0, "Lambda/x"},   // "L"-leading word, not a prefix
		{"legalize", 0, "legalize"},   // starts with L, no slash
		{"L-1/setup", 0, "L-1/setup"}, // negative levels don't exist
	}
	for _, c := range cases {
		lvl, bare := StageLevel(c.name)
		if lvl != c.lvl || bare != c.bare {
			t.Errorf("StageLevel(%q) = (%d, %q), want (%d, %q)", c.name, lvl, bare, c.lvl, c.bare)
		}
	}
}

// emitMultilevelTrace mimics the span stream of a 2-level placement: the
// coarse level's spans are "L1/"-prefixed, the finest level's are bare.
func emitMultilevelTrace(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	o := telemetry.NewObserver(&buf)
	for _, prefix := range []string{"L1/", ""} {
		root := o.StartSpan(prefix + "place")
		sp := o.StartSpan(prefix + "phase1_wirelength")
		sp.End()
		for i := 0; i < 2; i++ {
			it := o.StartSpan(prefix + "route_iter")
			it.End()
		}
		root.End()
	}
	if err := o.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestLevelStagesGroupsByHierarchyLevel(t *testing.T) {
	tr, err := ReadTrace(bytes.NewReader(emitMultilevelTrace(t)))
	if err != nil {
		t.Fatal(err)
	}
	groups := tr.LevelStages()
	if len(groups) != 2 {
		t.Fatalf("got %d level groups, want 2: %+v", len(groups), groups)
	}
	if groups[0].Level != 1 || groups[1].Level != 0 {
		t.Fatalf("level order = [%d %d], want coarsest first [1 0]", groups[0].Level, groups[1].Level)
	}
	for _, g := range groups {
		wantNames := []string{"place", "phase1_wirelength", "route_iter"}
		if len(g.Stages) != len(wantNames) {
			t.Fatalf("level %d has %d stages, want %d: %+v", g.Level, len(g.Stages), len(wantNames), g.Stages)
		}
		for i, want := range wantNames {
			if g.Stages[i].Name != want {
				t.Errorf("level %d stage %d = %q, want bare name %q", g.Level, i, g.Stages[i].Name, want)
			}
		}
	}
	if groups[0].Stages[2].Count != 2 {
		t.Errorf("L1 route_iter count = %d, want 2", groups[0].Stages[2].Count)
	}

	// A flat trace keeps a single level-0 group with the original names.
	flat, err := ReadTrace(bytes.NewReader(emitTrace(t, 2, 20)))
	if err != nil {
		t.Fatal(err)
	}
	fg := flat.LevelStages()
	if len(fg) != 1 || fg[0].Level != 0 || len(fg[0].Stages) != len(flat.Stages) {
		t.Fatalf("flat trace level groups = %+v, want one level-0 group", fg)
	}
}

func TestWriteReportPerLevelTables(t *testing.T) {
	tr, err := ReadTrace(bytes.NewReader(emitMultilevelTrace(t)))
	if err != nil {
		t.Fatal(err)
	}
	var rep strings.Builder
	tr.WriteReport(&rep)
	out := rep.String()
	coarse := strings.Index(out, "Per-stage timing — level 1 (coarse")
	finest := strings.Index(out, "Per-stage timing — level 0 (finest")
	if coarse < 0 || finest < 0 {
		t.Fatalf("report missing per-level timing tables:\n%s", out)
	}
	if coarse > finest {
		t.Errorf("coarse level table printed after the finest level:\n%s", out)
	}
	if strings.Contains(out, "L1/") {
		t.Errorf("per-level tables leak the L1/ prefix:\n%s", out)
	}

	// Flat traces keep the classic single-table header.
	flat, err := ReadTrace(bytes.NewReader(emitTrace(t, 2, 20)))
	if err != nil {
		t.Fatal(err)
	}
	rep.Reset()
	flat.WriteReport(&rep)
	if !strings.Contains(rep.String(), "Per-stage timing\n") || strings.Contains(rep.String(), "level 0") {
		t.Errorf("flat report changed shape:\n%s", rep.String())
	}
}

func TestReportMarksVolatileMetrics(t *testing.T) {
	var buf bytes.Buffer
	obs := telemetry.NewObserver(&buf)
	obs.VolatileGauge("parallel.density.speedup").Set(2.5)
	obs.Counter("route.calls").Inc()
	if err := obs.Flush(); err != nil {
		t.Fatal(err)
	}
	tr, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	tr.WriteReport(&out)
	rep := out.String()
	if !strings.Contains(rep, "parallel.density.speedup") {
		t.Errorf("report dropped a volatile gauge:\n%s", rep)
	}
	if !strings.Contains(rep, "gauge*") || !strings.Contains(rep, "excluded from canonical traces") {
		t.Errorf("report does not mark volatile metrics:\n%s", rep)
	}
}

func TestDiffIdenticalRunsReportNoDrift(t *testing.T) {
	// Same workload, different wall clocks: deterministic drift must be
	// NONE even though durations (and the volatile speedup gauge) differ.
	parse := func(raw []byte) *Trace {
		tr, err := ReadTrace(bytes.NewReader(raw))
		if err != nil {
			t.Fatal(err)
		}
		return tr
	}
	a := parse(emitTrace(t, 4, 20))
	b := parse(emitTrace(t, 4, 20))
	d := Compare(a, b)
	if drift := d.DeterministicDrift(); len(drift) != 0 {
		t.Fatalf("identical runs report drift: %v", drift)
	}
	var rep strings.Builder
	d.WriteReport(&rep)
	if !strings.Contains(rep.String(), "Deterministic drift: NONE") {
		t.Errorf("diff report missing NONE marker:\n%s", rep.String())
	}
	if !strings.Contains(rep.String(), "Per-stage timing") {
		t.Errorf("diff report missing timing table:\n%s", rep.String())
	}
}

func TestDiffDetectsDeterministicDrift(t *testing.T) {
	parse := func(raw []byte) *Trace {
		tr, err := ReadTrace(bytes.NewReader(raw))
		if err != nil {
			t.Fatal(err)
		}
		return tr
	}
	a := parse(emitTrace(t, 4, 20)) // 4 iterations
	b := parse(emitTrace(t, 6, 15)) // 6 iterations, different convergence
	d := Compare(a, b)
	drift := d.DeterministicDrift()
	if len(drift) == 0 {
		t.Fatal("divergent runs report no drift")
	}
	joined := strings.Join(drift, "\n")
	for _, want := range []string{
		"stage route_iter: count 4 → 6",
		"series route_iter: 4 → 6 iterations",
		"metric route.calls",
	} {
		if !strings.Contains(joined, want) {
			t.Errorf("drift findings missing %q:\n%s", want, joined)
		}
	}
	// The volatile speedup gauge must never appear as drift even if it
	// differed (here both runs set the same value; assert by name anyway).
	if strings.Contains(joined, "speedup") {
		t.Errorf("volatile metric reported as deterministic drift:\n%s", joined)
	}
}

// TestReportPredictorSection: a trace carrying the congestion-predictor
// counters gets a dedicated section with the realized skip rate; a trace
// without them must not mention the predictor at all.
func TestReportPredictorSection(t *testing.T) {
	var buf bytes.Buffer
	o := telemetry.NewObserver(&buf)
	root := o.StartSpan("place")
	root.End()
	o.Counter("route.calls").Add(6)
	o.Counter("route.skipped_calls").Add(2)
	o.Counter("predict.gates").Add(7)
	o.Counter("predict.fits").Add(6)
	o.Gauge("predict.gate_delta").Set(0.0125)
	if err := o.Flush(); err != nil {
		t.Fatal(err)
	}
	tr, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var rep strings.Builder
	tr.WriteReport(&rep)
	for _, want := range []string{
		"Congestion predictor",
		"route calls (real)",
		"route calls (skipped)",
		"skip rate",
		"25.0%", // 2 skipped of 8 gated iterations
		"gate evaluations",
		"oracle refits",
		"last gate delta",
	} {
		if !strings.Contains(rep.String(), want) {
			t.Errorf("predictor section misses %q:\n%s", want, rep.String())
		}
	}

	// Predictor-off traces stay untouched.
	off := emitTrace(t, 2, 20)
	trOff, err := ReadTrace(bytes.NewReader(off))
	if err != nil {
		t.Fatal(err)
	}
	var repOff strings.Builder
	trOff.WriteReport(&repOff)
	if strings.Contains(repOff.String(), "predictor") || strings.Contains(repOff.String(), "skip rate") {
		t.Errorf("predictor-off report mentions the predictor:\n%s", repOff.String())
	}
}
