// Package report is the trace-analytics library over the JSONL telemetry
// stream of internal/telemetry: parsing, per-stage/per-series aggregation,
// the human-readable summary used by cmd/tracereport, and trace diffing
// (diff.go) used by `tracereport -diff` and the dashboard's A/B view.
//
// Parsing is tolerant: a malformed line is recorded with its line number
// in Trace.Malformed and skipped, so one corrupt line (a crashed run, a
// truncated write) never hides the rest of the report.
package report

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/telemetry"
)

// Event is one decoded JSONL trace line. Fields are populated per kind
// (see the telemetry package comment for the schema).
type Event struct {
	Seq    int64              `json:"seq"`
	Ev     string             `json:"ev"`
	Span   int                `json:"span,omitempty"`
	Parent int                `json:"parent,omitempty"`
	Name   string             `json:"name,omitempty"`
	DurUS  int64              `json:"dur_us,omitempty"`
	Iter   int                `json:"iter,omitempty"`
	Msg    string             `json:"msg,omitempty"`
	F      map[string]float64 `json:"f,omitempty"`
	Kind   string             `json:"kind,omitempty"`
	Value  float64            `json:"value,omitempty"`
	Count  int64              `json:"count,omitempty"`
	Sum    float64            `json:"sum,omitempty"`
	Min    float64            `json:"min,omitempty"`
	Max    float64            `json:"max,omitempty"`
	P50    float64            `json:"p50,omitempty"`
	P95    float64            `json:"p95,omitempty"`
	P99    float64            `json:"p99,omitempty"`
	// NX, NY and Data carry "grid" events (quantized 2-D field snapshots;
	// Max doubles as the dequantization scale — decode with
	// telemetry.DecodeGridValues(Data, Max)).
	NX   int    `json:"nx,omitempty"`
	NY   int    `json:"ny,omitempty"`
	Data string `json:"data,omitempty"`
	// Volatile marks metric events excluded from the determinism
	// contract (speedups, worker counts); the report surfaces them with
	// a marker instead of dropping them.
	Volatile bool `json:"volatile,omitempty"`
}

// ParseEvent decodes one JSONL trace line.
func ParseEvent(line []byte) (Event, error) {
	var ev Event
	err := json.Unmarshal(line, &ev)
	return ev, err
}

// MalformedLine records one trace line that failed to parse.
type MalformedLine struct {
	Line int // 1-based line number in the input stream
	Err  error
}

// Trace is a fully parsed trace file.
type Trace struct {
	Events []Event
	// Stages aggregates span durations by name in first-seen order, with
	// tree depth, rebuilt from the span_start/span_end events.
	Stages []telemetry.StageTiming
	// SnapNames lists snapshot series names in first-seen order.
	SnapNames []string
	// Snaps holds the snapshot events of each series in stream order.
	Snaps map[string][]Event
	// GridNames lists grid series names in first-seen order; Grids holds
	// each series' events in stream order.
	GridNames []string
	Grids     map[string][]Event
	// Metrics holds the trailing metric dump, in stream order.
	Metrics []Event
	// Logs counts log + timing events.
	Logs int
	// Malformed lists the skipped unparseable lines (file:line context is
	// the caller's to add — ReadTrace only sees a stream).
	Malformed []MalformedLine
}

// ReadTrace parses a JSONL trace stream. Malformed lines are recorded in
// Trace.Malformed and skipped; only an I/O-level error fails the parse.
func ReadTrace(r io.Reader) (*Trace, error) {
	t := &Trace{Snaps: map[string][]Event{}, Grids: map[string][]Event{}}
	byKey := map[string]int{}
	depthOf := map[int]int{} // span id -> depth
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		ev, err := ParseEvent(line)
		if err != nil {
			t.Malformed = append(t.Malformed, MalformedLine{Line: lineNo, Err: err})
			continue
		}
		t.Events = append(t.Events, ev)
		switch ev.Ev {
		case "span_start":
			depth := 0
			if d, ok := depthOf[ev.Parent]; ok {
				depth = d + 1
			}
			depthOf[ev.Span] = depth
			if _, ok := byKey[ev.Name]; !ok {
				byKey[ev.Name] = len(t.Stages)
				t.Stages = append(t.Stages, telemetry.StageTiming{Name: ev.Name, Depth: depth})
			}
		case "span_end":
			if i, ok := byKey[ev.Name]; ok {
				t.Stages[i].Count++
				t.Stages[i].Total += time.Duration(ev.DurUS) * time.Microsecond
			}
		case "snap":
			if _, ok := t.Snaps[ev.Name]; !ok {
				t.SnapNames = append(t.SnapNames, ev.Name)
			}
			t.Snaps[ev.Name] = append(t.Snaps[ev.Name], ev)
		case "grid":
			if _, ok := t.Grids[ev.Name]; !ok {
				t.GridNames = append(t.GridNames, ev.Name)
			}
			t.Grids[ev.Name] = append(t.Grids[ev.Name], ev)
		case "metric":
			t.Metrics = append(t.Metrics, ev)
		case "log", "timing":
			t.Logs++
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("report: reading trace: %w", err)
	}
	return t, nil
}

// StageLevel splits a multilevel stage or span name into its hierarchy
// level and bare name: "L2/wirelength" → (2, "wirelength"). Flat names and
// malformed prefixes are level 0 with the name unchanged.
func StageLevel(name string) (int, string) {
	if rest, ok := strings.CutPrefix(name, "L"); ok {
		if lvl, bare, found := strings.Cut(rest, "/"); found {
			if n, err := strconv.Atoi(lvl); err == nil && n >= 1 {
				return n, bare
			}
		}
	}
	return 0, name
}

// LevelGroup is one hierarchy level's slice of the per-stage timing table;
// Stages carry the bare (prefix-stripped) names.
type LevelGroup struct {
	Level  int
	Stages []telemetry.StageTiming
}

// LevelStages groups the per-stage timings by multilevel hierarchy level,
// coarsest level first — the order a multilevel run executes them. A flat
// trace yields a single level-0 group identical to Trace.Stages.
func (t *Trace) LevelStages() []LevelGroup {
	byLevel := map[int][]telemetry.StageTiming{}
	var levels []int
	for _, s := range t.Stages {
		lvl, bare := StageLevel(s.Name)
		if _, ok := byLevel[lvl]; !ok {
			levels = append(levels, lvl)
		}
		s.Name = bare
		byLevel[lvl] = append(byLevel[lvl], s)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(levels)))
	groups := make([]LevelGroup, 0, len(levels))
	for _, lvl := range levels {
		groups = append(groups, LevelGroup{Level: lvl, Stages: byLevel[lvl]})
	}
	return groups
}

// RootTotal returns the summed duration of the top-level (depth 0) spans.
func (t *Trace) RootTotal() time.Duration {
	var total time.Duration
	for _, s := range t.Stages {
		if s.Depth == 0 {
			total += s.Total
		}
	}
	return total
}

// FinalMetrics returns the last metric event per name (a resumed run's
// concatenated trace can hold two dumps; the later one wins).
func (t *Trace) FinalMetrics() map[string]Event {
	out := make(map[string]Event, len(t.Metrics))
	for _, m := range t.Metrics {
		out[m.Name] = m
	}
	return out
}

// sparkLevels are the ASCII intensity steps of a sparkline, low to high.
const sparkLevels = " .:-=+*#%@"

// Sparkline renders vals as a fixed-width ASCII intensity strip,
// min-max normalized; wider series are mean-downsampled into width
// columns. An empty series renders as an empty string.
func Sparkline(vals []float64, width int) string {
	if len(vals) == 0 || width <= 0 {
		return ""
	}
	// Downsample (or keep) into at most width column means.
	cols := width
	if len(vals) < cols {
		cols = len(vals)
	}
	col := make([]float64, cols)
	for i := range col {
		lo := i * len(vals) / cols
		hi := (i + 1) * len(vals) / cols
		if hi <= lo {
			hi = lo + 1
		}
		var s float64
		for _, v := range vals[lo:hi] {
			s += v
		}
		col[i] = s / float64(hi-lo)
	}
	mn, mx := col[0], col[0]
	for _, v := range col {
		if v < mn {
			mn = v
		}
		if v > mx {
			mx = v
		}
	}
	var sb strings.Builder
	n := len(sparkLevels) - 1
	for _, v := range col {
		k := n / 2
		if mx > mn {
			k = int((v - mn) / (mx - mn) * float64(n))
		}
		sb.WriteByte(sparkLevels[k])
	}
	return sb.String()
}

// WriteReport renders the human-readable trace summary: the per-stage
// timing table, convergence sparklines for every snapshot series, and
// the final metrics dump (histograms with p50/p95/p99).
func (t *Trace) WriteReport(w io.Writer) {
	root := t.RootTotal()
	fmt.Fprintf(w, "trace: %d events, %d stages, %d snapshot series, %d log lines",
		len(t.Events), len(t.Stages), len(t.SnapNames), t.Logs)
	if n := len(t.Malformed); n > 0 {
		fmt.Fprintf(w, ", %d malformed lines skipped", n)
	}
	fmt.Fprintf(w, "\n\n")

	groups := t.LevelStages()
	for gi, g := range groups {
		if gi > 0 {
			fmt.Fprintln(w)
		}
		switch {
		case len(groups) == 1 && g.Level == 0:
			// Flat trace: the classic single table, byte-identical to
			// reports from before the multilevel flow existed.
			fmt.Fprintf(w, "Per-stage timing\n")
		case g.Level == 0:
			fmt.Fprintf(w, "Per-stage timing — level 0 (finest, total %s)\n", fmtDur(levelTotal(g)))
		default:
			fmt.Fprintf(w, "Per-stage timing — level %d (coarse, total %s)\n", g.Level, fmtDur(levelTotal(g)))
		}
		fmt.Fprintf(w, "  %-34s %7s %12s %12s %7s\n", "stage", "count", "total", "avg", "%root")
		for _, s := range g.Stages {
			indent := strings.Repeat("  ", s.Depth)
			avg := time.Duration(0)
			if s.Count > 0 {
				avg = s.Total / time.Duration(s.Count)
			}
			pct := 0.0
			if root > 0 {
				pct = 100 * float64(s.Total) / float64(root)
			}
			fmt.Fprintf(w, "  %-34s %7d %12s %12s %6.1f%%\n",
				indent+s.Name, s.Count, fmtDur(s.Total), fmtDur(avg), pct)
		}
	}

	for _, name := range t.SnapNames {
		events := t.Snaps[name]
		fmt.Fprintf(w, "\nConvergence: %s (%d samples)\n", name, len(events))
		for _, key := range snapFieldKeys(events) {
			vals := make([]float64, 0, len(events))
			for _, ev := range events {
				if v, ok := ev.F[key]; ok {
					vals = append(vals, v)
				}
			}
			if len(vals) == 0 {
				continue
			}
			fmt.Fprintf(w, "  %-16s |%s| first %-11s last %-11s\n",
				key, Sparkline(vals, 60), fmtVal(vals[0]), fmtVal(vals[len(vals)-1]))
		}
	}

	for _, name := range t.GridNames {
		events := t.Grids[name]
		last := events[len(events)-1]
		fmt.Fprintf(w, "\nGrid series: %s (%d frames, %dx%d, final max %s)\n",
			name, len(events), last.NX, last.NY, fmtVal(last.Max))
	}

	t.writePredictor(w)

	if len(t.Metrics) > 0 {
		fmt.Fprintf(w, "\nMetrics\n")
		for _, m := range t.Metrics {
			kind := m.Kind
			if m.Volatile {
				// Worker counts, measured speedups and other
				// machine-dependent gauges: shown, but flagged as outside
				// the determinism contract.
				kind += "*"
			}
			switch m.Kind {
			case "histogram":
				fmt.Fprintf(w, "  %-34s %-9s n=%-7d mean=%-11s p50=%-11s p95=%-11s p99=%-11s min=%-11s max=%s\n",
					m.Name, kind, m.Count, fmtVal(m.Value),
					fmtVal(m.P50), fmtVal(m.P95), fmtVal(m.P99),
					fmtVal(m.Min), fmtVal(m.Max))
			default:
				fmt.Fprintf(w, "  %-34s %-9s %s\n", m.Name, kind, fmtVal(m.Value))
			}
		}
		if hasVolatile(t.Metrics) {
			fmt.Fprintf(w, "  (* volatile: wall-clock/environment metric, excluded from canonical traces)\n")
		}
	}
}

// writePredictor renders the congestion-predictor section: the gate counters
// and the realized skip rate (skipped calls over gated route iterations).
// The section appears only when a predictor run left its metrics in the
// trace, so reports over predictor-off traces are byte-identical to reports
// from before the predictor existed.
func (t *Trace) writePredictor(w io.Writer) {
	fm := t.FinalMetrics()
	skipped, ok := fm["route.skipped_calls"]
	if !ok {
		return
	}
	calls := fm["route.calls"].Value
	gates := fm["predict.gates"].Value
	fits := fm["predict.fits"].Value
	fmt.Fprintf(w, "\nCongestion predictor\n")
	fmt.Fprintf(w, "  %-24s %s\n", "route calls (real)", fmtVal(calls))
	fmt.Fprintf(w, "  %-24s %s\n", "route calls (skipped)", fmtVal(skipped.Value))
	if total := calls + skipped.Value; total > 0 {
		fmt.Fprintf(w, "  %-24s %.1f%%\n", "skip rate", 100*skipped.Value/total)
	}
	fmt.Fprintf(w, "  %-24s %s\n", "gate evaluations", fmtVal(gates))
	fmt.Fprintf(w, "  %-24s %s\n", "oracle refits", fmtVal(fits))
	if gd, ok := fm["predict.gate_delta"]; ok {
		fmt.Fprintf(w, "  %-24s %s\n", "last gate delta", fmtVal(gd.Value))
	}
}

// snapFieldKeys returns the union of field names of a snapshot series,
// sorted (JSON decoding loses the original field order).
func snapFieldKeys(events []Event) []string {
	seen := map[string]bool{}
	var keys []string
	for _, ev := range events {
		for k := range ev.F {
			if !seen[k] {
				seen[k] = true
				keys = append(keys, k)
			}
		}
	}
	sort.Strings(keys)
	return keys
}

// levelTotal is the summed duration of one level group's depth-0 spans.
func levelTotal(g LevelGroup) time.Duration {
	var total time.Duration
	for _, s := range g.Stages {
		if s.Depth == 0 {
			total += s.Total
		}
	}
	return total
}

func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.3fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d.Microseconds())/1000)
	default:
		return fmt.Sprintf("%dµs", d.Microseconds())
	}
}

func fmtVal(v float64) string {
	a := v
	if a < 0 {
		a = -a
	}
	if a != 0 && (a >= 1e6 || a < 1e-3) {
		return fmt.Sprintf("%.3e", v)
	}
	return fmt.Sprintf("%.4g", v)
}

func hasVolatile(ms []Event) bool {
	for _, m := range ms {
		if m.Volatile {
			return true
		}
	}
	return false
}
