package report

// Trace diffing: compare two parsed traces (two runs, two configurations,
// before/after a change) and separate DETERMINISTIC drift — different
// metric values, different iteration counts, different stage invocation
// counts, different final snapshot values — from wall-clock drift (stage
// durations), which two runs of even the same binary never reproduce.
// `tracereport -diff` exits non-zero exactly when deterministic drift
// exists, so two identical-seed runs diff clean; the dashboard's A/B view
// renders the same report.

import (
	"fmt"
	"io"
	"math"
	"sort"
	"time"
)

// StageDelta compares one span name across two traces. Count is part of
// the determinism contract (the same run executes the same spans); Total
// is wall-clock and informational only.
type StageDelta struct {
	Name           string
	CountA, CountB int
	TotalA, TotalB time.Duration
}

// MetricDelta compares the final value of one metric. Volatile metrics
// (speedups, worker counts) are expected to differ between runs and never
// count as deterministic drift.
type MetricDelta struct {
	Name     string
	Kind     string
	A, B     float64
	InA, InB bool
	Volatile bool
}

// FieldDelta compares the final value of one snapshot-series field.
type FieldDelta struct {
	Key  string
	A, B float64
}

// SeriesDelta compares one snapshot series: its length (iteration-count
// drift) and the final value of every field.
type SeriesDelta struct {
	Name       string
	LenA, LenB int
	Fields     []FieldDelta
}

// Diff is the structured comparison of two traces.
type Diff struct {
	EventsA, EventsB int
	Stages           []StageDelta
	Metrics          []MetricDelta
	Series           []SeriesDelta
}

// Compare diffs two parsed traces. Ordering follows trace A's first-seen
// order with B-only entries appended, so reports are stable.
func Compare(a, b *Trace) *Diff {
	d := &Diff{EventsA: len(a.Events), EventsB: len(b.Events)}

	// Stages: union keyed by name.
	stageIdx := map[string]int{}
	for _, s := range a.Stages {
		stageIdx[s.Name] = len(d.Stages)
		d.Stages = append(d.Stages, StageDelta{Name: s.Name, CountA: s.Count, TotalA: s.Total})
	}
	for _, s := range b.Stages {
		i, ok := stageIdx[s.Name]
		if !ok {
			i = len(d.Stages)
			stageIdx[s.Name] = i
			d.Stages = append(d.Stages, StageDelta{Name: s.Name})
		}
		d.Stages[i].CountB = s.Count
		d.Stages[i].TotalB = s.Total
	}

	// Metrics: final dump per name.
	finalA, finalB := a.FinalMetrics(), b.FinalMetrics()
	names := make([]string, 0, len(finalA)+len(finalB))
	seen := map[string]bool{}
	for _, m := range a.Metrics {
		if !seen[m.Name] {
			seen[m.Name] = true
			names = append(names, m.Name)
		}
	}
	for _, m := range b.Metrics {
		if !seen[m.Name] {
			seen[m.Name] = true
			names = append(names, m.Name)
		}
	}
	for _, name := range names {
		ma, inA := finalA[name]
		mb, inB := finalB[name]
		md := MetricDelta{Name: name, InA: inA, InB: inB}
		if inA {
			md.Kind, md.A = ma.Kind, ma.Value
			md.Volatile = ma.Volatile
		}
		if inB {
			md.Kind, md.B = mb.Kind, mb.Value
			md.Volatile = md.Volatile || mb.Volatile
		}
		d.Metrics = append(d.Metrics, md)
	}

	// Snapshot series: lengths and final field values.
	seriesNames := append([]string(nil), a.SnapNames...)
	for _, n := range b.SnapNames {
		if _, ok := a.Snaps[n]; !ok {
			seriesNames = append(seriesNames, n)
		}
	}
	for _, name := range seriesNames {
		ea, eb := a.Snaps[name], b.Snaps[name]
		sd := SeriesDelta{Name: name, LenA: len(ea), LenB: len(eb)}
		keys := map[string]bool{}
		if len(ea) > 0 {
			for k := range ea[len(ea)-1].F {
				keys[k] = true
			}
		}
		if len(eb) > 0 {
			for k := range eb[len(eb)-1].F {
				keys[k] = true
			}
		}
		sorted := make([]string, 0, len(keys))
		for k := range keys {
			sorted = append(sorted, k)
		}
		sort.Strings(sorted)
		for _, k := range sorted {
			var va, vb float64
			if len(ea) > 0 {
				va = ea[len(ea)-1].F[k]
			}
			if len(eb) > 0 {
				vb = eb[len(eb)-1].F[k]
			}
			sd.Fields = append(sd.Fields, FieldDelta{Key: k, A: va, B: vb})
		}
		d.Series = append(d.Series, sd)
	}
	return d
}

// drifted reports a meaningful difference between two final values (exact
// inequality — the traces are deterministic, so any difference is real).
func drifted(a, b float64) bool {
	if math.IsNaN(a) && math.IsNaN(b) {
		return false
	}
	return a != b
}

// DeterministicDrift returns every deterministic finding: non-volatile
// metric deltas, iteration-count drift, final-snapshot-value drift, and
// stage invocation-count drift. Empty for two runs of the same
// deterministic placement.
func (d *Diff) DeterministicDrift() []string {
	var out []string
	for _, s := range d.Stages {
		if s.CountA != s.CountB {
			out = append(out, fmt.Sprintf("stage %s: count %d → %d", s.Name, s.CountA, s.CountB))
		}
	}
	for _, m := range d.Metrics {
		if m.Volatile {
			continue
		}
		switch {
		case m.InA && !m.InB:
			out = append(out, fmt.Sprintf("metric %s: only in A (%s)", m.Name, fmtVal(m.A)))
		case !m.InA && m.InB:
			out = append(out, fmt.Sprintf("metric %s: only in B (%s)", m.Name, fmtVal(m.B)))
		case drifted(m.A, m.B):
			out = append(out, fmt.Sprintf("metric %s: %s → %s (Δ %s)",
				m.Name, fmtVal(m.A), fmtVal(m.B), fmtVal(m.B-m.A)))
		}
	}
	for _, s := range d.Series {
		if s.LenA != s.LenB {
			out = append(out, fmt.Sprintf("series %s: %d → %d iterations", s.Name, s.LenA, s.LenB))
		}
		for _, f := range s.Fields {
			if drifted(f.A, f.B) {
				out = append(out, fmt.Sprintf("series %s final %s: %s → %s (Δ %s)",
					s.Name, f.Key, fmtVal(f.A), fmtVal(f.B), fmtVal(f.B-f.A)))
			}
		}
	}
	return out
}

// WriteReport renders the diff: the deterministic findings first (or an
// explicit NONE), then the wall-clock per-stage timing comparison.
func (d *Diff) WriteReport(w io.Writer) {
	fmt.Fprintf(w, "trace diff: A %d events, B %d events\n\n", d.EventsA, d.EventsB)
	drift := d.DeterministicDrift()
	if len(drift) == 0 {
		fmt.Fprintf(w, "Deterministic drift: NONE\n")
	} else {
		fmt.Fprintf(w, "Deterministic drift: %d findings\n", len(drift))
		for _, line := range drift {
			fmt.Fprintf(w, "  %s\n", line)
		}
	}

	fmt.Fprintf(w, "\nPer-stage timing (wall-clock, informational)\n")
	fmt.Fprintf(w, "  %-34s %12s %12s %8s\n", "stage", "A total", "B total", "Δ%")
	for _, s := range d.Stages {
		pct := 0.0
		if s.TotalA > 0 {
			pct = 100 * (float64(s.TotalB) - float64(s.TotalA)) / float64(s.TotalA)
		}
		fmt.Fprintf(w, "  %-34s %12s %12s %+7.1f%%\n",
			s.Name, fmtDur(s.TotalA), fmtDur(s.TotalB), pct)
	}
}
