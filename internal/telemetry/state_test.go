package telemetry

import (
	"bytes"
	"testing"
	"time"
)

// TestCaptureStateRepeatedly pins the supervisor usage pattern: a job
// server captures the observer at EVERY stage boundary (periodic durability
// checkpoints), so capture must leave every lock released and the observer
// fully usable — metrics registry included. A capture that leaks the
// registry lock deadlocks the second capture (regression: CaptureState once
// returned without unlocking Registry.mu).
func TestCaptureStateRepeatedly(t *testing.T) {
	var buf bytes.Buffer
	obs := NewObserver(&buf)
	obs.Metrics.Counter("events").Add(3)
	obs.Metrics.Gauge("hpwl").Set(42)
	obs.Metrics.Histogram("step").Observe(1.5)

	done := make(chan []*ObserverState, 1)
	go func() {
		var states []*ObserverState
		for i := 0; i < 5; i++ {
			states = append(states, obs.CaptureState())
			// The observer must stay fully usable between captures.
			obs.Metrics.Counter("events").Add(1)
			obs.Metrics.Gauge("hpwl").Set(float64(i))
		}
		done <- states
	}()
	var states []*ObserverState
	select {
	case states = <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("repeated CaptureState deadlocked")
	}
	for i, st := range states {
		if len(st.Metrics) != 3 {
			t.Fatalf("capture %d saw %d metrics, want 3", i, len(st.Metrics))
		}
	}
	// Counter progression proves each capture was a distinct live snapshot.
	first, last := states[0], states[4]
	if first.Metrics[0].Counter != 3 || last.Metrics[0].Counter != 7 {
		t.Fatalf("counter snapshots = %d..%d, want 3..7",
			first.Metrics[0].Counter, last.Metrics[0].Counter)
	}
	if err := obs.Flush(); err != nil {
		t.Fatalf("flush after captures: %v", err)
	}
}

// TestHubSeedReplaysWithoutCanonicalWrite checks the recovered-job path:
// seeded lines reach future subscribers via the backlog but are never
// re-written to the canonical sink or broadcast to anyone.
func TestHubSeedReplaysWithoutCanonicalWrite(t *testing.T) {
	var sink bytes.Buffer
	hub := NewHub(&sink)
	hub.Seed([][]byte{[]byte("{\"seq\":0}\n"), []byte("{\"seq\":1}\n")})
	if sink.Len() != 0 {
		t.Fatalf("seed wrote %d bytes to the canonical sink", sink.Len())
	}
	backlog, sub := hub.Subscribe(4)
	defer sub.Close()
	if len(backlog) != 2 || string(backlog[0]) != "{\"seq\":0}\n" {
		t.Fatalf("backlog after seed = %q", backlog)
	}
	// Live writes still pass through and append after the seeded prefix.
	if _, err := hub.Write([]byte("{\"seq\":2}\n")); err != nil {
		t.Fatal(err)
	}
	if sink.String() != "{\"seq\":2}\n" {
		t.Fatalf("canonical sink = %q, want only the live line", sink.String())
	}
	select {
	case line := <-sub.C():
		if string(line) != "{\"seq\":2}\n" {
			t.Fatalf("subscriber got %q", line)
		}
	case <-time.After(time.Second):
		t.Fatal("live line never reached the subscriber")
	}
}
