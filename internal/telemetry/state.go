package telemetry

// Observer state capture and restore: the checkpoint/resume machinery of
// internal/core snapshots an Observer mid-run so that a resumed run emits a
// byte-exact CONTINUATION of the interrupted trace — concatenating the
// canonical (StripTimings) trace written before the checkpoint with the one
// written after resume reproduces the canonical trace of an uninterrupted
// run. That requires carrying over everything that feeds future events:
//
//   - the event sequence number (every event carries "seq");
//   - the tracer's next span ID and the stack of spans still open at the
//     snapshot point (a resumed run must close them under their original
//     IDs, and new spans must keep numbering from where the old run left
//     off);
//   - the per-stage timing aggregates (Result.StageTimings spans both run
//     halves);
//   - the full metrics registry including histogram bucket contents, so
//     the final Flush of the resumed run emits the same cumulative values
//     an uninterrupted run would.
//
// Durations inside the restored aggregates are wall-clock and therefore
// volatile; they never appear in canonical traces.

// SpanState identifies one span open at capture time.
type SpanState struct {
	ID   int
	Name string
}

// MetricState is one registry entry in serializable form. Kind is
// "counter", "gauge" or "histogram"; the value fields are populated per
// kind (Buckets has the fixed decade-bucket layout of Histogram).
type MetricState struct {
	Name     string
	Kind     string
	Volatile bool

	Counter int64 // counter

	Gauge    float64 // gauge
	GaugeSet bool

	Count   int64 // histogram
	Sum     float64
	Min     float64
	Max     float64
	Buckets []int64
}

// HistogramBuckets is the fixed bucket count of every Histogram, exported
// so serializers can validate MetricState.Buckets.
const HistogramBuckets = histBuckets

// ObserverState is a complete serializable snapshot of an Observer's
// deterministic state. Wall-clock span start times are NOT part of it: a
// restored open span restarts its clock, so its eventual dur_us reflects
// only the resumed half (dur_us is excluded from canonical traces anyway).
type ObserverState struct {
	Seq        int64
	NextSpanID int
	OpenSpans  []SpanState // root first
	Stages     []StageTiming
	Metrics    []MetricState // Snapshot order: sorted by (kind, name)
}

// CaptureState snapshots the observer's deterministic state. The returned
// value shares nothing with the observer. Returns nil on a nil observer.
func (o *Observer) CaptureState() *ObserverState {
	if o == nil {
		return nil
	}
	o.mu.Lock()
	st := &ObserverState{Seq: o.seq, NextSpanID: o.Tracer.nextID}
	for _, ref := range o.Tracer.stack {
		st.OpenSpans = append(st.OpenSpans, SpanState{ID: ref.id, Name: ref.name})
	}
	st.Stages = append(st.Stages, o.Tracer.agg...)
	o.mu.Unlock()

	r := o.Metrics
	r.mu.Lock()
	for name, c := range r.counters {
		st.Metrics = append(st.Metrics, MetricState{Name: name, Kind: "counter",
			Counter: c.Value()})
	}
	for name, g := range r.gauges {
		st.Metrics = append(st.Metrics, MetricState{Name: name, Kind: "gauge",
			Volatile: r.volatile[name], Gauge: g.Value(), GaugeSet: g.set.Load()})
	}
	for name, h := range r.hists {
		h.mu.Lock()
		m := MetricState{Name: name, Kind: "histogram", Count: h.count,
			Sum: h.sum, Min: h.min, Max: h.max,
			Buckets: append([]int64(nil), h.buckets[:]...)}
		h.mu.Unlock()
		st.Metrics = append(st.Metrics, m)
	}
	r.mu.Unlock()
	sortMetricStates(st.Metrics)
	return st
}

func sortMetricStates(ms []MetricState) {
	// Same (kind, name) order as Registry.Snapshot, so serialized
	// checkpoints are deterministic.
	for i := 1; i < len(ms); i++ {
		for j := i; j > 0 && metricStateLess(&ms[j], &ms[j-1]); j-- {
			ms[j], ms[j-1] = ms[j-1], ms[j]
		}
	}
}

func metricStateLess(a, b *MetricState) bool {
	if a.Kind != b.Kind {
		return a.Kind < b.Kind
	}
	return a.Name < b.Name
}

// RestoreState loads a captured state into the observer and returns live
// *Span handles for the spans that were open at capture time, ordered root
// first — ending one closes it under its ORIGINAL span ID, which is what
// keeps a resumed trace identical to an uninterrupted one. It must be
// called on a freshly created Observer, before any spans are started or
// metric handles resolved (handles resolved earlier would point at metrics
// the restore replaces).
func (o *Observer) RestoreState(st *ObserverState) []*Span {
	if o == nil || st == nil {
		return nil
	}
	o.mu.Lock()
	o.seq = st.Seq
	t := o.Tracer
	t.nextID = st.NextSpanID
	t.stack = t.stack[:0]
	spans := make([]*Span, 0, len(st.OpenSpans))
	for _, s := range st.OpenSpans {
		t.stack = append(t.stack, spanRef{id: s.ID, name: s.Name})
		spans = append(spans, &Span{t: t, id: s.ID, name: s.Name, start: o.now()})
	}
	t.agg = append(t.agg[:0], st.Stages...)
	t.byKey = make(map[string]int, len(t.agg))
	for i := range t.agg {
		t.byKey[t.agg[i].Name] = i
	}
	// Open spans must be aggregatable on End even if no span of that name
	// is started in the resumed half.
	for _, s := range st.OpenSpans {
		if _, ok := t.byKey[s.Name]; !ok {
			t.byKey[s.Name] = len(t.agg)
			t.agg = append(t.agg, StageTiming{Name: s.Name})
		}
	}
	o.mu.Unlock()

	r := o.Metrics
	r.mu.Lock()
	for i := range st.Metrics {
		m := &st.Metrics[i]
		switch m.Kind {
		case "counter":
			c := &Counter{}
			c.n.Store(m.Counter)
			r.counters[m.Name] = c
		case "gauge":
			g := &Gauge{}
			if m.GaugeSet {
				g.Set(m.Gauge)
			}
			if m.Volatile {
				r.volatile[m.Name] = true
			}
			r.gauges[m.Name] = g
		case "histogram":
			h := &Histogram{count: m.Count, sum: m.Sum, min: m.Min, max: m.Max}
			copy(h.buckets[:], m.Buckets)
			r.hists[m.Name] = h
		}
	}
	r.mu.Unlock()
	return spans
}
