package telemetry

import (
	"time"
)

// Span is one timed region of the pipeline. Spans form a tree: a span
// started while another is active becomes its child. Spans must be ended
// in LIFO order (strict nesting), which the pipeline's call structure
// guarantees. A nil *Span is inert: End on it is a no-op, so callers can
// write `sp := tr.Start("x"); ...; sp.End()` without nil checks even when
// tracing is disabled.
type Span struct {
	t     *Tracer
	id    int
	name  string
	start time.Time
}

// StageTiming aggregates every span of one name: how many ran and their
// total wall-clock time. Depth is the tree depth of the first span seen
// with this name (0 = top level), used by reports for indentation.
type StageTiming struct {
	Name  string        `json:"name"`
	Depth int           `json:"depth"`
	Count int           `json:"count"`
	Total time.Duration `json:"total_ns"`
}

// Tracer records hierarchical timed spans and emits them as trace events.
// The zero value is not usable; a Tracer is obtained from NewObserver. A
// nil *Tracer is inert: Start returns a nil Span and StageTimings returns
// nil, so subsystems can accept an optional *Tracer field and call it
// unconditionally.
type Tracer struct {
	obs *Observer

	nextID int
	stack  []spanRef // active spans, root at index 0

	agg   []StageTiming  // insertion-ordered aggregation by name
	byKey map[string]int // name -> index into agg
}

type spanRef struct {
	id   int
	name string
}

func newTracer(obs *Observer) *Tracer {
	return &Tracer{obs: obs, byKey: map[string]int{}}
}

// Start opens a new span as a child of the innermost active span and
// emits a span_start event. Safe on a nil Tracer (returns nil).
func (t *Tracer) Start(name string) *Span {
	if t == nil {
		return nil
	}
	t.obs.mu.Lock()
	t.nextID++
	id := t.nextID
	parent := 0
	depth := len(t.stack)
	if depth > 0 {
		parent = t.stack[depth-1].id
	}
	t.stack = append(t.stack, spanRef{id: id, name: name})
	if _, ok := t.byKey[name]; !ok {
		t.byKey[name] = len(t.agg)
		t.agg = append(t.agg, StageTiming{Name: name, Depth: depth})
	}
	t.obs.emitLocked(func(e *eventWriter) {
		e.str("ev", "span_start")
		e.num("span", int64(id))
		e.num("parent", int64(parent))
		e.str("name", name)
	})
	t.obs.mu.Unlock()
	return &Span{t: t, id: id, name: name, start: t.obs.now()}
}

// Name returns the span's name ("" for a nil span). Checkpoint/resume
// code uses it to match restored open-span handles to pipeline stages.
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// End closes the span, emits a span_end event carrying the wall-clock
// duration, and folds the duration into the per-stage aggregate. Returns
// the duration (0 for a nil span).
func (s *Span) End() time.Duration {
	if s == nil {
		return 0
	}
	t := s.t
	dur := t.obs.now().Sub(s.start)
	t.obs.mu.Lock()
	// Pop this span from the active stack. Strict nesting makes it the
	// top; search defensively so a misuse cannot corrupt the stack.
	for i := len(t.stack) - 1; i >= 0; i-- {
		if t.stack[i].id == s.id {
			t.stack = append(t.stack[:i], t.stack[i+1:]...)
			break
		}
	}
	st := &t.agg[t.byKey[s.name]]
	st.Count++
	st.Total += dur
	t.obs.emitLocked(func(e *eventWriter) {
		e.str("ev", "span_end")
		e.num("span", int64(s.id))
		e.str("name", s.name)
		e.num("dur_us", dur.Microseconds())
	})
	t.obs.mu.Unlock()
	return dur
}

// StageTimings returns a copy of the per-stage aggregates in first-seen
// order. Safe on a nil Tracer (returns nil).
func (t *Tracer) StageTimings() []StageTiming {
	if t == nil {
		return nil
	}
	t.obs.mu.Lock()
	defer t.obs.mu.Unlock()
	out := make([]StageTiming, len(t.agg))
	copy(out, t.agg)
	return out
}
