package telemetry

import (
	"bytes"
	"strings"
	"testing"
)

func TestVolatileGaugeFlaggedInSnapshot(t *testing.T) {
	r := NewRegistry()
	r.VolatileGauge("parallel.route.speedup").Set(3.7)
	r.Gauge("place.hpwl_final").Set(123)
	byName := map[string]Metric{}
	for _, m := range r.Snapshot() {
		byName[m.Name] = m
	}
	if !byName["parallel.route.speedup"].Volatile {
		t.Errorf("volatile gauge not flagged in snapshot")
	}
	if byName["place.hpwl_final"].Volatile {
		t.Errorf("plain gauge flagged volatile")
	}
	// Re-resolving the same name through Gauge keeps the flag.
	r.Gauge("parallel.route.speedup").Set(4.1)
	for _, m := range r.Snapshot() {
		if m.Name == "parallel.route.speedup" && !m.Volatile {
			t.Errorf("volatile flag lost after plain Gauge resolution")
		}
	}
}

func TestStripTimingsDropsVolatileMetrics(t *testing.T) {
	var buf bytes.Buffer
	obs := NewObserver(&buf)
	obs.Gauge("place.hpwl_final").Set(42)
	obs.VolatileGauge("parallel.workers").Set(8)
	obs.VolatileGauge("parallel.route.speedup").Set(3.2)
	if err := obs.Flush(); err != nil {
		t.Fatal(err)
	}
	raw := buf.String()
	if !strings.Contains(raw, `"volatile":true`) {
		t.Fatalf("flush did not emit the volatile flag:\n%s", raw)
	}
	canon, err := StripTimings(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	s := string(canon)
	if strings.Contains(s, "parallel.workers") || strings.Contains(s, "speedup") {
		t.Errorf("canonical trace still contains volatile metrics:\n%s", s)
	}
	if !strings.Contains(s, "place.hpwl_final") {
		t.Errorf("canonical trace lost a non-volatile metric:\n%s", s)
	}
}

func TestVolatileGaugeNilSafety(t *testing.T) {
	var r *Registry
	r.VolatileGauge("x").Set(1) // must not panic
	var o *Observer
	o.VolatileGauge("y").Set(2) // must not panic
}
