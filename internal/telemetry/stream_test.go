package telemetry

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"sync"
	"testing"
)

func TestHubCanonicalPassThroughByteIdentical(t *testing.T) {
	// The same workload written (a) straight to a buffer and (b) through a
	// Hub with subscribers attached must produce byte-identical sinks.
	run := func(wrap func(w *bytes.Buffer) io.Writer) []byte {
		var buf bytes.Buffer
		o := NewObserver(wrap(&buf))
		sp := o.StartSpan("place")
		o.Log("hello")
		o.Snapshot("it", 0, F("x", 1.25))
		o.Grid("congestion", 0, 2, 2, []float64{0.1, 0.2, 0.3, 0.4})
		sp.End()
		o.Counter("n").Inc()
		if err := o.Flush(); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	plain := run(func(w *bytes.Buffer) io.Writer { return w })
	var hub *Hub
	streamed := run(func(w *bytes.Buffer) io.Writer {
		hub = NewHub(w)
		hub.Subscribe(1) // tiny buffer: guaranteed drops, must not matter
		hub.Subscribe(1024)
		return hub
	})
	ca, err := StripTimings(plain)
	if err != nil {
		t.Fatal(err)
	}
	cb, err := StripTimings(streamed)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ca, cb) {
		t.Errorf("canonical traces differ with streaming attached:\n%s\nvs\n%s", ca, cb)
	}
	// The one-slot subscriber must have lost events (and the loss counted)
	// without affecting anything above.
	if hub.Dropped() == 0 {
		t.Error("one-slot subscriber dropped nothing; drop accounting broken")
	}
	// Raw pass-through is byte-exact: fixed lines written through a hub
	// reach the sink verbatim. (The runs above differ in raw bytes only by
	// wall-clock span durations, which is exactly what StripTimings strips.)
	var sink bytes.Buffer
	h2 := NewHub(&sink)
	h2.Subscribe(1)
	h2.Write([]byte("x\n"))
	h2.Write([]byte("y\n"))
	if sink.String() != "x\ny\n" {
		t.Errorf("pass-through sink = %q, want %q", sink.String(), "x\ny\n")
	}
}

func TestHubSlowConsumerDropsAreCounted(t *testing.T) {
	var sink bytes.Buffer
	hub := NewHub(&sink)
	_, slow := hub.Subscribe(1) // one-slot buffer, never drained
	const n = 50
	for i := 0; i < n; i++ {
		if _, err := fmt.Fprintf(hub, "line %d\n", i); err != nil {
			t.Fatal(err)
		}
	}
	// One line fits the buffer; the rest must be dropped, not block.
	if got := slow.Dropped(); got != n-1 {
		t.Errorf("subscription dropped = %d, want %d", got, n-1)
	}
	if got := hub.Dropped(); got != n-1 {
		t.Errorf("hub dropped = %d, want %d", got, n-1)
	}
	// The canonical sink saw every line regardless.
	if got := bytes.Count(sink.Bytes(), []byte("\n")); got != n {
		t.Errorf("canonical sink has %d lines, want %d", got, n)
	}
	// Backlog retains everything for late subscribers.
	backlog, late := hub.Subscribe(64)
	if len(backlog) != n {
		t.Errorf("late subscriber backlog has %d lines, want %d", len(backlog), n)
	}
	late.Close()
	slow.Close()
	slow.Close() // double-close is safe
}

func TestHubBacklogSubscribeGapFree(t *testing.T) {
	var sink bytes.Buffer
	hub := NewHub(&sink)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			fmt.Fprintf(hub, "line %d\n", i)
		}
	}()
	// Subscribe mid-stream: backlog + channel must cover every line with
	// no gap and no duplicate (drops at the tail are allowed and counted).
	backlog, sub := hub.Subscribe(1 << 16)
	close(stop)
	wg.Wait()
	hub.Close()
	seen := len(backlog)
	for line := range sub.C() {
		want := fmt.Sprintf("line %d\n", seen)
		if string(line) != want {
			t.Fatalf("gap or duplicate at position %d: got %q, want %q", seen, line, want)
		}
		seen++
	}
	if sub.Dropped() > 0 {
		t.Fatalf("unexpected drops with a %d-slot buffer: %d", 1<<16, sub.Dropped())
	}
	total := bytes.Count(sink.Bytes(), []byte("\n"))
	if seen != total {
		t.Errorf("subscriber saw %d lines, sink has %d", seen, total)
	}
}

func TestHubCloseIdempotentAndSinkKeepsWorking(t *testing.T) {
	var sink bytes.Buffer
	hub := NewHub(&sink)
	_, sub := hub.Subscribe(8)
	hub.Write([]byte("a\n"))
	hub.Close()
	hub.Close() // idempotent
	if !hub.Closed() {
		t.Error("hub not closed")
	}
	// The subscriber channel is closed after draining the pre-close line.
	var got int
	for range sub.C() {
		got++
	}
	if got != 1 {
		t.Errorf("subscriber received %d lines, want 1", got)
	}
	// Writes after Close still reach the canonical sink (the placement
	// must finish its trace even if the dashboard shut down first).
	if _, err := hub.Write([]byte("b\n")); err != nil {
		t.Fatal(err)
	}
	if sink.String() != "a\nb\n" {
		t.Errorf("sink = %q, want %q", sink.String(), "a\nb\n")
	}
	// Subscribing to a closed hub yields the backlog and a closed channel.
	backlog, late := hub.Subscribe(8)
	if len(backlog) != 2 {
		t.Errorf("post-close backlog has %d lines, want 2", len(backlog))
	}
	if _, ok := <-late.C(); ok {
		t.Error("post-close subscription channel not closed")
	}
}

// errWriter fails after n writes.
type errWriter struct{ n int }

func (w *errWriter) Write(p []byte) (int, error) {
	if w.n <= 0 {
		return 0, errors.New("sink failed")
	}
	w.n--
	return len(p), nil
}

func TestHubPropagatesCanonicalWriteError(t *testing.T) {
	hub := NewHub(&errWriter{n: 1})
	if _, err := hub.Write([]byte("ok\n")); err != nil {
		t.Fatalf("first write failed: %v", err)
	}
	if _, err := hub.Write([]byte("boom\n")); err == nil {
		t.Fatal("canonical sink error not propagated")
	}
}
