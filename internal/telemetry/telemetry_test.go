package telemetry

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"
	"time"
)

// fakeClock returns a now() that advances by step on every call.
func fakeClock(step time.Duration) func() time.Time {
	t := time.Unix(0, 0)
	return func() time.Time {
		t = t.Add(step)
		return t
	}
}

func TestTracerHierarchyAndAggregation(t *testing.T) {
	var buf bytes.Buffer
	o := NewObserver(&buf)
	o.now = fakeClock(time.Millisecond)

	root := o.StartSpan("place")
	a := o.StartSpan("phase1")
	a.End()
	for i := 0; i < 3; i++ {
		it := o.StartSpan("route_iter")
		r := o.StartSpan("route")
		r.End()
		it.End()
	}
	root.End()

	st := o.Tracer.StageTimings()
	want := []struct {
		name         string
		depth, count int
	}{
		{"place", 0, 1}, {"phase1", 1, 1}, {"route_iter", 1, 3}, {"route", 2, 3},
	}
	if len(st) != len(want) {
		t.Fatalf("got %d stages, want %d: %+v", len(st), len(want), st)
	}
	for i, w := range want {
		if st[i].Name != w.name || st[i].Depth != w.depth || st[i].Count != w.count {
			t.Errorf("stage %d = %+v, want %+v", i, st[i], w)
		}
		if st[i].Total <= 0 {
			t.Errorf("stage %q has no recorded time", st[i].Name)
		}
	}

	// Every line must be valid JSON. (The parse-back round trip lives in
	// the report package tests.)
	for ln, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("line %d not valid JSON: %v\n%s", ln+1, err, line)
		}
	}
}

func TestNilSafety(t *testing.T) {
	var o *Observer
	sp := o.StartSpan("x")
	if d := sp.End(); d != 0 {
		t.Errorf("nil span duration = %v", d)
	}
	o.Log("msg")
	o.Timing("msg")
	o.Snapshot("s", 0, F("a", 1))
	o.Counter("c").Inc()
	o.Counter("c").Add(5)
	o.Gauge("g").Set(1)
	o.Histogram("h").Observe(1)
	if err := o.Flush(); err != nil {
		t.Errorf("nil flush: %v", err)
	}
	var tr *Tracer
	tr.Start("x").End()
	if tr.StageTimings() != nil {
		t.Error("nil tracer returned timings")
	}
	var reg *Registry
	if reg.Counter("x") != nil || reg.Snapshot() != nil {
		t.Error("nil registry returned live handles")
	}
}

func TestRegistryMetrics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("b.count")
	c.Inc()
	c.Add(2)
	if c != r.Counter("b.count") {
		t.Error("counter not get-or-create")
	}
	r.Gauge("a.gauge").Set(3.5)
	h := r.Histogram("c.hist")
	for _, v := range []float64{1, 2, 3} {
		h.Observe(v)
	}
	snap := r.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot has %d entries, want 3", len(snap))
	}
	// Sorted by (kind, name): counter, gauge, histogram.
	if snap[0].Name != "b.count" || snap[0].Value != 3 {
		t.Errorf("counter entry wrong: %+v", snap[0])
	}
	if snap[1].Name != "a.gauge" || snap[1].Value != 3.5 {
		t.Errorf("gauge entry wrong: %+v", snap[1])
	}
	hm := snap[2]
	if hm.Count != 3 || hm.Sum != 6 || hm.Min != 1 || hm.Max != 3 || hm.Value != 2 {
		t.Errorf("histogram entry wrong: %+v", hm)
	}
}

func TestStripTimingsCanonicalizes(t *testing.T) {
	run := func(clock func() time.Time) []byte {
		var buf bytes.Buffer
		o := NewObserver(&buf)
		o.now = clock
		sp := o.StartSpan("place")
		o.Log("hello")
		o.Snapshot("it", 0, F("x", 1.25))
		o.Timing("timing: PT 1.00s")
		sp.End()
		o.Counter("n").Inc()
		if err := o.Flush(); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a := run(fakeClock(time.Millisecond))
	b := run(fakeClock(7 * time.Millisecond)) // different wall-clock → different raw trace
	if bytes.Equal(a, b) {
		t.Fatal("raw traces unexpectedly identical; clock fake broken")
	}
	ca, err := StripTimings(a)
	if err != nil {
		t.Fatal(err)
	}
	cb, err := StripTimings(b)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ca, cb) {
		t.Errorf("canonical traces differ:\n%s\nvs\n%s", ca, cb)
	}
	if strings.Contains(string(ca), "dur_us") || strings.Contains(string(ca), "timing") {
		t.Errorf("canonical trace still contains wall-clock content:\n%s", ca)
	}
}

func TestSnapshotFieldOrderPreserved(t *testing.T) {
	var buf bytes.Buffer
	o := NewObserver(&buf)
	o.Snapshot("s", 3, F("zeta", 1), F("alpha", 2))
	line := buf.String()
	if strings.Index(line, "zeta") > strings.Index(line, "alpha") {
		t.Errorf("field order not preserved: %s", line)
	}
	if !strings.Contains(line, `"iter":3`) {
		t.Errorf("iter missing: %s", line)
	}
}

func TestNonFiniteFloatsEncodeAsNull(t *testing.T) {
	var buf bytes.Buffer
	o := NewObserver(&buf)
	o.Snapshot("s", 0, F("bad", math.Inf(1)))
	var m map[string]any
	if err := json.Unmarshal([]byte(strings.TrimSpace(buf.String())), &m); err != nil {
		t.Fatalf("non-finite float produced invalid JSON: %v\n%s", err, buf.String())
	}
}

func TestGridEncodeDecodeRoundTrip(t *testing.T) {
	vals := []float64{0, 0.25, 0.5, 1.0, 2.0, 4.0}
	data, max := EncodeGridValues(vals)
	if max != 4.0 {
		t.Fatalf("max = %v, want 4", max)
	}
	if len(data) != len(vals) {
		t.Fatalf("data length %d, want %d", len(data), len(vals))
	}
	back := DecodeGridValues(data, max)
	n := float64(len(gridLevels) - 1)
	for i, v := range vals {
		// Quantization error is bounded by half a level of the scale.
		if diff := math.Abs(back[i] - v); diff > max/n/2+1e-12 {
			t.Errorf("cell %d: decoded %v, want %v ± %v", i, back[i], v, max/n/2)
		}
	}
	// All-zero input: max 0, all-'0' string, decodes to zeros.
	zd, zm := EncodeGridValues([]float64{0, 0, 0})
	if zm != 0 || zd != "000" {
		t.Errorf("all-zero grid encoded as (%q, %v)", zd, zm)
	}
	for _, v := range DecodeGridValues(zd, zm) {
		if v != 0 {
			t.Errorf("all-zero grid decoded nonzero: %v", v)
		}
	}
}

func TestGridEventDeterministicAndValid(t *testing.T) {
	emit := func() string {
		var buf bytes.Buffer
		o := NewObserver(&buf)
		o.Grid("congestion", 3, 2, 2, []float64{0.1, 0.9, 0.4, 0.2})
		return buf.String()
	}
	a, b := emit(), emit()
	if a != b {
		t.Fatalf("grid events differ between runs:\n%s\nvs\n%s", a, b)
	}
	var m map[string]any
	if err := json.Unmarshal([]byte(strings.TrimSpace(a)), &m); err != nil {
		t.Fatalf("grid event not valid JSON: %v\n%s", err, a)
	}
	if m["ev"] != "grid" || m["name"] != "congestion" || m["nx"] != 2.0 || m["ny"] != 2.0 {
		t.Errorf("grid event fields wrong: %v", m)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := &Histogram{}
	// 1..1000: exact percentiles are 500.5 / 950.05 / 990.01; the
	// log-bucket estimate is accurate to one sub-bucket (×10^(1/8) ≈ 1.33).
	for i := 1; i <= 1000; i++ {
		h.Observe(float64(i))
	}
	tol := math.Pow(10, 1.0/histSub)
	for _, tc := range []struct {
		q, want float64
	}{
		{0.50, 500.5}, {0.95, 950.05}, {0.99, 990.01},
	} {
		got := h.Quantile(tc.q)
		if got < tc.want/tol || got > tc.want*tol {
			t.Errorf("Quantile(%v) = %v, want within ×%.3f of %v", tc.q, got, tol, tc.want)
		}
	}
	if got := h.Quantile(0); got != 1 {
		t.Errorf("Quantile(0) = %v, want min 1", got)
	}
	if got := h.Quantile(1); got != 1000 {
		t.Errorf("Quantile(1) = %v, want max 1000", got)
	}
	// Snapshot carries the percentile fields.
	r := NewRegistry()
	rh := r.Histogram("h")
	for i := 1; i <= 100; i++ {
		rh.Observe(float64(i))
	}
	snap := r.Snapshot()
	if len(snap) != 1 {
		t.Fatalf("snapshot has %d entries", len(snap))
	}
	m := snap[0]
	if m.P50 <= 0 || m.P95 < m.P50 || m.P99 < m.P95 || m.P99 > m.Max {
		t.Errorf("percentiles not ordered: p50=%v p95=%v p99=%v max=%v", m.P50, m.P95, m.P99, m.Max)
	}
	// Empty histogram: zero percentiles, no panic.
	var empty *Histogram
	if empty.Quantile(0.5) != 0 {
		t.Error("nil histogram quantile nonzero")
	}
	if (&Histogram{}).Quantile(0.5) != 0 {
		t.Error("empty histogram quantile nonzero")
	}
}

func TestBaselineRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Gauge("bench.fft_b.drvs").Set(42)
	r.Counter("bench.designs").Inc()
	var buf bytes.Buffer
	if err := WriteBaseline(&buf, "seed", r); err != nil {
		t.Fatal(err)
	}
	b, err := ReadBaseline(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if b.Label != "seed" || len(b.Metrics) != 2 {
		t.Errorf("baseline round trip wrong: %+v", b)
	}
}

func TestObserverWithNilSinkStillAggregates(t *testing.T) {
	o := NewObserver(nil)
	sp := o.StartSpan("x")
	sp.End()
	o.Counter("c").Inc()
	st := o.Tracer.StageTimings()
	if len(st) != 1 || st[0].Name != "x" || st[0].Count != 1 {
		t.Errorf("nil-sink aggregation wrong: %+v", st)
	}
	if got := o.Metrics.Counter("c").Value(); got != 1 {
		t.Errorf("nil-sink counter = %d", got)
	}
	if err := o.Flush(); err != nil {
		t.Errorf("nil-sink flush: %v", err)
	}
}
