package telemetry

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"
	"time"
)

// fakeClock returns a now() that advances by step on every call.
func fakeClock(step time.Duration) func() time.Time {
	t := time.Unix(0, 0)
	return func() time.Time {
		t = t.Add(step)
		return t
	}
}

func TestTracerHierarchyAndAggregation(t *testing.T) {
	var buf bytes.Buffer
	o := NewObserver(&buf)
	o.now = fakeClock(time.Millisecond)

	root := o.StartSpan("place")
	a := o.StartSpan("phase1")
	a.End()
	for i := 0; i < 3; i++ {
		it := o.StartSpan("route_iter")
		r := o.StartSpan("route")
		r.End()
		it.End()
	}
	root.End()

	st := o.Tracer.StageTimings()
	want := []struct {
		name         string
		depth, count int
	}{
		{"place", 0, 1}, {"phase1", 1, 1}, {"route_iter", 1, 3}, {"route", 2, 3},
	}
	if len(st) != len(want) {
		t.Fatalf("got %d stages, want %d: %+v", len(st), len(want), st)
	}
	for i, w := range want {
		if st[i].Name != w.name || st[i].Depth != w.depth || st[i].Count != w.count {
			t.Errorf("stage %d = %+v, want %+v", i, st[i], w)
		}
		if st[i].Total <= 0 {
			t.Errorf("stage %q has no recorded time", st[i].Name)
		}
	}

	// Every line must be valid JSON.
	for ln, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("line %d not valid JSON: %v\n%s", ln+1, err, line)
		}
	}

	// The trace must parse back to the same aggregation structure.
	tr, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Stages) != len(want) {
		t.Fatalf("parsed %d stages, want %d", len(tr.Stages), len(want))
	}
	for i, w := range want {
		if tr.Stages[i].Name != w.name || tr.Stages[i].Depth != w.depth || tr.Stages[i].Count != w.count {
			t.Errorf("parsed stage %d = %+v, want %+v", i, tr.Stages[i], w)
		}
	}
}

func TestNilSafety(t *testing.T) {
	var o *Observer
	sp := o.StartSpan("x")
	if d := sp.End(); d != 0 {
		t.Errorf("nil span duration = %v", d)
	}
	o.Log("msg")
	o.Timing("msg")
	o.Snapshot("s", 0, F("a", 1))
	o.Counter("c").Inc()
	o.Counter("c").Add(5)
	o.Gauge("g").Set(1)
	o.Histogram("h").Observe(1)
	if err := o.Flush(); err != nil {
		t.Errorf("nil flush: %v", err)
	}
	var tr *Tracer
	tr.Start("x").End()
	if tr.StageTimings() != nil {
		t.Error("nil tracer returned timings")
	}
	var reg *Registry
	if reg.Counter("x") != nil || reg.Snapshot() != nil {
		t.Error("nil registry returned live handles")
	}
}

func TestRegistryMetrics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("b.count")
	c.Inc()
	c.Add(2)
	if c != r.Counter("b.count") {
		t.Error("counter not get-or-create")
	}
	r.Gauge("a.gauge").Set(3.5)
	h := r.Histogram("c.hist")
	for _, v := range []float64{1, 2, 3} {
		h.Observe(v)
	}
	snap := r.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot has %d entries, want 3", len(snap))
	}
	// Sorted by (kind, name): counter, gauge, histogram.
	if snap[0].Name != "b.count" || snap[0].Value != 3 {
		t.Errorf("counter entry wrong: %+v", snap[0])
	}
	if snap[1].Name != "a.gauge" || snap[1].Value != 3.5 {
		t.Errorf("gauge entry wrong: %+v", snap[1])
	}
	hm := snap[2]
	if hm.Count != 3 || hm.Sum != 6 || hm.Min != 1 || hm.Max != 3 || hm.Value != 2 {
		t.Errorf("histogram entry wrong: %+v", hm)
	}
}

func TestStripTimingsCanonicalizes(t *testing.T) {
	run := func(clock func() time.Time) []byte {
		var buf bytes.Buffer
		o := NewObserver(&buf)
		o.now = clock
		sp := o.StartSpan("place")
		o.Log("hello")
		o.Snapshot("it", 0, F("x", 1.25))
		o.Timing("timing: PT 1.00s")
		sp.End()
		o.Counter("n").Inc()
		if err := o.Flush(); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a := run(fakeClock(time.Millisecond))
	b := run(fakeClock(7 * time.Millisecond)) // different wall-clock → different raw trace
	if bytes.Equal(a, b) {
		t.Fatal("raw traces unexpectedly identical; clock fake broken")
	}
	ca, err := StripTimings(a)
	if err != nil {
		t.Fatal(err)
	}
	cb, err := StripTimings(b)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ca, cb) {
		t.Errorf("canonical traces differ:\n%s\nvs\n%s", ca, cb)
	}
	if strings.Contains(string(ca), "dur_us") || strings.Contains(string(ca), "timing") {
		t.Errorf("canonical trace still contains wall-clock content:\n%s", ca)
	}
}

func TestSnapshotFieldOrderPreserved(t *testing.T) {
	var buf bytes.Buffer
	o := NewObserver(&buf)
	o.Snapshot("s", 3, F("zeta", 1), F("alpha", 2))
	line := buf.String()
	if strings.Index(line, "zeta") > strings.Index(line, "alpha") {
		t.Errorf("field order not preserved: %s", line)
	}
	if !strings.Contains(line, `"iter":3`) {
		t.Errorf("iter missing: %s", line)
	}
}

func TestNonFiniteFloatsEncodeAsNull(t *testing.T) {
	var buf bytes.Buffer
	o := NewObserver(&buf)
	o.Snapshot("s", 0, F("bad", math.Inf(1)))
	var m map[string]any
	if err := json.Unmarshal([]byte(strings.TrimSpace(buf.String())), &m); err != nil {
		t.Fatalf("non-finite float produced invalid JSON: %v\n%s", err, buf.String())
	}
}

func TestSparkline(t *testing.T) {
	if s := Sparkline(nil, 10); s != "" {
		t.Errorf("empty series sparkline = %q", s)
	}
	s := Sparkline([]float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}, 10)
	if len(s) != 10 {
		t.Fatalf("sparkline width %d, want 10", len(s))
	}
	if s[0] != sparkLevels[0] || s[9] != sparkLevels[len(sparkLevels)-1] {
		t.Errorf("sparkline extremes wrong: %q", s)
	}
	// Constant series: mid-level everywhere, no div-by-zero.
	c := Sparkline([]float64{2, 2, 2}, 10)
	if len(c) != 3 {
		t.Errorf("constant series width %d, want 3", len(c))
	}
	// Downsampling long series to the target width.
	long := make([]float64, 1000)
	for i := range long {
		long[i] = float64(i)
	}
	if got := Sparkline(long, 60); len(got) != 60 {
		t.Errorf("downsampled width %d, want 60", len(got))
	}
}

func TestWriteReport(t *testing.T) {
	var buf bytes.Buffer
	o := NewObserver(&buf)
	o.now = fakeClock(time.Millisecond)
	root := o.StartSpan("place")
	for i := 0; i < 5; i++ {
		sp := o.StartSpan("route_iter")
		o.Snapshot("route_iter", i,
			F("overflow_score", float64(100-20*i)), F("lambda2", 0.1*float64(i)))
		sp.End()
	}
	root.End()
	o.Counter("route.calls").Add(5)
	o.Histogram("nesterov.step_size").Observe(0.5)
	if err := o.Flush(); err != nil {
		t.Fatal(err)
	}

	tr, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var rep strings.Builder
	tr.WriteReport(&rep)
	out := rep.String()
	for _, want := range []string{
		"Per-stage timing", "place", "route_iter",
		"Convergence: route_iter (5 samples)", "overflow_score", "lambda2",
		"Metrics", "route.calls", "nesterov.step_size",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestBaselineRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Gauge("bench.fft_b.drvs").Set(42)
	r.Counter("bench.designs").Inc()
	var buf bytes.Buffer
	if err := WriteBaseline(&buf, "seed", r); err != nil {
		t.Fatal(err)
	}
	b, err := ReadBaseline(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if b.Label != "seed" || len(b.Metrics) != 2 {
		t.Errorf("baseline round trip wrong: %+v", b)
	}
}

func TestObserverWithNilSinkStillAggregates(t *testing.T) {
	o := NewObserver(nil)
	sp := o.StartSpan("x")
	sp.End()
	o.Counter("c").Inc()
	st := o.Tracer.StageTimings()
	if len(st) != 1 || st[0].Name != "x" || st[0].Count != 1 {
		t.Errorf("nil-sink aggregation wrong: %+v", st)
	}
	if got := o.Metrics.Counter("c").Value(); got != 1 {
		t.Errorf("nil-sink counter = %d", got)
	}
	if err := o.Flush(); err != nil {
		t.Errorf("nil-sink flush: %v", err)
	}
}
