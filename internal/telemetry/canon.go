package telemetry

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
)

// StripTimings canonicalizes a JSONL trace for run-to-run comparison:
// it removes the "dur_us" field from span_end events, drops "timing"
// events entirely, and drops metric events flagged "volatile" (the only
// wall-clock/environment content in a trace), re-encoding every remaining
// event with sorted keys. Two runs of the same deterministic placement —
// at ANY worker count, with or without live streaming attached — must
// produce byte-identical canonical traces.
func StripTimings(trace []byte) ([]byte, error) {
	var out bytes.Buffer
	sc := bufio.NewScanner(bytes.NewReader(trace))
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var m map[string]any
		if err := json.Unmarshal(line, &m); err != nil {
			return nil, fmt.Errorf("telemetry: trace line %d: %w", lineNo, err)
		}
		if m["ev"] == "timing" {
			continue
		}
		if m["ev"] == "metric" && m["volatile"] == true {
			continue
		}
		delete(m, "dur_us")
		enc, err := json.Marshal(m) // map keys marshal sorted: canonical
		if err != nil {
			return nil, err
		}
		out.Write(enc)
		out.WriteByte('\n')
	}
	return out.Bytes(), sc.Err()
}
