package telemetry

// Streaming fan-out for live observability. A Hub sits between an Observer
// and its canonical JSONL sink: every event line is first written through to
// the canonical sink byte-for-byte, then broadcast to any number of live
// subscribers over bounded, non-blocking channels. The hard invariant is
// that attaching a Hub (and any number of subscribers, however slow) never
// changes the canonical trace: the pass-through is unconditional and
// byte-identical, and a subscriber that cannot keep up loses events — it
// never back-pressures the placement run. Dropped events are counted
// (Hub.Dropped, per-Subscription Dropped) so the dashboard can surface the
// loss; the count is wall-clock dependent and therefore belongs in a
// volatile gauge ("telemetry.dropped_events"), never in the canonical trace.
//
// The Hub is goroutine-free: broadcasting happens inline on the writer's
// goroutine under one mutex, so a placement run with a dashboard attached
// spawns no extra goroutines and cannot leak any.

import (
	"io"
	"sync"
	"sync/atomic"
)

// Hub is a broadcast fan-out for one JSONL telemetry stream. It implements
// io.Writer so it can be handed to NewObserver in place of the trace file;
// it retains every line (the backlog) so late subscribers — a dashboard tab
// opened mid-run, or a replay of a finished run — receive the full stream.
type Hub struct {
	canonical io.Writer // pass-through sink; nil = broadcast only
	dropped   atomic.Int64

	mu      sync.Mutex
	subs    map[*Subscription]struct{}
	backlog [][]byte
	closed  bool
}

// NewHub creates a hub that passes every written line through to canonical
// (nil for broadcast-only streaming) before broadcasting it.
func NewHub(canonical io.Writer) *Hub {
	return &Hub{canonical: canonical, subs: map[*Subscription]struct{}{}}
}

// Write implements io.Writer. The canonical sink is written FIRST and its
// error returned verbatim, so trace durability and byte-identity never
// depend on subscriber behaviour. The broadcast copies p (Observer reuses
// its line buffer) and never blocks: a subscriber with a full channel
// drops the event and the drop is counted.
func (h *Hub) Write(p []byte) (int, error) {
	if h.canonical != nil {
		if n, err := h.canonical.Write(p); err != nil {
			return n, err
		}
	}
	line := make([]byte, len(p))
	copy(line, p)
	h.mu.Lock()
	h.backlog = append(h.backlog, line)
	for s := range h.subs {
		select {
		case s.ch <- line:
		default:
			s.dropped.Add(1)
			h.dropped.Add(1)
		}
	}
	h.mu.Unlock()
	return len(p), nil
}

// Subscribe registers a live subscriber with the given channel capacity
// (≤ 0 selects 256) and returns a snapshot of the backlog together with the
// subscription. The snapshot and the channel are gap-free and overlap-free:
// both are taken under the hub lock, so every line is in exactly one of
// them. On a closed hub the returned channel is already closed — the
// backlog is then the complete stream.
func (h *Hub) Subscribe(buffer int) ([][]byte, *Subscription) {
	if buffer <= 0 {
		buffer = 256
	}
	s := &Subscription{h: h, ch: make(chan []byte, buffer)}
	h.mu.Lock()
	backlog := make([][]byte, len(h.backlog))
	copy(backlog, h.backlog)
	if h.closed {
		close(s.ch)
	} else {
		h.subs[s] = struct{}{}
	}
	h.mu.Unlock()
	return backlog, s
}

// Seed appends lines to the backlog WITHOUT writing them to the canonical
// sink or broadcasting them. It is the replay path for a hub reconstructed
// over an existing trace file (a job server restarting over its state
// directory): the on-disk lines are already canonical, so they only need to
// reach future subscribers. Call before the first Subscribe; seeding a hub
// with live subscribers would let them miss the seeded lines.
func (h *Hub) Seed(lines [][]byte) {
	h.mu.Lock()
	for _, line := range lines {
		cp := make([]byte, len(line))
		copy(cp, line)
		h.backlog = append(h.backlog, cp)
	}
	h.mu.Unlock()
}

// Backlog returns a copy of every line written so far.
func (h *Hub) Backlog() [][]byte {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([][]byte, len(h.backlog))
	copy(out, h.backlog)
	return out
}

// Dropped returns the total number of events dropped across all
// subscribers since the hub was created. Wall-clock dependent content:
// export it through a volatile gauge only.
func (h *Hub) Dropped() int64 { return h.dropped.Load() }

// Close ends the live stream: every subscriber channel is closed and
// further writes broadcast to nobody (the canonical pass-through and the
// backlog keep working, so closing the hub early never truncates the
// trace). Idempotent.
func (h *Hub) Close() {
	h.mu.Lock()
	if !h.closed {
		h.closed = true
		for s := range h.subs {
			close(s.ch)
			delete(h.subs, s)
		}
	}
	h.mu.Unlock()
}

// Closed reports whether Close was called.
func (h *Hub) Closed() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.closed
}

// Subscription is one live consumer of a Hub's stream.
type Subscription struct {
	h       *Hub
	ch      chan []byte
	dropped atomic.Int64
}

// C is the event channel. It is closed when the hub closes or the
// subscription is closed; a receive that keeps up sees every line after
// the Subscribe-time backlog.
func (s *Subscription) C() <-chan []byte { return s.ch }

// Dropped returns how many events THIS subscriber lost to a full channel.
func (s *Subscription) Dropped() int64 { return s.dropped.Load() }

// Close unsubscribes and closes the channel. Idempotent, and safe to call
// concurrently with hub writes and Hub.Close.
func (s *Subscription) Close() {
	h := s.h
	h.mu.Lock()
	if _, ok := h.subs[s]; ok {
		delete(h.subs, s)
		close(s.ch)
	}
	h.mu.Unlock()
}
