package nesterov

import (
	"math"
	"testing"
)

// quadratic is ½ Σ k_i (x_i − c_i)² with optional box clamping.
type quadratic struct {
	k, c     []float64
	lo, hi   float64
	clamped  bool
	precondK bool
}

func (q *quadratic) Eval(x, grad []float64) float64 {
	var f float64
	for i := range x {
		d := x[i] - q.c[i]
		f += 0.5 * q.k[i] * d * d
		grad[i] = q.k[i] * d
	}
	return f
}

func (q *quadratic) Precondition(grad []float64) {
	if !q.precondK {
		return
	}
	for i := range grad {
		grad[i] /= q.k[i]
	}
}

func (q *quadratic) Clamp(x []float64) {
	if !q.clamped {
		return
	}
	for i := range x {
		if x[i] < q.lo {
			x[i] = q.lo
		}
		if x[i] > q.hi {
			x[i] = q.hi
		}
	}
}

func TestConvergesOnWellConditionedQuadratic(t *testing.T) {
	n := 20
	q := &quadratic{k: make([]float64, n), c: make([]float64, n)}
	for i := range q.k {
		q.k[i] = 1
		q.c[i] = float64(i) - 10
	}
	x0 := make([]float64, n)
	o := New(x0, 0.1)
	for it := 0; it < 300; it++ {
		o.Step(q)
	}
	for i, u := range o.U() {
		if math.Abs(u-q.c[i]) > 1e-3 {
			t.Fatalf("x[%d] = %v, want %v", i, u, q.c[i])
		}
	}
}

func TestConvergesOnIllConditionedWithPreconditioner(t *testing.T) {
	n := 10
	q := &quadratic{k: make([]float64, n), c: make([]float64, n), precondK: true}
	for i := range q.k {
		q.k[i] = math.Pow(10, float64(i%4)) // condition number 1000
		q.c[i] = 3
	}
	x0 := make([]float64, n)
	o := New(x0, 0.1)
	for it := 0; it < 500; it++ {
		o.Step(q)
	}
	for i, u := range o.U() {
		if math.Abs(u-3) > 1e-2 {
			t.Fatalf("x[%d] = %v, want 3", i, u)
		}
	}
}

func TestObjectiveDecreasesOverall(t *testing.T) {
	n := 8
	q := &quadratic{k: make([]float64, n), c: make([]float64, n)}
	for i := range q.k {
		q.k[i] = 2
		q.c[i] = 5
	}
	o := New(make([]float64, n), 0.05)
	first, _ := o.Step(q)
	var last float64
	for it := 0; it < 100; it++ {
		last, _ = o.Step(q)
	}
	if last >= first {
		t.Errorf("objective did not decrease: first %v last %v", first, last)
	}
}

func TestClampKeepsIteratesInBox(t *testing.T) {
	n := 4
	q := &quadratic{k: []float64{1, 1, 1, 1}, c: []float64{100, -100, 100, -100},
		lo: -10, hi: 10, clamped: true}
	o := New(make([]float64, n), 0.5)
	for it := 0; it < 100; it++ {
		o.Step(q)
		for _, u := range o.U() {
			if u < -10-1e-12 || u > 10+1e-12 {
				t.Fatalf("iterate %v escaped the box", u)
			}
		}
	}
	// Must converge to the box boundary nearest each target.
	want := []float64{10, -10, 10, -10}
	for i, u := range o.U() {
		if math.Abs(u-want[i]) > 1e-6 {
			t.Errorf("x[%d] = %v, want %v", i, u, want[i])
		}
	}
}

func TestResetRestartsMomentum(t *testing.T) {
	q := &quadratic{k: []float64{1}, c: []float64{10}}
	o := New([]float64{0}, 0.1)
	for it := 0; it < 50; it++ {
		o.Step(q)
	}
	o.Reset([]float64{-5})
	if o.X()[0] != -5 || o.U()[0] != -5 {
		t.Fatalf("Reset did not move the iterate")
	}
	for it := 0; it < 200; it++ {
		o.Step(q)
	}
	if math.Abs(o.U()[0]-10) > 1e-3 {
		t.Errorf("after reset did not reconverge: %v", o.U()[0])
	}
}

func TestStepClampsApply(t *testing.T) {
	q := &quadratic{k: []float64{1}, c: []float64{10}}
	o := New([]float64{0}, 0.1)
	o.StepMax = 0.02
	o.Step(q) // first step uses step0 regardless
	for it := 0; it < 10; it++ {
		if _, step := o.Step(q); step > 0.02+1e-15 {
			t.Fatalf("step %v exceeds StepMax", step)
		}
	}
	o2 := New([]float64{0}, 0.1)
	o2.StepMin = 0.5
	o2.Step(q)
	if _, step := o2.Step(q); step < 0.5 {
		t.Errorf("step %v below StepMin", step)
	}
}

func TestGradNorm(t *testing.T) {
	q := &quadratic{k: []float64{1, 1}, c: []float64{3, 4}}
	o := New([]float64{0, 0}, 0.01)
	o.Step(q)
	// Gradient at origin is (−3, −4): norm 5.
	if math.Abs(o.GradNorm()-5) > 1e-9 {
		t.Errorf("GradNorm = %v, want 5", o.GradNorm())
	}
}

func TestOnStepHookObservesEveryStep(t *testing.T) {
	q := &quadratic{k: []float64{1}, c: []float64{10}}
	o := New([]float64{0}, 0.1)
	var iters []int
	var vals, steps []float64
	o.OnStep = func(it int, val, step float64) {
		iters = append(iters, it)
		vals = append(vals, val)
		steps = append(steps, step)
	}
	for i := 0; i < 5; i++ {
		o.Step(q)
	}
	o.Reset([]float64{0})
	o.Step(q)
	if o.Steps() != 6 || len(iters) != 6 {
		t.Fatalf("hook saw %d steps, Steps()=%d, want 6", len(iters), o.Steps())
	}
	for i, it := range iters {
		if it != i {
			t.Errorf("hook iter %d = %d, want monotone across Reset", i, it)
		}
	}
	if steps[0] != 0.1 {
		t.Errorf("first hook step = %v, want step0", steps[0])
	}
	if vals[0] != 50 { // ½·1·10² at the origin
		t.Errorf("first hook val = %v, want 50", vals[0])
	}
}

// BenchmarkStepNilHook vs BenchmarkStepWithHook quantify the telemetry
// hook cost: the nil-hook path must report 0 allocs/op (the acceptance
// bar for disabled telemetry on the inner Nesterov step).
func BenchmarkStepNilHook(b *testing.B) {
	benchStep(b, false)
}

func BenchmarkStepWithHook(b *testing.B) {
	benchStep(b, true)
}

func benchStep(b *testing.B, hook bool) {
	n := 512
	q := &quadratic{k: make([]float64, n), c: make([]float64, n), precondK: true}
	for i := range q.k {
		q.k[i] = 1 + float64(i%7)
		q.c[i] = float64(i % 13)
	}
	o := New(make([]float64, n), 0.05)
	var sink float64
	if hook {
		o.OnStep = func(it int, val, step float64) { sink += val + step }
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o.Step(q)
	}
	_ = sink
}

func TestFasterThanPlainGradientDescent(t *testing.T) {
	// Nesterov should beat fixed-step GD on a moderately conditioned
	// quadratic after the same number of iterations.
	n := 30
	mk := func() *quadratic {
		q := &quadratic{k: make([]float64, n), c: make([]float64, n)}
		for i := range q.k {
			q.k[i] = 1 + float64(i%10)*2
			q.c[i] = 1
		}
		return q
	}
	iters := 60
	q := mk()
	o := New(make([]float64, n), 0.05)
	for it := 0; it < iters; it++ {
		o.Step(q)
	}
	objAt := func(x []float64) float64 {
		g := make([]float64, n)
		return q.Eval(x, g)
	}
	nesterovObj := objAt(o.U())

	// Plain GD with the same initial step.
	x := make([]float64, n)
	g := make([]float64, n)
	for it := 0; it < iters; it++ {
		q.Eval(x, g)
		for i := range x {
			x[i] -= 0.05 * g[i]
		}
	}
	gdObj := objAt(x)
	if nesterovObj > gdObj {
		t.Errorf("nesterov %v worse than plain GD %v", nesterovObj, gdObj)
	}
}
